// Command lsdserve hosts trained LSD matchers over HTTP/JSON. It loads
// every model artifact (*.lsdm, written by `lsd -save`) from a
// directory into an atomically-swappable registry and serves match
// requests against them:
//
//	lsdserve -models ./models -addr :8080
//
//	GET  /healthz     — liveness + loaded model count
//	GET  /v1/models   — loaded models with checksums and labels
//	POST /v1/match    — match one source {model, dtd, xml, workers}
//	POST /v1/batch    — match many sources concurrently
//	POST /admin/load  — hot-load an artifact file into the registry
//
// SIGHUP reloads the model directory without dropping in-flight
// requests; SIGINT/SIGTERM shut down gracefully.
//
// -debug-addr starts a second listener serving net/http/pprof. It is
// off by default and refuses non-loopback addresses: the profiling
// endpoints expose heap contents and must never ride on the public
// listener or an external interface.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("lsdserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	models := fs.String("models", "", "directory of model artifacts (*"+serve.ArtifactExt+") to serve")
	workers := fs.Int("workers", 0, "max workers per request (0 = one per CPU)")
	ready := fs.String("ready-fd", "", "write the bound address to this file once listening (for scripts)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this loopback address (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *models == "" {
		return fmt.Errorf("lsdserve: -models directory is required")
	}
	if *debugAddr != "" {
		host, _, err := net.SplitHostPort(*debugAddr)
		if err != nil {
			return fmt.Errorf("lsdserve: -debug-addr: %w", err)
		}
		if ip := net.ParseIP(host); host != "localhost" && (ip == nil || !ip.IsLoopback()) {
			return fmt.Errorf("lsdserve: -debug-addr %q is not a loopback address; the pprof endpoints expose process internals and must stay local", *debugAddr)
		}
	}

	reg := serve.NewRegistry()
	loaded, err := reg.LoadDir(*models, 0)
	if err != nil {
		return fmt.Errorf("loading models: %w", err)
	}
	for _, m := range loaded {
		fmt.Fprintf(out, "loaded model %q (%d labels, sha256 %.12s…)\n", m.Name, len(m.Labels), m.Checksum)
	}
	if len(loaded) == 0 {
		fmt.Fprintf(out, "warning: no %s artifacts in %s; serving an empty registry\n", serve.ArtifactExt, *models)
	}

	srv := serve.NewServer(reg, serve.Options{MaxWorkers: *workers, AdminDir: *models})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "lsdserve listening on %s (%d models)\n", ln.Addr(), reg.Len())
	if *ready != "" {
		if err := os.WriteFile(*ready, []byte(ln.Addr().String()), 0o644); err != nil {
			return fmt.Errorf("writing ready file: %w", err)
		}
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			// The main server is already up; close it before reporting.
			httpSrv.Close()
			return fmt.Errorf("lsdserve: debug listener: %w", err)
		}
		// A dedicated mux, not http.DefaultServeMux: the pprof import
		// registers itself there, and a dedicated mux guarantees the
		// debug listener serves profiling endpoints and nothing else.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv := &http.Server{Handler: dmux}
		debugErrc := make(chan error, 1)
		go func() { debugErrc <- debugSrv.Serve(dln) }()
		// The debug server lives and dies with the main server: Close on
		// every return path, abandoning any in-flight profile dump.
		defer debugSrv.Close()
		fmt.Fprintf(out, "debug server listening on %s\n", dln.Addr())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)
	for {
		select {
		case err := <-errc:
			if errors.Is(err, http.ErrServerClosed) {
				return nil
			}
			return err
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				// Reload in place: each artifact swaps in atomically;
				// requests in flight finish on the snapshot they hold.
				reloaded, err := reg.LoadDir(*models, 0)
				if err != nil {
					fmt.Fprintf(out, "reload failed: %v\n", err)
					continue
				}
				fmt.Fprintf(out, "reloaded %d models from %s\n", len(reloaded), *models)
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			err := httpSrv.Shutdown(ctx)
			cancel()
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "lsdserve: shut down\n")
			return nil
		}
	}
}
