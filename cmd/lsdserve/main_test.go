package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/modeltest"
)

// startServer runs the daemon on an ephemeral port and waits for it to
// come up. The returned base URL is ready to hit; done receives run's
// error when the daemon exits.
func startServer(t *testing.T, modelsDir string) (string, chan error) {
	t.Helper()
	readyFile := filepath.Join(t.TempDir(), "ready")
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-models", modelsDir,
			"-ready-fd", readyFile,
		}, os.Stdout)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if addr, err := os.ReadFile(readyFile); err == nil && len(addr) > 0 {
			return "http://" + string(addr), done
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited before ready: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func modelCount(t *testing.T, base string) int {
	t.Helper()
	resp, err := http.Get(base + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Models []struct {
			Name string `json:"name"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return len(body.Models)
}

// TestServeLifecycle boots the daemon, serves a match, hot-reloads a
// second model on SIGHUP, and shuts down cleanly on SIGTERM. Signals
// go to our own process, so this test cannot run in parallel with
// another daemon test.
func TestServeLifecycle(t *testing.T) {
	dir := t.TempDir()
	modeltest.WriteArtifact(t, dir, "houses")
	base, done := startServer(t, dir)

	if n := modelCount(t, base); n != 1 {
		t.Fatalf("%d models loaded, want 1", n)
	}

	raw, err := json.Marshal(map[string]any{
		"model": "houses",
		"dtd":   modeltest.SourceDTD,
		"xml":   modeltest.SourceXML,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/match", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var match struct {
		Mapping map[string]string `json:"mapping"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&match); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(match.Mapping) == 0 {
		t.Fatalf("match: status %d, mapping %v", resp.StatusCode, match.Mapping)
	}

	// Hot reload: drop a second artifact in the directory and HUP the
	// process.
	modeltest.WriteArtifact(t, dir, "condos")
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for modelCount(t, base) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("SIGHUP reload never picked up the second model")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}
}

// TestDebugServerLifecycle boots the daemon with -debug-addr, confirms
// the pprof index answers on the debug listener, and confirms the
// debug listener dies with the main server on SIGTERM. Like
// TestServeLifecycle it signals its own process, so it cannot run in
// parallel with another daemon test.
func TestDebugServerLifecycle(t *testing.T) {
	dir := t.TempDir()
	modeltest.WriteArtifact(t, dir, "houses")

	outFile, err := os.Create(filepath.Join(t.TempDir(), "out"))
	if err != nil {
		t.Fatal(err)
	}
	defer outFile.Close()
	readyFile := filepath.Join(t.TempDir(), "ready")
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-models", dir,
			"-ready-fd", readyFile,
			"-debug-addr", "127.0.0.1:0",
		}, outFile)
	}()

	// The debug line is printed after the ready file, so poll the out
	// file until the bound debug address shows up.
	var debugBase string
	deadline := time.Now().Add(10 * time.Second)
	for debugBase == "" {
		if time.Now().After(deadline) {
			t.Fatal("debug server never announced its address")
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited before ready: %v", err)
		default:
		}
		logged, err := os.ReadFile(outFile.Name())
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(logged), "\n") {
			if addr, ok := strings.CutPrefix(line, "debug server listening on "); ok {
				debugBase = "http://" + strings.TrimSpace(addr)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(debugBase + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof index: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d, want 200", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}
	// The debug listener must be gone once run returns.
	if resp, err := http.Get(debugBase + "/debug/pprof/"); err == nil {
		resp.Body.Close()
		t.Fatal("debug server still answering after shutdown")
	}
}

// TestDebugAddrRejectsNonLoopback asserts the daemon refuses to expose
// pprof on a non-loopback interface.
func TestDebugAddrRejectsNonLoopback(t *testing.T) {
	dir := t.TempDir()
	for _, addr := range []string{"0.0.0.0:6060", ":6060", "192.0.2.1:6060", "no-port"} {
		err := run([]string{"-models", dir, "-debug-addr", addr}, os.Stdout)
		if err == nil {
			t.Errorf("-debug-addr %q accepted, want rejection", addr)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}, os.Stdout); err == nil {
		t.Error("run without -models succeeded, want error")
	}
	if err := run([]string{"-models", filepath.Join(t.TempDir(), "missing")}, os.Stdout); err == nil {
		t.Error("run with missing models dir succeeded, want error")
	}
}
