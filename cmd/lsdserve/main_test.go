package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/modeltest"
)

// startServer runs the daemon on an ephemeral port and waits for it to
// come up. The returned base URL is ready to hit; done receives run's
// error when the daemon exits.
func startServer(t *testing.T, modelsDir string) (string, chan error) {
	t.Helper()
	readyFile := filepath.Join(t.TempDir(), "ready")
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-models", modelsDir,
			"-ready-fd", readyFile,
		}, os.Stdout)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if addr, err := os.ReadFile(readyFile); err == nil && len(addr) > 0 {
			return "http://" + string(addr), done
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited before ready: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func modelCount(t *testing.T, base string) int {
	t.Helper()
	resp, err := http.Get(base + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Models []struct {
			Name string `json:"name"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return len(body.Models)
}

// TestServeLifecycle boots the daemon, serves a match, hot-reloads a
// second model on SIGHUP, and shuts down cleanly on SIGTERM. Signals
// go to our own process, so this test cannot run in parallel with
// another daemon test.
func TestServeLifecycle(t *testing.T) {
	dir := t.TempDir()
	modeltest.WriteArtifact(t, dir, "houses")
	base, done := startServer(t, dir)

	if n := modelCount(t, base); n != 1 {
		t.Fatalf("%d models loaded, want 1", n)
	}

	raw, err := json.Marshal(map[string]any{
		"model": "houses",
		"dtd":   modeltest.SourceDTD,
		"xml":   modeltest.SourceXML,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/match", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var match struct {
		Mapping map[string]string `json:"mapping"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&match); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(match.Mapping) == 0 {
		t.Fatalf("match: status %d, mapping %v", resp.StatusCode, match.Mapping)
	}

	// Hot reload: drop a second artifact in the directory and HUP the
	// process.
	modeltest.WriteArtifact(t, dir, "condos")
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for modelCount(t, base) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("SIGHUP reload never picked up the second model")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}, os.Stdout); err == nil {
		t.Error("run without -models succeeded, want error")
	}
	if err := run([]string{"-models", filepath.Join(t.TempDir(), "missing")}, os.Stdout); err == nil {
		t.Error("run with missing models dir succeeded, want error")
	}
}
