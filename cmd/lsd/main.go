// Command lsd trains an LSD system on labelled sources and matches a
// target source's schema against the mediated schema, printing the
// proposed 1-1 mappings. Sources use the on-disk layout cmd/lsdgen
// writes: <name>.dtd, <name>.xml (a stream of listings), and, for
// training sources, <name>.mapping (tag<TAB>label lines).
//
// Usage:
//
//	lsd -mediated mediated.dtd -train src1,src2,src3 -match src4 \
//	    [-feedback "tag=LABEL,tag2!=LABEL2"] [-no-constraints] [-no-xml]
//
// The -feedback flag supplies §4.3 user-feedback constraints: "tag=L"
// pins tag to label L, "tag!=L" forbids it.
//
// A trained matcher can be persisted and reused without retraining:
//
//	lsd -mediated mediated.dtd -train src1,src2 -save model.lsdm
//	lsd -load model.lsdm -match src4
//
// Artifacts written by -save are also what cmd/lsdserve serves; the
// loaded matcher's predictions are bit-identical to the freshly
// trained one's.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/lsd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lsd", flag.ContinueOnError)
	mediatedPath := fs.String("mediated", "", "mediated DTD file")
	trainList := fs.String("train", "", "comma-separated training source basenames")
	matchName := fs.String("match", "", "target source basename")
	feedback := fs.String("feedback", "", "user feedback: tag=LABEL or tag!=LABEL, comma-separated")
	noConstraints := fs.Bool("no-constraints", false, "disable the constraint handler")
	noXML := fs.Bool("no-xml", false, "disable the XML learner")
	evaluate := fs.Bool("eval", false, "if the target has a .mapping file, report accuracy")
	workers := fs.Int("workers", 0, "worker goroutines for training and matching (0 = one per CPU, 1 = serial)")
	savePath := fs.String("save", "", "write the trained matcher to this model artifact file")
	loadPath := fs.String("load", "", "load a matcher from a model artifact instead of training")
	modelName := fs.String("name", "", "model name recorded in the -save artifact (default: artifact basename)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *loadPath != "":
		if *mediatedPath != "" || *trainList != "" {
			return fmt.Errorf("lsd: -load replaces training; drop -mediated/-train")
		}
		if *savePath != "" {
			return fmt.Errorf("lsd: -save needs a freshly trained matcher, not -load")
		}
		if *matchName == "" {
			return fmt.Errorf("lsd: -load needs -match")
		}
	case *mediatedPath == "" || *trainList == "":
		fs.Usage()
		return flag.ErrHelp
	case *matchName == "" && *savePath == "":
		fs.Usage()
		return flag.ErrHelp
	}

	var sys *lsd.System
	if *loadPath != "" {
		loaded, name, err := lsd.LoadModel(*loadPath, *workers)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "loaded model %q from %s\n", name, *loadPath)
		sys = loaded
	} else {
		trained, err := train(*mediatedPath, *trainList, *noConstraints, *noXML, *workers)
		if err != nil {
			return err
		}
		sys = trained
	}

	if *savePath != "" {
		name := *modelName
		if name == "" {
			name = strings.TrimSuffix(filepath.Base(*savePath), filepath.Ext(*savePath))
		}
		if err := lsd.SaveModel(*savePath, name, sys); err != nil {
			return err
		}
		fmt.Fprintf(out, "saved model %q to %s\n", name, *savePath)
	}

	if *matchName == "" {
		return nil
	}
	target, err := loadSource(*matchName, false)
	if err != nil {
		return err
	}
	constraints, err := parseFeedback(*feedback)
	if err != nil {
		return err
	}
	res, err := sys.Match(context.Background(), target, constraints...)
	if err != nil {
		return fmt.Errorf("match: %w", err)
	}
	fmt.Fprint(out, lsd.Describe(target, res))
	if *evaluate && target.Mapping != nil {
		fmt.Fprintf(out, "matching accuracy: %.1f%%\n", 100*lsd.Accuracy(target, res.Mapping))
	}
	return nil
}

// train loads the mediated schema and training sources and runs the
// training phase. Any failure — unreadable files, a bad DTD, a learner
// aborting mid-domain — propagates as an error so the process exits
// non-zero instead of printing a partial result.
func train(mediatedPath, trainList string, noConstraints, noXML bool, workers int) (*lsd.System, error) {
	mediatedText, err := os.ReadFile(mediatedPath)
	if err != nil {
		return nil, err
	}
	schema, err := lsd.ParseDTD(string(mediatedText))
	if err != nil {
		return nil, fmt.Errorf("mediated DTD: %w", err)
	}
	mediated := &lsd.Mediated{Schema: schema}
	// Frequency and arity constraints are always safe to derive from
	// the mediated schema itself: each concept matches at most one tag,
	// leaves stay atomic, internal tags stay compound.
	for _, tag := range schema.Tags() {
		mediated.Constraints = append(mediated.Constraints, lsd.AtMostOne(tag))
		if schema.IsLeaf(tag) {
			mediated.Constraints = append(mediated.Constraints, lsd.LeafLabel(tag))
		} else {
			mediated.Constraints = append(mediated.Constraints, lsd.NonLeafLabel(tag))
		}
	}

	var training []*lsd.Source
	for _, name := range strings.Split(trainList, ",") {
		src, err := loadSource(strings.TrimSpace(name), true)
		if err != nil {
			return nil, err
		}
		training = append(training, src)
	}

	cfg := lsd.DefaultConfig()
	cfg.UseConstraintHandler = !noConstraints
	cfg.UseXMLLearner = !noXML
	cfg.Workers = workers

	sys, err := lsd.Train(mediated, training, cfg)
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	return sys, nil
}

// loadSource reads <base>.dtd, <base>.xml and (optionally) <base>.mapping.
func loadSource(base string, needMapping bool) (*lsd.Source, error) {
	dtdText, err := os.ReadFile(base + ".dtd")
	if err != nil {
		return nil, err
	}
	schema, err := lsd.ParseDTD(string(dtdText))
	if err != nil {
		return nil, fmt.Errorf("%s.dtd: %w", base, err)
	}
	f, err := os.Open(base + ".xml")
	if err != nil {
		return nil, err
	}
	defer f.Close()
	listings, err := lsd.ParseListings(f)
	if err != nil {
		return nil, fmt.Errorf("%s.xml: %w", base, err)
	}
	src := &lsd.Source{Name: base, Schema: schema, Listings: listings}
	mapping, err := os.ReadFile(base + ".mapping")
	if err == nil {
		src.Mapping = parseMapping(string(mapping))
	} else if needMapping {
		return nil, fmt.Errorf("training source %s needs %s.mapping: %w", base, base, err)
	}
	return src, nil
}

func parseMapping(text string) map[string]string {
	m := make(map[string]string)
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 {
			m[fields[0]] = fields[1]
		}
	}
	return m
}

func parseFeedback(s string) ([]lsd.Constraint, error) {
	if s == "" {
		return nil, nil
	}
	var out []lsd.Constraint
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if tag, label, ok := strings.Cut(item, "!="); ok {
			out = append(out, lsd.MustNotMatch(strings.TrimSpace(tag), strings.TrimSpace(label)))
			continue
		}
		tag, label, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("bad feedback %q: want tag=LABEL or tag!=LABEL", item)
		}
		out = append(out, lsd.MustMatch(strings.TrimSpace(tag), strings.TrimSpace(label)))
	}
	return out, nil
}
