// Command lsd trains an LSD system on labelled sources and matches a
// target source's schema against the mediated schema, printing the
// proposed 1-1 mappings. Sources use the on-disk layout cmd/lsdgen
// writes: <name>.dtd, <name>.xml (a stream of listings), and, for
// training sources, <name>.mapping (tag<TAB>label lines).
//
// Usage:
//
//	lsd -mediated mediated.dtd -train src1,src2,src3 -match src4 \
//	    [-feedback "tag=LABEL,tag2!=LABEL2"] [-no-constraints] [-no-xml]
//
// The -feedback flag supplies §4.3 user-feedback constraints: "tag=L"
// pins tag to label L, "tag!=L" forbids it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/lsd"
)

func main() {
	mediatedPath := flag.String("mediated", "", "mediated DTD file")
	trainList := flag.String("train", "", "comma-separated training source basenames")
	matchName := flag.String("match", "", "target source basename")
	feedback := flag.String("feedback", "", "user feedback: tag=LABEL or tag!=LABEL, comma-separated")
	noConstraints := flag.Bool("no-constraints", false, "disable the constraint handler")
	noXML := flag.Bool("no-xml", false, "disable the XML learner")
	evaluate := flag.Bool("eval", false, "if the target has a .mapping file, report accuracy")
	workers := flag.Int("workers", 0, "worker goroutines for training and matching (0 = one per CPU, 1 = serial)")
	flag.Parse()

	if *mediatedPath == "" || *trainList == "" || *matchName == "" {
		flag.Usage()
		os.Exit(2)
	}

	mediatedText, err := os.ReadFile(*mediatedPath)
	if err != nil {
		log.Fatal(err)
	}
	schema, err := lsd.ParseDTD(string(mediatedText))
	if err != nil {
		log.Fatalf("mediated DTD: %v", err)
	}
	mediated := &lsd.Mediated{Schema: schema}
	// Frequency and arity constraints are always safe to derive from
	// the mediated schema itself: each concept matches at most one tag,
	// leaves stay atomic, internal tags stay compound.
	for _, tag := range schema.Tags() {
		mediated.Constraints = append(mediated.Constraints, lsd.AtMostOne(tag))
		if schema.IsLeaf(tag) {
			mediated.Constraints = append(mediated.Constraints, lsd.LeafLabel(tag))
		} else {
			mediated.Constraints = append(mediated.Constraints, lsd.NonLeafLabel(tag))
		}
	}

	var training []*lsd.Source
	for _, name := range strings.Split(*trainList, ",") {
		src, err := loadSource(strings.TrimSpace(name), true)
		if err != nil {
			log.Fatal(err)
		}
		training = append(training, src)
	}
	target, err := loadSource(*matchName, false)
	if err != nil {
		log.Fatal(err)
	}

	cfg := lsd.DefaultConfig()
	cfg.UseConstraintHandler = !*noConstraints
	cfg.UseXMLLearner = !*noXML
	cfg.Workers = *workers

	sys, err := lsd.Train(mediated, training, cfg)
	if err != nil {
		log.Fatalf("train: %v", err)
	}

	constraints, err := parseFeedback(*feedback)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Match(target, constraints...)
	if err != nil {
		log.Fatalf("match: %v", err)
	}
	fmt.Print(lsd.Describe(target, res))
	if *evaluate && target.Mapping != nil {
		fmt.Printf("matching accuracy: %.1f%%\n", 100*lsd.Accuracy(target, res.Mapping))
	}
}

// loadSource reads <base>.dtd, <base>.xml and (optionally) <base>.mapping.
func loadSource(base string, needMapping bool) (*lsd.Source, error) {
	dtdText, err := os.ReadFile(base + ".dtd")
	if err != nil {
		return nil, err
	}
	schema, err := lsd.ParseDTD(string(dtdText))
	if err != nil {
		return nil, fmt.Errorf("%s.dtd: %w", base, err)
	}
	f, err := os.Open(base + ".xml")
	if err != nil {
		return nil, err
	}
	defer f.Close()
	listings, err := lsd.ParseListings(f)
	if err != nil {
		return nil, fmt.Errorf("%s.xml: %w", base, err)
	}
	src := &lsd.Source{Name: base, Schema: schema, Listings: listings}
	mapping, err := os.ReadFile(base + ".mapping")
	if err == nil {
		src.Mapping = parseMapping(string(mapping))
	} else if needMapping {
		return nil, fmt.Errorf("training source %s needs %s.mapping: %w", base, base, err)
	}
	return src, nil
}

func parseMapping(text string) map[string]string {
	m := make(map[string]string)
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 {
			m[fields[0]] = fields[1]
		}
	}
	return m
}

func parseFeedback(s string) ([]lsd.Constraint, error) {
	if s == "" {
		return nil, nil
	}
	var out []lsd.Constraint
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if tag, label, ok := strings.Cut(item, "!="); ok {
			out = append(out, lsd.MustNotMatch(strings.TrimSpace(tag), strings.TrimSpace(label)))
			continue
		}
		tag, label, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("bad feedback %q: want tag=LABEL or tag!=LABEL", item)
		}
		out = append(out, lsd.MustMatch(strings.TrimSpace(tag), strings.TrimSpace(label)))
	}
	return out, nil
}
