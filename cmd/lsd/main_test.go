package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/lsd"
)

func TestParseFeedback(t *testing.T) {
	cs, err := parseFeedback("area=ADDRESS, ad-id!=HOUSE-ID")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("constraints = %d", len(cs))
	}
	if got := cs[0].Name(); got != "feedback: area matches ADDRESS" {
		t.Errorf("cs[0] = %q", got)
	}
	if got := cs[1].Name(); got != "feedback: ad-id does not match HOUSE-ID" {
		t.Errorf("cs[1] = %q", got)
	}
	if _, err := parseFeedback("garbage"); err == nil {
		t.Error("bad feedback accepted")
	}
	if cs, err := parseFeedback(""); err != nil || cs != nil {
		t.Errorf("empty feedback: %v, %v", cs, err)
	}
}

func TestParseMapping(t *testing.T) {
	m := parseMapping("a\tX\nb\tY\n\nmalformed line with extra fields here\n")
	if m["a"] != "X" || m["b"] != "Y" {
		t.Errorf("parseMapping = %v", m)
	}
	if len(m) != 2 {
		t.Errorf("parseMapping kept %d entries", len(m))
	}
}

// TestLoadSourceRoundTrip writes a source in the on-disk layout and
// loads it back.
func TestLoadSourceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "src1")
	if err := os.WriteFile(base+".dtd", []byte(`
<!ELEMENT listing (price)>
<!ELEMENT price (#PCDATA)>
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(base+".xml", []byte(
		`<listing><price>70000</price></listing><listing><price>80000</price></listing>`,
	), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(base+".mapping", []byte("listing\tLISTING\nprice\tPRICE\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := loadSource(base, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(src.Listings) != 2 {
		t.Errorf("listings = %d", len(src.Listings))
	}
	if src.Mapping["price"] != "PRICE" {
		t.Errorf("mapping = %v", src.Mapping)
	}
	if src.Schema.Root() != "listing" {
		t.Errorf("schema root = %q", src.Schema.Root())
	}
	// Validate the loaded listings against the loaded schema.
	for _, l := range src.Listings {
		if err := src.Schema.Validate(l); err != nil {
			t.Errorf("loaded listing invalid: %v", err)
		}
	}
}

func TestLoadSourceMissingMapping(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "src2")
	os.WriteFile(base+".dtd", []byte("<!ELEMENT a (#PCDATA)>"), 0o644)
	os.WriteFile(base+".xml", []byte("<a>1</a>"), 0o644)
	if _, err := loadSource(base, true); err == nil {
		t.Error("training source without mapping accepted")
	}
	src, err := loadSource(base, false)
	if err != nil || src.Mapping != nil {
		t.Errorf("target source: %v, mapping %v", err, src.Mapping)
	}
}

var _ = lsd.Other // keep the lsd import for the Source type used above

// writeDomainFiles renders a datagen domain into the on-disk layout
// cmd/lsd consumes and returns the mediated DTD path and the source
// basenames (training sources first, target last).
func writeDomainFiles(t *testing.T, dir string, listings int) (string, []string) {
	t.Helper()
	d := datagen.RealEstateI()
	med := filepath.Join(dir, "mediated.dtd")
	if err := os.WriteFile(med, []byte(d.MediatedSchema().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var bases []string
	for _, spec := range d.Sources() {
		src := spec.Generate(listings, 11)
		base := filepath.Join(dir, spec.Name)
		if err := os.WriteFile(base+".dtd", []byte(spec.Schema.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		var data strings.Builder
		for _, l := range src.Listings {
			data.WriteString(l.String())
		}
		if err := os.WriteFile(base+".xml", []byte(data.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		var mapping strings.Builder
		keys := make([]string, 0, len(spec.Mapping))
		for k := range spec.Mapping {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&mapping, "%s\t%s\n", k, spec.Mapping[k])
		}
		if err := os.WriteFile(base+".mapping", []byte(mapping.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		bases = append(bases, base)
	}
	return med, bases
}

// afterFirstLine drops the leading status line ("saved model …" /
// "loaded model …") so match reports can be compared across runs.
func afterFirstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// TestTrainSaveLoadMatch is the CLI half of the persistence contract:
// train + save + match in one process, then load + match in another,
// and require the match reports to be identical byte for byte.
func TestTrainSaveLoadMatch(t *testing.T) {
	dir := t.TempDir()
	med, bases := writeDomainFiles(t, dir, 10)
	model := filepath.Join(dir, "re1.lsdm")
	trainList := strings.Join(bases[:3], ",")
	target := bases[3]

	var trained bytes.Buffer
	err := run([]string{
		"-mediated", med, "-train", trainList, "-match", target,
		"-save", model, "-eval", "-workers", "2",
	}, &trained)
	if err != nil {
		t.Fatalf("train+save+match: %v", err)
	}
	if !strings.Contains(trained.String(), `saved model "re1"`) {
		t.Fatalf("missing save confirmation in output:\n%s", trained.String())
	}

	var loaded bytes.Buffer
	err = run([]string{"-load", model, "-match", target, "-eval", "-workers", "2"}, &loaded)
	if err != nil {
		t.Fatalf("load+match: %v", err)
	}
	if !strings.Contains(loaded.String(), `loaded model "re1"`) {
		t.Fatalf("missing load confirmation in output:\n%s", loaded.String())
	}

	want := afterFirstLine(trained.String())
	got := afterFirstLine(loaded.String())
	if want != got {
		t.Errorf("loaded matcher's report differs from trained matcher's:\n--- trained ---\n%s--- loaded ---\n%s", want, got)
	}
	if !strings.Contains(got, "matching accuracy:") {
		t.Errorf("report is missing the -eval accuracy line:\n%s", got)
	}
}

// TestRunTrainAbortFails is the exit-code regression test: when
// training aborts mid-domain (an example labelled outside the mediated
// label set), run must return an error — main exits non-zero — rather
// than printing a partial result.
func TestRunTrainAbortFails(t *testing.T) {
	dir := t.TempDir()
	med, bases := writeDomainFiles(t, dir, 10)
	// Poison the first training source: map one tag to a label the
	// mediated schema does not define.
	poison := bases[0] + ".mapping"
	text, err := os.ReadFile(poison)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(text), "\n", 2)
	tag := strings.Fields(lines[0])[0]
	if err := os.WriteFile(poison, []byte(tag+"\tNOT-A-REAL-LABEL\n"+lines[1]), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err = run([]string{
		"-mediated", med, "-train", strings.Join(bases[:3], ","), "-match", bases[3],
	}, &out)
	if err == nil {
		t.Fatal("run succeeded with an example labelled outside the label set")
	}
	if !strings.Contains(err.Error(), "outside label set") {
		t.Errorf("error %q does not mention the poisoned label", err)
	}
	if strings.Contains(out.String(), "->") {
		t.Errorf("partial match report printed despite training abort:\n%s", out.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	cases := []struct {
		name string
		args []string
	}{
		{"no args", nil},
		{"train without match or save", []string{"-mediated", "m.dtd", "-train", "a"}},
		{"load with train", []string{"-load", "m.lsdm", "-train", "a", "-match", "b"}},
		{"load with save", []string{"-load", "m.lsdm", "-save", "n.lsdm", "-match", "b"}},
		{"load without match", []string{"-load", "m.lsdm"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args, &out); err == nil {
				t.Error("run succeeded, want error")
			}
		})
	}
}
