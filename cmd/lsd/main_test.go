package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/lsd"
)

func TestParseFeedback(t *testing.T) {
	cs, err := parseFeedback("area=ADDRESS, ad-id!=HOUSE-ID")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("constraints = %d", len(cs))
	}
	if got := cs[0].Name(); got != "feedback: area matches ADDRESS" {
		t.Errorf("cs[0] = %q", got)
	}
	if got := cs[1].Name(); got != "feedback: ad-id does not match HOUSE-ID" {
		t.Errorf("cs[1] = %q", got)
	}
	if _, err := parseFeedback("garbage"); err == nil {
		t.Error("bad feedback accepted")
	}
	if cs, err := parseFeedback(""); err != nil || cs != nil {
		t.Errorf("empty feedback: %v, %v", cs, err)
	}
}

func TestParseMapping(t *testing.T) {
	m := parseMapping("a\tX\nb\tY\n\nmalformed line with extra fields here\n")
	if m["a"] != "X" || m["b"] != "Y" {
		t.Errorf("parseMapping = %v", m)
	}
	if len(m) != 2 {
		t.Errorf("parseMapping kept %d entries", len(m))
	}
}

// TestLoadSourceRoundTrip writes a source in the on-disk layout and
// loads it back.
func TestLoadSourceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "src1")
	if err := os.WriteFile(base+".dtd", []byte(`
<!ELEMENT listing (price)>
<!ELEMENT price (#PCDATA)>
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(base+".xml", []byte(
		`<listing><price>70000</price></listing><listing><price>80000</price></listing>`,
	), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(base+".mapping", []byte("listing\tLISTING\nprice\tPRICE\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := loadSource(base, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(src.Listings) != 2 {
		t.Errorf("listings = %d", len(src.Listings))
	}
	if src.Mapping["price"] != "PRICE" {
		t.Errorf("mapping = %v", src.Mapping)
	}
	if src.Schema.Root() != "listing" {
		t.Errorf("schema root = %q", src.Schema.Root())
	}
	// Validate the loaded listings against the loaded schema.
	for _, l := range src.Listings {
		if err := src.Schema.Validate(l); err != nil {
			t.Errorf("loaded listing invalid: %v", err)
		}
	}
}

func TestLoadSourceMissingMapping(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "src2")
	os.WriteFile(base+".dtd", []byte("<!ELEMENT a (#PCDATA)>"), 0o644)
	os.WriteFile(base+".xml", []byte("<a>1</a>"), 0o644)
	if _, err := loadSource(base, true); err == nil {
		t.Error("training source without mapping accepted")
	}
	src, err := loadSource(base, false)
	if err != nil || src.Mapping != nil {
		t.Errorf("target source: %v, mapping %v", err, src.Mapping)
	}
}

var _ = lsd.Other // keep the lsd import for the Source type used above
