package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// dirtyDTD trips ambiguity once and carries one justified suppression
// and one malformed directive, mirroring lsdlint's dirtySrc.
const dirtyDTD = `<!ELEMENT root (bad, quiet)>
<!ELEMENT bad (a?, a)>
<!-- lint:ignore ambiguity justified for the driver tests -->
<!ELEMENT quiet (a?, a)>
<!-- lint:ignore -->
<!ELEMENT a (#PCDATA)>
`

const cleanDTD = `<!ELEMENT root (a, b?)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`

// writeDTD writes a DTD into a fresh directory and returns (dir, path).
func writeDTD(t *testing.T, name, text string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, path
}

func TestRunTextFindings(t *testing.T) {
	dir, path := writeDTD(t, "dirty.dtd", dirtyDTD)
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d with findings, want 1; stderr: %s", code, errb.String())
	}
	text := out.String()
	if !strings.Contains(text, "dirty.dtd:2:1: ambiguity:") {
		t.Errorf("text output missing the relative-path ambiguity finding:\n%s", text)
	}
	if !strings.Contains(text, "dirty.dtd:5:1: ignore: malformed directive") {
		t.Errorf("text output missing the malformed-directive finding:\n%s", text)
	}
	if strings.Contains(text, "quiet") {
		t.Errorf("suppressed finding leaked into output:\n%s", text)
	}
	if !strings.Contains(errb.String(), "2 finding(s)") {
		t.Errorf("stderr summary = %q, want 2 finding(s)", errb.String())
	}
}

func TestRunCleanFile(t *testing.T) {
	dir, path := writeDTD(t, "clean.dtd", cleanDTD)
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on clean file, want 0; stderr: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output: %s", out.String())
	}
}

// TestRunDefaultChecksDomains pins the no-argument mode: the built-in
// datagen domains must check clean, which is also this repo's own
// acceptance gate for its real schemas and constraint sets.
func TestRunDefaultChecksDomains(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit %d checking built-in domains, want 0; output: %s%s", code, out.String(), errb.String())
	}
}

func TestRunJSONFormat(t *testing.T) {
	dir, path := writeDTD(t, "dirty.dtd", dirtyDTD)
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "-format", "json", path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d with findings, want 1; stderr: %s", code, errb.String())
	}
	var diags []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Column  int    `json:"column"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	checks := make(map[string]bool)
	for _, d := range diags {
		if d.File != "dirty.dtd" {
			t.Errorf("diagnostic file = %q, want root-relative \"dirty.dtd\"", d.File)
		}
		if d.Line < 1 || d.Column < 1 {
			t.Errorf("diagnostic position %d:%d not 1-based", d.Line, d.Column)
		}
		checks[d.Check] = true
	}
	if !checks["ambiguity"] || !checks["ignore"] {
		t.Errorf("json findings missing expected checks, got %v", checks)
	}

	// A clean file emits an empty array, not null, and exits 0.
	out.Reset()
	errb.Reset()
	cdir, cpath := writeDTD(t, "clean.dtd", cleanDTD)
	if code := run([]string{"-root", cdir, "-format", "json", cpath}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on clean file, want 0", code)
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean json output = %q, want []", got)
	}
}

// TestRunSARIFValid is the driver acceptance test for -format sarif:
// the emitted log must be well-formed SARIF 2.1.0 with internally
// consistent rule references — the same validity bar as lsdlint's.
func TestRunSARIFValid(t *testing.T) {
	dir, path := writeDTD(t, "dirty.dtd", dirtyDTD)
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "-format", "sarif", path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d with findings, want 1; stderr: %s", code, errb.String())
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version %q schema %q, want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run0 := log.Runs[0]
	if run0.Tool.Driver.Name != "lsdschema" {
		t.Errorf("driver name %q, want lsdschema", run0.Tool.Driver.Name)
	}
	ruleIdx := make(map[string]int)
	for i, r := range run0.Tool.Driver.Rules {
		if r.ID == "" {
			t.Errorf("rule %d has empty id", i)
		}
		ruleIdx[r.ID] = i
	}
	if len(run0.Results) == 0 {
		t.Fatal("no results despite findings")
	}
	for _, res := range run0.Results {
		idx, ok := ruleIdx[res.RuleID]
		if !ok {
			t.Errorf("result rule %q not declared in rules", res.RuleID)
		} else if idx != res.RuleIndex {
			t.Errorf("result %q ruleIndex %d, want %d", res.RuleID, res.RuleIndex, idx)
		}
		if res.Level != "error" {
			t.Errorf("result level %q, want error", res.Level)
		}
		if res.Message.Text == "" {
			t.Errorf("result %q has empty message", res.RuleID)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result %q has %d locations, want 1", res.RuleID, len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != "dirty.dtd" {
			t.Errorf("result uri %q, want relative dirty.dtd", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine < 1 || loc.Region.StartColumn < 1 {
			t.Errorf("result %q region %d:%d not 1-based", res.RuleID, loc.Region.StartLine, loc.Region.StartColumn)
		}
	}

	// Clean file: still one run, empty results array, exit 0.
	out.Reset()
	errb.Reset()
	cdir, cpath := writeDTD(t, "clean.dtd", cleanDTD)
	if code := run([]string{"-root", cdir, "-format", "sarif", cpath}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on clean file, want 0", code)
	}
	if !strings.Contains(out.String(), `"results": []`) {
		t.Errorf("clean sarif output must contain an empty results array:\n%s", out.String())
	}
}

// TestRunExitCodesAcrossFormats pins the 0/1/2 contract for every
// output format.
func TestRunExitCodesAcrossFormats(t *testing.T) {
	cdir, cpath := writeDTD(t, "clean.dtd", cleanDTD)
	ddir, dpath := writeDTD(t, "dirty.dtd", dirtyDTD)
	for _, format := range []string{"text", "json", "sarif"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-root", cdir, "-format", format, cpath}, &out, &errb); code != 0 {
			t.Errorf("format %s: exit %d on clean file, want 0", format, code)
		}
		if code := run([]string{"-root", ddir, "-format", format, dpath}, &out, &errb); code != 1 {
			t.Errorf("format %s: exit %d with findings, want 1", format, code)
		}
		if code := run([]string{"-root", cdir, "-format", format, filepath.Join(cdir, "missing.dtd")}, &out, &errb); code != 2 {
			t.Errorf("format %s: exit %d for missing file, want 2", format, code)
		}
	}
}

func TestRunUnparseableFileExitsTwo(t *testing.T) {
	dir, path := writeDTD(t, "broken.dtd", "<!ELEMENT root (a>")
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, path}, &out, &errb); code != 2 {
		t.Errorf("exit %d for unparseable DTD, want 2", code)
	}
	if !strings.Contains(errb.String(), "broken.dtd") {
		t.Errorf("stderr %q does not name the broken file", errb.String())
	}
}

func TestRunUnknownFormatExitsTwo(t *testing.T) {
	dir, path := writeDTD(t, "clean.dtd", cleanDTD)
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "-format", "xml", path}, &out, &errb); code != 2 {
		t.Errorf("exit %d for unknown format, want 2", code)
	}
}

func TestRunSuppressionsReport(t *testing.T) {
	dir, path := writeDTD(t, "dirty.dtd", dirtyDTD)
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "-suppressions", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d for suppressions report, want 0; stderr: %s", code, errb.String())
	}
	text := out.String()
	if !strings.Contains(text, "ambiguity: justified for the driver tests") {
		t.Errorf("report missing the justified directive:\n%s", text)
	}
	if !strings.Contains(text, "(missing reason)") {
		t.Errorf("report missing the malformed directive:\n%s", text)
	}
	if !strings.Contains(errb.String(), "2 suppression(s)") {
		t.Errorf("stderr summary = %q, want 2 suppression(s)", errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-root", dir, "-suppressions", "-format", "json", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d for json suppressions report, want 0", code)
	}
	var sups []struct {
		File   string `json:"file"`
		Line   int    `json:"line"`
		Check  string `json:"check"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(out.Bytes(), &sups); err != nil {
		t.Fatalf("json report does not parse: %v\n%s", err, out.String())
	}
	if len(sups) != 2 {
		t.Fatalf("json report has %d entries, want 2:\n%s", len(sups), out.String())
	}
	if sups[0].Check != "ambiguity" || sups[0].Reason == "" {
		t.Errorf("first entry = %+v, want the justified ambiguity directive", sups[0])
	}
	if sups[1].Reason != "" {
		t.Errorf("malformed directive reason = %q, want empty", sups[1].Reason)
	}

	// SARIF has no notion of a suppression inventory; reject it.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-root", dir, "-suppressions", "-format", "sarif", path}, &out, &errb); code != 2 {
		t.Errorf("exit %d for -suppressions -format sarif, want 2", code)
	}
}

func TestRunUnknownCheckExitsTwo(t *testing.T) {
	dir, path := writeDTD(t, "clean.dtd", cleanDTD)
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "-checks", "nosuchcheck", path}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for unknown check, want 2; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "nosuchcheck") {
		t.Errorf("stderr does not name the unknown check: %s", errb.String())
	}
	if !strings.Contains(errb.String(), "ambiguity") {
		t.Errorf("stderr does not list the known checks: %s", errb.String())
	}
}

func TestRunChecksSelection(t *testing.T) {
	dir, path := writeDTD(t, "dirty.dtd", dirtyDTD)
	var out, errb bytes.Buffer
	// Keeping only ambiguity drops the malformed-directive finding.
	if code := run([]string{"-root", dir, "-checks", "ambiguity", path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d with ambiguity selected, want 1; stderr: %s", code, errb.String())
	}
	if strings.Contains(out.String(), "ignore:") {
		t.Errorf("excluded ignore finding leaked:\n%s", out.String())
	}
	out.Reset()
	errb.Reset()
	// Excluding both triggering checks leaves a clean run.
	if code := run([]string{"-root", dir, "-checks", "!ambiguity,!ignore", path}, &out, &errb); code != 0 {
		t.Errorf("exit %d with both checks excluded, want 0; out: %s", code, out.String())
	}
	out.Reset()
	errb.Reset()
	// Mixing includes and excludes is a usage error.
	if code := run([]string{"-root", dir, "-checks", "ambiguity,!ignore", path}, &out, &errb); code != 2 {
		t.Errorf("exit %d mixing include and exclude, want 2", code)
	}
}

// TestRunMultipleFiles pins that findings from several files are
// concatenated in argument order and counted together.
func TestRunMultipleFiles(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.dtd")
	b := filepath.Join(dir, "b.dtd")
	if err := os.WriteFile(a, []byte("<!ELEMENT r (x?, x)>\n<!ELEMENT x EMPTY>\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte("<!ELEMENT r (y)>\n<!ELEMENT y EMPTY>\n<!ELEMENT stray (y)>\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, a, b}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	text := out.String()
	ia := strings.Index(text, "a.dtd:1:1: ambiguity:")
	ib := strings.Index(text, "b.dtd:3:1: unreachable:")
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("findings missing or out of argument order:\n%s", text)
	}
}

func TestRunSuppressionsChecksFilter(t *testing.T) {
	dir, path := writeDTD(t, "dirty.dtd", dirtyDTD)
	var out, errb bytes.Buffer
	// Selecting a check the directives do not name empties the
	// inventory; the malformed directive (no check) drops too.
	if code := run([]string{"-root", dir, "-suppressions", "-checks", "unreachable", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d for filtered report, want 0; stderr: %s", code, errb.String())
	}
	if strings.Contains(out.String(), "ambiguity") {
		t.Errorf("filtered inventory still lists the excluded check:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "0 suppression(s)") {
		t.Errorf("stderr summary = %q, want 0 suppression(s)", errb.String())
	}

	out.Reset()
	errb.Reset()
	// Selecting the named check keeps its directive.
	if code := run([]string{"-root", dir, "-suppressions", "-checks", "ambiguity", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d for filtered report, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "ambiguity: justified for the driver tests") {
		t.Errorf("filtered inventory missing the selected check's directive:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "1 suppression(s)") {
		t.Errorf("stderr summary = %q, want 1 suppression(s)", errb.String())
	}
}
