// Command lsdschema runs the repo's schema and constraint static
// analyzer (internal/schemacheck) over LSD's domain artifacts. It is
// lsdlint's counterpart for the data the pipeline runs on: where
// lsdlint checks the Go code, lsdschema checks DTD content models
// (1-unambiguity, reachability, termination, duplicate declarations,
// degenerate repetitions) and domain constraint sets (unknown labels,
// contradictions, leafness against the mediated schema,
// satisfiability). It is built on the Go standard library only.
//
// Usage:
//
//	lsdschema [-root dir] [-format text|json|sarif] [-checks list] [-suppressions] [files.dtd...]
//
// -checks mirrors lsdlint's flag: a comma-separated list of check
// names keeps only those checks' findings, !-prefixed names exclude
// instead, and an unknown name is a usage error. It narrows the
// -suppressions inventory the same way: directives naming an excluded
// check are omitted.
//
// With file arguments, each file is parsed as a DTD and checked; with
// none, the built-in datagen domains are checked instead — every
// mediated schema, constraint set, and synthesized source schema, with
// findings attributed to virtual internal/datagen/<domain>/ paths.
// Findings print as file:line:col: check: message in the default text
// format; -format json emits a JSON array and -format sarif a SARIF
// 2.1.0 log (for CI code-scanning upload). The exit status is the same
// in every format: 1 when there are findings, 2 on usage, read, or
// parse errors, and 0 when everything checks clean.
//
// Individual findings in DTD files can be suppressed, with a mandatory
// reason, by a comment on (or directly above) the offending line:
//
//	<!-- lint:ignore <check> <reason> -->
//
// -suppressions inventories every such directive (text or json format)
// instead of checking, so suppressed findings stay auditable; its exit
// status is 0 unless reading fails.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis/report"
	"repro/internal/schemacheck"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lsdschema", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rootFlag := fs.String("root", "", "directory findings are reported relative to (default: the working directory)")
	formatFlag := fs.String("format", "text", "output format: text, json, or sarif")
	supFlag := fs.Bool("suppressions", false, "report every lint:ignore directive instead of checking")
	checksFlag := fs.String("checks", "", "comma-separated checks to keep, or !name entries to exclude")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: lsdschema [-root dir] [-format text|json|sarif] [-checks list] [-suppressions] [files.dtd...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	keep, err := selectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(stderr, "lsdschema:", err)
		return 2
	}
	switch *formatFlag {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "lsdschema: unknown format %q (want text, json, or sarif)\n", *formatFlag)
		return 2
	}
	if *supFlag && *formatFlag == "sarif" {
		fmt.Fprintln(stderr, "lsdschema: -suppressions supports text and json formats only")
		return 2
	}

	root := *rootFlag
	if root == "" {
		var err error
		if root, err = os.Getwd(); err != nil {
			fmt.Fprintln(stderr, "lsdschema:", err)
			return 2
		}
	}

	files := fs.Args()
	if *supFlag {
		return runSuppressions(root, files, *formatFlag, keep, stdout, stderr)
	}

	var findings []schemacheck.Finding
	if len(files) == 0 {
		// The built-in artifacts carry no suppressible text, so every
		// finding here is a hard failure of the domain definitions.
		findings = schemacheck.CheckDomains()
	} else {
		for _, file := range files {
			fs, code := checkFile(root, file, stderr)
			if code != 0 {
				return code
			}
			findings = append(findings, fs...)
		}
	}
	if keep != nil {
		kept := findings[:0]
		for _, f := range findings {
			if keep(f.Check) {
				kept = append(kept, f)
			}
		}
		findings = kept
	}

	switch *formatFlag {
	case "json":
		if err := report.WriteJSON(stdout, root, findings); err != nil {
			fmt.Fprintln(stderr, "lsdschema:", err)
			return 2
		}
	case "sarif":
		if err := report.WriteSARIF(stdout, root, "lsdschema", rules(), findings); err != nil {
			fmt.Fprintln(stderr, "lsdschema:", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, displayFinding(root, f))
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "lsdschema: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// checkFile checks one DTD file. Findings are attributed to the path
// as given; an unreadable or unparseable file is a usage-class error
// (exit 2), matching lsdlint's treatment of unloadable packages.
func checkFile(root, file string, stderr io.Writer) ([]schemacheck.Finding, int) {
	text, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(stderr, "lsdschema:", err)
		return nil, 2
	}
	findings, err := schemacheck.CheckDTD(file, string(text))
	if err != nil {
		fmt.Fprintf(stderr, "lsdschema: %s: %v\n", file, err)
		return nil, 2
	}
	return findings, 0
}

// runSuppressions prints the lint:ignore inventory of the given files.
// The report is informational: the exit status is 0 even when
// directives exist (malformed ones are ordinary findings of a normal
// run). With no files there is nothing to inventory: the built-in
// domains are hand-built values without DTD text.
func runSuppressions(root string, files []string, format string, keep func(string) bool, stdout, stderr io.Writer) int {
	var sups []schemacheck.Suppression
	for _, file := range files {
		text, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(stderr, "lsdschema:", err)
			return 2
		}
		sups = append(sups, schemacheck.Suppressions(file, string(text))...)
	}
	// Mirror the lint path: a -checks spec narrows the inventory to the
	// selected checks so partial runs diff against partial baselines.
	if keep != nil {
		kept := sups[:0]
		for _, s := range sups {
			if keep(s.Check) {
				kept = append(kept, s)
			}
		}
		sups = kept
	}
	if format == "json" {
		if err := report.WriteSuppressionsJSON(stdout, root, sups); err != nil {
			fmt.Fprintln(stderr, "lsdschema:", err)
			return 2
		}
		return 0
	}
	if err := report.WriteSuppressionsText(stdout, root, sups); err != nil {
		fmt.Fprintln(stderr, "lsdschema:", err)
		return 2
	}
	fmt.Fprintf(stderr, "lsdschema: %d suppression(s)\n", len(sups))
	return 0
}

// displayFinding relativizes the finding's path for text output, the
// same way the json and sarif writers do.
func displayFinding(root string, f schemacheck.Finding) schemacheck.Finding {
	f.File = report.RelPath(root, f.File)
	return f
}

// selectChecks parses the -checks spec against the known check names
// (the schemacheck suite plus "ignore") and returns a keep predicate,
// nil when the spec selects everything. Bare names keep only those
// checks, !-prefixed names exclude from the full set, and the two
// forms cannot be mixed; an unknown name errors so typos fail loudly.
func selectChecks(spec string) (func(string) bool, error) {
	if spec == "" {
		return nil, nil
	}
	known := map[string]bool{"ignore": true}
	for _, c := range schemacheck.Checks() {
		known[c.Name] = true
	}
	include, exclude := make(map[string]bool), make(map[string]bool)
	for _, raw := range strings.Split(spec, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		negated := strings.HasPrefix(name, "!")
		if negated {
			name = name[1:]
		}
		if !known[name] {
			names := make([]string, 0, len(known))
			for n := range known {
				names = append(names, n)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("unknown check %q (known: %s)", name, strings.Join(names, ", "))
		}
		if negated {
			exclude[name] = true
		} else {
			include[name] = true
		}
	}
	if len(include) > 0 && len(exclude) > 0 {
		return nil, fmt.Errorf("cannot mix included and !-excluded checks in one -checks list")
	}
	if len(include) == 0 && len(exclude) == 0 {
		return nil, nil
	}
	return func(name string) bool {
		if len(include) > 0 {
			return include[name]
		}
		return !exclude[name]
	}, nil
}

// rules is the SARIF rule table: the full check suite plus the rule
// for malformed suppression directives.
func rules() []report.Rule {
	var out []report.Rule
	for _, c := range schemacheck.Checks() {
		out = append(out, report.Rule{ID: c.Name, Doc: c.Doc})
	}
	return append(out, report.Rule{ID: "ignore", Doc: "lint:ignore directives must name a check and a reason"})
}
