package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module example.com/m\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const cleanSrc = `package m

func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
`

func TestRunCleanTreeExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": cleanSrc})
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "./..."}, &out, &errb); code != 0 {
		t.Errorf("exit %d on clean tree, want 0; stderr: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected output on clean tree: %s", out.String())
	}
}

// TestRunFixtureInRealPackageExitsNonZero drops a real analyzer
// testdata fixture into a module package and asserts the driver exits
// non-zero with findings — the acceptance check that fixtures are true
// positives outside testdata.
func TestRunFixtureInRealPackageExitsNonZero(t *testing.T) {
	fixture, err := os.ReadFile(filepath.Join("..", "..", "internal", "analysis",
		"testdata", "src", "maprangefloat", "a.go"))
	if err != nil {
		t.Fatal(err)
	}
	dir := writeModule(t, map[string]string{"a.go": string(fixture)})
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d with fixture findings, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "maprangefloat") {
		t.Errorf("findings output missing maprangefloat:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("stderr missing findings summary: %s", errb.String())
	}
}

func TestRunSinglePackagePattern(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a.go":     cleanSrc,
		"sub/b.go": "package sub\n\nfunc Bad(m map[string]float64) {\n\ts := 0.0\n\tfor _, v := range m {\n\t\ts += v\n\t}\n\t_ = s\n}\n",
	})
	var out, errb bytes.Buffer
	// Linting only the clean package must not surface sub's finding.
	if code := run([]string{"-root", dir, "."}, &out, &errb); code != 0 {
		t.Errorf("exit %d linting clean package, want 0; out: %s", code, out.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-root", dir, "./sub"}, &out, &errb); code != 1 {
		t.Errorf("exit %d linting dirty package, want 1", code)
	}
}

func TestRunNoModuleExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-root", t.TempDir(), "./..."}, &out, &errb); code != 2 {
		t.Errorf("exit %d without go.mod, want 2", code)
	}
}

func TestRunUnmatchedPatternExitsTwo(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": cleanSrc})
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "./nope/..."}, &out, &errb); code != 2 {
		t.Errorf("exit %d for unmatched pattern, want 2", code)
	}
}
