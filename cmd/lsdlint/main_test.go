package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module example.com/m\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const cleanSrc = `package m

func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
`

func TestRunCleanTreeExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": cleanSrc})
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "./..."}, &out, &errb); code != 0 {
		t.Errorf("exit %d on clean tree, want 0; stderr: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected output on clean tree: %s", out.String())
	}
}

// TestRunFixtureInRealPackageExitsNonZero drops a real analyzer
// testdata fixture into a module package and asserts the driver exits
// non-zero with findings — the acceptance check that fixtures are true
// positives outside testdata.
func TestRunFixtureInRealPackageExitsNonZero(t *testing.T) {
	fixture, err := os.ReadFile(filepath.Join("..", "..", "internal", "analysis",
		"testdata", "src", "maprangefloat", "a.go"))
	if err != nil {
		t.Fatal(err)
	}
	dir := writeModule(t, map[string]string{"a.go": string(fixture)})
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d with fixture findings, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "maprangefloat") {
		t.Errorf("findings output missing maprangefloat:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("stderr missing findings summary: %s", errb.String())
	}
}

func TestRunSinglePackagePattern(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a.go":     cleanSrc,
		"sub/b.go": "package sub\n\nfunc Bad(m map[string]float64) {\n\ts := 0.0\n\tfor _, v := range m {\n\t\ts += v\n\t}\n\t_ = s\n}\n",
	})
	var out, errb bytes.Buffer
	// Linting only the clean package must not surface sub's finding.
	if code := run([]string{"-root", dir, "."}, &out, &errb); code != 0 {
		t.Errorf("exit %d linting clean package, want 0; out: %s", code, out.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-root", dir, "./sub"}, &out, &errb); code != 1 {
		t.Errorf("exit %d linting dirty package, want 1", code)
	}
}

func TestRunNoModuleExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-root", t.TempDir(), "./..."}, &out, &errb); code != 2 {
		t.Errorf("exit %d without go.mod, want 2", code)
	}
}

func TestRunUnmatchedPatternExitsTwo(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": cleanSrc})
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "./nope/..."}, &out, &errb); code != 2 {
		t.Errorf("exit %d for unmatched pattern, want 2", code)
	}
}

const dirtyMapRange = `package m

func Bad(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}
`

func TestRunUnknownCheckExitsTwo(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": cleanSrc})
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "-checks", "nosuchcheck", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for unknown check, want 2; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "nosuchcheck") {
		t.Errorf("stderr does not name the unknown check: %s", errb.String())
	}
	if !strings.Contains(errb.String(), "maprangefloat") {
		t.Errorf("stderr does not list the known checks: %s", errb.String())
	}
}

func TestRunChecksSelection(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": dirtyMapRange})
	var out, errb bytes.Buffer
	// Selecting only the triggering analyzer still finds the bug.
	if code := run([]string{"-root", dir, "-checks", "maprangefloat", "./..."}, &out, &errb); code != 1 {
		t.Errorf("exit %d with maprangefloat selected, want 1; stderr: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	// Excluding it silences the tree.
	if code := run([]string{"-root", dir, "-checks", "!maprangefloat", "./..."}, &out, &errb); code != 0 {
		t.Errorf("exit %d with maprangefloat excluded, want 0; out: %s", code, out.String())
	}
	out.Reset()
	errb.Reset()
	// Mixing includes and excludes is a usage error.
	if code := run([]string{"-root", dir, "-checks", "maprangefloat,!seedflow", "./..."}, &out, &errb); code != 2 {
		t.Errorf("exit %d mixing include and exclude, want 2", code)
	}
}

func TestRunTimingOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": cleanSrc})
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "-timing", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on clean tree with -timing, want 0; stderr: %s", code, errb.String())
	}
	for _, want := range []string{"timing maprangefloat", "timing hotalloc", "timing total"} {
		if !strings.Contains(errb.String(), want) {
			t.Errorf("timing output missing %q:\n%s", want, errb.String())
		}
	}
	if out.Len() != 0 {
		t.Errorf("timing lines leaked to stdout: %s", out.String())
	}
}

func TestRunBudgetExceededExitsOne(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": cleanSrc})
	var out, errb bytes.Buffer
	// Any real run exceeds a 1ns budget, even on a clean tree.
	if code := run([]string{"-root", dir, "-budget", "1ns", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d with 1ns budget, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "budget") {
		t.Errorf("stderr missing budget message: %s", errb.String())
	}
}

// suppressedSrc carries one justified directive per check so the
// -suppressions inventory has entries for two different analyzers.
const suppressedSrc = `package m

func total(m map[string]float64) float64 {
	s := 0.0
	//lint:ignore maprangefloat driver test: order-independent sum
	for _, v := range m {
		s += v
	}
	return s
}

func stamp(p map[string]float64) {
	//lint:ignore seedflow driver test: not a seed at all
	p["k"] = 1
}
`

func TestRunSuppressionsChecksFilter(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": suppressedSrc})
	var out, errb bytes.Buffer
	// Unfiltered inventory lists both directives.
	if code := run([]string{"-root", dir, "-suppressions", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d for suppressions report, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "maprangefloat") || !strings.Contains(out.String(), "seedflow") {
		t.Fatalf("unfiltered inventory missing a directive:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	// Selecting one check drops the other check's suppression.
	if code := run([]string{"-root", dir, "-suppressions", "-checks", "maprangefloat", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d for filtered report, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "maprangefloat") {
		t.Errorf("filtered inventory missing the selected check:\n%s", out.String())
	}
	if strings.Contains(out.String(), "seedflow") {
		t.Errorf("filtered inventory still lists the excluded check:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "1 suppression(s)") {
		t.Errorf("stderr summary = %q, want 1 suppression(s)", errb.String())
	}

	out.Reset()
	errb.Reset()
	// !-exclusion works the same way.
	if code := run([]string{"-root", dir, "-suppressions", "-checks", "!maprangefloat", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d for !-filtered report, want 0; stderr: %s", code, errb.String())
	}
	if strings.Contains(out.String(), "maprangefloat") {
		t.Errorf("!-filtered inventory still lists the excluded check:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "seedflow") {
		t.Errorf("!-filtered inventory missing the kept check:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	// An unknown check name fails loudly even in inventory mode.
	if code := run([]string{"-root", dir, "-suppressions", "-checks", "nosuchcheck", "./..."}, &out, &errb); code != 2 {
		t.Errorf("exit %d for unknown check in inventory mode, want 2", code)
	}
}

// mutatorSrc has one function with a non-empty mutation summary and
// one pure function, so the -debug-summaries dump is non-trivial.
const mutatorSrc = `package m

func Bump(counts map[string]int, key string) {
	counts[key]++
}

func Pure(x int) int { return x + 1 }
`

func TestRunDebugSummaries(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": mutatorSrc})
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "-debug-summaries", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d for -debug-summaries, want 0; stderr: %s", code, errb.String())
	}
	var recs []struct {
		Func  string `json:"func"`
		File  string `json:"file"`
		Line  int    `json:"line"`
		Slots []struct {
			Index   int      `json:"index"`
			Name    string   `json:"name"`
			Mutates []string `json:"mutates"`
		} `json:"slots"`
	}
	if err := json.Unmarshal(out.Bytes(), &recs); err != nil {
		t.Fatalf("dump does not parse as JSON: %v\n%s", err, out.String())
	}
	var bump bool
	for _, r := range recs {
		if r.Func != "example.com/m.Bump" {
			continue
		}
		bump = true
		if r.File != "a.go" {
			t.Errorf("Bump file = %q, want module-relative a.go", r.File)
		}
		if len(r.Slots) != 1 || r.Slots[0].Name != "counts" || len(r.Slots[0].Mutates) == 0 {
			t.Errorf("Bump slots = %+v, want counts with a mutation path", r.Slots)
		}
	}
	if !bump {
		t.Fatalf("dump has no record for Bump:\n%s", out.String())
	}
	for _, r := range recs {
		if r.Func == "example.com/m.Pure" {
			t.Errorf("Pure has an empty summary and should not be dumped")
		}
	}
	if !strings.Contains(errb.String(), "function summaries") {
		t.Errorf("stderr summary missing: %s", errb.String())
	}

	out.Reset()
	errb.Reset()
	// The two instead-of-linting modes cannot be combined.
	if code := run([]string{"-root", dir, "-suppressions", "-debug-summaries", "./..."}, &out, &errb); code != 2 {
		t.Errorf("exit %d combining -suppressions and -debug-summaries, want 2", code)
	}
}
