package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// dirtySrc trips maprangefloat once and carries one justified
// suppression and one malformed directive.
const dirtySrc = `package m

func Bad(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}

func Quiet(m map[string]float64) float64 {
	q := 0.0
	for _, v := range m {
		//lint:ignore maprangefloat justified for the format tests
		q += v
	}
	//lint:ignore
	return q
}
`

func TestRunJSONFormat(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": dirtySrc})
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "-format", "json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d with findings, want 1; stderr: %s", code, errb.String())
	}
	var diags []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Column  int    `json:"column"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	checks := make(map[string]bool)
	for _, d := range diags {
		if d.File != "a.go" {
			t.Errorf("diagnostic file = %q, want module-relative \"a.go\"", d.File)
		}
		if d.Line < 1 || d.Column < 1 {
			t.Errorf("diagnostic position %d:%d not 1-based", d.Line, d.Column)
		}
		checks[d.Check] = true
	}
	if !checks["maprangefloat"] || !checks["ignore"] {
		t.Errorf("json findings missing expected checks, got %v", checks)
	}

	// A clean tree emits an empty array, not null, and exits 0.
	out.Reset()
	errb.Reset()
	clean := writeModule(t, map[string]string{"a.go": cleanSrc})
	if code := run([]string{"-root", clean, "-format", "json", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on clean tree, want 0", code)
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean json output = %q, want []", got)
	}
}

// TestRunTimedJSON checks -timing -format json: the timings ride
// inside one JSON document (findings, per-analyzer cost, run total)
// instead of going to stderr, so CI can archive the suite's cost
// beside its SARIF log.
func TestRunTimedJSON(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": dirtySrc})
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "-format", "json", "-timing", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d with findings, want 1; stderr: %s", code, errb.String())
	}
	if strings.Contains(errb.String(), "timing") {
		t.Errorf("timing leaked to stderr in json format: %s", errb.String())
	}
	var doc struct {
		Findings []struct {
			Check string `json:"check"`
		} `json:"findings"`
		Timings []struct {
			Check string  `json:"check"`
			Ms    float64 `json:"ms"`
		} `json:"timings"`
		TotalMs float64 `json:"total_ms"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not the timed JSON object: %v\n%s", err, out.String())
	}
	if len(doc.Findings) == 0 {
		t.Error("timed json has no findings for a dirty tree")
	}
	seen := make(map[string]bool)
	for _, tm := range doc.Timings {
		if tm.Ms < 0 {
			t.Errorf("analyzer %s has negative wall-clock %vms", tm.Check, tm.Ms)
		}
		seen[tm.Check] = true
	}
	for _, want := range []string{"maprangefloat", "ctxflow", "goroleak", "errflow"} {
		if !seen[want] {
			t.Errorf("timings missing analyzer %s (got %v)", want, seen)
		}
	}
	if doc.TotalMs <= 0 {
		t.Errorf("total_ms = %v, want > 0", doc.TotalMs)
	}
}

// TestRunSARIFValid is the driver acceptance test for -format sarif:
// the emitted log must be well-formed SARIF 2.1.0 with internally
// consistent rule references.
func TestRunSARIFValid(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": dirtySrc})
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "-format", "sarif", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d with findings, want 1; stderr: %s", code, errb.String())
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version %q schema %q, want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run0 := log.Runs[0]
	if run0.Tool.Driver.Name != "lsdlint" {
		t.Errorf("driver name %q, want lsdlint", run0.Tool.Driver.Name)
	}
	ruleIdx := make(map[string]int)
	for i, r := range run0.Tool.Driver.Rules {
		if r.ID == "" {
			t.Errorf("rule %d has empty id", i)
		}
		ruleIdx[r.ID] = i
	}
	if len(run0.Results) == 0 {
		t.Fatal("no results despite findings")
	}
	for _, res := range run0.Results {
		idx, ok := ruleIdx[res.RuleID]
		if !ok {
			t.Errorf("result rule %q not declared in rules", res.RuleID)
		} else if idx != res.RuleIndex {
			t.Errorf("result %q ruleIndex %d, want %d", res.RuleID, res.RuleIndex, idx)
		}
		if res.Level != "error" {
			t.Errorf("result level %q, want error", res.Level)
		}
		if res.Message.Text == "" {
			t.Errorf("result %q has empty message", res.RuleID)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result %q has %d locations, want 1", res.RuleID, len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != "a.go" {
			t.Errorf("result uri %q, want relative a.go", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine < 1 || loc.Region.StartColumn < 1 {
			t.Errorf("result %q region %d:%d not 1-based", res.RuleID, loc.Region.StartLine, loc.Region.StartColumn)
		}
	}

	// Clean tree: still one run, empty results array, exit 0.
	out.Reset()
	errb.Reset()
	clean := writeModule(t, map[string]string{"a.go": cleanSrc})
	if code := run([]string{"-root", clean, "-format", "sarif", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on clean tree, want 0", code)
	}
	if !strings.Contains(out.String(), `"results": []`) {
		t.Errorf("clean sarif output must contain an empty results array:\n%s", out.String())
	}
}

// TestRunExitCodesAcrossFormats pins the 0/1/2 contract for every
// output format.
func TestRunExitCodesAcrossFormats(t *testing.T) {
	clean := writeModule(t, map[string]string{"a.go": cleanSrc})
	dirty := writeModule(t, map[string]string{"a.go": dirtySrc})
	for _, format := range []string{"text", "json", "sarif"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-root", clean, "-format", format, "./..."}, &out, &errb); code != 0 {
			t.Errorf("format %s: exit %d on clean tree, want 0", format, code)
		}
		if code := run([]string{"-root", dirty, "-format", format, "./..."}, &out, &errb); code != 1 {
			t.Errorf("format %s: exit %d with findings, want 1", format, code)
		}
		if code := run([]string{"-root", clean, "-format", format, "./nope/..."}, &out, &errb); code != 2 {
			t.Errorf("format %s: exit %d for bad pattern, want 2", format, code)
		}
	}
}

func TestRunUnknownFormatExitsTwo(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": cleanSrc})
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "-format", "xml", "./..."}, &out, &errb); code != 2 {
		t.Errorf("exit %d for unknown format, want 2", code)
	}
}

func TestRunSuppressionsReport(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": dirtySrc})
	var out, errb bytes.Buffer
	if code := run([]string{"-root", dir, "-suppressions", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d for suppressions report, want 0; stderr: %s", code, errb.String())
	}
	text := out.String()
	if !strings.Contains(text, "maprangefloat: justified for the format tests") {
		t.Errorf("report missing the justified directive:\n%s", text)
	}
	if !strings.Contains(text, "(missing reason)") {
		t.Errorf("report missing the malformed directive:\n%s", text)
	}
	if !strings.Contains(errb.String(), "2 suppression(s)") {
		t.Errorf("stderr summary = %q, want 2 suppression(s)", errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-root", dir, "-suppressions", "-format", "json", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d for json suppressions report, want 0", code)
	}
	var sups []struct {
		File   string `json:"file"`
		Line   int    `json:"line"`
		Check  string `json:"check"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(out.Bytes(), &sups); err != nil {
		t.Fatalf("json report does not parse: %v\n%s", err, out.String())
	}
	if len(sups) != 2 {
		t.Fatalf("json report has %d entries, want 2:\n%s", len(sups), out.String())
	}
	if sups[0].Check != "maprangefloat" || sups[0].Reason == "" {
		t.Errorf("first entry = %+v, want the justified maprangefloat directive", sups[0])
	}
	if sups[1].Reason != "" {
		t.Errorf("malformed directive reason = %q, want empty", sups[1].Reason)
	}

	// SARIF has no notion of a suppression inventory; reject it.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-root", dir, "-suppressions", "-format", "sarif", "./..."}, &out, &errb); code != 2 {
		t.Errorf("exit %d for -suppressions -format sarif, want 2", code)
	}
}
