package main

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// relPath rewrites an absolute diagnostic path to a slash-separated
// path relative to the module root, so json/sarif output is stable
// across checkouts. Paths outside the root pass through unchanged.
func relPath(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}

// jsonDiag is one finding in -format json output.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func writeJSON(w io.Writer, root string, diags []analysis.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:    relPath(root, d.Position.Filename),
			Line:    d.Position.Line,
			Column:  d.Position.Column,
			Check:   d.Check,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// jsonSuppression is one directive in -suppressions -format json
// output.
type jsonSuppression struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Check  string `json:"check"`
	Reason string `json:"reason"`
}

func writeSuppressionsJSON(w io.Writer, root string, sups []analysis.Suppression) error {
	out := make([]jsonSuppression, 0, len(sups))
	for _, s := range sups {
		out = append(out, jsonSuppression{
			File:   relPath(root, s.Position.Filename),
			Line:   s.Position.Line,
			Check:  s.Check,
			Reason: s.Reason,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// SARIF 2.1.0 (the subset lsdlint emits). Results reference rules by
// id and index; every analyzer of the suite plus the "ignore"
// directive check is a rule, so consumers can render documentation
// even for checks with no findings in this run.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func writeSARIF(w io.Writer, root string, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	ruleIndex := make(map[string]int)
	addRule := func(id, doc string) {
		ruleIndex[id] = len(rules)
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifText{Text: doc}})
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	addRule("ignore", "lint:ignore directives must name a check and a reason")

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := ruleIndex[d.Check]
		if !ok {
			addRule(d.Check, "")
			idx = ruleIndex[d.Check]
		}
		results = append(results, sarifResult{
			RuleID:    d.Check,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relPath(root, d.Position.Filename)},
					Region: sarifRegion{
						StartLine:   d.Position.Line,
						StartColumn: d.Position.Column,
					},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "lsdlint",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(log)
}
