package main

import (
	"io"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/report"
)

// findings converts analyzer diagnostics to the shared report shape.
func findings(diags []analysis.Diagnostic) []report.Finding {
	out := make([]report.Finding, 0, len(diags))
	for _, d := range diags {
		out = append(out, report.Finding{
			File:    d.Position.Filename,
			Line:    d.Position.Line,
			Column:  d.Position.Column,
			Check:   d.Check,
			Message: d.Message,
		})
	}
	return out
}

// suppressions converts directive inventory entries to the shared
// report shape.
func suppressions(sups []analysis.Suppression) []report.Suppression {
	out := make([]report.Suppression, 0, len(sups))
	for _, s := range sups {
		out = append(out, report.Suppression{
			File:    s.Position.Filename,
			Line:    s.Position.Line,
			Package: s.Package,
			Check:   s.Check,
			Reason:  s.Reason,
		})
	}
	return out
}

// rules builds the SARIF rule table: every analyzer of the suite plus
// the "ignore" directive check, so consumers can render documentation
// even for checks with no findings in this run.
func rules(analyzers []*analysis.Analyzer) []report.Rule {
	out := make([]report.Rule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		out = append(out, report.Rule{ID: a.Name, Doc: a.Doc})
	}
	out = append(out, report.Rule{ID: "ignore", Doc: "lint:ignore directives must name a check and a reason"})
	return out
}

func writeJSON(w io.Writer, root string, diags []analysis.Diagnostic) error {
	return report.WriteJSON(w, root, findings(diags))
}

// writeTimedJSON emits the -timing -format json document: findings
// plus per-analyzer wall-clock cost and the run total.
func writeTimedJSON(w io.Writer, root string, diags []analysis.Diagnostic, timings []analysis.AnalyzerTiming, total time.Duration) error {
	ts := make([]report.Timing, 0, len(timings))
	for _, tm := range timings {
		ts = append(ts, report.Timing{Check: tm.Name, Ms: float64(tm.Elapsed.Microseconds()) / 1000})
	}
	return report.WriteTimedJSON(w, root, findings(diags), ts, float64(total.Microseconds())/1000)
}

func writeSARIF(w io.Writer, root string, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	return report.WriteSARIF(w, root, "lsdlint", rules(analyzers), findings(diags))
}

func writeSuppressionsJSON(w io.Writer, root string, sups []analysis.Suppression) error {
	return report.WriteSuppressionsJSON(w, root, suppressions(sups))
}
