// Command lsdlint runs the repo's custom static-analysis suite over
// the module: project-specific analyzers that machine-check the
// pipeline's determinism and concurrency invariants (see
// internal/analysis). It is built on the Go standard library only.
//
// Usage:
//
//	lsdlint [-root dir] [-format text|json|sarif] [-checks list] [-timing] [-budget d] [-suppressions] [-debug-summaries] [patterns...]
//
// Patterns follow go-tool conventions relative to the module root:
// "./..." (the default) lints every package, "./internal/..." a
// subtree, and "./internal/learn" a single package. Findings print as
// file:line:col: check: message in the default text format; -format
// json emits a JSON array and -format sarif a SARIF 2.1.0 log (for CI
// code-scanning upload). The exit status is the same in every format:
// 1 when there are findings, 2 on usage or load errors, and 0 on a
// clean tree.
//
// -checks selects analyzers by name: a comma-separated list keeps
// only those analyzers, and !-prefixed names exclude from the full
// suite instead ("-checks hotalloc,statecodec" or
// "-checks !lockorder"); an unknown name is a usage error. -timing
// prints each analyzer's cumulative wall-clock cost to stderr — or,
// with -format json, folds it into the output document as a "timings"
// array plus "total_ms", the shape CI archives beside the SARIF log —
// and -budget fails the run (exit 1) when the whole lint — load plus
// analysis — exceeds the given duration, keeping the whole-program
// framework's cost visible in CI as the tree grows.
//
// Individual findings can be suppressed, with a mandatory reason, by a
// "//lint:ignore <check> <reason>" comment on or directly above the
// offending line. -suppressions inventories every such directive (text
// or json format) instead of linting, so suppressed findings stay
// auditable; its exit status is 0 unless loading fails. -checks
// narrows the inventory the same way it narrows a lint run:
// suppressions naming an excluded analyzer are omitted, so a partial
// run diffs against a partial baseline.
//
// -debug-summaries dumps the interprocedural mutation/escape
// summaries (internal/analysis mutsum) that sharedread, poolescape,
// cowstore, workerpure, and hotalloc reason with, as a JSON array to
// stdout, instead of linting — one record per summarized function with
// its per-slot mutated, appended, and escaping paths. CI archives the
// dump beside the SARIF log so analyzer findings can be traced back to
// the summary facts that produced them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lsdlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rootFlag := fs.String("root", "", "module root directory (default: found from the working directory)")
	formatFlag := fs.String("format", "text", "output format: text, json, or sarif")
	supFlag := fs.Bool("suppressions", false, "report every //lint:ignore directive instead of linting")
	debugSumFlag := fs.Bool("debug-summaries", false, "dump the interprocedural mutation/escape summaries as JSON instead of linting")
	checksFlag := fs.String("checks", "", "comma-separated analyzers to run, or !name entries to exclude")
	timingFlag := fs.Bool("timing", false, "print per-analyzer wall-clock timing to stderr")
	budgetFlag := fs.Duration("budget", 0, "fail when the whole lint run exceeds this duration (0 disables)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: lsdlint [-root dir] [-format text|json|sarif] [-checks list] [-timing] [-budget d] [-suppressions] [-debug-summaries] [patterns...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *formatFlag {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "lsdlint: unknown format %q (want text, json, or sarif)\n", *formatFlag)
		return 2
	}
	if *supFlag && *formatFlag == "sarif" {
		fmt.Fprintln(stderr, "lsdlint: -suppressions supports text and json formats only")
		return 2
	}
	if *supFlag && *debugSumFlag {
		fmt.Fprintln(stderr, "lsdlint: -suppressions and -debug-summaries are mutually exclusive")
		return 2
	}

	dir := *rootFlag
	if dir == "" {
		var err error
		if dir, err = os.Getwd(); err != nil {
			fmt.Fprintln(stderr, "lsdlint:", err)
			return 2
		}
	}
	root, modpath, err := analysis.FindModule(dir)
	if err != nil {
		fmt.Fprintln(stderr, "lsdlint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := resolvePatterns(root, modpath, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "lsdlint:", err)
		return 2
	}

	if *supFlag {
		return runSuppressions(root, modpath, paths, *formatFlag, *checksFlag, stdout, stderr)
	}
	if *debugSumFlag {
		return runDebugSummaries(root, modpath, paths, stdout, stderr)
	}

	analyzers := analysis.DefaultAnalyzers()
	if *checksFlag != "" {
		if analyzers, err = analysis.SelectChecks(analyzers, *checksFlag); err != nil {
			fmt.Fprintln(stderr, "lsdlint:", err)
			return 2
		}
	}
	start := time.Now()
	diags, timings, err := analysis.LintTimed(root, modpath, paths, analyzers)
	total := time.Since(start)
	if err != nil {
		fmt.Fprintln(stderr, "lsdlint:", err)
		return 2
	}
	// With -format json the timings ride inside the JSON document (the
	// shape CI archives beside the SARIF log); every other format keeps
	// them on stderr for humans.
	if *timingFlag && *formatFlag != "json" {
		for _, tm := range timings {
			fmt.Fprintf(stderr, "lsdlint: timing %-16s %8.1fms\n", tm.Name, float64(tm.Elapsed.Microseconds())/1000)
		}
		fmt.Fprintf(stderr, "lsdlint: timing %-16s %8.1fms (load + analysis)\n", "total", float64(total.Microseconds())/1000)
	}
	switch *formatFlag {
	case "json":
		if *timingFlag {
			if err := writeTimedJSON(stdout, root, diags, timings, total); err != nil {
				fmt.Fprintln(stderr, "lsdlint:", err)
				return 2
			}
			break
		}
		if err := writeJSON(stdout, root, diags); err != nil {
			fmt.Fprintln(stderr, "lsdlint:", err)
			return 2
		}
	case "sarif":
		if err := writeSARIF(stdout, root, analyzers, diags); err != nil {
			fmt.Fprintln(stderr, "lsdlint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	overBudget := *budgetFlag > 0 && total > *budgetFlag
	if overBudget {
		fmt.Fprintf(stderr, "lsdlint: run took %v, over the %v budget; the whole-program framework is getting too slow\n",
			total.Round(time.Millisecond), *budgetFlag)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "lsdlint: %d finding(s)\n", len(diags))
	}
	if len(diags) > 0 || overBudget {
		return 1
	}
	return 0
}

// runSuppressions prints the //lint:ignore inventory. The report is
// informational: the exit status is 0 even when directives exist
// (malformed ones are ordinary findings of a normal lint run). A
// -checks spec narrows the inventory to the selected analyzers, so a
// partial lint run diffs against a matching partial baseline instead
// of tripping over suppressions for checks it never ran.
func runSuppressions(root, modpath string, paths []string, format, checks string, stdout, stderr io.Writer) int {
	sups, err := analysis.Suppressions(root, modpath, paths)
	if err != nil {
		fmt.Fprintln(stderr, "lsdlint:", err)
		return 2
	}
	if checks != "" {
		selected, err := analysis.SelectChecks(analysis.DefaultAnalyzers(), checks)
		if err != nil {
			fmt.Fprintln(stderr, "lsdlint:", err)
			return 2
		}
		keep := make(map[string]bool, len(selected))
		for _, a := range selected {
			keep[a.Name] = true
		}
		kept := sups[:0]
		for _, s := range sups {
			if keep[s.Check] {
				kept = append(kept, s)
			}
		}
		sups = kept
	}
	if format == "json" {
		if err := writeSuppressionsJSON(stdout, root, sups); err != nil {
			fmt.Fprintln(stderr, "lsdlint:", err)
			return 2
		}
		return 0
	}
	if err := report.WriteSuppressionsText(stdout, root, suppressions(sups)); err != nil {
		fmt.Fprintln(stderr, "lsdlint:", err)
		return 2
	}
	fmt.Fprintf(stderr, "lsdlint: %d suppression(s)\n", len(sups))
	return 0
}

// runDebugSummaries dumps the mutation/escape summary substrate as an
// indented JSON array, file paths relativized to the module root so
// the artifact is stable across checkouts. Exit status 0 unless
// loading fails.
func runDebugSummaries(root, modpath string, paths []string, stdout, stderr io.Writer) int {
	recs, err := analysis.MutationSummaryDump(root, modpath, paths)
	if err != nil {
		fmt.Fprintln(stderr, "lsdlint:", err)
		return 2
	}
	for i := range recs {
		if rel, err := filepath.Rel(root, recs[i].File); err == nil {
			recs[i].File = filepath.ToSlash(rel)
		}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		fmt.Fprintln(stderr, "lsdlint:", err)
		return 2
	}
	fmt.Fprintf(stderr, "lsdlint: %d function summaries\n", len(recs))
	return 0
}

// resolvePatterns expands go-style package patterns into the module's
// import paths. Patterns are interpreted relative to the module root.
func resolvePatterns(root, modpath string, patterns []string) ([]string, error) {
	all, err := analysis.NewLoader(root, modpath).ModulePackages()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		// Normalize "./x", "x", and "repro/x" to the import path.
		p := strings.TrimPrefix(strings.TrimSuffix(pat, "/"), "./")
		p = strings.TrimSuffix(p, "/")
		recursive := false
		if rest, ok := strings.CutSuffix(p, "..."); ok {
			recursive = true
			p = strings.TrimSuffix(rest, "/")
		}
		var want string
		switch {
		case p == "" || p == ".":
			want = modpath
		case p == modpath || strings.HasPrefix(p, modpath+"/"):
			want = p
		default:
			want = modpath + "/" + p
		}
		matched := false
		for _, path := range all {
			if path == want || (recursive && strings.HasPrefix(path, want+"/")) {
				add(path)
				matched = true
			}
		}
		if recursive && want == modpath {
			matched = true // "./..." on a rootless module dir still matches subpackages
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}
