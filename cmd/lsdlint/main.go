// Command lsdlint runs the repo's custom static-analysis suite over
// the module: project-specific analyzers that machine-check the
// pipeline's determinism and concurrency invariants (see
// internal/analysis). It is built on the Go standard library only.
//
// Usage:
//
//	lsdlint [-root dir] [patterns...]
//
// Patterns follow go-tool conventions relative to the module root:
// "./..." (the default) lints every package, "./internal/..." a
// subtree, and "./internal/learn" a single package. Findings print as
// file:line:col: check: message; the exit status is 1 when there are
// findings, 2 on usage or load errors, and 0 on a clean tree.
// Individual findings can be suppressed, with a mandatory reason, by
// a "//lint:ignore <check> <reason>" comment on or directly above the
// offending line.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lsdlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rootFlag := fs.String("root", "", "module root directory (default: found from the working directory)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: lsdlint [-root dir] [patterns...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	dir := *rootFlag
	if dir == "" {
		var err error
		if dir, err = os.Getwd(); err != nil {
			fmt.Fprintln(stderr, "lsdlint:", err)
			return 2
		}
	}
	root, modpath, err := analysis.FindModule(dir)
	if err != nil {
		fmt.Fprintln(stderr, "lsdlint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := resolvePatterns(root, modpath, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "lsdlint:", err)
		return 2
	}

	diags, err := analysis.Lint(root, modpath, paths, analysis.DefaultAnalyzers())
	if err != nil {
		fmt.Fprintln(stderr, "lsdlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "lsdlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// resolvePatterns expands go-style package patterns into the module's
// import paths. Patterns are interpreted relative to the module root.
func resolvePatterns(root, modpath string, patterns []string) ([]string, error) {
	all, err := analysis.NewLoader(root, modpath).ModulePackages()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		// Normalize "./x", "x", and "repro/x" to the import path.
		p := strings.TrimPrefix(strings.TrimSuffix(pat, "/"), "./")
		p = strings.TrimSuffix(p, "/")
		recursive := false
		if rest, ok := strings.CutSuffix(p, "..."); ok {
			recursive = true
			p = strings.TrimSuffix(rest, "/")
		}
		var want string
		switch {
		case p == "" || p == ".":
			want = modpath
		case p == modpath || strings.HasPrefix(p, modpath+"/"):
			want = p
		default:
			want = modpath + "/" + p
		}
		matched := false
		for _, path := range all {
			if path == want || (recursive && strings.HasPrefix(path, want+"/")) {
				add(path)
				matched = true
			}
		}
		if recursive && want == modpath {
			matched = true // "./..." on a rootless module dir still matches subpackages
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}
