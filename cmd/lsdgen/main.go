// Command lsdgen materializes the synthetic evaluation domains to disk:
// for each domain it writes the mediated DTD and, per source, the
// source DTD, the ground-truth mapping, and the requested number of XML
// listings. The output mirrors the public benchmark repository the
// paper's §9 mentions.
//
// Usage:
//
//	lsdgen -out ./data -listings 300 [-domain "Real Estate I"] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/datagen"
)

func main() {
	out := flag.String("out", "data", "output directory")
	listings := flag.Int("listings", 300, "listings per source")
	domainName := flag.String("domain", "", "only this domain (default: all)")
	seed := flag.Int64("seed", 1, "data sample seed")
	flag.Parse()

	domains := datagen.Domains()
	if *domainName != "" {
		d := datagen.ByName(*domainName)
		if d == nil {
			log.Fatalf("unknown domain %q", *domainName)
		}
		domains = []*datagen.Domain{d}
	}

	for _, d := range domains {
		dir := filepath.Join(*out, slug(d.Name))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "mediated.dtd"),
			[]byte(d.MediatedSchema().String()), 0o644); err != nil {
			log.Fatal(err)
		}
		for _, spec := range d.Sources() {
			n := *listings
			if n > spec.NominalListings {
				n = spec.NominalListings
			}
			src := spec.Generate(n, *seed)
			base := filepath.Join(dir, spec.Name)
			if err := os.WriteFile(base+".dtd", []byte(spec.Schema.String()), 0o644); err != nil {
				log.Fatal(err)
			}
			var data strings.Builder
			for _, l := range src.Listings {
				data.WriteString(l.String())
			}
			if err := os.WriteFile(base+".xml", []byte(data.String()), 0o644); err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(base+".mapping", []byte(mappingText(spec.Mapping)), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s: %d listings, %d tags, %.0f%% matchable\n",
				spec.Name, n, spec.Schema.NumTags(), spec.MatchablePercent())
		}
	}
}

func slug(s string) string {
	return strings.ToLower(strings.ReplaceAll(s, " ", "-"))
}

func mappingText(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s\t%s\n", k, m[k])
	}
	return b.String()
}
