// Command lsdgen materializes the synthetic evaluation domains to disk:
// for each domain it writes the mediated DTD and, per source, the
// source DTD, the ground-truth mapping, and the requested number of XML
// listings. The output mirrors the public benchmark repository the
// paper's §9 mentions.
//
// Usage:
//
//	lsdgen -out ./data -listings 300 [-domain "Real Estate I"] [-seed 1] [-check]
//
// -check re-reads every DTD just written and runs the schema checker
// (internal/schemacheck) over it, plus the domain's constraint set
// against its mediated schema — the same checks lsdschema runs, here
// gating the generator's own output. Any finding is fatal.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/datagen"
	"repro/internal/schemacheck"
)

func main() {
	out := flag.String("out", "data", "output directory")
	listings := flag.Int("listings", 300, "listings per source")
	domainName := flag.String("domain", "", "only this domain (default: all)")
	seed := flag.Int64("seed", 1, "data sample seed")
	check := flag.Bool("check", false, "run the schema checker over the artifacts after writing them")
	flag.Parse()

	domains := datagen.Domains()
	if *domainName != "" {
		d := datagen.ByName(*domainName)
		if d == nil {
			log.Fatalf("unknown domain %q", *domainName)
		}
		domains = []*datagen.Domain{d}
	}

	bad := 0
	for _, d := range domains {
		dir := filepath.Join(*out, slug(d.Name))
		if err := writeDomain(d, dir, *listings, *seed, os.Stdout); err != nil {
			log.Fatal(err)
		}
		if *check {
			findings, err := checkDomainFiles(d, dir)
			if err != nil {
				log.Fatal(err)
			}
			for _, f := range findings {
				fmt.Fprintln(os.Stderr, f)
			}
			bad += len(findings)
		}
	}
	if bad > 0 {
		log.Fatalf("%d finding(s) in generated artifacts", bad)
	}
}

// writeDomain materializes one domain under dir: the mediated DTD and,
// per source, the DTD, the sampled listings, and the ground-truth
// mapping.
func writeDomain(d *datagen.Domain, dir string, listings int, seed int64, progress io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "mediated.dtd"),
		[]byte(d.MediatedSchema().String()), 0o644); err != nil {
		return err
	}
	for _, spec := range d.Sources() {
		n := listings
		if n > spec.NominalListings {
			n = spec.NominalListings
		}
		src := spec.Generate(n, seed)
		base := filepath.Join(dir, spec.Name)
		if err := os.WriteFile(base+".dtd", []byte(spec.Schema.String()), 0o644); err != nil {
			return err
		}
		var data strings.Builder
		for _, l := range src.Listings {
			data.WriteString(l.String())
		}
		if err := os.WriteFile(base+".xml", []byte(data.String()), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(base+".mapping", []byte(mappingText(spec.Mapping)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(progress, "%s: %d listings, %d tags, %.0f%% matchable\n",
			spec.Name, n, spec.Schema.NumTags(), spec.MatchablePercent())
	}
	return nil
}

// checkDomainFiles runs the schema checker over the domain's artifacts
// as written: every .dtd file under dir is re-read from disk (so a
// serialization defect in Schema.String would surface here, not just
// in-memory state), and the domain's constraint set is checked against
// its mediated schema.
func checkDomainFiles(d *datagen.Domain, dir string) ([]schemacheck.Finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var findings []schemacheck.Finding
	for _, entry := range entries {
		if entry.IsDir() || !strings.HasSuffix(entry.Name(), ".dtd") {
			continue
		}
		path := filepath.Join(dir, entry.Name())
		text, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		fs, err := schemacheck.CheckDTD(path, string(text))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		findings = append(findings, fs...)
	}
	med := d.Mediated()
	findings = append(findings,
		schemacheck.CheckConstraints(filepath.Join(dir, "constraints"), med.Schema, med.Constraints)...)
	return findings, nil
}

func slug(s string) string {
	return strings.ToLower(strings.ReplaceAll(s, " ", "-"))
}

func mappingText(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s\t%s\n", k, m[k])
	}
	return b.String()
}
