package main

import (
	"strings"
	"testing"
)

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Real Estate I":    "real-estate-i",
		"Time Schedule":    "time-schedule",
		"Faculty Listings": "faculty-listings",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMappingText(t *testing.T) {
	out := mappingText(map[string]string{"b": "Y", "a": "X"})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	// Sorted by tag for deterministic files.
	if lines[0] != "a\tX" || lines[1] != "b\tY" {
		t.Errorf("mappingText = %q", out)
	}
}
