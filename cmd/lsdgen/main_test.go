package main

import (
	"io"
	"os"
	"path/filepath"

	"repro/internal/datagen"

	"strings"
	"testing"
)

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Real Estate I":    "real-estate-i",
		"Time Schedule":    "time-schedule",
		"Faculty Listings": "faculty-listings",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMappingText(t *testing.T) {
	out := mappingText(map[string]string{"b": "Y", "a": "X"})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	// Sorted by tag for deterministic files.
	if lines[0] != "a\tX" || lines[1] != "b\tY" {
		t.Errorf("mappingText = %q", out)
	}
}

// TestWriteAndCheckDomain pins the -check contract: the artifacts
// lsdgen writes must come back clean from the schema checker, with the
// DTDs re-read from disk so the serialize-reparse round trip is part
// of what is checked.
func TestWriteAndCheckDomain(t *testing.T) {
	d := datagen.Domains()[0]
	dir := filepath.Join(t.TempDir(), slug(d.Name))
	if err := writeDomain(d, dir, 5, 1, io.Discard); err != nil {
		t.Fatal(err)
	}
	findings, err := checkDomainFiles(d, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("generated artifact has finding: %s", f)
	}
	if _, err := os.Stat(filepath.Join(dir, "mediated.dtd")); err != nil {
		t.Errorf("mediated.dtd not written: %v", err)
	}
}

// TestCheckDomainFilesCatchesCorruption pins that -check reads what is
// on disk, not in-memory state: corrupting a written DTD must surface.
func TestCheckDomainFilesCatchesCorruption(t *testing.T) {
	d := datagen.Domains()[0]
	dir := filepath.Join(t.TempDir(), slug(d.Name))
	if err := writeDomain(d, dir, 5, 1, io.Discard); err != nil {
		t.Fatal(err)
	}
	bad := "<!ELEMENT root (a)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT orphan (a)>\n"
	if err := os.WriteFile(filepath.Join(dir, "mediated.dtd"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := checkDomainFiles(d, dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range findings {
		if f.Check == "unreachable" {
			found = true
		}
	}
	if !found {
		t.Errorf("corrupted mediated.dtd not flagged; findings = %v", findings)
	}
}
