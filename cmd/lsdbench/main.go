// Command lsdbench regenerates the tables and figures of the paper's
// evaluation (§6) on the synthetic domains:
//
//	lsdbench -exp table3              # Table 3: domains and sources
//	lsdbench -exp fig8a               # Figure 8.a: configuration ladder
//	lsdbench -exp fig8b               # Figure 8.b: sensitivity, Real Estate I
//	lsdbench -exp fig8c               # Figure 8.c: sensitivity, Time Schedule
//	lsdbench -exp fig9a               # Figure 9.a: lesion studies
//	lsdbench -exp fig9b               # Figure 9.b: schema vs. data info
//	lsdbench -exp feedback            # §6.3: corrections to perfect matching
//	lsdbench -exp micro               # Train/Match/Predict micro-benches
//	lsdbench -exp serve               # lsdserve HTTP matching: p50/p95/p99 + QPS
//	lsdbench -exp all                 # everything
//
// -listings, -samples, and -splits trade fidelity for runtime; the
// paper's own protocol is -listings 300 -samples 3 -splits 10.
//
// Performance workflow flags:
//
//	-bench-out bench                  # append a BENCH_<n>.json artifact
//	-smoke bench                      # fail on allocs/op regression vs. baseline
//	-cpuprofile cpu.out               # write a CPU profile (go tool pprof)
//	-memprofile mem.out               # write an allocation profile
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/parallel"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table3, fig8a, fig8b, fig8c, fig9a, fig9b, feedback, micro, serve, all")
	listings := flag.Int("listings", 100, "listings per source")
	samples := flag.Int("samples", 1, "data samples per experiment")
	maxSplits := flag.Int("splits", 10, "train/test splits per sample (max 10)")
	seed := flag.Int64("seed", 7, "experiment seed")
	workers := flag.Int("workers", 0, "worker goroutines per experiment (0 = one per CPU, 1 = serial)")
	benchOut := flag.String("bench-out", "", "directory to write a BENCH_<n>.json artifact recording each experiment's duration and allocations (empty = off)")
	smoke := flag.String("smoke", "", "directory holding the committed BENCH_<n>.json baseline; with -exp micro, exit non-zero on an allocs/op regression, with -exp serve on a p99 latency regression")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *smoke != "" && *exp == "all" {
		// The smoke gate only needs the micro-benches; running the full
		// experiment suite first would bury the signal in minutes of
		// accuracy runs.
		*exp = "micro"
	}

	p := eval.Protocol{Listings: *listings, Samples: *samples, Seed: *seed, MaxSplits: *maxSplits, Workers: *workers}
	var records []benchRecord
	run := func(name string, fn func()) {
		if *exp != "all" && *exp != name {
			return
		}
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		fn()
		elapsed := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		fmt.Printf("[%s took %s]\n\n", name, elapsed.Round(time.Millisecond))
		records = append(records, benchRecord{
			Op:          name,
			NsPerOp:     elapsed.Nanoseconds(),
			AllocsPerOp: after.Mallocs - before.Mallocs,
			Workers:     parallel.Workers(*workers),
		})
	}

	run("table3", func() { table3() })
	run("fig8a", func() { fig8a(p) })
	run("fig8b", func() { sensitivity(datagen.RealEstateI(), "Figure 8.b", p) })
	run("fig8c", func() { sensitivity(datagen.TimeSchedule(), "Figure 8.c", p) })
	run("fig9a", func() { fig9a(p) })
	run("fig9b", func() { fig9b(p) })
	run("feedback", func() { feedback(p) })

	// The micro-benches manage their own per-op records (fixed
	// iteration counts, serial) rather than going through run's
	// whole-experiment wrapper. They are not part of -exp all: the
	// experiment suite measures accuracy, micro measures hot paths.
	var smokeErr error
	if *exp == "micro" {
		recs := micro()
		records = append(records, recs...)
		if *smoke != "" {
			smokeErr = benchSmoke(recs, *smoke)
		}
	}

	// The serving benchmark also stands outside -exp all: it measures
	// HTTP request latency against an in-process lsdserve handler, not
	// matching accuracy.
	if *exp == "serve" {
		recs := serveExp(*workers)
		records = append(records, recs...)
		if *smoke != "" {
			smokeErr = serveSmoke(recs, *smoke)
		}
	}

	if *benchOut != "" && len(records) > 0 {
		path, err := writeBenchArtifact(*benchOut, records)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC() // materialize the final live-heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
	if smokeErr != nil {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		log.Fatal(smokeErr)
	}
}

func table3() {
	rows := make([]eval.Table3Row, 0, 4)
	for _, d := range datagen.Domains() {
		rows = append(rows, eval.Table3(d))
	}
	fmt.Print(eval.FormatTable3(rows))
}

func fig8a(p eval.Protocol) {
	fmt.Println("Figure 8.a: average matching accuracy (%) per configuration")
	fmt.Printf("%-17s %9s %6s %12s %6s\n", "domain", "best-base", "+meta", "+constraints", "+xml")
	for _, d := range datagen.Domains() {
		ladder, err := eval.RunLadder(d, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-17s %6.1f(%s) %6.1f %12.1f %6.1f\n",
			d.Name, ladder.BestBase, initials(ladder.BestBaseName),
			ladder.Meta, ladder.Constraints, ladder.Full)
	}
}

func initials(name string) string {
	out := ""
	for _, r := range name {
		if r >= 'A' && r <= 'Z' {
			out += string(r)
		}
	}
	return out
}

func sensitivity(d *datagen.Domain, title string, p eval.Protocol) {
	fmt.Printf("%s: accuracy vs. listings per source (%s)\n", title, d.Name)
	counts := []int{5, 10, 20, 50, 100, 200, 300}
	pts, err := eval.RunSensitivity(d, counts, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%9s %9s %6s %12s %6s\n", "listings", "best-base", "+meta", "+constraints", "+xml")
	for _, pt := range pts {
		fmt.Printf("%9d %9.1f %6.1f %12.1f %6.1f\n",
			pt.Listings, pt.Base, pt.Meta, pt.Constraints, pt.Full)
	}
}

func fig9a(p eval.Protocol) {
	fmt.Println("Figure 9.a: lesion studies — accuracy (%) with one component removed")
	fmt.Printf("%-17s %8s %8s %8s %9s %9s\n",
		"domain", "-name", "-nbayes", "-content", "-handler", "complete")
	for _, d := range datagen.Domains() {
		l, err := eval.RunLesion(d, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-17s %8.1f %8.1f %8.1f %9.1f %9.1f\n",
			d.Name, l.WithoutName, l.WithoutNaiveBayes, l.WithoutContent,
			l.WithoutHandler, l.Complete)
	}
}

func fig9b(p eval.Protocol) {
	fmt.Println("Figure 9.b: schema information vs. data instances")
	fmt.Printf("%-17s %12s %10s %6s\n", "domain", "schema-only", "data-only", "both")
	for _, d := range datagen.Domains() {
		r, err := eval.RunSchemaVsData(d, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-17s %12.1f %10.1f %6.1f\n", d.Name, r.SchemaOnly, r.DataOnly, r.Both)
	}
}

func feedback(p eval.Protocol) {
	fmt.Println("§6.3: user feedback — corrections needed for perfect matching")
	fmt.Printf("%-17s %12s %9s\n", "domain", "corrections", "avg tags")
	for _, name := range []string{"Time Schedule", "Real Estate II"} {
		d := datagen.ByName(name)
		r, err := eval.RunFeedbackWorkers(d, 3, p.Listings, p.Seed, p.Workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-17s %12.1f %9.1f\n", d.Name, r.AvgCorrections, r.AvgTags)
	}
}
