package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/learn"
)

// Micro-benchmarks of the hot pipeline stages, mirroring the
// BenchmarkTrain/BenchmarkMatch/Benchmark*Predict benches in
// bench_test.go but runnable from this command so a BENCH_<n>.json
// artifact can record ns/op and allocs/op without the testing
// harness. Iteration counts are fixed (not auto-scaled) so allocs/op
// is reproducible run over run — that is what the -smoke gate
// compares against the committed baseline.

// microIters fixes the iteration count per micro-bench op.
var microIters = map[string]int{
	"Train":                 3,
	"Match":                 10,
	"NaiveBayesPredict":     4000,
	"NameMatcherPredict":    4000,
	"ContentMatcherPredict": 4000,
}

// measureMicro times n iterations of fn and records ns/op, allocs/op,
// and bytes/op from the runtime's monotonic allocation counters. One
// untimed warm-up call lets lazy structures (prediction caches, interim
// labelers) reach steady state, matching how the testing package's
// auto-scaling amortizes them.
func measureMicro(name string, n int, fn func()) benchRecord {
	fn()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchRecord{
		Op:          name,
		NsPerOp:     elapsed.Nanoseconds() / int64(n),
		AllocsPerOp: (after.Mallocs - before.Mallocs) / uint64(n),
		BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / uint64(n),
		Workers:     1,
	}
}

// microTrainSetup builds the standard 3-train/1-test Real Estate I
// scenario of bench_test.go: 40 listings per source, fixed seeds.
func microTrainSetup() (*core.Mediated, []*core.Source, *core.Source) {
	d := datagen.RealEstateI()
	med := d.Mediated()
	specs := d.Sources()
	var train []*core.Source
	for _, spec := range specs[:3] {
		train = append(train, spec.Generate(40, 1))
	}
	return med, train, specs[3].Generate(40, 1)
}

// microPredictSetup trains one base learner and collects the unseen
// source's instances, exactly like benchLearnerPredict in
// bench_test.go.
func microPredictSetup(spec core.LearnerSpec) (learn.Learner, []learn.Instance, error) {
	d := datagen.RealEstateI()
	med := d.Mediated()
	specs := d.Sources()
	trainExamples := core.ExtractExamples(med, []*core.Source{
		specs[0].Generate(40, 1), specs[1].Generate(40, 1),
	}, 0)
	l := spec.Factory()
	if err := l.Train(med.Labels(), trainExamples); err != nil {
		return nil, nil, err
	}
	cols, err := core.CollectColumns(context.Background(), med, specs[3].Generate(40, 1), 0)
	if err != nil {
		return nil, nil, err
	}
	var instances []learn.Instance
	for _, is := range cols {
		instances = append(instances, is...)
	}
	return l, instances, nil
}

// runMicro runs every micro-bench and returns its records.
func runMicro() ([]benchRecord, error) {
	med, train, test := microTrainSetup()
	cfg := core.DefaultConfig()
	cfg.Workers = 1

	var records []benchRecord
	records = append(records, measureMicro("Train", microIters["Train"], func() {
		if _, err := core.Train(med, train, cfg); err != nil {
			panic(err)
		}
	}))

	sys, err := core.Train(med, train, cfg)
	if err != nil {
		return nil, err
	}
	records = append(records, measureMicro("Match", microIters["Match"], func() {
		if _, err := sys.Match(context.Background(), test); err != nil {
			panic(err)
		}
	}))

	// Base-learner predicts, aligned with eval.MetaConfig's learner
	// order: NameMatcher, ContentMatcher, NaiveBayes.
	base := eval.MetaConfig().BaseLearners
	for _, mb := range []struct {
		op   string
		spec core.LearnerSpec
	}{
		{"NameMatcherPredict", base[0]},
		{"ContentMatcherPredict", base[1]},
		{"NaiveBayesPredict", base[2]},
	} {
		l, instances, err := microPredictSetup(mb.spec)
		if err != nil {
			return nil, err
		}
		i := 0
		records = append(records, measureMicro(mb.op, microIters[mb.op], func() {
			l.Predict(instances[i%len(instances)])
			i++
		}))
	}
	return records, nil
}

func micro() []benchRecord {
	records, err := runMicro()
	if err != nil {
		panic(fmt.Sprintf("micro benches: %v", err))
	}
	fmt.Println("micro-benchmarks (fixed iteration counts, serial):")
	fmt.Printf("%-24s %14s %12s %12s\n", "op", "ns/op", "allocs/op", "bytes/op")
	for _, r := range records {
		fmt.Printf("%-24s %14d %12d %12d\n", r.Op, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	fmt.Println()
	return records
}

// smokeTolerance accepts an allocs/op up to factor×baseline plus a
// small absolute slack: allocation counts are near-deterministic at
// fixed iteration counts, but caches warmed at slightly different
// points can shift a handful of allocations between runs.
const (
	smokeFactor = 1.25
	smokeSlack  = 16
)

// smokeOps are the ops the bench-smoke gate compares: the predict
// micro-benches, whose fixed-N allocation counts are stable enough to
// gate on. Train/Match are recorded but informational.
var smokeOps = map[string]bool{
	"NaiveBayesPredict":     true,
	"NameMatcherPredict":    true,
	"ContentMatcherPredict": true,
}

// benchSmoke compares fresh micro-bench records against the latest
// committed BENCH_<n>.json baseline in dir and reports allocs/op
// regressions beyond tolerance. It returns an error listing every
// regression; a missing baseline directory or artifact is not an error
// (first run records the baseline instead of gating on it).
func benchSmoke(records []benchRecord, dir string) error {
	baseline, path, err := latestBenchArtifact(dir, smokeOps)
	if err != nil {
		return err
	}
	if baseline == nil {
		fmt.Printf("bench-smoke: no baseline artifact in %s; skipping gate\n", dir)
		return nil
	}
	base := make(map[string]benchRecord, len(baseline))
	for _, r := range baseline {
		base[r.Op] = r
	}
	var regressions []string
	for _, r := range records {
		if !smokeOps[r.Op] {
			continue
		}
		b, ok := base[r.Op]
		if !ok {
			continue
		}
		limit := uint64(float64(b.AllocsPerOp)*smokeFactor) + smokeSlack
		if r.AllocsPerOp > limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs/op %d exceeds limit %d (baseline %d in %s)",
				r.Op, r.AllocsPerOp, limit, b.AllocsPerOp, path))
		}
	}
	if len(regressions) > 0 {
		out := "bench-smoke: allocs/op regression beyond tolerance:"
		for _, s := range regressions {
			out += "\n  " + s
		}
		return fmt.Errorf("%s", out)
	}
	fmt.Printf("bench-smoke: allocs/op within tolerance of %s\n", path)
	return nil
}
