package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestNextBenchPathSequences(t *testing.T) {
	dir := t.TempDir()
	path, err := nextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_1.json" {
		t.Errorf("empty dir: next = %s, want BENCH_1.json", filepath.Base(path))
	}
	// Numbering continues past the highest artifact, gaps included,
	// so earlier runs are never overwritten.
	for _, name := range []string{"BENCH_1.json", "BENCH_3.json", "BENCH_x.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("[]\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	path, err = nextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_4.json" {
		t.Errorf("next = %s, want BENCH_4.json", filepath.Base(path))
	}
}

func TestWriteBenchArtifactRoundTrips(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "artifacts") // exercises MkdirAll
	records := []benchRecord{
		{Op: "fig8a", NsPerOp: 12345678, AllocsPerOp: 4242, Workers: 8},
		{Op: "feedback", NsPerOp: 987, AllocsPerOp: 1, Workers: 1},
	}
	path, err := writeBenchArtifact(dir, records)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_1.json" {
		t.Errorf("wrote %s, want BENCH_1.json", filepath.Base(path))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []benchRecord
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("artifact is not JSON: %v\n%s", err, data)
	}
	if len(got) != 2 || got[0] != records[0] || got[1] != records[1] {
		t.Errorf("round trip = %+v, want %+v", got, records)
	}
	// The JSON field names are the recorded schema: op, ns_per_op,
	// allocs_per_op, workers.
	var raw []map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"op", "ns_per_op", "allocs_per_op", "workers"} {
		if _, ok := raw[0][key]; !ok {
			t.Errorf("artifact record missing %q field:\n%s", key, data)
		}
	}
	// A second run appends the next file in the sequence.
	path2, err := writeBenchArtifact(dir, records[:1])
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path2) != "BENCH_2.json" {
		t.Errorf("second write = %s, want BENCH_2.json", filepath.Base(path2))
	}
}

// TestLatestBenchArtifactFiltersOps pins the baseline-selection rule:
// the smoke gate must skip newer artifacts that record other
// experiment kinds (e.g. serve latencies) and land on the newest one
// containing the gated ops.
func TestLatestBenchArtifactFiltersOps(t *testing.T) {
	dir := t.TempDir()
	write := func(records []benchRecord) string {
		t.Helper()
		path, err := writeBenchArtifact(dir, records)
		if err != nil {
			t.Fatal(err)
		}
		return path
	}
	microPath := write([]benchRecord{{Op: "NaiveBayesPredict", AllocsPerOp: 8}})
	servePath := write([]benchRecord{{Op: "Serve/c1", QPS: 20}})

	records, path, err := latestBenchArtifact(dir, smokeOps)
	if err != nil {
		t.Fatal(err)
	}
	if path != microPath || len(records) != 1 || records[0].Op != "NaiveBayesPredict" {
		t.Errorf("filtered lookup = %s (%d records), want %s", path, len(records), microPath)
	}

	// Unfiltered lookup still returns the newest artifact outright.
	if _, path, err := latestBenchArtifact(dir, nil); err != nil || path != servePath {
		t.Errorf("unfiltered lookup = %s, %v; want %s", path, err, servePath)
	}

	// No artifact with the ops at all: absent baseline, not an error.
	if records, path, err := latestBenchArtifact(dir, map[string]bool{"Nope": true}); err != nil || records != nil || path != "" {
		t.Errorf("no-match lookup = %v, %s, %v; want nil baseline", records, path, err)
	}
}
