package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/serve"
)

// The serving benchmark (-exp serve) measures the HTTP matching path
// end to end: a matcher trained on the standard Real Estate I scenario
// is round-tripped through the model-artifact wire format into a serve
// registry, and concurrent clients hammer POST /v1/match against an
// in-process server. Each concurrency level records latency
// percentiles and sustained QPS into the BENCH_<n>.json artifact, so
// the serving layer's performance trajectory is tracked alongside the
// train/match micro-benches.

// serveRequests is the total request count per concurrency level —
// enough for stable p99 at the tail without minutes of runtime.
const serveRequests = 240

// serveConcurrency are the client counts each run sweeps.
var serveConcurrency = []int{1, 4, 8}

// serveBench trains the matcher, publishes it through the artifact
// path, and sweeps the concurrency levels.
func serveBench(workers int) ([]benchRecord, error) {
	med, train, test := microTrainSetup()
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	sys, err := core.Train(med, train, cfg)
	if err != nil {
		return nil, err
	}
	// Go through encode+decode rather than serving the trained system
	// directly: the benchmark should measure what production serves,
	// and the artifact round-trip is bit-preserving by contract.
	data, err := artifact.EncodeSystem("bench", sys)
	if err != nil {
		return nil, err
	}
	d, err := artifact.Decode(data)
	if err != nil {
		return nil, err
	}
	model, err := serve.ModelFromDecoded(d, 1)
	if err != nil {
		return nil, err
	}
	reg := serve.NewRegistry()
	reg.Set(model)
	ts := httptest.NewServer(serve.NewServer(reg, serve.Options{MaxWorkers: workers}).Handler())
	defer ts.Close()

	var xml bytes.Buffer
	for _, l := range test.Listings {
		xml.WriteString(l.String())
	}
	body, err := json.Marshal(serve.MatchRequest{
		Model:           "bench",
		SourceName:      test.Name,
		DTD:             test.Schema.String(),
		XML:             xml.String(),
		Workers:         1,
		OmitPredictions: true,
	})
	if err != nil {
		return nil, err
	}

	var records []benchRecord
	for _, clients := range serveConcurrency {
		rec, err := hammer(ts.URL+"/v1/match", body, clients, serveRequests)
		if err != nil {
			return nil, err
		}
		records = append(records, rec)
	}
	return records, nil
}

// hammer fires total match requests from clients concurrent goroutines
// and reduces the per-request latencies into one benchRecord.
func hammer(url string, body []byte, clients, total int) (benchRecord, error) {
	per := total / clients
	total = per * clients
	latencies := make([]int64, total)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				t0 := time.Now()
				resp, err := http.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("match returned status %d", resp.StatusCode)
					return
				}
				latencies[c*per+i] = time.Since(t0).Nanoseconds()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return benchRecord{}, err
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	return benchRecord{
		Op:      fmt.Sprintf("Serve/c%d", clients),
		NsPerOp: elapsed.Nanoseconds() / int64(total),
		Workers: 1,
		Clients: clients,
		P50Ns:   percentile(latencies, 50),
		P95Ns:   percentile(latencies, 95),
		P99Ns:   percentile(latencies, 99),
		QPS:     float64(total) / elapsed.Seconds(),
	}, nil
}

// percentile is the nearest-rank percentile of a sorted latency slice.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[(len(sorted)-1)*p/100]
}

// serveExp runs the benchmark and prints the latency table.
func serveExp(workers int) []benchRecord {
	records, err := serveBench(workers)
	if err != nil {
		panic(fmt.Sprintf("serve bench: %v", err))
	}
	fmt.Println("serving benchmark (POST /v1/match, in-process server):")
	fmt.Printf("%-10s %8s %12s %12s %12s %10s\n", "op", "clients", "p50", "p95", "p99", "qps")
	for _, r := range records {
		fmt.Printf("%-10s %8d %12s %12s %12s %10.1f\n", r.Op, r.Clients,
			time.Duration(r.P50Ns).Round(time.Microsecond),
			time.Duration(r.P95Ns).Round(time.Microsecond),
			time.Duration(r.P99Ns).Round(time.Microsecond),
			r.QPS)
	}
	fmt.Println()
	return records
}
