package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/serve"
)

// The serving benchmark (-exp serve) measures the HTTP matching path
// end to end: a matcher trained on the standard Real Estate I scenario
// is round-tripped through the model-artifact wire format into a serve
// registry, and concurrent clients hammer POST /v1/match against an
// in-process server. Each concurrency level records latency
// percentiles and sustained QPS into the BENCH_<n>.json artifact, so
// the serving layer's performance trajectory is tracked alongside the
// train/match micro-benches.

// serveRequests is the total request count per concurrency level —
// enough for stable p99 at the tail without minutes of runtime.
const serveRequests = 240

// serveConcurrency are the client counts each run sweeps. The deep end
// (16, 32) probes queueing behaviour well past the core count: on a
// saturated server added clients should stretch latency linearly, not
// collapse throughput.
var serveConcurrency = []int{1, 4, 8, 16, 32}

// serveBench trains the matcher, publishes it through the artifact
// path, and sweeps the concurrency levels.
func serveBench(workers int) ([]benchRecord, error) {
	med, train, test := microTrainSetup()
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	sys, err := core.Train(med, train, cfg)
	if err != nil {
		return nil, err
	}
	// Go through encode+decode rather than serving the trained system
	// directly: the benchmark should measure what production serves,
	// and the artifact round-trip is bit-preserving by contract.
	data, err := artifact.EncodeSystem("bench", sys)
	if err != nil {
		return nil, err
	}
	d, err := artifact.Decode(data)
	if err != nil {
		return nil, err
	}
	model, err := serve.ModelFromDecoded(d, 1)
	if err != nil {
		return nil, err
	}
	reg := serve.NewRegistry()
	reg.Set(model)
	ts := httptest.NewServer(serve.NewServer(reg, serve.Options{MaxWorkers: workers}).Handler())
	defer ts.Close()

	var xml bytes.Buffer
	for _, l := range test.Listings {
		xml.WriteString(l.String())
	}
	body, err := json.Marshal(serve.MatchRequest{
		Model:           "bench",
		SourceName:      test.Name,
		DTD:             test.Schema.String(),
		XML:             xml.String(),
		Workers:         1,
		OmitPredictions: true,
	})
	if err != nil {
		return nil, err
	}

	var records []benchRecord
	for _, clients := range serveConcurrency {
		rec, err := hammer(ts.URL+"/v1/match", body, clients, serveRequests)
		if err != nil {
			return nil, err
		}
		records = append(records, rec)
	}
	return records, nil
}

// hammer fires total match requests from clients concurrent goroutines
// and reduces the per-request latencies into one benchRecord.
// Allocations are measured as the process-wide Mallocs delta across the
// run divided by the request count: the server is in-process, so the
// figure is the whole request path — handler, matcher, and client
// harness — which is exactly the trajectory worth tracking run over
// run.
func hammer(url string, body []byte, clients, total int) (benchRecord, error) {
	per := total / clients
	total = per * clients
	latencies := make([]int64, total)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				t0 := time.Now()
				resp, err := http.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("match returned status %d", resp.StatusCode)
					return
				}
				latencies[c*per+i] = time.Since(t0).Nanoseconds()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	close(errs)
	if err := <-errs; err != nil {
		return benchRecord{}, err
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	return benchRecord{
		Op:          fmt.Sprintf("Serve/c%d", clients),
		NsPerOp:     elapsed.Nanoseconds() / int64(total),
		AllocsPerOp: (after.Mallocs - before.Mallocs) / uint64(total),
		BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / uint64(total),
		Workers:     1,
		Clients:     clients,
		P50Ns:       percentile(latencies, 50),
		P95Ns:       percentile(latencies, 95),
		P99Ns:       percentile(latencies, 99),
		QPS:         float64(total) / elapsed.Seconds(),
	}, nil
}

// percentile is the nearest-rank percentile of a sorted latency slice.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[(len(sorted)-1)*p/100]
}

// serveExp runs the benchmark and prints the latency table.
func serveExp(workers int) []benchRecord {
	records, err := serveBench(workers)
	if err != nil {
		panic(fmt.Sprintf("serve bench: %v", err))
	}
	fmt.Println("serving benchmark (POST /v1/match, in-process server):")
	fmt.Printf("%-10s %8s %12s %12s %12s %10s %12s\n", "op", "clients", "p50", "p95", "p99", "qps", "allocs/op")
	for _, r := range records {
		fmt.Printf("%-10s %8d %12s %12s %12s %10.1f %12d\n", r.Op, r.Clients,
			time.Duration(r.P50Ns).Round(time.Microsecond),
			time.Duration(r.P95Ns).Round(time.Microsecond),
			time.Duration(r.P99Ns).Round(time.Microsecond),
			r.QPS, r.AllocsPerOp)
	}
	fmt.Println()
	return records
}

// serveSmokeTolerance accepts a p99 up to factor×baseline plus an
// absolute slack: request-latency tails are noisier than allocation
// counts, and on a loaded CI machine a few-millisecond wobble on a
// sub-100ms tail must not fail the gate.
const (
	serveSmokeFactor  = 1.25
	serveSmokeSlackNs = 20 * int64(time.Millisecond)
)

// serveSmokeOps names the serving ops the p99 gate compares.
func serveSmokeOps() map[string]bool {
	ops := make(map[string]bool, len(serveConcurrency))
	for _, c := range serveConcurrency {
		ops[fmt.Sprintf("Serve/c%d", c)] = true
	}
	return ops
}

// serveSmoke compares fresh serving records against the latest
// committed BENCH_<n>.json that carries serve ops and reports p99
// regressions beyond tolerance. Concurrency levels absent from the
// baseline (a newly widened sweep) pass by default; a missing baseline
// skips the gate, mirroring benchSmoke.
func serveSmoke(records []benchRecord, dir string) error {
	baseline, path, err := latestBenchArtifact(dir, serveSmokeOps())
	if err != nil {
		return err
	}
	if baseline == nil {
		fmt.Printf("serve-smoke: no serving baseline artifact in %s; skipping gate\n", dir)
		return nil
	}
	base := make(map[string]benchRecord, len(baseline))
	for _, r := range baseline {
		base[r.Op] = r
	}
	ops := serveSmokeOps()
	var regressions []string
	for _, r := range records {
		if !ops[r.Op] {
			continue
		}
		b, ok := base[r.Op]
		if !ok {
			continue
		}
		limit := int64(float64(b.P99Ns)*serveSmokeFactor) + serveSmokeSlackNs
		if r.P99Ns > limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s: p99 %s exceeds limit %s (baseline %s in %s)",
				r.Op, time.Duration(r.P99Ns).Round(time.Microsecond),
				time.Duration(limit).Round(time.Microsecond),
				time.Duration(b.P99Ns).Round(time.Microsecond), path))
		}
	}
	if len(regressions) > 0 {
		out := "serve-smoke: p99 latency regression beyond tolerance:"
		for _, s := range regressions {
			out += "\n  " + s
		}
		return fmt.Errorf("%s", out)
	}
	fmt.Printf("serve-smoke: p99 within tolerance of %s\n", path)
	return nil
}
