package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// benchRecord is one experiment measurement in a BENCH_<n>.json
// artifact: which experiment ran, how long the run took, how much it
// allocated, and the worker count it fanned out on. CI uploads these
// so the repo's performance trajectory is recorded run over run.
type benchRecord struct {
	Op          string `json:"op"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op,omitempty"`
	Workers     int    `json:"workers"`

	// Serving-benchmark fields (-exp serve): request-latency
	// percentiles and sustained throughput over concurrent clients.
	Clients int     `json:"clients,omitempty"`
	P50Ns   int64   `json:"p50_ns,omitempty"`
	P95Ns   int64   `json:"p95_ns,omitempty"`
	P99Ns   int64   `json:"p99_ns,omitempty"`
	QPS     float64 `json:"qps,omitempty"`
}

var benchSeqRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// nextBenchPath returns the path of the first unused BENCH_<n>.json in
// dir, numbering from one past the highest existing artifact so the
// sequence records history instead of overwriting it.
func nextBenchPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	next := 1
	for _, e := range entries {
		m := benchSeqRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, err := strconv.Atoi(m[1]); err == nil && n >= next {
			next = n + 1
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next)), nil
}

// latestBenchArtifact loads the highest-numbered BENCH_<n>.json in dir
// that records at least one of the given ops (nil ops accepts any
// artifact). The filter matters because the sequence mixes experiment
// kinds — a serve-latency artifact must not silently satisfy the
// allocs/op smoke gate, which compares predict micro-benches. A
// missing directory or no matching artifact returns (nil, "", nil):
// the caller decides whether an absent baseline is an error.
func latestBenchArtifact(dir string, ops map[string]bool) ([]benchRecord, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", nil
		}
		return nil, "", err
	}
	var seqs []int
	for _, e := range entries {
		m := benchSeqRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, err := strconv.Atoi(m[1]); err == nil {
			seqs = append(seqs, n)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seqs)))
	for _, n := range seqs {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, "", err
		}
		var records []benchRecord
		if err := json.Unmarshal(data, &records); err != nil {
			return nil, "", fmt.Errorf("%s: %w", path, err)
		}
		if ops == nil {
			return records, path, nil
		}
		for _, r := range records {
			if ops[r.Op] {
				return records, path, nil
			}
		}
	}
	return nil, "", nil
}

// writeBenchArtifact writes records to the next BENCH_<n>.json in dir
// (created if missing) and returns the path written.
func writeBenchArtifact(dir string, records []benchRecord) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path, err := nextBenchPath(dir)
	if err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(records, "", "\t")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}
