package repro_test

// End-to-end integration tests across the public API: train, match,
// feedback, partial mappings, and translation in one flow. These
// complement the per-package unit tests with whole-pipeline checks.

import (
	"context"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/lsd"
)

// TestEndToEndRealEstate drives the full product path on synthetic Real
// Estate I data: train on three sources, match a fourth, apply one
// piece of feedback, and translate a listing into the mediated schema.
func TestEndToEndRealEstate(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end test is slow")
	}
	domain := datagen.RealEstateI()
	mediated := domain.Mediated()
	specs := domain.Sources()

	var training []*lsd.Source
	for _, spec := range specs[:3] {
		training = append(training, spec.Generate(30, 1))
	}
	sys, err := lsd.Train(mediated, training, lsd.DefaultConfig())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}

	test := specs[3].Generate(30, 1)
	res, err := sys.Match(context.Background(), test)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	acc := lsd.Accuracy(test, res.Mapping)
	if acc < 0.5 {
		t.Fatalf("end-to-end accuracy %.2f implausibly low", acc)
	}

	// Feedback must strictly fix a wrong tag and never lower accuracy
	// on this source.
	var wrongTag string
	for _, tag := range test.Schema.Tags() {
		if res.Mapping[tag] != test.LabelOf(tag) {
			wrongTag = tag
			break
		}
	}
	if wrongTag != "" {
		res2, err := sys.Match(context.Background(), test, lsd.MustMatch(wrongTag, test.LabelOf(wrongTag)))
		if err != nil {
			t.Fatalf("Match with feedback: %v", err)
		}
		if res2.Mapping[wrongTag] != test.LabelOf(wrongTag) {
			t.Errorf("feedback ignored for %s", wrongTag)
		}
		if acc2 := lsd.Accuracy(test, res2.Mapping); acc2 < acc {
			t.Errorf("feedback lowered accuracy: %.2f -> %.2f", acc, acc2)
		}
	}

	// Translation: the mapped listing must validate against the
	// mediated schema when translation uses the TRUE mapping.
	truth := lsd.Assignment{}
	for _, tag := range test.Schema.Tags() {
		truth[tag] = test.LabelOf(tag)
	}
	tr, err := lsd.NewTranslator(mediated.Schema, truth)
	if err != nil {
		t.Fatalf("NewTranslator: %v", err)
	}
	out := tr.Translate(test.Listings[0])
	if out.Tag != mediated.Schema.Root() {
		t.Errorf("translated root = %q", out.Tag)
	}
	if out.Size() < 3 {
		t.Errorf("translated doc suspiciously small:\n%s", out)
	}
}

// TestEndToEndHierarchyPartialMappings checks the §7 partial-mapping
// path on the Time Schedule domain with a CREDIT hierarchy.
func TestEndToEndHierarchyPartialMappings(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end test is slow")
	}
	domain := datagen.TimeSchedule()
	mediated := domain.Mediated()
	mediated.Hierarchy = lsd.NewLabelHierarchy(map[string]string{
		"COURSE-CREDIT":  "CREDIT",
		"SECTION-CREDIT": "CREDIT",
	})
	specs := domain.Sources()
	var training []*lsd.Source
	for _, spec := range specs[:3] {
		training = append(training, spec.Generate(20, 1))
	}
	sys, err := lsd.Train(mediated, training, lsd.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Match(context.Background(), specs[3].Generate(20, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial == nil {
		t.Fatal("Partial nil despite hierarchy")
	}
	for tag, anc := range res.Partial {
		if anc != "CREDIT" {
			t.Errorf("Partial[%s] = %q, want only hierarchy ancestors", tag, anc)
		}
	}
}

// TestDescribeListsEveryTag guards the report format.
func TestDescribeListsEveryTag(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	domain := datagen.FacultyListings()
	specs := domain.Sources()
	var training []*lsd.Source
	for _, spec := range specs[:3] {
		training = append(training, spec.Generate(10, 1))
	}
	sys, err := lsd.Train(domain.Mediated(), training, lsd.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	test := specs[4].Generate(10, 1)
	res, err := sys.Match(context.Background(), test)
	if err != nil {
		t.Fatal(err)
	}
	report := lsd.Describe(test, res)
	for _, tag := range test.Schema.Tags() {
		if !strings.Contains(report, tag) {
			t.Errorf("Describe missing tag %q", tag)
		}
	}
}
