package repro_test

// One benchmark per table and figure of the paper's §6 evaluation, plus
// ablation benches for the design choices DESIGN.md calls out and
// micro-benchmarks of the hot components. Accuracy results are reported
// through testing.B metrics (ReportMetric, unit "acc%"), so
// `go test -bench=. -benchmem` both times the pipeline and regenerates
// the numbers recorded in EXPERIMENTS.md.
//
// Scale: the paper's protocol is 300 listings x 3 samples x 10 splits.
// These benches default to a reduced protocol (60 listings, 1 sample, 4
// splits) so a full run stays in the minutes range; set the environment
// variable LSD_BENCH_FULL=1 for the paper-scale protocol.

import (
	"context"
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/learn"
	"repro/internal/meta"
	"repro/lsd"
)

func protocol() eval.Protocol {
	if os.Getenv("LSD_BENCH_FULL") != "" {
		return eval.Protocol{Listings: 300, Samples: 3, Seed: 7}
	}
	return eval.Protocol{Listings: 60, Samples: 1, Seed: 7, MaxSplits: 4}
}

// BenchmarkTable3 regenerates Table 3: the domain and source
// characteristics of the four evaluation domains.
func BenchmarkTable3(b *testing.B) {
	var rows []eval.Table3Row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, d := range datagen.Domains() {
			rows = append(rows, eval.Table3(d))
		}
	}
	b.StopTimer()
	b.Log("\n" + eval.FormatTable3(rows))
}

// BenchmarkFigure8a regenerates Figure 8.a: the configuration ladder
// (best single base learner → +meta-learner → +constraint handler →
// +XML learner) for every domain. The paper's shape: each addition
// improves accuracy; the complete system reaches 71-92%.
func BenchmarkFigure8a(b *testing.B) {
	p := protocol()
	for _, d := range datagen.Domains() {
		d := d
		b.Run(shortName(d.Name), func(b *testing.B) {
			var ladder *eval.Ladder
			var err error
			for i := 0; i < b.N; i++ {
				ladder, err = eval.RunLadder(d, p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(ladder.BestBase, "base_acc%")
			b.ReportMetric(ladder.Meta, "meta_acc%")
			b.ReportMetric(ladder.Constraints, "constr_acc%")
			b.ReportMetric(ladder.Full, "full_acc%")
			b.Logf("%s: base=%.1f(%s) meta=%.1f constraints=%.1f full=%.1f",
				d.Name, ladder.BestBase, ladder.BestBaseName,
				ladder.Meta, ladder.Constraints, ladder.Full)
		})
	}
}

// benchSensitivity powers Figures 8.b and 8.c: accuracy as a function
// of the number of listings per source. The paper's shape: steep climb
// from 5 to 20 listings, little change 20-200, flat after 200.
func benchSensitivity(b *testing.B, d *datagen.Domain) {
	p := protocol()
	counts := []int{5, 10, 20, 50, 100, 200}
	if os.Getenv("LSD_BENCH_FULL") != "" {
		counts = append(counts, 300, 500)
	}
	var pts []eval.SensitivityPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = eval.RunSensitivity(d, counts, p)
		if err != nil {
			b.Fatal(err)
		}
	}
	out := fmt.Sprintf("%s sensitivity:\n", d.Name)
	for _, pt := range pts {
		out += fmt.Sprintf("  listings=%3d base=%.1f meta=%.1f constraints=%.1f full=%.1f\n",
			pt.Listings, pt.Base, pt.Meta, pt.Constraints, pt.Full)
		b.ReportMetric(pt.Full, fmt.Sprintf("full@%d_acc%%", pt.Listings))
	}
	b.Log("\n" + out)
}

// BenchmarkFigure8b regenerates Figure 8.b (Real Estate I).
func BenchmarkFigure8b(b *testing.B) { benchSensitivity(b, datagen.RealEstateI()) }

// BenchmarkFigure8c regenerates Figure 8.c (Time Schedule).
func BenchmarkFigure8c(b *testing.B) { benchSensitivity(b, datagen.TimeSchedule()) }

// BenchmarkFigure9a regenerates Figure 9.a: lesion studies. The paper's
// shape: every component contributes; no clearly dominant one.
func BenchmarkFigure9a(b *testing.B) {
	p := protocol()
	for _, d := range datagen.Domains() {
		d := d
		b.Run(shortName(d.Name), func(b *testing.B) {
			var l *eval.Lesion
			var err error
			for i := 0; i < b.N; i++ {
				l, err = eval.RunLesion(d, p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(l.WithoutName, "noName_acc%")
			b.ReportMetric(l.WithoutNaiveBayes, "noNB_acc%")
			b.ReportMetric(l.WithoutContent, "noContent_acc%")
			b.ReportMetric(l.WithoutHandler, "noHandler_acc%")
			b.ReportMetric(l.Complete, "complete_acc%")
			b.Logf("%s: -name=%.1f -nb=%.1f -content=%.1f -handler=%.1f complete=%.1f",
				d.Name, l.WithoutName, l.WithoutNaiveBayes, l.WithoutContent,
				l.WithoutHandler, l.Complete)
		})
	}
}

// BenchmarkFigure9b regenerates Figure 9.b: schema-only vs data-only vs
// both. The paper's shape: both beats either alone.
func BenchmarkFigure9b(b *testing.B) {
	p := protocol()
	for _, d := range datagen.Domains() {
		d := d
		b.Run(shortName(d.Name), func(b *testing.B) {
			var r *eval.SchemaVsData
			var err error
			for i := 0; i < b.N; i++ {
				r, err = eval.RunSchemaVsData(d, p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.SchemaOnly, "schema_acc%")
			b.ReportMetric(r.DataOnly, "data_acc%")
			b.ReportMetric(r.Both, "both_acc%")
			b.Logf("%s: schema=%.1f data=%.1f both=%.1f",
				d.Name, r.SchemaOnly, r.DataOnly, r.Both)
		})
	}
}

// BenchmarkFeedback regenerates the §6.3 numbers: corrections needed to
// reach perfect matching. Paper: ~3 of 17 tags (Time Schedule), ~6.3 of
// 38.6 tags (Real Estate II).
func BenchmarkFeedback(b *testing.B) {
	p := protocol()
	for _, name := range []string{"Time Schedule", "Real Estate II"} {
		d := datagen.ByName(name)
		b.Run(shortName(name), func(b *testing.B) {
			var r *eval.FeedbackResult
			var err error
			for i := 0; i < b.N; i++ {
				r, err = eval.RunFeedback(d, 3, p.Listings, p.Seed)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.AvgCorrections, "corrections")
			b.ReportMetric(r.AvgTags, "tags")
			b.Logf("%s: %.1f corrections on %.1f tags", name, r.AvgCorrections, r.AvgTags)
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation benches for design choices (beyond the paper's figures).

// BenchmarkAblationStacking compares the meta-learner's weighting
// schemes: regression weights (the paper's stacking) vs uniform.
func BenchmarkAblationStacking(b *testing.B) {
	p := protocol()
	d := datagen.TimeSchedule()
	for _, mode := range []struct {
		name string
		cfg  func() core.Config
	}{
		{"regression", func() core.Config { return eval.MetaConfig() }},
		{"uniform", func() core.Config {
			c := eval.MetaConfig()
			c.Meta.UniformWeights = true
			return c
		}},
		{"raw-unnormalized", func() core.Config {
			c := eval.MetaConfig()
			c.Meta.RawWeights = true
			return c
		}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var acc float64
			var err error
			for i := 0; i < b.N; i++ {
				acc, err = eval.Run(d, mode.cfg(), p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(acc, "acc%")
		})
	}
}

// BenchmarkAblationConverter compares the prediction converter's
// average (the paper's choice) against max.
func BenchmarkAblationConverter(b *testing.B) {
	p := protocol()
	d := datagen.RealEstateI()
	for _, mode := range []struct {
		name string
		conv meta.ConverterMode
	}{{"average", meta.Average}, {"max", meta.Max}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			cfg := eval.FullConfig()
			cfg.Converter = mode.conv
			var acc float64
			var err error
			for i := 0; i < b.N; i++ {
				acc, err = eval.Run(d, cfg, p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(acc, "acc%")
		})
	}
}

// BenchmarkAblationStatsLearner measures the Semint-style statistics
// learner's contribution (the §8 plug-in) on Real Estate I, whose
// numeric scales (price vs. bath counts) are its natural target.
func BenchmarkAblationStatsLearner(b *testing.B) {
	p := protocol()
	d := datagen.RealEstateI()
	for _, mode := range []struct {
		name   string
		extend bool
	}{{"stock", false}, {"with-stats-learner", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			cfg := eval.FullConfig()
			if mode.extend {
				cfg.BaseLearners = append(cfg.BaseLearners, core.LearnerSpec(lsd.NewStatsLearner()))
			}
			var acc float64
			var err error
			for i := 0; i < b.N; i++ {
				acc, err = eval.Run(d, cfg, p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(acc, "acc%")
		})
	}
}

// BenchmarkAblationFormatLearner measures the §7 format learner's
// contribution on the course-code domain.
func BenchmarkAblationFormatLearner(b *testing.B) {
	p := protocol()
	d := datagen.TimeSchedule()
	for _, mode := range []struct {
		name   string
		extend bool
	}{{"stock", false}, {"with-format-learner", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			cfg := eval.FullConfig()
			if mode.extend {
				cfg.BaseLearners = append(cfg.BaseLearners, core.LearnerSpec(lsd.NewFormatLearner()))
			}
			var acc float64
			var err error
			for i := 0; i < b.N; i++ {
				acc, err = eval.Run(d, cfg, p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(acc, "acc%")
		})
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the hot pipeline components.

func trainedSystem(b *testing.B) (*core.System, *core.Source) {
	b.Helper()
	return trainedSystemWorkers(b, 0)
}

// trainedSystemWorkers trains the benchmark system with an explicit
// worker-pool size (0 = one per CPU, 1 = serial).
func trainedSystemWorkers(b *testing.B, workers int) (*core.System, *core.Source) {
	b.Helper()
	d := datagen.RealEstateI()
	med := d.Mediated()
	specs := d.Sources()
	var train []*core.Source
	for _, spec := range specs[:3] {
		train = append(train, spec.Generate(40, 1))
	}
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	sys, err := core.Train(med, train, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sys, specs[3].Generate(40, 1)
}

// BenchmarkTrain measures the full training phase on Real Estate I.
func BenchmarkTrain(b *testing.B) {
	d := datagen.RealEstateI()
	med := d.Mediated()
	specs := d.Sources()
	var train []*core.Source
	for _, spec := range specs[:3] {
		train = append(train, spec.Generate(40, 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(med, train, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTrainWorkers measures training at an explicit pool size.
func benchTrainWorkers(b *testing.B, workers int) {
	d := datagen.RealEstateI()
	med := d.Mediated()
	specs := d.Sources()
	var train []*core.Source
	for _, spec := range specs[:3] {
		train = append(train, spec.Generate(40, 1))
	}
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(med, train, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainSerial pins training to one worker: the baseline for
// the parallel speedup.
func BenchmarkTrainSerial(b *testing.B) { benchTrainWorkers(b, 1) }

// BenchmarkTrainParallel trains with one worker per CPU. On a
// multi-core machine this should beat BenchmarkTrainSerial; the outputs
// are bit-identical either way (see determinism_test.go).
func BenchmarkTrainParallel(b *testing.B) { benchTrainWorkers(b, 0) }

// BenchmarkMatch measures the matching phase (learners + meta +
// converter + constraint handler) on one unseen source.
func BenchmarkMatch(b *testing.B) {
	sys, test := trainedSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Match(context.Background(), test); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMatchWorkers measures matching at an explicit pool size.
func benchMatchWorkers(b *testing.B, workers int) {
	sys, test := trainedSystemWorkers(b, workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Match(context.Background(), test); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatchSerial pins matching to one worker: the baseline for
// the parallel speedup.
func BenchmarkMatchSerial(b *testing.B) { benchMatchWorkers(b, 1) }

// BenchmarkMatchParallel matches with one worker per CPU; the mapping
// is bit-identical to the serial run (see determinism_test.go).
func BenchmarkMatchParallel(b *testing.B) { benchMatchWorkers(b, 0) }

// benchLearnerPredict measures one instance prediction for a trained
// base learner on Real Estate I data.
func benchLearnerPredict(b *testing.B, spec core.LearnerSpec) {
	d := datagen.RealEstateI()
	med := d.Mediated()
	specs := d.Sources()
	trainExamples := core.ExtractExamples(med, []*core.Source{
		specs[0].Generate(40, 1), specs[1].Generate(40, 1),
	}, 0)
	l := spec.Factory()
	if err := l.Train(med.Labels(), trainExamples); err != nil {
		b.Fatal(err)
	}
	cols, err := core.CollectColumns(context.Background(), med, specs[3].Generate(40, 1), 0)
	if err != nil {
		b.Fatal(err)
	}
	var instances []learn.Instance
	for _, is := range cols {
		instances = append(instances, is...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Predict(instances[i%len(instances)])
	}
}

// BenchmarkNaiveBayesPredict measures one Naive Bayes prediction.
func BenchmarkNaiveBayesPredict(b *testing.B) {
	benchLearnerPredict(b, eval.MetaConfig().BaseLearners[2])
}

// BenchmarkNameMatcherPredict measures one name-matcher prediction.
func BenchmarkNameMatcherPredict(b *testing.B) {
	benchLearnerPredict(b, eval.MetaConfig().BaseLearners[0])
}

// BenchmarkContentMatcherPredict measures one content-matcher prediction.
func BenchmarkContentMatcherPredict(b *testing.B) {
	benchLearnerPredict(b, eval.MetaConfig().BaseLearners[1])
}

// BenchmarkDatagen measures synthetic listing generation.
func BenchmarkDatagen(b *testing.B) {
	spec := datagen.RealEstateI().Sources()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.Generate(100, int64(i))
	}
}

func shortName(domain string) string {
	switch domain {
	case "Real Estate I":
		return "RealEstateI"
	case "Time Schedule":
		return "TimeSchedule"
	case "Faculty Listings":
		return "FacultyListings"
	case "Real Estate II":
		return "RealEstateII"
	}
	return domain
}
