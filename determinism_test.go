package repro_test

// End-to-end determinism tests for the parallel pipeline: training and
// matching must produce byte-identical results at every worker-pool
// size. These are the acceptance tests for the concurrency layer — run
// them under -race (CI does) to also prove the fan-out is data-race
// free.

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/learn"
	"repro/internal/learners/contentmatcher"
	"repro/internal/learners/naivebayes"
	"repro/internal/learners/namematcher"
)

// workerSettings are the pool sizes every determinism test compares:
// serial, a fixed small pool, and one worker per CPU (0). The list is
// deduplicated because GOMAXPROCS can collapse settings into each
// other (on a 4-CPU machine GOMAXPROCS(0) == 4; with GOMAXPROCS=1 it
// equals the serial setting), and a duplicated entry would silently
// re-run the same comparison instead of exercising a distinct pool.
func workerSettings() []int {
	seen := make(map[int]bool)
	var out []int
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0), 0} {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// trainDomain builds the standard 3-train/1-test scenario on Real
// Estate I with fixed seeds.
func trainDomain(t *testing.T, workers int) (*core.System, *core.Source) {
	t.Helper()
	d := datagen.RealEstateI()
	med := d.Mediated()
	specs := d.Sources()
	var train []*core.Source
	for _, spec := range specs[:3] {
		train = append(train, spec.Generate(25, 11))
	}
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	sys, err := core.Train(med, train, cfg)
	if err != nil {
		t.Fatalf("workers=%d: Train: %v", workers, err)
	}
	return sys, specs[3].Generate(25, 11)
}

// weightsFingerprint renders every stacker weight with full float64
// precision, in deterministic (label, learner) order.
func weightsFingerprint(sys *core.System) string {
	st := sys.Stacker()
	var b strings.Builder
	labels := append([]string(nil), sys.Labels()...)
	sort.Strings(labels)
	for _, label := range labels {
		for _, name := range st.LearnerNames() {
			fmt.Fprintf(&b, "%s/%s=%.17g\n", label, name, st.Weight(label, name))
		}
	}
	return b.String()
}

// matchFingerprint renders the mapping and every per-tag confidence
// score with full float64 precision, in deterministic order.
func matchFingerprint(sys *core.System, res *core.MatchResult) string {
	var b strings.Builder
	tags := make([]string, 0, len(res.TagPredictions))
	for tag := range res.TagPredictions {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	labels := append([]string(nil), sys.Labels()...)
	sort.Strings(labels)
	for _, tag := range tags {
		fmt.Fprintf(&b, "%s -> %s\n", tag, res.Mapping[tag])
		p := res.TagPredictions[tag]
		for _, label := range labels {
			fmt.Fprintf(&b, "  %s=%.17g\n", label, p[label])
		}
	}
	return b.String()
}

// TestTrainDeterministic asserts the fitted meta-learner weights are
// bit-identical at every worker setting.
func TestTrainDeterministic(t *testing.T) {
	sys, _ := trainDomain(t, 1)
	want := weightsFingerprint(sys)
	if want == "" {
		t.Fatal("empty weights fingerprint")
	}
	for _, w := range workerSettings()[1:] {
		sys, _ := trainDomain(t, w)
		if got := weightsFingerprint(sys); got != want {
			t.Errorf("workers=%d: stacker weights differ from serial run\nserial:\n%s\ngot:\n%s",
				w, want, got)
		}
	}
}

// TestMatchDeterministic asserts the proposed mapping and the per-tag
// confidence distributions are bit-identical at every worker setting —
// both when the system itself was trained at that setting and when
// matching fans out over the pool.
func TestMatchDeterministic(t *testing.T) {
	sys, test := trainDomain(t, 1)
	res, err := sys.Match(context.Background(), test)
	if err != nil {
		t.Fatal(err)
	}
	want := matchFingerprint(sys, res)
	if want == "" {
		t.Fatal("empty match fingerprint")
	}
	for _, w := range workerSettings()[1:] {
		sys, test := trainDomain(t, w)
		res, err := sys.Match(context.Background(), test)
		if err != nil {
			t.Fatalf("workers=%d: Match: %v", w, err)
		}
		if got := matchFingerprint(sys, res); got != want {
			t.Errorf("workers=%d: match result differs from serial run\nserial:\n%s\ngot:\n%s",
				w, want, got)
		}
	}
}

// TestSaveLoadDeterministic asserts the model-artifact round trip is
// lossless in behaviour, not just in bytes: for every domain, a
// matcher restored from an encoded artifact proposes bit-identical
// mappings and confidence scores to the matcher it was saved from, on
// every instance of an unseen source.
func TestSaveLoadDeterministic(t *testing.T) {
	for _, d := range datagen.Domains() {
		t.Run(d.Name, func(t *testing.T) {
			med := d.Mediated()
			specs := d.Sources()
			var train []*core.Source
			for _, spec := range specs[:len(specs)-1] {
				train = append(train, spec.Generate(15, 11))
			}
			test := specs[len(specs)-1].Generate(15, 11)

			cfg := core.DefaultConfig()
			cfg.Workers = 2
			sys, err := core.Train(med, train, cfg)
			if err != nil {
				t.Fatalf("Train: %v", err)
			}
			res, err := sys.Match(context.Background(), test)
			if err != nil {
				t.Fatalf("Match: %v", err)
			}
			want := matchFingerprint(sys, res)
			if want == "" {
				t.Fatal("empty match fingerprint")
			}

			data, err := artifact.EncodeSystem(d.Name, sys)
			if err != nil {
				t.Fatalf("EncodeSystem: %v", err)
			}
			dec, err := artifact.Decode(data)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			for _, w := range workerSettings() {
				restored, err := dec.System(w)
				if err != nil {
					t.Fatalf("workers=%d: System: %v", w, err)
				}
				res, err := restored.Match(context.Background(), test)
				if err != nil {
					t.Fatalf("workers=%d: Match: %v", w, err)
				}
				if got := matchFingerprint(restored, res); got != want {
					t.Errorf("workers=%d: restored matcher differs from original\noriginal:\n%s\nrestored:\n%s",
						w, want, got)
				}
			}
		})
	}
}

// shardedLearners returns fresh, untrained instances of every learner
// implementing learn.BatchPredictor, with the given prediction-cache
// shard count where the learner has a cache.
func shardedLearners(shards int) []learn.Learner {
	return []learn.Learner{
		namematcher.NewSharded(shards),
		contentmatcher.NewSharded(shards),
		naivebayes.New(),
	}
}

// TestBatchPredictDeterministic is the acceptance test of the batched
// serve path: PredictBatch and per-instance Predict must be
// bit-identical — at the learner level for every instance of an
// unseen source, and at the system level for the full Match output —
// across all four domains, cache shard counts {1, 8}, and worker
// counts {1, 4, 8}.
func TestBatchPredictDeterministic(t *testing.T) {
	for _, d := range datagen.Domains() {
		t.Run(d.Name, func(t *testing.T) {
			med := d.Mediated()
			specs := d.Sources()
			var train []*core.Source
			for _, spec := range specs[:len(specs)-1] {
				train = append(train, spec.Generate(15, 11))
			}
			test := specs[len(specs)-1].Generate(15, 11)

			// Learner-level: batch-score every instance of the unseen
			// source and compare against a fresh copy's per-instance
			// Predict (fresh, so the reference cannot be served from a
			// cache the batch pass warmed).
			labels := med.Labels()
			examples := core.ExtractExamples(med, train, 0)
			cols, err := core.CollectColumns(context.Background(), med, test, 0)
			if err != nil {
				t.Fatal(err)
			}
			tags := make([]string, 0, len(cols))
			for tag := range cols {
				tags = append(tags, tag)
			}
			sort.Strings(tags)
			var ins []learn.Instance
			for _, tag := range tags {
				ins = append(ins, cols[tag]...)
			}
			for _, shards := range []int{1, 8} {
				refs := shardedLearners(shards)
				for li, l := range shardedLearners(shards) {
					if err := l.Train(labels, examples); err != nil {
						t.Fatalf("shards=%d: training %s: %v", shards, l.Name(), err)
					}
					if err := refs[li].Train(labels, examples); err != nil {
						t.Fatalf("shards=%d: training reference %s: %v", shards, l.Name(), err)
					}
					bp, ok := l.(learn.BatchPredictor)
					if !ok {
						t.Fatalf("%s does not implement learn.BatchPredictor", l.Name())
					}
					batch := bp.PredictBatch(ins)
					if len(batch) != len(ins) {
						t.Fatalf("shards=%d %s: %d predictions for %d instances", shards, l.Name(), len(batch), len(ins))
					}
					for i, in := range ins {
						want := refs[li].Predict(in)
						if len(batch[i]) != len(want) {
							t.Fatalf("shards=%d %s instance %d: %d labels, want %d",
								shards, l.Name(), i, len(batch[i]), len(want))
						}
						for label, s := range want {
							if g, ok := batch[i][label]; !ok || g != s {
								t.Fatalf("shards=%d %s instance %d label %s: batch %.17g, per-instance %.17g",
									shards, l.Name(), i, label, g, s)
							}
						}
					}
				}
			}

			// System-level: one trained system, matched with the batched
			// path at every worker count against the per-instance
			// reference path.
			for _, shards := range []int{1, 8} {
				shards := shards
				cfg := core.DefaultConfig()
				cfg.Workers = 2
				cfg.BaseLearners = []core.LearnerSpec{
					{Name: "NameMatcher", Factory: func() learn.Learner { return namematcher.NewSharded(shards) }},
					{Name: "ContentMatcher", Factory: func() learn.Learner { return contentmatcher.NewSharded(shards) }},
					{Name: "NaiveBayes", Factory: naivebayes.Factory},
				}
				sys, err := core.Train(med, train, cfg)
				if err != nil {
					t.Fatalf("shards=%d: Train: %v", shards, err)
				}
				refRes, err := sys.WithBatchPredict(false).WithWorkers(1).Match(context.Background(), test)
				if err != nil {
					t.Fatalf("shards=%d: reference Match: %v", shards, err)
				}
				want := matchFingerprint(sys, refRes)
				if want == "" {
					t.Fatal("empty reference match fingerprint")
				}
				for _, w := range []int{1, 4, 8} {
					res, err := sys.WithWorkers(w).Match(context.Background(), test)
					if err != nil {
						t.Fatalf("shards=%d workers=%d: Match: %v", shards, w, err)
					}
					if got := matchFingerprint(sys, res); got != want {
						t.Errorf("shards=%d workers=%d: batched match differs from per-instance reference\nreference:\n%s\ngot:\n%s",
							shards, w, want, got)
					}
				}
			}
		})
	}
}

// TestMatchRepeatedDeterministic asserts that re-matching with the same
// trained system is stable: the prediction caches warmed by the first
// pass must not change the second pass's output.
func TestMatchRepeatedDeterministic(t *testing.T) {
	sys, test := trainDomain(t, 4)
	first, err := sys.Match(context.Background(), test)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sys.Match(context.Background(), test)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := matchFingerprint(sys, first), matchFingerprint(sys, second); a != b {
		t.Errorf("repeated Match differs:\nfirst:\n%s\nsecond:\n%s", a, b)
	}
}
