package transform

import (
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/dtd"
	"repro/internal/learn"
	"repro/internal/xmltree"
)

var mediated = dtd.MustParse(`
<!ELEMENT LISTING (ADDRESS?, PRICE?, CONTACT-INFO?)>
<!ELEMENT ADDRESS (#PCDATA)>
<!ELEMENT PRICE (#PCDATA)>
<!ELEMENT CONTACT-INFO (AGENT-NAME?, AGENT-PHONE?)>
<!ELEMENT AGENT-NAME (#PCDATA)>
<!ELEMENT AGENT-PHONE (#PCDATA)>
`)

func doc(t *testing.T, s string) *xmltree.Node {
	t.Helper()
	n, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestTranslateFlatToNested(t *testing.T) {
	// The source is flat: name and phone sit directly under the root.
	// Translation must re-nest them under CONTACT-INFO.
	tr, err := New(mediated, constraint.Assignment{
		"entry": "LISTING",
		"loc":   "ADDRESS",
		"cost":  "PRICE",
		"name":  "AGENT-NAME",
		"tel":   "AGENT-PHONE",
		"ad-id": learn.Other,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := doc(t, `<entry><loc>Seattle, WA</loc><cost>$70,000</cost>
		<name>Kate Richardson</name><tel>(206) 523 4719</tel><ad-id>42</ad-id></entry>`)
	out := tr.Translate(src)

	if out.Tag != "LISTING" {
		t.Fatalf("root = %q", out.Tag)
	}
	if got := out.First("ADDRESS"); got == nil || got.Text != "Seattle, WA" {
		t.Errorf("ADDRESS = %v", got)
	}
	contact := out.First("CONTACT-INFO")
	if contact == nil {
		t.Fatal("CONTACT-INFO not created")
	}
	if got := contact.First("AGENT-NAME"); got == nil || got.Text != "Kate Richardson" {
		t.Errorf("AGENT-NAME = %v", got)
	}
	if got := contact.First("AGENT-PHONE"); got == nil || got.Text != "(206) 523 4719" {
		t.Errorf("AGENT-PHONE = %v", got)
	}
	// OTHER tags dropped.
	if len(out.FindAll("ad-id")) != 0 {
		t.Error("OTHER tag survived translation")
	}
	// The output validates against the mediated schema.
	if err := mediated.Validate(out); err != nil {
		t.Errorf("translated doc invalid: %v\n%s", err, out)
	}
}

func TestTranslateNestedToNested(t *testing.T) {
	tr, err := New(mediated, constraint.Assignment{
		"listing": "LISTING",
		"agent":   "CONTACT-INFO",
		"name":    "AGENT-NAME",
		"phone":   "AGENT-PHONE",
	})
	if err != nil {
		t.Fatal(err)
	}
	src := doc(t, `<listing><agent><name>Mike</name><phone>305</phone></agent></listing>`)
	out := tr.Translate(src)
	contact := out.First("CONTACT-INFO")
	if contact == nil || contact.First("AGENT-NAME") == nil {
		t.Fatalf("nested translation wrong:\n%s", out)
	}
	if err := mediated.Validate(out); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestTranslateOrdersSiblings(t *testing.T) {
	tr, err := New(mediated, constraint.Assignment{
		"e": "LISTING", "p": "PRICE", "a": "ADDRESS",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Source order is price-then-address; mediated order is
	// address-then-price.
	out := tr.Translate(doc(t, `<e><p>1</p><a>x</a></e>`))
	if len(out.Children) != 2 || out.Children[0].Tag != "ADDRESS" {
		t.Errorf("sibling order = %v", out)
	}
	if err := mediated.Validate(out); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestTranslateAll(t *testing.T) {
	tr, _ := New(mediated, constraint.Assignment{"e": "LISTING", "a": "ADDRESS"})
	docs := []*xmltree.Node{
		doc(t, `<e><a>x</a></e>`),
		doc(t, `<e><a>y</a></e>`),
	}
	outs := tr.TranslateAll(docs)
	if len(outs) != 2 || outs[1].First("ADDRESS").Text != "y" {
		t.Errorf("TranslateAll = %v", outs)
	}
}

func TestCoverage(t *testing.T) {
	tr, _ := New(mediated, constraint.Assignment{
		"a": "ADDRESS", "n": "AGENT-NAME",
	})
	covered, missing := tr.Coverage()
	if strings.Join(covered, ",") != "ADDRESS,AGENT-NAME" {
		t.Errorf("covered = %v", covered)
	}
	if strings.Join(missing, ",") != "AGENT-PHONE,PRICE" {
		t.Errorf("missing = %v", missing)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := New(mediated, constraint.Assignment{"x": "NOT-A-LABEL"}); err == nil {
		t.Error("unknown target label accepted")
	}
	// OTHER targets are fine.
	if _, err := New(mediated, constraint.Assignment{"x": learn.Other}); err != nil {
		t.Errorf("OTHER target rejected: %v", err)
	}
}

func TestTranslateRepeatedLeafConcatenates(t *testing.T) {
	tr, _ := New(mediated, constraint.Assignment{"e": "LISTING", "a": "ADDRESS"})
	out := tr.Translate(doc(t, `<e><a>x</a><a>y</a></e>`))
	if got := out.First("ADDRESS").Text; got != "x y" {
		t.Errorf("concatenated text = %q", got)
	}
}
