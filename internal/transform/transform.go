// Package transform applies a learned 1-1 mapping: it translates XML
// documents from a source schema into the mediated schema. This is the
// step the mappings exist for (§2: "semantic mappings ... enable
// transforming data instances from one schema to instances of the
// other") — the data-integration system uses it to answer
// mediated-schema queries with source data.
//
// Translation renames matched tags to their mediated labels, drops
// OTHER tags, and restructures: because source schemas flatten or
// re-nest freely, matched elements are re-attached under their mediated
// parents (creating missing intermediate elements on demand) and
// reordered to the mediated content-model order.
package transform

import (
	"fmt"
	"sort"

	"repro/internal/constraint"
	"repro/internal/dtd"
	"repro/internal/learn"
	"repro/internal/xmltree"
)

// Translator rewrites source documents into the mediated schema using a
// fixed mapping.
type Translator struct {
	mediated *dtd.Schema
	mapping  constraint.Assignment
	// parentOf caches each mediated tag's parent in the mediated tree.
	parentOf map[string]string
	// order caches each mediated tag's position among its siblings.
	order map[string]int
}

// New builds a translator for the mediated schema and mapping. Mapping
// entries to OTHER (and source tags absent from the mapping) are
// dropped during translation.
func New(mediated *dtd.Schema, mapping constraint.Assignment) (*Translator, error) {
	if mediated == nil {
		return nil, fmt.Errorf("transform: nil mediated schema")
	}
	t := &Translator{
		mediated: mediated,
		mapping:  mapping.Clone(),
		parentOf: make(map[string]string),
		order:    make(map[string]int),
	}
	pos := 0
	var walk func(tag string)
	seen := make(map[string]bool)
	walk = func(tag string) {
		if seen[tag] {
			return
		}
		seen[tag] = true
		t.order[tag] = pos
		pos++
		for _, c := range mediated.ChildOrder(tag) {
			t.parentOf[c] = tag
			walk(c)
		}
	}
	walk(mediated.Root())
	// Sanity: every non-OTHER target label must exist in the mediated
	// schema.
	for tag, label := range mapping {
		if label == learn.Other {
			continue
		}
		if !seen[label] {
			return nil, fmt.Errorf("transform: mapping %s -> %s targets unknown label", tag, label)
		}
	}
	return t, nil
}

// Translate rewrites one source document into a mediated-schema
// document. Unmatched and OTHER elements are dropped; matched elements
// are placed under their mediated parents, which are created as needed;
// siblings are sorted into mediated declaration order.
func (t *Translator) Translate(doc *xmltree.Node) *xmltree.Node {
	root := &xmltree.Node{Tag: t.mediated.Root()}
	nodes := map[string]*xmltree.Node{t.mediated.Root(): root}

	// ensure returns the output node for a mediated tag, creating it
	// and its ancestors on demand.
	var ensure func(label string) *xmltree.Node
	ensure = func(label string) *xmltree.Node {
		if n, ok := nodes[label]; ok {
			return n
		}
		parentLabel, ok := t.parentOf[label]
		if !ok {
			parentLabel = t.mediated.Root()
		}
		parent := ensure(parentLabel)
		n := &xmltree.Node{Tag: label}
		parent.AddChild(n)
		nodes[label] = n
		return n
	}

	doc.Walk(func(n *xmltree.Node, _ []string) {
		label, ok := t.mapping[n.Tag]
		if !ok || label == learn.Other || label == t.mediated.Root() {
			return
		}
		out := ensure(label)
		if t.mediated.IsLeaf(label) {
			// Leaf values transfer; repeated occurrences concatenate,
			// matching xmltree's text handling.
			if n.Text != "" {
				if out.Text == "" {
					out.Text = n.Text
				} else {
					out.Text += " " + n.Text
				}
			}
		}
	})

	t.sortChildren(root)
	return root
}

// sortChildren recursively orders siblings by mediated declaration
// order so translated documents validate against sequence models.
func (t *Translator) sortChildren(n *xmltree.Node) {
	sort.SliceStable(n.Children, func(i, j int) bool {
		return t.order[n.Children[i].Tag] < t.order[n.Children[j].Tag]
	})
	for _, c := range n.Children {
		t.sortChildren(c)
	}
}

// TranslateAll maps Translate over a listing set.
func (t *Translator) TranslateAll(docs []*xmltree.Node) []*xmltree.Node {
	out := make([]*xmltree.Node, len(docs))
	for i, d := range docs {
		out[i] = d
		out[i] = t.Translate(d)
	}
	return out
}

// Coverage reports which mediated leaf labels the mapping covers and
// which are missing — the integration system uses it to know which
// query attributes a source can answer.
func (t *Translator) Coverage() (covered, missing []string) {
	mapped := make(map[string]bool)
	for _, label := range t.mapping {
		mapped[label] = true
	}
	for _, tag := range t.mediated.Tags() {
		if !t.mediated.IsLeaf(tag) {
			continue
		}
		if mapped[tag] {
			covered = append(covered, tag)
		} else {
			missing = append(missing, tag)
		}
	}
	sort.Strings(covered)
	sort.Strings(missing)
	return covered, missing
}
