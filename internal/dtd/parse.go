package dtd

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses DTD text consisting of <!ELEMENT ...> and <!ATTLIST ...>
// declarations and XML comments, and returns the resulting Schema.
func Parse(input string) (*Schema, error) {
	p := &parser{src: input}
	s := NewSchema()
	attlists := make(map[string][]string)
	attlistLine := make(map[string]int)
	var attOrder []string // first-ATTLIST order, so errors are deterministic
	for {
		p.skipSpaceAndComments()
		if p.eof() {
			break
		}
		switch {
		case p.consume("<!ELEMENT"):
			if err := p.requireSpace(); err != nil {
				return nil, err
			}
			e, err := p.parseElementDecl()
			if err != nil {
				return nil, err
			}
			if err := s.Declare(e); err != nil {
				return nil, err
			}
		case p.consume("<!ATTLIST"):
			if err := p.requireSpace(); err != nil {
				return nil, err
			}
			line := p.line()
			name, attrs, err := p.parseAttlistDecl()
			if err != nil {
				return nil, err
			}
			if _, seen := attlists[name]; !seen {
				attOrder = append(attOrder, name)
				attlistLine[name] = line
			}
			attlists[name] = append(attlists[name], attrs...)
		default:
			return nil, p.errorf("expected <!ELEMENT or <!ATTLIST")
		}
	}
	// Attach in declaration order, not map order: with several ATTLISTs
	// naming undeclared elements, the one reported must be the first in
	// the source, stable run to run.
	for _, name := range attOrder {
		e := s.Element(name)
		if e == nil {
			return nil, fmt.Errorf("dtd: ATTLIST for undeclared element %q", name)
		}
		e.Attributes = append(e.Attributes, attlists[name]...)
		e.AttlistLine = attlistLine[name]
	}
	if len(s.order) == 0 {
		return nil, fmt.Errorf("dtd: no element declarations")
	}
	return s, nil
}

// MustParse is Parse that panics on error; intended for statically
// known schemas (domain definitions, tests).
func MustParse(input string) *Schema {
	s, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

// line returns the 1-based line number of the current position, for
// the decl-position hooks static analysis reports through.
func (p *parser) line() int { return 1 + strings.Count(p.src[:p.pos], "\n") }

func (p *parser) errorf(format string, args ...interface{}) error {
	line := 1 + strings.Count(p.src[:p.pos], "\n")
	return fmt.Errorf("dtd: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpaceAndComments() {
	for {
		for !p.eof() && unicode.IsSpace(rune(p.src[p.pos])) {
			p.pos++
		}
		if strings.HasPrefix(p.src[p.pos:], "<!--") {
			end := strings.Index(p.src[p.pos+4:], "-->")
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += 4 + end + 3
			continue
		}
		return
	}
}

// requireSpace enforces whitespace after a declaration keyword, so
// "<!ELEMENT0" is rejected rather than read as a name starting with 0.
func (p *parser) requireSpace() error {
	if p.eof() || !unicode.IsSpace(rune(p.src[p.pos])) {
		return p.errorf("expected whitespace after declaration keyword")
	}
	return nil
}

func (p *parser) skipSpace() {
	for !p.eof() && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) consume(lit string) bool {
	if strings.HasPrefix(p.src[p.pos:], lit) {
		p.pos += len(lit)
		return true
	}
	return false
}

func isNameRune(r byte) bool {
	return r == '-' || r == '_' || r == '.' || r == ':' ||
		(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
		(r >= '0' && r <= '9')
}

func (p *parser) parseName() (string, error) {
	p.skipSpace()
	start := p.pos
	for !p.eof() && isNameRune(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errorf("expected name")
	}
	return p.src[start:p.pos], nil
}

func (p *parser) parseElementDecl() (*Element, error) {
	p.skipSpace()
	line := p.line()
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	model, err := p.parseContentModel()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.consume(">") {
		return nil, p.errorf("expected > closing ELEMENT %s", name)
	}
	return &Element{Name: name, Model: model, Line: line}, nil
}

func (p *parser) parseContentModel() (*ContentModel, error) {
	switch {
	case p.consume("EMPTY"):
		return &ContentModel{Kind: Empty}, nil
	case p.consume("ANY"):
		return &ContentModel{Kind: Any}, nil
	}
	line := p.line()
	if !p.consume("(") {
		return nil, p.errorf("expected ( starting content model")
	}
	p.skipSpace()
	if p.consume("#PCDATA") {
		return p.parseMixedTail()
	}
	p.unread(1) // put back nothing; we consumed only "("
	// Re-enter: parse the group we already opened.
	particle, err := p.parseGroupBody(line)
	if err != nil {
		return nil, err
	}
	// An already-marked particle (a one-member group like ((a|b)+) that
	// collapsed to its child) must keep its own marker: wrap instead of
	// overwrite, since e.g. ((a|b)+)? is (a|b)*, not (a|b)?.
	if occ := p.parseOccurs(); occ != One {
		if particle.Occurs != One {
			particle = &Particle{Kind: SeqParticle, Children: []*Particle{particle}, Line: line}
		}
		particle.Occurs = occ
	}
	return &ContentModel{Kind: ElementContent, Particle: particle}, nil
}

// unread is a no-op placeholder retained for clarity of parse flow; the
// grammar here never needs real backtracking because "(" has already
// been consumed on both branches.
func (p *parser) unread(int) {}

// parseMixedTail parses the remainder of (#PCDATA ... after #PCDATA.
func (p *parser) parseMixedTail() (*ContentModel, error) {
	p.skipSpace()
	if p.consume(")") {
		p.consume("*") // (#PCDATA)* is legal
		return &ContentModel{Kind: PCDATA}, nil
	}
	var set []string
	for {
		if !p.consume("|") {
			return nil, p.errorf("expected | or ) in mixed content")
		}
		name, err := p.parseName()
		if err != nil {
			return nil, err
		}
		set = append(set, name)
		p.skipSpace()
		if p.consume(")") {
			break
		}
	}
	if !p.consume("*") {
		return nil, p.errorf("mixed content must end with )*")
	}
	return &ContentModel{Kind: Mixed, MixedSet: set}, nil
}

// parseGroupBody parses the inside of a ( ... ) group; the opening
// paren (at the given source line) has been consumed. It returns a Seq
// or Choice particle (or the single inner particle when the group has
// one member).
func (p *parser) parseGroupBody(line int) (*Particle, error) {
	var parts []*Particle
	var sep byte // 0 unknown, ',' or '|'
	for {
		part, err := p.parseParticle()
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
		p.skipSpace()
		if p.consume(")") {
			break
		}
		var this byte
		switch {
		case p.consume(","):
			this = ','
		case p.consume("|"):
			this = '|'
		default:
			return nil, p.errorf("expected , | or ) in group")
		}
		if sep == 0 {
			sep = this
		} else if sep != this {
			return nil, p.errorf("cannot mix , and | in one group")
		}
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	kind := SeqParticle
	if sep == '|' {
		kind = ChoiceParticle
	}
	return &Particle{Kind: kind, Children: parts, Line: line}, nil
}

// parseParticle parses a name or parenthesized group with an optional
// occurrence marker.
func (p *parser) parseParticle() (*Particle, error) {
	p.skipSpace()
	line := p.line()
	if p.consume("(") {
		inner, err := p.parseGroupBody(line)
		if err != nil {
			return nil, err
		}
		// A marked group must keep its grouping even with one child:
		// wrap rather than overwrite the inner marker ((a?)* is a*, and
		// ((a|b)+)? is (a|b)*, not (a|b)?).
		if occ := p.parseOccurs(); occ != One {
			if inner.Occurs != One {
				inner = &Particle{Kind: SeqParticle, Children: []*Particle{inner}, Line: line}
			}
			inner.Occurs = occ
		}
		return inner, nil
	}
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	return &Particle{Kind: NameParticle, Name: name, Occurs: p.parseOccurs(), Line: line}, nil
}

func (p *parser) parseOccurs() Occurs {
	switch {
	case p.consume("?"):
		return Optional
	case p.consume("*"):
		return ZeroOrMore
	case p.consume("+"):
		return OneOrMore
	}
	return One
}

// parseAttlistDecl parses <!ATTLIST elem a1 TYPE DEFAULT a2 TYPE
// DEFAULT ... > and returns the element name and attribute names. Types
// and defaults are validated loosely: any token is accepted for the
// type, and defaults may be #REQUIRED, #IMPLIED, #FIXED "v", or "v".
func (p *parser) parseAttlistDecl() (string, []string, error) {
	name, err := p.parseName()
	if err != nil {
		return "", nil, err
	}
	var attrs []string
	for {
		p.skipSpace()
		if p.consume(">") {
			return name, attrs, nil
		}
		attr, err := p.parseName()
		if err != nil {
			return "", nil, err
		}
		attrs = append(attrs, attr)
		if _, err := p.parseName(); err != nil { // type token (CDATA, ID, ...)
			return "", nil, err
		}
		p.skipSpace()
		switch {
		case p.consume("#REQUIRED"), p.consume("#IMPLIED"):
		case p.consume("#FIXED"):
			if err := p.parseQuoted(); err != nil {
				return "", nil, err
			}
		default:
			if err := p.parseQuoted(); err != nil {
				return "", nil, err
			}
		}
	}
}

func (p *parser) parseQuoted() error {
	p.skipSpace()
	if p.eof() || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
		return p.errorf("expected quoted default value")
	}
	q := p.src[p.pos]
	p.pos++
	for !p.eof() && p.src[p.pos] != q {
		p.pos++
	}
	if p.eof() {
		return p.errorf("unterminated quoted value")
	}
	p.pos++
	return nil
}
