package dtd

import (
	"strings"
	"testing"
)

// FuzzParse checks that the DTD parser never panics and that anything
// it accepts can be rendered and re-parsed to the same tag set.
func FuzzParse(f *testing.F) {
	f.Add("<!ELEMENT a (#PCDATA)>")
	f.Add(paperDTD)
	f.Add("<!ELEMENT a (b?, (c | d)+)>\n<!ELEMENT b (#PCDATA)>\n<!ELEMENT c (#PCDATA)>\n<!ELEMENT d (#PCDATA)>")
	f.Add("<!ELEMENT a EMPTY><!ATTLIST a x CDATA #IMPLIED>")
	f.Add("<!-- comment --><!ELEMENT a ANY>")
	f.Add("<!ELEMENT a (#PCDATA | b)*><!ELEMENT b (#PCDATA)>")
	f.Add("<!ELEMENT")
	f.Add(strings.Repeat("(", 100))

	f.Fuzz(func(t *testing.T, input string) {
		s, err := Parse(input)
		if err != nil {
			return
		}
		again, err := Parse(s.String())
		if err != nil {
			t.Fatalf("accepted DTD failed to re-parse: %v\n%s", err, s)
		}
		a, b := s.Tags(), again.Tags()
		if len(a) != len(b) {
			t.Fatalf("round trip changed tag count: %v vs %v", a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round trip changed tags: %v vs %v", a, b)
			}
		}
	})
}
