package dtd

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// FuzzParse checks that the DTD parser never panics and that anything
// it accepts can be rendered and re-parsed to the same tag set.
func FuzzParse(f *testing.F) {
	f.Add("<!ELEMENT a (#PCDATA)>")
	f.Add(paperDTD)
	f.Add("<!ELEMENT a (b?, (c | d)+)>\n<!ELEMENT b (#PCDATA)>\n<!ELEMENT c (#PCDATA)>\n<!ELEMENT d (#PCDATA)>")
	f.Add("<!ELEMENT a EMPTY><!ATTLIST a x CDATA #IMPLIED>")
	f.Add("<!-- comment --><!ELEMENT a ANY>")
	f.Add("<!ELEMENT a (#PCDATA | b)*><!ELEMENT b (#PCDATA)>")
	f.Add("<!ELEMENT")
	f.Add(strings.Repeat("(", 100))
	// Nested groups mixing choice, sequence, and every repetition
	// marker; the matcher's backtracking is most fragile here.
	f.Add("<!ELEMENT a ((b, c)* | (d?, (e | f)+))>\n<!ELEMENT b (#PCDATA)>\n<!ELEMENT c (#PCDATA)>\n<!ELEMENT d (#PCDATA)>\n<!ELEMENT e (#PCDATA)>\n<!ELEMENT f (#PCDATA)>")
	f.Add("<!ELEMENT a (((b)))>\n<!ELEMENT b EMPTY>")
	f.Add("<!ELEMENT a (b | b | b)*><!ELEMENT b (#PCDATA)>")
	// Mixed content with attributes on several elements.
	f.Add("<!ELEMENT r (#PCDATA | a | b)*>\n<!ELEMENT a (#PCDATA)>\n<!ATTLIST a href CDATA #IMPLIED id CDATA #IMPLIED>\n<!ELEMENT b EMPTY>\n<!ATTLIST b x CDATA #IMPLIED>")
	// Self-reference and mutual recursion: Depth/PathFromRoot must not
	// loop forever on cyclic schemas.
	f.Add("<!ELEMENT a (a?)>")
	f.Add("<!ELEMENT a (b)><!ELEMENT b (a?)>")
	// Malformed declarations the parser must reject without panicking.
	f.Add("<!ELEMENT a>")
	f.Add("<!ELEMENT a ()>")
	f.Add("<!ELEMENT a (b,)>")
	f.Add("<!ELEMENT a (|b)>")
	f.Add("<!ELEMENT a (#PCDATA) extra>")
	f.Add("<!ATTLIST ghost x CDATA #IMPLIED>")
	f.Add("<!ELEMENT \x00 (#PCDATA)>")
	f.Add("<!ELEMENT a (#PCDATA)><!ELEMENT a (#PCDATA)>")
	f.Add("<!ELEMENT a (b))>")
	f.Add(strings.Repeat("<!ELEMENT a (b", 30))

	f.Fuzz(func(t *testing.T, input string) {
		s, err := Parse(input)
		if err != nil {
			return
		}
		again, err := Parse(s.String())
		if err != nil {
			t.Fatalf("accepted DTD failed to re-parse: %v\n%s", err, s)
		}
		a, b := s.Tags(), again.Tags()
		if len(a) != len(b) {
			t.Fatalf("round trip changed tag count: %v vs %v", a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round trip changed tags: %v vs %v", a, b)
			}
		}
	})
}

// FuzzValidate feeds arbitrary DTD/document pairs through the
// validator: whatever the two parsers accept, Validate must classify
// without panicking or looping, and the schema-tree queries the
// pipeline leans on must stay total.
func FuzzValidate(f *testing.F) {
	f.Add("<!ELEMENT a (b*)>\n<!ELEMENT b (#PCDATA)>", "<a><b>x</b><b>y</b></a>")
	f.Add("<!ELEMENT a (b, c)>\n<!ELEMENT b (#PCDATA)>\n<!ELEMENT c (#PCDATA)>", "<a><c>x</c></a>")
	f.Add("<!ELEMENT a (#PCDATA | b)*>\n<!ELEMENT b EMPTY>", "<a>text<b></b>more</a>")
	f.Add("<!ELEMENT a EMPTY><!ATTLIST a x CDATA #IMPLIED>", "<a x=\"1\"></a>")
	f.Add("<!ELEMENT a (a?)>", "<a><a><a></a></a></a>")
	f.Add("<!ELEMENT a ((b | c)+)>\n<!ELEMENT b (#PCDATA)>\n<!ELEMENT c (#PCDATA)>", "<a><b>1</b><c>2</c><b>3</b></a>")
	f.Add("<!ELEMENT a (b?)>\n<!ELEMENT b (#PCDATA)>", "<wrong></wrong>")
	f.Add("<!ELEMENT a ANY>", "<a><unknown><deep>x</deep></unknown></a>")

	f.Fuzz(func(t *testing.T, dtdText, xmlText string) {
		s, err := Parse(dtdText)
		if err != nil {
			return
		}
		doc, err := xmltree.ParseString(xmlText)
		if err != nil || doc == nil {
			return
		}
		// Validate must terminate and never panic, valid or not.
		_ = s.Validate(doc)
		// The schema-tree queries must be total on anything Parse accepts.
		root := s.Root()
		_ = s.Depth()
		for _, tag := range s.Tags() {
			_ = s.PathFromRoot(tag)
			_ = s.IsLeaf(tag)
			_ = s.CanNest(root, tag)
		}
	})
}
