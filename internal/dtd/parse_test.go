package dtd

import (
	"reflect"
	"strings"
	"testing"
)

// paperDTD is the source schema from Figure 3.b of the paper.
const paperDTD = `
<!ELEMENT house-listing (location?, price, contact)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT contact (name, phone)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
`

func TestParsePaperSchema(t *testing.T) {
	s, err := Parse(paperDTD)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := s.Root(); got != "house-listing" {
		t.Errorf("Root = %q, want house-listing", got)
	}
	if got := s.NumTags(); got != 6 {
		t.Errorf("NumTags = %d, want 6", got)
	}
	if got := s.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
	nonLeaf := s.NonLeafTags()
	want := []string{"house-listing", "contact"}
	if !reflect.DeepEqual(nonLeaf, want) {
		t.Errorf("NonLeafTags = %v, want %v", nonLeaf, want)
	}
}

func TestParseContentModels(t *testing.T) {
	cases := []struct {
		decl string
		str  string // round-tripped content model
	}{
		{"<!ELEMENT a (#PCDATA)>", "(#PCDATA)"},
		{"<!ELEMENT a EMPTY>", "EMPTY"},
		{"<!ELEMENT a ANY>", "ANY"},
		{"<!ELEMENT a (b)>", "(b)"},
		{"<!ELEMENT a (b, c)>", "(b, c)"},
		{"<!ELEMENT a (b | c)>", "(b | c)"},
		{"<!ELEMENT a (b?, c*, d+)>", "(b?, c*, d+)"},
		{"<!ELEMENT a ((b | c)+, d)>", "((b | c)+, d)"},
		{"<!ELEMENT a (#PCDATA | b | c)*>", "(#PCDATA | b | c)*"},
	}
	for _, c := range cases {
		s, err := Parse(c.decl)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.decl, err)
			continue
		}
		if got := s.Element("a").Model.String(); got != c.str {
			t.Errorf("Parse(%q).Model = %q, want %q", c.decl, got, c.str)
		}
	}
}

func TestParseAttlist(t *testing.T) {
	s, err := Parse(`
<!ELEMENT listing (price)>
<!ELEMENT price (#PCDATA)>
<!ATTLIST listing id CDATA #REQUIRED status CDATA "active">
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	e := s.Element("listing")
	if !reflect.DeepEqual(e.Attributes, []string{"id", "status"}) {
		t.Errorf("Attributes = %v", e.Attributes)
	}
	// Attributes count as tags and as children.
	if s.NumTags() != 4 {
		t.Errorf("NumTags = %d, want 4", s.NumTags())
	}
	children := s.ChildTags("listing")
	if !reflect.DeepEqual(children, []string{"id", "price", "status"}) {
		t.Errorf("ChildTags = %v", children)
	}
}

func TestParseComments(t *testing.T) {
	s, err := Parse(`
<!-- the mediated schema -->
<!ELEMENT a (b)> <!-- root -->
<!ELEMENT b (#PCDATA)>
`)
	if err != nil {
		t.Fatalf("Parse with comments: %v", err)
	}
	if s.NumTags() != 2 {
		t.Errorf("NumTags = %d, want 2", s.NumTags())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"<!ELEMENT a>",
		"<!ELEMENT a (b,>",
		"<!ELEMENT a (b | c, d)>", // mixed separators
		"<!ELEMENT a (b)> <!ELEMENT a (c)>",
		"<!ATTLIST ghost x CDATA #IMPLIED>",
		"<!WRONG a (b)>",
		"<!ELEMENT a (#PCDATA | b)>", // mixed must end )*
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestRootDetection(t *testing.T) {
	s := MustParse(`
<!ELEMENT leaf (#PCDATA)>
<!ELEMENT top (mid)>
<!ELEMENT mid (leaf)>
`)
	if got := s.Root(); got != "top" {
		t.Errorf("Root = %q, want top", got)
	}
}

func TestPathFromRoot(t *testing.T) {
	s := MustParse(paperDTD)
	got := s.PathFromRoot("phone")
	want := []string{"house-listing", "contact", "phone"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PathFromRoot(phone) = %v, want %v", got, want)
	}
	if s.PathFromRoot("missing") != nil {
		t.Error("PathFromRoot(missing) should be nil")
	}
	if got := s.PathFromRoot("house-listing"); len(got) != 1 {
		t.Errorf("PathFromRoot(root) = %v", got)
	}
}

func TestNestingRelations(t *testing.T) {
	s := MustParse(paperDTD)
	if !s.CanNest("house-listing", "phone") {
		t.Error("phone should nest in house-listing")
	}
	if !s.CanNest("contact", "name") {
		t.Error("name should nest in contact")
	}
	if s.CanNest("contact", "price") {
		t.Error("price should not nest in contact")
	}
	if s.Parent("phone") != "contact" {
		t.Errorf("Parent(phone) = %q", s.Parent("phone"))
	}
	if s.Parent("house-listing") != "" {
		t.Errorf("Parent(root) = %q, want empty", s.Parent("house-listing"))
	}
}

func TestSiblings(t *testing.T) {
	s := MustParse(paperDTD)
	if !s.Siblings("location", "contact") {
		t.Error("location and contact are siblings")
	}
	if s.Siblings("location", "phone") {
		t.Error("location and phone are not siblings")
	}
	between, ok := s.SiblingsBetween("location", "contact")
	if !ok || !reflect.DeepEqual(between, []string{"price"}) {
		t.Errorf("SiblingsBetween = %v, %v", between, ok)
	}
	if _, ok := s.SiblingsBetween("location", "phone"); ok {
		t.Error("SiblingsBetween across levels should fail")
	}
}

func TestSchemaStringRoundTrip(t *testing.T) {
	s := MustParse(paperDTD)
	again, err := Parse(s.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !reflect.DeepEqual(s.Tags(), again.Tags()) {
		t.Errorf("round trip tags: %v vs %v", s.Tags(), again.Tags())
	}
	if s.Depth() != again.Depth() || s.Root() != again.Root() {
		t.Error("round trip structure mismatch")
	}
}

func TestDepthWithCycle(t *testing.T) {
	// part contains part: depth must terminate.
	s := MustParse(`
<!ELEMENT part (name, part*)>
<!ELEMENT name (#PCDATA)>
`)
	if d := s.Depth(); d < 2 || d > 3 {
		t.Errorf("cyclic Depth = %d, want small finite value", d)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad input did not panic")
		}
	}()
	MustParse("<!BAD>")
}

func TestParseWhitespaceTolerance(t *testing.T) {
	s, err := Parse("<!ELEMENT  a \n ( b ,\t c? ) >\n<!ELEMENT b (#PCDATA)>\n<!ELEMENT c (#PCDATA)>")
	if err != nil {
		t.Fatalf("Parse with odd whitespace: %v", err)
	}
	if got := s.Element("a").Model.String(); got != "(b, c?)" {
		t.Errorf("model = %q", got)
	}
}

func TestChildOrderPreserved(t *testing.T) {
	s := MustParse(`
<!ELEMENT r (z, a, m)>
<!ELEMENT z (#PCDATA)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT m (#PCDATA)>
`)
	between, ok := s.SiblingsBetween("z", "m")
	if !ok || !reflect.DeepEqual(between, []string{"a"}) {
		t.Errorf("SiblingsBetween(z,m) = %v, %v; want [a] true", between, ok)
	}
}

func TestTagsStable(t *testing.T) {
	s := MustParse(paperDTD)
	want := strings.Fields("house-listing location price contact name phone")
	if got := s.Tags(); !reflect.DeepEqual(got, want) {
		t.Errorf("Tags = %v, want declaration order %v", got, want)
	}
}

func TestChildOrder(t *testing.T) {
	s := MustParse(`
<!ELEMENT r (z, a, m)>
<!ELEMENT z (#PCDATA)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT m (#PCDATA)>
<!ATTLIST r id CDATA #IMPLIED>
`)
	got := s.ChildOrder("r")
	want := []string{"z", "a", "m", "id"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ChildOrder = %v, want %v", got, want)
	}
	if s.ChildOrder("z") != nil {
		t.Errorf("leaf ChildOrder = %v", s.ChildOrder("z"))
	}
	if s.ChildOrder("missing") != nil {
		t.Error("undeclared ChildOrder should be nil")
	}
}

func TestParseAttlistUndeclaredDeterministic(t *testing.T) {
	// Two ATTLISTs reference undeclared elements; the error must name
	// the first one in declaration order on every run, not an arbitrary
	// map-order pick.
	const src = `
<!ELEMENT r (#PCDATA)>
<!ATTLIST ghost1 a CDATA #IMPLIED>
<!ATTLIST ghost2 b CDATA #IMPLIED>
`
	want := `dtd: ATTLIST for undeclared element "ghost1"`
	for i := 0; i < 20; i++ {
		_, err := Parse(src)
		if err == nil || err.Error() != want {
			t.Fatalf("run %d: err = %v, want %s", i, err, want)
		}
	}
}

func TestParseRecordsDeclLines(t *testing.T) {
	s := MustParse(`<!ELEMENT r (a, (b | c)*)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>
<!ATTLIST a id CDATA #IMPLIED>
`)
	if got := s.Element("r").Line; got != 1 {
		t.Errorf("r.Line = %d, want 1", got)
	}
	if got := s.Element("b").Line; got != 3 {
		t.Errorf("b.Line = %d, want 3", got)
	}
	if got := s.Element("a").AttlistLine; got != 5 {
		t.Errorf("a.AttlistLine = %d, want 5", got)
	}
	model := s.Element("r").Model.Particle
	if model.Line != 1 || model.Children[0].Line != 1 || model.Children[1].Line != 1 {
		t.Errorf("particle lines = %d, %d, %d; want all 1",
			model.Line, model.Children[0].Line, model.Children[1].Line)
	}
	decls := s.Decls()
	if len(decls) != 4 || decls[0].Name != "r" || decls[3].Name != "c" {
		t.Errorf("Decls order wrong: %v", decls)
	}
}

// TestParseKeepsInnerOccurs pins the wrap-don't-overwrite rule for
// one-member groups whose child carries its own occurrence marker:
// ((a|b)+)? is (a|b)*, not (a|b)?, so the inner + must survive under
// an outer wrapper rather than being clobbered by the outer marker.
func TestParseKeepsInnerOccurs(t *testing.T) {
	cases := []struct {
		model string
		want  string
	}{
		{"((a | b)+)", "(a | b)+"},
		{"((a | b)+)?", "((a | b)+)?"},
		{"((a, b)*)+", "((a, b)*)+"},
		{"(a?)*", "(a?)*"},
	}
	for _, tc := range cases {
		s, err := Parse("<!ELEMENT r " + tc.model + ">\n<!ELEMENT a EMPTY>\n<!ELEMENT b EMPTY>\n")
		if err != nil {
			t.Fatalf("%s: %v", tc.model, err)
		}
		if got := s.Element("r").Model.String(); got != tc.want {
			t.Errorf("model %s parsed as %s, want %s", tc.model, got, tc.want)
		}
	}
}
