package dtd

import (
	"fmt"

	"repro/internal/xmltree"
)

// Validate checks that the document rooted at doc conforms to the
// schema: the root tag matches the schema root, every element is
// declared, and each element's children match its content model.
// Attribute pseudo-children (tags listed in the element's ATTLIST) are
// excluded from content-model matching.
func (s *Schema) Validate(doc *xmltree.Node) error {
	if doc.Tag != s.Root() {
		return fmt.Errorf("dtd: root is %q, schema root is %q", doc.Tag, s.Root())
	}
	return s.validateNode(doc)
}

func (s *Schema) validateNode(n *xmltree.Node) error {
	e := s.elements[n.Tag]
	if e == nil {
		if s.isAttribute(n.Tag) {
			if !n.IsLeaf() {
				return fmt.Errorf("dtd: attribute %q has child elements", n.Tag)
			}
			return nil
		}
		return fmt.Errorf("dtd: element %q not declared", n.Tag)
	}
	attrs := make(map[string]bool, len(e.Attributes))
	for _, a := range e.Attributes {
		attrs[a] = true
	}
	var childTags []string
	for _, c := range n.Children {
		if !attrs[c.Tag] {
			childTags = append(childTags, c.Tag)
		}
	}
	switch e.Model.Kind {
	case PCDATA:
		if len(childTags) > 0 {
			return fmt.Errorf("dtd: element %q is #PCDATA but has child <%s>", n.Tag, childTags[0])
		}
	case Empty:
		if len(childTags) > 0 || n.Text != "" {
			return fmt.Errorf("dtd: element %q is EMPTY but has content", n.Tag)
		}
	case Any:
		// Children only need to be declared, checked recursively below.
	case Mixed:
		allowed := make(map[string]bool, len(e.Model.MixedSet))
		for _, t := range e.Model.MixedSet {
			allowed[t] = true
		}
		for _, t := range childTags {
			if !allowed[t] {
				return fmt.Errorf("dtd: element %q not allowed in mixed content of %q", t, n.Tag)
			}
		}
	case ElementContent:
		if n.Text != "" {
			return fmt.Errorf("dtd: element %q has element content but contains text %q", n.Tag, n.Text)
		}
		if !matches(e.Model.Particle, childTags) {
			return fmt.Errorf("dtd: children of %q (%v) do not match model %s",
				n.Tag, childTags, e.Model.Particle)
		}
	}
	for _, c := range n.Children {
		if err := s.validateNode(c); err != nil {
			return err
		}
	}
	return nil
}

// isAttribute reports whether tag appears in any element's ATTLIST.
func (s *Schema) isAttribute(tag string) bool {
	for _, name := range s.order {
		for _, a := range s.elements[name].Attributes {
			if a == tag {
				return true
			}
		}
	}
	return false
}

// matches reports whether the full tag sequence can be derived from the
// particle expression.
func matches(p *Particle, tags []string) bool {
	for _, end := range matchFrom(p, tags, 0) {
		if end == len(tags) {
			return true
		}
	}
	return false
}

// matchFrom returns the distinct positions the input can be consumed up
// to when matching particle p starting at pos. Backtracking matcher;
// input sizes here are child lists of single elements, so worst-case
// blowup is not a concern.
func matchFrom(p *Particle, tags []string, pos int) []int {
	base := func(start int) []int {
		switch p.Kind {
		case NameParticle:
			if start < len(tags) && tags[start] == p.Name {
				return []int{start + 1}
			}
			return nil
		case SeqParticle:
			positions := []int{start}
			for _, c := range p.Children {
				var next []int
				seen := make(map[int]bool)
				for _, q := range positions {
					for _, r := range matchFrom(c, tags, q) {
						if !seen[r] {
							seen[r] = true
							next = append(next, r)
						}
					}
				}
				positions = next
				if len(positions) == 0 {
					return nil
				}
			}
			return positions
		case ChoiceParticle:
			var out []int
			seen := make(map[int]bool)
			for _, c := range p.Children {
				for _, r := range matchFrom(c, tags, start) {
					if !seen[r] {
						seen[r] = true
						out = append(out, r)
					}
				}
			}
			return out
		}
		return nil
	}

	switch p.Occurs {
	case One:
		return baseOnce(p, base, pos)
	case Optional:
		out := []int{pos}
		for _, r := range baseOnce(p, base, pos) {
			if r != pos {
				out = append(out, r)
			}
		}
		return out
	case ZeroOrMore, OneOrMore:
		reachable := map[int]bool{}
		frontier := []int{pos}
		visited := map[int]bool{pos: true}
		for len(frontier) > 0 {
			var next []int
			for _, q := range frontier {
				for _, r := range baseOnce(p, base, q) {
					reachable[r] = true
					if !visited[r] {
						visited[r] = true
						next = append(next, r)
					}
				}
			}
			frontier = next
		}
		var out []int
		if p.Occurs == ZeroOrMore {
			out = append(out, pos)
		}
		for r := range reachable {
			out = append(out, r)
		}
		return dedupe(out)
	}
	return nil
}

// baseOnce matches the particle body exactly once, ignoring Occurs.
func baseOnce(p *Particle, base func(int) []int, pos int) []int {
	return base(pos)
}

func dedupe(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
