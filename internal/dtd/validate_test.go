package dtd

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

func doc(t *testing.T, s string) *xmltree.Node {
	t.Helper()
	n, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatalf("parse doc: %v", err)
	}
	return n
}

func TestValidateAccepts(t *testing.T) {
	s := MustParse(paperDTD)
	good := []string{
		`<house-listing><location>Seattle</location><price>70000</price>
		 <contact><name>Kate</name><phone>206</phone></contact></house-listing>`,
		// location is optional.
		`<house-listing><price>70000</price>
		 <contact><name>Kate</name><phone>206</phone></contact></house-listing>`,
	}
	for _, g := range good {
		if err := s.Validate(doc(t, g)); err != nil {
			t.Errorf("Validate rejected valid doc: %v", err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	s := MustParse(paperDTD)
	bad := map[string]string{
		"wrong root":      `<listing><price>1</price></listing>`,
		"missing price":   `<house-listing><contact><name>K</name><phone>2</phone></contact></house-listing>`,
		"wrong order":     `<house-listing><price>1</price><location>S</location><contact><name>K</name><phone>2</phone></contact></house-listing>`,
		"undeclared tag":  `<house-listing><price>1</price><contact><name>K</name><phone>2</phone><fax>3</fax></contact></house-listing>`,
		"child in pcdata": `<house-listing><price><amount>1</amount></price><contact><name>K</name><phone>2</phone></contact></house-listing>`,
		"extra child":     `<house-listing><price>1</price><price>2</price><contact><name>K</name><phone>2</phone></contact></house-listing>`,
	}
	for name, b := range bad {
		if err := s.Validate(doc(t, b)); err == nil {
			t.Errorf("%s: Validate accepted invalid doc", name)
		}
	}
}

func TestValidateRepetition(t *testing.T) {
	s := MustParse(`
<!ELEMENT list (item+, note*)>
<!ELEMENT item (#PCDATA)>
<!ELEMENT note (#PCDATA)>
`)
	if err := s.Validate(doc(t, `<list><item>a</item></list>`)); err != nil {
		t.Errorf("one item: %v", err)
	}
	if err := s.Validate(doc(t, `<list><item>a</item><item>b</item><note>n</note><note>m</note></list>`)); err != nil {
		t.Errorf("repeated: %v", err)
	}
	if err := s.Validate(doc(t, `<list><note>n</note></list>`)); err == nil {
		t.Error("item+ requires at least one item")
	}
}

func TestValidateChoice(t *testing.T) {
	s := MustParse(`
<!ELEMENT contact (email | phone)>
<!ELEMENT email (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
`)
	if err := s.Validate(doc(t, `<contact><email>x@y</email></contact>`)); err != nil {
		t.Errorf("email branch: %v", err)
	}
	if err := s.Validate(doc(t, `<contact><phone>206</phone></contact>`)); err != nil {
		t.Errorf("phone branch: %v", err)
	}
	if err := s.Validate(doc(t, `<contact><email>x</email><phone>2</phone></contact>`)); err == nil {
		t.Error("choice allows exactly one branch")
	}
}

func TestValidateNestedGroups(t *testing.T) {
	s := MustParse(`
<!ELEMENT r ((a | b)+, c?)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>
`)
	for _, good := range []string{
		`<r><a>1</a></r>`,
		`<r><b>1</b><a>2</a><b>3</b></r>`,
		`<r><a>1</a><c>9</c></r>`,
	} {
		if err := s.Validate(doc(t, good)); err != nil {
			t.Errorf("Validate(%s): %v", good, err)
		}
	}
	for _, bad := range []string{
		`<r><c>9</c></r>`,
		`<r><a>1</a><c>9</c><c>9</c></r>`,
	} {
		if err := s.Validate(doc(t, bad)); err == nil {
			t.Errorf("Validate(%s) accepted invalid doc", bad)
		}
	}
}

func TestValidateMixed(t *testing.T) {
	s := MustParse(`
<!ELEMENT desc (#PCDATA | em)*>
<!ELEMENT em (#PCDATA)>
`)
	n := xmltree.NewParent("desc", xmltree.New("em", "great"))
	n.Text = "a house"
	if err := s.Validate(n); err != nil {
		t.Errorf("mixed: %v", err)
	}
	bad := xmltree.NewParent("desc", xmltree.New("strong", "x"))
	if err := s.Validate(bad); err == nil {
		t.Error("mixed content rejected undeclared child")
	}
}

func TestValidateEmptyAndAny(t *testing.T) {
	s := MustParse(`
<!ELEMENT r (hr, blob)>
<!ELEMENT hr EMPTY>
<!ELEMENT blob ANY>
<!ELEMENT x (#PCDATA)>
`)
	okDoc := `<r><hr></hr><blob><x>1</x><x>2</x></blob></r>`
	if err := s.Validate(doc(t, okDoc)); err != nil {
		t.Errorf("EMPTY/ANY: %v", err)
	}
	if err := s.Validate(doc(t, `<r><hr>text</hr><blob></blob></r>`)); err == nil {
		t.Error("EMPTY element with text accepted")
	}
	if err := s.Validate(doc(t, `<r><hr></hr><blob><zzz>1</zzz></blob></r>`)); err == nil {
		t.Error("ANY element with undeclared child accepted")
	}
}

func TestValidateAttributes(t *testing.T) {
	s := MustParse(`
<!ELEMENT listing (price)>
<!ELEMENT price (#PCDATA)>
<!ATTLIST listing id CDATA #REQUIRED>
`)
	// xmltree turns attributes into leaf children; they must not break
	// content-model matching.
	d := doc(t, `<listing id="42"><price>70000</price></listing>`)
	if err := s.Validate(d); err != nil {
		t.Errorf("attribute child: %v", err)
	}
}

// TestValidateGeneratedSequences is a property test: any sequence of
// a's and b's with at least one a and all a's before all b's matches
// (a+, b*); any other arrangement of a/b with a missing a fails.
func TestValidateGeneratedSequences(t *testing.T) {
	s := MustParse(`
<!ELEMENT r (a+, b*)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`)
	f := func(na, nb uint8, shuffled bool) bool {
		numA := int(na%4) + 1
		numB := int(nb % 4)
		var b strings.Builder
		b.WriteString("<r>")
		if shuffled && numB > 0 {
			// Put a b first: must be invalid.
			b.WriteString("<b>0</b>")
		}
		for i := 0; i < numA; i++ {
			b.WriteString("<a>x</a>")
		}
		for i := 0; i < numB; i++ {
			b.WriteString("<b>y</b>")
		}
		b.WriteString("</r>")
		n, err := xmltree.ParseString(b.String())
		if err != nil {
			return false
		}
		err = s.Validate(n)
		if shuffled && numB > 0 {
			return err != nil
		}
		return err == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
