// Package dtd implements the schema substrate of LSD: a parser for XML
// document type definitions (the BNF-style <!ELEMENT ...> grammar of
// §2.1), a document validator, and the schema-tree utilities (tags,
// non-leaf tags, depth, nesting and sibling relations) that the
// constraint handler and the Table-3 statistics rely on.
package dtd

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Occurs is a repetition marker on a content particle.
type Occurs int

const (
	// One means the particle appears exactly once.
	One Occurs = iota
	// Optional marks a `?` particle: zero or one occurrence.
	Optional
	// ZeroOrMore marks a `*` particle.
	ZeroOrMore
	// OneOrMore marks a `+` particle.
	OneOrMore
)

func (o Occurs) String() string {
	switch o {
	case Optional:
		return "?"
	case ZeroOrMore:
		return "*"
	case OneOrMore:
		return "+"
	default:
		return ""
	}
}

// ParticleKind distinguishes the three content-particle shapes.
type ParticleKind int

const (
	// NameParticle references a child element by name.
	NameParticle ParticleKind = iota
	// SeqParticle is a comma-separated sequence (a, b, c).
	SeqParticle
	// ChoiceParticle is a |-separated choice (a | b | c).
	ChoiceParticle
)

// Particle is a node in a content-model expression tree.
type Particle struct {
	Kind     ParticleKind
	Name     string      // for NameParticle
	Children []*Particle // for Seq/Choice
	Occurs   Occurs
	// Line is the 1-based source line the particle starts on, recorded
	// by Parse for static-analysis reports; 0 for hand-built particles.
	Line int
}

func (p *Particle) String() string {
	var body string
	switch p.Kind {
	case NameParticle:
		body = p.Name
	case SeqParticle, ChoiceParticle:
		sep := ", "
		if p.Kind == ChoiceParticle {
			sep = " | "
		}
		parts := make([]string, len(p.Children))
		for i, c := range p.Children {
			parts[i] = c.String()
		}
		body = "(" + strings.Join(parts, sep) + ")"
	}
	return body + p.Occurs.String()
}

// ModelKind classifies an element's content model.
type ModelKind int

const (
	// PCDATA is text-only content: (#PCDATA).
	PCDATA ModelKind = iota
	// ElementContent is structured content described by a particle.
	ElementContent
	// Mixed is (#PCDATA | a | b)* content.
	Mixed
	// Empty is EMPTY content.
	Empty
	// Any is ANY content.
	Any
)

// ContentModel is the right-hand side of an element declaration.
type ContentModel struct {
	Kind     ModelKind
	Particle *Particle // for ElementContent
	MixedSet []string  // for Mixed: allowed child tags
}

func (m *ContentModel) String() string {
	switch m.Kind {
	case PCDATA:
		return "(#PCDATA)"
	case Empty:
		return "EMPTY"
	case Any:
		return "ANY"
	case Mixed:
		if len(m.MixedSet) == 0 {
			return "(#PCDATA)"
		}
		return "(#PCDATA | " + strings.Join(m.MixedSet, " | ") + ")*"
	default:
		s := m.Particle.String()
		// A bare name (or marked name) still needs group parentheses to
		// be legal DTD syntax: (b), (b)?.
		if m.Particle.Kind == NameParticle {
			s = "(" + m.Particle.Name + ")" + m.Particle.Occurs.String()
		}
		return s
	}
}

// Element is a declared element: its name, content model, and any
// attributes declared via <!ATTLIST>. LSD treats attributes as
// additional leaf sub-elements (§2.1).
type Element struct {
	Name       string
	Model      *ContentModel
	Attributes []string
	// Line is the 1-based source line of the <!ELEMENT declaration and
	// AttlistLine that of the first <!ATTLIST naming the element; both
	// are recorded by Parse for static-analysis reports and 0 for
	// hand-built elements.
	Line        int
	AttlistLine int
}

// Schema is a parsed DTD: a set of element declarations with a root.
// Once built, a Schema is safe for concurrent readers: the pipeline
// shares one instance across all matching workers.
type Schema struct {
	elements map[string]*Element
	order    []string // declaration order
	// rootOnce guards the lazily computed root so concurrent Root()
	// calls do not race. As before, the root is fixed on first use;
	// Declare after that point does not re-elect it.
	rootOnce sync.Once
	root     string
}

// NewSchema returns an empty schema; elements are added with Declare.
func NewSchema() *Schema {
	return &Schema{elements: make(map[string]*Element)}
}

// Declare adds an element declaration. Redeclaration is an error, as in
// the XML specification.
func (s *Schema) Declare(e *Element) error {
	if _, dup := s.elements[e.Name]; dup {
		return fmt.Errorf("dtd: element %q declared twice", e.Name)
	}
	s.elements[e.Name] = e
	s.order = append(s.order, e.Name)
	return nil
}

// Element returns the declaration of name, or nil.
func (s *Schema) Element(name string) *Element { return s.elements[name] }

// Decls returns the element declarations in declaration order; the
// static checker (internal/schemacheck) walks schemas through this.
func (s *Schema) Decls() []*Element {
	out := make([]*Element, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, s.elements[name])
	}
	return out
}

// Tags returns all declared element names in declaration order,
// followed by attribute pseudo-tags.
func (s *Schema) Tags() []string {
	out := make([]string, 0, len(s.order))
	seen := make(map[string]bool, len(s.order))
	for _, name := range s.order {
		out = append(out, name)
		seen[name] = true
	}
	for _, name := range s.order {
		for _, a := range s.elements[name].Attributes {
			if !seen[a] {
				out = append(out, a)
				seen[a] = true
			}
		}
	}
	return out
}

// NumTags returns the number of distinct tags (elements + attributes).
func (s *Schema) NumTags() int { return len(s.Tags()) }

// ChildTags returns the distinct element names that can appear directly
// under name (including attribute pseudo-tags), in sorted order.
func (s *Schema) ChildTags(name string) []string {
	e := s.elements[name]
	if e == nil {
		return nil
	}
	set := make(map[string]bool)
	switch e.Model.Kind {
	case ElementContent:
		collectNames(e.Model.Particle, set)
	case Mixed:
		for _, t := range e.Model.MixedSet {
			set[t] = true
		}
	}
	for _, a := range e.Attributes {
		set[a] = true
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func collectNames(p *Particle, set map[string]bool) {
	if p == nil {
		return
	}
	if p.Kind == NameParticle {
		set[p.Name] = true
		return
	}
	for _, c := range p.Children {
		collectNames(c, set)
	}
}

// NonLeafTags returns the declared elements that can contain other
// elements, in declaration order.
func (s *Schema) NonLeafTags() []string {
	var out []string
	for _, name := range s.order {
		if len(s.ChildTags(name)) > 0 {
			out = append(out, name)
		}
	}
	return out
}

// IsLeaf reports whether tag cannot contain child elements. Attribute
// pseudo-tags are always leaves.
func (s *Schema) IsLeaf(tag string) bool { return len(s.ChildTags(tag)) == 0 }

// Root returns the root element: the first declared element that is
// not referenced in any other element's content model. If every
// element is referenced the first declared element is the root.
func (s *Schema) Root() string {
	s.rootOnce.Do(func() {
		referenced := make(map[string]bool)
		for _, name := range s.order {
			for _, c := range s.ChildTags(name) {
				referenced[c] = true
			}
		}
		for _, name := range s.order {
			if !referenced[name] {
				s.root = name
				return
			}
		}
		if len(s.order) > 0 {
			s.root = s.order[0]
		}
	})
	return s.root
}

// Depth returns the length of the longest root-to-leaf path in the
// schema tree (a single-level schema has depth 1). Cycles contribute a
// single traversal.
func (s *Schema) Depth() int {
	visiting := make(map[string]bool)
	var depth func(tag string) int
	depth = func(tag string) int {
		if visiting[tag] {
			return 0
		}
		visiting[tag] = true
		defer delete(visiting, tag)
		max := 0
		for _, c := range s.ChildTags(tag) {
			if d := depth(c); d > max {
				max = d
			}
		}
		return max + 1
	}
	return depth(s.Root())
}

// PathFromRoot returns the tag names on the path from the root to tag,
// inclusive of both, using the first (declaration-ordered) parent found.
// It returns nil if tag is unreachable from the root.
func (s *Schema) PathFromRoot(tag string) []string {
	type state struct {
		tag  string
		path []string
	}
	root := s.Root()
	queue := []state{{root, []string{root}}}
	seen := map[string]bool{root: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.tag == tag {
			return cur.path
		}
		for _, c := range s.ChildTags(cur.tag) {
			if !seen[c] {
				seen[c] = true
				next := append(append([]string{}, cur.path...), c)
				queue = append(queue, state{c, next})
			}
		}
	}
	return nil
}

// Parent returns the first declared element under which tag can appear,
// or "" if tag is the root or undeclared.
func (s *Schema) Parent(tag string) string {
	for _, name := range s.order {
		for _, c := range s.ChildTags(name) {
			if c == tag {
				return name
			}
		}
	}
	return ""
}

// CanNest reports whether descendant can appear (at any depth) inside
// ancestor according to the schema.
func (s *Schema) CanNest(ancestor, descendant string) bool {
	seen := make(map[string]bool)
	var walk func(tag string) bool
	walk = func(tag string) bool {
		if seen[tag] {
			return false
		}
		seen[tag] = true
		for _, c := range s.ChildTags(tag) {
			if c == descendant || walk(c) {
				return true
			}
		}
		return false
	}
	return walk(ancestor)
}

// Siblings reports whether a and b share a declared parent element.
func (s *Schema) Siblings(a, b string) bool {
	for _, name := range s.order {
		hasA, hasB := false, false
		for _, c := range s.ChildTags(name) {
			if c == a {
				hasA = true
			}
			if c == b {
				hasB = true
			}
		}
		if hasA && hasB {
			return true
		}
	}
	return false
}

// SiblingsBetween returns the declared tags strictly between a and b in
// their common parent's content-model order, or nil (and false) if a
// and b are not ordered siblings.
func (s *Schema) SiblingsBetween(a, b string) ([]string, bool) {
	for _, name := range s.order {
		seq := s.ChildTags(name) // sorted; need declaration order instead
		_ = seq
		order := childOrder(s.elements[name])
		ia, ib := indexOf(order, a), indexOf(order, b)
		if ia < 0 || ib < 0 {
			continue
		}
		if ia > ib {
			ia, ib = ib, ia
		}
		return append([]string{}, order[ia+1:ib]...), true
	}
	return nil, false
}

// ChildOrder returns the distinct element names that can appear
// directly under name, in content-model (declaration) order, followed
// by attribute pseudo-tags. Unlike ChildTags, which sorts, this
// preserves the sibling order sequence models prescribe.
func (s *Schema) ChildOrder(name string) []string {
	return childOrder(s.elements[name])
}

// childOrder returns the child names of e in content-model order.
func childOrder(e *Element) []string {
	if e == nil || e.Model == nil {
		return nil
	}
	var out []string
	seen := make(map[string]bool)
	var walk func(p *Particle)
	walk = func(p *Particle) {
		if p == nil {
			return
		}
		if p.Kind == NameParticle {
			if !seen[p.Name] {
				seen[p.Name] = true
				out = append(out, p.Name)
			}
			return
		}
		for _, c := range p.Children {
			walk(c)
		}
	}
	switch e.Model.Kind {
	case ElementContent:
		walk(e.Model.Particle)
	case Mixed:
		out = append(out, e.Model.MixedSet...)
	}
	out = append(out, e.Attributes...)
	return out
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// String renders the schema back as DTD text.
func (s *Schema) String() string {
	var b strings.Builder
	for _, name := range s.order {
		e := s.elements[name]
		fmt.Fprintf(&b, "<!ELEMENT %s %s>\n", e.Name, e.Model)
		if len(e.Attributes) > 0 {
			fmt.Fprintf(&b, "<!ATTLIST %s", e.Name)
			for _, a := range e.Attributes {
				fmt.Fprintf(&b, " %s CDATA #IMPLIED", a)
			}
			b.WriteString(">\n")
		}
	}
	return b.String()
}
