// Package xmltree provides the XML instance model used throughout LSD:
// a lightweight element tree with a parser built on encoding/xml,
// serialization, and the path/depth utilities the learners need.
//
// Per the paper (§2.1), attributes and sub-elements are treated in the
// same fashion: each attribute of an element is modelled as an
// additional leaf child.
package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Node is an XML element: a tag, the character data directly enclosed
// by the tag, and its sub-elements in document order.
type Node struct {
	Tag      string
	Text     string // concatenated trimmed character data directly under this node
	Children []*Node
}

// New returns a leaf node with the given tag and text.
func New(tag, textContent string) *Node {
	return &Node{Tag: tag, Text: textContent}
}

// NewParent returns an internal node with the given tag and children.
func NewParent(tag string, children ...*Node) *Node {
	return &Node{Tag: tag, Children: children}
}

// AddChild appends child to n and returns n for chaining.
func (n *Node) AddChild(child *Node) *Node {
	n.Children = append(n.Children, child)
	return n
}

// IsLeaf reports whether n has no sub-elements.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Depth returns the depth of the tree rooted at n; a leaf has depth 1.
func (n *Node) Depth() int {
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Size returns the number of nodes in the tree rooted at n.
func (n *Node) Size() int {
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Content returns the concatenation of all text in the subtree rooted
// at n, in document order, separated by single spaces.
func (n *Node) Content() string {
	var parts []string
	n.walkContent(&parts)
	return strings.Join(parts, " ")
}

func (n *Node) walkContent(parts *[]string) {
	if n.Text != "" {
		*parts = append(*parts, n.Text)
	}
	for _, c := range n.Children {
		c.walkContent(parts)
	}
}

// Walk calls fn for every node in the subtree rooted at n, pre-order.
// The second argument to fn is the path of tags from the root to the
// node, inclusive.
func (n *Node) Walk(fn func(node *Node, path []string)) {
	n.walk(nil, fn)
}

func (n *Node) walk(prefix []string, fn func(*Node, []string)) {
	path := append(prefix, n.Tag)
	fn(n, path)
	for _, c := range n.Children {
		c.walk(path, fn)
	}
}

// FindAll returns all nodes in the subtree rooted at n (including n
// itself) whose tag equals tag, in document order.
func (n *Node) FindAll(tag string) []*Node {
	var out []*Node
	n.Walk(func(node *Node, _ []string) {
		if node.Tag == tag {
			out = append(out, node)
		}
	})
	return out
}

// First returns the first direct child of n with the given tag, or nil.
func (n *Node) First(tag string) *Node {
	for _, c := range n.Children {
		if c.Tag == tag {
			return c
		}
	}
	return nil
}

// Clone returns a deep copy of the subtree rooted at n.
func (n *Node) Clone() *Node {
	cp := &Node{Tag: n.Tag, Text: n.Text}
	if len(n.Children) > 0 {
		cp.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return cp
}

// Tags returns the set of distinct tags appearing in the subtree.
func (n *Node) Tags() map[string]bool {
	set := make(map[string]bool)
	n.Walk(func(node *Node, _ []string) { set[node.Tag] = true })
	return set
}

// String renders the tree as indented XML.
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b, 0)
	return b.String()
}

func (n *Node) write(b *strings.Builder, indent int) {
	pad := strings.Repeat("  ", indent)
	if n.IsLeaf() {
		fmt.Fprintf(b, "%s<%s>%s</%s>\n", pad, n.Tag, escape(n.Text), n.Tag)
		return
	}
	fmt.Fprintf(b, "%s<%s>", pad, n.Tag)
	if n.Text != "" {
		b.WriteString(escape(n.Text))
	}
	b.WriteString("\n")
	for _, c := range n.Children {
		c.write(b, indent+1)
	}
	fmt.Fprintf(b, "%s</%s>\n", pad, n.Tag)
}

func escape(s string) string {
	var b strings.Builder
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return s
	}
	return b.String()
}

// Parse reads a single XML document from r and returns its root node.
// Attributes are converted to leaf children, matching the paper's
// uniform treatment of attributes and sub-elements.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var stack []*Node
	var root *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Tag: t.Name.Local}
			for _, a := range t.Attr {
				n.AddChild(New(a.Name.Local, a.Value))
			}
			if len(stack) > 0 {
				stack[len(stack)-1].AddChild(n)
			} else if root == nil {
				root = n
			} else {
				return nil, fmt.Errorf("xmltree: multiple root elements")
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end tag %q", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue
			}
			txt := strings.TrimSpace(string(t))
			if txt == "" {
				continue
			}
			top := stack[len(stack)-1]
			if top.Text == "" {
				top.Text = txt
			} else {
				top.Text += " " + txt
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: unclosed element %q", stack[len(stack)-1].Tag)
	}
	return root, nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}

// ParseAll reads a stream of sibling XML documents (e.g. a file of
// house listings) and returns their roots in order.
func ParseAll(r io.Reader) ([]*Node, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xmltree: read: %w", err)
	}
	// Wrap in a synthetic root so the decoder accepts multiple siblings.
	wrapped := "<lsd-stream>" + string(data) + "</lsd-stream>"
	root, err := ParseString(wrapped)
	if err != nil {
		return nil, err
	}
	return root.Children, nil
}
