package xmltree

import (
	"strings"
	"testing"
	"testing/quick"
)

const houseListing = `
<house-listing>
  <location>Seattle, WA</location>
  <price>$70,000</price>
  <contact>
    <name>Kate Richardson</name>
    <phone>(206) 523 4719</phone>
  </contact>
</house-listing>`

func mustParse(t *testing.T, s string) *Node {
	t.Helper()
	n, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return n
}

func TestParseBasic(t *testing.T) {
	root := mustParse(t, houseListing)
	if root.Tag != "house-listing" {
		t.Fatalf("root tag = %q", root.Tag)
	}
	if len(root.Children) != 3 {
		t.Fatalf("children = %d, want 3", len(root.Children))
	}
	if got := root.First("location").Text; got != "Seattle, WA" {
		t.Errorf("location text = %q", got)
	}
	contact := root.First("contact")
	if contact == nil || len(contact.Children) != 2 {
		t.Fatalf("contact wrong: %v", contact)
	}
	if got := contact.First("phone").Text; got != "(206) 523 4719" {
		t.Errorf("phone text = %q", got)
	}
}

func TestParseAttributesBecomeChildren(t *testing.T) {
	root := mustParse(t, `<listing id="42"><price currency="USD">70000</price></listing>`)
	if got := root.First("id"); got == nil || got.Text != "42" {
		t.Fatalf("attribute id not a child leaf: %v", got)
	}
	price := root.First("price")
	if got := price.First("currency"); got == nil || got.Text != "USD" {
		t.Fatalf("attribute currency not a child leaf: %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"<a><b></a></b>",
		"<a></a><b></b>",
		"<a>",
	} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", bad)
		}
	}
}

func TestDepthAndSize(t *testing.T) {
	root := mustParse(t, houseListing)
	if d := root.Depth(); d != 3 {
		t.Errorf("Depth = %d, want 3", d)
	}
	if s := root.Size(); s != 6 {
		t.Errorf("Size = %d, want 6", s)
	}
	leaf := New("x", "y")
	if d := leaf.Depth(); d != 1 {
		t.Errorf("leaf Depth = %d, want 1", d)
	}
}

func TestContent(t *testing.T) {
	root := mustParse(t, houseListing)
	want := "Seattle, WA $70,000 Kate Richardson (206) 523 4719"
	if got := root.Content(); got != want {
		t.Errorf("Content = %q, want %q", got, want)
	}
}

func TestWalkPaths(t *testing.T) {
	root := mustParse(t, houseListing)
	var phonePath string
	root.Walk(func(n *Node, path []string) {
		if n.Tag == "phone" {
			phonePath = strings.Join(path, "/")
		}
	})
	if phonePath != "house-listing/contact/phone" {
		t.Errorf("phone path = %q", phonePath)
	}
}

func TestFindAll(t *testing.T) {
	root := mustParse(t, `<r><x>1</x><g><x>2</x></g><x>3</x></r>`)
	xs := root.FindAll("x")
	if len(xs) != 3 {
		t.Fatalf("FindAll(x) = %d nodes, want 3", len(xs))
	}
	// Document order.
	for i, want := range []string{"1", "2", "3"} {
		if xs[i].Text != want {
			t.Errorf("xs[%d].Text = %q, want %q", i, xs[i].Text, want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	root := mustParse(t, houseListing)
	cp := root.Clone()
	cp.First("contact").First("phone").Text = "changed"
	if root.First("contact").First("phone").Text == "changed" {
		t.Error("Clone shares nodes with original")
	}
	if cp.Size() != root.Size() || cp.Depth() != root.Depth() {
		t.Error("Clone shape differs from original")
	}
}

func TestStringRoundTrip(t *testing.T) {
	root := mustParse(t, houseListing)
	again, err := ParseString(root.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !equal(root, again) {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", root, again)
	}
}

func TestStringEscapes(t *testing.T) {
	n := New("desc", `great <view> & "cheap"`)
	again, err := ParseString(n.String())
	if err != nil {
		t.Fatalf("reparse escaped: %v", err)
	}
	if again.Text != n.Text {
		t.Errorf("escaped round trip: %q vs %q", again.Text, n.Text)
	}
}

func TestParseAll(t *testing.T) {
	docs, err := ParseAll(strings.NewReader(`<a>1</a><a>2</a><b>3</b>`))
	if err != nil {
		t.Fatalf("ParseAll: %v", err)
	}
	if len(docs) != 3 {
		t.Fatalf("ParseAll = %d docs, want 3", len(docs))
	}
	if docs[0].Text != "1" || docs[2].Tag != "b" {
		t.Errorf("ParseAll content wrong: %v", docs)
	}
}

func TestTags(t *testing.T) {
	root := mustParse(t, houseListing)
	tags := root.Tags()
	for _, want := range []string{"house-listing", "location", "price", "contact", "name", "phone"} {
		if !tags[want] {
			t.Errorf("Tags missing %q", want)
		}
	}
	if len(tags) != 6 {
		t.Errorf("len(Tags) = %d, want 6", len(tags))
	}
}

// TestRoundTripProperty: any tree built from a restricted alphabet
// survives a String -> Parse round trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(shape []uint8, texts []uint8) bool {
		root := genTree(shape, texts)
		again, err := ParseString(root.String())
		if err != nil {
			return false
		}
		return equal(root, again)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// genTree deterministically builds a small tree from fuzz bytes.
func genTree(shape, texts []uint8) *Node {
	tags := []string{"alpha", "beta", "gamma", "delta"}
	words := []string{"", "great location", "70000", "x y z"}
	root := New("root", "")
	cur := root
	for i, b := range shape {
		child := New(tags[int(b)%len(tags)], "")
		if len(texts) > 0 {
			child.Text = words[int(texts[i%len(texts)])%len(words)]
		}
		cur.AddChild(child)
		if b%3 == 0 {
			cur = child
		}
	}
	return root
}

func equal(a, b *Node) bool {
	if a.Tag != b.Tag || a.Text != b.Text || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}
