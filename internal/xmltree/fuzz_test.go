package xmltree

import "testing"

// FuzzParseString checks the XML parser never panics and that accepted
// documents survive a String → Parse round trip.
func FuzzParseString(f *testing.F) {
	f.Add("<a><b>hi</b></a>")
	f.Add(houseListing)
	f.Add(`<listing id="42"><price currency="USD">70000</price></listing>`)
	f.Add("<a>&lt;escaped&gt;</a>")
	f.Add("<a")
	f.Add("<a></b>")
	f.Add("<a><a><a></a></a></a>")

	f.Fuzz(func(t *testing.T, input string) {
		n, err := ParseString(input)
		if err != nil {
			return
		}
		again, err := ParseString(n.String())
		if err != nil {
			t.Fatalf("accepted doc failed to re-parse: %v\n%s", err, n)
		}
		if !equal(n, again) {
			t.Fatalf("round trip changed tree:\n%s\nvs\n%s", n, again)
		}
	})
}
