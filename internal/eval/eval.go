// Package eval implements the experimental methodology of §6: for each
// domain, all ten 3-of-5 train / 2-test splits are run, repeated over
// several fresh data samples; the matching accuracy of a source is the
// percentage of matchable source tags matched correctly, the average
// accuracy of a source is its accuracy averaged over all settings in
// which it is tested, and the average accuracy of a domain is the
// average over its five sources.
package eval

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/learn"
	"repro/internal/learners/contentmatcher"
	"repro/internal/learners/naivebayes"
	"repro/internal/learners/namematcher"
	"repro/internal/meta"
	"repro/internal/parallel"
)

// Protocol fixes the experimental parameters.
type Protocol struct {
	// Listings is the number of data listings used per source (the
	// paper's main experiments use 300).
	Listings int
	// Samples is how many fresh data samples to draw (the paper runs
	// each experiment three times).
	Samples int
	// Seed drives sampling and training shuffles.
	Seed int64
	// MaxSplits optionally caps the number of train/test splits run
	// (0 = all ten); tests use small values for speed.
	MaxSplits int
	// Workers bounds the concurrency of the protocol: the (sample,
	// split) train/match rounds are independent and run on a worker
	// pool of this size (0 or negative = one per CPU, 1 = serial).
	// Each round derives its own RNG seed from (Seed, sample, split),
	// so the reported accuracy is identical at every setting.
	Workers int
}

// DefaultProtocol returns the paper's settings: 300 listings, 3
// samples, all ten splits.
func DefaultProtocol() Protocol {
	return Protocol{Listings: 300, Samples: 3, Seed: 7}
}

// splits returns all C(5,3) = 10 ways to pick 3 training sources from
// 5; the remaining 2 are the test sources.
func splits() [][]int {
	var out [][]int
	for a := 0; a < datagen.NumSources; a++ {
		for b := a + 1; b < datagen.NumSources; b++ {
			for c := b + 1; c < datagen.NumSources; c++ {
				out = append(out, []int{a, b, c})
			}
		}
	}
	return out
}

// Run trains cfg on each split's training sources and matches the test
// sources, returning the domain's average matching accuracy (in %).
//
// The Samples × splits rounds are independent, so they fan out across
// p.Workers goroutines; per-round accuracies are merged back in
// (sample, split, source) order, which keeps the average bit-identical
// to the serial protocol.
func Run(d *datagen.Domain, cfg core.Config, p Protocol) (float64, error) {
	med := d.Mediated()
	specs := d.Sources()

	allSplits := splits()
	if p.MaxSplits > 0 && len(allSplits) > p.MaxSplits {
		allSplits = allSplits[:p.MaxSplits]
	}
	// Materialize every source once per sample, up front and serially:
	// generation is cheap next to training, and the rounds of a sample
	// then share the sources read-only.
	sampleSources := make([][]*core.Source, p.Samples)
	for sample := 0; sample < p.Samples; sample++ {
		sampleSeed := p.Seed + int64(sample)*97
		sources := make([]*core.Source, len(specs))
		for i, spec := range specs {
			n := p.Listings
			if n > spec.NominalListings {
				n = spec.NominalListings
			}
			sources[i] = spec.Generate(n, sampleSeed)
		}
		sampleSources[sample] = sources
	}

	workers := parallel.Workers(p.Workers)
	type sourceAcc struct {
		name string
		acc  float64
	}
	rounds := p.Samples * len(allSplits)
	perRound, err := parallel.Map(context.Background(), workers, rounds,
		func(_ context.Context, round int) ([]sourceAcc, error) {
			sample, split := round/len(allSplits), round%len(allSplits)
			sources := sampleSources[sample]
			tr := allSplits[split]
			inTrain := make(map[int]bool, len(tr))
			var train []*core.Source
			for _, i := range tr {
				inTrain[i] = true
				train = append(train, sources[i])
			}
			runCfg := cfg
			runCfg.Seed = learn.DeriveSeed(p.Seed, int64(sample), int64(split))
			if workers > 1 {
				// Round-level parallelism already saturates the pool;
				// keep the inner pipeline serial.
				runCfg.Workers = 1
			}
			sys, err := core.Train(med, train, runCfg)
			if err != nil {
				return nil, fmt.Errorf("eval: train on %s: %w", d.Name, err)
			}
			var accs []sourceAcc
			for i, src := range sources {
				if inTrain[i] {
					continue
				}
				res, err := sys.Match(context.Background(), src)
				if err != nil {
					return nil, fmt.Errorf("eval: match %s: %w", src.Name, err)
				}
				accs = append(accs, sourceAcc{src.Name, core.Accuracy(src, res.Mapping)})
			}
			return accs, nil
		})
	if err != nil {
		return 0, err
	}
	perSource := make(map[string][]float64)
	for _, accs := range perRound {
		for _, a := range accs {
			perSource[a.name] = append(perSource[a.name], a.acc)
		}
	}
	return domainAverage(perSource), nil
}

// domainAverage averages per-source means, per the paper's definition.
func domainAverage(perSource map[string][]float64) float64 {
	if len(perSource) == 0 {
		return 0
	}
	names := make([]string, 0, len(perSource))
	for n := range perSource {
		names = append(names, n)
	}
	sort.Strings(names)
	total := 0.0
	for _, n := range names {
		accs := perSource[n]
		s := 0.0
		for _, a := range accs {
			s += a
		}
		total += s / float64(len(accs))
	}
	return 100 * total / float64(len(perSource))
}

// ---------------------------------------------------------------------------
// Configurations (§6.1, Figure 8.a).

// baseSpecs returns the three non-structural base learners.
func baseSpecs() []core.LearnerSpec {
	return []core.LearnerSpec{
		{Name: "NameMatcher", Factory: namematcher.Factory},
		{Name: "ContentMatcher", Factory: contentmatcher.Factory},
		{Name: "NaiveBayes", Factory: naivebayes.Factory},
	}
}

// SingleLearnerConfig runs one base learner alone: no stacking benefit,
// greedy label choice, no XML learner, no constraints.
func SingleLearnerConfig(spec core.LearnerSpec) core.Config {
	return core.Config{
		BaseLearners:         []core.LearnerSpec{spec},
		UseXMLLearner:        false,
		UseConstraintHandler: false,
		Meta:                 meta.DefaultConfig(),
	}
}

// MetaConfig is base learners + meta-learner (greedy, no XML).
func MetaConfig() core.Config {
	return core.Config{
		BaseLearners:         baseSpecs(),
		UseXMLLearner:        false,
		UseConstraintHandler: false,
		Meta:                 meta.DefaultConfig(),
	}
}

// ConstraintConfig is base learners + meta-learner + constraint handler.
func ConstraintConfig() core.Config {
	cfg := MetaConfig()
	cfg.UseConstraintHandler = true
	return cfg
}

// FullConfig is the complete LSD system, XML learner included.
func FullConfig() core.Config {
	cfg := ConstraintConfig()
	cfg.UseXMLLearner = true
	return cfg
}

// Ladder is the four-bar group of Figure 8.a for one domain.
type Ladder struct {
	Domain       string
	BestBase     float64 // best single base learner (excluding XML)
	BestBaseName string
	Meta         float64 // base learners + meta-learner
	Constraints  float64 // + constraint handler
	Full         float64 // + XML learner (complete LSD)
}

// RunLadder computes the Figure 8.a bars for one domain.
func RunLadder(d *datagen.Domain, p Protocol) (*Ladder, error) {
	out := &Ladder{Domain: d.Name}
	for _, spec := range baseSpecs() {
		acc, err := Run(d, SingleLearnerConfig(spec), p)
		if err != nil {
			return nil, err
		}
		if acc > out.BestBase {
			out.BestBase, out.BestBaseName = acc, spec.Name
		}
	}
	var err error
	if out.Meta, err = Run(d, MetaConfig(), p); err != nil {
		return nil, err
	}
	if out.Constraints, err = Run(d, ConstraintConfig(), p); err != nil {
		return nil, err
	}
	if out.Full, err = Run(d, FullConfig(), p); err != nil {
		return nil, err
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Sensitivity (§6.1, Figures 8.b-c).

// SensitivityPoint is one x-position of Figures 8.b-c: the four
// configuration accuracies at a given number of listings per source.
type SensitivityPoint struct {
	Listings    int
	Base        float64 // best single base learner
	Meta        float64
	Constraints float64
	Full        float64
}

// RunSensitivity sweeps the number of listings per source.
func RunSensitivity(d *datagen.Domain, listingCounts []int, p Protocol) ([]SensitivityPoint, error) {
	var out []SensitivityPoint
	for _, n := range listingCounts {
		pp := p
		pp.Listings = n
		ladder, err := RunLadder(d, pp)
		if err != nil {
			return nil, err
		}
		out = append(out, SensitivityPoint{
			Listings:    n,
			Base:        ladder.BestBase,
			Meta:        ladder.Meta,
			Constraints: ladder.Constraints,
			Full:        ladder.Full,
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Lesion studies (§6.2, Figure 9.a).

// Lesion holds Figure 9.a for one domain: the accuracy of LSD with each
// component removed, plus the complete system.
type Lesion struct {
	Domain            string
	WithoutName       float64
	WithoutNaiveBayes float64
	WithoutContent    float64
	WithoutHandler    float64
	Complete          float64
}

// RunLesion computes Figure 9.a for one domain.
func RunLesion(d *datagen.Domain, p Protocol) (*Lesion, error) {
	out := &Lesion{Domain: d.Name}
	without := func(name string) core.Config {
		cfg := FullConfig()
		var kept []core.LearnerSpec
		for _, spec := range cfg.BaseLearners {
			if spec.Name != name {
				kept = append(kept, spec)
			}
		}
		cfg.BaseLearners = kept
		return cfg
	}
	var err error
	if out.WithoutName, err = Run(d, without("NameMatcher"), p); err != nil {
		return nil, err
	}
	if out.WithoutNaiveBayes, err = Run(d, without("NaiveBayes"), p); err != nil {
		return nil, err
	}
	if out.WithoutContent, err = Run(d, without("ContentMatcher"), p); err != nil {
		return nil, err
	}
	noHandler := FullConfig()
	noHandler.UseConstraintHandler = false
	if out.WithoutHandler, err = Run(d, noHandler, p); err != nil {
		return nil, err
	}
	if out.Complete, err = Run(d, FullConfig(), p); err != nil {
		return nil, err
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Schema vs. data information (§6.2, Figure 9.b).

// SchemaVsData holds Figure 9.b for one domain.
type SchemaVsData struct {
	Domain     string
	SchemaOnly float64 // name matcher + schema constraints
	DataOnly   float64 // content, NB, XML + data constraints
	Both       float64 // the complete system
}

// RunSchemaVsData computes Figure 9.b for one domain. The schema-only
// version keeps the name matcher and the schema-verifiable constraints;
// the data-only version keeps the content matcher, Naive Bayes, and the
// XML learner with the data-verifiable constraints.
func RunSchemaVsData(d *datagen.Domain, p Protocol) (*SchemaVsData, error) {
	out := &SchemaVsData{Domain: d.Name}

	schemaOnly := func() *datagen.Domain {
		dd := *d
		orig := d.Constraints
		dd.Constraints = func() []constraint.Constraint {
			var cs []constraint.Constraint
			for _, c := range orig() {
				if !constraint.IsDataConstraint(c) {
					cs = append(cs, c)
				}
			}
			return cs
		}
		return &dd
	}()
	dataOnly := func() *datagen.Domain {
		dd := *d
		orig := d.Constraints
		dd.Constraints = func() []constraint.Constraint {
			var cs []constraint.Constraint
			for _, c := range orig() {
				if constraint.IsDataConstraint(c) {
					cs = append(cs, c)
				}
			}
			return cs
		}
		return &dd
	}()

	schemaCfg := core.Config{
		BaseLearners:         []core.LearnerSpec{{Name: "NameMatcher", Factory: namematcher.Factory}},
		UseXMLLearner:        false,
		UseConstraintHandler: true,
		Meta:                 meta.DefaultConfig(),
	}
	dataCfg := core.Config{
		BaseLearners: []core.LearnerSpec{
			{Name: "ContentMatcher", Factory: contentmatcher.Factory},
			{Name: "NaiveBayes", Factory: naivebayes.Factory},
		},
		UseXMLLearner:        true,
		UseConstraintHandler: true,
		Meta:                 meta.DefaultConfig(),
	}

	var err error
	if out.SchemaOnly, err = Run(schemaOnly, schemaCfg, p); err != nil {
		return nil, err
	}
	if out.DataOnly, err = Run(dataOnly, dataCfg, p); err != nil {
		return nil, err
	}
	if out.Both, err = Run(d, FullConfig(), p); err != nil {
		return nil, err
	}
	return out, nil
}

// used keeps learn imported for the feedback loop's label handling.
var _ = learn.Other
