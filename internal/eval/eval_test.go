package eval

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/datagen"
)

// fastProtocol keeps unit-test runtime low: few listings, one sample,
// two splits.
func fastProtocol() Protocol {
	return Protocol{Listings: 15, Samples: 1, Seed: 3, MaxSplits: 2}
}

func TestSplits(t *testing.T) {
	ss := splits()
	if len(ss) != 10 {
		t.Fatalf("splits = %d, want C(5,3) = 10", len(ss))
	}
	seen := make(map[[3]int]bool)
	for _, s := range ss {
		if len(s) != 3 {
			t.Fatalf("split size %d", len(s))
		}
		key := [3]int{s[0], s[1], s[2]}
		if seen[key] {
			t.Errorf("duplicate split %v", s)
		}
		seen[key] = true
	}
}

func TestRunProducesReasonableAccuracy(t *testing.T) {
	acc, err := Run(datagen.RealEstateI(), FullConfig(), fastProtocol())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if acc < 40 || acc > 100 {
		t.Errorf("Real Estate I full accuracy = %.1f, outside plausible range", acc)
	}
}

func TestRunDeterministic(t *testing.T) {
	p := fastProtocol()
	a, err := Run(datagen.FacultyListings(), MetaConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(datagen.FacultyListings(), MetaConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("Run not deterministic: %.3f vs %.3f", a, b)
	}
}

// TestRunDeterministicAcrossWorkers asserts the protocol's headline
// concurrency guarantee: the reported accuracy is bit-identical no
// matter how many workers execute the (sample, split) rounds.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	p := fastProtocol()
	p.Samples = 2
	p.Workers = 1
	serial, err := Run(datagen.FacultyListings(), MetaConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 0} {
		p.Workers = w
		got, err := Run(datagen.FacultyListings(), MetaConfig(), p)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got != serial {
			t.Errorf("workers=%d: accuracy %.17g != serial %.17g", w, got, serial)
		}
	}
}

// TestLadderOrdering verifies the paper's headline relationship on one
// domain at small scale: the complete system must beat the best single
// base learner (Figure 8.a).
func TestLadderOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("ladder is slow")
	}
	p := Protocol{Listings: 30, Samples: 1, Seed: 7, MaxSplits: 3}
	ladder, err := RunLadder(datagen.TimeSchedule(), p)
	if err != nil {
		t.Fatalf("RunLadder: %v", err)
	}
	if ladder.Full <= ladder.BestBase {
		t.Errorf("full LSD %.1f should beat best base learner %.1f (%s)",
			ladder.Full, ladder.BestBase, ladder.BestBaseName)
	}
	if ladder.BestBaseName == "" {
		t.Error("best base learner name missing")
	}
}

func TestTable3AllDomains(t *testing.T) {
	rows := make([]Table3Row, 0, 4)
	for _, d := range datagen.Domains() {
		rows = append(rows, Table3(d))
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Spot-check the Real Estate I row against Table 3.
	r := rows[0]
	if r.MediatedTags != 20 || r.MediatedNonLeaf != 4 || r.MediatedDepth != 3 {
		t.Errorf("Real Estate I mediated row = %+v", r)
	}
	if r.Sources != 5 {
		t.Errorf("sources = %d", r.Sources)
	}
	out := FormatTable3(rows)
	if len(out) == 0 {
		t.Error("FormatTable3 empty")
	}
}

func TestFeedbackLoopReachesPerfect(t *testing.T) {
	if testing.Short() {
		t.Skip("feedback loop is slow")
	}
	res, err := RunFeedback(datagen.FacultyListings(), 1, 15, 5)
	if err != nil {
		t.Fatalf("RunFeedback: %v", err)
	}
	if res.AvgCorrections < 0 || res.AvgCorrections > res.AvgTags {
		t.Errorf("corrections %.1f outside [0, %f]", res.AvgCorrections, res.AvgTags)
	}
	if res.AvgTags < 10 {
		t.Errorf("avg tags %.1f too small", res.AvgTags)
	}
}

func TestSchemaVsDataConstraintSplit(t *testing.T) {
	d := datagen.RealEstateI()
	all := d.Mediated().Constraints
	data, schema := 0, 0
	for _, c := range all {
		if constraint.IsDataConstraint(c) {
			data++
		} else {
			schema++
		}
	}
	if data == 0 {
		t.Error("Real Estate I has no data constraints (Key should be one)")
	}
	if schema == 0 {
		t.Error("Real Estate I has no schema constraints")
	}
}

func TestSingleLearnerConfigs(t *testing.T) {
	for _, spec := range baseSpecs() {
		cfg := SingleLearnerConfig(spec)
		if len(cfg.BaseLearners) != 1 || cfg.UseXMLLearner || cfg.UseConstraintHandler {
			t.Errorf("SingleLearnerConfig(%s) misconfigured: %+v", spec.Name, cfg)
		}
	}
	full := FullConfig()
	if !full.UseXMLLearner || !full.UseConstraintHandler || len(full.BaseLearners) != 3 {
		t.Errorf("FullConfig misconfigured: %+v", full)
	}
}
