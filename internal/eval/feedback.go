package eval

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/parallel"
)

// FeedbackResult summarizes the §6.3 user-feedback experiment for one
// domain: how many corrections a (simulated) user must provide before
// LSD reaches perfect matching on a test source, averaged over runs,
// and the average number of tags in the test schemas.
type FeedbackResult struct {
	Domain         string
	AvgCorrections float64
	AvgTags        float64
	Runs           int
}

// RunFeedback replays the §6.3 interaction loop: train on three random
// sources, test on one; order the test source's tags by decreasing
// structure score; repeatedly show the predicted labels in that order
// and, at the first incorrect label, supply the correct one as a
// feedback constraint and re-run the constraint handler, until every
// tag is matched correctly.
func RunFeedback(d *datagen.Domain, runs, listings int, seed int64) (*FeedbackResult, error) {
	return RunFeedbackWorkers(d, runs, listings, seed, 1)
}

// RunFeedbackWorkers is RunFeedback with the runs fanned out over a
// worker pool. The source permutations are drawn serially from a single
// seeded stream before fan-out (so the scenario sequence is identical
// to the serial protocol), and the per-run sums are merged back in run
// order; the averages are bit-identical at every workers setting.
func RunFeedbackWorkers(d *datagen.Domain, runs, listings int, seed int64, workers int) (*FeedbackResult, error) {
	med := d.Mediated()
	specs := d.Sources()
	//lint:ignore seedflow this is the experiment's root stream: the caller-provided seed IS the base seed, drawn serially before the fan-out; per-run streams derive from it below
	rng := rand.New(rand.NewSource(seed))
	res := &FeedbackResult{Domain: d.Name, Runs: runs}

	perms := make([][]int, runs)
	for run := 0; run < runs; run++ {
		perms[run] = rng.Perm(datagen.NumSources)
	}

	workers = parallel.Workers(workers)
	type runStats struct {
		corrections int
		tags        int
	}
	stats, err := parallel.Map(context.Background(), workers, runs,
		func(_ context.Context, run int) (runStats, error) {
			perm := perms[run]
			trainIdx, testIdx := perm[:3], perm[3]
			sampleSeed := seed + int64(run)*131

			var train []*core.Source
			for _, i := range trainIdx {
				n := listings
				if n > specs[i].NominalListings {
					n = specs[i].NominalListings
				}
				train = append(train, specs[i].Generate(n, sampleSeed))
			}
			n := listings
			if n > specs[testIdx].NominalListings {
				n = specs[testIdx].NominalListings
			}
			test := specs[testIdx].Generate(n, sampleSeed)

			cfg := FullConfig()
			cfg.Seed = sampleSeed
			if workers > 1 {
				cfg.Workers = 1
			}
			sys, err := core.Train(med, train, cfg)
			if err != nil {
				return runStats{}, fmt.Errorf("eval: feedback train: %w", err)
			}

			corrections, err := feedbackLoop(sys, test)
			if err != nil {
				return runStats{}, err
			}
			return runStats{corrections, test.Schema.NumTags()}, nil
		})
	if err != nil {
		return nil, err
	}
	for _, s := range stats {
		res.AvgCorrections += float64(s.corrections)
		res.AvgTags += float64(s.tags)
	}
	res.AvgCorrections /= float64(runs)
	res.AvgTags /= float64(runs)
	return res, nil
}

// feedbackLoop counts the corrections needed for perfect matching.
func feedbackLoop(sys *core.System, test *core.Source) (int, error) {
	// Tags in decreasing structure-score order (§6.3: "the greater the
	// structure below a tag, the greater the probability that the tag
	// is involved in one or more constraints").
	cols, err := core.CollectColumns(context.Background(), nil, test, 0)
	if err != nil {
		return 0, err
	}
	csrc := core.BuildConstraintSource(test, cols, 0)
	tags := append([]string(nil), test.Schema.Tags()...)
	sort.SliceStable(tags, func(i, j int) bool {
		return constraint.StructureScore(csrc, tags[i]) > constraint.StructureScore(csrc, tags[j])
	})

	var feedback []constraint.Constraint
	corrections := 0
	for iter := 0; iter <= len(tags); iter++ {
		res, err := sys.Match(context.Background(), test, feedback...)
		if err != nil {
			return 0, fmt.Errorf("eval: feedback match: %w", err)
		}
		wrong := ""
		for _, tag := range tags {
			if res.Mapping[tag] != test.LabelOf(tag) {
				wrong = tag
				break
			}
		}
		if wrong == "" {
			return corrections, nil
		}
		feedback = append(feedback, constraint.MustMatch(wrong, test.LabelOf(wrong)))
		corrections++
	}
	return corrections, nil
}
