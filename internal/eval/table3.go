package eval

import (
	"fmt"
	"strings"

	"repro/internal/datagen"
)

// Table3Row is one domain row of Table 3.
type Table3Row struct {
	Domain           string
	MediatedTags     int
	MediatedNonLeaf  int
	MediatedDepth    int
	Sources          int
	ListingsLo       int
	ListingsHi       int
	TagsLo, TagsHi   int
	NonLeafLo        int
	NonLeafHi        int
	DepthLo, DepthHi int
	MatchableLo      float64
	MatchableHi      float64
}

// Table3 computes the Table-3 characteristics of a domain from its
// synthesized mediated schema and sources.
func Table3(d *datagen.Domain) Table3Row {
	med := d.MediatedSchema()
	row := Table3Row{
		Domain:          d.Name,
		MediatedTags:    med.NumTags(),
		MediatedNonLeaf: len(med.NonLeafTags()),
		MediatedDepth:   med.Depth(),
		Sources:         datagen.NumSources,
		ListingsLo:      1 << 30,
		TagsLo:          1 << 30,
		NonLeafLo:       1 << 30,
		DepthLo:         1 << 30,
		MatchableLo:     101,
	}
	for _, s := range d.Sources() {
		row.ListingsLo = min(row.ListingsLo, s.NominalListings)
		row.ListingsHi = max(row.ListingsHi, s.NominalListings)
		row.TagsLo = min(row.TagsLo, s.Schema.NumTags())
		row.TagsHi = max(row.TagsHi, s.Schema.NumTags())
		row.NonLeafLo = min(row.NonLeafLo, len(s.Schema.NonLeafTags()))
		row.NonLeafHi = max(row.NonLeafHi, len(s.Schema.NonLeafTags()))
		row.DepthLo = min(row.DepthLo, s.Schema.Depth())
		row.DepthHi = max(row.DepthHi, s.Schema.Depth())
		p := s.MatchablePercent()
		if p < row.MatchableLo {
			row.MatchableLo = p
		}
		if p > row.MatchableHi {
			row.MatchableHi = p
		}
	}
	return row
}

// String renders the row in the layout of Table 3.
func (r Table3Row) String() string {
	return fmt.Sprintf("%-17s med[tags=%d nonleaf=%d depth=%d] sources=%d listings=%d-%d tags=%d-%d nonleaf=%d-%d depth=%d-%d matchable=%.0f-%.0f%%",
		r.Domain, r.MediatedTags, r.MediatedNonLeaf, r.MediatedDepth,
		r.Sources, r.ListingsLo, r.ListingsHi, r.TagsLo, r.TagsHi,
		r.NonLeafLo, r.NonLeafHi, r.DepthLo, r.DepthHi,
		r.MatchableLo, r.MatchableHi)
}

// FormatTable3 renders all domains as the full table.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: domains and data sources\n")
	for _, r := range rows {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
