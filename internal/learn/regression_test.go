package learn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLeastSquaresExact(t *testing.T) {
	// y = 2*x1 + 3*x2, exactly determined.
	x := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}
	y := []float64{2, 3, 5, 7}
	w, err := LeastSquares(x, y)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if math.Abs(w[0]-2) > 1e-6 || math.Abs(w[1]-3) > 1e-6 {
		t.Errorf("w = %v, want [2 3]", w)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Noisy y ≈ 1.5*x; fitted slope must be the least-squares estimate
	// Σxy/Σx² for the single-feature case.
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{1.4, 3.2, 4.4, 6.1}
	sumXY, sumXX := 0.0, 0.0
	for i := range x {
		sumXY += x[i][0] * y[i]
		sumXX += x[i][0] * x[i][0]
	}
	want := sumXY / sumXX
	w, err := LeastSquares(x, y)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if math.Abs(w[0]-want) > 1e-6 {
		t.Errorf("w = %v, want %g", w, want)
	}
}

func TestLeastSquaresCollinear(t *testing.T) {
	// Two identical features: ridge keeps the system solvable and the
	// fitted function must still reproduce y.
	x := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	y := []float64{2, 4, 6}
	w, err := LeastSquares(x, y)
	if err != nil {
		t.Fatalf("LeastSquares collinear: %v", err)
	}
	for i := range x {
		got := x[i][0]*w[0] + x[i][1]*w[1]
		if math.Abs(got-y[i]) > 1e-3 {
			t.Errorf("fit(%v) = %g, want %g", x[i], got, y[i])
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("no rows should error")
	}
	if _, err := LeastSquares([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("row/target mismatch should error")
	}
	if _, err := LeastSquares([][]float64{{}}, []float64{1}); err == nil {
		t.Error("no features should error")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows should error")
	}
}

// TestLeastSquaresRecoversPlantedWeights is a property test: data
// generated from planted weights with no noise is recovered.
func TestLeastSquaresRecoversPlantedWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(4)
		n := k + 2 + r.Intn(10)
		planted := make([]float64, k)
		for j := range planted {
			planted[j] = r.Float64()*4 - 2
		}
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = make([]float64, k)
			for j := range x[i] {
				x[i][j] = r.Float64()*2 - 1
			}
			for j := range x[i] {
				y[i] += planted[j] * x[i][j]
			}
		}
		w, err := LeastSquares(x, y)
		if err != nil {
			return false
		}
		for j := range w {
			if math.Abs(w[j]-planted[j]) > 1e-4 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{Rand: rng, MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNNLSMatchesUnconstrainedWhenPositive(t *testing.T) {
	// Planted positive weights: NNLS must recover them exactly.
	x := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}
	y := []float64{2, 3, 5, 7}
	w, err := NonNegativeLeastSquares(x, y)
	if err != nil {
		t.Fatalf("NNLS: %v", err)
	}
	if math.Abs(w[0]-2) > 1e-6 || math.Abs(w[1]-3) > 1e-6 {
		t.Errorf("w = %v, want [2 3]", w)
	}
}

func TestNNLSClampsNegative(t *testing.T) {
	// y = x1 - x2 exactly; the unconstrained solution has w2 < 0, so
	// NNLS must return w2 = 0 and refit w1.
	x := [][]float64{{1, 1}, {2, 1}, {3, 2}, {4, 1}}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = x[i][0] - x[i][1]
	}
	w, err := NonNegativeLeastSquares(x, y)
	if err != nil {
		t.Fatalf("NNLS: %v", err)
	}
	for j, wj := range w {
		if wj < 0 {
			t.Errorf("w[%d] = %g < 0", j, wj)
		}
	}
	if w[1] != 0 {
		t.Errorf("w[1] = %g, want 0", w[1])
	}
	if w[0] <= 0 {
		t.Errorf("w[0] = %g, want > 0", w[0])
	}
}

func TestNNLSZeroTarget(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}}
	y := []float64{0, 0}
	w, err := NonNegativeLeastSquares(x, y)
	if err != nil {
		t.Fatalf("NNLS: %v", err)
	}
	if w[0] != 0 || w[1] != 0 {
		t.Errorf("w = %v, want zeros", w)
	}
}

func TestNNLSErrors(t *testing.T) {
	if _, err := NonNegativeLeastSquares(nil, nil); err == nil {
		t.Error("no rows should error")
	}
	if _, err := NonNegativeLeastSquares([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatch should error")
	}
	if _, err := NonNegativeLeastSquares([][]float64{{}}, []float64{1}); err == nil {
		t.Error("no features should error")
	}
	if _, err := NonNegativeLeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows should error")
	}
}

// TestNNLSNeverWorseThanZero: property test — the NNLS fit must have
// residual no larger than the all-zero fit.
func TestNNLSNeverWorseThanZero(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(4)
		n := k + 2 + r.Intn(8)
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = make([]float64, k)
			for j := range x[i] {
				x[i][j] = r.Float64()
			}
			y[i] = r.Float64()*2 - 1
		}
		w, err := NonNegativeLeastSquares(x, y)
		if err != nil {
			return false
		}
		ssFit, ssZero := 0.0, 0.0
		for i := range x {
			pred := 0.0
			for j := range w {
				if w[j] < 0 {
					return false
				}
				pred += w[j] * x[i][j]
			}
			ssFit += (y[i] - pred) * (y[i] - pred)
			ssZero += y[i] * y[i]
		}
		return ssFit <= ssZero+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolvePivoting(t *testing.T) {
	// A system whose first pivot is zero: requires row exchange.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{3, 5}
	w, err := solve(a, b)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if math.Abs(w[0]-5) > 1e-12 || math.Abs(w[1]-3) > 1e-12 {
		t.Errorf("w = %v, want [5 3]", w)
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{{1, 1}, {1, 1}}
	b := []float64{1, 2}
	if _, err := solve(a, b); err == nil {
		t.Error("singular system should error")
	}
}
