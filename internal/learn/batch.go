package learn

// BatchPredictor is the optional batched companion to Learner: a
// learner that can score a whole batch of instances in one pass over
// its trained model — WHIRL scores every query document of a batch in
// a single traversal of the shared postings table, Naive Bayes sweeps
// its log-probability tables once per label instead of once per
// instance. The serve path groups a source's tag instances into such
// batches (core.Match), so implementing this interface turns per-call
// model walks into amortized whole-source scoring.
//
// The contract mirrors Predict exactly: PredictBatch(ins)[i] must be
// bit-identical to Predict(ins[i]) for every instance, at every batch
// size and order — batching is a pure evaluation-strategy change, and
// determinism_test.go enforces it across domains, worker counts, and
// cache shard counts.
type BatchPredictor interface {
	Learner
	// PredictBatch returns one prediction per instance, aligned with
	// ins. Returned predictions are read-only and may be shared — with
	// the learner's internal cache, between callers, and between
	// duplicate instances of the same batch — exactly like Predict's.
	//
	// lint:shared
	PredictBatch(ins []Instance) []Prediction
}

// PredictAll scores every instance with l, through PredictBatch when
// the learner implements BatchPredictor and per-instance Predict
// otherwise. The result is aligned with ins.
func PredictAll(l Learner, ins []Instance) []Prediction {
	if bp, ok := l.(BatchPredictor); ok {
		return bp.PredictBatch(ins)
	}
	out := make([]Prediction, len(ins))
	for i, in := range ins {
		out[i] = l.Predict(in)
	}
	return out
}
