package learn

import (
	"math/rand"
	"testing"
)

// TestDeriveSeedPinned pins the derived-seed sequence. These exact
// values seed the per-task RNGs of the parallel pipeline (per-learner
// cross-validation, per-split evaluation runs); changing the derivation
// silently changes every published experiment number, so any diff here
// must be deliberate and called out in EXPERIMENTS.md.
func TestDeriveSeedPinned(t *testing.T) {
	cases := []struct {
		base int64
		idxs []int64
		want int64
	}{
		{7, nil, -7046029254386353134},
		{7, []int64{0}, -4030626764348681087},
		{7, []int64{1}, 3416750472713694478},
		{7, []int64{0, 0}, -4491184961607225312},
		{7, []int64{0, 1}, -7181643732540129161},
		{7, []int64{1, 0}, 7954437317431929052},
		{1, []int64{2}, -5380434492612050522},
		{0, nil, -7046029254386353131},
		{-1, []int64{3}, -358427061850652455},
	}
	for _, c := range cases {
		if got := DeriveSeed(c.base, c.idxs...); got != c.want {
			t.Errorf("DeriveSeed(%d, %v) = %d, want %d", c.base, c.idxs, got, c.want)
		}
	}
}

// TestDeriveSeedDistinct checks that nearby task coordinates get
// distinct, order-sensitive seeds — the property that lets parallel
// tasks derive independent RNGs from (Seed, sample, split) without
// sharing rand state.
func TestDeriveSeedDistinct(t *testing.T) {
	seen := make(map[int64][2]int64)
	for s := int64(0); s < 8; s++ {
		for i := int64(0); i < 8; i++ {
			seed := DeriveSeed(42, s, i)
			if prev, dup := seen[seed]; dup {
				t.Fatalf("DeriveSeed(42,%d,%d) collides with (42,%d,%d)", s, i, prev[0], prev[1])
			}
			seen[seed] = [2]int64{s, i}
		}
	}
	if DeriveSeed(42, 1, 2) == DeriveSeed(42, 2, 1) {
		t.Error("DeriveSeed must be order-sensitive in its coordinates")
	}
}

// TestCrossValidateWorkersDeterministic checks the fold fan-out: the
// same seed must produce identical CV predictions at every pool size.
func TestCrossValidateWorkersDeterministic(t *testing.T) {
	labels := []string{"A", "B"}
	var examples []Example
	for i := 0; i < 20; i++ {
		examples = append(examples, Example{
			Instance: Instance{TagName: string(rune('a' + i%9))},
			Label:    labels[i%2],
		})
	}
	run := func(workers int) []Prediction {
		preds, err := CrossValidate(func() Learner { return &memorizer{} },
			labels, examples, 5, rand.New(rand.NewSource(DeriveSeed(7, 3))), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return preds
	}
	base := run(1)
	for _, workers := range []int{2, 4, 0} {
		got := run(workers)
		for i := range base {
			for _, c := range labels {
				if got[i][c] != base[i][c] {
					t.Fatalf("workers=%d pred[%d][%s] = %v, serial = %v",
						workers, i, c, got[i][c], base[i][c])
				}
			}
		}
	}
}
