package learn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPredictionNormalize(t *testing.T) {
	p := Prediction{"A": 2, "B": 1, "C": 1}
	p.Normalize()
	if math.Abs(p["A"]-0.5) > 1e-12 || math.Abs(p["B"]-0.25) > 1e-12 {
		t.Errorf("Normalize = %v", p)
	}
}

func TestPredictionNormalizeClampsNegative(t *testing.T) {
	p := Prediction{"A": -1, "B": 1}
	p.Normalize()
	if p["A"] != 0 || p["B"] != 1 {
		t.Errorf("Normalize with negatives = %v", p)
	}
}

func TestPredictionNormalizeAllZero(t *testing.T) {
	p := Prediction{"A": 0, "B": 0}
	p.Normalize()
	if math.Abs(p["A"]-0.5) > 1e-12 {
		t.Errorf("all-zero Normalize = %v, want uniform", p)
	}
}

func TestPredictionBest(t *testing.T) {
	p := Prediction{"ADDRESS": 0.7, "DESCRIPTION": 0.2, "AGENT-PHONE": 0.1}
	best, score := p.Best()
	if best != "ADDRESS" || score != 0.7 {
		t.Errorf("Best = %q, %g", best, score)
	}
	// Deterministic tie-break by label order.
	tie := Prediction{"B": 0.5, "A": 0.5}
	if best, _ := tie.Best(); best != "A" {
		t.Errorf("tie Best = %q, want A", best)
	}
	empty := Prediction{}
	if best, score := empty.Best(); best != "" || score != 0 {
		t.Errorf("empty Best = %q, %g", best, score)
	}
}

func TestPredictionNormalizeProperty(t *testing.T) {
	f := func(a, b, c uint32) bool {
		// Scores in practice are bounded combinations of probabilities;
		// model them as non-negative values of moderate magnitude.
		p := Prediction{
			"x": float64(a) / 1e3,
			"y": float64(b) / 1e3,
			"z": float64(c) / 1e3,
		}
		p.Normalize()
		sum := p["x"] + p["y"] + p["z"]
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniform(t *testing.T) {
	p := Uniform([]string{"a", "b", "c", "d"})
	for _, c := range []string{"a", "b", "c", "d"} {
		if math.Abs(p[c]-0.25) > 1e-12 {
			t.Errorf("Uniform[%s] = %g", c, p[c])
		}
	}
	if len(Uniform(nil)) != 0 {
		t.Error("Uniform(nil) should be empty")
	}
}

func TestExpandedName(t *testing.T) {
	in := Instance{
		TagName:  "phone",
		Path:     []string{"listing", "contact", "phone"},
		Synonyms: []string{"telephone"},
	}
	want := "phone listing contact phone telephone"
	if got := in.ExpandedName(); got != want {
		t.Errorf("ExpandedName = %q, want %q", got, want)
	}
}

// constLearner always predicts its fixed label; used to test CV plumbing.
type constLearner struct {
	label  string
	labels []string
	// trainedOn records how many examples this copy saw.
	trainedOn int
}

func (c *constLearner) Name() string { return "const" }
func (c *constLearner) Train(labels []string, examples []Example) error {
	c.labels = labels
	c.trainedOn = len(examples)
	return nil
}
func (c *constLearner) Predict(in Instance) Prediction {
	p := make(Prediction, len(c.labels))
	for _, l := range c.labels {
		p[l] = 0
	}
	p[c.label] = 1
	return p
}

// memorizer predicts the label it saw for an identical tag name during
// training, uniform otherwise. Used to verify CV actually withholds the
// test fold.
type memorizer struct {
	labels []string
	seen   map[string]string
}

func (m *memorizer) Name() string { return "memorizer" }
func (m *memorizer) Train(labels []string, examples []Example) error {
	m.labels = labels
	m.seen = make(map[string]string)
	for _, ex := range examples {
		m.seen[ex.Instance.TagName] = ex.Label
	}
	return nil
}
func (m *memorizer) Predict(in Instance) Prediction {
	if l, ok := m.seen[in.TagName]; ok {
		p := Prediction{}
		for _, c := range m.labels {
			p[c] = 0
		}
		p[l] = 1
		return p
	}
	return Uniform(m.labels)
}

func TestCrossValidateAlignment(t *testing.T) {
	labels := []string{"A", "B"}
	examples := []Example{
		{Instance: Instance{TagName: "x1"}, Label: "A"},
		{Instance: Instance{TagName: "x2"}, Label: "B"},
		{Instance: Instance{TagName: "x3"}, Label: "A"},
		{Instance: Instance{TagName: "x4"}, Label: "B"},
		{Instance: Instance{TagName: "x5"}, Label: "A"},
	}
	preds, err := CrossValidate(func() Learner { return &constLearner{label: "A"} },
		labels, examples, 5, rand.New(rand.NewSource(1)), 1)
	if err != nil {
		t.Fatalf("CrossValidate: %v", err)
	}
	if len(preds) != len(examples) {
		t.Fatalf("preds = %d, want %d", len(preds), len(examples))
	}
	for i, p := range preds {
		if p == nil {
			t.Fatalf("pred %d is nil", i)
		}
		if best, _ := p.Best(); best != "A" {
			t.Errorf("pred %d Best = %q", i, best)
		}
	}
}

func TestCrossValidateWithholdsFold(t *testing.T) {
	// Each tag name appears exactly once, so a memorizer can never have
	// seen its own test instance during CV training: every CV prediction
	// must be uniform.
	labels := []string{"A", "B"}
	var examples []Example
	for i := 0; i < 10; i++ {
		examples = append(examples, Example{
			Instance: Instance{TagName: string(rune('a' + i))},
			Label:    labels[i%2],
		})
	}
	preds, err := CrossValidate(func() Learner { return &memorizer{} },
		labels, examples, 5, rand.New(rand.NewSource(7)), 1)
	if err != nil {
		t.Fatalf("CrossValidate: %v", err)
	}
	for i, p := range preds {
		if math.Abs(p["A"]-0.5) > 1e-12 {
			t.Errorf("pred %d = %v, want uniform (fold leaked)", i, p)
		}
	}
}

func TestCrossValidateSmallInput(t *testing.T) {
	labels := []string{"A"}
	// d larger than n must degrade gracefully (leave-one-out).
	examples := []Example{
		{Instance: Instance{TagName: "x"}, Label: "A"},
		{Instance: Instance{TagName: "y"}, Label: "A"},
	}
	preds, err := CrossValidate(func() Learner { return &constLearner{label: "A"} },
		labels, examples, 5, rand.New(rand.NewSource(3)), 4)
	if err != nil || len(preds) != 2 {
		t.Fatalf("CrossValidate small: %v, %d preds", err, len(preds))
	}
	if _, err := CrossValidate(func() Learner { return &constLearner{label: "A"} },
		labels, examples, 1, rand.New(rand.NewSource(3)), 1); err == nil {
		t.Error("d=1 should be rejected")
	}
	preds, err = CrossValidate(func() Learner { return &constLearner{label: "A"} },
		labels, nil, 5, rand.New(rand.NewSource(3)), 1)
	if err != nil || preds != nil {
		t.Errorf("empty examples: %v, %v", preds, err)
	}
}

func TestAccuracy(t *testing.T) {
	preds := []Prediction{
		{"A": 0.9, "B": 0.1},
		{"A": 0.4, "B": 0.6},
		{"A": 0.5, "B": 0.3},
	}
	truth := []string{"A", "A", "A"}
	if got := Accuracy(preds, truth); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Accuracy = %g, want 2/3", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty Accuracy should be 0")
	}
}
