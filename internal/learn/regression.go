package learn

import (
	"fmt"
	"math"
)

// LeastSquares fits weights w minimizing Σᵢ (yᵢ − Σⱼ X[i][j]·wⱼ)²,
// the regression of §3.1 step 5(c). It solves the normal equations
// XᵀX w = Xᵀy by Gaussian elimination with partial pivoting; a tiny
// ridge term keeps the system well-posed when learners are perfectly
// correlated on the training set (common with few examples).
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("learn: regression with no rows")
	}
	if n != len(y) {
		return nil, fmt.Errorf("learn: regression rows %d != targets %d", n, len(y))
	}
	k := len(x[0])
	if k == 0 {
		return nil, fmt.Errorf("learn: regression with no features")
	}
	for i, row := range x {
		if len(row) != k {
			return nil, fmt.Errorf("learn: regression row %d has %d features, want %d", i, len(row), k)
		}
	}

	// Build XᵀX and Xᵀy.
	const ridge = 1e-9
	a := make([][]float64, k)
	b := make([]float64, k)
	for j := 0; j < k; j++ {
		a[j] = make([]float64, k)
	}
	for _, row := range x {
		for j := 0; j < k; j++ {
			if row[j] == 0 {
				continue
			}
			for l := j; l < k; l++ {
				a[j][l] += row[j] * row[l]
			}
		}
	}
	for j := 0; j < k; j++ {
		for l := 0; l < j; l++ {
			a[j][l] = a[l][j]
		}
		a[j][j] += ridge
	}
	for i, row := range x {
		for j := 0; j < k; j++ {
			b[j] += row[j] * y[i]
		}
	}
	w, err := solve(a, b)
	if err != nil {
		return nil, err
	}
	return w, nil
}

// NonNegativeLeastSquares fits weights w ≥ 0 minimizing ‖X·w − y‖²
// with the Lawson-Hanson active-set algorithm. Stacking with
// confidence-score features uses non-negative weights (Ting & Witten,
// the stacking method §3.1 cites): unconstrained regression assigns
// large negative weights to correlated learners, which generalizes
// poorly to new sources.
func NonNegativeLeastSquares(x [][]float64, y []float64) ([]float64, error) {
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("learn: regression with no rows")
	}
	if n != len(y) {
		return nil, fmt.Errorf("learn: regression rows %d != targets %d", n, len(y))
	}
	k := len(x[0])
	if k == 0 {
		return nil, fmt.Errorf("learn: regression with no features")
	}
	for i, row := range x {
		if len(row) != k {
			return nil, fmt.Errorf("learn: regression row %d has %d features, want %d", i, len(row), k)
		}
	}

	w := make([]float64, k)
	passive := make([]bool, k) // the active set P of Lawson-Hanson
	const tol = 1e-10

	residual := func() []float64 {
		r := make([]float64, n)
		for i := range x {
			s := y[i]
			for j := 0; j < k; j++ {
				s -= x[i][j] * w[j]
			}
			r[i] = s
		}
		return r
	}
	gradient := func(r []float64) []float64 {
		g := make([]float64, k)
		for i := range x {
			for j := 0; j < k; j++ {
				g[j] += x[i][j] * r[i]
			}
		}
		return g
	}
	// solveOnPassive solves the unconstrained LS restricted to the
	// passive columns, returning a full-length vector (zeros elsewhere).
	solveOnPassive := func() ([]float64, error) {
		var cols []int
		for j := 0; j < k; j++ {
			if passive[j] {
				cols = append(cols, j)
			}
		}
		sub := make([][]float64, n)
		for i := range x {
			row := make([]float64, len(cols))
			for jj, j := range cols {
				row[jj] = x[i][j]
			}
			sub[i] = row
		}
		zs, err := LeastSquares(sub, y)
		if err != nil {
			return nil, err
		}
		z := make([]float64, k)
		for jj, j := range cols {
			z[j] = zs[jj]
		}
		return z, nil
	}

	for iter := 0; iter < 3*k+10; iter++ {
		g := gradient(residual())
		// Select the most improving zero-weight feature.
		bestJ, bestG := -1, tol
		for j := 0; j < k; j++ {
			if !passive[j] && g[j] > bestG {
				bestJ, bestG = j, g[j]
			}
		}
		if bestJ < 0 {
			break
		}
		passive[bestJ] = true

		for {
			z, err := solveOnPassive()
			if err != nil {
				return nil, err
			}
			// Feasible: accept.
			minZ := math.Inf(1)
			for j := 0; j < k; j++ {
				if passive[j] && z[j] < minZ {
					minZ = z[j]
				}
			}
			if minZ > tol {
				copy(w, z)
				break
			}
			// Step toward z until the first weight hits zero; demote it.
			alpha := math.Inf(1)
			for j := 0; j < k; j++ {
				if passive[j] && z[j] <= tol {
					if a := w[j] / (w[j] - z[j]); a < alpha {
						alpha = a
					}
				}
			}
			if math.IsInf(alpha, 1) || math.IsNaN(alpha) {
				alpha = 0
			}
			for j := 0; j < k; j++ {
				if passive[j] {
					w[j] += alpha * (z[j] - w[j])
					if w[j] <= tol {
						w[j] = 0
						passive[j] = false
					}
				}
			}
		}
	}
	return w, nil
}

// solve solves the linear system a·w = b in place using Gaussian
// elimination with partial pivoting.
func solve(a [][]float64, b []float64) ([]float64, error) {
	k := len(a)
	for col := 0; col < k; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-15 {
			return nil, fmt.Errorf("learn: singular regression system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < k; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < k; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back-substitute.
	w := make([]float64, k)
	for r := k - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < k; c++ {
			s -= a[r][c] * w[c]
		}
		w[r] = s / a[r][r]
	}
	return w, nil
}

// Accuracy returns the fraction of predictions whose Best label equals
// the true label. Slices must be aligned; it panics on length mismatch.
func Accuracy(preds []Prediction, truth []string) float64 {
	if len(preds) != len(truth) {
		panic("learn: Accuracy length mismatch")
	}
	if len(preds) == 0 {
		return 0
	}
	correct := 0
	for i, p := range preds {
		if best, _ := p.Best(); best == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(preds))
}
