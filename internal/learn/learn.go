// Package learn defines the machine-learning substrate of LSD: the
// Learner interface all base learners implement, confidence-score
// predictions (§2.2), training examples built from XML elements,
// d-fold cross-validation (§3.1 step 5a), and the least-squares linear
// regression the meta-learner uses to fit learner weights (§3.1 step
// 5c).
package learn

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/parallel"
	"repro/internal/xmltree"
)

// Other is the reserved label assigned to source tags that match no
// mediated-schema tag (§2.2).
const Other = "OTHER"

// Instance is one XML element presented to the learners: LSD extracts
// for every source element its tag name, the root-to-element tag path,
// any synonym expansion of the name, the enclosed text, and the element
// tree itself (for structural learners).
type Instance struct {
	// TagName is the source-schema tag of the element.
	TagName string
	// Path is the list of tags from the document root to the element,
	// inclusive. The name matcher learns from the expanded name, which
	// includes "all tag names leading to this element from the root"
	// (§3.3).
	Path []string
	// Synonyms are additional names for the tag, when available.
	Synonyms []string
	// Content is the full text enclosed by the element.
	Content string
	// Node is the element tree; nil for purely textual instances.
	Node *xmltree.Node
}

// ExpandedName returns the tag name expanded with its path and
// synonyms, the input the name matcher vectorizes.
func (in Instance) ExpandedName() string {
	// Fast path: most instances have no path or synonyms, and the name
	// matcher calls this on every Predict before its cache lookup.
	if len(in.Path) == 0 && len(in.Synonyms) == 0 {
		return in.TagName
	}
	n := len(in.TagName)
	for _, p := range in.Path {
		n += 1 + len(p)
	}
	for _, syn := range in.Synonyms {
		n += 1 + len(syn)
	}
	var b strings.Builder
	b.Grow(n)
	b.WriteString(in.TagName)
	for _, p := range in.Path {
		b.WriteByte(' ')
		b.WriteString(p)
	}
	for _, syn := range in.Synonyms {
		b.WriteByte(' ')
		b.WriteString(syn)
	}
	return b.String()
}

// Example pairs an instance with its observed label. Group identifies
// the data source the example came from: cross-validation folds by
// group, so that the fitted meta-weights measure how well each learner
// generalizes to *unseen sources* rather than how well it memorizes the
// training ones (§3.1: stacking "uses cross-validation to ensure that
// the weights ... do not overfit the training sources"). Without
// source-level folding the name matcher looks spuriously perfect — all
// listings of a source share its tag names — and stacking would trust
// it far beyond its real cross-source accuracy.
type Example struct {
	Instance Instance
	Label    string
	Group    string
}

// Prediction is a confidence-score distribution over labels:
// s(c|x, L) for each label c, with scores summing to 1 after
// Normalize (§2.2).
type Prediction map[string]float64

// Normalize scales the prediction so non-negative scores sum to 1.
// Negative scores are clamped to 0 first. If every score is zero the
// prediction becomes uniform over its labels.
//
// The scores are summed in sorted-value order, not map order: float
// addition is not associative, so a map-order sum would differ between
// otherwise identical runs in the last bits, and the pipeline promises
// bit-identical output for a fixed seed.
func (p Prediction) Normalize() Prediction {
	// Label sets are small; a stack buffer keeps the per-call sort
	// allocation-free on every predict path.
	var buf [24]float64
	vals := buf[:0]
	if len(p) > len(buf) {
		vals = make([]float64, 0, len(p))
	}
	for c, s := range p {
		if s < 0 {
			p[c] = 0
		} else {
			vals = append(vals, s)
		}
	}
	sort.Float64s(vals)
	sum := 0.0
	for _, s := range vals {
		sum += s
	}
	if sum == 0 {
		if len(p) == 0 {
			return p
		}
		u := 1 / float64(len(p))
		for c := range p {
			p[c] = u
		}
		return p
	}
	for c := range p {
		p[c] /= sum
	}
	return p
}

// Best returns the label with the highest score, breaking ties by
// label order for determinism, and its score. The zero prediction
// returns ("", 0).
func (p Prediction) Best() (string, float64) {
	best, bestScore := "", math.Inf(-1)
	for _, c := range p.Labels() {
		if s := p[c]; s > bestScore {
			best, bestScore = c, s
		}
	}
	if best == "" {
		return "", 0
	}
	return best, bestScore
}

// Labels returns the labels of p in sorted order.
func (p Prediction) Labels() []string {
	out := make([]string, 0, len(p))
	for c := range p {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Clone returns a copy of p.
func (p Prediction) Clone() Prediction {
	q := make(Prediction, len(p))
	for c, s := range p {
		q[c] = s
	}
	//lint:ignore normalizedpred a clone is exactly as normalized as its input; renormalizing would perturb stored cache entries bit-for-bit
	return q
}

// Uniform returns the uniform prediction over labels.
func Uniform(labels []string) Prediction {
	//lint:ignore hotalloc Prediction is a map by API contract and the result escapes to the caller; Uniform only runs on the untrained fallback path
	p := make(Prediction, len(labels))
	if len(labels) == 0 {
		return p.Normalize() // no-op on the empty prediction
	}
	u := 1 / float64(len(labels))
	for _, c := range labels {
		p[c] = u
	}
	// Uniform scores sum to 1 by construction; renormalizing would
	// divide by a float sum of 1/n terms and perturb the last bits.
	return p
}

// Learner is a base learner (§3.3): it is trained once on labelled
// examples and then predicts a confidence-score distribution for new
// instances. Implementations must return normalized predictions over
// the label set given at training time.
type Learner interface {
	// Name identifies the learner in reports and lesion studies.
	Name() string
	// Train fits the learner to the examples. labels is the complete
	// label set (mediated-schema tags plus OTHER); examples may not
	// cover every label.
	Train(labels []string, examples []Example) error
	// Predict returns the learner's confidence scores for the instance.
	// The returned prediction is read-only: learners may serve the same
	// instance from an internal cache shared between callers, so a
	// caller that needs to mutate scores must Clone first. All in-tree
	// consumers (the stacker, prediction conversion, the match report)
	// only read. The sharedread analyzer enforces this contract on
	// every implementation via the annotation below.
	//
	// lint:shared
	Predict(in Instance) Prediction
}

// Factory creates a fresh, untrained learner. The meta-learner's
// cross-validation trains throwaway copies on training folds, so
// learners are constructed through factories rather than reused.
type Factory func() Learner

// DeriveSeed deterministically derives an independent RNG seed from a
// base seed and a task coordinate (learner index, sample index, split
// index, run index, …). Each coordinate is folded in with a SplitMix64
// finalizer, so adjacent coordinates yield statistically unrelated
// streams. Parallel tasks seeded this way never share rand state, and
// the derived sequence is pinned by a regression test so that
// parallelization cannot silently change published experiment numbers.
func DeriveSeed(base int64, idxs ...int64) int64 {
	x := uint64(base) ^ 0x9e3779b97f4a7c15
	for _, idx := range idxs {
		x = mix64(x + mix64(uint64(idx)+0x9e3779b97f4a7c15))
	}
	return int64(x)
}

// mix64 is the SplitMix64 finalizer (Steele, Lea & Flood 2014).
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// CrossValidate produces CV(L) of §3.1 step 5(a): one prediction per
// example, made by a copy of the learner trained on the other folds.
// When the examples carry two or more distinct Groups (sources), the
// folds are the groups — leave-one-source-out — so learner weights
// measure cross-source generalization. Otherwise the examples are
// shuffled with rng and split into d random parts. The returned slice
// is aligned with the input examples.
//
// The per-fold train/predict rounds are independent and run on a
// bounded worker pool of the given size (parallel.Workers semantics:
// 0 = one per CPU, 1 = serial). Fold assignment happens before the
// fan-out, so the result is identical at every worker count.
func CrossValidate(factory Factory, labels []string, examples []Example, d int, rng *rand.Rand, workers int) ([]Prediction, error) {
	n := len(examples)
	if n == 0 {
		return nil, nil
	}
	if d < 2 {
		return nil, fmt.Errorf("learn: cross-validation needs d >= 2, got %d", d)
	}
	fold := make([]int, n) // example index -> fold
	groupFold := make(map[string]int)
	for _, ex := range examples {
		if ex.Group == "" {
			continue
		}
		if _, ok := groupFold[ex.Group]; !ok {
			groupFold[ex.Group] = len(groupFold)
		}
	}
	if len(groupFold) >= 2 {
		d = len(groupFold)
		for i, ex := range examples {
			fold[i] = groupFold[ex.Group]
		}
		return crossValidateFolds(factory, labels, examples, fold, d, workers)
	}
	if d > n {
		d = n
	}
	perm := rng.Perm(n)
	for i, pi := range perm {
		fold[pi] = i % d
	}
	return crossValidateFolds(factory, labels, examples, fold, d, workers)
}

func crossValidateFolds(factory Factory, labels []string, examples []Example, fold []int, d, workers int) ([]Prediction, error) {
	n := len(examples)
	preds := make([]Prediction, n)
	// Folds are independent: each trains a fresh learner copy and fills
	// a disjoint set of preds slots, so the slice needs no lock.
	err := parallel.ForEach(context.Background(), workers, d, func(_ context.Context, f int) error {
		train := make([]Example, 0, n)
		for i, ex := range examples {
			if fold[i] != f {
				train = append(train, ex)
			}
		}
		l := factory()
		if err := l.Train(labels, train); err != nil {
			return fmt.Errorf("learn: cross-validation fold %d: %w", f, err)
		}
		for i, ex := range examples {
			if fold[i] == f {
				//lint:ignore workerpure fold[i] == f partitions the indices, so each preds slot is written by exactly one task
				preds[i] = l.Predict(ex.Instance)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return preds, nil
}
