package text

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestVocabInternLookup(t *testing.T) {
	v := NewVocab()
	a := v.Intern("alpha")
	b := v.Intern("beta")
	if a == b {
		t.Fatalf("distinct tokens share id %d", a)
	}
	if got := v.Intern("alpha"); got != a {
		t.Errorf("re-Intern(alpha) = %d, want %d", got, a)
	}
	if id, ok := v.Lookup("beta"); !ok || id != b {
		t.Errorf("Lookup(beta) = %d,%v, want %d,true", id, ok, b)
	}
	if _, ok := v.Lookup("gamma"); ok {
		t.Error("Lookup of unseen token reported ok")
	}
	if v.Token(a) != "alpha" || v.Token(b) != "beta" {
		t.Errorf("Token round-trip broken: %q %q", v.Token(a), v.Token(b))
	}
	if v.Len() != 2 {
		t.Errorf("Len = %d, want 2", v.Len())
	}
}

func TestVocabFreeze(t *testing.T) {
	v := NewVocab()
	v.Intern("a")
	v.Freeze()
	if !v.Frozen() {
		t.Fatal("Frozen() = false after Freeze")
	}
	if got := v.Intern("a"); got != 0 {
		t.Errorf("Intern of known token after Freeze = %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Intern of unseen token after Freeze did not panic")
		}
	}()
	v.Intern("b")
}

// TestVocabIDsAreDense checks that ids are assigned 0,1,2,... in first-
// Intern order — the invariant every id-indexed side table relies on.
func TestVocabIDsAreDense(t *testing.T) {
	v := NewVocab()
	for i := 0; i < 100; i++ {
		tok := fmt.Sprintf("tok%03d", i)
		if id := v.Intern(tok); int(id) != i {
			t.Fatalf("Intern(%q) = %d, want %d", tok, id, i)
		}
	}
}

func FuzzVocabRoundTrip(f *testing.F) {
	f.Add("alpha beta alpha", "beta")
	f.Add("", "x")
	f.Add("a b c d e f g", "d")
	f.Fuzz(func(t *testing.T, corpus, probe string) {
		v := NewVocab()
		toks := strings.Fields(corpus)
		ids := make([]ID, len(toks))
		for i, tok := range toks {
			ids[i] = v.Intern(tok)
		}
		// Round-trip: every interned token maps back to itself, and
		// re-interning is stable.
		for i, tok := range toks {
			if v.Token(ids[i]) != tok {
				t.Fatalf("Token(%d) = %q, want %q", ids[i], v.Token(ids[i]), tok)
			}
			if id, ok := v.Lookup(tok); !ok || id != ids[i] {
				t.Fatalf("Lookup(%q) = %d,%v, want %d,true", tok, id, ok, ids[i])
			}
			if v.Intern(tok) != ids[i] {
				t.Fatalf("re-Intern(%q) changed id", tok)
			}
		}
		if id, ok := v.Lookup(probe); ok && v.Token(id) != probe {
			t.Fatalf("Lookup(%q) → Token mismatch: %q", probe, v.Token(id))
		}
		if v.Len() > len(toks) {
			t.Fatalf("Len = %d exceeds interned token count %d", v.Len(), len(toks))
		}
	})
}

// refDot is the retired map-based dot product, kept as the test oracle:
// expand both vectors to token→weight maps and sum the products with
// the multiplication order made deterministic by sorting.
func refDot(v *Vocab, a, b Vector) float64 {
	expand := func(x Vector) map[string]float64 {
		m := make(map[string]float64, x.Len())
		for _, t := range x.Terms {
			m[v.Token(t.ID)] = t.W
		}
		for _, t := range x.OOV {
			m[t.Token] = t.W
		}
		return m
	}
	am, bm := expand(a), expand(b)
	var toks []string
	for t := range am {
		toks = append(toks, t)
	}
	s := 0.0
	for _, t := range sortedStrings(toks) {
		if bw, ok := bm[t]; ok {
			s += am[t] * bw
		}
	}
	return s
}

func sortedStrings(s []string) []string {
	out := append([]string(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestDotMatchesMapReference checks the merge-join Dot against the
// map-based reference on random bags: same corpus, random mixtures of
// in-vocabulary and out-of-vocabulary tokens.
func TestDotMatchesMapReference(t *testing.T) {
	c := corpusOf(
		[]string{"house", "great", "location", "yard"},
		[]string{"phone", "agent", "206"},
		[]string{"great", "view", "lake"},
	)
	vocabToks := []string{"house", "great", "location", "yard", "phone", "agent", "206", "view", "lake"}
	oovToks := []string{"zebra", "quux", "unseen", "42"}
	rng := rand.New(rand.NewSource(7))
	randBag := func() Bag {
		b := Bag{}
		for i, n := 0, rng.Intn(8); i < n; i++ {
			b[vocabToks[rng.Intn(len(vocabToks))]] += 1 + rng.Intn(3)
		}
		for i, n := 0, rng.Intn(3); i < n; i++ {
			b[oovToks[rng.Intn(len(oovToks))]] += 1 + rng.Intn(2)
		}
		return b
	}
	for trial := 0; trial < 500; trial++ {
		va := c.Vectorize(randBag())
		vb := c.Vectorize(randBag())
		got := va.Dot(vb)
		want := refDot(c.Vocab(), va, vb)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: merge-join Dot = %.17g, map reference = %.17g", trial, got, want)
		}
		if sym := vb.Dot(va); sym != got {
			t.Fatalf("trial %d: Dot not symmetric: %.17g vs %.17g", trial, got, sym)
		}
	}
}

// TestSparseBagMatchesBag checks that projecting a bag through a frozen
// vocabulary conserves counts: interned terms keep their counts in
// ascending-id order, and the out-of-vocabulary remainder is the exact
// count difference.
func TestSparseBagMatchesBag(t *testing.T) {
	v := NewVocab()
	for _, tok := range []string{"a", "b", "c", "d"} {
		v.Intern(tok)
	}
	v.Freeze()
	f := func(counts []uint8) bool {
		toks := []string{"a", "b", "c", "d", "x", "y"}
		b := Bag{}
		for i, n := range counts {
			if n%4 != 0 {
				b[toks[i%len(toks)]] += int(n%4) + 1
			}
		}
		sb := v.SparseBag(b)
		inVocab := 0
		for i, tc := range sb.Terms {
			if i > 0 && sb.Terms[i-1].ID >= tc.ID {
				return false // not strictly ascending
			}
			if int(tc.N) != b[v.Token(tc.ID)] {
				return false
			}
			inVocab += int(tc.N)
		}
		return inVocab+sb.OOV == b.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
