package text

import (
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"unicode"
)

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"listed-price", []string{"listed", "price"}},
		{"$70,000", []string{"70", "000"}},
		{"(206) 523 4719", []string{"206", "523", "4719"}},
		{"AGENT-PHONE", []string{"agent", "phone"}},
		{"Miami, FL", []string{"miami", "fl"}},
		{"listedPrice", []string{"listed", "price"}},
		{"num_bedrooms2", []string{"num", "bedrooms", "2"}},
		{"CSE142", []string{"cse", "142"}},
		{"", nil},
		{"   ", nil},
		{"---", nil},
		{"a", []string{"a"}},
		{"Great location!", []string{"great", "location"}},
		{"3.5 baths", []string{"3", "5", "baths"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeLowercases(t *testing.T) {
	for _, tok := range Tokenize("HOUSE Listing XML") {
		for _, r := range tok {
			if unicode.IsUpper(r) {
				t.Errorf("token %q contains upper-case rune", tok)
			}
		}
	}
}

func TestTokenizeProperty(t *testing.T) {
	// Every token consists solely of lower-case letters or solely of digits.
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if len(tok) == 0 {
				return false
			}
			letters, digits := 0, 0
			for _, r := range tok {
				if unicode.IsDigit(r) {
					digits++
				} else if unicode.IsLetter(r) {
					letters++
				} else {
					return false
				}
			}
			if letters > 0 && digits > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizeAndStem(t *testing.T) {
	got := TokenizeAndStem("running houses 12345")
	want := []string{"run", "hous", "12345"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TokenizeAndStem = %v, want %v", got, want)
	}
}

func TestTokenizeStemStop(t *testing.T) {
	got := TokenizeStemStop("the house is close to the river")
	want := []string{"hous", "close", "river"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TokenizeStemStop = %v, want %v", got, want)
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "a"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"house", "price", ""} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
}

// TestMemoStemMatchesStem checks the bounded memo is transparent: for
// any word — including words hammered repeatedly and concurrently —
// memoStem returns exactly what a direct Stem call does.
func TestMemoStemMatchesStem(t *testing.T) {
	words := []string{
		"houses", "beautiful", "running", "agent", "caresses", "ponies",
		"relational", "conditional", "vietnamization", "x", "", "206",
	}
	for _, w := range words {
		if got, want := memoStem(w), Stem(w); got != want {
			t.Errorf("memoStem(%q) = %q, want %q", w, got, want)
		}
		// Second call is served from the memo; must be identical.
		if got, want := memoStem(w), Stem(w); got != want {
			t.Errorf("memoized memoStem(%q) = %q, want %q", w, got, want)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				w := words[i%len(words)]
				if got, want := memoStem(w), Stem(w); got != want {
					t.Errorf("concurrent memoStem(%q) = %q, want %q", w, got, want)
				}
			}
		}()
	}
	wg.Wait()
}

func TestMemoStemProperty(t *testing.T) {
	f := func(w string) bool { return memoStem(w) == Stem(w) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
