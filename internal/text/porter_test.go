package text

import "testing"

// TestStemKnownPairs checks the stemmer against the classic examples
// from Porter's paper and a set of domain words.
func TestStemKnownPairs(t *testing.T) {
	cases := map[string]string{
		// Examples from Porter (1980).
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
		// Domain words the learners see.
		"houses":       "hous",
		"bedrooms":     "bedroom",
		"listings":     "list",
		"descriptions": "descript",
		"beautiful":    "beauti",
		"location":     "locat",
		"spacious":     "spaciou",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "is", "by"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemEquivalenceClasses(t *testing.T) {
	// Morphological variants of the same word must share a stem: this is
	// the property the learners rely on.
	classes := [][]string{
		{"house", "houses"},
		{"listing", "listings", "listed"},
		{"description", "descriptions"},
		{"locate", "location", "locations", "located"},
		{"agent", "agents"},
		{"course", "courses"},
		{"credit", "credits"},
		{"connect", "connection", "connected", "connecting"},
	}
	for _, class := range classes {
		first := Stem(class[0])
		for _, w := range class[1:] {
			if got := Stem(w); got != first {
				t.Errorf("Stem(%q) = %q, want %q (stem of %q)",
					w, got, first, class[0])
			}
		}
	}
}
