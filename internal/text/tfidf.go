package text

import (
	"math"
	"sort"
)

// Bag is a multiset of tokens represented as token -> count.
type Bag map[string]int

// NewBag builds a Bag from a token slice.
func NewBag(tokens []string) Bag {
	b := make(Bag, len(tokens))
	for _, t := range tokens {
		b[t]++
	}
	return b
}

// Add merges the tokens of other into b.
func (b Bag) Add(other Bag) {
	for t, n := range other {
		b[t] += n
	}
}

// Size returns the total number of token occurrences in b.
func (b Bag) Size() int {
	n := 0
	for _, c := range b {
		n += c
	}
	return n
}

// Tokens returns the distinct tokens of b in sorted order.
func (b Bag) Tokens() []string {
	out := make([]string, 0, len(b))
	for t := range b {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Vector is a sparse TF/IDF-weighted document vector, normalized to
// unit length so that the dot product of two vectors is their cosine
// similarity.
type Vector map[string]float64

// Dot returns the dot product (cosine similarity for unit vectors) of v
// and u. Terms are summed in sorted-value order so the result does not
// depend on map iteration order (float addition is not associative).
func (v Vector) Dot(u Vector) float64 {
	if len(u) < len(v) {
		v, u = u, v
	}
	terms := make([]float64, 0, len(v))
	for t, w := range v {
		if x := w * u[t]; x != 0 {
			terms = append(terms, x)
		}
	}
	sort.Float64s(terms)
	s := 0.0
	for _, x := range terms {
		s += x
	}
	return s
}

// Corpus is a TF/IDF vector space over a set of documents. Documents
// are added during indexing; after Freeze, Vectorize maps any token bag
// to a unit-length TF/IDF vector using the corpus document frequencies.
type Corpus struct {
	docFreq map[string]int
	numDocs int
	frozen  bool
	idf     map[string]float64
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{docFreq: make(map[string]int)}
}

// AddDocument records the document-frequency contribution of the bag.
// It panics if the corpus has been frozen.
func (c *Corpus) AddDocument(b Bag) {
	if c.frozen {
		panic("text: AddDocument after Freeze")
	}
	c.numDocs++
	for t := range b {
		c.docFreq[t]++
	}
}

// NumDocs returns the number of indexed documents.
func (c *Corpus) NumDocs() int { return c.numDocs }

// Freeze finalizes the IDF table. Further AddDocument calls panic.
func (c *Corpus) Freeze() {
	if c.frozen {
		return
	}
	c.frozen = true
	c.idf = make(map[string]float64, len(c.docFreq))
	n := float64(c.numDocs)
	for t, df := range c.docFreq {
		// Smoothed IDF; strictly positive so indexed tokens are never
		// silently dropped.
		c.idf[t] = math.Log(1 + n/float64(df))
	}
}

// IDF returns the inverse document frequency of token t. Unknown tokens
// get a default IDF as if they appeared in a single document.
func (c *Corpus) IDF(t string) float64 {
	if !c.frozen {
		c.Freeze()
	}
	if w, ok := c.idf[t]; ok {
		return w
	}
	return math.Log(1 + float64(c.numDocs))
}

// Vectorize maps a token bag to a unit-length TF/IDF vector. TF is
// log-damped (1+ln(count)), the standard Whirl/IR weighting. The zero
// bag maps to the zero vector.
func (c *Corpus) Vectorize(b Bag) Vector {
	if !c.frozen {
		c.Freeze()
	}
	v := make(Vector, len(b))
	sq := make([]float64, 0, len(b))
	for t, cnt := range b {
		w := (1 + math.Log(float64(cnt))) * c.IDF(t)
		v[t] = w
		sq = append(sq, w*w)
	}
	// Sum the squared weights in sorted order so the norm (and thus
	// every vector component) is independent of map iteration order.
	sort.Float64s(sq)
	norm := 0.0
	for _, s := range sq {
		norm += s
	}
	if norm == 0 {
		return v
	}
	norm = math.Sqrt(norm)
	for t := range v {
		v[t] /= norm
	}
	return v
}
