package text

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
)

// Bag is a multiset of tokens represented as token -> count. It is the
// construction-side representation: learners build bags incrementally
// while walking instances, then project them onto an interned
// vocabulary (Corpus.Vectorize, Vocab.SparseBag) before any hot-path
// arithmetic. Nothing on a predict path iterates a Bag's map.
type Bag map[string]int

// NewBag builds a Bag from a token slice.
func NewBag(tokens []string) Bag {
	//lint:ignore hotalloc Bag is the construction-side map representation; predict paths vectorize each distinct text once (whirl's cache absorbs repeats) and never iterate a Bag in scoring
	b := make(Bag, len(tokens))
	for _, t := range tokens {
		b[t]++
	}
	return b
}

// Add merges the tokens of other into b.
func (b Bag) Add(other Bag) {
	for t, n := range other {
		b[t] += n
	}
}

// Size returns the total number of token occurrences in b.
func (b Bag) Size() int {
	n := 0
	for _, c := range b {
		n += c
	}
	return n
}

// Tokens returns the distinct tokens of b in sorted order.
func (b Bag) Tokens() []string {
	out := make([]string, 0, len(b))
	for t := range b {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Term is one component of a sparse Vector: an interned token id and
// its weight.
type Term struct {
	ID ID
	W  float64
}

// OOVTerm is a weighted token outside the corpus vocabulary. Such
// tokens cannot carry a dense id (the vocabulary is frozen at training
// time, and assigning overlay ids at predict time would be
// run-dependent), so they ride alongside the interned terms keyed by
// the token itself.
type OOVTerm struct {
	Token string
	W     float64
}

// Vector is a sparse TF/IDF-weighted document vector over an interned
// vocabulary, normalized to unit length so that the dot product of two
// vectors is their cosine similarity.
//
// Terms is sorted by ascending id and OOV by ascending token — the
// canonical order every consumer iterates in, which is what makes the
// substrate deterministic by construction: float summation happens in
// the same order on every run without any per-call sorting.
//
// Vectors are only comparable when produced by the same Corpus: ids
// from different vocabularies name different tokens.
type Vector struct {
	Terms []Term
	OOV   []OOVTerm
}

// Len returns the number of non-zero components.
func (v Vector) Len() int { return len(v.Terms) + len(v.OOV) }

// Dot returns the dot product (cosine similarity for unit vectors) of
// v and u as a branch-predictable merge-join over the sorted term
// slices, with zero allocations. Both inputs are iterated in canonical
// (ascending id, then ascending OOV token) order, so the float
// summation order — and therefore the exact result — is independent of
// call site and run. Out-of-vocabulary terms match only each other:
// by construction they are exactly the tokens no vocabulary id names.
//
// lint:hot
func (v Vector) Dot(u Vector) float64 {
	s := 0.0
	a, b := v.Terms, u.Terms
	for i, j := 0, 0; i < len(a) && j < len(b); {
		switch {
		case a[i].ID < b[j].ID:
			i++
		case a[i].ID > b[j].ID:
			j++
		default:
			s += a[i].W * b[j].W
			i++
			j++
		}
	}
	x, y := v.OOV, u.OOV
	for i, j := 0, 0; i < len(x) && j < len(y); {
		switch {
		case x[i].Token < y[j].Token:
			i++
		case x[i].Token > y[j].Token:
			j++
		default:
			s += x[i].W * y[j].W
			i++
			j++
		}
	}
	return s
}

// Corpus is a TF/IDF vector space over a set of documents. Documents
// are added during indexing, interning every token into the corpus
// vocabulary; after Freeze, Vectorize maps any token bag to a
// unit-length TF/IDF vector using the corpus document frequencies.
type Corpus struct {
	vocab   *Vocab
	docFreq []int // indexed by token id
	numDocs int
	frozen  bool
	idf     []float64 // indexed by token id
	// oovIDF is the IDF of tokens outside the vocabulary, as if they
	// appeared in a single document.
	oovIDF float64
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{vocab: NewVocab()}
}

// Vocab exposes the corpus vocabulary so consumers can build
// id-indexed side tables (e.g. posting lists) in the same coordinate
// system. Callers must not Intern through it; AddDocument owns
// vocabulary growth.
func (c *Corpus) Vocab() *Vocab { return c.vocab }

// AddDocument records the document-frequency contribution of the bag,
// interning its tokens in sorted order (sorted, not map, order: id
// assignment must be deterministic — see Vocab). It panics if the
// corpus has been frozen.
func (c *Corpus) AddDocument(b Bag) {
	if c.frozen {
		panic("text: AddDocument after Freeze")
	}
	c.numDocs++
	for _, t := range b.Tokens() {
		id := c.vocab.Intern(t)
		if int(id) >= len(c.docFreq) {
			c.docFreq = append(c.docFreq, 0)
		}
		c.docFreq[id]++
	}
}

// NumDocs returns the number of indexed documents.
func (c *Corpus) NumDocs() int { return c.numDocs }

// Freeze finalizes the IDF table and freezes the vocabulary. Further
// AddDocument calls panic.
func (c *Corpus) Freeze() {
	if c.frozen {
		return
	}
	c.frozen = true
	c.vocab.Freeze()
	c.idf = make([]float64, len(c.docFreq))
	n := float64(c.numDocs)
	for id, df := range c.docFreq {
		// Smoothed IDF; strictly positive so indexed tokens are never
		// silently dropped.
		c.idf[id] = math.Log(1 + n/float64(df))
	}
	c.oovIDF = math.Log(1 + n)
}

// CorpusState is the serializable view of a frozen Corpus: the interned
// tokens in id order, the per-token document frequencies, and the
// document count. The IDF table is deliberately absent — it is a pure
// function of these fields, and RestoreCorpus recomputes it with the
// same math.Log calls Freeze runs, so a restored corpus vectorizes
// bit-identically to the one that was saved.
type CorpusState struct {
	Tokens  []string
	DocFreq []int64
	NumDocs int64
}

// State snapshots the corpus for serialization. It freezes the corpus
// first: only frozen corpora have a stable coordinate system.
func (c *Corpus) State() CorpusState {
	if !c.frozen {
		c.Freeze()
	}
	df := make([]int64, len(c.docFreq))
	for i, n := range c.docFreq {
		df[i] = int64(n)
	}
	return CorpusState{Tokens: c.vocab.Tokens(), DocFreq: df, NumDocs: int64(c.numDocs)}
}

// RestoreCorpus rebuilds a frozen corpus from a snapshot. Document
// frequencies must align one-to-one with the tokens and be positive:
// every interned token was seen in at least one document, and a zero
// frequency would divide by zero in the IDF computation.
func RestoreCorpus(st CorpusState) (*Corpus, error) {
	if len(st.DocFreq) != len(st.Tokens) {
		return nil, fmt.Errorf("text: %d document frequencies for %d tokens", len(st.DocFreq), len(st.Tokens))
	}
	if st.NumDocs < 0 {
		return nil, fmt.Errorf("text: negative document count %d", st.NumDocs)
	}
	vocab, err := RestoreVocab(st.Tokens)
	if err != nil {
		return nil, err
	}
	c := &Corpus{vocab: vocab, numDocs: int(st.NumDocs)}
	c.docFreq = make([]int, len(st.DocFreq))
	for i, n := range st.DocFreq {
		if n <= 0 || n > st.NumDocs {
			return nil, fmt.Errorf("text: document frequency %d of token %q outside [1, %d]", n, st.Tokens[i], st.NumDocs)
		}
		c.docFreq[i] = int(n)
	}
	c.Freeze()
	return c, nil
}

// IDF returns the inverse document frequency of token t. Unknown
// tokens get a default IDF as if they appeared in a single document.
func (c *Corpus) IDF(t string) float64 {
	if !c.frozen {
		c.Freeze()
	}
	if id, ok := c.vocab.Lookup(t); ok {
		return c.idf[id]
	}
	return c.oovIDF
}

// Vectorize maps a token bag to a unit-length TF/IDF vector. TF is
// log-damped (1+ln(count)), the standard Whirl/IR weighting. The zero
// bag maps to the zero vector. The squared weights are summed in the
// vector's canonical order, so the norm — and every component — is
// independent of map iteration order.
func (c *Corpus) Vectorize(b Bag) Vector {
	if !c.frozen {
		c.Freeze()
	}
	var v Vector
	if len(b) == 0 {
		return v
	}
	v.Terms = make([]Term, 0, len(b))
	for t, cnt := range b {
		w := 1 + math.Log(float64(cnt))
		if id, ok := c.vocab.Lookup(t); ok {
			v.Terms = append(v.Terms, Term{ID: id, W: w * c.idf[id]})
		} else {
			v.OOV = append(v.OOV, OOVTerm{Token: t, W: w * c.oovIDF})
		}
	}
	slices.SortFunc(v.Terms, func(a, b Term) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	slices.SortFunc(v.OOV, func(a, b OOVTerm) int {
		return strings.Compare(a.Token, b.Token)
	})
	norm := 0.0
	for _, t := range v.Terms {
		norm += t.W * t.W
	}
	for _, t := range v.OOV {
		norm += t.W * t.W
	}
	if norm == 0 {
		return v
	}
	norm = math.Sqrt(norm)
	for i := range v.Terms {
		v.Terms[i].W /= norm
	}
	for i := range v.OOV {
		v.OOV[i].W /= norm
	}
	return v
}
