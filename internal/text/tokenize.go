// Package text provides the text-processing substrate used by every LSD
// learner: tokenization, Porter stemming, stopword filtering, token
// bags, and a TF/IDF vector-space model with cosine similarity.
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lower-cased word and number tokens. A token is
// a maximal run of letters or a maximal run of digits; all other runes
// separate tokens. CamelCase and snake_case identifiers, tag names such
// as "listed-price", and values such as "$70,000" are all split into
// their constituent words and numbers, mirroring the trivial cleaning
// the paper applies (e.g. "$70000" becomes "$" and "70000"; we drop the
// bare symbol).
func Tokenize(s string) []string {
	var tokens []string
	var cur strings.Builder
	var curClass int // 0 none, 1 letter, 2 digit

	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, strings.ToLower(cur.String()))
			cur.Reset()
		}
		curClass = 0
	}

	prevLower := false
	for _, r := range s {
		switch {
		case unicode.IsLetter(r):
			// Split camelCase boundaries: "listedPrice" -> listed, price.
			if curClass == 2 || (curClass == 1 && prevLower && unicode.IsUpper(r)) {
				flush()
			}
			cur.WriteRune(r)
			curClass = 1
			prevLower = unicode.IsLower(r)
		case unicode.IsDigit(r):
			if curClass == 1 {
				flush()
			}
			cur.WriteRune(r)
			curClass = 2
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// TokenizeAndStem tokenizes s and Porter-stems each non-numeric token.
// Numeric tokens are kept verbatim.
func TokenizeAndStem(s string) []string {
	tokens := Tokenize(s)
	for i, t := range tokens {
		if !isNumeric(t) {
			tokens[i] = Stem(t)
		}
	}
	return tokens
}

// TokenizeStemStop tokenizes s, removes stopwords, and stems the rest.
func TokenizeStemStop(s string) []string {
	tokens := Tokenize(s)
	out := tokens[:0]
	for _, t := range tokens {
		if IsStopword(t) {
			continue
		}
		if !isNumeric(t) {
			t = Stem(t)
		}
		out = append(out, t)
	}
	return out
}

func isNumeric(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return len(s) > 0
}
