// Package text provides the text-processing substrate used by every LSD
// learner: tokenization, Porter stemming, stopword filtering, token
// bags, and a TF/IDF vector-space model with cosine similarity.
package text

import (
	"strings"
	"sync"
	"sync/atomic"
	"unicode"
)

// Tokenize splits s into lower-cased word and number tokens. A token is
// a maximal run of letters or a maximal run of digits; all other runes
// separate tokens. CamelCase and snake_case identifiers, tag names such
// as "listed-price", and values such as "$70,000" are all split into
// their constituent words and numbers, mirroring the trivial cleaning
// the paper applies (e.g. "$70000" becomes "$" and "70000"; we drop the
// bare symbol).
func Tokenize(s string) []string {
	// Tokens are substrings of s, so each one is sliced out of the input
	// rather than rebuilt rune by rune; only tokens that contain an
	// upper-case letter pay for a ToLower copy. This is the single
	// hottest allocation site in the whole pipeline — every learner
	// tokenizes every instance — so the zero-copy common case matters.
	if s == "" {
		return nil
	}
	// Pre-size for ~4-byte tokens so the slice grows at most once even
	// on token-dense input; append doublings from a nil slice were a
	// measurable share of match-phase allocations.
	tokens := make([]string, 0, len(s)/4+1)
	start := -1   // byte offset where the current token begins, -1 if none
	curClass := 0 // 0 none, 1 letter, 2 digit
	hasUpper := false
	prevLower := false

	flush := func(end int) {
		if start >= 0 {
			tok := s[start:end]
			if hasUpper {
				tok = strings.ToLower(tok)
			}
			tokens = append(tokens, tok)
		}
		start = -1
		hasUpper = false
		curClass = 0
	}

	for i, r := range s {
		switch {
		case unicode.IsLetter(r):
			// Split camelCase boundaries: "listedPrice" -> listed, price.
			if curClass == 2 || (curClass == 1 && prevLower && unicode.IsUpper(r)) {
				flush(i)
			}
			if start < 0 {
				start = i
			}
			// Any rune ToLower would change forces the copy; IsUpper alone
			// would miss title-case runes that still lowercase.
			if unicode.ToLower(r) != r {
				hasUpper = true
			}
			curClass = 1
			prevLower = unicode.IsLower(r)
		case unicode.IsDigit(r):
			if curClass == 1 {
				flush(i)
			}
			if start < 0 {
				start = i
			}
			curClass = 2
		default:
			flush(i)
		}
	}
	flush(len(s))
	if len(tokens) == 0 {
		return nil
	}
	return tokens
}

// maxStemMemo bounds the stem memo. Natural-language corpora draw
// from a few thousand distinct words, so the bound exists only to cap
// memory on adversarial input (e.g. fuzzing); once full, unseen words
// are stemmed directly without caching.
const maxStemMemo = 1 << 16

// stemMemo caches word → Porter stem across the whole process: the
// matching phase re-derives the same few hundred stems millions of
// times per run, and the stemmer walks its input byte by byte. Stem is
// a pure function, so the cache never affects results — a lost or
// skipped insert only costs a recomputation — and sharing it between
// concurrent predict workers is safe.
var stemMemo sync.Map // string -> string
var stemMemoLen atomic.Int64

// memoStem returns Stem(word), consulting the bounded memo.
func memoStem(word string) string {
	if s, ok := stemMemo.Load(word); ok {
		return s.(string)
	}
	s := Stem(word)
	if stemMemoLen.Load() < maxStemMemo {
		if _, loaded := stemMemo.LoadOrStore(word, s); !loaded {
			stemMemoLen.Add(1)
		}
	}
	return s
}

// TokenizeAndStem tokenizes s and Porter-stems each non-numeric token.
// Numeric tokens are kept verbatim.
func TokenizeAndStem(s string) []string {
	tokens := Tokenize(s)
	for i, t := range tokens {
		if !isNumeric(t) {
			tokens[i] = memoStem(t)
		}
	}
	return tokens
}

// TokenizeStemStop tokenizes s, removes stopwords, and stems the rest.
func TokenizeStemStop(s string) []string {
	tokens := Tokenize(s)
	out := tokens[:0]
	for _, t := range tokens {
		if IsStopword(t) {
			continue
		}
		if !isNumeric(t) {
			t = memoStem(t)
		}
		out = append(out, t)
	}
	return out
}

func isNumeric(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return len(s) > 0
}
