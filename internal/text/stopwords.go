package text

// stopwords is a compact English stopword list appropriate for the
// short, noisy strings that appear in schema tags and data listings.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true,
	"at": true, "be": true, "but": true, "by": true, "for": true,
	"from": true, "has": true, "have": true, "he": true, "her": true,
	"his": true, "if": true, "in": true, "into": true, "is": true,
	"it": true, "its": true, "of": true, "on": true, "or": true,
	"our": true, "she": true, "so": true, "that": true, "the": true,
	"their": true, "them": true, "then": true, "there": true,
	"these": true, "they": true, "this": true, "to": true, "was": true,
	"we": true, "were": true, "will": true, "with": true, "you": true,
	"your": true,
}

// IsStopword reports whether the lower-cased token t is an English
// stopword.
func IsStopword(t string) bool { return stopwords[t] }
