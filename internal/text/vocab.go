package text

import (
	"fmt"
	"slices"
)

// ID is a dense token identifier assigned by a Vocab. Interned ids
// index directly into flat arrays (IDF tables, per-label log-probability
// tables, posting lists), replacing the string-keyed maps that used to
// sit on every predict-path inner loop.
type ID uint32

// Vocab interns tokens to dense uint32 ids. A vocabulary is built once
// at training time and then frozen; the ids it assigned become the
// coordinate system of every sparse vector and probability table
// derived from that training run.
//
// Determinism: ids are assigned in first-Intern order, so callers must
// intern tokens in a deterministic order (sorted bag order, or example
// stream order) — never by ranging over a map. Every weight-summation
// loop downstream runs in ascending-id order, so a run-dependent id
// assignment would reorder float additions and break the pipeline's
// bit-identical-output guarantee.
//
// A Vocab is not safe for concurrent mutation. Freeze it before
// sharing it with concurrent readers; Lookup and Token on a frozen
// vocabulary are safe from any number of goroutines.
type Vocab struct {
	ids    map[string]ID
	tokens []string
	frozen bool
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{ids: make(map[string]ID)}
}

// Len returns the number of interned tokens.
func (v *Vocab) Len() int { return len(v.tokens) }

// Intern returns the id of tok, assigning the next dense id if tok has
// not been seen. It panics on a frozen vocabulary.
func (v *Vocab) Intern(tok string) ID {
	if id, ok := v.ids[tok]; ok {
		return id
	}
	if v.frozen {
		panic("text: Intern after Freeze")
	}
	id := ID(len(v.tokens))
	v.ids[tok] = id
	v.tokens = append(v.tokens, tok)
	return id
}

// Lookup returns the id of tok and whether it is interned.
func (v *Vocab) Lookup(tok string) (ID, bool) {
	id, ok := v.ids[tok]
	return id, ok
}

// Token returns the token with the given id. It panics if id was never
// assigned.
func (v *Vocab) Token(id ID) string { return v.tokens[id] }

// Tokens returns a copy of the interned tokens in id order. Together
// with RestoreVocab it round-trips a vocabulary through a model
// artifact: the slice index of each token is its id.
func (v *Vocab) Tokens() []string {
	return append([]string(nil), v.tokens...)
}

// RestoreVocab rebuilds a frozen vocabulary from a token list in id
// order, as produced by Tokens. Duplicate tokens are an error: they
// would silently alias two ids and corrupt every table indexed by the
// vocabulary.
func RestoreVocab(tokens []string) (*Vocab, error) {
	v := &Vocab{
		ids:    make(map[string]ID, len(tokens)),
		tokens: append([]string(nil), tokens...),
	}
	for i, t := range v.tokens {
		if _, dup := v.ids[t]; dup {
			return nil, fmt.Errorf("text: duplicate token %q in vocabulary", t)
		}
		v.ids[t] = ID(i)
	}
	v.frozen = true
	return v, nil
}

// Freeze marks the vocabulary immutable: further Intern calls of
// unseen tokens panic, and concurrent Lookup/Token become safe.
func (v *Vocab) Freeze() { v.frozen = true }

// Frozen reports whether Freeze has been called.
func (v *Vocab) Frozen() bool { return v.frozen }

// IDCount is one component of a SparseBag: an interned token and its
// occurrence count.
type IDCount struct {
	ID ID
	N  int32
}

// SparseBag is a Bag projected onto a vocabulary: the in-vocabulary
// tokens as (id, count) pairs sorted by ascending id, plus the total
// occurrence count of out-of-vocabulary tokens. It is the predict-path
// representation of a token bag — iterating it touches a contiguous
// slice in canonical order instead of ranging over a map.
type SparseBag struct {
	Terms []IDCount
	// OOV is the total number of token occurrences outside the
	// vocabulary. Consumers that treat every unseen token identically
	// (Naive Bayes' unseen-token constant) need only the total.
	OOV int
}

// SparseBag projects b onto the vocabulary. Unknown tokens are counted
// into OOV, not interned, so a frozen vocabulary is safe to project
// onto concurrently.
func (v *Vocab) SparseBag(b Bag) SparseBag {
	sb := SparseBag{}
	if len(b) == 0 {
		return sb
	}
	sb.Terms = make([]IDCount, 0, len(b))
	for t, n := range b {
		if id, ok := v.ids[t]; ok {
			sb.Terms = append(sb.Terms, IDCount{ID: id, N: int32(n)})
		} else {
			sb.OOV += n
		}
	}
	slices.SortFunc(sb.Terms, func(a, b IDCount) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	return sb
}
