package text

// Stem reduces an English word to its Porter stem. This is a complete
// implementation of the original Porter (1980) algorithm, steps 1a-5b.
// Input is assumed lower case; words shorter than three letters are
// returned unchanged, as in the original paper.
func Stem(word string) string {
	if len(word) < 3 {
		return word
	}
	w := stemWord{b: []byte(word)}
	w.step1a()
	w.step1b()
	w.step1c()
	w.step2()
	w.step3()
	w.step4()
	w.step5a()
	w.step5b()
	return string(w.b)
}

type stemWord struct {
	b []byte
}

// isConsonant reports whether the letter at index i is a consonant in
// Porter's sense: not a vowel, and 'y' counts as a consonant only when
// preceded by a vowel (or at position 0).
func (w *stemWord) isConsonant(i int) bool {
	switch w.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !w.isConsonant(i - 1)
	}
	return true
}

// measure computes m, the number of VC sequences in the stem b[:end].
func (w *stemWord) measure(end int) int {
	m := 0
	i := 0
	// Skip initial consonants.
	for i < end && w.isConsonant(i) {
		i++
	}
	for {
		// Skip vowels.
		for i < end && !w.isConsonant(i) {
			i++
		}
		if i >= end {
			return m
		}
		m++
		// Skip consonants.
		for i < end && w.isConsonant(i) {
			i++
		}
		if i >= end {
			return m
		}
	}
}

// hasVowel reports whether the stem b[:end] contains a vowel.
func (w *stemWord) hasVowel(end int) bool {
	for i := 0; i < end; i++ {
		if !w.isConsonant(i) {
			return true
		}
	}
	return false
}

// doubleConsonant reports whether b[:end] ends with a double consonant.
func (w *stemWord) doubleConsonant(end int) bool {
	if end < 2 {
		return false
	}
	return w.b[end-1] == w.b[end-2] && w.isConsonant(end-1)
}

// cvc reports whether b[:end] ends consonant-vowel-consonant where the
// final consonant is not w, x, or y.
func (w *stemWord) cvc(end int) bool {
	if end < 3 {
		return false
	}
	if !w.isConsonant(end-1) || w.isConsonant(end-2) || !w.isConsonant(end-3) {
		return false
	}
	switch w.b[end-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether the word ends with s and returns the stem length.
func (w *stemWord) hasSuffix(s string) (int, bool) {
	if len(w.b) < len(s) {
		return 0, false
	}
	stem := len(w.b) - len(s)
	if string(w.b[stem:]) != s {
		return 0, false
	}
	return stem, true
}

// replace replaces the suffix of length sufLen with repl.
func (w *stemWord) replace(sufLen int, repl string) {
	w.b = append(w.b[:len(w.b)-sufLen], repl...)
}

func (w *stemWord) step1a() {
	switch {
	case w.ends("sses"):
		w.replace(2, "")
	case w.ends("ies"):
		w.replace(2, "")
	case w.ends("ss"):
		// Keep.
	case w.ends("s"):
		w.replace(1, "")
	}
}

func (w *stemWord) ends(s string) bool {
	_, ok := w.hasSuffix(s)
	return ok
}

func (w *stemWord) step1b() {
	if stem, ok := w.hasSuffix("eed"); ok {
		if w.measure(stem) > 0 {
			w.replace(1, "")
		}
		return
	}
	applied := false
	if stem, ok := w.hasSuffix("ed"); ok && w.hasVowel(stem) {
		w.b = w.b[:stem]
		applied = true
	} else if stem, ok := w.hasSuffix("ing"); ok && w.hasVowel(stem) {
		w.b = w.b[:stem]
		applied = true
	}
	if !applied {
		return
	}
	switch {
	case w.ends("at"), w.ends("bl"), w.ends("iz"):
		w.b = append(w.b, 'e')
	case w.doubleConsonant(len(w.b)):
		last := w.b[len(w.b)-1]
		if last != 'l' && last != 's' && last != 'z' {
			w.b = w.b[:len(w.b)-1]
		}
	case w.measure(len(w.b)) == 1 && w.cvc(len(w.b)):
		w.b = append(w.b, 'e')
	}
}

func (w *stemWord) step1c() {
	if stem, ok := w.hasSuffix("y"); ok && w.hasVowel(stem) {
		w.b[len(w.b)-1] = 'i'
	}
}

// suffixRule maps a suffix to its replacement, applied when the measure
// of the remaining stem exceeds a threshold.
type suffixRule struct {
	suffix, repl string
}

var step2Rules = []suffixRule{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
	{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
	{"alli", "al"}, {"entli", "ent"}, {"eli", "e"},
	{"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"},
	{"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
	{"iviti", "ive"}, {"biliti", "ble"},
}

var step3Rules = []suffixRule{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"},
	{"iciti", "ic"}, {"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func (w *stemWord) applyRules(rules []suffixRule, minMeasure int) {
	for _, r := range rules {
		if stem, ok := w.hasSuffix(r.suffix); ok {
			if w.measure(stem) > minMeasure {
				w.replace(len(r.suffix), r.repl)
			}
			return
		}
	}
}

func (w *stemWord) step2() { w.applyRules(step2Rules, 0) }
func (w *stemWord) step3() { w.applyRules(step3Rules, 0) }

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant",
	"ement", "ment", "ent", "ion", "ou", "ism", "ate", "iti",
	"ous", "ive", "ize",
}

func (w *stemWord) step4() {
	for _, s := range step4Suffixes {
		stem, ok := w.hasSuffix(s)
		if !ok {
			continue
		}
		if s == "ion" {
			// "ion" is removed only after s or t.
			if stem == 0 || (w.b[stem-1] != 's' && w.b[stem-1] != 't') {
				continue
			}
		}
		if w.measure(stem) > 1 {
			w.b = w.b[:stem]
		}
		return
	}
}

func (w *stemWord) step5a() {
	if stem, ok := w.hasSuffix("e"); ok {
		m := w.measure(stem)
		if m > 1 || (m == 1 && !w.cvc(stem)) {
			w.b = w.b[:stem]
		}
	}
}

func (w *stemWord) step5b() {
	n := len(w.b)
	if n > 1 && w.b[n-1] == 'l' && w.doubleConsonant(n) && w.measure(n) > 1 {
		w.b = w.b[:n-1]
	}
}
