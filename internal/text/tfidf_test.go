package text

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBag(t *testing.T) {
	b := NewBag([]string{"a", "b", "a"})
	if b["a"] != 2 || b["b"] != 1 {
		t.Fatalf("NewBag counts wrong: %v", b)
	}
	if b.Size() != 3 {
		t.Errorf("Size = %d, want 3", b.Size())
	}
	b.Add(NewBag([]string{"b", "c"}))
	if b["b"] != 2 || b["c"] != 1 {
		t.Errorf("Add merged wrong: %v", b)
	}
	got := b.Tokens()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokens = %v, want %v", got, want)
		}
	}
}

func corpusOf(docs ...[]string) *Corpus {
	c := NewCorpus()
	for _, d := range docs {
		c.AddDocument(NewBag(d))
	}
	c.Freeze()
	return c
}

func TestVectorizeUnitLength(t *testing.T) {
	c := corpusOf(
		[]string{"great", "location", "house"},
		[]string{"great", "yard"},
		[]string{"phone", "206"},
	)
	v := c.Vectorize(NewBag([]string{"great", "house", "house"}))
	norm := 0.0
	for _, term := range v.Terms {
		norm += term.W * term.W
	}
	for _, term := range v.OOV {
		norm += term.W * term.W
	}
	if math.Abs(norm-1) > 1e-12 {
		t.Errorf("vector norm^2 = %g, want 1", norm)
	}
}

func TestVectorizeZeroBag(t *testing.T) {
	c := corpusOf([]string{"a"})
	v := c.Vectorize(Bag{})
	if v.Len() != 0 {
		t.Errorf("zero bag vector = %v, want empty", v)
	}
}

func TestIDFOrdering(t *testing.T) {
	// "common" appears in all 3 docs, "rare" in 1: IDF(rare) > IDF(common).
	c := corpusOf(
		[]string{"common", "rare"},
		[]string{"common"},
		[]string{"common"},
	)
	if c.IDF("rare") <= c.IDF("common") {
		t.Errorf("IDF(rare)=%g should exceed IDF(common)=%g",
			c.IDF("rare"), c.IDF("common"))
	}
	if c.IDF("unseen") <= 0 {
		t.Errorf("IDF(unseen)=%g, want > 0", c.IDF("unseen"))
	}
}

func TestCosineIdenticalDocs(t *testing.T) {
	c := corpusOf([]string{"a", "b"}, []string{"c"})
	v1 := c.Vectorize(NewBag([]string{"a", "b"}))
	v2 := c.Vectorize(NewBag([]string{"a", "b"}))
	if sim := v1.Dot(v2); math.Abs(sim-1) > 1e-12 {
		t.Errorf("identical docs cosine = %g, want 1", sim)
	}
}

func TestCosineDisjointDocs(t *testing.T) {
	c := corpusOf([]string{"a"}, []string{"b"})
	v1 := c.Vectorize(NewBag([]string{"a"}))
	v2 := c.Vectorize(NewBag([]string{"b"}))
	if sim := v1.Dot(v2); sim != 0 {
		t.Errorf("disjoint docs cosine = %g, want 0", sim)
	}
}

func TestCosineRange(t *testing.T) {
	// Property: cosine of any two vectorized bags lies in [0, 1].
	c := corpusOf(
		[]string{"a", "b", "c"}, []string{"b", "c", "d"}, []string{"e"},
	)
	f := func(xs, ys []uint8) bool {
		toks := []string{"a", "b", "c", "d", "e", "f"}
		mk := func(zs []uint8) Bag {
			b := Bag{}
			for _, z := range zs {
				b[toks[int(z)%len(toks)]]++
			}
			return b
		}
		sim := c.Vectorize(mk(xs)).Dot(c.Vectorize(mk(ys)))
		return sim >= -1e-12 && sim <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddDocumentAfterFreezePanics(t *testing.T) {
	c := corpusOf([]string{"a"})
	defer func() {
		if recover() == nil {
			t.Error("AddDocument after Freeze did not panic")
		}
	}()
	c.AddDocument(NewBag([]string{"b"}))
}
