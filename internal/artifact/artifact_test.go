package artifact

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/learners/contentmatcher"
	"repro/internal/learners/format"
	"repro/internal/learners/naivebayes"
	"repro/internal/learners/namematcher"
	"repro/internal/learners/recognizer"
	"repro/internal/learners/stats"
	"repro/internal/learners/whirl"
	"repro/internal/learners/xmllearner"
	"repro/internal/meta"
)

var update = flag.Bool("update", false, "rewrite golden artifacts in testdata")

// fixtureLabels is the label set every fixture learner trains on.
var fixtureLabels = []string{"PRICE", "AGENT-NAME", "OTHER"}

func fixtureExamples() []learn.Example {
	mk := func(tag, content, label, group string) learn.Example {
		return learn.Example{
			Instance: learn.Instance{
				TagName: tag,
				Path:    []string{"listing", tag},
				Content: content,
			},
			Label: label,
			Group: group,
		}
	}
	return []learn.Example{
		mk("price", "250000", "PRICE", "s1"),
		mk("price", "189500", "PRICE", "s1"),
		mk("asking", "425000", "PRICE", "s2"),
		mk("agent", "Kate Richardson", "AGENT-NAME", "s1"),
		mk("contact", "James Smith", "AGENT-NAME", "s2"),
		mk("extra", "open house sunday", "OTHER", "s1"),
		mk("comments", "needs a new roof", "OTHER", "s2"),
	}
}

func fixtureInstances() []learn.Instance {
	return []learn.Instance{
		{TagName: "price", Path: []string{"listing", "price"}, Content: "310000"},
		{TagName: "listed-price", Path: []string{"listing", "listed-price"}, Content: "99000"},
		{TagName: "realtor", Path: []string{"listing", "realtor"}, Content: "Maria Lopez"},
		{TagName: "remarks", Path: []string{"listing", "remarks"}, Content: "close to schools"},
		{TagName: "unseen", Path: []string{"house", "unseen"}, Content: ""},
	}
}

// samePrediction reports whether two predictions are bit-identical.
func samePrediction(a, b learn.Prediction) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || math.Float64bits(av) != math.Float64bits(bv) {
			return false
		}
	}
	return true
}

func checkSamePredictions(t *testing.T, orig, restored learn.Learner) {
	t.Helper()
	for _, in := range fixtureInstances() {
		want := orig.Predict(in)
		got := restored.Predict(in)
		if !samePrediction(want, got) {
			t.Errorf("instance %q: restored prediction %v, want %v", in.TagName, got, want)
		}
	}
}

func TestLearnerRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		make func(t *testing.T) learn.Learner
	}{
		{"NameMatcher", func(t *testing.T) learn.Learner { return namematcher.New() }},
		{"ContentMatcher", func(t *testing.T) learn.Learner { return contentmatcher.New() }},
		{"NaiveBayes", func(t *testing.T) learn.Learner { return naivebayes.New() }},
		{"XMLLearner", func(t *testing.T) learn.Learner { return xmllearner.New(nil, nil) }},
		{"Stats", func(t *testing.T) learn.Learner { return stats.New() }},
		{"Format", func(t *testing.T) learn.Learner { return format.New() }},
		{"Recognizer", func(t *testing.T) learn.Learner {
			return recognizer.NewDictionary("CityNames", "AGENT-NAME", []string{"kate", "james", "maria"})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := tc.make(t)
			if err := l.Train(fixtureLabels, fixtureExamples()); err != nil {
				t.Fatalf("Train: %v", err)
			}
			kind, payload, err := encodeLearner(l)
			if err != nil {
				t.Fatalf("encodeLearner: %v", err)
			}
			r := newReader(payload)
			restored, err := decodeLearner(kind, r)
			if err != nil {
				t.Fatalf("decodeLearner: %v", err)
			}
			if r.remaining() != 0 {
				t.Fatalf("decodeLearner left %d bytes", r.remaining())
			}
			if restored.Name() != l.Name() {
				t.Fatalf("restored name %q, want %q", restored.Name(), l.Name())
			}
			checkSamePredictions(t, l, restored)
		})
	}
}

func TestEncodeUntrainedLearner(t *testing.T) {
	if _, _, err := encodeLearner(naivebayes.New()); err == nil {
		t.Fatal("encodeLearner(untrained) succeeded, want error")
	}
}

func TestWhirlRestorerRegistry(t *testing.T) {
	c := whirl.New("Custom", func(in learn.Instance) string { return in.Content }, whirl.DefaultConfig())
	if err := c.Train(fixtureLabels, fixtureExamples()); err != nil {
		t.Fatalf("Train: %v", err)
	}
	kind, payload, err := encodeLearner(c)
	if err != nil {
		t.Fatalf("encodeLearner: %v", err)
	}
	if _, err := decodeLearner(kind, newReader(payload)); err == nil {
		t.Fatal("decodeLearner of unregistered WHIRL name succeeded, want error")
	}
	RegisterWhirlRestorer("Custom", func(st *whirl.State) (learn.Learner, error) {
		return whirl.Restore(st, func(in learn.Instance) string { return in.Content })
	})
	defer delete(whirlRestorers, "Custom")
	restored, err := decodeLearner(kind, newReader(payload))
	if err != nil {
		t.Fatalf("decodeLearner after register: %v", err)
	}
	checkSamePredictions(t, c, restored)
}

// fixtureDTD is a small mediated schema accepted by dtd.Parse.
const fixtureDTD = "<!ELEMENT LISTING (PRICE, AGENT-NAME)>\n" +
	"<!ELEMENT PRICE (#PCDATA)>\n" +
	"<!ELEMENT AGENT-NAME (#PCDATA)>\n"

// fixtureState assembles a complete trained SystemState by hand:
// deterministic, no training pipeline involved.
func fixtureState(t testing.TB) *core.SystemState {
	t.Helper()
	train := func(l learn.Learner) learn.Learner {
		if err := l.Train(fixtureLabels, fixtureExamples()); err != nil {
			t.Fatalf("Train %s: %v", l.Name(), err)
		}
		return l
	}
	stacker, err := meta.RestoreStacker(&meta.StackerState{
		Labels:       fixtureLabels,
		LearnerNames: []string{"NameMatcher", "NaiveBayes", "XMLLearner"},
		Weights: [][]float64{
			{0.5, 0.25, 0.25},
			{0.125, 0.5, 0.375},
			{0.375, 0.375, 0.25},
		},
	})
	if err != nil {
		t.Fatalf("RestoreStacker: %v", err)
	}
	interimStacker, err := meta.RestoreStacker(&meta.StackerState{
		Labels:       fixtureLabels,
		LearnerNames: []string{"NameMatcher", "NaiveBayes"},
		Weights: [][]float64{
			{0.75, 0.25},
			{0.25, 0.75},
			{0.5, 0.5},
		},
	})
	if err != nil {
		t.Fatalf("RestoreStacker: %v", err)
	}
	return &core.SystemState{
		Config: core.Config{
			UseXMLLearner:        true,
			UseConstraintHandler: true,
			Meta:                 meta.Config{Folds: 5},
			Converter:            meta.Average,
			MaxListings:          7,
			Seed:                 42,
		},
		MediatedDTD: fixtureDTD,
		ConstraintSpecs: []constraint.Spec{
			constraint.Describe(constraint.AtMostOne("PRICE")),
			constraint.Describe(constraint.LeafLabel("PRICE")),
			constraint.Describe(constraint.MustMatch("price", "PRICE")),
			constraint.Describe(constraint.Near("PRICE", "AGENT-NAME", 0.5)),
		},
		DroppedConstraints: 1,
		Synonyms:           map[string][]string{"AGENT-NAME": {"realtor", "broker"}},
		HierarchyParent:    map[string]string{"AGENT-NAME": "CONTACT"},
		Labels:             fixtureLabels,
		Names:              []string{"NameMatcher", "NaiveBayes", "XMLLearner"},
		Learners: []learn.Learner{
			train(namematcher.New()),
			train(naivebayes.New()),
			train(xmllearner.New(nil, nil)),
		},
		Stacker:         stacker,
		InterimNames:    []string{"NameMatcher", "NaiveBayes"},
		InterimLearners: []learn.Learner{train(namematcher.New()), train(naivebayes.New())},
		InterimStacker:  interimStacker,
	}
}

// TestEncodeDecodeStable round-trips a full state and requires the
// re-encoding to be byte-identical: decode loses nothing the encoder
// can see.
func TestEncodeDecodeStable(t *testing.T) {
	st := fixtureState(t)
	data, err := Encode("fixture", st)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	d, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if d.Name != "fixture" {
		t.Errorf("decoded name %q, want %q", d.Name, "fixture")
	}
	if d.FormatVersion != FormatVersion {
		t.Errorf("decoded version %d, want %d", d.FormatVersion, FormatVersion)
	}
	if len(d.Skipped) != 0 {
		t.Errorf("decoded skipped sections %v, want none", d.Skipped)
	}
	if d.State.DroppedConstraints != 1 {
		t.Errorf("dropped constraints %d, want 1", d.State.DroppedConstraints)
	}
	again, err := Encode("fixture", d.State)
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("encode → decode → encode is not byte-identical")
	}
}

// TestDecodedSystem proves a decoded artifact yields a servable system
// whose ensemble predictions match the originals bit for bit.
func TestDecodedSystem(t *testing.T) {
	st := fixtureState(t)
	data, err := Encode("fixture", st)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	d, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	sys, err := d.System(1)
	if err != nil {
		t.Fatalf("System: %v", err)
	}
	if sys == nil {
		t.Fatal("System returned nil")
	}
	for i, l := range d.State.Learners {
		checkSamePredictions(t, st.Learners[i], l)
	}
	for i, l := range d.State.InterimLearners {
		checkSamePredictions(t, st.InterimLearners[i], l)
	}
}

func TestSaveLoad(t *testing.T) {
	st := fixtureState(t)
	data, err := Encode("disk", st)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	path := filepath.Join(t.TempDir(), "model.lsdm")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if d.Name != "disk" {
		t.Errorf("loaded name %q, want %q", d.Name, "disk")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.lsdm")); err == nil {
		t.Error("Load(missing) succeeded, want error")
	}
}

// reseal recomputes the trailing checksum over body.
func reseal(body []byte) []byte {
	sum := sha256.Sum256(body)
	return append(append([]byte(nil), body...), sum[:]...)
}

// TestUnknownSectionSkipped splices a section from the future into a
// valid artifact; the reader must skip it and decode the rest intact.
func TestUnknownSectionSkipped(t *testing.T) {
	st := fixtureState(t)
	data, err := Encode("fixture", st)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	body := data[:len(data)-checksumSize]
	w := &writer{buf: append([]byte(nil), body[:len(body)-1]...)} // drop 'E'
	w.u8('S')
	w.str("gpu-cache-hints")
	w.u16(3)
	payload := []byte("opaque bytes a v1 reader cannot understand")
	w.uvarint(uint64(len(payload)))
	w.bytes(payload)
	w.u8('E')
	spliced := reseal(w.buf)

	d, err := Decode(spliced)
	if err != nil {
		t.Fatalf("Decode with unknown section: %v", err)
	}
	if len(d.Skipped) != 1 || d.Skipped[0] != "gpu-cache-hints" {
		t.Fatalf("Skipped = %v, want [gpu-cache-hints]", d.Skipped)
	}
	again, err := Encode("fixture", d.State)
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("state decoded around unknown section differs from original")
	}
}

func TestDecodeRejects(t *testing.T) {
	st := fixtureState(t)
	data, err := Encode("fixture", st)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	body := data[:len(data)-checksumSize]

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "too short"},
		{"short", []byte("LSDM"), "too short"},
		{"bad magic", reseal(append([]byte("XXXX"), body[4:]...)), "bad magic"},
		{"flipped bit", flipBit(data, len(data)/2), "checksum mismatch"},
		{"truncated", data[:len(data)-1], "checksum mismatch"},
		{"future version", reseal(bumpVersion(body)), "newer than supported"},
		{"future section encoding", reseal(bumpSectionEncoding(t, body)), "newer than supported"},
		{"trailing bytes", reseal(append(append([]byte(nil), body...), 0xFF)), "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.data)
			if err == nil {
				t.Fatal("Decode succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func flipBit(data []byte, i int) []byte {
	cp := append([]byte(nil), data...)
	cp[i] ^= 0x40
	return cp
}

func bumpVersion(body []byte) []byte {
	cp := append([]byte(nil), body...)
	cp[4] = 0xFF
	cp[5] = 0xFF
	return cp
}

// bumpSectionEncoding rewrites the first section's encoding tag to a
// number this reader does not support.
func bumpSectionEncoding(t *testing.T, body []byte) []byte {
	t.Helper()
	cp := append([]byte(nil), body...)
	r := newReader(cp)
	r.off = len(magic) + 2
	if r.u8() != 'S' {
		t.Fatal("expected section marker")
	}
	r.str()
	off := r.off // encoding tag position
	if r.failed() {
		t.Fatalf("walking artifact: %v", r.err)
	}
	cp[off] = 0xFF
	cp[off+1] = 0xFF
	return cp
}

func TestMissingRequiredSection(t *testing.T) {
	// An artifact with only a model section.
	w := &writer{}
	w.bytes([]byte(magic))
	w.u16(FormatVersion)
	model := &writer{}
	model.str("lonely")
	section(w, secModel, model.buf)
	w.u8('E')
	_, err := Decode(reseal(w.buf))
	if err == nil || !strings.Contains(err.Error(), "missing required section") {
		t.Fatalf("Decode = %v, want missing required section", err)
	}
}

func TestDuplicateSection(t *testing.T) {
	w := &writer{}
	w.bytes([]byte(magic))
	w.u16(FormatVersion)
	model := &writer{}
	model.str("twice")
	section(w, secModel, model.buf)
	section(w, secModel, model.buf)
	w.u8('E')
	_, err := Decode(reseal(w.buf))
	if err == nil || !strings.Contains(err.Error(), "duplicate section") {
		t.Fatalf("Decode = %v, want duplicate section", err)
	}
}

func TestEncodeRejectsOpaqueConstraint(t *testing.T) {
	st := fixtureState(t)
	st.ConstraintSpecs = append(st.ConstraintSpecs, constraint.Spec{Kind: constraint.KindOpaque})
	if _, err := Encode("bad", st); err == nil {
		t.Fatal("Encode with opaque constraint spec succeeded, want error")
	}
}

// TestGolden pins the wire format: a fixture artifact must decode from
// (and re-encode to) the exact bytes committed in testdata. Run with
// -update to regenerate after an intentional format change.
func TestGolden(t *testing.T) {
	st := fixtureState(t)
	data, err := Encode("golden", st)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	path := filepath.Join("testdata", "fixture_v1.bin")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run `go test ./internal/artifact -update` to create): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("encoded artifact differs from golden %s (%d vs %d bytes); run with -update if the format change is intentional", path, len(data), len(want))
	}
	d, err := Decode(want)
	if err != nil {
		t.Fatalf("Decode(golden): %v", err)
	}
	if d.Name != "golden" {
		t.Errorf("golden name %q, want %q", d.Name, "golden")
	}
	if len(d.State.Learners) != 3 || len(d.State.InterimLearners) != 2 {
		t.Errorf("golden learners %d/%d, want 3/2", len(d.State.Learners), len(d.State.InterimLearners))
	}
	if _, err := d.System(1); err != nil {
		t.Errorf("golden System: %v", err)
	}
}

// TestGoldenFutureSection decodes a committed artifact that carries a
// section this reader has never heard of — the forward-compatibility
// contract pinned as bytes on disk.
func TestGoldenFutureSection(t *testing.T) {
	path := filepath.Join("testdata", "future_section_v1.bin")
	if *update {
		st := fixtureState(t)
		data, err := Encode("golden", st)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		body := data[:len(data)-checksumSize]
		w := &writer{buf: append([]byte(nil), body[:len(body)-1]...)}
		w.u8('S')
		w.str("embedding-index")
		w.u16(1)
		payload := []byte("payload from a future writer")
		w.uvarint(uint64(len(payload)))
		w.bytes(payload)
		w.u8('E')
		if err := os.WriteFile(path, reseal(w.buf), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run `go test ./internal/artifact -update` to create): %v", err)
	}
	d, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(d.Skipped) != 1 || d.Skipped[0] != "embedding-index" {
		t.Fatalf("Skipped = %v, want [embedding-index]", d.Skipped)
	}
	if _, err := d.System(1); err != nil {
		t.Errorf("System: %v", err)
	}
}
