// Package artifact serializes trained LSD matchers into a single
// versioned binary artifact and back — the persistence layer that lets
// a matcher outlive the process that trained it (train once with
// cmd/lsd -save, serve forever with cmd/lsdserve).
//
// Wire layout (all integers little-endian; varints are unsigned LEB128
// as in encoding/binary):
//
//	magic "LSDM" | u16 format version | section* | 'E' | sha256[32]
//	section := 'S' | name string | u16 encoding | uvarint len | payload
//
// Compatibility rules:
//   - The format version gates the envelope itself: a reader refuses a
//     file whose version exceeds what it understands.
//   - Section names are the extension point. A reader skips sections
//     whose name it does not know, so new writers can add sections
//     (new learners, new metadata) without breaking old readers.
//   - Each section carries its own encoding tag; a reader refuses a
//     section whose encoding is newer than it understands, so payload
//     changes are versioned independently of the envelope.
//   - The trailing SHA-256 covers every preceding byte; a corrupted or
//     truncated artifact fails the checksum before any payload is
//     decoded.
package artifact

import (
	"encoding/binary"
	"fmt"
	"math"
)

// writer accumulates the wire encoding. All emit methods append to the
// buffer; the zero value is ready to use.
type writer struct {
	buf []byte
}

func (w *writer) bytes(b []byte) { w.buf = append(w.buf, b...) }
func (w *writer) u8(v byte)      { w.buf = append(w.buf, v) }

func (w *writer) u16(v uint16) {
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
}

func (w *writer) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *writer) varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

func (w *writer) strs(ss []string) {
	w.uvarint(uint64(len(ss)))
	for _, s := range ss {
		w.str(s)
	}
}

func (w *writer) f64s(vs []float64) {
	w.uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.f64(v)
	}
}

// reader decodes the wire encoding with sticky-error, bounds-checked
// reads: every method checks the remaining input before touching it
// and records the first failure, so a truncated or corrupted artifact
// produces an error, never a panic or an oversized allocation.
type reader struct {
	data []byte
	off  int
	err  error
}

func newReader(data []byte) *reader { return &reader{data: data} }

func (r *reader) failed() bool { return r.err != nil }

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("artifact: offset %d: %s", r.off, fmt.Sprintf(format, args...))
	}
}

func (r *reader) remaining() int { return len(r.data) - r.off }

func (r *reader) done() bool { return r.err != nil || r.off >= len(r.data) }

func (r *reader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 1 {
		r.fail("truncated byte")
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 2 {
		r.fail("truncated uint16")
		return 0
	}
	v := binary.LittleEndian.Uint16(r.data[r.off:])
	r.off += 2
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

// count reads a length-prefix and validates it against the remaining
// input, given the minimum wire size of one element. This is what
// keeps a corrupted length from driving a huge allocation: a count
// can never exceed the bytes actually present.
func (r *reader) count(minElemSize int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if minElemSize < 1 {
		minElemSize = 1
	}
	if v > uint64(r.remaining()/minElemSize) {
		r.fail("count %d exceeds remaining input", v)
		return 0
	}
	return int(v)
}

func (r *reader) str() string {
	n := r.count(1)
	if r.err != nil {
		return ""
	}
	v := string(r.data[r.off : r.off+n])
	r.off += n
	return v
}

func (r *reader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 8 {
		r.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

func (r *reader) strs() []string {
	n := r.count(1)
	if r.err != nil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.str()
	}
	return out
}

func (r *reader) f64s() []float64 {
	n := r.count(8)
	if r.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

// sub carves out the next n bytes as an independent reader, so a
// section (or nested learner record) decodes against exactly its own
// payload and cannot read past it.
func (r *reader) sub(n int) *reader {
	if r.err != nil {
		return &reader{err: r.err}
	}
	if n < 0 || n > r.remaining() {
		r.fail("truncated payload of %d bytes", n)
		return &reader{err: r.err}
	}
	s := newReader(r.data[r.off : r.off+n])
	r.off += n
	return s
}
