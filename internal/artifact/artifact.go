package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sort"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/learners/contentmatcher"
	"repro/internal/learners/format"
	"repro/internal/learners/naivebayes"
	"repro/internal/learners/namematcher"
	"repro/internal/learners/recognizer"
	"repro/internal/learners/stats"
	"repro/internal/learners/whirl"
	"repro/internal/learners/xmllearner"
	"repro/internal/meta"
)

// magic opens every artifact.
const magic = "LSDM"

// FormatVersion is the envelope version this package writes; readers
// refuse artifacts whose version is newer.
const FormatVersion uint16 = 1

// checksumSize is the trailing SHA-256.
const checksumSize = sha256.Size

// Section names. Unknown names are skipped on read; these five are the
// vocabulary version 1 writers emit.
const (
	secModel    = "model"    // model name
	secConfig   = "config"   // matching-phase Config scalars
	secMediated = "mediated" // DTD, synonyms, hierarchy, constraints, labels
	secEnsemble = "ensemble" // final learners + stacker
	secInterim  = "interim"  // interim ensemble behind the XML learner
)

// sectionEncodings maps each known section to the newest payload
// encoding this reader understands. A section tagged higher is refused
// (version skew); unknown section names are skipped instead.
var sectionEncodings = map[string]uint16{
	secModel:    1,
	secConfig:   1,
	secMediated: 1,
	secEnsemble: 1,
	secInterim:  1,
}

// Learner kind tags inside ensemble sections.
const (
	kindWhirl      = "whirl"
	kindNaiveBayes = "naivebayes"
	kindXML        = "xml"
	kindStats      = "stats"
	kindFormat     = "format"
	kindRecognizer = "recognizer"
)

// Decoded is the result of reading an artifact: the model name, the
// restored system state, and envelope metadata. Call System to turn it
// into a servable matcher.
type Decoded struct {
	// Name is the model name recorded at save time.
	Name string
	// FormatVersion is the envelope version the artifact was written at.
	FormatVersion uint16
	// Checksum is the hex SHA-256 the artifact carried (and matched).
	Checksum string
	// State is the restored trained-system snapshot.
	State *core.SystemState
	// Skipped lists section names this reader did not recognize and
	// skipped — the forward-compatibility path.
	Skipped []string
}

// System rebuilds a servable matcher from the decoded state with the
// given worker budget (core.Config.Workers semantics).
func (d *Decoded) System(workers int) (*core.System, error) {
	return core.FromState(d.State, workers)
}

// Encode serializes a trained-system snapshot under the given model
// name into a self-contained artifact.
//
// lint:codec encode
func Encode(name string, st *core.SystemState) ([]byte, error) {
	if st == nil {
		return nil, fmt.Errorf("artifact: nil system state")
	}
	if st.Stacker == nil {
		return nil, fmt.Errorf("artifact: state has no stacker")
	}
	w := &writer{}
	w.bytes([]byte(magic))
	w.u16(FormatVersion)

	model := &writer{}
	model.str(name)
	section(w, secModel, model.buf)

	section(w, secConfig, encodeConfig(st.Config))
	med, err := encodeMediated(st)
	if err != nil {
		return nil, err
	}
	section(w, secMediated, med)

	ens, err := encodeEnsemble(st.Names, st.Learners, st.Stacker)
	if err != nil {
		return nil, err
	}
	section(w, secEnsemble, ens)

	if len(st.InterimLearners) > 0 {
		if st.InterimStacker == nil {
			return nil, fmt.Errorf("artifact: interim learners without an interim stacker")
		}
		in, err := encodeEnsemble(st.InterimNames, st.InterimLearners, st.InterimStacker)
		if err != nil {
			return nil, err
		}
		section(w, secInterim, in)
	}

	w.u8('E')
	sum := sha256.Sum256(w.buf)
	w.bytes(sum[:])
	return w.buf, nil
}

// EncodeSystem snapshots and serializes a trained system.
func EncodeSystem(name string, sys *core.System) ([]byte, error) {
	return Encode(name, sys.State())
}

// Save writes an artifact for the trained system to path.
func Save(path, name string, sys *core.System) error {
	data, err := EncodeSystem(name, sys)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads and decodes an artifact file.
func Load(path string) (*Decoded, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// Decode parses an artifact. It verifies the checksum before decoding
// any payload and never panics on corrupted or truncated input.
//
// lint:codec decode
func Decode(data []byte) (*Decoded, error) {
	if len(data) < len(magic)+2+1+checksumSize {
		return nil, fmt.Errorf("artifact: %d bytes is too short to be an artifact", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("artifact: bad magic %q", data[:len(magic)])
	}
	body, tail := data[:len(data)-checksumSize], data[len(data)-checksumSize:]
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(tail) {
		return nil, fmt.Errorf("artifact: checksum mismatch: artifact is corrupted or truncated")
	}

	r := newReader(body)
	r.off = len(magic)
	version := r.u16()
	if version > FormatVersion {
		return nil, fmt.Errorf("artifact: format version %d is newer than supported %d", version, FormatVersion)
	}

	d := &Decoded{
		FormatVersion: version,
		Checksum:      hex.EncodeToString(tail),
		State:         &core.SystemState{},
	}
	seen := map[string]bool{}
	for {
		marker := r.u8()
		if r.failed() {
			return nil, r.err
		}
		if marker == 'E' {
			break
		}
		if marker != 'S' {
			return nil, fmt.Errorf("artifact: bad section marker 0x%02x", marker)
		}
		name := r.str()
		enc := r.u16()
		n := r.uvarint()
		if r.failed() {
			return nil, r.err
		}
		if n > uint64(r.remaining()) {
			return nil, fmt.Errorf("artifact: section %q claims %d bytes, %d remain", name, n, r.remaining())
		}
		sr := r.sub(int(n))
		max, known := sectionEncodings[name]
		if !known {
			d.Skipped = append(d.Skipped, name)
			continue
		}
		if enc > max {
			return nil, fmt.Errorf("artifact: section %q encoding %d is newer than supported %d", name, enc, max)
		}
		if seen[name] {
			return nil, fmt.Errorf("artifact: duplicate section %q", name)
		}
		seen[name] = true
		if err := decodeSection(name, sr, d); err != nil {
			return nil, err
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("artifact: %d trailing bytes after end marker", r.remaining())
	}
	for _, name := range []string{secModel, secConfig, secMediated, secEnsemble} {
		if !seen[name] {
			return nil, fmt.Errorf("artifact: missing required section %q", name)
		}
	}
	return d, nil
}

func decodeSection(name string, r *reader, d *Decoded) error {
	switch name {
	case secModel:
		d.Name = r.str()
	case secConfig:
		decodeConfig(r, &d.State.Config)
	case secMediated:
		decodeMediated(r, d.State)
	case secEnsemble:
		names, learners, stacker, err := decodeEnsemble(r)
		if err != nil {
			return err
		}
		d.State.Names, d.State.Learners, d.State.Stacker = names, learners, stacker
	case secInterim:
		names, learners, stacker, err := decodeEnsemble(r)
		if err != nil {
			return err
		}
		d.State.InterimNames, d.State.InterimLearners, d.State.InterimStacker = names, learners, stacker
	}
	if r.failed() {
		return r.err
	}
	if r.remaining() != 0 {
		return fmt.Errorf("artifact: section %q has %d trailing bytes", name, r.remaining())
	}
	return nil
}

// section emits one section record.
func section(w *writer, name string, payload []byte) {
	w.u8('S')
	w.str(name)
	w.u16(sectionEncodings[name])
	w.uvarint(uint64(len(payload)))
	w.bytes(payload)
}

// --- config section ---

const (
	cfgUseXMLLearner = 1 << iota
	cfgUseConstraintHandler
	cfgMetaUniformWeights
	cfgMetaRawWeights
	cfgMetaAllowNegative
)

func encodeConfig(cfg core.Config) []byte {
	w := &writer{}
	w.varint(int64(cfg.Converter))
	var flags byte
	if cfg.UseXMLLearner {
		flags |= cfgUseXMLLearner
	}
	if cfg.UseConstraintHandler {
		flags |= cfgUseConstraintHandler
	}
	if cfg.Meta.UniformWeights {
		flags |= cfgMetaUniformWeights
	}
	if cfg.Meta.RawWeights {
		flags |= cfgMetaRawWeights
	}
	if cfg.Meta.AllowNegativeWeights {
		flags |= cfgMetaAllowNegative
	}
	w.u8(flags)
	w.varint(int64(cfg.MaxListings))
	w.varint(cfg.Seed)
	w.varint(int64(cfg.Meta.Folds))
	return w.buf
}

func decodeConfig(r *reader, cfg *core.Config) {
	cfg.Converter = meta.ConverterMode(r.varint())
	flags := r.u8()
	cfg.UseXMLLearner = flags&cfgUseXMLLearner != 0
	cfg.UseConstraintHandler = flags&cfgUseConstraintHandler != 0
	cfg.Meta.UniformWeights = flags&cfgMetaUniformWeights != 0
	cfg.Meta.RawWeights = flags&cfgMetaRawWeights != 0
	cfg.Meta.AllowNegativeWeights = flags&cfgMetaAllowNegative != 0
	cfg.MaxListings = int(r.varint())
	cfg.Seed = r.varint()
	cfg.Meta.Folds = int(r.varint())
}

// --- mediated section ---

const (
	specHard = 1 << iota
	specForbid
	specNonLeaf
)

func encodeMediated(st *core.SystemState) ([]byte, error) {
	w := &writer{}
	w.str(st.MediatedDTD)

	synKeys := make([]string, 0, len(st.Synonyms))
	for k := range st.Synonyms {
		synKeys = append(synKeys, k)
	}
	sort.Strings(synKeys)
	w.uvarint(uint64(len(synKeys)))
	for _, k := range synKeys {
		w.str(k)
		w.strs(st.Synonyms[k])
	}

	hierKeys := make([]string, 0, len(st.HierarchyParent))
	for k := range st.HierarchyParent {
		hierKeys = append(hierKeys, k)
	}
	sort.Strings(hierKeys)
	w.uvarint(uint64(len(hierKeys)))
	for _, k := range hierKeys {
		w.str(k)
		w.str(st.HierarchyParent[k])
	}

	w.uvarint(uint64(len(st.ConstraintSpecs)))
	for _, s := range st.ConstraintSpecs {
		if s.Kind == constraint.KindOpaque || s.Kind == constraint.KindBinarySoft {
			return nil, fmt.Errorf("artifact: constraint kind %d is not serializable", s.Kind)
		}
		w.varint(int64(s.Kind))
		var flags byte
		if s.Hard {
			flags |= specHard
		}
		if s.Forbid {
			flags |= specForbid
		}
		if s.NonLeaf {
			flags |= specNonLeaf
		}
		w.u8(flags)
		w.strs(s.Labels)
		w.str(s.Tag)
		w.varint(int64(s.Min))
		w.varint(int64(s.Max))
		w.f64(s.Weight)
	}
	w.varint(int64(st.DroppedConstraints))
	w.strs(st.Labels)
	return w.buf, nil
}

func decodeMediated(r *reader, st *core.SystemState) {
	st.MediatedDTD = r.str()

	if n := r.count(2); n > 0 {
		st.Synonyms = make(map[string][]string, n)
		for i := 0; i < n && !r.failed(); i++ {
			k := r.str()
			st.Synonyms[k] = r.strs()
		}
	}
	if n := r.count(2); n > 0 {
		st.HierarchyParent = make(map[string]string, n)
		for i := 0; i < n && !r.failed(); i++ {
			k := r.str()
			st.HierarchyParent[k] = r.str()
		}
	}
	n := r.count(2)
	for i := 0; i < n && !r.failed(); i++ {
		var s constraint.Spec
		s.Kind = constraint.Kind(r.varint())
		flags := r.u8()
		s.Hard = flags&specHard != 0
		s.Forbid = flags&specForbid != 0
		s.NonLeaf = flags&specNonLeaf != 0
		s.Labels = r.strs()
		s.Tag = r.str()
		s.Min = int(r.varint())
		s.Max = int(r.varint())
		s.Weight = r.f64()
		st.ConstraintSpecs = append(st.ConstraintSpecs, s)
	}
	st.DroppedConstraints = int(r.varint())
	st.Labels = r.strs()
}

// --- ensemble sections ---

func encodeEnsemble(names []string, learners []learn.Learner, stacker *meta.Stacker) ([]byte, error) {
	if len(names) != len(learners) {
		return nil, fmt.Errorf("artifact: %d names for %d learners", len(names), len(learners))
	}
	w := &writer{}
	w.strs(names)
	w.uvarint(uint64(len(learners)))
	for i, l := range learners {
		kind, payload, err := encodeLearner(l)
		if err != nil {
			return nil, fmt.Errorf("artifact: learner %q: %w", names[i], err)
		}
		w.str(kind)
		w.uvarint(uint64(len(payload)))
		w.bytes(payload)
	}
	encodeStacker(w, stacker.State())
	return w.buf, nil
}

func decodeEnsemble(r *reader) ([]string, []learn.Learner, *meta.Stacker, error) {
	names := r.strs()
	n := r.count(2)
	if r.failed() {
		return nil, nil, nil, r.err
	}
	if n != len(names) {
		return nil, nil, nil, fmt.Errorf("artifact: %d names for %d learners", len(names), n)
	}
	learners := make([]learn.Learner, 0, n)
	for i := 0; i < n; i++ {
		kind := r.str()
		plen := r.uvarint()
		if r.failed() {
			return nil, nil, nil, r.err
		}
		if plen > uint64(r.remaining()) {
			return nil, nil, nil, fmt.Errorf("artifact: learner %q claims %d bytes, %d remain", names[i], plen, r.remaining())
		}
		lr := r.sub(int(plen))
		l, err := decodeLearner(kind, lr)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("artifact: learner %q: %w", names[i], err)
		}
		if lr.remaining() != 0 {
			return nil, nil, nil, fmt.Errorf("artifact: learner %q has %d trailing bytes", names[i], lr.remaining())
		}
		learners = append(learners, l)
	}
	stacker, err := decodeStacker(r)
	if err != nil {
		return nil, nil, nil, err
	}
	return names, learners, stacker, nil
}

func encodeStacker(w *writer, st *meta.StackerState) {
	w.strs(st.Labels)
	w.strs(st.LearnerNames)
	w.uvarint(uint64(len(st.Weights)))
	for _, row := range st.Weights {
		w.f64s(row)
	}
}

func decodeStacker(r *reader) (*meta.Stacker, error) {
	var st meta.StackerState
	st.Labels = r.strs()
	st.LearnerNames = r.strs()
	n := r.count(1)
	for i := 0; i < n && !r.failed(); i++ {
		st.Weights = append(st.Weights, r.f64s())
	}
	if r.failed() {
		return nil, r.err
	}
	return meta.RestoreStacker(&st)
}

// --- learner payloads ---

func encodeLearner(l learn.Learner) (string, []byte, error) {
	switch v := l.(type) {
	case *whirl.Classifier:
		st := v.State()
		if st == nil {
			return "", nil, fmt.Errorf("untrained WHIRL classifier")
		}
		return kindWhirl, encodeWhirl(st), nil
	case *naivebayes.Learner:
		st := v.State()
		if st == nil {
			return "", nil, fmt.Errorf("untrained Naive Bayes learner")
		}
		return kindNaiveBayes, encodeNaiveBayes(st), nil
	case *xmllearner.Learner:
		st := v.State()
		if st == nil {
			return "", nil, fmt.Errorf("untrained XML learner")
		}
		return kindXML, encodeNaiveBayes(st), nil
	case *stats.Learner:
		st := v.State()
		if st == nil {
			return "", nil, fmt.Errorf("untrained stats learner")
		}
		return kindStats, encodeStats(st), nil
	case *format.Learner:
		st := v.State()
		if st == nil {
			return "", nil, fmt.Errorf("untrained format learner")
		}
		return kindFormat, encodeFormat(st), nil
	case *recognizer.Dictionary:
		return kindRecognizer, encodeRecognizer(v.State()), nil
	default:
		return "", nil, fmt.Errorf("learner type %T is not serializable", l)
	}
}

// whirlRestorers dispatches a decoded WHIRL state to the package that
// owns its extractor, keyed by the classifier's recorded name. The
// extractor is code, not data; only classifiers with a registered
// restorer can come back from an artifact.
var whirlRestorers = map[string]func(*whirl.State) (learn.Learner, error){
	"NameMatcher":    namematcher.FromState,
	"ContentMatcher": contentmatcher.FromState,
}

// RegisterWhirlRestorer associates a WHIRL classifier name with its
// restore function. namematcher and contentmatcher register theirs at
// init; tests may register extra ones.
func RegisterWhirlRestorer(name string, fn func(*whirl.State) (learn.Learner, error)) {
	whirlRestorers[name] = fn
}

func decodeLearner(kind string, r *reader) (learn.Learner, error) {
	switch kind {
	case kindWhirl:
		st, err := decodeWhirl(r)
		if err != nil {
			return nil, err
		}
		restore, ok := whirlRestorers[st.Name]
		if !ok {
			return nil, fmt.Errorf("no extractor registered for WHIRL classifier %q", st.Name)
		}
		return restore(st)
	case kindNaiveBayes:
		st := decodeNaiveBayes(r)
		if r.failed() {
			return nil, r.err
		}
		return naivebayes.Restore(st)
	case kindXML:
		st := decodeNaiveBayes(r)
		if r.failed() {
			return nil, r.err
		}
		return xmllearner.Restore(st)
	case kindStats:
		st := decodeStats(r)
		if r.failed() {
			return nil, r.err
		}
		return stats.Restore(st)
	case kindFormat:
		st := decodeFormat(r)
		if r.failed() {
			return nil, r.err
		}
		return format.Restore(st)
	case kindRecognizer:
		st := decodeRecognizer(r)
		if r.failed() {
			return nil, r.err
		}
		return recognizer.Restore(st)
	default:
		return nil, fmt.Errorf("unknown learner kind %q", kind)
	}
}

func encodeWhirl(st *whirl.State) []byte {
	w := &writer{}
	w.str(st.Name)
	w.f64(st.Config.MinSimilarity)
	w.varint(int64(st.Config.MaxNeighbors))
	w.f64(st.Config.Smoothing)
	w.strs(st.Labels)
	w.strs(st.Corpus.Tokens)
	w.uvarint(uint64(len(st.Corpus.DocFreq)))
	for _, df := range st.Corpus.DocFreq {
		w.varint(df)
	}
	w.varint(st.Corpus.NumDocs)
	w.uvarint(uint64(len(st.DocLabels)))
	for _, li := range st.DocLabels {
		w.varint(int64(li))
	}
	w.uvarint(uint64(len(st.Postings)))
	for _, list := range st.Postings {
		w.uvarint(uint64(len(list)))
		for _, p := range list {
			w.varint(int64(p.Doc))
			w.f64(p.W)
		}
	}
	return w.buf
}

func decodeWhirl(r *reader) (*whirl.State, error) {
	st := &whirl.State{}
	st.Name = r.str()
	st.Config.MinSimilarity = r.f64()
	st.Config.MaxNeighbors = int(r.varint())
	st.Config.Smoothing = r.f64()
	st.Labels = r.strs()
	st.Corpus.Tokens = r.strs()
	if n := r.count(1); n > 0 {
		st.Corpus.DocFreq = make([]int64, n)
		for i := range st.Corpus.DocFreq {
			st.Corpus.DocFreq[i] = r.varint()
		}
	}
	st.Corpus.NumDocs = r.varint()
	if n := r.count(1); n > 0 {
		st.DocLabels = make([]int32, n)
		for i := range st.DocLabels {
			st.DocLabels[i] = int32(r.varint())
		}
	}
	n := r.count(1)
	if !r.failed() {
		st.Postings = make([][]whirl.Posting, n)
		for id := 0; id < n && !r.failed(); id++ {
			m := r.count(9)
			list := make([]whirl.Posting, m)
			for i := range list {
				list[i] = whirl.Posting{Doc: int32(r.varint()), W: r.f64()}
			}
			st.Postings[id] = list
		}
	}
	if r.failed() {
		return nil, r.err
	}
	return st, nil
}

func encodeNaiveBayes(st *naivebayes.State) []byte {
	w := &writer{}
	w.strs(st.Labels)
	w.strs(st.Tokens)
	w.uvarint(uint64(len(st.LogProb)))
	for _, row := range st.LogProb {
		w.f64s(row)
	}
	w.f64s(st.UnseenLog)
	w.f64s(st.Prior)
	w.f64(st.NumDocs)
	return w.buf
}

func decodeNaiveBayes(r *reader) *naivebayes.State {
	st := &naivebayes.State{}
	st.Labels = r.strs()
	st.Tokens = r.strs()
	n := r.count(1)
	for i := 0; i < n && !r.failed(); i++ {
		st.LogProb = append(st.LogProb, r.f64s())
	}
	st.UnseenLog = r.f64s()
	st.Prior = r.f64s()
	st.NumDocs = r.f64()
	return st
}

func encodeStats(st *stats.State) []byte {
	w := &writer{}
	w.strs(st.Labels)
	w.uvarint(uint64(len(st.Classes)))
	for _, c := range st.Classes {
		w.f64(c.N)
		w.f64s(c.Sum)
		w.f64s(c.SumSq)
	}
	w.f64(st.NumDocs)
	return w.buf
}

func decodeStats(r *reader) *stats.State {
	st := &stats.State{}
	st.Labels = r.strs()
	n := r.count(10)
	for i := 0; i < n && !r.failed(); i++ {
		var c stats.ClassState
		c.N = r.f64()
		c.Sum = r.f64s()
		c.SumSq = r.f64s()
		st.Classes = append(st.Classes, c)
	}
	st.NumDocs = r.f64()
	return st
}

func encodeFormat(st *format.State) []byte {
	w := &writer{}
	w.strs(st.Labels)
	w.uvarint(uint64(len(st.PerLabel)))
	for _, ls := range st.PerLabel {
		w.strs(ls.Sigs)
		w.f64s(ls.Counts)
		w.f64(ls.Total)
	}
	w.strs(st.Sigs)
	return w.buf
}

func decodeFormat(r *reader) *format.State {
	st := &format.State{}
	st.Labels = r.strs()
	n := r.count(10)
	for i := 0; i < n && !r.failed(); i++ {
		var ls format.LabelState
		ls.Sigs = r.strs()
		ls.Counts = r.f64s()
		ls.Total = r.f64()
		st.PerLabel = append(st.PerLabel, ls)
	}
	st.Sigs = r.strs()
	return st
}

func encodeRecognizer(st *recognizer.State) []byte {
	w := &writer{}
	w.str(st.Name)
	w.str(st.Target)
	w.strs(st.Entries)
	w.strs(st.Labels)
	w.f64(st.HitRate)
	return w.buf
}

func decodeRecognizer(r *reader) *recognizer.State {
	st := &recognizer.State{}
	st.Name = r.str()
	st.Target = r.str()
	st.Entries = r.strs()
	st.Labels = r.strs()
	st.HitRate = r.f64()
	return st
}
