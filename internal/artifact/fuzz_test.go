package artifact

import (
	"testing"
)

// FuzzArtifactDecode proves Decode never panics: any byte string —
// valid, truncated, bit-flipped, or adversarial — must come back as a
// (*Decoded, nil) or (nil, error), and a successful decode must
// re-encode and decode again cleanly.
func FuzzArtifactDecode(f *testing.F) {
	st := fixtureState(f)
	valid, err := Encode("fuzz-seed", st)
	if err != nil {
		f.Fatalf("Encode: %v", err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-checksumSize])
	f.Add([]byte(magic))
	f.Add([]byte("LSDMxxxx"))
	f.Add([]byte{})
	// A tiny structurally-plausible artifact: sealed envelope with one
	// unknown section, so the fuzzer starts near the section machinery.
	w := &writer{}
	w.bytes([]byte(magic))
	w.u16(FormatVersion)
	w.u8('S')
	w.str("x")
	w.u16(1)
	w.uvarint(0)
	w.u8('E')
	f.Add(reseal(w.buf))
	// Corrupt-but-sealed inputs reach past the checksum gate.
	flipped := flipBit(valid, len(valid)/3)
	f.Add(reseal(flipped[:len(flipped)-checksumSize]))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		again, err := Encode(d.Name, d.State)
		if err != nil {
			t.Fatalf("decoded artifact failed to re-encode: %v", err)
		}
		if _, err := Decode(again); err != nil {
			t.Fatalf("re-encoded artifact failed to decode: %v", err)
		}
	})
}
