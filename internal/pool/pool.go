// Package pool provides typed, request-scoped scratch arenas: small
// wrappers over sync.Pool that hand out dense buffers for the predict
// hot paths (WHIRL's similarity matrices, Naive Bayes' log-score
// tables, the stacker's per-instance prediction rows) and the serve
// layer's response encoding. The generalization of the PR 5
// dense-scratch pattern: a batch request acquires O(1) pooled buffers
// instead of allocating per instance.
//
// Contract (enforced by the poolescape analyzer): every Get has a
// matching Put on every path of the acquiring function, and pooled
// memory never escapes the request that acquired it — not into a
// cache, a struct field, a goroutine, or a returned value. The Get
// accessors carry the `lint:scratch` annotation that roots the
// analyzer's tracking.
package pool

import (
	"bytes"
	"sync"

	"repro/internal/learn"
)

// Floats pools dense []float64 scratch buffers. Buffers are zeroed on
// Put, so Get always returns an all-zero buffer and the accumulate
// paths need no per-call clearing.
type Floats struct {
	p sync.Pool
}

// Get returns a zeroed buffer of length n. The caller must hand it
// back via Put before returning and must not let it escape.
//
// lint:scratch
func (f *Floats) Get(n int) []float64 {
	if v := f.p.Get(); v != nil {
		if buf := v.(*[]float64); cap(*buf) >= n {
			return (*buf)[:n]
		}
	}
	return make([]float64, n)
}

// Put zeroes buf and recycles it.
func (f *Floats) Put(buf []float64) {
	for i := range buf {
		buf[i] = 0
	}
	f.p.Put(&buf)
}

// Preds pools []learn.Prediction scratch rows — the per-instance
// base-learner prediction vectors the stacker combines. Entries are
// nilled on Put so the pool never retains predictions (which may be
// shared with learner caches) beyond the request that used them.
type Preds struct {
	p sync.Pool
}

// Get returns an all-nil prediction slice of length n. The caller
// must hand it back via Put before returning and must not let it
// escape.
//
// lint:scratch
func (s *Preds) Get(n int) []learn.Prediction {
	if v := s.p.Get(); v != nil {
		if buf := v.(*[]learn.Prediction); cap(*buf) >= n {
			return (*buf)[:n]
		}
	}
	return make([]learn.Prediction, n)
}

// Put nils out buf and recycles it.
func (s *Preds) Put(buf []learn.Prediction) {
	for i := range buf {
		buf[i] = nil
	}
	s.p.Put(&buf)
}

// Buffers pools bytes.Buffer values for response encoding: the serve
// handlers marshal each JSON reply into a pooled buffer (one
// amortized allocation per request) instead of streaming through a
// fresh encoder allocation chain.
type Buffers struct {
	p sync.Pool
}

// Get returns an empty buffer. The caller must hand it back via Put
// before returning and must not let it escape.
//
// lint:scratch
func (b *Buffers) Get() *bytes.Buffer {
	if v := b.p.Get(); v != nil {
		buf := v.(*bytes.Buffer)
		buf.Reset()
		return buf
	}
	return &bytes.Buffer{}
}

// Put recycles the buffer.
func (b *Buffers) Put(buf *bytes.Buffer) {
	b.p.Put(buf)
}
