package integrate

import (
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/dtd"
	"repro/internal/xmltree"
)

var mediated = dtd.MustParse(`
<!ELEMENT HOUSE (ADDRESS?, PRICE?, BATHS?)>
<!ELEMENT ADDRESS (#PCDATA)>
<!ELEMENT PRICE (#PCDATA)>
<!ELEMENT BATHS (#PCDATA)>
`)

func listings(t *testing.T, xml string) []*xmltree.Node {
	t.Helper()
	docs, err := xmltree.ParseAll(strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	return docs
}

func engine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(mediated)
	// Source A uses one vocabulary and $ prices.
	err := e.Register("homeseekers.com", listings(t, `
<l><addr>Seattle, WA</addr><price>$450,000</price><baths>4</baths></l>
<l><addr>Portland, OR</addr><price>$650,000</price><baths>2</baths></l>
`), constraint.Assignment{
		"l": "HOUSE", "addr": "ADDRESS", "price": "PRICE", "baths": "BATHS",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Source B uses different tags and plain prices.
	err = e.Register("greathomes.com", listings(t, `
<e><area>Kent, WA</area><cost>390000</cost><ba>4</ba><junk>x</junk></e>
<e><area>Miami, FL</area><cost>980000</cost><ba>3</ba><junk>y</junk></e>
`), constraint.Assignment{
		"e": "HOUSE", "area": "ADDRESS", "cost": "PRICE", "ba": "BATHS",
		"junk": "OTHER",
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestFigure1Query runs the paper's motivating query: houses with four
// bathrooms and price under $500,000, answered across both sources.
func TestFigure1Query(t *testing.T) {
	e := engine(t)
	rs, err := e.Execute(Query{
		Select: []string{"ADDRESS", "PRICE"},
		Where: []Condition{
			{Attribute: "BATHS", Op: Eq, Value: "4"},
			{Attribute: "PRICE", Op: Lt, Value: "500000"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("results = %d, want 2: %v", len(rs), rs)
	}
	if rs[0].Source != "homeseekers.com" || rs[0].Values["ADDRESS"] != "Seattle, WA" {
		t.Errorf("rs[0] = %+v", rs[0])
	}
	if rs[1].Source != "greathomes.com" || rs[1].Values["ADDRESS"] != "Kent, WA" {
		t.Errorf("rs[1] = %+v", rs[1])
	}
}

func TestContainsAndGt(t *testing.T) {
	e := engine(t)
	rs, err := e.Execute(Query{
		Where: []Condition{
			{Attribute: "ADDRESS", Op: Contains, Value: "wa"},
			{Attribute: "PRICE", Op: Gt, Value: "400000"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Values["ADDRESS"] != "Seattle, WA" {
		t.Errorf("rs = %v", rs)
	}
	// Empty Select returns all leaf attributes present.
	if rs[0].Values["BATHS"] != "4" {
		t.Errorf("projection missing BATHS: %v", rs[0].Values)
	}
}

func TestExecuteErrors(t *testing.T) {
	e := engine(t)
	if _, err := e.Execute(Query{Where: []Condition{{Attribute: "NOPE", Op: Eq, Value: "x"}}}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := e.Execute(Query{Where: []Condition{{Attribute: "PRICE", Op: Lt, Value: "cheap"}}}); err == nil {
		t.Error("non-numeric operand accepted for <")
	}
}

func TestRegisterErrors(t *testing.T) {
	e := NewEngine(mediated)
	err := e.Register("bad", nil, constraint.Assignment{"x": "NOT-A-LABEL"})
	if err == nil {
		t.Error("bad mapping accepted")
	}
}

func TestMissingAttributeFails(t *testing.T) {
	// A source not covering BATHS can never satisfy a BATHS condition.
	e := NewEngine(mediated)
	if err := e.Register("partial", listings(t, `<l><price>100000</price></l>`),
		constraint.Assignment{"l": "HOUSE", "price": "PRICE"}); err != nil {
		t.Fatal(err)
	}
	rs, err := e.Execute(Query{Where: []Condition{{Attribute: "BATHS", Op: Eq, Value: "2"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("uncovered attribute matched: %v", rs)
	}
}

func TestParseNumber(t *testing.T) {
	cases := map[string]float64{
		"$450,000":         450000,
		"Note: $1,175,000": 1175000,
		"3.5":              3.5,
		"1200 sqft":        1200,
	}
	for in, want := range cases {
		got, ok := parseNumber(in)
		if !ok || got != want {
			t.Errorf("parseNumber(%q) = %g, %v; want %g", in, got, ok, want)
		}
	}
	if _, ok := parseNumber("no digits here"); ok {
		t.Error("parseNumber accepted text")
	}
}

func TestFormatResults(t *testing.T) {
	rs := []Result{{Source: "s", Values: map[string]string{"PRICE": "$1"}}}
	out := FormatResults(rs, nil)
	if !strings.Contains(out, "SOURCE") || !strings.Contains(out, "$1") {
		t.Errorf("FormatResults = %q", out)
	}
}

func TestSourcesList(t *testing.T) {
	e := engine(t)
	got := e.Sources()
	if len(got) != 2 || got[0] != "homeseekers.com" {
		t.Errorf("Sources = %v", got)
	}
}
