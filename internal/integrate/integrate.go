// Package integrate is the thin data-integration engine of the paper's
// Figure 1: users pose queries against the mediated schema ("find
// houses with four bathrooms and price under $500,000"), and the system
// answers them from many sources through the semantic mappings LSD
// learned — each source's listings are translated into the mediated
// schema and filtered. It is deliberately small: the paper's
// contribution is acquiring the mappings, and this package exists to
// exercise them the way a real system would.
package integrate

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/constraint"
	"repro/internal/dtd"
	"repro/internal/transform"
	"repro/internal/xmltree"
)

// Op is a comparison operator in a query condition.
type Op int

const (
	// Eq matches values equal to the operand (case-insensitive).
	Eq Op = iota
	// Contains matches values containing the operand (case-insensitive).
	Contains
	// Lt matches numerically smaller values.
	Lt
	// Gt matches numerically larger values.
	Gt
)

func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Contains:
		return "contains"
	case Lt:
		return "<"
	case Gt:
		return ">"
	}
	return "?"
}

// Condition restricts one mediated-schema attribute.
type Condition struct {
	// Attribute is a mediated-schema leaf tag.
	Attribute string
	Op        Op
	// Value is the operand; for Lt/Gt it must parse as a number, and
	// listing values are parsed leniently ($ and commas stripped).
	Value string
}

// Query is a conjunctive query over the mediated schema.
type Query struct {
	// Select lists the mediated attributes to return; empty means all.
	Select []string
	// Where are the conjunctive conditions.
	Where []Condition
}

// RegisteredSource is one data source attached to the engine: its
// listings plus the (LSD-proposed, user-confirmed) mapping.
type RegisteredSource struct {
	Name       string
	Listings   []*xmltree.Node
	translator *transform.Translator
}

// Engine answers mediated-schema queries from registered sources.
type Engine struct {
	mediated *dtd.Schema
	sources  []*RegisteredSource
}

// NewEngine builds an engine over the mediated schema.
func NewEngine(mediated *dtd.Schema) *Engine {
	return &Engine{mediated: mediated}
}

// Register attaches a source through its semantic mapping. Sources
// whose mapping does not cover an attribute simply return no bindings
// for it.
func (e *Engine) Register(name string, listings []*xmltree.Node, mapping constraint.Assignment) error {
	tr, err := transform.New(e.mediated, mapping)
	if err != nil {
		return fmt.Errorf("integrate: register %s: %w", name, err)
	}
	e.sources = append(e.sources, &RegisteredSource{
		Name: name, Listings: listings, translator: tr,
	})
	return nil
}

// Sources returns the registered source names.
func (e *Engine) Sources() []string {
	out := make([]string, len(e.sources))
	for i, s := range e.sources {
		out[i] = s.Name
	}
	return out
}

// Result is one answer tuple: the source it came from and the selected
// attribute bindings.
type Result struct {
	Source string
	Values map[string]string
}

// Execute answers the query: every source's listings are translated
// into the mediated schema, filtered by the conditions, and projected
// onto the selected attributes. Results keep source order, then listing
// order.
func (e *Engine) Execute(q Query) ([]Result, error) {
	for _, c := range q.Where {
		if e.mediated.Element(c.Attribute) == nil {
			return nil, fmt.Errorf("integrate: unknown attribute %q", c.Attribute)
		}
		if (c.Op == Lt || c.Op == Gt) && !isNumber(c.Value) {
			return nil, fmt.Errorf("integrate: %s needs a numeric operand, got %q", c.Op, c.Value)
		}
	}
	selected := q.Select
	if len(selected) == 0 {
		for _, tag := range e.mediated.Tags() {
			if e.mediated.IsLeaf(tag) {
				selected = append(selected, tag)
			}
		}
	}
	var out []Result
	for _, src := range e.sources {
		for _, listing := range src.Listings {
			med := src.translator.Translate(listing)
			values := leafValues(med)
			if !matches(q.Where, values) {
				continue
			}
			row := make(map[string]string, len(selected))
			for _, attr := range selected {
				if v, ok := values[attr]; ok {
					row[attr] = v
				}
			}
			out = append(out, Result{Source: src.Name, Values: row})
		}
	}
	return out, nil
}

func leafValues(doc *xmltree.Node) map[string]string {
	out := make(map[string]string)
	doc.Walk(func(n *xmltree.Node, _ []string) {
		if n.IsLeaf() && n.Text != "" {
			if _, ok := out[n.Tag]; !ok {
				out[n.Tag] = n.Text
			}
		}
	})
	return out
}

func matches(conds []Condition, values map[string]string) bool {
	for _, c := range conds {
		v, ok := values[c.Attribute]
		if !ok {
			return false
		}
		switch c.Op {
		case Eq:
			if !strings.EqualFold(strings.TrimSpace(v), strings.TrimSpace(c.Value)) {
				return false
			}
		case Contains:
			if !strings.Contains(strings.ToLower(v), strings.ToLower(c.Value)) {
				return false
			}
		case Lt, Gt:
			nv, ok := parseNumber(v)
			if !ok {
				return false
			}
			op, _ := parseNumber(c.Value)
			if c.Op == Lt && !(nv < op) {
				return false
			}
			if c.Op == Gt && !(nv > op) {
				return false
			}
		}
	}
	return true
}

// parseNumber extracts the first number from a listing value, ignoring
// currency symbols, commas, units, and page furniture.
func parseNumber(s string) (float64, bool) {
	cleaned := strings.Map(func(r rune) rune {
		if unicode.IsDigit(r) || r == '.' {
			return r
		}
		if r == ',' {
			return -1
		}
		return ' '
	}, s)
	for _, f := range strings.Fields(cleaned) {
		if v, err := strconv.ParseFloat(f, 64); err == nil {
			return v, true
		}
	}
	return 0, false
}

func isNumber(s string) bool {
	_, ok := parseNumber(s)
	return ok
}

// FormatResults renders results as an aligned text table.
func FormatResults(rs []Result, attrs []string) string {
	if len(attrs) == 0 {
		seen := map[string]bool{}
		for _, r := range rs {
			for a := range r.Values {
				if !seen[a] {
					seen[a] = true
					attrs = append(attrs, a)
				}
			}
		}
		sort.Strings(attrs)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "SOURCE")
	for _, a := range attrs {
		fmt.Fprintf(&b, " %-22s", a)
	}
	b.WriteString("\n")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-22s", r.Source)
		for _, a := range attrs {
			fmt.Fprintf(&b, " %-22s", r.Values[a])
		}
		b.WriteString("\n")
	}
	return b.String()
}
