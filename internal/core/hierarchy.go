package core

import (
	"repro/internal/learn"
)

// LabelHierarchy is the §7 extension for ambiguous tags: a taxonomy
// over mediated labels in which each label refers to a concept more
// general than its descendants (CREDIT above COURSE-CREDIT and
// SECTION-CREDIT). When a source tag's prediction cannot separate two
// sibling labels, LSD matches the tag with the most specific
// unambiguous ancestor and leaves the final choice to the user.
type LabelHierarchy struct {
	parent map[string]string
}

// NewLabelHierarchy builds a hierarchy from child → parent edges.
// Labels absent from the map are roots.
func NewLabelHierarchy(parentOf map[string]string) *LabelHierarchy {
	cp := make(map[string]string, len(parentOf))
	for c, p := range parentOf {
		cp[c] = p
	}
	return &LabelHierarchy{parent: cp}
}

// Parent returns the immediate ancestor of label, or "".
func (h *LabelHierarchy) Parent(label string) string { return h.parent[label] }

// ParentMap returns a copy of the child → parent edges, the inverse of
// NewLabelHierarchy; model artifacts serialize hierarchies through it.
func (h *LabelHierarchy) ParentMap() map[string]string {
	cp := make(map[string]string, len(h.parent))
	for c, p := range h.parent {
		cp[c] = p
	}
	return cp
}

// Ancestors returns the chain of ancestors of label, nearest first.
func (h *LabelHierarchy) Ancestors(label string) []string {
	var out []string
	seen := map[string]bool{label: true}
	for p := h.parent[label]; p != "" && !seen[p]; p = h.parent[p] {
		out = append(out, p)
		seen[p] = true
	}
	return out
}

// CommonAncestor returns the nearest common ancestor of a and b, or ""
// when they share none.
func (h *LabelHierarchy) CommonAncestor(a, b string) string {
	up := map[string]bool{}
	for _, anc := range h.Ancestors(a) {
		up[anc] = true
	}
	for _, anc := range h.Ancestors(b) {
		if up[anc] {
			return anc
		}
	}
	return ""
}

// AmbiguityRatio is the default closeness threshold for Suggest: the
// runner-up must score at least this fraction of the winner for the
// prediction to count as ambiguous.
const AmbiguityRatio = 0.8

// Suggest inspects a tag's converter prediction. If the top two labels
// are ambiguous (runner-up ≥ ratio × winner) and share a common
// ancestor, it returns that ancestor and true: the partial mapping of
// §7. Otherwise it returns "" and false.
func (h *LabelHierarchy) Suggest(p learn.Prediction, ratio float64) (string, bool) {
	if h == nil || len(p) < 2 {
		return "", false
	}
	first, second := "", ""
	var s1, s2 float64
	for _, c := range p.Labels() {
		s := p[c]
		switch {
		case s > s1:
			second, s2 = first, s1
			first, s1 = c, s
		case s > s2:
			second, s2 = c, s
		}
	}
	if s1 <= 0 || s2 < ratio*s1 {
		return "", false
	}
	anc := h.CommonAncestor(first, second)
	if anc == "" {
		return "", false
	}
	return anc, true
}
