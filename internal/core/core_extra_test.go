package core

import (
	"context"
	"testing"

	"repro/internal/constraint"
	"repro/internal/learn"
)

func TestTrainDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	run := func() constraint.Assignment {
		sys, err := Train(tinyMediated(), tinySources(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Match(context.Background(), greatHomes())
		if err != nil {
			t.Fatal(err)
		}
		return res.Mapping
	}
	a, b := run(), run()
	for tag, label := range a {
		if b[tag] != label {
			t.Errorf("non-deterministic mapping for %s: %q vs %q", tag, label, b[tag])
		}
	}
}

func TestSeedChangesCVButStaysCorrect(t *testing.T) {
	// Different seeds shuffle cross-validation folds; on this easy
	// domain the final mapping must stay correct either way.
	for _, seed := range []int64{1, 99} {
		cfg := DefaultConfig()
		cfg.Seed = seed
		sys, err := Train(tinyMediated(), tinySources(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Match(context.Background(), greatHomes())
		if err != nil {
			t.Fatal(err)
		}
		if res.Mapping["extra-info"] != "DESCRIPTION" {
			t.Errorf("seed %d: extra-info = %q", seed, res.Mapping["extra-info"])
		}
	}
}

func TestCustomHandlerConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Handler = &constraint.Handler{
		Alpha:         1,
		TopK:          2,
		MaxExpansions: 1000,
		Epsilon:       1,
	}
	sys, err := Train(tinyMediated(), tinySources(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Match(context.Background(), greatHomes())
	if err != nil {
		t.Fatal(err)
	}
	if res.Handler == nil {
		t.Fatal("custom handler config produced no handler result")
	}
	if res.Handler.Expansions > 1000 {
		t.Errorf("expansions %d exceed configured cap", res.Handler.Expansions)
	}
}

func TestXMLLearnerOnlyConfig(t *testing.T) {
	// The XML learner can run without any other base learner; its
	// match-phase node labeler then falls back to source tags.
	cfg := Config{
		UseXMLLearner:        true,
		UseConstraintHandler: false,
		Seed:                 1,
	}
	sys, err := Train(tinyMediated(), tinySources(), cfg)
	if err != nil {
		t.Fatalf("XML-only train: %v", err)
	}
	if len(sys.LearnerNames()) != 1 || sys.LearnerNames()[0] != "XMLLearner" {
		t.Errorf("LearnerNames = %v", sys.LearnerNames())
	}
	if _, err := sys.Match(context.Background(), greatHomes()); err != nil {
		t.Fatalf("XML-only match: %v", err)
	}
}

func TestMaxListingsLimitsTraining(t *testing.T) {
	med := tinyMediated()
	sources := tinySources()
	full := ExtractExamples(med, sources, 0)
	capped := ExtractExamples(med, sources, 2)
	if len(capped) >= len(full) {
		t.Errorf("MaxListings did not reduce examples: %d vs %d", len(capped), len(full))
	}
}

func TestMatchableTags(t *testing.T) {
	src := greatHomes()
	tags := src.MatchableTags()
	if len(tags) != 4 {
		t.Errorf("MatchableTags = %v", tags)
	}
	src.Mapping["extra-info"] = learn.Other
	if len(src.MatchableTags()) != 3 {
		t.Errorf("OTHER tag still matchable: %v", src.MatchableTags())
	}
}

func TestLabelOfDefaultsToOther(t *testing.T) {
	src := &Source{Mapping: map[string]string{"a": "X"}}
	if src.LabelOf("a") != "X" {
		t.Error("explicit mapping ignored")
	}
	if src.LabelOf("unknown") != learn.Other {
		t.Error("missing tag should default to OTHER")
	}
}

func TestNewInstanceSynonyms(t *testing.T) {
	med := tinyMediated()
	med.Synonyms = map[string][]string{"tel": {"telephone", "phone"}}
	n := greatHomes().Listings[0].First("work-phone")
	in := NewInstance(med, n, []string{"gh-item", "work-phone"})
	if len(in.Synonyms) != 0 {
		t.Errorf("unexpected synonyms for work-phone: %v", in.Synonyms)
	}
	n2 := &Source{}
	_ = n2
	telNode := greatHomes().Listings[0].Clone()
	telNode.Tag = "contact-tel"
	in2 := NewInstance(med, telNode, []string{"contact-tel"})
	want := 2 // telephone, phone
	if len(in2.Synonyms) != want {
		t.Errorf("Synonyms = %v, want 2 entries", in2.Synonyms)
	}
}

func TestBuildConstraintSourceRows(t *testing.T) {
	src := greatHomes()
	cols, err := CollectColumns(context.Background(), nil, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	csrc := BuildConstraintSource(src, cols, 0)
	if len(csrc.Rows) != len(src.Listings) {
		t.Fatalf("rows = %d, want %d", len(csrc.Rows), len(src.Listings))
	}
	if csrc.Rows[0]["area"] != "Orlando, FL" {
		t.Errorf("row content = %v", csrc.Rows[0])
	}
	if len(csrc.Columns["area"]) != 3 {
		t.Errorf("area column = %v", csrc.Columns["area"])
	}
	if csrc.Schema != src.Schema {
		t.Error("schema not threaded through")
	}
}

func TestWrongTagsSorted(t *testing.T) {
	src := greatHomes()
	m := constraint.Assignment{
		"gh-item": "WRONG", "area": "WRONG",
		"extra-info": "DESCRIPTION", "work-phone": "AGENT-PHONE",
	}
	wrong := WrongTags(src, m)
	if len(wrong) != 2 || wrong[0] != "area" || wrong[1] != "gh-item" {
		t.Errorf("WrongTags = %v", wrong)
	}
}
