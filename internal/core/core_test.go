package core

import (
	"context"
	"testing"

	"repro/internal/constraint"
	"repro/internal/dtd"
	"repro/internal/learn"
	"repro/internal/xmltree"
)

// tinyDomain builds a miniature real-estate domain with two training
// sources and one test source, mirroring the paper's running example
// (Figures 2, 5, 6).
func tinyMediated() *Mediated {
	return &Mediated{
		Schema: dtd.MustParse(`
<!ELEMENT LISTING (ADDRESS, DESCRIPTION, AGENT-PHONE)>
<!ELEMENT ADDRESS (#PCDATA)>
<!ELEMENT DESCRIPTION (#PCDATA)>
<!ELEMENT AGENT-PHONE (#PCDATA)>
`),
		Constraints: []constraint.Constraint{
			constraint.AtMostOne("ADDRESS"),
			constraint.AtMostOne("DESCRIPTION"),
			constraint.AtMostOne("AGENT-PHONE"),
		},
	}
}

func listing(tagAddr, addr, tagDesc, desc, tagPhone, phone string, rootTag string) *xmltree.Node {
	return xmltree.NewParent(rootTag,
		xmltree.New(tagAddr, addr),
		xmltree.New(tagDesc, desc),
		xmltree.New(tagPhone, phone),
	)
}

func tinySources() []*Source {
	// realestate.com (Figure 5): location, comments, contact.
	s1 := &Source{
		Name: "realestate.com",
		Schema: dtd.MustParse(`
<!ELEMENT re-listing (location, comments, contact)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT comments (#PCDATA)>
<!ELEMENT contact (#PCDATA)>
`),
		Mapping: map[string]string{
			"re-listing": "LISTING", "location": "ADDRESS",
			"comments": "DESCRIPTION", "contact": "AGENT-PHONE",
		},
		Listings: []*xmltree.Node{
			listing("location", "Miami, FL", "comments", "Nice area with great views", "contact", "(305) 729 0831", "re-listing"),
			listing("location", "Boston, MA", "comments", "Close to the river, fantastic yard", "contact", "(617) 253 1429", "re-listing"),
			listing("location", "Seattle, WA", "comments", "Great location, beautiful kitchen", "contact", "(206) 523 4719", "re-listing"),
			listing("location", "Denver, CO", "comments", "Fantastic house near a great park", "contact", "(303) 555 0101", "re-listing"),
		},
	}
	// homeseekers.com: house-addr, detailed-desc, phone.
	s2 := &Source{
		Name: "homeseekers.com",
		Schema: dtd.MustParse(`
<!ELEMENT hs-entry (house-addr, detailed-desc, phone)>
<!ELEMENT house-addr (#PCDATA)>
<!ELEMENT detailed-desc (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
`),
		Mapping: map[string]string{
			"hs-entry": "LISTING", "house-addr": "ADDRESS",
			"detailed-desc": "DESCRIPTION", "phone": "AGENT-PHONE",
		},
		Listings: []*xmltree.Node{
			listing("house-addr", "Seattle, WA", "detailed-desc", "Fantastic backyard and a great deck", "phone", "(206) 753 2605", "hs-entry"),
			listing("house-addr", "Portland, OR", "detailed-desc", "Great yard, wonderful neighborhood", "phone", "(515) 273 4312", "hs-entry"),
			listing("house-addr", "Austin, TX", "detailed-desc", "Beautiful house with a fantastic view", "phone", "(512) 555 0110", "hs-entry"),
			listing("house-addr", "Tacoma, WA", "detailed-desc", "Charming garden, great schools", "phone", "(253) 555 0188", "hs-entry"),
		},
	}
	return []*Source{s1, s2}
}

func greatHomes() *Source {
	// greathomes.com (Figure 6): area, extra-info, work-phone.
	return &Source{
		Name: "greathomes.com",
		Schema: dtd.MustParse(`
<!ELEMENT gh-item (area, extra-info, work-phone)>
<!ELEMENT area (#PCDATA)>
<!ELEMENT extra-info (#PCDATA)>
<!ELEMENT work-phone (#PCDATA)>
`),
		Mapping: map[string]string{
			"gh-item": "LISTING", "area": "ADDRESS",
			"extra-info": "DESCRIPTION", "work-phone": "AGENT-PHONE",
		},
		Listings: []*xmltree.Node{
			listing("area", "Orlando, FL", "extra-info", "Spacious house, great beach nearby", "work-phone", "(315) 237 4379", "gh-item"),
			listing("area", "Kent, WA", "extra-info", "Close to highway, fantastic price", "work-phone", "(415) 273 1234", "gh-item"),
			listing("area", "Portland, OR", "extra-info", "Great location, beautiful street", "work-phone", "(515) 237 4244", "gh-item"),
		},
	}
}

func trainTiny(t *testing.T, cfg Config) *System {
	t.Helper()
	sys, err := Train(tinyMediated(), tinySources(), cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return sys
}

// TestPaperRunningExample reproduces the paper's flagship flow: train
// on realestate.com and homeseekers.com, then match greathomes.com.
func TestPaperRunningExample(t *testing.T) {
	sys := trainTiny(t, DefaultConfig())
	res, err := sys.Match(context.Background(), greatHomes())
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	want := map[string]string{
		"area":       "ADDRESS",
		"extra-info": "DESCRIPTION",
		"work-phone": "AGENT-PHONE",
	}
	for tag, label := range want {
		if res.Mapping[tag] != label {
			t.Errorf("mapping[%s] = %q, want %q (predictions: %v)",
				tag, res.Mapping[tag], label, res.TagPredictions[tag])
		}
	}
	if acc := Accuracy(greatHomes(), res.Mapping); acc != 1 {
		t.Errorf("accuracy = %g, want 1 (wrong: %v)", acc, WrongTags(greatHomes(), res.Mapping))
	}
}

func TestMatchWithoutConstraintHandler(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseConstraintHandler = false
	sys := trainTiny(t, cfg)
	res, err := sys.Match(context.Background(), greatHomes())
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if res.Handler != nil {
		t.Error("greedy config returned handler result")
	}
	if len(res.Mapping) != 4 {
		t.Errorf("mapping size = %d, want 4", len(res.Mapping))
	}
}

func TestMatchWithFeedback(t *testing.T) {
	sys := trainTiny(t, DefaultConfig())
	// Force an (incorrect) label via feedback and check it sticks: the
	// constraint handler must respect user equality constraints.
	res, err := sys.Match(context.Background(), greatHomes(), constraint.MustMatch("area", "DESCRIPTION"))
	if err != nil {
		t.Fatalf("Match with feedback: %v", err)
	}
	if res.Mapping["area"] != "DESCRIPTION" {
		t.Errorf("feedback not honoured: %v", res.Mapping)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, DefaultConfig()); err == nil {
		t.Error("nil mediated accepted")
	}
	cfg := Config{}
	if _, err := Train(tinyMediated(), tinySources(), cfg); err == nil {
		t.Error("no learners accepted")
	}
}

func TestMatchErrors(t *testing.T) {
	sys := trainTiny(t, DefaultConfig())
	if _, err := sys.Match(context.Background(), nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestLabelsIncludeOther(t *testing.T) {
	med := tinyMediated()
	labels := med.Labels()
	found := false
	for _, l := range labels {
		if l == learn.Other {
			found = true
		}
	}
	if !found {
		t.Errorf("Labels() = %v, missing OTHER", labels)
	}
	if len(labels) != 5 {
		t.Errorf("len(Labels) = %d, want 5", len(labels))
	}
}

func TestExtractExamples(t *testing.T) {
	med := tinyMediated()
	sources := tinySources()
	examples := ExtractExamples(med, sources, 0)
	// 8 listings x 4 nodes each.
	if len(examples) != 32 {
		t.Fatalf("examples = %d, want 32", len(examples))
	}
	// Labels follow the source mappings.
	for _, ex := range examples {
		if ex.Instance.TagName == "location" && ex.Label != "ADDRESS" {
			t.Errorf("location labelled %q", ex.Label)
		}
		if ex.Instance.TagName == "hs-entry" && ex.Label != "LISTING" {
			t.Errorf("hs-entry labelled %q", ex.Label)
		}
	}
	// MaxListings caps per source.
	capped := ExtractExamples(med, sources, 1)
	if len(capped) != 8 {
		t.Errorf("capped examples = %d, want 8", len(capped))
	}
}

func TestCollectColumns(t *testing.T) {
	cols, err := CollectColumns(context.Background(), nil, greatHomes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols["area"]) != 3 {
		t.Errorf("area column = %d instances, want 3", len(cols["area"]))
	}
	if len(cols["gh-item"]) != 3 {
		t.Errorf("root column = %d instances, want 3", len(cols["gh-item"]))
	}
	// Paths recorded root-first.
	in := cols["area"][0]
	if len(in.Path) != 2 || in.Path[0] != "gh-item" {
		t.Errorf("instance path = %v", in.Path)
	}
}

func TestAccuracyAndWrongTags(t *testing.T) {
	src := greatHomes()
	m := constraint.Assignment{
		"gh-item": "LISTING", "area": "ADDRESS",
		"extra-info": "DESCRIPTION", "work-phone": "OTHER",
	}
	if acc := Accuracy(src, m); acc != 0.75 {
		t.Errorf("Accuracy = %g, want 0.75", acc)
	}
	wrong := WrongTags(src, m)
	if len(wrong) != 1 || wrong[0] != "work-phone" {
		t.Errorf("WrongTags = %v", wrong)
	}
}

func TestStackerExposed(t *testing.T) {
	sys := trainTiny(t, DefaultConfig())
	if sys.Stacker() == nil {
		t.Fatal("Stacker() nil")
	}
	names := sys.LearnerNames()
	if len(names) != 4 { // name, content, NB, XML
		t.Errorf("LearnerNames = %v", names)
	}
}

// TestMatchEmptyColumns: a source tag with no data instances still
// receives a prediction (name-only path).
func TestMatchEmptyColumns(t *testing.T) {
	sys := trainTiny(t, DefaultConfig())
	src := greatHomes()
	// A schema with an extra declared tag that never appears in data.
	src.Schema = dtd.MustParse(`
<!ELEMENT gh-item (area, extra-info, work-phone, location?)>
<!ELEMENT area (#PCDATA)>
<!ELEMENT extra-info (#PCDATA)>
<!ELEMENT work-phone (#PCDATA)>
<!ELEMENT location (#PCDATA)>
`)
	res, err := sys.Match(context.Background(), src)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if _, ok := res.Mapping["location"]; !ok {
		t.Error("dataless tag got no mapping")
	}
	if res.Mapping["location"] == "" {
		t.Error("dataless tag mapped to empty label")
	}
}
