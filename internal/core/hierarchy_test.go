package core

import (
	"context"
	"testing"

	"repro/internal/learn"
)

// creditHierarchy models the §7 example: CREDIT generalizes
// COURSE-CREDIT and SECTION-CREDIT.
func creditHierarchy() *LabelHierarchy {
	return NewLabelHierarchy(map[string]string{
		"COURSE-CREDIT":  "CREDIT",
		"SECTION-CREDIT": "CREDIT",
		"CREDIT":         "COURSE-ATTR",
	})
}

func TestAncestors(t *testing.T) {
	h := creditHierarchy()
	anc := h.Ancestors("COURSE-CREDIT")
	if len(anc) != 2 || anc[0] != "CREDIT" || anc[1] != "COURSE-ATTR" {
		t.Errorf("Ancestors = %v", anc)
	}
	if len(h.Ancestors("COURSE-ATTR")) != 0 {
		t.Error("root has ancestors")
	}
}

func TestAncestorsCycleSafe(t *testing.T) {
	h := NewLabelHierarchy(map[string]string{"A": "B", "B": "A"})
	if got := h.Ancestors("A"); len(got) != 1 || got[0] != "B" {
		t.Errorf("cyclic Ancestors = %v", got)
	}
}

func TestCommonAncestor(t *testing.T) {
	h := creditHierarchy()
	if got := h.CommonAncestor("COURSE-CREDIT", "SECTION-CREDIT"); got != "CREDIT" {
		t.Errorf("CommonAncestor = %q, want CREDIT", got)
	}
	if got := h.CommonAncestor("COURSE-CREDIT", "UNRELATED"); got != "" {
		t.Errorf("unrelated CommonAncestor = %q", got)
	}
}

// TestSuggestAmbiguousCredit reproduces §7's "course-code: CSE142
// section: 2 credits: 3" case: the prediction cannot separate course-
// from section-credits, so LSD suggests the general CREDIT label.
func TestSuggestAmbiguousCredit(t *testing.T) {
	h := creditHierarchy()
	p := learn.Prediction{
		"COURSE-CREDIT":  0.42,
		"SECTION-CREDIT": 0.40,
		"ENROLLMENT":     0.18,
	}
	got, ok := h.Suggest(p, AmbiguityRatio)
	if !ok || got != "CREDIT" {
		t.Errorf("Suggest = %q, %v; want CREDIT, true", got, ok)
	}
}

func TestSuggestUnambiguous(t *testing.T) {
	h := creditHierarchy()
	p := learn.Prediction{
		"COURSE-CREDIT":  0.8,
		"SECTION-CREDIT": 0.1,
		"ENROLLMENT":     0.1,
	}
	if got, ok := h.Suggest(p, AmbiguityRatio); ok {
		t.Errorf("confident prediction suggested %q", got)
	}
}

func TestSuggestNoCommonAncestor(t *testing.T) {
	h := creditHierarchy()
	p := learn.Prediction{
		"COURSE-CREDIT": 0.5,
		"ENROLLMENT":    0.45,
	}
	if got, ok := h.Suggest(p, AmbiguityRatio); ok {
		t.Errorf("unrelated labels suggested %q", got)
	}
}

func TestSuggestNilAndSmall(t *testing.T) {
	var h *LabelHierarchy
	if _, ok := h.Suggest(learn.Prediction{"A": 1, "B": 1}, 0.8); ok {
		t.Error("nil hierarchy suggested")
	}
	h = creditHierarchy()
	if _, ok := h.Suggest(learn.Prediction{"A": 1}, 0.8); ok {
		t.Error("single-label prediction suggested")
	}
}

// TestMatchPopulatesPartial wires the hierarchy through Match.
func TestMatchPopulatesPartial(t *testing.T) {
	med := tinyMediated()
	med.Hierarchy = NewLabelHierarchy(map[string]string{
		"ADDRESS":     "LOCATION-ATTR",
		"DESCRIPTION": "LOCATION-ATTR",
	})
	sys, err := Train(med, tinySources(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Match(context.Background(), greatHomes())
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial == nil {
		t.Fatal("Partial not populated despite hierarchy")
	}
	// Confident predictions should not produce partial suggestions for
	// the well-separated tags; the map may be empty, which is fine —
	// what matters is that any present entries name hierarchy labels.
	for tag, anc := range res.Partial {
		if anc != "LOCATION-ATTR" {
			t.Errorf("Partial[%s] = %q, not a hierarchy ancestor", tag, anc)
		}
	}
}
