package core

import (
	"strings"
	"sync"

	"repro/internal/xmltree"
)

// memoShards is the fixed shard count of the core memo tables; like
// WHIRL's prediction cache it only tunes lock contention (concurrent
// CV folds, parallel match workers, concurrent serve requests all
// consult one table) and never affects which value is returned.
const memoShards = 8

// maxMemoEntries bounds each memo table across all shards and both
// generations.
const maxMemoEntries = 8192

// perMemoGen bounds each shard's current generation.
const perMemoGen = maxMemoEntries / memoShards / 2

// memo is a bounded, sharded, two-generation memo table keyed by
// instance key. It backs both the ensemble labeler's label cache and
// the system's combined-prediction cache. The labeler's predecessor
// was keyed by node pointer, which meant every serve request's freshly
// parsed nodes missed — and the entries for those dead nodes
// accumulated without bound across requests. Keying by the textual
// instance key (tag, path, content — exactly the features the
// learners read) makes entries shareable across requests and
// listings, and two-generation rotation bounds the footprint. Values
// are pure functions of the trained system, so racing workers that
// both miss compute the same value and determinism is preserved.
type memo[V any] struct {
	shards [memoShards]memoShard[V]
}

// memoShard is one lock domain of a memo table, with the same
// two-generation eviction semantics as WHIRL's prediction cache:
// inserts fill cur, a full cur rotates into old, old-generation hits
// are promoted back.
type memoShard[V any] struct {
	mu sync.Mutex
	// cur is the current generation, filled by inserts and promotions.
	cur map[string]V // guarded by mu
	// old is the previous generation, read-only until dropped by the
	// next rotation.
	old map[string]V // guarded by mu
}

// get looks key up; a nil table misses everything, so an uninitialized
// cache degrades to recomputation rather than a panic.
func (m *memo[V]) get(key string) (V, bool) {
	if m == nil {
		var zero V
		return zero, false
	}
	return m.shards[cacheHash(key)%memoShards].get(key)
}

// put records key's value; a nil table drops it.
func (m *memo[V]) put(key string, v V) {
	if m == nil {
		return
	}
	m.shards[cacheHash(key)%memoShards].put(key, v)
}

// cacheHash is 32-bit FNV-1a.
func cacheHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// get looks key up in both generations, promoting an old-generation
// hit so hot entries survive rotation.
func (sh *memoShard[V]) get(key string) (V, bool) {
	sh.mu.Lock()
	v, ok := sh.cur[key]
	if !ok {
		if v, ok = sh.old[key]; ok {
			if len(sh.cur) >= perMemoGen {
				sh.old = sh.cur
				sh.cur = make(map[string]V, 64)
			}
			if sh.cur == nil {
				sh.cur = make(map[string]V, 64)
			}
			sh.cur[key] = v
		}
	}
	sh.mu.Unlock()
	return v, ok
}

// put records v in the current generation, rotating when full.
func (sh *memoShard[V]) put(key string, v V) {
	sh.mu.Lock()
	if sh.cur == nil {
		sh.cur = make(map[string]V, 64)
	}
	if _, exists := sh.cur[key]; !exists && len(sh.cur) >= perMemoGen {
		sh.old = sh.cur
		sh.cur = make(map[string]V, 64)
	}
	sh.cur[key] = v
	sh.mu.Unlock()
}

// instanceKey is the textual identity of an instance for caching and
// batch deduplication: tag name, root path, and content, separated by
// a byte that cannot occur in XML tag names. For leaf and text-only
// instances this covers every feature any learner reads (the name
// matcher's expanded name is tag + path + synonyms, and synonyms are
// a pure function of the tag; all other learners read only the
// content), so equal keys imply bit-identical predictions.
func instanceKey(tag string, path []string, content string) string {
	n := len(tag) + len(content) + len(path) + 2
	for _, p := range path {
		n += len(p)
	}
	var b strings.Builder
	b.Grow(n)
	b.WriteString(tag)
	b.WriteByte(0x1f)
	for _, p := range path {
		b.WriteString(p)
		b.WriteByte(0x1e)
	}
	b.WriteByte(0x1f)
	b.WriteString(content)
	return b.String()
}

// interiorKey is the textual identity of an interior-node instance:
// root path plus a lossless serialization of the whole subtree. Every
// feature any learner reads from an interior instance derives from the
// subtree and the path — the tag is the subtree root's, synonyms are a
// pure function of the tag, Content() concatenates the subtree's text,
// and the XML learner's structural tokens (including the child labels
// its match labeler assigns from each child's tag, path, and content)
// walk the same tree — so equal keys imply bit-identical predictions.
// The 0x1c prefix byte, impossible in a tag name, keeps the interior
// keyspace disjoint from instanceKey's.
func interiorKey(path []string, n *xmltree.Node) string {
	var b strings.Builder
	b.Grow(64 + n.Size()*16)
	b.WriteByte(0x1c)
	for _, p := range path {
		b.WriteString(p)
		b.WriteByte(0x1e)
	}
	b.WriteByte(0x1f)
	writeSubtree(&b, n)
	return b.String()
}

// writeSubtree appends an unambiguous serialization of n: tag and text
// separated by 0x1d, each child wrapped in 0x1c…0x1e. XML character
// data cannot contain these control bytes, so distinct trees always
// serialize distinctly.
func writeSubtree(b *strings.Builder, n *xmltree.Node) {
	b.WriteString(n.Tag)
	b.WriteByte(0x1d)
	b.WriteString(n.Text)
	for _, c := range n.Children {
		b.WriteByte(0x1c)
		writeSubtree(b, c)
		b.WriteByte(0x1e)
	}
}
