// Trained-system snapshot and restore: the bridge between the training
// pipeline and the model-artifact layer (internal/artifact). A System
// is immutable after Train — frozen vocabularies, precomputed tables,
// fitted weights — so its state is plain data plus the small amount of
// wiring (the XML learner's ensemble labeler) FromState rebuilds.
package core

import (
	"fmt"

	"repro/internal/constraint"
	"repro/internal/dtd"
	"repro/internal/learn"
	"repro/internal/learners/xmllearner"
	"repro/internal/meta"
)

// SystemState is the serializable view of a trained System. Learner
// instances appear as trained learn.Learner values; the artifact layer
// owns turning each concrete learner type into bytes and back.
type SystemState struct {
	// Config carries the matching-phase knobs (converter mode,
	// constraint handler, listing cap, seed). BaseLearners, Handler,
	// and Workers do not survive serialization: the first two are code,
	// and the worker budget belongs to the process serving the model,
	// not the process that trained it.
	Config Config
	// MediatedDTD is the mediated schema as DTD text.
	MediatedDTD string
	// ConstraintSpecs describe the mediated constraints
	// (constraint.Describe); constraints whose behaviour is code
	// (opaque user types, BinarySoft closures) cannot be captured and
	// are counted in DroppedConstraints instead.
	ConstraintSpecs []constraint.Spec
	// DroppedConstraints counts constraints State could not describe.
	DroppedConstraints int
	// Synonyms and HierarchyParent mirror Mediated.
	Synonyms        map[string][]string
	HierarchyParent map[string]string

	Labels   []string
	Names    []string
	Learners []learn.Learner
	Stacker  *meta.Stacker

	// The interim ensemble consulted by the XML learner's matching
	// labeler; empty when the XML learner is absent or stand-alone.
	InterimNames    []string
	InterimLearners []learn.Learner
	InterimStacker  *meta.Stacker
}

// State snapshots the trained system.
func (s *System) State() *SystemState {
	st := &SystemState{
		Config:          s.cfg,
		MediatedDTD:     s.mediated.Schema.String(),
		Synonyms:        s.mediated.Synonyms,
		Labels:          append([]string(nil), s.labels...),
		Names:           append([]string(nil), s.names...),
		Learners:        append([]learn.Learner(nil), s.learners...),
		Stacker:         s.stacker,
		InterimNames:    append([]string(nil), s.interimNames...),
		InterimLearners: append([]learn.Learner(nil), s.interimLearners...),
		InterimStacker:  s.interimStacker,
	}
	st.Config.BaseLearners = nil
	st.Config.Handler = nil
	st.Config.Workers = 0
	if s.mediated.Hierarchy != nil {
		st.HierarchyParent = s.mediated.Hierarchy.ParentMap()
	}
	for _, c := range s.mediated.Constraints {
		spec := constraint.Describe(c)
		if _, err := constraint.FromSpec(spec); err != nil {
			st.DroppedConstraints++
			continue
		}
		st.ConstraintSpecs = append(st.ConstraintSpecs, spec)
	}
	return st
}

// FromState rebuilds a trained System from a snapshot: it re-parses
// the mediated schema, reconstructs the constraint set from its specs,
// and re-wires the XML learner's matching labeler to the restored
// interim ensemble. workers sets the rebuilt system's worker budget
// (same semantics as Config.Workers).
func FromState(st *SystemState, workers int) (*System, error) {
	if st == nil {
		return nil, fmt.Errorf("core: nil system state")
	}
	if len(st.Names) != len(st.Learners) {
		return nil, fmt.Errorf("core: %d learner names for %d learners", len(st.Names), len(st.Learners))
	}
	if len(st.Learners) == 0 {
		return nil, fmt.Errorf("core: state has no learners")
	}
	if st.Stacker == nil {
		return nil, fmt.Errorf("core: state has no stacker")
	}
	if len(st.InterimNames) != len(st.InterimLearners) {
		return nil, fmt.Errorf("core: %d interim names for %d interim learners",
			len(st.InterimNames), len(st.InterimLearners))
	}
	schema, err := dtd.Parse(st.MediatedDTD)
	if err != nil {
		return nil, fmt.Errorf("core: mediated DTD: %w", err)
	}
	med := &Mediated{Schema: schema, Synonyms: st.Synonyms}
	for _, spec := range st.ConstraintSpecs {
		c, err := constraint.FromSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		med.Constraints = append(med.Constraints, c)
	}
	if len(st.HierarchyParent) > 0 {
		med.Hierarchy = NewLabelHierarchy(st.HierarchyParent)
	}

	cfg := st.Config
	cfg.Workers = workers
	sys := &System{
		cfg:      cfg,
		mediated: med,
		labels:   append([]string(nil), st.Labels...),
		names:    append([]string(nil), st.Names...),
		learners: append([]learn.Learner(nil), st.Learners...),
		stacker:  st.Stacker,
		combined: new(memo[learn.Prediction]),
	}
	if len(st.InterimLearners) > 0 {
		if st.InterimStacker == nil {
			return nil, fmt.Errorf("core: interim learners without an interim stacker")
		}
		sys.interimNames = append([]string(nil), st.InterimNames...)
		sys.interimLearners = append([]learn.Learner(nil), st.InterimLearners...)
		sys.interimStacker = st.InterimStacker
		labeler := &ensembleLabeler{
			mediated: med, learners: sys.interimLearners, stacker: sys.interimStacker,
		}
		for _, l := range sys.learners {
			if xl, ok := l.(*xmllearner.Learner); ok {
				xl.SetMatchLabeler(labeler)
			}
		}
	}
	return sys, nil
}

// WithWorkers returns a view of the system whose matching phase fans
// out on a pool of the given size (Config.Workers semantics). The view
// shares all trained state with the receiver — learners are immutable
// after training and safe for concurrent prediction — so the serving
// layer can honour a per-request worker budget without copying or
// re-locking anything.
func (s *System) WithWorkers(workers int) *System {
	if workers == s.cfg.Workers {
		return s
	}
	view := *s
	view.cfg.Workers = workers
	return &view
}

// WithBatchPredict returns a view of the system with the batched
// predict path enabled or disabled (Config.DisableBatchPredict). Like
// WithWorkers it shares all trained state; the determinism suite uses
// it to A/B the batched path against the per-instance reference on
// one trained system.
func (s *System) WithBatchPredict(enabled bool) *System {
	if s.cfg.DisableBatchPredict == !enabled {
		return s
	}
	view := *s
	view.cfg.DisableBatchPredict = !enabled
	return &view
}
