// Package core implements the LSD pipeline of §3: the training phase
// (manually specified mappings → data extraction → per-learner training
// sets → base-learner training → meta-learner training) and the
// matching phase (extract & collect data → match each source-DTD tag →
// apply the constraint handler).
package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/constraint"
	"repro/internal/dtd"
	"repro/internal/learn"
	"repro/internal/learners/contentmatcher"
	"repro/internal/learners/naivebayes"
	"repro/internal/learners/namematcher"
	"repro/internal/learners/xmllearner"
	"repro/internal/meta"
	"repro/internal/parallel"
	"repro/internal/pool"
	"repro/internal/xmltree"
)

// Mediated describes a domain's mediated schema: the DTD users query,
// the domain constraints specified alongside it, and optional synonym
// lists for source-tag expansion.
type Mediated struct {
	// Schema is the mediated DTD.
	Schema *dtd.Schema
	// Constraints are the domain constraints of §4.1, specified once
	// when the mediated schema is created.
	Constraints []constraint.Constraint
	// Synonyms maps a word to alternative words, used by the name
	// matcher's tag-name expansion.
	Synonyms map[string][]string
	// Hierarchy optionally arranges the labels in a taxonomy; ambiguous
	// tags are then also reported with their most specific unambiguous
	// ancestor label (the §7 partial-mapping extension).
	Hierarchy *LabelHierarchy
}

// Labels returns the classification label set: every mediated-schema
// tag plus the reserved OTHER label (§2.2).
func (m *Mediated) Labels() []string {
	tags := m.Schema.Tags()
	out := make([]string, 0, len(tags)+1)
	out = append(out, tags...)
	out = append(out, learn.Other)
	return out
}

// Source is one data source: its schema, its extracted listings, and —
// for training sources and evaluation — the true 1-1 mapping from
// source tags to mediated labels (unmatchable tags map to OTHER, and
// tags absent from the map are treated as OTHER).
type Source struct {
	Name     string
	Schema   *dtd.Schema
	Listings []*xmltree.Node
	Mapping  map[string]string
}

// LabelOf returns the true label of a source tag.
func (s *Source) LabelOf(tag string) string {
	if l, ok := s.Mapping[tag]; ok {
		return l
	}
	return learn.Other
}

// MatchableTags returns the source tags whose true label is not OTHER.
func (s *Source) MatchableTags() []string {
	var out []string
	for _, t := range s.Schema.Tags() {
		if s.LabelOf(t) != learn.Other {
			out = append(out, t)
		}
	}
	return out
}

// LearnerSpec names a base learner and supplies its factory.
type LearnerSpec struct {
	Name    string
	Factory learn.Factory
}

// Config selects the learners and components of an LSD instance. The
// zero value is not usable; start from DefaultConfig.
type Config struct {
	// BaseLearners are the non-structural base learners.
	//
	//lint:ignore statecodec learner factories are code, not data; artifacts persist each learner's trained state under its name and restore binds factories by name at load time
	BaseLearners []LearnerSpec
	// UseXMLLearner enables the XML learner of §5.
	UseXMLLearner bool
	// UseConstraintHandler enables the A* constraint handler; when
	// false, tags greedily take their best converter label (§3.2).
	UseConstraintHandler bool
	// Meta configures stacking.
	Meta meta.Config
	// Converter selects the prediction-converter mode.
	Converter meta.ConverterMode
	// MaxListings caps the listings used per source (0 = all); the
	// sensitivity experiments sweep this.
	MaxListings int
	// Handler tunes the A* search; nil uses defaults.
	//
	//lint:ignore statecodec the constraint handler holds domain constraints supplied per deployment, not trained state; artifacts deliberately exclude it (see state.go)
	Handler *constraint.Handler
	// Seed drives the cross-validation shuffles.
	Seed int64
	// DisableBatchPredict forces Match onto the per-instance Predict
	// path, bypassing learn.BatchPredictor batching and column-level
	// deduplication. A verification knob, not a tuning one: the
	// determinism suite A/Bs it to prove the batched and per-instance
	// paths produce bit-identical matches.
	//
	//lint:ignore statecodec an evaluation-strategy toggle with no effect on results (enforced by determinism tests), not trained state; persisting it would be meaningless
	DisableBatchPredict bool
	// Workers bounds the concurrency of training and matching: 0 (or
	// negative) uses one worker per CPU (runtime.GOMAXPROCS), 1 is the
	// serial fallback, n > 1 uses n workers. Every parallel stage
	// merges its results in deterministic task order, so Train and
	// Match produce bit-identical output at every setting.
	//
	//lint:ignore statecodec a process-local concurrency budget; persisting it would pin a saved model to the machine that trained it
	Workers int
}

// DefaultConfig returns the complete LSD system of the experiments:
// name matcher, content matcher, Naive Bayes, the XML learner, stacking
// with 5-fold CV, averaging converter, and the constraint handler.
func DefaultConfig() Config {
	return Config{
		BaseLearners: []LearnerSpec{
			{"NameMatcher", namematcher.Factory},
			{"ContentMatcher", contentmatcher.Factory},
			{"NaiveBayes", naivebayes.Factory},
		},
		UseXMLLearner:        true,
		UseConstraintHandler: true,
		Meta:                 meta.DefaultConfig(),
		Converter:            meta.Average,
		Seed:                 1,
	}
}

// System is a trained LSD instance.
type System struct {
	cfg      Config
	mediated *Mediated
	labels   []string
	names    []string
	learners []learn.Learner // trained, aligned with names
	stacker  *meta.Stacker
	// The interim ensemble is the non-XML learners stacked on their
	// own: the XML learner's matching-phase labeler consults it for
	// sub-element labels (Table 2). It is retained on the system so
	// model serialization can capture the complete matcher; nil when
	// the XML learner is disabled or has no base learners to consult.
	interimNames    []string
	interimLearners []learn.Learner
	interimStacker  *meta.Stacker
	// combined memoizes post-stacker predictions by instance key, so a
	// leaf value the system has scored before — in an earlier request,
	// another listing, or another tag — skips every learner and the
	// stacker entirely. A pointer, so WithWorkers/WithBatchPredict views
	// share it with the system they view. The reference (per-instance)
	// path never consults it.
	combined *memo[learn.Prediction]
}

// Train runs the training phase of §3.1 on the given training sources
// and returns a system ready to match new sources.
func Train(med *Mediated, sources []*Source, cfg Config) (*System, error) {
	if med == nil || med.Schema == nil {
		return nil, fmt.Errorf("core: nil mediated schema")
	}
	if len(cfg.BaseLearners) == 0 && !cfg.UseXMLLearner {
		return nil, fmt.Errorf("core: no learners configured")
	}
	labels := med.Labels()
	// Per-stage RNG seeds are derived, not shared: the interim and the
	// final meta-learner each get an independent stream, and meta.Train
	// derives one per learner from there, so every cross-validation
	// task owns its rand state and the fan-out stays deterministic.
	interimSeed := learn.DeriveSeed(cfg.Seed, 0)
	finalSeed := learn.DeriveSeed(cfg.Seed, 1)
	mcfg := cfg.Meta
	mcfg.Workers = cfg.Workers

	// Steps 2-3: extract data and create training examples. All
	// learners share the instance set; each extracts its own features.
	examples := ExtractExamples(med, sources, cfg.MaxListings)

	sys := &System{cfg: cfg, mediated: med, labels: labels, combined: new(memo[learn.Prediction])}

	// Step 4: train the base learners.
	factories := make([]learn.Factory, 0, len(cfg.BaseLearners)+1)
	for _, spec := range cfg.BaseLearners {
		sys.names = append(sys.names, spec.Name)
		factories = append(factories, spec.Factory)
	}

	if cfg.UseXMLLearner {
		// The XML learner labels sub-elements with the true mappings at
		// training time and with the rest of LSD at matching time
		// (Table 2). Build the interim ensemble first: the non-XML
		// learners stacked on their own.
		trainLab := trainLabeler(sources)
		var interim *ensembleLabeler
		if len(cfg.BaseLearners) > 0 {
			interimStack, err := meta.Train(labels, sys.names, factories, examples, mcfg, interimSeed)
			if err != nil {
				return nil, fmt.Errorf("core: interim meta-learner: %w", err)
			}
			interimLearners, err := trainAll(cfg.BaseLearners, labels, examples, cfg.Workers)
			if err != nil {
				return nil, err
			}
			interim = &ensembleLabeler{
				mediated: med, learners: interimLearners, stacker: interimStack,
			}
			sys.interimNames = append([]string(nil), sys.names...)
			sys.interimLearners = interimLearners
			sys.interimStacker = interimStack
		}
		xmlFactory := func() learn.Learner {
			l := xmllearner.New(trainLab, nil)
			if interim != nil {
				l.SetMatchLabeler(interim)
			}
			return l
		}
		sys.names = append(sys.names, "XMLLearner")
		factories = append(factories, xmlFactory)
	}

	// Train the final copies of every learner on the full training set.
	// Learners are independent instances, so they train concurrently.
	trained := make([]learn.Learner, len(factories))
	err := parallel.ForEach(context.Background(), cfg.Workers, len(factories), func(_ context.Context, i int) error {
		l := factories[i]()
		if err := l.Train(labels, examples); err != nil {
			return fmt.Errorf("core: training %s: %w", sys.names[i], err)
		}
		trained[i] = l
		return nil
	})
	if err != nil {
		return nil, err
	}
	sys.learners = trained

	// Step 5: train the meta-learner by stacking over all learners.
	stacker, err := meta.Train(labels, sys.names, factories, examples, mcfg, finalSeed)
	if err != nil {
		return nil, fmt.Errorf("core: meta-learner: %w", err)
	}
	sys.stacker = stacker
	return sys, nil
}

func trainAll(specs []LearnerSpec, labels []string, examples []learn.Example, workers int) ([]learn.Learner, error) {
	out := make([]learn.Learner, len(specs))
	err := parallel.ForEach(context.Background(), workers, len(specs), func(_ context.Context, i int) error {
		l := specs[i].Factory()
		if err := l.Train(labels, examples); err != nil {
			return fmt.Errorf("core: training %s: %w", specs[i].Name, err)
		}
		out[i] = l
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// trainLabeler builds the training-phase node labeler for the XML
// learner from the union of the training sources' true mappings.
func trainLabeler(sources []*Source) xmllearner.NodeLabeler {
	table := make(map[string]string)
	for _, s := range sources {
		for tag, label := range s.Mapping {
			if _, ok := table[tag]; !ok {
				table[tag] = label
			}
		}
	}
	return xmllearner.NodeLabelerFunc(func(n *xmltree.Node, _ []string) string {
		if l, ok := table[n.Tag]; ok {
			return l
		}
		return learn.Other
	})
}

// ensembleLabeler labels a node with the best combined prediction of a
// set of trained learners — the "LSD with other base learners" oracle
// the XML learner consults for sub-element labels. The labeler is
// fixed once trained, so labels memoize in a bounded cache keyed by
// the textual instance key (tag, path, content): unlike the old
// node-pointer key, entries are shared across cross-validation folds,
// listings, and serve requests (whose freshly parsed nodes always
// missed a pointer-keyed cache), and the two-generation bound stops
// the cache from growing with every request the process ever served.
type ensembleLabeler struct {
	mediated *Mediated
	learners []learn.Learner
	stacker  *meta.Stacker
	cache    memo[string]
}

// LabelNode implements xmllearner.NodeLabeler.
func (e *ensembleLabeler) LabelNode(n *xmltree.Node, path []string) string {
	content := n.Content()
	key := instanceKey(n.Tag, path, content)
	if label, ok := e.cache.get(key); ok {
		return label
	}
	in := learn.Instance{
		TagName:  n.Tag,
		Path:     append([]string(nil), path...),
		Synonyms: tagSynonyms(e.mediated, n.Tag),
		Content:  content,
		Node:     n,
	}
	preds := make([]learn.Prediction, len(e.learners))
	for i, l := range e.learners {
		preds[i] = l.Predict(in)
	}
	best, _ := e.stacker.Combine(preds).Best()
	if best == "" {
		best = learn.Other
	}
	e.cache.put(key, best)
	return best
}

// tagSynonyms expands a tag's words through the mediated schema's
// synonym lists — a pure function of the tag name, which is what
// makes the (tag, path, content) instance key exact for caching.
func tagSynonyms(med *Mediated, tag string) []string {
	var syns []string
	if med != nil {
		for _, w := range splitTag(tag) {
			syns = append(syns, med.Synonyms[w]...)
		}
	}
	return syns
}

// NewInstance builds the learner-facing instance for an element node.
func NewInstance(med *Mediated, n *xmltree.Node, path []string) learn.Instance {
	return learn.Instance{
		TagName:  n.Tag,
		Path:     append([]string(nil), path...),
		Synonyms: tagSynonyms(med, n.Tag),
		Content:  n.Content(),
		Node:     n,
	}
}

func splitTag(tag string) []string {
	// Slice the input rather than building each word rune by rune: the
	// pieces share tag's backing storage and the function allocates only
	// the out slice. Called once per node per learner via NewInstance,
	// so the churn of the byte-wise version was visible in match
	// profiles.
	var out []string
	start := -1
	for i, r := range tag {
		if r == '-' || r == '_' || r == ' ' {
			if start >= 0 {
				out = append(out, tag[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, tag[start:])
	}
	return out
}

// ExtractExamples creates the shared training-example set from the
// sources (§3.1 steps 2-3): every element occurrence in every listing
// becomes one example labelled through the source's 1-1 mapping.
func ExtractExamples(med *Mediated, sources []*Source, maxListings int) []learn.Example {
	var out []learn.Example
	for _, s := range sources {
		listings := s.Listings
		if maxListings > 0 && len(listings) > maxListings {
			listings = listings[:maxListings]
		}
		for _, listing := range listings {
			listing.Walk(func(n *xmltree.Node, path []string) {
				out = append(out, learn.Example{
					Instance: NewInstance(med, n, path),
					Label:    s.LabelOf(n.Tag),
					Group:    s.Name,
				})
			})
		}
	}
	return out
}

// Labels returns the system's label set.
func (s *System) Labels() []string { return s.labels }

// LearnerNames returns the trained learners' names.
func (s *System) LearnerNames() []string { return append([]string(nil), s.names...) }

// Stacker exposes the fitted meta-learner weights (for reports).
func (s *System) Stacker() *meta.Stacker { return s.stacker }

// MatchResult is the outcome of matching one source.
type MatchResult struct {
	// Mapping is the 1-1 mapping the constraint handler (or greedy
	// assignment) produced: source tag → label.
	Mapping constraint.Assignment
	// TagPredictions are the prediction-converter outputs per tag.
	TagPredictions map[string]learn.Prediction
	// Handler is the A* result; nil when the handler is disabled.
	Handler *constraint.Result
	// Partial holds the §7 partial mappings: for tags whose prediction
	// is ambiguous between sibling labels, the most specific
	// unambiguous ancestor in the mediated label hierarchy. Populated
	// only when the mediated schema defines a hierarchy.
	Partial map[string]string
}

// Match runs the matching phase of §3.2 on a target source. feedback
// constraints (§4.3) apply to this source only. ctx cancels the
// column-collection and matching fan-outs: a cancelled request stops
// scheduling new per-listing walks and per-instance predictions and
// returns ctx's error.
func (s *System) Match(ctx context.Context, src *Source, feedback ...constraint.Constraint) (*MatchResult, error) {
	if src == nil || src.Schema == nil {
		return nil, fmt.Errorf("core: nil source")
	}
	// Step 1: extract & collect data into per-tag columns.
	cols, err := collectColumns(ctx, s.mediated, src, s.cfg.MaxListings, s.cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: collecting %s: %w", src.Name, err)
	}

	// Step 2: match each source tag: score the tag's whole column as
	// one batch (combineBatch deduplicates repeated values and routes
	// each learner through PredictBatch where implemented), combine
	// with the meta-learner, convert per column. Tags fan out across
	// the worker pool in deterministic order; results come back
	// positionally, so the merge is identical to the serial loop.
	tags := src.Schema.Tags()
	batches := make([][]learn.Instance, len(tags))
	for ti, tag := range tags {
		if instances := cols[tag]; len(instances) > 0 {
			batches[ti] = instances
		} else {
			// A tag with no data instances is matched on its name alone.
			batches[ti] = []learn.Instance{{TagName: tag, Path: src.Schema.PathFromRoot(tag)}}
		}
	}
	perTag, err := parallel.Map(ctx, s.cfg.Workers, len(tags),
		func(_ context.Context, ti int) ([]learn.Prediction, error) {
			return s.combineBatch(batches[ti]), nil
		})
	if err != nil {
		return nil, fmt.Errorf("core: matching %s: %w", src.Name, err)
	}
	tagPreds := make(map[string]learn.Prediction, len(tags))
	for ti, tag := range tags {
		tagPreds[tag] = meta.Convert(s.cfg.Converter, s.labels, perTag[ti])
	}

	// Step 3: apply the constraint handler.
	res := &MatchResult{TagPredictions: tagPreds}
	if s.mediated.Hierarchy != nil {
		res.Partial = make(map[string]string)
		for tag, p := range tagPreds {
			if anc, ok := s.mediated.Hierarchy.Suggest(p, AmbiguityRatio); ok {
				res.Partial[tag] = anc
			}
		}
	}
	csrc := BuildConstraintSource(src, cols, s.cfg.MaxListings)
	if !s.cfg.UseConstraintHandler {
		res.Mapping = constraint.GreedyRun(csrc, tagPreds)
		return res, nil
	}
	handler := s.cfg.Handler
	if handler == nil {
		handler = constraint.NewHandler()
	}
	cs := append(append([]constraint.Constraint{}, s.mediated.Constraints...), feedback...)
	h := *handler
	h.Constraints = cs
	hres, err := h.Run(csrc, tagPreds)
	if err != nil {
		return nil, fmt.Errorf("core: constraint handler: %w", err)
	}
	res.Mapping = hres.Mapping
	res.Handler = hres
	return res, nil
}

// predScratch pools the per-batch base-prediction rows the stacker
// combines, so a match allocates O(1) pooled rows per tag batch
// instead of one row per instance.
var predScratch pool.Preds

// combineBatch scores one tag's column of instances: every learner
// scores the whole batch (through learn.PredictAll, which uses
// PredictBatch where implemented), then the stacker combines per
// instance. Duplicate instances — a column's values repeat across
// listings — are scored and combined once and share the resulting
// prediction, which is read-only by the Predict contract; values seen
// in earlier batches or requests come out of the system's combined
// memo without touching any learner. Leaf and text-only instances key
// on (tag, path, content), which covers every feature any learner
// reads (see instanceKey); interior nodes key on their full serialized
// subtree (see interiorKey).
func (s *System) combineBatch(batch []learn.Instance) []learn.Prediction {
	out := make([]learn.Prediction, len(batch))
	if len(batch) == 0 {
		return out
	}
	if s.cfg.DisableBatchPredict {
		// Reference path: per-instance Predict, per-instance Combine, in
		// batch order. The batched path below must match it bit for bit.
		base := predScratch.Get(len(s.learners))
		for i, in := range batch {
			for j, l := range s.learners {
				base[j] = l.Predict(in)
			}
			out[i] = s.stacker.Combine(base)
		}
		predScratch.Put(base)
		return out
	}
	pos := make([]int, len(batch))
	idx := make(map[string]int, len(batch))
	uniq := make([]learn.Instance, 0, len(batch))
	keys := make([]string, 0, len(batch))
	for i, in := range batch {
		var key string
		if in.Node != nil && !in.Node.IsLeaf() {
			key = interiorKey(in.Path, in.Node)
		} else {
			key = instanceKey(in.TagName, in.Path, in.Content)
		}
		u, ok := idx[key]
		if !ok {
			u = len(uniq)
			idx[key] = u
			uniq = append(uniq, in)
			keys = append(keys, key)
		}
		pos[i] = u
	}
	combined := make([]learn.Prediction, len(uniq))
	// Cross-request reuse: a unique instance whose combined prediction
	// is already memoized skips every learner and the stacker. Only the
	// misses are scored below.
	missIns := uniq[:0:0]
	var missSlots []int
	for u, in := range uniq {
		if p, ok := s.combined.get(keys[u]); ok {
			combined[u] = p
			continue
		}
		missIns = append(missIns, in)
		missSlots = append(missSlots, u)
	}
	if len(missIns) > 0 {
		perLearner := make([][]learn.Prediction, len(s.learners))
		for j, l := range s.learners {
			perLearner[j] = learn.PredictAll(l, missIns)
		}
		base := predScratch.Get(len(s.learners))
		for mi, u := range missSlots {
			for j := range perLearner {
				base[j] = perLearner[j][mi]
			}
			combined[u] = s.stacker.Combine(base)
			s.combined.put(keys[u], combined[u])
		}
		predScratch.Put(base)
	}
	for i := range batch {
		out[i] = combined[pos[i]]
	}
	return out
}

// CollectColumns extracts, for each source tag, the column of element
// instances with that tag across the source's listings (§3.2 step 1).
// The only error is ctx's, when the caller cancels mid-collection.
func CollectColumns(ctx context.Context, med *Mediated, src *Source, maxListings int) (map[string][]learn.Instance, error) {
	return collectColumns(ctx, med, src, maxListings, 1)
}

// collectColumns is CollectColumns over a worker pool: each listing is
// walked independently and the per-listing columns are merged in
// listing order, so instance order per tag matches the serial walk.
func collectColumns(ctx context.Context, med *Mediated, src *Source, maxListings, workers int) (map[string][]learn.Instance, error) {
	listings := src.Listings
	if maxListings > 0 && len(listings) > maxListings {
		listings = listings[:maxListings]
	}
	perListing, err := parallel.Map(ctx, workers, len(listings),
		func(_ context.Context, i int) (map[string][]learn.Instance, error) {
			m := make(map[string][]learn.Instance)
			listings[i].Walk(func(n *xmltree.Node, path []string) {
				m[n.Tag] = append(m[n.Tag], NewInstance(med, n, path))
			})
			return m, nil
		})
	if err != nil {
		return nil, err
	}
	cols := make(map[string][]learn.Instance)
	for _, m := range perListing {
		for tag, instances := range m {
			cols[tag] = append(cols[tag], instances...)
		}
	}
	return cols, nil
}

// BuildConstraintSource assembles the constraint handler's view of a
// source: its schema, tags, extracted columns, and row tuples.
func BuildConstraintSource(src *Source, cols map[string][]learn.Instance, maxListings int) *constraint.Source {
	columns := make(map[string][]string, len(cols))
	for tag, instances := range cols {
		vals := make([]string, len(instances))
		for i, in := range instances {
			vals[i] = in.Content
		}
		columns[tag] = vals
	}
	listings := src.Listings
	if maxListings > 0 && len(listings) > maxListings {
		listings = listings[:maxListings]
	}
	rows := make([]map[string]string, 0, len(listings))
	for _, listing := range listings {
		row := make(map[string]string)
		listing.Walk(func(n *xmltree.Node, _ []string) {
			if _, ok := row[n.Tag]; !ok {
				row[n.Tag] = n.Content()
			}
		})
		rows = append(rows, row)
	}
	return &constraint.Source{
		Schema:  src.Schema,
		Tags:    src.Schema.Tags(),
		Columns: columns,
		Rows:    rows,
	}
}

// Accuracy computes the matching accuracy of a mapping against the
// source's true mapping: the percentage of matchable source tags
// matched correctly (§6, "Experimental Methodology").
func Accuracy(src *Source, mapping constraint.Assignment) float64 {
	matchable := src.MatchableTags()
	if len(matchable) == 0 {
		return 0
	}
	correct := 0
	for _, tag := range matchable {
		if mapping[tag] == src.LabelOf(tag) {
			correct++
		}
	}
	return float64(correct) / float64(len(matchable))
}

// WrongTags returns the matchable tags the mapping got wrong, sorted.
func WrongTags(src *Source, mapping constraint.Assignment) []string {
	var out []string
	for _, tag := range src.MatchableTags() {
		if mapping[tag] != src.LabelOf(tag) {
			out = append(out, tag)
		}
	}
	sort.Strings(out)
	return out
}
