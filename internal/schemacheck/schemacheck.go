// Package schemacheck is lsdschema's static analyzer for LSD's domain
// artifacts: the DTD grammars (source and mediated schemas, §2) and
// the domain integrity constraints that drive the A* constraint
// handler (§4.2). It is the counterpart of internal/analysis, which
// checks the Go code; this package checks the inputs the pipeline
// runs on, where a malformed content model or a contradictory
// constraint set fails silently — validation loops on a
// non-terminating element, or A* prunes every candidate mapping.
//
// DTD checks (over dtd.Schema):
//
//   - ambiguity: content models must be 1-unambiguous (deterministic),
//     verified by Glushkov automaton construction — two distinct
//     positions of the same tag reachable on the same input prefix
//     make the model nondeterministic, which the XML spec forbids.
//   - undeclared: content models and mixed sets may only reference
//     declared elements.
//   - unreachable: every declared element must be reachable from the
//     schema root.
//   - nonterminating: every element must have a finite derivation
//     (grammar emptiness by least fixpoint); a non-terminating element
//     sends Validate and datagen into unbounded recursion.
//   - duplicate: duplicate or conflicting declarations — an attribute
//     declared twice, an attribute colliding with an element name, a
//     repeated tag in a mixed set.
//   - degenerate: starred or plussed particles with nullable bodies
//     ((x?)*-style nests), which derive the empty word infinitely many
//     ways.
//
// Constraint checks (over []constraint.Constraint plus the mediated
// schema):
//
//   - unknownlabel: constraints may only reference mediated-schema
//     labels (or OTHER).
//   - contradiction: directly contradictory pairs — MustMatch vs
//     MustNotMatch on one (tag, label), NestedIn vs NotNestedIn on one
//     (outer, inner), LeafLabel vs NonLeafLabel on one label, a
//     Frequency with min > max, two MustMatch pinning one tag to
//     different labels.
//   - leafness: LeafLabel/NonLeafLabel consistent with the mediated
//     DTD's actual leaf set.
//   - unsat: a propagation pass over the hard constraints (frequency
//     bounds merged per label, MustMatch-forced tags, exclusivity
//     zeroing the partner's capacity) that reports when the set admits
//     no assignment at all.
//
// Findings in DTD text are suppressible with a justified comment on
// (or directly above) the offending line, mirroring //lint:ignore:
//
//	<!-- lint:ignore <check> <reason> -->
//
// A directive without a reason is itself a finding.
package schemacheck

import (
	"fmt"
	"sort"

	"repro/internal/analysis/report"
	"repro/internal/dtd"
)

// Finding is one checker diagnostic, in the shared report shape so
// lsdschema emits the same text/json/SARIF as lsdlint.
type Finding = report.Finding

// Check describes one check of the suite for SARIF rule tables and
// usage text.
type Check struct {
	Name string
	Doc  string
}

// Checks returns the full lsdschema suite in reporting order.
func Checks() []Check {
	return []Check{
		{"ambiguity", "content models must be 1-unambiguous (deterministic), per the XML spec"},
		{"undeclared", "content models may only reference declared elements"},
		{"unreachable", "every declared element must be reachable from the schema root"},
		{"nonterminating", "every element must derive at least one finite tree"},
		{"duplicate", "no duplicate or conflicting declarations"},
		{"degenerate", "no starred/plussed particles with nullable bodies ((x?)*-style nests)"},
		{"unknownlabel", "constraints may only reference mediated-schema labels (or OTHER)"},
		{"contradiction", "no directly contradictory constraint pairs"},
		{"leafness", "LeafLabel/NonLeafLabel must agree with the mediated schema's leaf set"},
		{"unsat", "the hard-constraint set must admit at least one assignment"},
	}
}

// checker accumulates findings for one artifact.
type checker struct {
	file     string
	findings []Finding
}

// reportf records a finding. Lines below 1 (hand-built schemas carry
// no positions) are stamped as line 1 so every emitted position is
// valid in every format.
func (c *checker) reportf(line int, check, format string, args ...any) {
	if line < 1 {
		line = 1
	}
	c.findings = append(c.findings, Finding{
		File:    c.file,
		Line:    line,
		Column:  1,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}

// CheckSchema runs the DTD checks over a parsed schema, attributing
// findings to file. Suppression directives live in DTD text; use
// CheckDTD when the text is available.
func CheckSchema(file string, s *dtd.Schema) []Finding {
	c := &checker{file: file}
	c.schema(s)
	sortFindings(c.findings)
	return c.findings
}

// CheckDTD parses DTD text, runs the DTD checks, and applies the
// text's <!-- lint:ignore --> directives. A parse failure is returned
// as an error (the artifact is unusable, matching lsdlint's treatment
// of unloadable packages), not as a finding.
func CheckDTD(file, text string) ([]Finding, error) {
	s, err := dtd.Parse(text)
	if err != nil {
		return nil, err
	}
	c := &checker{file: file}
	c.schema(s)
	findings := applySuppressions(file, text, c.findings)
	sortFindings(findings)
	return findings, nil
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}
