package schemacheck

import (
	"fmt"
	"sort"

	"repro/internal/constraint"
	"repro/internal/dtd"
	"repro/internal/learn"
)

// CheckConstraints runs the constraint checks over a domain's
// constraint set against its mediated schema. Constraints carry no
// source positions, so findings are attributed to file with the
// 1-based index of the constraint in the set as the line: "line 3"
// means the third constraint passed in.
func CheckConstraints(file string, med *dtd.Schema, cs []constraint.Constraint) []Finding {
	c := &checker{file: file}
	specs := make([]constraint.Spec, len(cs))
	for i, con := range cs {
		specs[i] = constraint.Describe(con)
	}
	c.unknownLabels(med, cs, specs)
	c.contradictions(cs, specs)
	c.leafness(med, cs, specs)
	c.unsat(cs, specs)
	sortFindings(c.findings)
	return c.findings
}

// unknownLabels flags constraints referencing labels absent from the
// mediated schema. OTHER is always legal: it is the reserved label for
// unmatchable tags, not a schema element.
func (c *checker) unknownLabels(med *dtd.Schema, cs []constraint.Constraint, specs []constraint.Spec) {
	declared := make(map[string]bool)
	for _, t := range med.Tags() {
		declared[t] = true
	}
	for i, spec := range specs {
		seen := make(map[string]bool, len(spec.Labels))
		for _, label := range spec.Labels {
			if declared[label] || label == learn.Other || seen[label] {
				continue
			}
			seen[label] = true
			c.reportf(i+1, "unknownlabel",
				"constraint %q references label %q, which the mediated schema does not declare", cs[i].Name(), label)
		}
	}
}

// pairKey orders a label pair so (A,B) and (B,A) collide.
func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "\x00" + b
}

// contradictions flags directly contradictory constraint pairs.
func (c *checker) contradictions(cs []constraint.Constraint, specs []constraint.Spec) {
	nestings := make(map[string]int)  // "outer\x00inner" of first NestedIn → index
	forbidden := make(map[string]int) // same key of first NotNestedIn → index
	leaf := make(map[string]int)      // label of first LeafLabel → index
	nonLeaf := make(map[string]int)   // label of first NonLeafLabel → index
	must := make(map[string]int)      // "tag\x00label" of first MustMatch → index
	mustNot := make(map[string]int)   // same key of first MustNotMatch → index
	mustLabel := make(map[string]int) // tag of first MustMatch → index
	for i, spec := range specs {
		switch spec.Kind {
		case constraint.KindFrequency:
			if spec.Max >= 0 && spec.Min > spec.Max {
				c.reportf(i+1, "contradiction",
					"constraint %q requires at least %d but allows at most %d matches", cs[i].Name(), spec.Min, spec.Max)
			}
		case constraint.KindNesting:
			key := spec.Labels[0] + "\x00" + spec.Labels[1]
			if spec.Forbid {
				forbidden[key] = i
				if j, ok := nestings[key]; ok {
					c.reportf(i+1, "contradiction",
						"constraint %q contradicts constraint %d (%q)", cs[i].Name(), j+1, cs[j].Name())
				}
			} else {
				nestings[key] = i
				if j, ok := forbidden[key]; ok {
					c.reportf(i+1, "contradiction",
						"constraint %q contradicts constraint %d (%q)", cs[i].Name(), j+1, cs[j].Name())
				}
			}
		case constraint.KindLeafness:
			label := spec.Labels[0]
			if spec.NonLeaf {
				nonLeaf[label] = i
				if j, ok := leaf[label]; ok {
					c.reportf(i+1, "contradiction",
						"constraint %q contradicts constraint %d (%q): a tag cannot be both atomic and compound", cs[i].Name(), j+1, cs[j].Name())
				}
			} else {
				leaf[label] = i
				if j, ok := nonLeaf[label]; ok {
					c.reportf(i+1, "contradiction",
						"constraint %q contradicts constraint %d (%q): a tag cannot be both atomic and compound", cs[i].Name(), j+1, cs[j].Name())
				}
			}
		case constraint.KindMustMatch:
			key := spec.Tag + "\x00" + spec.Labels[0]
			if spec.Forbid {
				mustNot[key] = i
				if j, ok := must[key]; ok {
					c.reportf(i+1, "contradiction",
						"constraint %q contradicts constraint %d (%q)", cs[i].Name(), j+1, cs[j].Name())
				}
			} else {
				if j, ok := mustNot[key]; ok {
					c.reportf(i+1, "contradiction",
						"constraint %q contradicts constraint %d (%q)", cs[i].Name(), j+1, cs[j].Name())
				}
				if j, ok := mustLabel[spec.Tag]; ok && specs[j].Labels[0] != spec.Labels[0] {
					c.reportf(i+1, "contradiction",
						"constraint %q pins tag %q already pinned to %q by constraint %d", cs[i].Name(), spec.Tag, specs[j].Labels[0], j+1)
				}
				must[key] = i
				if _, ok := mustLabel[spec.Tag]; !ok {
					mustLabel[spec.Tag] = i
				}
			}
		}
	}
}

// leafness flags arity constraints that disagree with the mediated
// schema's own leaf set: constraining sources to map label L
// atomically when the mediated schema declares L compound (or the
// reverse) means the constraint and the schema cannot both describe
// the designer's intent. Labels the schema does not declare are
// skipped — unknownlabel already reports them.
func (c *checker) leafness(med *dtd.Schema, cs []constraint.Constraint, specs []constraint.Spec) {
	declared := make(map[string]bool)
	for _, t := range med.Tags() {
		declared[t] = true
	}
	for i, spec := range specs {
		if spec.Kind != constraint.KindLeafness {
			continue
		}
		label := spec.Labels[0]
		if !declared[label] {
			continue
		}
		medLeaf := med.IsLeaf(label)
		switch {
		case spec.NonLeaf && medLeaf:
			c.reportf(i+1, "leafness",
				"constraint %q declares %s compound, but the mediated schema declares it a leaf", cs[i].Name(), label)
		case !spec.NonLeaf && !medLeaf:
			c.reportf(i+1, "leafness",
				"constraint %q declares %s atomic, but the mediated schema declares it compound", cs[i].Name(), label)
		}
	}
}

// bound is the merged per-label frequency interval, with the indices
// of the constraints that set each side (for reporting).
type bound struct {
	min, max       int
	minSrc, maxSrc int
}

// unsat is the propagation-based unsatisfiability pass over the hard
// constraints: merge frequency bounds per label, count the distinct
// tags MustMatch pins to each label, propagate exclusivity (a label
// with a required match zeroes its exclusive partner's capacity), and
// report every label whose requirement exceeds its capacity. Pairs
// already reported as direct contradictions (a single self-
// contradictory Frequency, conflicting MustMatch pins) are excluded so
// one defect yields one finding.
func (c *checker) unsat(cs []constraint.Constraint, specs []constraint.Spec) {
	bounds := make(map[string]*bound)
	get := func(label string) *bound {
		b, ok := bounds[label]
		if !ok {
			b = &bound{min: 0, max: -1, minSrc: -1, maxSrc: -1}
			bounds[label] = b
		}
		return b
	}
	for i, spec := range specs {
		if spec.Kind != constraint.KindFrequency {
			continue
		}
		if spec.Max >= 0 && spec.Min > spec.Max {
			continue // self-contradictory, reported by contradictions
		}
		b := get(spec.Labels[0])
		if spec.Min > b.min {
			b.min, b.minSrc = spec.Min, i
		}
		if spec.Max >= 0 && (b.max < 0 || spec.Max < b.max) {
			b.max, b.maxSrc = spec.Max, i
		}
	}

	// Distinct tags pinned to each label by MustMatch are a lower
	// bound on its match count. Tags pinned to two different labels
	// are contradictions, not unsat evidence; skip them here.
	pins := make(map[string]map[string]bool) // label → tags
	pinSrc := make(map[string]int)
	conflicted := make(map[string]bool) // tags with contradictory pins
	tagLabel := make(map[string]string)
	for _, spec := range specs {
		if spec.Kind != constraint.KindMustMatch || spec.Forbid {
			continue
		}
		if prev, ok := tagLabel[spec.Tag]; ok && prev != spec.Labels[0] {
			conflicted[spec.Tag] = true
		}
		tagLabel[spec.Tag] = spec.Labels[0]
	}
	for i, spec := range specs {
		if spec.Kind != constraint.KindMustMatch || spec.Forbid || conflicted[spec.Tag] {
			continue
		}
		label := spec.Labels[0]
		if pins[label] == nil {
			pins[label] = make(map[string]bool)
			pinSrc[label] = i
		}
		pins[label][spec.Tag] = true
	}
	for label, tags := range pins {
		b := get(label)
		if len(tags) > b.min {
			b.min, b.minSrc = len(tags), pinSrc[label]
		}
	}

	// Propagate exclusivity: a label that must be matched forbids its
	// exclusive partner entirely. Exclusive(A, A) forbids A whenever A
	// is required. Iterate to a fixpoint: capacities only shrink.
	type exclusion struct {
		a, b string
		src  int
	}
	var exclusions []exclusion
	for i, spec := range specs {
		if spec.Kind == constraint.KindExclusivity {
			exclusions = append(exclusions, exclusion{spec.Labels[0], spec.Labels[1], i})
		}
	}
	capCause := make(map[string]int)
	for changed := true; changed; {
		changed = false
		for _, ex := range exclusions {
			zero := func(required, partner string) {
				if get(required).min < 1 {
					return
				}
				b := get(partner)
				if b.max != 0 {
					b.max, b.maxSrc = 0, ex.src
					capCause[partner] = ex.src
					changed = true
				}
			}
			zero(ex.a, ex.b)
			zero(ex.b, ex.a)
		}
	}

	labels := make([]string, 0, len(bounds))
	for label := range bounds {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		b := bounds[label]
		if b.max < 0 || b.min <= b.max {
			continue
		}
		cause := fmt.Sprintf("constraint %d (%q) requires at least %d match(es) of %s, but constraint %d (%q) allows at most %d",
			b.minSrc+1, cs[b.minSrc].Name(), b.min, label, b.maxSrc+1, cs[b.maxSrc].Name(), b.max)
		if exIdx, ok := capCause[label]; ok && exIdx == b.maxSrc {
			cause = fmt.Sprintf("constraint %d (%q) requires at least %d match(es) of %s, but constraint %d (%q) excludes it because its partner label is also required",
				b.minSrc+1, cs[b.minSrc].Name(), b.min, label, b.maxSrc+1, cs[b.maxSrc].Name())
		}
		c.reportf(b.minSrc+1, "unsat", "hard constraints admit no assignment: %s", cause)
	}
}
