package schemacheck

import (
	"strings"

	"repro/internal/analysis/report"
)

// DTD-text suppression, mirroring the Go suite's //lint:ignore:
//
//	<!-- lint:ignore <check> <reason> -->
//
// A trailing directive (declaration text precedes it on the line)
// suppresses findings of the named check on its own line; a standalone
// directive suppresses the line after the comment ends. The reason is
// mandatory — a directive without one is reported as an "ignore"
// finding so unjustified suppressions cannot accumulate silently.

// directivePrefix introduces a suppression inside a DTD comment.
const directivePrefix = "lint:ignore"

// directive is one parsed suppression comment.
type directive struct {
	line   int    // line the comment starts on
	check  string // "" when the directive names nothing
	reason string // "" when the mandatory reason is missing
	target int    // the line the directive suppresses
}

// directives scans DTD text for lint:ignore comments in source order.
func directives(text string) []directive {
	var out []directive
	for pos := 0; ; {
		start := strings.Index(text[pos:], "<!--")
		if start < 0 {
			return out
		}
		start += pos
		bodyStart := start + len("<!--")
		end := strings.Index(text[bodyStart:], "-->")
		if end < 0 {
			return out
		}
		end += bodyStart
		pos = end + len("-->")

		body, ok := strings.CutPrefix(strings.TrimSpace(text[bodyStart:end]), directivePrefix)
		if !ok {
			continue
		}
		startLine := 1 + strings.Count(text[:start], "\n")
		d := directive{line: startLine, target: startLine}
		fields := strings.Fields(body)
		if len(fields) > 0 {
			d.check = fields[0]
		}
		if len(fields) >= 2 {
			d.reason = strings.Join(fields[1:], " ")
		}
		if standalone(text, start) {
			// The directive annotates the line after the comment ends
			// (the comment may span lines).
			d.target = 2 + strings.Count(text[:pos], "\n")
		}
		out = append(out, d)
	}
}

// standalone reports whether only whitespace precedes offset on its
// line.
func standalone(text string, offset int) bool {
	lineStart := strings.LastIndexByte(text[:offset], '\n') + 1
	return strings.TrimSpace(text[lineStart:offset]) == ""
}

// applySuppressions filters findings through the text's directives and
// appends an "ignore" finding for every malformed one.
func applySuppressions(file, text string, findings []Finding) []Finding {
	type key struct {
		line  int
		check string
	}
	ignored := make(map[key]bool)
	var out []Finding
	for _, d := range directives(text) {
		if d.check == "" || d.reason == "" {
			out = append(out, Finding{
				File:    file,
				Line:    d.line,
				Column:  1,
				Check:   "ignore",
				Message: "malformed directive: want <!-- lint:ignore <check> <reason> -->",
			})
			continue
		}
		ignored[key{d.target, d.check}] = true
	}
	for _, f := range findings {
		if ignored[key{f.Line, f.Check}] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Suppression is one lint:ignore directive for the audit report, in
// the shared report shape. A malformed directive shows up with an
// empty Reason.
type Suppression = report.Suppression

// Suppressions inventories the lint:ignore directives of DTD text, in
// source order.
func Suppressions(file, text string) []Suppression {
	var out []Suppression
	for _, d := range directives(text) {
		out = append(out, Suppression{
			File:   file,
			Line:   d.line,
			Check:  d.check,
			Reason: d.reason,
		})
	}
	return out
}
