package schemacheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dtd"
)

// loc is a (line, check) pair for comparing findings against golden
// expectations without pinning exact message text.
type loc struct {
	line  int
	check string
}

func locsOf(findings []Finding) []loc {
	out := make([]loc, len(findings))
	for i, f := range findings {
		out[i] = loc{f.Line, f.Check}
	}
	return out
}

func sameLocs(a, b []loc) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func readFixture(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestGoldenFixtures runs every DTD defect-class fixture through the
// checker. Each fixture carries at least one true positive and at
// least one suppressed finding of the same class: `want` is the
// post-suppression result, `raw` what CheckSchema reports before the
// lint:ignore directives apply. raw being a strict superset of want
// proves the suppressed finding is real and the directive is what
// removed it.
func TestGoldenFixtures(t *testing.T) {
	cases := []struct {
		file string
		want []loc
		raw  []loc
	}{
		{
			file: "ambiguity.dtd",
			want: []loc{{2, "ambiguity"}},
			raw:  []loc{{2, "ambiguity"}, {4, "ambiguity"}},
		},
		{
			file: "undeclared.dtd",
			want: []loc{{1, "undeclared"}},
			raw:  []loc{{1, "undeclared"}, {4, "undeclared"}},
		},
		{
			file: "unreachable.dtd",
			want: []loc{{3, "unreachable"}},
			raw:  []loc{{3, "unreachable"}, {5, "unreachable"}},
		},
		{
			file: "nonterminating.dtd",
			want: []loc{{2, "nonterminating"}},
			raw:  []loc{{2, "nonterminating"}, {5, "nonterminating"}},
		},
		{
			file: "duplicate.dtd",
			want: []loc{{4, "duplicate"}},
			raw:  []loc{{4, "duplicate"}, {6, "duplicate"}},
		},
		{
			file: "degenerate.dtd",
			want: []loc{{1, "degenerate"}},
			raw:  []loc{{1, "degenerate"}, {5, "degenerate"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			text := readFixture(t, tc.file)

			got, err := CheckDTD(tc.file, text)
			if err != nil {
				t.Fatalf("CheckDTD: %v", err)
			}
			if !sameLocs(locsOf(got), tc.want) {
				t.Errorf("CheckDTD findings = %v, want %v", got, tc.want)
			}

			s, err := dtd.Parse(text)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			raw := CheckSchema(tc.file, s)
			if !sameLocs(locsOf(raw), tc.raw) {
				t.Errorf("CheckSchema findings = %v, want %v", raw, tc.raw)
			}

			sups := Suppressions(tc.file, text)
			if len(sups) == 0 {
				t.Error("fixture has no lint:ignore directive; every golden fixture must exercise suppression")
			}
			for _, sup := range sups {
				if sup.Reason == "" {
					t.Errorf("directive at line %d has no reason", sup.Line)
				}
			}
		})
	}
}

// TestGoldenMessages spot-checks that findings name the offending
// identifiers, not just positions.
func TestGoldenMessages(t *testing.T) {
	cases := []struct {
		file string
		want string
	}{
		{"ambiguity.dtd", `occurrences 1 and 3 of "a"`},
		{"undeclared.dtd", `undeclared element "ghost"`},
		{"unreachable.dtd", `"orphan" is unreachable from the schema root "root"`},
		{"nonterminating.dtd", `"loop" has no finite derivation`},
		{"duplicate.dtd", `attribute "id" declared twice on element "a"`},
		{"degenerate.dtd", "nullable body"},
	}
	for _, tc := range cases {
		got, err := CheckDTD(tc.file, readFixture(t, tc.file))
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		if len(got) == 0 || !strings.Contains(got[0].Message, tc.want) {
			t.Errorf("%s: findings %v do not mention %q", tc.file, got, tc.want)
		}
	}
}

func TestTrailingDirectiveSuppressesOwnLine(t *testing.T) {
	text := `<!ELEMENT root (a?, a)> <!-- lint:ignore ambiguity trailing-form coverage -->
<!ELEMENT a (#PCDATA)>
`
	got, err := CheckDTD("trailing.dtd", text)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("trailing directive did not suppress: %v", got)
	}
}

func TestMalformedDirectives(t *testing.T) {
	text := `<!-- lint:ignore ambiguity -->
<!-- lint:ignore -->
<!ELEMENT root (a)>
<!ELEMENT a (#PCDATA)>
`
	got, err := CheckDTD("malformed.dtd", text)
	if err != nil {
		t.Fatal(err)
	}
	want := []loc{{1, "ignore"}, {2, "ignore"}}
	if !sameLocs(locsOf(got), want) {
		t.Errorf("findings = %v, want ignore findings at lines 1 and 2", got)
	}
	// A malformed directive must not suppress anything: the reasonless
	// directive above targets line 2, and a real finding there would
	// survive.
	for _, f := range got {
		if !strings.Contains(f.Message, "malformed directive") {
			t.Errorf("unexpected message %q", f.Message)
		}
	}
}

func TestDirectiveForOtherCheckDoesNotSuppress(t *testing.T) {
	text := `<!-- lint:ignore unreachable wrong check named on purpose -->
<!ELEMENT root (a?, a)>
<!ELEMENT a (#PCDATA)>
`
	got, err := CheckDTD("wrongcheck.dtd", text)
	if err != nil {
		t.Fatal(err)
	}
	if !sameLocs(locsOf(got), []loc{{2, "ambiguity"}}) {
		t.Errorf("findings = %v, want the ambiguity finding to survive", got)
	}
}

func TestUndeclaredAttributePseudoTag(t *testing.T) {
	text := `<!ELEMENT root (a, phone)>
<!ELEMENT a (#PCDATA)>
<!ATTLIST a phone CDATA #IMPLIED>
`
	got, err := CheckDTD("attr.dtd", text)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Check != "undeclared" ||
		!strings.Contains(got[0].Message, `attribute of "a"`) {
		t.Errorf("findings = %v, want one undeclared finding naming the attribute owner", got)
	}
}

func TestMixedSetChecks(t *testing.T) {
	text := `<!ELEMENT root (#PCDATA | a | a | ghost)*>
<!ELEMENT a (#PCDATA)>
`
	got, err := CheckDTD("mixed.dtd", text)
	if err != nil {
		t.Fatal(err)
	}
	want := []loc{{1, "duplicate"}, {1, "undeclared"}}
	if !sameLocs(locsOf(got), want) {
		t.Errorf("findings = %v, want %v", got, want)
	}
}

func TestParseFailureIsError(t *testing.T) {
	if _, err := CheckDTD("broken.dtd", "<!ELEMENT root (a>"); err == nil {
		t.Error("CheckDTD accepted unparseable text")
	}
}

// TestChecksCoverEveryEmittedName pins the SARIF rule table: every
// check a golden fixture emits must appear in Checks().
func TestChecksCoverEveryEmittedName(t *testing.T) {
	known := make(map[string]bool)
	for _, c := range Checks() {
		known[c.Name] = true
	}
	for _, name := range []string{"ambiguity", "undeclared", "unreachable",
		"nonterminating", "duplicate", "degenerate",
		"unknownlabel", "contradiction", "leafness", "unsat"} {
		if !known[name] {
			t.Errorf("Checks() is missing %q", name)
		}
	}
}
