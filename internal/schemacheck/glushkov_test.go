package schemacheck

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dtd"
)

// parseModel parses a bare content model by wrapping it in an element
// declaration. Referenced names need no declarations of their own:
// buildGlushkov works on the particle alone.
func parseModel(t *testing.T, model string) *dtd.Particle {
	t.Helper()
	s, err := dtd.Parse("<!ELEMENT r " + model + ">")
	if err != nil {
		t.Fatalf("parse %s: %v", model, err)
	}
	m := s.Element("r").Model
	if m.Kind != dtd.ElementContent {
		t.Fatalf("%s parsed as %v, want element content", model, m.Kind)
	}
	return m.Particle
}

// markedWords enumerates every distinct marked word (sequence of
// position indices, numbered in the same pre-order as buildGlushkov)
// of length at most limit that the particle derives. ok is false when
// the enumeration exceeded cap distinct words and was abandoned.
//
// The enumeration is exhaustive up to limit: concatenations are only
// pruned when they already exceed limit, which no extension can
// repair.
func markedWords(p *dtd.Particle, limit, cap int) (words [][]int, ok bool) {
	var next int
	var build func(p *dtd.Particle) [][]int
	overflow := false

	dedupe := func(ws [][]int) [][]int {
		seen := make(map[string]bool, len(ws))
		var out [][]int
		for _, w := range ws {
			key := wordKey(w)
			if !seen[key] {
				seen[key] = true
				out = append(out, w)
			}
		}
		if len(out) > cap {
			overflow = true
		}
		return out
	}
	concat := func(as, bs [][]int) [][]int {
		var out [][]int
		for _, a := range as {
			for _, b := range bs {
				if len(a)+len(b) > limit {
					continue
				}
				w := make([]int, 0, len(a)+len(b))
				w = append(w, a...)
				w = append(w, b...)
				out = append(out, w)
			}
		}
		return dedupe(out)
	}
	closure := func(base [][]int) [][]int { // one or more iterations
		seen := make(map[string]bool)
		var acc [][]int
		add := func(w []int) bool {
			key := wordKey(w)
			if seen[key] {
				return false
			}
			seen[key] = true
			acc = append(acc, w)
			return true
		}
		var frontier [][]int
		for _, w := range base {
			if add(w) {
				frontier = append(frontier, w)
			}
		}
		for len(frontier) > 0 && !overflow {
			var next [][]int
			for _, a := range frontier {
				for _, b := range base {
					if len(a)+len(b) > limit {
						continue
					}
					w := make([]int, 0, len(a)+len(b))
					w = append(append(w, a...), b...)
					if add(w) {
						next = append(next, w)
					}
				}
			}
			if len(acc) > cap {
				overflow = true
			}
			frontier = next
		}
		return acc
	}

	build = func(p *dtd.Particle) [][]int {
		if overflow {
			return nil
		}
		var base [][]int
		switch p.Kind {
		case dtd.NameParticle:
			base = [][]int{{next}}
			next++
		case dtd.SeqParticle:
			base = [][]int{{}}
			for _, c := range p.Children {
				base = concat(base, build(c))
			}
		case dtd.ChoiceParticle:
			for _, c := range p.Children {
				base = append(base, build(c)...)
			}
			base = dedupe(base)
		}
		switch p.Occurs {
		case dtd.Optional:
			base = dedupe(append(base, []int{}))
		case dtd.ZeroOrMore:
			base = dedupe(append(closure(base), []int{}))
		case dtd.OneOrMore:
			base = closure(base)
		}
		return base
	}
	words = build(p)
	return words, !overflow
}

func wordKey(w []int) string {
	var b strings.Builder
	for _, x := range w {
		b.WriteString(strconv.Itoa(x))
		b.WriteByte(',')
	}
	return b.String()
}

// oracleAmbiguous reports 1-ambiguity by definition: some unmarked
// prefix is extended by the same tag at two distinct positions.
func oracleAmbiguous(words [][]int, names []string) bool {
	at := make(map[string]int) // unmarked prefix + tag → position
	for _, w := range words {
		var prefix strings.Builder
		for _, x := range w {
			tag := names[x]
			key := prefix.String() + "\x00" + tag
			if prev, seen := at[key]; seen && prev != x {
				return true
			}
			at[key] = x
			prefix.WriteString(tag)
			prefix.WriteByte(0)
		}
	}
	return false
}

// TestGlushkovCatalog asserts the verdict on a curated catalog in both
// directions, including the classical Brüggemann-Klein/Wood examples.
func TestGlushkovCatalog(t *testing.T) {
	cases := []struct {
		model     string
		ambiguous bool
	}{
		{"(a, b)", false},
		{"(a | b)", false},
		{"(a?, b)", false},
		{"(a, a)", false},
		{"(a*, b)", false},
		{"((a, b)+, c)", false},
		{"((a | b)+, c?)", false},
		{"((b, a) | (c, a))", false},
		{"((a, b?) | (b, a))", false},
		{"((a, b?)*)", false},
		{"((a?, b?)*)", false}, // degenerate, yet deterministic
		{"((a?)*)", false},     // duplicate position in Follow is not a conflict
		{"(a?, a)", true},
		{"(a*, a)", true},
		{"((a | b)*, a)", true}, // the classical example
		{"((a, b) | (a, c))", true},
		{"((a, b)*, (a, c))", true},
		{"(a, (a | b)?)", false},
		{"((a | b), (b | c))", false},
	}
	for _, tc := range cases {
		p := parseModel(t, tc.model)
		g := buildGlushkov(p)
		_, _, _, got := g.conflict()
		if got != tc.ambiguous {
			t.Errorf("%s: ambiguous = %v, want %v", tc.model, got, tc.ambiguous)
		}
	}
}

// TestGlushkovOracle cross-checks the automaton against a brute-force
// oracle on the catalog plus randomly generated models.
//
// Soundness of the word-length bound: in the Glushkov automaton every
// position is reachable and co-reachable. A conflict (two positions of
// one tag in First or one Follow set) therefore has a witness prefix
// of at most n marked symbols, one more symbol for the conflicting
// position, and a completion of at most n symbols — so enumerating all
// marked words of length ≤ 2n+1 sees both words whose unmarked
// prefixes collide, and the oracle's verdict is exact (we enumerate to
// 2n+2 for margin). Conversely every oracle witness is a real pair of
// derivable words, so oracle-ambiguous implies Glushkov-ambiguous.
func TestGlushkovOracle(t *testing.T) {
	check := func(t *testing.T, model string) (checked bool) {
		p := parseModel(t, model)
		g := buildGlushkov(p)
		n := len(g.positions)
		if n > 5 {
			return false
		}
		words, ok := markedWords(p, 2*n+2, 60000)
		if !ok {
			return false
		}
		names := make([]string, n)
		for i, pos := range g.positions {
			names[i] = pos.name
		}
		_, _, _, glushkov := g.conflict()
		oracle := oracleAmbiguous(words, names)
		if glushkov != oracle {
			t.Errorf("%s: glushkov says ambiguous=%v, oracle says %v (%d positions, %d words)",
				model, glushkov, oracle, n, len(words))
		}
		return true
	}

	t.Run("catalog", func(t *testing.T) {
		for _, model := range []string{
			"(a, b)", "(a?, a)", "(a*, a)", "((a | b)*, a)",
			"((a, b) | (a, c))", "((a?, b?)*)", "((a, b?)*)",
			"((a, b)*, (a, c))", "(a, (a | b)?)",
		} {
			if !check(t, model) {
				t.Errorf("%s: oracle skipped a curated case", model)
			}
		}
	})

	t.Run("random", func(t *testing.T) {
		rng := rand.New(rand.NewSource(1))
		checked := 0
		for i := 0; i < 400; i++ {
			model := randModel(rng)
			if check(t, model) {
				checked++
			}
		}
		if checked < 200 {
			t.Errorf("only %d/400 random models were small enough to cross-check", checked)
		}
	})
}

// randModel generates a random content model of at most four positions
// over tags a and b — the small, marker-heavy shapes where 1-ambiguity
// hides, and a size the oracle can always enumerate.
func randModel(rng *rand.Rand) string {
	leaf := func() string {
		return []string{"a", "b"}[rng.Intn(2)] + occurs(rng)
	}
	sep := func() string {
		if rng.Intn(2) == 0 {
			return " | "
		}
		return ", "
	}
	part := func() string {
		if rng.Intn(3) > 0 {
			return leaf()
		}
		return fmt.Sprintf("(%s%s%s)%s", leaf(), sep(), leaf(), occurs(rng))
	}
	return fmt.Sprintf("(%s%s%s)%s", part(), sep(), part(), occurs(rng))
}

func occurs(rng *rand.Rand) string {
	return []string{"", "", "?", "*", "+"}[rng.Intn(5)]
}
