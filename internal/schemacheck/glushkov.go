package schemacheck

import "repro/internal/dtd"

// Glushkov construction over DTD content models. The XML spec requires
// content models to be deterministic ("1-unambiguous" in
// Brüggemann-Klein/Wood terms): while reading a child sequence left to
// right, the position of the model that matches each child must be
// decidable without lookahead. A model is 1-unambiguous iff its
// Glushkov automaton is deterministic, i.e. no two distinct positions
// with the same tag are reachable on the same input prefix — which
// reduces to: the First set, and every position's Follow set, name
// each tag at most once.

// gpos is one position of the linearized content model: the i-th
// occurrence of a name particle, with its source line for reports.
type gpos struct {
	name string
	line int
}

// glushkov is the position automaton of one content model.
type glushkov struct {
	positions []gpos
	first     []int
	last      []int
	nullable  bool
	follow    [][]int
}

// gnfa is the (nullable, first, last) triple computed bottom-up.
type gnfa struct {
	nullable    bool
	first, last []int
}

// buildGlushkov linearizes the particle (positions numbered in
// pre-order of name occurrences) and computes First/Last/Follow.
func buildGlushkov(root *dtd.Particle) *glushkov {
	g := &glushkov{}
	n := g.build(root)
	g.nullable = n.nullable
	g.first = n.first
	g.last = n.last
	return g
}

func (g *glushkov) build(p *dtd.Particle) gnfa {
	var n gnfa
	switch p.Kind {
	case dtd.NameParticle:
		idx := len(g.positions)
		g.positions = append(g.positions, gpos{p.Name, p.Line})
		g.follow = append(g.follow, nil)
		n = gnfa{nullable: false, first: []int{idx}, last: []int{idx}}
	case dtd.SeqParticle:
		n.nullable = true
		// open holds the last-positions that can still immediately
		// precede the next child (the lasts of a nullable suffix).
		var open []int
		for _, c := range p.Children {
			cn := g.build(c)
			for _, x := range open {
				g.follow[x] = append(g.follow[x], cn.first...)
			}
			if n.nullable {
				n.first = append(n.first, cn.first...)
			}
			if cn.nullable {
				open = append(open, cn.last...)
			} else {
				open = append([]int{}, cn.last...)
			}
			n.nullable = n.nullable && cn.nullable
		}
		n.last = open
	case dtd.ChoiceParticle:
		for _, c := range p.Children {
			cn := g.build(c)
			n.nullable = n.nullable || cn.nullable
			n.first = append(n.first, cn.first...)
			n.last = append(n.last, cn.last...)
		}
	}
	switch p.Occurs {
	case dtd.Optional:
		n.nullable = true
	case dtd.ZeroOrMore:
		n.nullable = true
		g.loop(n)
	case dtd.OneOrMore:
		g.loop(n)
	}
	return n
}

// loop adds the repetition edges last(p) → first(p) of a starred or
// plussed particle.
func (g *glushkov) loop(n gnfa) {
	for _, x := range n.last {
		g.follow[x] = append(g.follow[x], n.first...)
	}
}

// conflict returns the first pair of distinct positions that share a
// tag and are reachable on the same input prefix, scanning the First
// set and then each Follow set in position order, so the witness is
// deterministic run to run.
func (g *glushkov) conflict() (tag string, a, b int, ok bool) {
	if tag, a, b, ok = g.dupName(g.first); ok {
		return tag, a, b, true
	}
	for x := range g.positions {
		if tag, a, b, ok = g.dupName(g.follow[x]); ok {
			return tag, a, b, true
		}
	}
	return "", 0, 0, false
}

// dupName finds two distinct positions in set with the same tag.
// Follow sets can hold the same position twice (e.g. nested stars), so
// duplicates of one index are not conflicts.
func (g *glushkov) dupName(set []int) (string, int, int, bool) {
	seenIdx := make(map[int]bool, len(set))
	byName := make(map[string]int, len(set))
	for _, x := range set {
		if seenIdx[x] {
			continue
		}
		seenIdx[x] = true
		name := g.positions[x].name
		if prev, dup := byName[name]; dup {
			return name, prev, x, true
		}
		byName[name] = x
	}
	return "", 0, 0, false
}

// nullable reports whether the particle can derive the empty sequence.
func nullable(p *dtd.Particle) bool {
	if p.Occurs == dtd.Optional || p.Occurs == dtd.ZeroOrMore {
		return true
	}
	return nullableBody(p)
}

// nullableBody is nullable ignoring the particle's own Occurs marker:
// whether one mandatory iteration of the body can be empty. A starred
// or plussed particle with a nullable body is a degenerate repetition
// ((x?)* and kin): it derives the empty word infinitely many ways.
func nullableBody(p *dtd.Particle) bool {
	switch p.Kind {
	case dtd.NameParticle:
		return false
	case dtd.SeqParticle:
		for _, c := range p.Children {
			if !nullable(c) {
				return false
			}
		}
		return true
	case dtd.ChoiceParticle:
		for _, c := range p.Children {
			if nullable(c) {
				return true
			}
		}
		return false
	}
	return false
}
