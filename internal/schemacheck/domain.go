package schemacheck

import (
	"strings"

	"repro/internal/datagen"
)

// CheckDomain runs every schema and constraint check over one
// synthetic evaluation domain: its mediated schema, its full
// constraint set (explicit constraints plus the arity constraints the
// concept tree implies), and each of its five synthesized source
// schemas. The artifacts are built in memory, so findings are
// attributed to virtual paths under internal/datagen mirroring what
// lsdgen writes to disk: <slug>/mediated.dtd, <slug>/constraints, and
// <slug>/<source>.dtd.
func CheckDomain(d *datagen.Domain) []Finding {
	prefix := "internal/datagen/" + domainSlug(d.Name)
	med := d.Mediated()
	var out []Finding
	out = append(out, CheckSchema(prefix+"/mediated.dtd", med.Schema)...)
	out = append(out, CheckConstraints(prefix+"/constraints", med.Schema, med.Constraints)...)
	for _, spec := range d.Sources() {
		out = append(out, CheckSchema(prefix+"/"+spec.Name+".dtd", spec.Schema)...)
	}
	sortFindings(out)
	return out
}

// CheckDomains checks every registered domain.
func CheckDomains() []Finding {
	var out []Finding
	for _, d := range datagen.Domains() {
		out = append(out, CheckDomain(d)...)
	}
	return out
}

// domainSlug matches lsdgen's on-disk directory naming.
func domainSlug(name string) string {
	return strings.ToLower(strings.ReplaceAll(name, " ", "-"))
}
