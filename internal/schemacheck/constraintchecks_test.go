package schemacheck

import (
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/dtd"
)

// medSchema is the mediated schema the constraint golden cases run
// against: LISTING is the root, CONTACT is compound, the rest are
// leaves.
func medSchema(t *testing.T) *dtd.Schema {
	t.Helper()
	s, err := dtd.Parse(`<!ELEMENT LISTING (PRICE, CONTACT?, BEDS?)>
<!ELEMENT PRICE (#PCDATA)>
<!ELEMENT CONTACT (NAME, PHONE)>
<!ELEMENT NAME (#PCDATA)>
<!ELEMENT PHONE (#PCDATA)>
<!ELEMENT BEDS (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestConstraintGolden exercises every constraint defect class with at
// least one true positive, plus a clean set that must come back empty.
func TestConstraintGolden(t *testing.T) {
	cases := []struct {
		name string
		cs   []constraint.Constraint
		want []loc
	}{
		{
			name: "clean",
			cs: []constraint.Constraint{
				constraint.ExactlyOne("PRICE"),
				constraint.AtMostOne("BEDS"),
				constraint.NestedIn("CONTACT", "NAME"),
				constraint.LeafLabel("PRICE"),
				constraint.NonLeafLabel("CONTACT"),
				constraint.MustMatch("price", "PRICE"),
				constraint.MustNotMatch("price", "BEDS"),
				constraint.Exclusive("NAME", "BEDS"),
			},
			want: nil,
		},
		{
			name: "unknown label",
			cs: []constraint.Constraint{
				constraint.AtMostOne("ZIP"),
				constraint.MustMatch("tag", "OTHER"), // reserved, always legal
			},
			want: []loc{{1, "unknownlabel"}},
		},
		{
			name: "frequency min above max",
			cs: []constraint.Constraint{
				constraint.Frequency("PRICE", 2, 1),
			},
			want: []loc{{1, "contradiction"}},
		},
		{
			name: "nesting contradiction",
			cs: []constraint.Constraint{
				constraint.NestedIn("CONTACT", "NAME"),
				constraint.NotNestedIn("CONTACT", "NAME"),
			},
			want: []loc{{2, "contradiction"}},
		},
		{
			name: "leafness contradiction",
			cs: []constraint.Constraint{
				constraint.LeafLabel("PRICE"),
				constraint.NonLeafLabel("PRICE"),
			},
			// The pair contradicts each other, and the NonLeafLabel also
			// disagrees with the mediated schema, where PRICE is a leaf.
			want: []loc{{2, "contradiction"}, {2, "leafness"}},
		},
		{
			name: "mustmatch contradiction",
			cs: []constraint.Constraint{
				constraint.MustMatch("price", "PRICE"),
				constraint.MustNotMatch("price", "PRICE"),
			},
			want: []loc{{2, "contradiction"}},
		},
		{
			name: "mustmatch double pin",
			cs: []constraint.Constraint{
				constraint.MustMatch("price", "PRICE"),
				constraint.MustMatch("price", "BEDS"),
			},
			want: []loc{{2, "contradiction"}},
		},
		{
			name: "leafness against schema",
			cs: []constraint.Constraint{
				constraint.NonLeafLabel("PRICE"),
				constraint.LeafLabel("CONTACT"),
			},
			want: []loc{{1, "leafness"}, {2, "leafness"}},
		},
		{
			name: "leafness on unknown label defers to unknownlabel",
			cs: []constraint.Constraint{
				constraint.LeafLabel("ZIP"),
			},
			want: []loc{{1, "unknownlabel"}},
		},
		{
			name: "unsat pinned tags exceed capacity",
			cs: []constraint.Constraint{
				constraint.AtMostOne("PRICE"),
				constraint.MustMatch("t1", "PRICE"),
				constraint.MustMatch("t2", "PRICE"),
			},
			want: []loc{{2, "unsat"}},
		},
		{
			name: "unsat frequency bounds",
			cs: []constraint.Constraint{
				constraint.Frequency("PRICE", 2, -1),
				constraint.AtMostOne("PRICE"),
			},
			want: []loc{{1, "unsat"}},
		},
		{
			name: "unsat exclusivity",
			cs: []constraint.Constraint{
				constraint.ExactlyOne("PRICE"),
				constraint.ExactlyOne("BEDS"),
				constraint.Exclusive("PRICE", "BEDS"),
			},
			// Both labels are required and mutually exclusive, so both
			// sides collapse.
			want: []loc{{1, "unsat"}, {2, "unsat"}},
		},
		{
			name: "self exclusive required label",
			cs: []constraint.Constraint{
				constraint.ExactlyOne("PRICE"),
				constraint.Exclusive("PRICE", "PRICE"),
			},
			want: []loc{{1, "unsat"}},
		},
	}
	med := medSchema(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := CheckConstraints("constraints", med, tc.cs)
			if !sameLocs(locsOf(got), tc.want) {
				t.Errorf("findings = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestConstraintMessages spot-checks that constraint findings name the
// constraints by position and by Name().
func TestConstraintMessages(t *testing.T) {
	med := medSchema(t)
	got := CheckConstraints("constraints", med, []constraint.Constraint{
		constraint.ExactlyOne("PRICE"),
		constraint.ExactlyOne("BEDS"),
		constraint.Exclusive("PRICE", "BEDS"),
	})
	if len(got) != 2 {
		t.Fatalf("findings = %v, want 2", got)
	}
	for _, f := range got {
		if !strings.Contains(f.Message, "admit no assignment") ||
			!strings.Contains(f.Message, "constraint 3") {
			t.Errorf("message %q does not explain the exclusivity collapse", f.Message)
		}
	}
}

// TestConstraintContradictionNotDoubleReported pins the dedup between
// the contradiction and unsat passes: one defect, one finding.
func TestConstraintContradictionNotDoubleReported(t *testing.T) {
	med := medSchema(t)
	for _, cs := range [][]constraint.Constraint{
		{constraint.Frequency("PRICE", 2, 1)},
		{constraint.MustMatch("price", "PRICE"), constraint.MustMatch("price", "BEDS"), constraint.AtMostOne("PRICE")},
	} {
		got := CheckConstraints("constraints", med, cs)
		for _, f := range got {
			if f.Check == "unsat" {
				t.Errorf("contradiction leaked into the unsat pass: %v", got)
			}
		}
	}
}

// TestSoftConstraintsExemptFromUnsat pins that only hard constraints
// feed the satisfiability pass: soft preferences cannot make a set
// unsatisfiable.
func TestSoftConstraintsExemptFromUnsat(t *testing.T) {
	med := medSchema(t)
	got := CheckConstraints("constraints", med, []constraint.Constraint{
		constraint.AtMostSoft("PRICE", 0, 0.5),
		constraint.MustMatch("t1", "PRICE"),
	})
	if len(got) != 0 {
		t.Errorf("findings = %v, want none: soft constraints are preferences, not bounds", got)
	}
}
