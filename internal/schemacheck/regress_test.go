package schemacheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestDomainsClean is the repo's own acceptance gate: every datagen
// domain — mediated schema, constraint set, and all synthesized source
// schemas — must check clean, with no suppressions needed.
func TestDomainsClean(t *testing.T) {
	if findings := CheckDomains(); len(findings) != 0 {
		t.Errorf("built-in domains have findings:")
		for _, f := range findings {
			t.Errorf("  %s", f)
		}
	}
}

// TestExampleDTDsClean runs every inline DTD in the examples tree
// through the checker: the DTD string literals the walkthroughs feed
// to dtd.MustParse must stay defect-free.
func TestExampleDTDsClean(t *testing.T) {
	dir := filepath.Join("..", "..", "examples")
	var files []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, path := range files {
		for i, text := range dtdLiterals(t, path) {
			name := filepath.ToSlash(path)
			findings, err := CheckDTD(name, text)
			if err != nil {
				t.Errorf("%s: inline DTD %d does not parse: %v", name, i+1, err)
				continue
			}
			checked++
			for _, f := range findings {
				t.Errorf("%s: inline DTD %d: %s", name, i+1, f)
			}
		}
	}
	if checked == 0 {
		t.Fatal("found no inline DTDs under examples/; the regression test has gone stale")
	}
}

// dtdLiterals extracts every string literal in a Go file that looks
// like a DTD (contains an ELEMENT declaration).
func dtdLiterals(t *testing.T, path string) []string {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	var out []string
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		text := lit.Value
		if strings.HasPrefix(text, "`") {
			text = strings.Trim(text, "`")
		} else {
			unq, err := strconv.Unquote(text)
			if err != nil {
				return true
			}
			text = unq
		}
		if strings.Contains(text, "<!ELEMENT") {
			out = append(out, text)
		}
		return true
	})
	return out
}
