package schemacheck

import "repro/internal/dtd"

// schema runs the five DTD defect-class checks over s.
func (c *checker) schema(s *dtd.Schema) {
	decls := s.Decls()
	c.undeclared(s, decls)
	c.duplicates(s, decls)
	c.ambiguity(decls)
	c.degenerate(decls)
	c.nonterminating(s, decls)
	c.unreachable(s, decls)
}

// declLine falls back to line 1 for hand-built elements.
func declLine(e *dtd.Element) int {
	if e.Line > 0 {
		return e.Line
	}
	return 1
}

// particleLine prefers the particle's own position, falling back to
// the declaration's.
func particleLine(p *dtd.Particle, e *dtd.Element) int {
	if p != nil && p.Line > 0 {
		return p.Line
	}
	return declLine(e)
}

// undeclared flags content-model and mixed-set references to elements
// that are not declared. A reference that names an attribute
// pseudo-tag is called out as such: attributes are ATTLIST-declared
// leaves, never content-model particles.
func (c *checker) undeclared(s *dtd.Schema, decls []*dtd.Element) {
	attrOf := make(map[string]string)
	for _, e := range decls {
		for _, a := range e.Attributes {
			if _, ok := attrOf[a]; !ok {
				attrOf[a] = e.Name
			}
		}
	}
	seen := make(map[string]bool) // one finding per (element, missing name)
	flag := func(e *dtd.Element, name string, line int) {
		key := e.Name + "\x00" + name
		if seen[key] || s.Element(name) != nil {
			return
		}
		seen[key] = true
		if owner, isAttr := attrOf[name]; isAttr {
			c.reportf(line, "undeclared",
				"content model of %q references %q, which is an attribute of %q, not a declared element", e.Name, name, owner)
			return
		}
		c.reportf(line, "undeclared", "content model of %q references undeclared element %q", e.Name, name)
	}
	for _, e := range decls {
		switch e.Model.Kind {
		case dtd.ElementContent:
			var walk func(p *dtd.Particle)
			walk = func(p *dtd.Particle) {
				if p == nil {
					return
				}
				if p.Kind == dtd.NameParticle {
					flag(e, p.Name, particleLine(p, e))
					return
				}
				for _, ch := range p.Children {
					walk(ch)
				}
			}
			walk(e.Model.Particle)
		case dtd.Mixed:
			for _, name := range e.Model.MixedSet {
				flag(e, name, declLine(e))
			}
		}
	}
}

// duplicates flags duplicate and conflicting declarations: an
// attribute declared twice on one element, an attribute whose name
// collides with a declared element, and a repeated tag in a mixed set.
func (c *checker) duplicates(s *dtd.Schema, decls []*dtd.Element) {
	for _, e := range decls {
		attlistLine := e.AttlistLine
		if attlistLine < 1 {
			attlistLine = declLine(e)
		}
		seen := make(map[string]bool, len(e.Attributes))
		for _, a := range e.Attributes {
			if seen[a] {
				c.reportf(attlistLine, "duplicate", "attribute %q declared twice on element %q", a, e.Name)
				continue
			}
			seen[a] = true
			if s.Element(a) != nil {
				c.reportf(attlistLine, "duplicate",
					"attribute %q of element %q conflicts with the element declared under the same name", a, e.Name)
			}
		}
		if e.Model.Kind == dtd.Mixed {
			inSet := make(map[string]bool, len(e.Model.MixedSet))
			for _, name := range e.Model.MixedSet {
				if inSet[name] {
					c.reportf(declLine(e), "duplicate", "mixed content of %q lists %q twice", e.Name, name)
				}
				inSet[name] = true
			}
		}
	}
}

// ambiguity flags content models that are not 1-unambiguous, with the
// Glushkov witness: the tag whose next occurrence is not decidable
// without lookahead.
func (c *checker) ambiguity(decls []*dtd.Element) {
	for _, e := range decls {
		if e.Model.Kind != dtd.ElementContent {
			continue
		}
		g := buildGlushkov(e.Model.Particle)
		if tag, a, b, ok := g.conflict(); ok {
			c.reportf(declLine(e), "ambiguity",
				"content model %s of %q is not 1-unambiguous: occurrences %d and %d of %q can both continue the same prefix; the XML spec requires deterministic models",
				e.Model, e.Name, a+1, b+1, tag)
		}
	}
}

// degenerate flags starred or plussed particles whose body can match
// the empty sequence, the (x?)*-style nests that admit unboundedly
// many empty iterations.
func (c *checker) degenerate(decls []*dtd.Element) {
	for _, e := range decls {
		if e.Model.Kind != dtd.ElementContent {
			continue
		}
		var walk func(p *dtd.Particle)
		walk = func(p *dtd.Particle) {
			if p == nil {
				return
			}
			if (p.Occurs == dtd.ZeroOrMore || p.Occurs == dtd.OneOrMore) && nullableBody(p) {
				c.reportf(particleLine(p, e), "degenerate",
					"repetition %s in the content model of %q has a nullable body: it matches the empty sequence infinitely many ways", p, e.Name)
			}
			for _, ch := range p.Children {
				walk(ch)
			}
		}
		walk(e.Model.Particle)
	}
}

// nonterminating flags elements with no finite derivation, computed as
// grammar emptiness by least fixpoint: an element terminates when its
// content model can derive some sequence of terminating elements.
// Undeclared references are treated as terminating so the undeclared
// check does not cascade here.
func (c *checker) nonterminating(s *dtd.Schema, decls []*dtd.Element) {
	terminates := make(map[string]bool, len(decls))
	for _, e := range decls {
		if e.Model.Kind != dtd.ElementContent {
			// #PCDATA, EMPTY, ANY, and mixed content all admit a leaf
			// derivation.
			terminates[e.Name] = true
		}
	}
	var derivable func(p *dtd.Particle) bool
	derivable = func(p *dtd.Particle) bool {
		if p.Occurs == dtd.Optional || p.Occurs == dtd.ZeroOrMore {
			return true
		}
		switch p.Kind {
		case dtd.NameParticle:
			if s.Element(p.Name) == nil {
				return true
			}
			return terminates[p.Name]
		case dtd.SeqParticle:
			for _, ch := range p.Children {
				if !derivable(ch) {
					return false
				}
			}
			return true
		case dtd.ChoiceParticle:
			for _, ch := range p.Children {
				if derivable(ch) {
					return true
				}
			}
			return false
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, e := range decls {
			if terminates[e.Name] || e.Model.Kind != dtd.ElementContent {
				continue
			}
			if derivable(e.Model.Particle) {
				terminates[e.Name] = true
				changed = true
			}
		}
	}
	for _, e := range decls {
		if !terminates[e.Name] {
			c.reportf(declLine(e), "nonterminating",
				"element %q has no finite derivation: every expansion of %s requires another non-terminating element; validation and data generation would recurse forever", e.Name, e.Model)
		}
	}
}

// unreachable flags declared elements the root cannot reach through
// child references.
func (c *checker) unreachable(s *dtd.Schema, decls []*dtd.Element) {
	if len(decls) == 0 {
		return
	}
	root := s.Root()
	reached := map[string]bool{root: true}
	queue := []string{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, ch := range s.ChildTags(cur) {
			if !reached[ch] {
				reached[ch] = true
				queue = append(queue, ch)
			}
		}
	}
	for _, e := range decls {
		if !reached[e.Name] {
			c.reportf(declLine(e), "unreachable",
				"element %q is unreachable from the schema root %q", e.Name, root)
		}
	}
}
