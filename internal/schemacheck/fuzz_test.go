package schemacheck

import (
	"testing"

	"repro/internal/dtd"
)

// FuzzSchemaCheck asserts the checker's robustness contract: any DTD
// text dtd.Parse accepts must check without panicking or diverging,
// and CheckDTD must agree with Parse about what is loadable.
func FuzzSchemaCheck(f *testing.F) {
	seeds := []string{
		"<!ELEMENT r (a)>\n<!ELEMENT a (#PCDATA)>\n",
		"<!ELEMENT r ((a | b)*, a)>\n<!ELEMENT a EMPTY>\n<!ELEMENT b ANY>\n",
		"<!ELEMENT r ((a?)*, b)>\n<!ELEMENT b (r, b)>\n",
		"<!ELEMENT r (#PCDATA | a | a)*>\n<!ELEMENT a (#PCDATA)>\n<!ATTLIST r x CDATA #IMPLIED x CDATA #IMPLIED>\n",
		"<!-- lint:ignore ambiguity seeded directive -->\n<!ELEMENT r (a?, a)>\n<!ELEMENT a EMPTY>\n",
		"<!-- lint:ignore -->\n<!ELEMENT r EMPTY>\n",
		"<!ELEMENT r (ghost, r)>\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := dtd.Parse(text)
		if err != nil {
			return
		}
		findings, err := CheckDTD("fuzz.dtd", text)
		if err != nil {
			t.Fatalf("Parse accepted the input but CheckDTD failed: %v", err)
		}
		for _, fd := range findings {
			if fd.Line < 1 || fd.Column < 1 {
				t.Fatalf("finding with invalid position: %+v", fd)
			}
			if fd.Check == "" || fd.Message == "" {
				t.Fatalf("finding with empty check or message: %+v", fd)
			}
		}
		// The schema-level entry point must be no less robust, and
		// suppression inventory must never fail.
		_ = CheckSchema("fuzz.dtd", s)
		_ = Suppressions("fuzz.dtd", text)
	})
}
