// Package recognizer implements dictionary recognizers: narrow-expertise
// modules that verify whether an element's values belong to a known
// vocabulary, as the county-name recognizer of §3.3 does with a county
// database extracted from the Web. Recognizers illustrate how modules
// "with a narrow and specific area of expertise can be incorporated"
// into LSD: they are ordinary base learners whose predictions the
// meta-learner weights like any other.
package recognizer

import (
	"fmt"
	"strings"

	"repro/internal/learn"
	"repro/internal/text"
)

// Dictionary is a recognizer backed by a fixed set of known values: if
// an instance's content is in the dictionary, the recognizer boosts its
// target label; otherwise it abstains (uniform prediction).
type Dictionary struct {
	name    string
	target  string
	entries map[string]bool
	labels  []string
	// hitRate is estimated during training: the fraction of true target
	// instances the dictionary recognizes, used to scale confidence.
	hitRate float64
}

// NewDictionary builds a recognizer that maps recognized values to the
// target label. Entries are normalized (lower-cased, token-joined) for
// robust lookup.
func NewDictionary(name, target string, entries []string) *Dictionary {
	d := &Dictionary{
		name:    name,
		target:  target,
		entries: make(map[string]bool, len(entries)),
		hitRate: 0.9,
	}
	for _, e := range entries {
		d.entries[normalize(e)] = true
	}
	return d
}

// NewCountyRecognizer returns the county-name recognizer of §3.3,
// backed by the embedded US county database.
func NewCountyRecognizer(target string) *Dictionary {
	return NewDictionary("CountyNameRecognizer", target, USCounties())
}

func normalize(s string) string {
	return strings.Join(text.Tokenize(s), " ")
}

// Name implements learn.Learner.
func (d *Dictionary) Name() string { return d.name }

// Contains reports whether value is in the dictionary.
func (d *Dictionary) Contains(value string) bool {
	return d.entries[normalize(value)]
}

// Train records the label set and calibrates the recognizer's hit rate
// on the true target instances.
func (d *Dictionary) Train(labels []string, examples []learn.Example) error {
	if len(labels) == 0 {
		return fmt.Errorf("recognizer: no labels")
	}
	d.labels = append([]string(nil), labels...)
	hits, total := 0, 0
	for _, ex := range examples {
		if ex.Label != d.target {
			continue
		}
		total++
		if d.Contains(ex.Instance.Content) {
			hits++
		}
	}
	if total > 0 {
		d.hitRate = float64(hits) / float64(total)
	}
	return nil
}

// Predict boosts the target label when the content is recognized and
// abstains (uniform) otherwise. The boost is proportional to the
// calibrated hit rate so a dictionary that rarely fires on true
// instances is not over-trusted.
func (d *Dictionary) Predict(in learn.Instance) learn.Prediction {
	if len(d.labels) == 0 {
		// Normalize is a no-op on the empty prediction; calling it keeps
		// the every-return-is-normalized invariant machine-checkable.
		return learn.Prediction{}.Normalize()
	}
	if !d.Contains(in.Content) {
		return learn.Uniform(d.labels)
	}
	p := make(learn.Prediction, len(d.labels))
	base := (1 - d.hitRate) / float64(len(d.labels))
	for _, c := range d.labels {
		p[c] = base
	}
	p[d.target] += d.hitRate
	return p.Normalize()
}
