package recognizer

import (
	"math"
	"testing"

	"repro/internal/learn"
)

var labels = []string{"ADDRESS", "COUNTY", "DESCRIPTION"}

func ex(content, label string) learn.Example {
	return learn.Example{Instance: learn.Instance{Content: content}, Label: label}
}

func TestCountyRecognizerHit(t *testing.T) {
	r := NewCountyRecognizer("COUNTY")
	if err := r.Train(labels, []learn.Example{
		ex("King", "COUNTY"),
		ex("Pierce", "COUNTY"),
		ex("Seattle, WA", "ADDRESS"),
	}); err != nil {
		t.Fatal(err)
	}
	p := r.Predict(learn.Instance{Content: "Snohomish"})
	if best, _ := p.Best(); best != "COUNTY" {
		t.Errorf("Best = %q, want COUNTY", best)
	}
	if p["COUNTY"] <= p["ADDRESS"] {
		t.Errorf("COUNTY score %g should exceed ADDRESS %g", p["COUNTY"], p["ADDRESS"])
	}
}

func TestCountyRecognizerAbstains(t *testing.T) {
	r := NewCountyRecognizer("COUNTY")
	if err := r.Train(labels, nil); err != nil {
		t.Fatal(err)
	}
	p := r.Predict(learn.Instance{Content: "not a county at all"})
	for _, c := range labels {
		if math.Abs(p[c]-1.0/3) > 1e-9 {
			t.Errorf("non-county prediction not uniform: %v", p)
		}
	}
}

func TestCaseAndPunctuationInsensitive(t *testing.T) {
	r := NewCountyRecognizer("COUNTY")
	if err := r.Train(labels, nil); err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"king", "KING", "King ", "walla-walla", "Walla Walla"} {
		if !r.Contains(v) {
			t.Errorf("Contains(%q) = false", v)
		}
	}
	if r.Contains("Kingdom") {
		t.Error("Contains(Kingdom) = true")
	}
}

func TestHitRateCalibration(t *testing.T) {
	// Half the true COUNTY values are in the dictionary: the calibrated
	// confidence must drop accordingly, but the boosted label still wins
	// on recognized values.
	r := NewDictionary("d", "COUNTY", []string{"King"})
	if err := r.Train(labels, []learn.Example{
		ex("King", "COUNTY"),
		ex("Utsira", "COUNTY"), // not in dictionary
	}); err != nil {
		t.Fatal(err)
	}
	p := r.Predict(learn.Instance{Content: "King"})
	if best, _ := p.Best(); best != "COUNTY" {
		t.Errorf("Best = %q, want COUNTY", best)
	}
	if p["COUNTY"] > 0.9 {
		t.Errorf("hit rate 0.5 should temper confidence, got %g", p["COUNTY"])
	}
}

func TestTrainNoLabels(t *testing.T) {
	r := NewCountyRecognizer("COUNTY")
	if err := r.Train(nil, nil); err == nil {
		t.Error("Train with no labels should error")
	}
}

func TestUSCountiesNonTrivial(t *testing.T) {
	cs := USCounties()
	if len(cs) < 100 {
		t.Errorf("county database has %d entries, want >= 100", len(cs))
	}
	seenKing := false
	for _, c := range cs {
		if c == "King" {
			seenKing = true
		}
	}
	if !seenKing {
		t.Error("county database missing King county")
	}
}
