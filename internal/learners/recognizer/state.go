package recognizer

// Serialization support: a dictionary recognizer is its normalized
// entry set plus the hit rate calibrated during training. Entries are
// stored already normalized, so Restore inserts them verbatim instead
// of re-running normalization (which would be a behavioural no-op but
// wasted work on large dictionaries).

import (
	"fmt"
	"sort"
)

// State is the serializable view of a trained Dictionary.
type State struct {
	Name   string
	Target string
	// Entries are the normalized dictionary entries, sorted.
	Entries []string
	Labels  []string
	HitRate float64
}

// State snapshots the recognizer.
func (d *Dictionary) State() *State {
	st := &State{
		Name:    d.name,
		Target:  d.target,
		Entries: make([]string, 0, len(d.entries)),
		Labels:  append([]string(nil), d.labels...),
		HitRate: d.hitRate,
	}
	for e := range d.entries {
		st.Entries = append(st.Entries, e)
	}
	sort.Strings(st.Entries)
	return st
}

// Restore rebuilds a trained recognizer from a snapshot.
func Restore(st *State) (*Dictionary, error) {
	if st == nil {
		return nil, fmt.Errorf("recognizer: nil state")
	}
	if st.Name == "" || st.Target == "" {
		return nil, fmt.Errorf("recognizer: state missing name or target")
	}
	if st.HitRate < 0 || st.HitRate > 1 {
		return nil, fmt.Errorf("recognizer: hit rate %v outside [0, 1]", st.HitRate)
	}
	d := &Dictionary{
		name:    st.Name,
		target:  st.Target,
		entries: make(map[string]bool, len(st.Entries)),
		labels:  append([]string(nil), st.Labels...),
		hitRate: st.HitRate,
	}
	for _, e := range st.Entries {
		d.entries[e] = true
	}
	return d, nil
}
