package recognizer

// USCounties returns the embedded county-name database. The paper's
// recognizer used a database extracted from the Web; this list covers
// the most populous US counties plus the counties of Washington state
// (the paper's real-estate sources are Seattle-area heavy), which is
// sufficient for the membership-test behaviour the experiments need.
func USCounties() []string {
	return []string{
		// Washington state (all 39).
		"Adams", "Asotin", "Benton", "Chelan", "Clallam", "Clark",
		"Columbia", "Cowlitz", "Douglas", "Ferry", "Franklin", "Garfield",
		"Grant", "Grays Harbor", "Island", "Jefferson", "King", "Kitsap",
		"Kittitas", "Klickitat", "Lewis", "Lincoln", "Mason", "Okanogan",
		"Pacific", "Pend Oreille", "Pierce", "San Juan", "Skagit",
		"Skamania", "Snohomish", "Spokane", "Stevens", "Thurston",
		"Wahkiakum", "Walla Walla", "Whatcom", "Whitman", "Yakima",
		// Most populous counties elsewhere.
		"Los Angeles", "Cook", "Harris", "Maricopa", "San Diego",
		"Orange", "Miami-Dade", "Dallas", "Kings", "Riverside",
		"Queens", "San Bernardino", "Clark", "Tarrant", "Santa Clara",
		"Broward", "Wayne", "Bexar", "New York", "Alameda",
		"Middlesex", "Philadelphia", "Suffolk", "Sacramento", "Bronx",
		"Palm Beach", "Nassau", "Hillsborough", "Cuyahoga", "Allegheny",
		"Oakland", "Franklin", "Hennepin", "Travis", "Fairfax",
		"Contra Costa", "Salt Lake", "Montgomery", "Pima", "Fulton",
		"Mecklenburg", "Westchester", "Milwaukee", "Wake", "Fresno",
		"Shelby", "Fairfield", "DuPage", "Erie", "Marion",
		"Hartford", "Prince George's", "Duval", "Bergen", "Gwinnett",
		"Multnomah", "Denver", "Baltimore", "Kern", "Ventura",
		"Macomb", "St. Louis", "San Francisco", "El Paso", "Hamilton",
		"Honolulu", "Hidalgo", "Essex", "Monroe", "Jackson",
		"Worcester", "Norfolk", "Bernalillo", "Providence", "Davidson",
		"Jefferson", "Will", "Collin", "Lake", "Johnson",
		"Summit", "Washtenaw", "Boulder", "Ada", "Utah",
		"Washoe", "Douglas", "Lane", "Marin", "Sonoma",
	}
}
