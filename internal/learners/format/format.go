// Package format implements the format learner that §7 identifies as
// missing from the original system: "course codes are short
// alpha-numeric strings that consist of department code followed by
// course number. As such, a format learner would presumably match it
// better than any of LSD's current base learners." The learner
// abstracts each value to a character-class signature (runs of letters
// A, digits 9, and literal punctuation) and applies Naive Bayes over
// signature tokens.
package format

import (
	"fmt"
	"math"
	"strings"
	"unicode"

	"repro/internal/learn"
)

// Signature abstracts a string to its format signature: maximal runs
// of letters become "A<n>" buckets, maximal runs of digits become
// "9<n>" buckets, whitespace collapses to "_", and other runes are kept
// literally. Run lengths are bucketed (1, 2, 3, 4+) so that "CSE142"
// and "INFO344" share the signature "A3+93+".
func Signature(s string) string {
	var b strings.Builder
	runLen := 0
	var runKind rune // 'A' letters, '9' digits, 0 none
	flush := func() {
		if runKind == 0 {
			return
		}
		b.WriteRune(runKind)
		switch {
		case runLen == 1:
			b.WriteString("1")
		case runLen == 2:
			b.WriteString("2")
		case runLen == 3:
			b.WriteString("3")
		default:
			b.WriteString("4+")
		}
		runKind, runLen = 0, 0
	}
	prevSpace := false
	for _, r := range s {
		switch {
		case unicode.IsLetter(r):
			if runKind != 'A' {
				flush()
				runKind = 'A'
			}
			runLen++
			prevSpace = false
		case unicode.IsDigit(r):
			if runKind != '9' {
				flush()
				runKind = '9'
			}
			runLen++
			prevSpace = false
		case unicode.IsSpace(r):
			flush()
			if !prevSpace {
				b.WriteByte('_')
				prevSpace = true
			}
		default:
			flush()
			b.WriteRune(r)
			prevSpace = false
		}
	}
	flush()
	return b.String()
}

// Learner classifies instances by the format signatures of their
// values using per-label signature frequencies with Laplace smoothing.
type Learner struct {
	labels   []string
	sigCount map[string]map[string]float64 // label -> signature -> count
	total    map[string]float64            // label -> #values
	numSigs  map[string]bool
}

// New returns an untrained format learner.
func New() *Learner { return &Learner{} }

// Factory is a learn.Factory for the format learner.
func Factory() learn.Learner { return New() }

// Name implements learn.Learner.
func (l *Learner) Name() string { return "FormatLearner" }

// Train tallies signature frequencies per label.
func (l *Learner) Train(labels []string, examples []learn.Example) error {
	if len(labels) == 0 {
		return fmt.Errorf("format: no labels")
	}
	l.labels = append([]string(nil), labels...)
	l.sigCount = make(map[string]map[string]float64, len(labels))
	l.total = make(map[string]float64, len(labels))
	l.numSigs = make(map[string]bool)
	for _, c := range labels {
		l.sigCount[c] = make(map[string]float64)
	}
	for _, ex := range examples {
		counts, ok := l.sigCount[ex.Label]
		if !ok {
			return fmt.Errorf("format: example labelled %q outside label set", ex.Label)
		}
		sig := Signature(ex.Instance.Content)
		counts[sig]++
		l.total[ex.Label]++
		l.numSigs[sig] = true
	}
	return nil
}

// Predict scores each label by the smoothed likelihood of the
// instance's signature under that label.
func (l *Learner) Predict(in learn.Instance) learn.Prediction {
	if len(l.labels) == 0 {
		// Normalize is a no-op on the empty prediction; calling it keeps
		// the every-return-is-normalized invariant machine-checkable.
		return learn.Prediction{}.Normalize()
	}
	sig := Signature(in.Content)
	v := float64(len(l.numSigs))
	if v == 0 {
		return learn.Uniform(l.labels)
	}
	p := make(learn.Prediction, len(l.labels))
	maxLog := math.Inf(-1)
	logs := make(map[string]float64, len(l.labels))
	for _, c := range l.labels {
		lp := math.Log((l.sigCount[c][sig] + 1) / (l.total[c] + v))
		logs[c] = lp
		if lp > maxLog {
			maxLog = lp
		}
	}
	for c, lp := range logs {
		p[c] = math.Exp(lp - maxLog)
	}
	return p.Normalize()
}
