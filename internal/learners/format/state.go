package format

// Serialization support: the trained model is the per-label signature
// frequency tables, carried verbatim so a restored learner's smoothed
// likelihoods are bit-identical to the in-memory model's.

import (
	"fmt"
	"sort"
)

// LabelState is the serialized signature table of one label. Sigs and
// Counts align; Sigs is sorted so encoding is deterministic.
type LabelState struct {
	Sigs   []string
	Counts []float64
	Total  float64
}

// State is the serializable view of a trained Learner. PerLabel aligns
// one-to-one with Labels; Sigs is the distinct-signature set (sorted).
type State struct {
	Labels   []string
	PerLabel []LabelState
	Sigs     []string
}

// State snapshots the learner; nil if untrained.
func (l *Learner) State() *State {
	if l.sigCount == nil {
		return nil
	}
	st := &State{
		Labels:   append([]string(nil), l.labels...),
		PerLabel: make([]LabelState, len(l.labels)),
		Sigs:     make([]string, 0, len(l.numSigs)),
	}
	for sig := range l.numSigs {
		st.Sigs = append(st.Sigs, sig)
	}
	sort.Strings(st.Sigs)
	for i, c := range l.labels {
		counts := l.sigCount[c]
		ls := LabelState{Total: l.total[c], Sigs: make([]string, 0, len(counts))}
		for sig := range counts {
			ls.Sigs = append(ls.Sigs, sig)
		}
		sort.Strings(ls.Sigs)
		ls.Counts = make([]float64, len(ls.Sigs))
		for j, sig := range ls.Sigs {
			ls.Counts[j] = counts[sig]
		}
		st.PerLabel[i] = ls
	}
	return st
}

// Restore rebuilds a trained learner from a snapshot.
func Restore(st *State) (*Learner, error) {
	if st == nil {
		return nil, fmt.Errorf("format: nil state")
	}
	if len(st.Labels) == 0 {
		return nil, fmt.Errorf("format: state has no labels")
	}
	if len(st.PerLabel) != len(st.Labels) {
		return nil, fmt.Errorf("format: %d label tables for %d labels", len(st.PerLabel), len(st.Labels))
	}
	l := New()
	l.labels = append([]string(nil), st.Labels...)
	l.sigCount = make(map[string]map[string]float64, len(st.Labels))
	l.total = make(map[string]float64, len(st.Labels))
	l.numSigs = make(map[string]bool, len(st.Sigs))
	for _, sig := range st.Sigs {
		l.numSigs[sig] = true
	}
	for i, c := range l.labels {
		if _, dup := l.sigCount[c]; dup {
			return nil, fmt.Errorf("format: duplicate label %q", c)
		}
		ls := st.PerLabel[i]
		if len(ls.Counts) != len(ls.Sigs) {
			return nil, fmt.Errorf("format: label %q has %d counts for %d signatures", c, len(ls.Counts), len(ls.Sigs))
		}
		counts := make(map[string]float64, len(ls.Sigs))
		for j, sig := range ls.Sigs {
			counts[sig] = ls.Counts[j]
		}
		l.sigCount[c] = counts
		l.total[c] = ls.Total
	}
	return l, nil
}
