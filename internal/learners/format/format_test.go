package format

import (
	"testing"

	"repro/internal/learn"
)

func TestSignature(t *testing.T) {
	cases := map[string]string{
		"CSE142":         "A393",
		"INFO344":        "A4+93",
		"(206) 523 4719": "(93)_93_94+",
		"$70,000":        "$92,93",
		"3":              "91",
		"yes":            "A3",
		"":               "",
		"a b":            "A1_A1",
	}
	for in, want := range cases {
		if got := Signature(in); got != want {
			t.Errorf("Signature(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSignatureSharedFormats(t *testing.T) {
	// Course codes with 3-letter departments share a signature.
	if Signature("CSE142") != Signature("BIO301") {
		t.Error("course codes should share a signature")
	}
	// Phone numbers share a signature regardless of digits.
	if Signature("(206) 523 4719") != Signature("(305) 729 0831") {
		t.Error("phone numbers should share a signature")
	}
	// A price and a phone number must differ.
	if Signature("$70,000") == Signature("(206) 523 4719") {
		t.Error("price and phone signatures should differ")
	}
}

var labels = []string{"COURSE-CODE", "PRICE", "AGENT-PHONE"}

func ex(content, label string) learn.Example {
	return learn.Example{Instance: learn.Instance{Content: content}, Label: label}
}

func trained(t *testing.T) *Learner {
	t.Helper()
	l := New()
	err := l.Train(labels, []learn.Example{
		ex("CSE142", "COURSE-CODE"),
		ex("MATH126", "COURSE-CODE"),
		ex("BIO301", "COURSE-CODE"),
		ex("$250,000", "PRICE"),
		ex("$1,175,000", "PRICE"),
		ex("(305) 729 0831", "AGENT-PHONE"),
		ex("(617) 253 1429", "AGENT-PHONE"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestPredictCourseCode(t *testing.T) {
	l := trained(t)
	// The §7 motivating case: a format learner matches course codes.
	if best, _ := l.Predict(learn.Instance{Content: "CSE586"}).Best(); best != "COURSE-CODE" {
		t.Errorf("Best = %q, want COURSE-CODE", best)
	}
}

func TestPredictPhoneAndPrice(t *testing.T) {
	l := trained(t)
	if best, _ := l.Predict(learn.Instance{Content: "(415) 273 1234"}).Best(); best != "AGENT-PHONE" {
		t.Errorf("phone Best = %q", best)
	}
	if best, _ := l.Predict(learn.Instance{Content: "$320,000"}).Best(); best != "PRICE" {
		t.Errorf("price Best = %q", best)
	}
}

func TestPredictUnseenSignatureSoft(t *testing.T) {
	l := trained(t)
	p := l.Predict(learn.Instance{Content: "totally different kind of value with words"})
	sum := 0.0
	for _, c := range labels {
		sum += p[c]
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("prediction not normalized: %v", p)
	}
}

func TestPredictUntrained(t *testing.T) {
	l := New()
	if p := l.Predict(learn.Instance{Content: "x"}); len(p) != 0 {
		t.Errorf("untrained Predict = %v, want empty", p)
	}
	if err := l.Train(labels, nil); err != nil {
		t.Fatal(err)
	}
	p := l.Predict(learn.Instance{Content: "x"})
	if len(p) != len(labels) {
		t.Errorf("no-example Predict over %d labels", len(p))
	}
}

func TestTrainErrors(t *testing.T) {
	l := New()
	if err := l.Train(nil, nil); err == nil {
		t.Error("no labels should error")
	}
	l = New()
	if err := l.Train(labels, []learn.Example{ex("x", "BAD")}); err == nil {
		t.Error("unknown label should error")
	}
}
