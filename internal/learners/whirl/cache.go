package whirl

import (
	"sync"

	"repro/internal/learn"
)

// defaultCacheShards is the shard count used when Config.CacheShards
// is zero. Eight shards keep lock hold times short without wasting
// memory on mostly-empty generations at the default cache bound.
const defaultCacheShards = 8

// predCache is the sharded two-generation prediction cache. The old
// single-lock cache serialized every concurrent Predict on one
// RWMutex; here the key space is split across power-of-two shards by
// a hash of the extracted text, so concurrent lookups of different
// texts take different locks. Each shard keeps the two-generation
// eviction semantics of the original: inserts fill the current
// generation, a full generation rotates (old is dropped, current
// becomes old), and an old-generation hit is promoted back into the
// current one. Shard count never changes which prediction is returned
// — entries are pure functions of the extracted text and the frozen
// model — only which lock guards them; a property test pins that.
type predCache struct {
	shards []cacheShard
	mask   uint32
	// perGen bounds each shard's current generation so that the whole
	// cache (all shards, both generations) stays within the configured
	// entry budget.
	perGen int
}

// cacheShard is one lock domain of the cache. Cached predictions are
// immutable by contract (learn.Learner.Predict) and returned without
// cloning.
type cacheShard struct {
	mu sync.Mutex
	// cur is the current generation, filled by inserts and promotions.
	cur map[string]learn.Prediction // guarded by mu
	// old is the previous generation, read-only until dropped by the
	// next rotation.
	old map[string]learn.Prediction // guarded by mu
}

// newPredCache returns a cache of capacity total entries split over
// shards lock domains, rounded up to a power of two (zero or negative
// selects defaultCacheShards).
func newPredCache(shards, capacity int) *predCache {
	if shards <= 0 {
		shards = defaultCacheShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perGen := capacity / n / 2
	if perGen < 1 {
		perGen = 1
	}
	return &predCache{shards: make([]cacheShard, n), mask: uint32(n - 1), perGen: perGen}
}

// cacheHash is 32-bit FNV-1a, inlined so hashing an extracted text
// allocates nothing.
func cacheHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// get returns the cached prediction for key, if any.
func (pc *predCache) get(key string) (learn.Prediction, bool) {
	return pc.shards[cacheHash(key)&pc.mask].get(key, pc.perGen)
}

// put records a prediction for key.
func (pc *predCache) put(key string, p learn.Prediction) {
	pc.shards[cacheHash(key)&pc.mask].put(key, p, pc.perGen)
}

// reset drops every entry; Train calls it when the model changes.
func (pc *predCache) reset() {
	for i := range pc.shards {
		pc.shards[i].reset()
	}
}

// get looks key up in both generations, promoting an old-generation
// hit into the current one so hot entries survive rotation. The
// promotion happens under the same critical section as the lookup.
func (sh *cacheShard) get(key string, perGen int) (learn.Prediction, bool) {
	sh.mu.Lock()
	p, ok := sh.cur[key]
	if !ok {
		if p, ok = sh.old[key]; ok {
			// Promote. The key is absent from cur (both lookups ran under
			// this lock), so rotation depends only on cur's size.
			if len(sh.cur) >= perGen {
				sh.old = sh.cur
				//lint:ignore hotalloc generation rotation allocates once per perGen inserts, amortized to nothing per prediction
				sh.cur = make(map[string]learn.Prediction, 64)
			}
			if sh.cur == nil {
				//lint:ignore hotalloc one-time lazy init of the shard's generation map, amortized over every later hit
				sh.cur = make(map[string]learn.Prediction, 64)
			}
			sh.cur[key] = p
		}
	}
	sh.mu.Unlock()
	return p, ok
}

// put records p in the current generation, rotating the generations
// when the current one reaches the per-shard bound.
func (sh *cacheShard) put(key string, p learn.Prediction, perGen int) {
	sh.mu.Lock()
	if sh.cur == nil {
		//lint:ignore hotalloc one-time lazy init of the shard's generation map, amortized over every later hit
		sh.cur = make(map[string]learn.Prediction, 64)
	}
	if _, exists := sh.cur[key]; !exists && len(sh.cur) >= perGen {
		sh.old = sh.cur
		//lint:ignore hotalloc generation rotation allocates once per perGen inserts, amortized to nothing per prediction
		sh.cur = make(map[string]learn.Prediction, 64)
	}
	sh.cur[key] = p
	sh.mu.Unlock()
}

// reset drops both generations.
func (sh *cacheShard) reset() {
	sh.mu.Lock()
	sh.cur, sh.old = nil, nil
	sh.mu.Unlock()
}
