// Package whirl implements the nearest-neighbour classification model
// of Cohen and Hirsh's WHIRL, which the paper's name matcher and
// content matcher are built on (§3.3): training examples are stored as
// TF/IDF vectors, and a new instance is labelled from the labels of the
// stored examples within a similarity distance of it, combined with a
// noisy-or.
//
// Representation: the store lives entirely in the interned-id
// coordinate system of the training corpus. The inverted index is a
// flat postings table — postings[id] lists (docID, weight) pairs — so
// similarity accumulation walks contiguous slices and never chases a
// per-document map. Scores accumulate into a reusable dense []float64
// scratch buffer indexed by docID; the query's terms are visited in
// ascending-id order, so every similarity sums its float terms in a
// canonical order fixed at training time and the output is
// bit-identical on every run without per-call sorting.
package whirl

import (
	"fmt"
	"slices"

	"repro/internal/learn"
	"repro/internal/pool"
	"repro/internal/text"
)

// Extractor maps an instance to the text the classifier vectorizes.
// The name matcher extracts the expanded tag name; the content matcher
// extracts the data content.
type Extractor func(learn.Instance) string

// Config tunes a Classifier.
type Config struct {
	// MinSimilarity is the δ threshold of §3.3: stored examples whose
	// cosine similarity falls at or below it are ignored.
	MinSimilarity float64
	// MaxNeighbors caps how many nearest stored examples contribute.
	// Zero means all neighbours within the threshold.
	MaxNeighbors int
	// Smoothing is added to every label score before normalization so
	// no label is ever ruled out entirely.
	Smoothing float64
	// CacheShards sets the number of prediction-cache lock shards,
	// rounded up to a power of two; zero selects the default. Purely a
	// process-local concurrency knob: shard count never changes which
	// prediction is returned (entries are pure functions of the
	// extracted text and the frozen model), so like core.Config.Workers
	// it is deliberately not part of the persisted model state.
	//lint:ignore statecodec CacheShards is a process-local lock-sharding knob with no effect on predictions; persisting it would pin a host concurrency choice into the artifact
	CacheShards int
}

// DefaultConfig matches the behaviour described in the paper: consider
// every stored example with positive similarity, lightly smoothed.
func DefaultConfig() Config {
	return Config{MinSimilarity: 0, MaxNeighbors: 30, Smoothing: 0.01}
}

// posting is one inverted-index entry: a stored document that contains
// the token, with the token's TF/IDF weight in that document inlined so
// accumulation needs no second lookup.
type posting struct {
	doc int32
	w   float64
}

// Classifier is a WHIRL-style TF/IDF nearest-neighbour classifier.
// Lookups run against an inverted index (token id → postings), so a
// prediction touches only stored examples that share a token with the
// query instead of the whole store.
type Classifier struct {
	name    string
	extract Extractor
	cfg     Config
	labels  []string
	corpus  *text.Corpus
	// postings is the inverted index, indexed by token id; each posting
	// list is ordered by ascending doc id (training order).
	postings [][]posting
	// docLabels maps each stored document to its label's index in
	// labels.
	docLabels []int32
	// scratch pools the dense similarity buffers predicts accumulate
	// into — one row per stored document for a single query, one row
	// per query document for a batch chunk — so steady-state prediction
	// allocates nothing for scoring.
	scratch pool.Floats
	// cache memoizes predictions by extracted text: name-matcher inputs
	// repeat once per column instance, so hit rates are very high. It
	// is sharded by key hash so the parallel match/CV fan-out and
	// concurrent serve requests do not serialize on one lock; entries
	// are pure functions of the frozen model, so losing a concurrent
	// insert only costs a recomputation, never determinism.
	cache *predCache
}

// maxCacheEntries bounds the prediction cache (both generations
// together); each generation holds at most half.
const maxCacheEntries = 8192

// New returns an untrained classifier. name identifies it in reports;
// extract selects the instance text.
func New(name string, extract Extractor, cfg Config) *Classifier {
	return &Classifier{
		name:    name,
		extract: extract,
		cfg:     cfg,
		cache:   newPredCache(cfg.CacheShards, maxCacheEntries),
	}
}

// Name implements learn.Learner.
func (c *Classifier) Name() string { return c.name }

// Train stores the TF/IDF vectors of all training examples (§3.3: "the
// name matcher stores all training examples ... it has seen so far").
func (c *Classifier) Train(labels []string, examples []learn.Example) error {
	if len(labels) == 0 {
		return fmt.Errorf("whirl: no labels")
	}
	c.labels = append([]string(nil), labels...)
	labelIdx := make(map[string]int, len(labels))
	for i, l := range labels {
		labelIdx[l] = i
	}
	// Deduplicate by (extracted text, label): a source contributes one
	// identical example per listing, and the noisy-or combination must
	// count distinct pieces of evidence, not copies — otherwise forty
	// identical partial matches saturate the score to certainty.
	type docKey struct{ text, label string }
	seen := make(map[docKey]bool, len(examples))
	var texts []string
	var docLabels []int32
	for _, ex := range examples {
		k := docKey{c.extract(ex.Instance), ex.Label}
		if seen[k] {
			continue
		}
		seen[k] = true
		texts = append(texts, k.text)
		li, ok := labelIdx[k.label]
		if !ok {
			return fmt.Errorf("whirl: example labelled %q outside label set", k.label)
		}
		docLabels = append(docLabels, int32(li))
	}
	c.corpus = text.NewCorpus()
	bags := make([]text.Bag, len(texts))
	for i, txt := range texts {
		bags[i] = text.NewBag(text.TokenizeStemStop(txt))
		c.corpus.AddDocument(bags[i])
	}
	c.corpus.Freeze()
	// Train is documented as happening-before any concurrent Predict,
	// but the cache reset still takes the shard locks: it is free here
	// and keeps the guarded-by invariant unconditional.
	c.cache.reset()
	c.docLabels = docLabels
	c.postings = make([][]posting, c.corpus.Vocab().Len())
	for i := range texts {
		vec := c.corpus.Vectorize(bags[i])
		// Every token was interned during AddDocument, so vec has no
		// out-of-vocabulary terms. Docs are processed in ascending order,
		// so each posting list stays sorted by doc id.
		for _, term := range vec.Terms {
			c.postings[term.ID] = append(c.postings[term.ID], posting{doc: int32(i), w: term.W})
		}
	}
	return nil
}

// Predict computes the similarity of the instance to every stored
// example and combines the similarities of the qualifying neighbours
// per label with a noisy-or: s(c) = 1 − Π(1 − simᵢ). Scores are
// smoothed and normalized to a confidence distribution. The returned
// prediction may be shared with the classifier's cache and other
// callers; callers must treat it as read-only.
//
// lint:hot
func (c *Classifier) Predict(in learn.Instance) learn.Prediction {
	extracted := c.extract(in)
	if p, ok := c.cache.get(extracted); ok {
		return p
	}
	p := c.predict(extracted)
	if c.corpus != nil {
		c.cache.put(extracted, p)
	}
	return p
}

// maxBatchRows bounds the dense chunk matrix PredictBatch scores into
// (rows × stored documents floats), so a very large batch is scored
// in bounded-memory chunks.
const maxBatchRows = 64

// PredictBatch implements learn.BatchPredictor: the whole batch is
// deduplicated by extracted text, cache misses are scored in chunks
// by one merged pass over the shared postings table, and duplicate
// instances share one prediction (read-only by the Predict contract).
// Per instance the result is bit-identical to Predict: predictChunk
// accumulates each query row's float terms in exactly the
// per-instance order, and scoring goes through the same scoreSims.
//
// lint:hot
func (c *Classifier) PredictBatch(ins []learn.Instance) []learn.Prediction {
	out := make([]learn.Prediction, len(ins))
	if len(ins) == 0 {
		return out
	}
	if c.corpus == nil || len(c.docLabels) == 0 {
		// Untrained fallback: every instance gets the same smoothed
		// near-uniform prediction; compute it once and share it.
		p := c.predictUntrained()
		for i := range out {
			out[i] = p
		}
		return out
	}
	// Dedup by extracted text and resolve cache hits; only distinct
	// misses reach the batched scoring pass.
	//lint:ignore hotalloc the per-batch dedup index replaces a full model walk per duplicate instance; one map per batch is the cheap side of that trade
	idx := make(map[string]int, len(ins))
	pos := make([]int, len(ins))
	uniqPreds := make([]learn.Prediction, 0, len(ins))
	missTexts := make([]string, 0, len(ins))
	missSlots := make([]int, 0, len(ins))
	for i, in := range ins {
		extracted := c.extract(in)
		u, ok := idx[extracted]
		if !ok {
			u = len(uniqPreds)
			idx[extracted] = u
			p, hit := c.cache.get(extracted)
			uniqPreds = append(uniqPreds, p) // nil placeholder on miss
			if !hit {
				missTexts = append(missTexts, extracted)
				missSlots = append(missSlots, u)
			}
		}
		pos[i] = u
	}
	for start := 0; start < len(missTexts); start += maxBatchRows {
		end := min(start+maxBatchRows, len(missTexts))
		c.predictChunk(missTexts[start:end], uniqPreds, missSlots[start:end])
	}
	for k, txt := range missTexts {
		c.cache.put(txt, uniqPreds[missSlots[k]])
	}
	for i := range ins {
		out[i] = uniqPreds[pos[i]]
	}
	return out
}

// qterm is one query-term occurrence in a chunk's merged term list:
// token id, chunk-row index, query TF/IDF weight.
type qterm struct {
	id text.ID
	q  int32
	w  float64
}

// predictChunk scores one chunk of extracted texts with a single
// merged traversal of the postings table, writing the prediction for
// texts[k] into preds[slots[k]]. All chunk queries' terms are merged
// and sorted by (token id, row): walking that list visits each needed
// posting list once per querying row, ids ascending — so each row's
// accumulation order is exactly the per-instance predict order and
// the results are bit-identical to Predict's.
func (c *Classifier) predictChunk(texts []string, preds []learn.Prediction, slots []int) {
	nd := len(c.docLabels)
	terms := make([]qterm, 0, 16*len(texts))
	for qi, txt := range texts {
		vec := c.corpus.Vectorize(text.NewBag(text.TokenizeStemStop(txt)))
		// Out-of-vocabulary terms have no postings and contribute only
		// to the query norm (inside Vectorize), exactly as per-instance.
		for _, tm := range vec.Terms {
			terms = append(terms, qterm{id: tm.ID, q: int32(qi), w: tm.W})
		}
	}
	// (id, q) is a total key — Vectorize merges duplicate tokens — so
	// the unstable sort has no equal elements to reorder.
	slices.SortFunc(terms, func(a, b qterm) int {
		if a.id != b.id {
			if a.id < b.id {
				return -1
			}
			return 1
		}
		return int(a.q) - int(b.q)
	})
	// Dense row-major similarity matrix: one row of nd document slots
	// per chunk query, pooled and zeroed like the single-query buffer.
	sims := c.scratch.Get(len(texts) * nd)
	for i := 0; i < len(terms); {
		id := terms[i].id
		j := i + 1
		for j < len(terms) && terms[j].id == id {
			j++
		}
		if plist := c.postings[id]; len(plist) > 0 {
			for k := i; k < j; k++ {
				off := int(terms[k].q) * nd
				w := terms[k].w
				for _, pst := range plist {
					sims[off+int(pst.doc)] += w * pst.w
				}
			}
		}
		i = j
	}
	for qi := range texts {
		preds[slots[qi]] = c.scoreSims(sims[qi*nd : (qi+1)*nd])
	}
	c.scratch.Put(sims)
}

// predict computes the normalized prediction for one extracted text.
func (c *Classifier) predict(extracted string) learn.Prediction {
	if c.corpus == nil || len(c.docLabels) == 0 {
		return c.predictUntrained()
	}
	q := c.corpus.Vectorize(text.NewBag(text.TokenizeStemStop(extracted)))

	// Accumulate dot products over the inverted index into the dense
	// scratch buffer: only stored examples sharing at least one token
	// with the query can have a non-zero similarity. Query terms are
	// sorted by ascending id (Vectorize's canonical order), so each
	// document's similarity sums its terms identically on every run.
	// Out-of-vocabulary query terms have no postings and contribute
	// only to the query norm, exactly as in the map representation.
	sims := c.scratch.Get(len(c.docLabels))
	for _, term := range q.Terms {
		for _, pst := range c.postings[term.ID] {
			sims[pst.doc] += term.W * pst.w
		}
	}
	p := c.scoreSims(sims)
	c.scratch.Put(sims)
	return p
}

// predictUntrained is the fallback for a classifier with no stored
// examples: smoothing only, normalized to uniform.
func (c *Classifier) predictUntrained() learn.Prediction {
	//lint:ignore hotalloc the result Prediction is a map by API contract and escapes to the caller; this only runs on the untrained fallback path
	p := make(learn.Prediction, len(c.labels))
	for _, l := range c.labels {
		p[l] = c.cfg.Smoothing
	}
	return p.Normalize()
}

// scoreSims turns one dense similarity row (one slot per stored
// document) into a normalized prediction: threshold, rank, cut to
// MaxNeighbors, noisy-or per label, smooth, normalize. Both the
// per-instance and the batched path end here, which is what makes
// their results structurally bit-identical.
func (c *Classifier) scoreSims(sims []float64) learn.Prediction {
	//lint:ignore hotalloc the result Prediction is a map by API contract and is retained by the cache, so it must be freshly allocated per distinct input
	p := make(learn.Prediction, len(c.labels))
	type neighbor struct {
		sim float64
		li  int32
		idx int32
	}
	// Stack buffer for the common case; spills to the heap only when
	// more than 64 stored examples pass the threshold.
	var nbuf [64]neighbor
	neighbors := nbuf[:0]
	for doc, sim := range sims {
		// sim > 0 selects exactly the documents sharing a token (all
		// weights are positive), keeping the δ comparison semantics of
		// the sparse accumulator even for a negative threshold.
		if sim > 0 && sim > c.cfg.MinSimilarity {
			neighbors = append(neighbors, neighbor{sim, c.docLabels[doc], int32(doc)})
		}
	}
	// Order the neighbours by decreasing similarity for the MaxNeighbors
	// cut; ties break by label index then doc id so the order — and the
	// noisy-or product order below — is total and deterministic.
	slices.SortFunc(neighbors, func(a, b neighbor) int {
		switch {
		case a.sim > b.sim:
			return -1
		case a.sim < b.sim:
			return 1
		case a.li != b.li:
			return int(a.li) - int(b.li)
		}
		return int(a.idx) - int(b.idx)
	})
	if k := c.cfg.MaxNeighbors; k > 0 && len(neighbors) > k {
		// Only the k nearest neighbours contribute.
		neighbors = neighbors[:k]
	}
	// Noisy-or per label, accumulated densely by label index in a stack
	// buffer (label sets are small).
	var omBuf [24]float64
	oneMinus := omBuf[:0]
	if len(c.labels) > len(omBuf) {
		oneMinus = make([]float64, 0, len(c.labels))
	}
	oneMinus = oneMinus[:len(c.labels)]
	for li := range oneMinus {
		oneMinus[li] = 1
	}
	for _, n := range neighbors {
		oneMinus[n.li] *= 1 - n.sim
	}
	for li, l := range c.labels {
		p[l] = c.cfg.Smoothing + (1 - oneMinus[li])
	}
	return p.Normalize()
}

// NumStored returns how many training examples the classifier holds.
func (c *Classifier) NumStored() int { return len(c.docLabels) }
