// Package whirl implements the nearest-neighbour classification model
// of Cohen and Hirsh's WHIRL, which the paper's name matcher and
// content matcher are built on (§3.3): training examples are stored as
// TF/IDF vectors, and a new instance is labelled from the labels of the
// stored examples within a similarity distance of it, combined with a
// noisy-or.
//
// Representation: the store lives entirely in the interned-id
// coordinate system of the training corpus. The inverted index is a
// flat postings table — postings[id] lists (docID, weight) pairs — so
// similarity accumulation walks contiguous slices and never chases a
// per-document map. Scores accumulate into a reusable dense []float64
// scratch buffer indexed by docID; the query's terms are visited in
// ascending-id order, so every similarity sums its float terms in a
// canonical order fixed at training time and the output is
// bit-identical on every run without per-call sorting.
package whirl

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/learn"
	"repro/internal/text"
)

// Extractor maps an instance to the text the classifier vectorizes.
// The name matcher extracts the expanded tag name; the content matcher
// extracts the data content.
type Extractor func(learn.Instance) string

// Config tunes a Classifier.
type Config struct {
	// MinSimilarity is the δ threshold of §3.3: stored examples whose
	// cosine similarity falls at or below it are ignored.
	MinSimilarity float64
	// MaxNeighbors caps how many nearest stored examples contribute.
	// Zero means all neighbours within the threshold.
	MaxNeighbors int
	// Smoothing is added to every label score before normalization so
	// no label is ever ruled out entirely.
	Smoothing float64
}

// DefaultConfig matches the behaviour described in the paper: consider
// every stored example with positive similarity, lightly smoothed.
func DefaultConfig() Config {
	return Config{MinSimilarity: 0, MaxNeighbors: 30, Smoothing: 0.01}
}

// posting is one inverted-index entry: a stored document that contains
// the token, with the token's TF/IDF weight in that document inlined so
// accumulation needs no second lookup.
type posting struct {
	doc int32
	w   float64
}

// Classifier is a WHIRL-style TF/IDF nearest-neighbour classifier.
// Lookups run against an inverted index (token id → postings), so a
// prediction touches only stored examples that share a token with the
// query instead of the whole store.
type Classifier struct {
	name    string
	extract Extractor
	cfg     Config
	labels  []string
	corpus  *text.Corpus
	// postings is the inverted index, indexed by token id; each posting
	// list is ordered by ascending doc id (training order).
	postings [][]posting
	// docLabels maps each stored document to its label's index in
	// labels.
	docLabels []int32
	// scratch pools the dense per-document similarity buffers predicts
	// accumulate into, so steady-state prediction allocates nothing for
	// scoring. Buffers are zeroed before they are returned to the pool.
	scratch sync.Pool
	// cache memoizes predictions by extracted text: name-matcher inputs
	// repeat once per column instance, so hit rates are very high.
	// Eviction is two-generational: inserts fill cacheNew; when it
	// reaches half the cache bound the generations rotate and cacheOld
	// is dropped, so entries hot enough to be re-requested survive by
	// promotion instead of the whole cache being discarded. Cached
	// predictions are immutable by contract (learn.Learner.Predict) and
	// returned without cloning. cacheMu guards both maps: Predict is
	// called concurrently by the parallel match/CV fan-out, and entries
	// are pure functions of the frozen model, so losing a concurrent
	// insert only costs a recomputation, never determinism.
	cacheMu  sync.RWMutex
	cacheNew map[string]learn.Prediction // guarded by cacheMu
	cacheOld map[string]learn.Prediction // guarded by cacheMu
}

// maxCacheEntries bounds the prediction cache (both generations
// together); each generation holds at most half.
const maxCacheEntries = 8192

// New returns an untrained classifier. name identifies it in reports;
// extract selects the instance text.
func New(name string, extract Extractor, cfg Config) *Classifier {
	return &Classifier{name: name, extract: extract, cfg: cfg}
}

// Name implements learn.Learner.
func (c *Classifier) Name() string { return c.name }

// Train stores the TF/IDF vectors of all training examples (§3.3: "the
// name matcher stores all training examples ... it has seen so far").
func (c *Classifier) Train(labels []string, examples []learn.Example) error {
	if len(labels) == 0 {
		return fmt.Errorf("whirl: no labels")
	}
	c.labels = append([]string(nil), labels...)
	labelIdx := make(map[string]int, len(labels))
	for i, l := range labels {
		labelIdx[l] = i
	}
	// Deduplicate by (extracted text, label): a source contributes one
	// identical example per listing, and the noisy-or combination must
	// count distinct pieces of evidence, not copies — otherwise forty
	// identical partial matches saturate the score to certainty.
	type docKey struct{ text, label string }
	seen := make(map[docKey]bool, len(examples))
	var texts []string
	var docLabels []int32
	for _, ex := range examples {
		k := docKey{c.extract(ex.Instance), ex.Label}
		if seen[k] {
			continue
		}
		seen[k] = true
		texts = append(texts, k.text)
		li, ok := labelIdx[k.label]
		if !ok {
			return fmt.Errorf("whirl: example labelled %q outside label set", k.label)
		}
		docLabels = append(docLabels, int32(li))
	}
	c.corpus = text.NewCorpus()
	bags := make([]text.Bag, len(texts))
	for i, txt := range texts {
		bags[i] = text.NewBag(text.TokenizeStemStop(txt))
		c.corpus.AddDocument(bags[i])
	}
	c.corpus.Freeze()
	// Train is documented as happening-before any concurrent Predict,
	// but the cache reset still takes the lock: it is free here and
	// keeps the guarded-by invariant unconditional.
	c.cacheMu.Lock()
	c.cacheNew, c.cacheOld = nil, nil
	c.cacheMu.Unlock()
	c.docLabels = docLabels
	c.postings = make([][]posting, c.corpus.Vocab().Len())
	for i := range texts {
		vec := c.corpus.Vectorize(bags[i])
		// Every token was interned during AddDocument, so vec has no
		// out-of-vocabulary terms. Docs are processed in ascending order,
		// so each posting list stays sorted by doc id.
		for _, term := range vec.Terms {
			c.postings[term.ID] = append(c.postings[term.ID], posting{doc: int32(i), w: term.W})
		}
	}
	return nil
}

// Predict computes the similarity of the instance to every stored
// example and combines the similarities of the qualifying neighbours
// per label with a noisy-or: s(c) = 1 − Π(1 − simᵢ). Scores are
// smoothed and normalized to a confidence distribution. The returned
// prediction may be shared with the classifier's cache and other
// callers; callers must treat it as read-only.
//
// lint:hot
func (c *Classifier) Predict(in learn.Instance) learn.Prediction {
	extracted := c.extract(in)
	if p, ok := c.cached(extracted); ok {
		return p
	}
	p := c.predict(extracted)
	if c.corpus != nil {
		c.insertCache(extracted, p)
	}
	return p
}

// cached looks extracted up in both cache generations, promoting an
// old-generation hit into the current one so hot entries survive
// rotation.
func (c *Classifier) cached(extracted string) (learn.Prediction, bool) {
	c.cacheMu.RLock()
	p, ok := c.cacheNew[extracted]
	promote := false
	if !ok {
		p, ok = c.cacheOld[extracted]
		promote = ok
	}
	c.cacheMu.RUnlock()
	if promote {
		c.insertCache(extracted, p)
	}
	return p, ok
}

// insertCache records a prediction in the current generation, rotating
// the generations when the current one reaches half the cache bound.
func (c *Classifier) insertCache(extracted string, p learn.Prediction) {
	c.cacheMu.Lock()
	if c.cacheNew == nil {
		//lint:ignore hotalloc one-time lazy init of the cache generation map, amortized over every later hit
		c.cacheNew = make(map[string]learn.Prediction, 256)
	}
	if _, exists := c.cacheNew[extracted]; !exists && len(c.cacheNew) >= maxCacheEntries/2 {
		c.cacheOld = c.cacheNew
		//lint:ignore hotalloc generation rotation allocates once per maxCacheEntries/2 inserts, amortized to nothing per prediction
		c.cacheNew = make(map[string]learn.Prediction, 256)
	}
	c.cacheNew[extracted] = p
	c.cacheMu.Unlock()
}

// predict computes the normalized prediction for one extracted text.
func (c *Classifier) predict(extracted string) learn.Prediction {
	//lint:ignore hotalloc the result Prediction is a map by API contract and is retained by the cache, so it must be freshly allocated per distinct input
	p := make(learn.Prediction, len(c.labels))
	if c.corpus == nil || len(c.docLabels) == 0 {
		for _, l := range c.labels {
			p[l] = c.cfg.Smoothing
		}
		return p.Normalize()
	}
	q := c.corpus.Vectorize(text.NewBag(text.TokenizeStemStop(extracted)))

	// Accumulate dot products over the inverted index into the dense
	// scratch buffer: only stored examples sharing at least one token
	// with the query can have a non-zero similarity. Query terms are
	// sorted by ascending id (Vectorize's canonical order), so each
	// document's similarity sums its terms identically on every run.
	// Out-of-vocabulary query terms have no postings and contribute
	// only to the query norm, exactly as in the map representation.
	sims := c.getScratch()
	for _, term := range q.Terms {
		for _, pst := range c.postings[term.ID] {
			sims[pst.doc] += term.W * pst.w
		}
	}
	type neighbor struct {
		sim float64
		li  int32
		idx int32
	}
	// Stack buffer for the common case; spills to the heap only when
	// more than 64 stored examples pass the threshold.
	var nbuf [64]neighbor
	neighbors := nbuf[:0]
	for doc, sim := range sims {
		// sim > 0 selects exactly the documents sharing a token (all
		// weights are positive), keeping the δ comparison semantics of
		// the sparse accumulator even for a negative threshold.
		if sim > 0 && sim > c.cfg.MinSimilarity {
			neighbors = append(neighbors, neighbor{sim, c.docLabels[doc], int32(doc)})
		}
	}
	c.putScratch(sims)
	// Order the neighbours by decreasing similarity for the MaxNeighbors
	// cut; ties break by label index then doc id so the order — and the
	// noisy-or product order below — is total and deterministic.
	slices.SortFunc(neighbors, func(a, b neighbor) int {
		switch {
		case a.sim > b.sim:
			return -1
		case a.sim < b.sim:
			return 1
		case a.li != b.li:
			return int(a.li) - int(b.li)
		}
		return int(a.idx) - int(b.idx)
	})
	if k := c.cfg.MaxNeighbors; k > 0 && len(neighbors) > k {
		// Only the k nearest neighbours contribute.
		neighbors = neighbors[:k]
	}
	// Noisy-or per label, accumulated densely by label index in a stack
	// buffer (label sets are small).
	var omBuf [24]float64
	oneMinus := omBuf[:0]
	if len(c.labels) > len(omBuf) {
		oneMinus = make([]float64, 0, len(c.labels))
	}
	oneMinus = oneMinus[:len(c.labels)]
	for li := range oneMinus {
		oneMinus[li] = 1
	}
	for _, n := range neighbors {
		oneMinus[n.li] *= 1 - n.sim
	}
	for li, l := range c.labels {
		p[l] = c.cfg.Smoothing + (1 - oneMinus[li])
	}
	return p.Normalize()
}

// getScratch returns a zeroed []float64 with one slot per stored
// document. The poolescape analyzer tracks values it hands out: every
// caller must return them via putScratch and must not let them escape.
//
// lint:scratch
func (c *Classifier) getScratch() []float64 {
	n := len(c.docLabels)
	if v := c.scratch.Get(); v != nil {
		if buf := v.(*[]float64); cap(*buf) >= n {
			return (*buf)[:n]
		}
	}
	return make([]float64, n)
}

// putScratch zeroes the buffer and returns it to the pool.
func (c *Classifier) putScratch(buf []float64) {
	for i := range buf {
		buf[i] = 0
	}
	c.scratch.Put(&buf)
}

// NumStored returns how many training examples the classifier holds.
func (c *Classifier) NumStored() int { return len(c.docLabels) }
