// Package whirl implements the nearest-neighbour classification model
// of Cohen and Hirsh's WHIRL, which the paper's name matcher and
// content matcher are built on (§3.3): training examples are stored as
// TF/IDF vectors, and a new instance is labelled from the labels of the
// stored examples within a similarity distance of it, combined with a
// noisy-or.
package whirl

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/learn"
	"repro/internal/text"
)

// Extractor maps an instance to the text the classifier vectorizes.
// The name matcher extracts the expanded tag name; the content matcher
// extracts the data content.
type Extractor func(learn.Instance) string

// Config tunes a Classifier.
type Config struct {
	// MinSimilarity is the δ threshold of §3.3: stored examples whose
	// cosine similarity falls at or below it are ignored.
	MinSimilarity float64
	// MaxNeighbors caps how many nearest stored examples contribute.
	// Zero means all neighbours within the threshold.
	MaxNeighbors int
	// Smoothing is added to every label score before normalization so
	// no label is ever ruled out entirely.
	Smoothing float64
}

// DefaultConfig matches the behaviour described in the paper: consider
// every stored example with positive similarity, lightly smoothed.
func DefaultConfig() Config {
	return Config{MinSimilarity: 0, MaxNeighbors: 30, Smoothing: 0.01}
}

type stored struct {
	vec   text.Vector
	label string
}

// Classifier is a WHIRL-style TF/IDF nearest-neighbour classifier.
// Lookups run against an inverted index (token → postings), so a
// prediction touches only stored examples that share a token with the
// query instead of the whole store.
type Classifier struct {
	name    string
	extract Extractor
	cfg     Config
	labels  []string
	corpus  *text.Corpus
	store   []stored
	// index maps each token to the store indices whose vectors contain
	// it.
	index map[string][]int32
	// cache memoizes predictions by extracted text: name-matcher inputs
	// repeat once per column instance, so hit rates are very high. The
	// cache is bounded and reset when full. cacheMu guards it: Predict
	// is called concurrently by the parallel match/CV fan-out, and
	// entries are pure functions of the frozen model, so losing a
	// concurrent insert only costs a recomputation, never determinism.
	cacheMu sync.RWMutex
	cache   map[string]learn.Prediction // guarded by cacheMu
}

// maxCacheEntries bounds the prediction cache.
const maxCacheEntries = 8192

// New returns an untrained classifier. name identifies it in reports;
// extract selects the instance text.
func New(name string, extract Extractor, cfg Config) *Classifier {
	return &Classifier{name: name, extract: extract, cfg: cfg}
}

// Name implements learn.Learner.
func (c *Classifier) Name() string { return c.name }

// Train stores the TF/IDF vectors of all training examples (§3.3: "the
// name matcher stores all training examples ... it has seen so far").
func (c *Classifier) Train(labels []string, examples []learn.Example) error {
	if len(labels) == 0 {
		return fmt.Errorf("whirl: no labels")
	}
	c.labels = append([]string(nil), labels...)
	// Deduplicate by (extracted text, label): a source contributes one
	// identical example per listing, and the noisy-or combination must
	// count distinct pieces of evidence, not copies — otherwise forty
	// identical partial matches saturate the score to certainty.
	type docKey struct{ text, label string }
	seen := make(map[docKey]bool, len(examples))
	var texts []string
	var docLabels []string
	for _, ex := range examples {
		k := docKey{c.extract(ex.Instance), ex.Label}
		if seen[k] {
			continue
		}
		seen[k] = true
		texts = append(texts, k.text)
		docLabels = append(docLabels, k.label)
	}
	c.corpus = text.NewCorpus()
	bags := make([]text.Bag, len(texts))
	for i, txt := range texts {
		bags[i] = text.NewBag(text.TokenizeStemStop(txt))
		c.corpus.AddDocument(bags[i])
	}
	c.corpus.Freeze()
	// Train is documented as happening-before any concurrent Predict,
	// but the cache reset still takes the lock: it is free here and
	// keeps the guarded-by invariant unconditional.
	c.cacheMu.Lock()
	c.cache = nil
	c.cacheMu.Unlock()
	c.store = make([]stored, 0, len(texts))
	c.index = make(map[string][]int32)
	for i := range texts {
		vec := c.corpus.Vectorize(bags[i])
		c.store = append(c.store, stored{vec: vec, label: docLabels[i]})
		for tok := range vec {
			c.index[tok] = append(c.index[tok], int32(i))
		}
	}
	return nil
}

// Predict computes the similarity of the instance to every stored
// example and combines the similarities of the qualifying neighbours
// per label with a noisy-or: s(c) = 1 − Π(1 − simᵢ). Scores are
// smoothed and normalized to a confidence distribution.
func (c *Classifier) Predict(in learn.Instance) learn.Prediction {
	extracted := c.extract(in)
	c.cacheMu.RLock()
	cached, ok := c.cache[extracted]
	c.cacheMu.RUnlock()
	if ok {
		return cached.Clone()
	}
	p := make(learn.Prediction, len(c.labels))
	for _, l := range c.labels {
		p[l] = c.cfg.Smoothing
	}
	if c.corpus == nil || len(c.store) == 0 {
		return p.Normalize()
	}
	q := c.corpus.Vectorize(text.NewBag(text.TokenizeStemStop(extracted)))

	// Accumulate dot products over the inverted index: only stored
	// examples sharing at least one token with the query can have a
	// non-zero similarity. Tokens are visited in sorted order so each
	// similarity sums its terms identically on every run (float addition
	// is not associative, and q is a map).
	toks := make([]string, 0, len(q))
	for tok := range q {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	sims := make(map[int32]float64)
	for _, tok := range toks {
		w := q[tok]
		for _, i := range c.index[tok] {
			sims[i] += w * c.store[i].vec[tok]
		}
	}
	type neighbor struct {
		sim   float64
		label string
		idx   int32
	}
	neighbors := make([]neighbor, 0, len(sims))
	for i, sim := range sims {
		if sim > c.cfg.MinSimilarity {
			neighbors = append(neighbors, neighbor{sim, c.store[i].label, i})
		}
	}
	// Order the neighbours deterministically (sims is a map): the
	// noisy-or below multiplies per-label factors in neighbour order,
	// and float multiplication is not associative either.
	sort.Slice(neighbors, func(i, j int) bool {
		if neighbors[i].sim != neighbors[j].sim {
			return neighbors[i].sim > neighbors[j].sim
		}
		if neighbors[i].label != neighbors[j].label {
			return neighbors[i].label < neighbors[j].label
		}
		return neighbors[i].idx < neighbors[j].idx
	})
	if k := c.cfg.MaxNeighbors; k > 0 && len(neighbors) > k {
		// Only the k nearest neighbours contribute.
		neighbors = neighbors[:k]
	}
	// Noisy-or per label.
	oneMinus := make(map[string]float64, len(c.labels))
	for _, n := range neighbors {
		prev, ok := oneMinus[n.label]
		if !ok {
			prev = 1
		}
		oneMinus[n.label] = prev * (1 - n.sim)
	}
	for l, om := range oneMinus {
		p[l] += 1 - om
	}
	p.Normalize()
	c.cacheMu.Lock()
	if c.cache == nil || len(c.cache) >= maxCacheEntries {
		c.cache = make(map[string]learn.Prediction, 256)
	}
	c.cache[extracted] = p.Clone()
	c.cacheMu.Unlock()
	return p
}

// NumStored returns how many training examples the classifier holds.
func (c *Classifier) NumStored() int { return len(c.store) }
