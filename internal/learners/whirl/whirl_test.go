package whirl

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/learn"
)

func nameExtractor(in learn.Instance) string { return in.ExpandedName() }

func ex(tag, label string) learn.Example {
	return learn.Example{Instance: learn.Instance{TagName: tag}, Label: label}
}

var labels = []string{"ADDRESS", "AGENT-PHONE", "DESCRIPTION"}

func trained(t *testing.T) *Classifier {
	t.Helper()
	c := New("test", nameExtractor, DefaultConfig())
	err := c.Train(labels, []learn.Example{
		ex("location", "ADDRESS"),
		ex("house-addr", "ADDRESS"),
		ex("phone", "AGENT-PHONE"),
		ex("agent-phone", "AGENT-PHONE"),
		ex("comments", "DESCRIPTION"),
		ex("detailed-desc", "DESCRIPTION"),
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return c
}

func TestPredictSharedToken(t *testing.T) {
	c := trained(t)
	// "work-phone" shares the token "phone" with AGENT-PHONE examples.
	best, score := c.Predict(learn.Instance{TagName: "work-phone"}).Best()
	if best != "AGENT-PHONE" {
		t.Errorf("Best = %q (%.3f), want AGENT-PHONE", best, score)
	}
}

func TestPredictExactName(t *testing.T) {
	c := trained(t)
	for tag, want := range map[string]string{
		"location": "ADDRESS",
		"phone":    "AGENT-PHONE",
		"comments": "DESCRIPTION",
	} {
		if best, _ := c.Predict(learn.Instance{TagName: tag}).Best(); best != want {
			t.Errorf("Predict(%s).Best = %q, want %q", tag, best, want)
		}
	}
}

func TestPredictUnknownNameIsSpread(t *testing.T) {
	c := trained(t)
	p := c.Predict(learn.Instance{TagName: "zzzz"})
	// No shared tokens: smoothing only, so the prediction is uniform.
	for _, l := range labels {
		if math.Abs(p[l]-1.0/3) > 1e-9 {
			t.Errorf("unknown name score[%s] = %g, want 1/3", l, p[l])
		}
	}
}

func TestPredictionIsDistribution(t *testing.T) {
	c := trained(t)
	p := c.Predict(learn.Instance{TagName: "agent-phone"})
	sum := 0.0
	for _, l := range labels {
		if p[l] < 0 {
			t.Errorf("negative score for %s: %g", l, p[l])
		}
		sum += p[l]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("scores sum to %g, want 1", sum)
	}
}

func TestSynonymExpansionHelps(t *testing.T) {
	c := trained(t)
	// "contact-tel" alone shares nothing; the synonym "phone" rescues it.
	with := c.Predict(learn.Instance{TagName: "tel", Synonyms: []string{"phone"}})
	without := c.Predict(learn.Instance{TagName: "tel"})
	if with["AGENT-PHONE"] <= without["AGENT-PHONE"] {
		t.Errorf("synonym expansion did not raise AGENT-PHONE: %g vs %g",
			with["AGENT-PHONE"], without["AGENT-PHONE"])
	}
}

func TestTrainErrors(t *testing.T) {
	c := New("test", nameExtractor, DefaultConfig())
	if err := c.Train(nil, nil); err == nil {
		t.Error("Train with no labels should error")
	}
}

func TestPredictUntrainedStore(t *testing.T) {
	c := New("test", nameExtractor, DefaultConfig())
	if err := c.Train(labels, nil); err != nil {
		t.Fatalf("Train empty: %v", err)
	}
	p := c.Predict(learn.Instance{TagName: "phone"})
	if len(p) != len(labels) {
		t.Fatalf("prediction over %d labels, want %d", len(p), len(labels))
	}
	if c.NumStored() != 0 {
		t.Errorf("NumStored = %d, want 0", c.NumStored())
	}
}

func TestMaxNeighborsCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxNeighbors = 1
	c := New("test", nameExtractor, cfg)
	// Many weak DESCRIPTION neighbours vs one exact AGENT-PHONE match:
	// with k=1 the exact match dominates.
	exs := []learn.Example{ex("phone", "AGENT-PHONE")}
	for i := 0; i < 10; i++ {
		exs = append(exs, ex("phone extension info", "DESCRIPTION"))
	}
	if err := c.Train(labels, exs); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if best, _ := c.Predict(learn.Instance{TagName: "phone"}).Best(); best != "AGENT-PHONE" {
		t.Errorf("k=1 Best = %q, want AGENT-PHONE", best)
	}
}

func TestMinSimilarityThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinSimilarity = 0.99 // effectively require near-identical text
	c := New("test", nameExtractor, cfg)
	if err := c.Train(labels, []learn.Example{
		ex("phone number of agent", "AGENT-PHONE"),
	}); err != nil {
		t.Fatalf("Train: %v", err)
	}
	p := c.Predict(learn.Instance{TagName: "phone"})
	// Partial overlap is below the threshold: uniform fallback.
	if math.Abs(p["AGENT-PHONE"]-1.0/3) > 1e-9 {
		t.Errorf("threshold not applied: %v", p)
	}
}

func TestDedupeBoundsConfidence(t *testing.T) {
	// Forty copies of a partial match must score like one piece of
	// evidence, not forty: the store deduplicates by (text, label).
	c := New("test", nameExtractor, DefaultConfig())
	var exs []learn.Example
	for i := 0; i < 40; i++ {
		exs = append(exs, ex("phone number", "AGENT-PHONE"))
	}
	exs = append(exs, ex("location", "ADDRESS"))
	if err := c.Train(labels, exs); err != nil {
		t.Fatal(err)
	}
	if c.NumStored() != 2 {
		t.Errorf("NumStored = %d, want 2 after dedupe", c.NumStored())
	}
	// Forty duplicates must predict exactly like a single example: the
	// noisy-or sees one piece of evidence either way.
	single := New("test", nameExtractor, DefaultConfig())
	if err := single.Train(labels, []learn.Example{
		ex("phone number", "AGENT-PHONE"),
		ex("location", "ADDRESS"),
	}); err != nil {
		t.Fatal(err)
	}
	pDup := c.Predict(learn.Instance{TagName: "phone"})
	pOne := single.Predict(learn.Instance{TagName: "phone"})
	for l := range pOne {
		if math.Abs(pDup[l]-pOne[l]) > 1e-12 {
			t.Errorf("duplicates changed prediction for %s: %g vs %g", l, pDup[l], pOne[l])
		}
	}
}

func TestPredictCacheConsistent(t *testing.T) {
	c := trained(t)
	in := learn.Instance{TagName: "phone"}
	first := c.Predict(in)
	second := c.Predict(in) // served from cache
	for l, s := range first {
		if math.Abs(second[l]-s) > 1e-12 {
			t.Errorf("cached prediction differs for %s: %g vs %g", l, second[l], s)
		}
	}
	// Predictions are immutable by contract and the cache returns the
	// shared instance rather than cloning per hit.
	if &first == nil || &second == nil {
		t.Fatal("unreachable")
	}
}

func TestCacheGenerationsKeepHotEntries(t *testing.T) {
	c := trained(t)
	hot := learn.Instance{TagName: "phone"}
	hotP := c.Predict(hot)
	// Flood the cache with more distinct keys than one generation holds.
	// The hot entry is re-requested along the way, so promotion keeps it
	// resident across the rotation instead of it being dropped wholesale.
	for i := 0; i < maxCacheEntries; i++ {
		c.Predict(learn.Instance{TagName: fmt.Sprintf("filler-%d", i)})
		if i%512 == 0 {
			c.Predict(hot)
		}
	}
	newN, oldN := 0, 0
	resident := false
	key := c.extract(hot)
	for i := range c.cache.shards {
		sh := &c.cache.shards[i]
		sh.mu.Lock()
		newN += len(sh.cur)
		oldN += len(sh.old)
		if _, ok := sh.cur[key]; ok {
			resident = true
		}
		if _, ok := sh.old[key]; ok {
			resident = true
		}
		sh.mu.Unlock()
	}
	if newN > maxCacheEntries/2 || newN+oldN > maxCacheEntries {
		t.Errorf("cache exceeded bound: new=%d old=%d", newN, oldN)
	}
	if !resident {
		t.Error("hot entry evicted despite repeated hits")
	}
	after := c.Predict(hot)
	for l, s := range hotP {
		if math.Abs(after[l]-s) > 1e-12 {
			t.Errorf("hot prediction drifted for %s: %g vs %g", l, after[l], s)
		}
	}
}

func TestRetrainInvalidatesCache(t *testing.T) {
	c := New("test", nameExtractor, DefaultConfig())
	if err := c.Train(labels, []learn.Example{ex("phone", "AGENT-PHONE")}); err != nil {
		t.Fatal(err)
	}
	before := c.Predict(learn.Instance{TagName: "phone"})
	if err := c.Train(labels, []learn.Example{ex("phone", "DESCRIPTION")}); err != nil {
		t.Fatal(err)
	}
	after := c.Predict(learn.Instance{TagName: "phone"})
	if best, _ := after.Best(); best != "DESCRIPTION" {
		t.Errorf("stale cache after retrain: before=%v after=%v", before, after)
	}
}
