package whirl

// Serialization support: a trained Classifier is immutable after Train
// (frozen corpus, fixed postings), so its state round-trips through a
// model artifact as plain data. The extractor is the one part that is
// code, not data — Restore takes it from the caller (the name and
// content matcher packages each supply theirs), keyed by the
// classifier's recorded name.

import (
	"fmt"

	"repro/internal/text"
)

// Posting is the serializable form of one inverted-index entry.
type Posting struct {
	Doc int32
	W   float64
}

// State is the serializable view of a trained Classifier.
type State struct {
	Name   string
	Config Config
	Labels []string
	Corpus text.CorpusState
	// DocLabels maps each stored document to its label index.
	DocLabels []int32
	// Postings is the inverted index in vocabulary-id order; it must
	// align one-to-one with Corpus.Tokens.
	Postings [][]Posting
}

// State snapshots the classifier. It returns nil on an untrained
// classifier: there is no corpus coordinate system to serialize.
func (c *Classifier) State() *State {
	if c.corpus == nil {
		return nil
	}
	st := &State{
		Name:      c.name,
		Config:    c.cfg,
		Labels:    append([]string(nil), c.labels...),
		Corpus:    c.corpus.State(),
		DocLabels: append([]int32(nil), c.docLabels...),
		Postings:  make([][]Posting, len(c.postings)),
	}
	for id, list := range c.postings {
		out := make([]Posting, len(list))
		for i, p := range list {
			out[i] = Posting{Doc: p.doc, W: p.w}
		}
		st.Postings[id] = out
	}
	return st
}

// Restore rebuilds a trained classifier from a snapshot, wiring in the
// extractor the state cannot carry. Every cross-reference is validated
// — posting lists align with the vocabulary, document ids stay inside
// the store, label indices inside the label set — so a corrupted
// artifact fails here instead of panicking on the first Predict.
func Restore(st *State, extract Extractor) (*Classifier, error) {
	if st == nil {
		return nil, fmt.Errorf("whirl: nil state")
	}
	if extract == nil {
		return nil, fmt.Errorf("whirl: nil extractor")
	}
	if len(st.Labels) == 0 {
		return nil, fmt.Errorf("whirl: state has no labels")
	}
	corpus, err := text.RestoreCorpus(st.Corpus)
	if err != nil {
		return nil, fmt.Errorf("whirl: %w", err)
	}
	if len(st.Postings) != corpus.Vocab().Len() {
		return nil, fmt.Errorf("whirl: %d posting lists for %d tokens", len(st.Postings), corpus.Vocab().Len())
	}
	numDocs := len(st.DocLabels)
	for _, li := range st.DocLabels {
		if li < 0 || int(li) >= len(st.Labels) {
			return nil, fmt.Errorf("whirl: document label index %d outside %d labels", li, len(st.Labels))
		}
	}
	c := New(st.Name, extract, st.Config)
	c.labels = append([]string(nil), st.Labels...)
	c.corpus = corpus
	c.docLabels = append([]int32(nil), st.DocLabels...)
	c.postings = make([][]posting, len(st.Postings))
	for id, list := range st.Postings {
		out := make([]posting, len(list))
		prev := int32(-1)
		for i, p := range list {
			if p.Doc < 0 || int(p.Doc) >= numDocs {
				return nil, fmt.Errorf("whirl: posting references document %d of %d", p.Doc, numDocs)
			}
			if p.Doc <= prev {
				return nil, fmt.Errorf("whirl: posting list %d not in ascending document order", id)
			}
			prev = p.Doc
			out[i] = posting{doc: p.Doc, w: p.W}
		}
		c.postings[id] = out
	}
	return c, nil
}
