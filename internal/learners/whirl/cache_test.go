package whirl

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/learn"
)

// trainedLarge returns a classifier with enough distinct stored
// examples that predictions differ meaningfully across inputs.
func trainedLarge(t *testing.T, shards int) *Classifier {
	t.Helper()
	cfg := DefaultConfig()
	cfg.CacheShards = shards
	c := New("test", nameExtractor, cfg)
	var exs []learn.Example
	for i := 0; i < 30; i++ {
		exs = append(exs,
			ex(fmt.Sprintf("street addr city-%d", i), "ADDRESS"),
			ex(fmt.Sprintf("phone ext-%d", i), "AGENT-PHONE"),
			ex(fmt.Sprintf("lovely description %d", i), "DESCRIPTION"),
		)
	}
	if err := c.Train(labels, exs); err != nil {
		t.Fatal(err)
	}
	return c
}

// queryTags returns n deterministic query tag names that mix cache
// hits, misses, and token overlap with the training data.
func queryTags(n int) []string {
	rng := rand.New(rand.NewSource(7))
	out := make([]string, n)
	for i := range out {
		switch rng.Intn(4) {
		case 0:
			out[i] = fmt.Sprintf("street addr city-%d", rng.Intn(40))
		case 1:
			out[i] = fmt.Sprintf("phone ext-%d", rng.Intn(40))
		case 2:
			out[i] = fmt.Sprintf("description %d", rng.Intn(40))
		default:
			out[i] = fmt.Sprintf("unrelated-%d", rng.Intn(40))
		}
	}
	return out
}

// TestShardedCacheConcurrentHammer drives concurrent hits, misses,
// and generation rotations through the sharded cache (run under
// -race), and verifies every returned prediction equals the
// uncached reference.
func TestShardedCacheConcurrentHammer(t *testing.T) {
	c := trainedLarge(t, 4)
	// Shrink the per-shard generation bound so the hammer forces many
	// rotations, not just inserts.
	c.cache.perGen = 8
	ref := trainedLarge(t, 1)
	tags := queryTags(64)
	want := make([]learn.Prediction, len(tags))
	for i, tag := range tags {
		want[i] = ref.predict(ref.extract(learn.Instance{TagName: tag}))
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for iter := 0; iter < 400; iter++ {
				i := rng.Intn(len(tags))
				got := c.Predict(learn.Instance{TagName: tags[i]})
				for l, s := range want[i] {
					if got[l] != s {
						errs[g] = fmt.Errorf("tag %q label %s: got %g want %g", tags[i], l, got[l], s)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardCountInvariant is the property test of the sharding
// change: the shard count must never change which prediction is
// returned, bit for bit, on either the per-instance or the batched
// path.
func TestShardCountInvariant(t *testing.T) {
	tags := queryTags(48)
	ins := make([]learn.Instance, len(tags))
	for i, tag := range tags {
		ins[i] = learn.Instance{TagName: tag}
	}
	var refSingle, refBatch []learn.Prediction
	for _, shards := range []int{1, 2, 8, 16} {
		c := trainedLarge(t, shards)
		single := make([]learn.Prediction, len(ins))
		for i, in := range ins {
			single[i] = c.Predict(in)
		}
		batch := c.PredictBatch(ins)
		if refSingle == nil {
			refSingle, refBatch = single, batch
			continue
		}
		for i := range ins {
			assertSamePrediction(t, fmt.Sprintf("shards=%d Predict[%d]", shards, i), single[i], refSingle[i])
			assertSamePrediction(t, fmt.Sprintf("shards=%d PredictBatch[%d]", shards, i), batch[i], refBatch[i])
		}
	}
}

// TestPredictBatchMatchesPredict pins the batched path to the
// per-instance path bit for bit, including duplicate instances, cache
// hits on a second call, and out-of-vocabulary inputs.
func TestPredictBatchMatchesPredict(t *testing.T) {
	c := trainedLarge(t, 8)
	tags := queryTags(48)
	// Duplicates within the batch exercise the dedup path.
	tags = append(tags, tags[0], tags[3], tags[3])
	ins := make([]learn.Instance, len(tags))
	for i, tag := range tags {
		ins[i] = learn.Instance{TagName: tag}
	}
	fresh := trainedLarge(t, 8)
	batch := c.PredictBatch(ins)
	if len(batch) != len(ins) {
		t.Fatalf("PredictBatch returned %d predictions for %d instances", len(batch), len(ins))
	}
	for i, in := range ins {
		assertSamePrediction(t, fmt.Sprintf("instance %d (%s)", i, tags[i]), batch[i], fresh.Predict(in))
	}
	// Second batch is served from the cache and must not drift.
	again := c.PredictBatch(ins)
	for i := range ins {
		assertSamePrediction(t, fmt.Sprintf("cached instance %d", i), again[i], batch[i])
	}
}

// TestPredictBatchUntrained matches Predict's untrained fallback.
func TestPredictBatchUntrained(t *testing.T) {
	c := New("test", nameExtractor, DefaultConfig())
	if err := c.Train(labels, nil); err != nil {
		t.Fatal(err)
	}
	ins := []learn.Instance{{TagName: "phone"}, {TagName: "addr"}}
	batch := c.PredictBatch(ins)
	for i, in := range ins {
		assertSamePrediction(t, fmt.Sprintf("untrained instance %d", i), batch[i], c.Predict(in))
	}
}

func assertSamePrediction(t *testing.T, ctx string, got, want learn.Prediction) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d labels, want %d", ctx, len(got), len(want))
	}
	for l, s := range want {
		if g, ok := got[l]; !ok || g != s {
			t.Fatalf("%s: label %s = %v, want %v (bit-identical)", ctx, l, g, s)
		}
	}
}
