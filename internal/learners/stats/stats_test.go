package stats

import (
	"math"
	"testing"

	"repro/internal/learn"
)

var labels = []string{"PRICE", "BATHS", "DESCRIPTION", "AGENT-PHONE"}

func ex(content, label string) learn.Example {
	return learn.Example{Instance: learn.Instance{Content: content}, Label: label}
}

func trained(t *testing.T) *Learner {
	t.Helper()
	l := New()
	err := l.Train(labels, []learn.Example{
		ex("$250,000", "PRICE"),
		ex("$110,000", "PRICE"),
		ex("$1,175,000", "PRICE"),
		ex("2", "BATHS"),
		ex("3.5", "BATHS"),
		ex("1", "BATHS"),
		ex("Fantastic house with a great yard and a wonderful view", "DESCRIPTION"),
		ex("Beautiful location close to downtown, a must see", "DESCRIPTION"),
		ex("Charming garden, quiet street, remodeled kitchen", "DESCRIPTION"),
		ex("(305) 729 0831", "AGENT-PHONE"),
		ex("(617) 253 1429", "AGENT-PHONE"),
		ex("(206) 523 4719", "AGENT-PHONE"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestScaleSeparatesPriceFromBaths reproduces the paper's motivating
// statistic: "if that value is in the thousands, then the element is
// more likely to be price than the number of bathrooms."
func TestScaleSeparatesPriceFromBaths(t *testing.T) {
	l := trained(t)
	if best, _ := l.Predict(learn.Instance{Content: "$320,000"}).Best(); best != "PRICE" {
		t.Errorf("thousands-scale value Best = %q, want PRICE", best)
	}
	if best, _ := l.Predict(learn.Instance{Content: "2.5"}).Best(); best != "BATHS" {
		t.Errorf("single-digit value Best = %q, want BATHS", best)
	}
}

func TestTextualValue(t *testing.T) {
	l := trained(t)
	p := l.Predict(learn.Instance{Content: "Spacious home near a great park with mature trees"})
	if best, _ := p.Best(); best != "DESCRIPTION" {
		t.Errorf("long text Best = %q, want DESCRIPTION", best)
	}
}

func TestPhoneShape(t *testing.T) {
	l := trained(t)
	if best, _ := l.Predict(learn.Instance{Content: "(415) 273 1234"}).Best(); best != "AGENT-PHONE" {
		t.Errorf("phone Best = %q, want AGENT-PHONE", best)
	}
}

func TestPredictionNormalized(t *testing.T) {
	l := trained(t)
	p := l.Predict(learn.Instance{Content: "42"})
	sum := 0.0
	for _, c := range labels {
		if p[c] < 0 {
			t.Errorf("negative score: %v", p)
		}
		sum += p[c]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum = %g", sum)
	}
}

func TestUntrained(t *testing.T) {
	l := New()
	if p := l.Predict(learn.Instance{Content: "x"}); len(p) != 0 {
		t.Errorf("untrained Predict = %v", p)
	}
	if err := l.Train(labels, nil); err != nil {
		t.Fatal(err)
	}
	p := l.Predict(learn.Instance{Content: "x"})
	for _, c := range labels {
		if math.Abs(p[c]-0.25) > 1e-9 {
			t.Errorf("no-example prediction not uniform: %v", p)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if err := New().Train(nil, nil); err == nil {
		t.Error("no labels accepted")
	}
	if err := New().Train(labels, []learn.Example{ex("x", "BAD")}); err == nil {
		t.Error("unknown label accepted")
	}
}

func TestFeatures(t *testing.T) {
	f := features("$250,000")
	if f[5] < 5 || f[5] > 6 { // log10(250001) ≈ 5.4
		t.Errorf("magnitude of $250,000 = %g, want ~5.4", f[5])
	}
	f = features("3")
	if f[6] != 1 {
		t.Errorf("'3' should be purely numeric: %v", f)
	}
	f = features("great house")
	if f[7] != 1 {
		t.Errorf("'great house' should be purely textual: %v", f)
	}
	f = features("")
	if f[0] != 0 {
		t.Errorf("empty length = %g", f[0])
	}
}

func TestNumericMagnitude(t *testing.T) {
	cases := map[string]float64{
		"$250,000":       math.Log10(250001),
		"3":              math.Log10(4),
		"no numbers":     0,
		"1200 sqft":      math.Log10(1201),
		"0.25 acres lot": math.Log10(1.25),
	}
	for in, want := range cases {
		if got := numericMagnitude(in); math.Abs(got-want) > 1e-9 {
			t.Errorf("numericMagnitude(%q) = %g, want %g", in, got, want)
		}
	}
}
