package stats

// Serialization support: the trained model is the per-label Gaussian
// sufficient statistics, carried verbatim so a restored learner's
// likelihoods are bit-identical to the in-memory model's.

import (
	"fmt"
	"math"
)

// NumFeatures is the dimensionality of the feature vector, exported so
// artifact encoders can size the per-class statistic rows.
const NumFeatures = numFeatures

// ClassState is the serialized sufficient statistics of one label.
type ClassState struct {
	N          float64
	Sum, SumSq []float64 // length NumFeatures
}

// State is the serializable view of a trained Learner. Classes aligns
// one-to-one with Labels.
type State struct {
	Labels  []string
	Classes []ClassState
	NumDocs float64
}

// State snapshots the learner; nil if untrained.
func (l *Learner) State() *State {
	if l.classes == nil {
		return nil
	}
	st := &State{
		Labels:  append([]string(nil), l.labels...),
		Classes: make([]ClassState, len(l.labels)),
		NumDocs: l.numDocs,
	}
	for i, c := range l.labels {
		cs := l.classes[c]
		st.Classes[i] = ClassState{
			N:     cs.n,
			Sum:   append([]float64(nil), cs.sum[:]...),
			SumSq: append([]float64(nil), cs.sumSq[:]...),
		}
	}
	return st
}

// Restore rebuilds a trained learner from a snapshot.
func Restore(st *State) (*Learner, error) {
	if st == nil {
		return nil, fmt.Errorf("stats: nil state")
	}
	if len(st.Labels) == 0 {
		return nil, fmt.Errorf("stats: state has no labels")
	}
	if len(st.Classes) != len(st.Labels) {
		return nil, fmt.Errorf("stats: %d class records for %d labels", len(st.Classes), len(st.Labels))
	}
	if st.NumDocs < 0 || math.IsNaN(st.NumDocs) || math.IsInf(st.NumDocs, 0) {
		return nil, fmt.Errorf("stats: invalid document count %v", st.NumDocs)
	}
	l := New()
	l.labels = append([]string(nil), st.Labels...)
	l.classes = make(map[string]*classStats, len(st.Labels))
	l.numDocs = st.NumDocs
	for i, c := range l.labels {
		if _, dup := l.classes[c]; dup {
			return nil, fmt.Errorf("stats: duplicate label %q", c)
		}
		rec := st.Classes[i]
		if len(rec.Sum) != numFeatures || len(rec.SumSq) != numFeatures {
			return nil, fmt.Errorf("stats: label %q has %d/%d statistics for %d features",
				c, len(rec.Sum), len(rec.SumSq), numFeatures)
		}
		cs := &classStats{n: rec.N}
		copy(cs.sum[:], rec.Sum)
		copy(cs.sumSq[:], rec.SumSq)
		l.classes[c] = cs
	}
	return l, nil
}
