// Package stats implements a Semint-style statistics learner. The
// paper's related-work section (§8) observes that Semint — which
// matches schema elements "using properties such as field
// specifications (e.g., data types and scale) and statistics of data
// content (e.g., maximum, minimum, and average)" — could be plugged
// into LSD as another base learner whose predictions the meta-learner
// combines. This package is that plug-in.
//
// The learner summarizes each element's value as a feature vector
// (type class, character length, token count, numeric magnitude when
// parseable, digit/letter/punctuation fractions) and classifies with a
// per-label Gaussian naive Bayes over the features. It is strong
// exactly where the text learners are weak — short numeric fields
// whose scale is informative (the paper's own example: an average
// value in the thousands suggests price, not number of bathrooms) —
// and abstains softly elsewhere.
package stats

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/learn"
)

// numFeatures is the dimensionality of the feature vector.
const numFeatures = 8

// features maps a raw value to its statistics vector.
func features(value string) [numFeatures]float64 {
	var f [numFeatures]float64
	letters, digits, punct, spaces := 0, 0, 0, 0
	for _, r := range value {
		switch {
		case unicode.IsLetter(r):
			letters++
		case unicode.IsDigit(r):
			digits++
		case unicode.IsSpace(r):
			spaces++
		default:
			punct++
		}
	}
	n := float64(len(value))
	if n == 0 {
		n = 1
	}
	f[0] = float64(len(value))                     // character length
	f[1] = float64(spaces) + 1                     // token count proxy
	f[2] = float64(letters) / n                    // letter fraction
	f[3] = float64(digits) / n                     // digit fraction
	f[4] = float64(punct) / n                      // punctuation fraction
	f[5] = numericMagnitude(value)                 // log10 of numeric value, if any
	f[6] = boolAsFloat(digits > 0 && letters == 0) // purely numeric
	f[7] = boolAsFloat(letters > 0 && digits == 0) // purely textual
	return f
}

func boolAsFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// numericMagnitude extracts the first number in the value and returns
// log10(1+|v|); zero when the value holds no number. Scale is the
// paper's flagship statistic: prices live in the thousands, bath counts
// in single digits.
func numericMagnitude(value string) float64 {
	cleaned := strings.Map(func(r rune) rune {
		if unicode.IsDigit(r) || r == '.' || r == ' ' {
			return r
		}
		if r == ',' {
			return -1 // drop thousands separators
		}
		return ' '
	}, value)
	for _, fieldValue := range strings.Fields(cleaned) {
		if v, err := strconv.ParseFloat(fieldValue, 64); err == nil {
			return math.Log10(1 + math.Abs(v))
		}
	}
	return 0
}

// classStats accumulates per-feature Gaussian statistics for one label.
type classStats struct {
	n          float64
	sum, sumSq [numFeatures]float64
}

func (cs *classStats) add(f [numFeatures]float64) {
	cs.n++
	for i, v := range f {
		cs.sum[i] += v
		cs.sumSq[i] += v * v
	}
}

func (cs *classStats) meanVar(i int) (mean, variance float64) {
	if cs.n == 0 {
		return 0, 1
	}
	mean = cs.sum[i] / cs.n
	variance = cs.sumSq[i]/cs.n - mean*mean
	// Variance floor keeps near-constant features from producing
	// singular likelihoods.
	if variance < 0.05 {
		variance = 0.05
	}
	return mean, variance
}

// Learner is the statistics base learner.
type Learner struct {
	labels  []string
	classes map[string]*classStats
	numDocs float64
}

// New returns an untrained statistics learner.
func New() *Learner { return &Learner{} }

// Factory is a learn.Factory for the statistics learner.
func Factory() learn.Learner { return New() }

// Name implements learn.Learner.
func (l *Learner) Name() string { return "StatsLearner" }

// Train accumulates per-label feature statistics.
func (l *Learner) Train(labels []string, examples []learn.Example) error {
	if len(labels) == 0 {
		return fmt.Errorf("stats: no labels")
	}
	l.labels = append([]string(nil), labels...)
	l.classes = make(map[string]*classStats, len(labels))
	for _, c := range labels {
		l.classes[c] = &classStats{}
	}
	l.numDocs = float64(len(examples))
	for _, ex := range examples {
		cs, ok := l.classes[ex.Label]
		if !ok {
			return fmt.Errorf("stats: example labelled %q outside label set", ex.Label)
		}
		cs.add(features(ex.Instance.Content))
	}
	return nil
}

// Predict scores labels by Gaussian naive-Bayes likelihood of the
// instance's feature vector.
func (l *Learner) Predict(in learn.Instance) learn.Prediction {
	if len(l.labels) == 0 {
		// Normalize is a no-op on the empty prediction; calling it keeps
		// the every-return-is-normalized invariant machine-checkable.
		return learn.Prediction{}.Normalize()
	}
	if l.numDocs == 0 {
		return learn.Uniform(l.labels)
	}
	f := features(in.Content)
	logs := make(map[string]float64, len(l.labels))
	maxLog := math.Inf(-1)
	for _, c := range l.labels {
		cs := l.classes[c]
		// Laplace-smoothed class prior.
		lp := math.Log((cs.n + 1) / (l.numDocs + float64(len(l.labels))))
		for i := 0; i < numFeatures; i++ {
			mean, variance := cs.meanVar(i)
			d := f[i] - mean
			lp += -0.5*math.Log(2*math.Pi*variance) - d*d/(2*variance)
		}
		logs[c] = lp
		if lp > maxLog {
			maxLog = lp
		}
	}
	p := make(learn.Prediction, len(l.labels))
	for c, lp := range logs {
		p[c] = math.Exp(lp - maxLog)
	}
	return p.Normalize()
}
