package contentmatcher

import (
	"testing"

	"repro/internal/learn"
)

func ex(content, label string) learn.Example {
	return learn.Example{Instance: learn.Instance{Content: content}, Label: label}
}

func TestContentMatcherEndToEnd(t *testing.T) {
	l := New()
	if l.Name() != "ContentMatcher" {
		t.Errorf("Name = %q", l.Name())
	}
	labels := []string{"DESCRIPTION", "HOUSE-STYLE", learn.Other}
	err := l.Train(labels, []learn.Example{
		ex("Fantastic house with a great yard and wonderful views", "DESCRIPTION"),
		ex("Beautiful location close to downtown, a must see", "DESCRIPTION"),
		ex("Victorian", "HOUSE-STYLE"),
		ex("Craftsman", "HOUSE-STYLE"),
		ex("Colonial", "HOUSE-STYLE"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Long textual values: the matcher's §3.3 strength.
	if best, _ := l.Predict(learn.Instance{Content: "Great house, fantastic view of downtown"}).Best(); best != "DESCRIPTION" {
		t.Errorf("description Best = %q", best)
	}
	// Distinct descriptive vocabulary: also its strength.
	if best, _ := l.Predict(learn.Instance{Content: "Victorian"}).Best(); best != "HOUSE-STYLE" {
		t.Errorf("style Best = %q", best)
	}
	// Below the similarity floor it abstains rather than guessing: a
	// value sharing nothing scores uniformly.
	p := l.Predict(learn.Instance{Content: "zzz qqq"})
	if p["DESCRIPTION"] != p["HOUSE-STYLE"] {
		t.Errorf("no-overlap prediction not uniform: %v", p)
	}
}

func TestFactory(t *testing.T) {
	if Factory() == nil {
		t.Fatal("Factory returned nil")
	}
}
