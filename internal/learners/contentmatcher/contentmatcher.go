// Package contentmatcher implements the content matcher of §3.3: a
// WHIRL nearest-neighbour classifier over the data content of elements.
// It works well on long textual elements (house descriptions) and on
// elements with distinct descriptive values (colours), and poorly on
// short numeric elements (number of bathrooms).
package contentmatcher

import (
	"repro/internal/learn"
	"repro/internal/learners/whirl"
)

// extract is the content matcher's text extractor: the element's data
// content. It is code, not data, so model artifacts record only the
// classifier state and FromState re-attaches it.
func extract(in learn.Instance) string { return in.Content }

// config is the content matcher's WHIRL configuration. Content
// vectors are long and noisy; a similarity floor keeps the matcher
// from issuing confident predictions off incidental token overlap on
// short values (§3.3 notes it "is not good at short, numeric
// elements") — below the floor it abstains instead.
func config() whirl.Config {
	cfg := whirl.DefaultConfig()
	cfg.MinSimilarity = 0.15
	return cfg
}

// New returns an untrained content matcher.
func New() learn.Learner {
	return whirl.New("ContentMatcher", extract, config())
}

// NewSharded returns an untrained content matcher whose prediction
// cache uses the given shard count. Shard count never changes
// predictions (the determinism suite sweeps it); it only tunes lock
// contention.
func NewSharded(shards int) learn.Learner {
	cfg := config()
	cfg.CacheShards = shards
	return whirl.New("ContentMatcher", extract, cfg)
}

// Factory is a learn.Factory for the content matcher.
func Factory() learn.Learner { return New() }

// FromState rebuilds a trained content matcher from serialized WHIRL
// state, supplying the content extractor.
func FromState(st *whirl.State) (learn.Learner, error) {
	return whirl.Restore(st, extract)
}
