// Package contentmatcher implements the content matcher of §3.3: a
// WHIRL nearest-neighbour classifier over the data content of elements.
// It works well on long textual elements (house descriptions) and on
// elements with distinct descriptive values (colours), and poorly on
// short numeric elements (number of bathrooms).
package contentmatcher

import (
	"repro/internal/learn"
	"repro/internal/learners/whirl"
)

// New returns an untrained content matcher.
func New() learn.Learner {
	cfg := whirl.DefaultConfig()
	// Content vectors are long and noisy; a similarity floor keeps the
	// matcher from issuing confident predictions off incidental token
	// overlap on short values (§3.3 notes it "is not good at short,
	// numeric elements") — below the floor it abstains instead.
	cfg.MinSimilarity = 0.15
	return whirl.New("ContentMatcher", func(in learn.Instance) string {
		return in.Content
	}, cfg)
}

// Factory is a learn.Factory for the content matcher.
func Factory() learn.Learner { return New() }
