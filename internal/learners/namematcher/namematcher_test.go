package namematcher

import (
	"testing"

	"repro/internal/learn"
)

func ex(tag string, path []string, label string) learn.Example {
	return learn.Example{
		Instance: learn.Instance{TagName: tag, Path: path},
		Label:    label,
	}
}

func TestNameMatcherEndToEnd(t *testing.T) {
	l := New()
	if l.Name() != "NameMatcher" {
		t.Errorf("Name = %q", l.Name())
	}
	labels := []string{"ADDRESS", "AGENT-PHONE", learn.Other}
	err := l.Train(labels, []learn.Example{
		ex("location", []string{"listing", "location"}, "ADDRESS"),
		ex("house-addr", []string{"listing", "house-addr"}, "ADDRESS"),
		ex("phone", []string{"listing", "contact", "phone"}, "AGENT-PHONE"),
		ex("agent-phone", []string{"listing", "agent-phone"}, "AGENT-PHONE"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Matches on the tag name itself.
	if best, _ := l.Predict(learn.Instance{TagName: "work-phone"}).Best(); best != "AGENT-PHONE" {
		t.Errorf("work-phone Best = %q", best)
	}
	// The §3.3 expansion: path tokens count too, so an opaque tag under
	// a telling path still leans the right way.
	withPath := l.Predict(learn.Instance{TagName: "val", Path: []string{"listing", "contact", "phone", "val"}})
	bare := l.Predict(learn.Instance{TagName: "val"})
	if withPath["AGENT-PHONE"] <= bare["AGENT-PHONE"] {
		t.Errorf("path expansion did not help: %g vs %g",
			withPath["AGENT-PHONE"], bare["AGENT-PHONE"])
	}
}

func TestFactory(t *testing.T) {
	if Factory() == nil {
		t.Fatal("Factory returned nil")
	}
	// Factories must produce independent instances.
	a, b := Factory(), Factory()
	if a == b {
		t.Error("Factory returned shared instance")
	}
}
