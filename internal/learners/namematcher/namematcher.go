// Package namematcher implements the name matcher of §3.3: a WHIRL
// nearest-neighbour classifier over tag names expanded with synonyms
// and all tag names on the path from the root. It works well on
// specific, descriptive names (price, house location) and poorly on
// names that share no synonyms, partial names, or vacuous names (item,
// listing).
package namematcher

import (
	"repro/internal/learn"
	"repro/internal/learners/whirl"
)

// extract is the name matcher's text extractor: the tag name expanded
// with its path and synonyms. It is code, not data, so model artifacts
// record only the classifier state and FromState re-attaches it.
func extract(in learn.Instance) string { return in.ExpandedName() }

// New returns an untrained name matcher.
func New() learn.Learner {
	return whirl.New("NameMatcher", extract, whirl.DefaultConfig())
}

// NewSharded returns an untrained name matcher whose prediction cache
// uses the given shard count. Shard count never changes predictions
// (the determinism suite sweeps it); it only tunes lock contention.
func NewSharded(shards int) learn.Learner {
	cfg := whirl.DefaultConfig()
	cfg.CacheShards = shards
	return whirl.New("NameMatcher", extract, cfg)
}

// Factory is a learn.Factory for the name matcher.
func Factory() learn.Learner { return New() }

// FromState rebuilds a trained name matcher from serialized WHIRL
// state, supplying the expanded-name extractor.
func FromState(st *whirl.State) (learn.Learner, error) {
	return whirl.Restore(st, extract)
}
