// Package namematcher implements the name matcher of §3.3: a WHIRL
// nearest-neighbour classifier over tag names expanded with synonyms
// and all tag names on the path from the root. It works well on
// specific, descriptive names (price, house location) and poorly on
// names that share no synonyms, partial names, or vacuous names (item,
// listing).
package namematcher

import (
	"repro/internal/learn"
	"repro/internal/learners/whirl"
)

// New returns an untrained name matcher.
func New() learn.Learner {
	return whirl.New("NameMatcher", func(in learn.Instance) string {
		return in.ExpandedName()
	}, whirl.DefaultConfig())
}

// Factory is a learn.Factory for the name matcher.
func Factory() learn.Learner { return New() }
