package naivebayes

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/learn"
	"repro/internal/text"
)

var labels = []string{"ADDRESS", "AGENT-PHONE", "DESCRIPTION"}

func ex(content, label string) learn.Example {
	return learn.Example{Instance: learn.Instance{Content: content}, Label: label}
}

func trained(t *testing.T) *Learner {
	t.Helper()
	l := New()
	err := l.Train(labels, []learn.Example{
		ex("Miami, FL", "ADDRESS"),
		ex("Boston, MA", "ADDRESS"),
		ex("Seattle, WA", "ADDRESS"),
		ex("(305) 729 0831", "AGENT-PHONE"),
		ex("(617) 253 1429", "AGENT-PHONE"),
		ex("Fantastic house, great location", "DESCRIPTION"),
		ex("Great beach, nice area", "DESCRIPTION"),
		ex("Beautiful yard, fantastic view", "DESCRIPTION"),
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return l
}

func TestPredictIndicativeWords(t *testing.T) {
	l := trained(t)
	// "fantastic" and "great" appear frequently in house descriptions —
	// the paper's flagship example.
	best, _ := l.Predict(learn.Instance{Content: "Fantastic location, great view"}).Best()
	if best != "DESCRIPTION" {
		t.Errorf("Best = %q, want DESCRIPTION", best)
	}
}

func TestPredictState(t *testing.T) {
	l := trained(t)
	best, _ := l.Predict(learn.Instance{Content: "Portland, OR"}).Best()
	// Shares no tokens with training addresses except the comma-split
	// pattern; class priors and unseen-token smoothing decide. The key
	// property: DESCRIPTION must not win (its tokens are absent).
	if best == "DESCRIPTION" {
		t.Errorf("Best = DESCRIPTION for a short address-like value")
	}
}

func TestPredictSharedToken(t *testing.T) {
	l := trained(t)
	best, _ := l.Predict(learn.Instance{Content: "Miami area"}).Best()
	if best != "ADDRESS" && best != "DESCRIPTION" {
		t.Errorf("Best = %q, want ADDRESS or DESCRIPTION", best)
	}
	p := l.Predict(learn.Instance{Content: "Miami"})
	if p["ADDRESS"] <= p["AGENT-PHONE"] {
		t.Errorf("ADDRESS %g should beat AGENT-PHONE %g on 'Miami'",
			p["ADDRESS"], p["AGENT-PHONE"])
	}
}

func TestPredictIsDistribution(t *testing.T) {
	l := trained(t)
	p := l.Predict(learn.Instance{Content: "great fantastic 305"})
	sum := 0.0
	for _, c := range labels {
		if p[c] < 0 {
			t.Errorf("negative score: %v", p)
		}
		sum += p[c]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum = %g", sum)
	}
}

func TestPredictUntrained(t *testing.T) {
	l := New()
	if err := l.Train(labels, nil); err != nil {
		t.Fatalf("Train(empty): %v", err)
	}
	p := l.Predict(learn.Instance{Content: "anything"})
	for _, c := range labels {
		if math.Abs(p[c]-1.0/3) > 1e-9 {
			t.Errorf("untrained prediction not uniform: %v", p)
		}
	}
}

func TestTrainRejectsUnknownLabel(t *testing.T) {
	l := New()
	err := l.Train(labels, []learn.Example{ex("x", "NOT-A-LABEL")})
	if err == nil {
		t.Error("Train accepted an example outside the label set")
	}
}

func TestTrainBagsMatchesTrain(t *testing.T) {
	examples := []learn.Example{
		ex("great house", "DESCRIPTION"),
		ex("Miami, FL", "ADDRESS"),
	}
	l1 := New()
	if err := l1.Train(labels, examples); err != nil {
		t.Fatal(err)
	}
	l2 := New()
	bags := make([]text.Bag, len(examples))
	bl := make([]string, len(examples))
	for i, e := range examples {
		bags[i] = text.NewBag(Tokens(e.Instance.Content))
		bl[i] = e.Label
	}
	if err := l2.TrainBags(labels, bags, bl); err != nil {
		t.Fatal(err)
	}
	probe := learn.Instance{Content: "great location in Miami"}
	p1, p2 := l1.Predict(probe), l2.Predict(probe)
	for _, c := range labels {
		if math.Abs(p1[c]-p2[c]) > 1e-12 {
			t.Errorf("Train vs TrainBags differ on %s: %g vs %g", c, p1[c], p2[c])
		}
	}
}

func TestTrainBagsLengthMismatch(t *testing.T) {
	l := New()
	if err := l.TrainBags(labels, []text.Bag{{}}, nil); err == nil {
		t.Error("TrainBags length mismatch accepted")
	}
}

func TestLogLikelihoodOrdering(t *testing.T) {
	l := trained(t)
	descBag := text.NewBag(Tokens("fantastic great house"))
	if l.LogLikelihood(descBag, "DESCRIPTION") <= l.LogLikelihood(descBag, "AGENT-PHONE") {
		t.Error("LogLikelihood should favour DESCRIPTION for description text")
	}
}

// TestNBLearnsSyntheticSeparation: on a generated two-class corpus with
// disjoint vocabularies NB must reach perfect held-out accuracy.
func TestNBLearnsSyntheticSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vocabA := []string{"alpha", "amber", "apple", "arrow"}
	vocabB := []string{"bravo", "birch", "bubble", "banner"}
	gen := func(vocab []string) string {
		s := ""
		for i := 0; i < 5; i++ {
			s += vocab[rng.Intn(len(vocab))] + " "
		}
		return s
	}
	var train []learn.Example
	for i := 0; i < 30; i++ {
		train = append(train, ex(gen(vocabA), "A"), ex(gen(vocabB), "B"))
	}
	l := New()
	if err := l.Train([]string{"A", "B"}, train); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if best, _ := l.Predict(learn.Instance{Content: gen(vocabA)}).Best(); best != "A" {
			t.Fatalf("iteration %d: misclassified class-A text", i)
		}
		if best, _ := l.Predict(learn.Instance{Content: gen(vocabB)}).Best(); best != "B" {
			t.Fatalf("iteration %d: misclassified class-B text", i)
		}
	}
}

func TestTokens(t *testing.T) {
	got := Tokens("Fantastic houses!")
	want := []string{"fantast", "hous"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
}

// TestPosteriorMatchesNaiveFormula checks the precomputed log-table
// predict path against the textbook formula computed directly from the
// training examples with string-keyed maps: for random documents over a
// mixed seen/unseen token alphabet, the posterior of every label agrees
// within 1e-12.
func TestPosteriorMatchesNaiveFormula(t *testing.T) {
	examples := []learn.Example{
		ex("atlanta georgia main street", "ADDRESS"),
		ex("206 smith avenue seattle", "ADDRESS"),
		ex("call 555 1234 now", "AGENT-PHONE"),
		ex("phone 206 555 9999", "AGENT-PHONE"),
		ex("beautiful great house with yard", "DESCRIPTION"),
		ex("great view of the lake", "DESCRIPTION"),
	}
	l := New()
	if err := l.Train(labels, examples); err != nil {
		t.Fatal(err)
	}

	// Reference model: recompute counts straight from the examples.
	tokenCount := map[string]map[string]float64{} // label -> token -> n
	totalCount := map[string]float64{}
	docCount := map[string]float64{}
	vocab := map[string]bool{}
	for _, e := range examples {
		if tokenCount[e.Label] == nil {
			tokenCount[e.Label] = map[string]float64{}
		}
		docCount[e.Label]++
		for _, w := range Tokens(e.Instance.Content) {
			tokenCount[e.Label][w]++
			totalCount[e.Label]++
			vocab[w] = true
		}
	}
	numDocs := float64(len(examples))
	vocabSize := float64(len(vocab))
	refPosterior := func(bag text.Bag) map[string]float64 {
		logs := map[string]float64{}
		maxLog := math.Inf(-1)
		for _, c := range labels {
			lp := math.Log((docCount[c] + 1) / (numDocs + float64(len(labels))))
			denom := totalCount[c] + vocabSize
			for w, n := range bag {
				lp += float64(n) * math.Log((tokenCount[c][w]+1)/denom)
			}
			logs[c] = lp
			if lp > maxLog {
				maxLog = lp
			}
		}
		sum := 0.0
		for _, c := range labels {
			logs[c] = math.Exp(logs[c] - maxLog)
			sum += logs[c]
		}
		for _, c := range labels {
			logs[c] /= sum
		}
		return logs
	}

	seen := []string{"atlanta", "street", "555", "206", "great", "house", "lake", "phone"}
	unseen := []string{"zebra", "quux", "flume", "98"}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		bag := text.Bag{}
		for i, n := 0, 1+rng.Intn(6); i < n; i++ {
			bag[seen[rng.Intn(len(seen))]] += 1 + rng.Intn(3)
		}
		for i, n := 0, rng.Intn(3); i < n; i++ {
			bag[unseen[rng.Intn(len(unseen))]] += 1 + rng.Intn(2)
		}
		got := l.PredictBag(bag)
		want := refPosterior(bag)
		for _, c := range labels {
			if math.Abs(got[c]-want[c]) > 1e-12 {
				t.Fatalf("trial %d label %s: table path %.17g, naive formula %.17g",
					trial, c, got[c], want[c])
			}
		}
	}
}
