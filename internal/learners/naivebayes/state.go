package naivebayes

// Serialization support: a trained Naive Bayes model is the frozen
// vocabulary plus the precomputed log-probability tables, all immutable
// after Train, so the state round-trips through a model artifact as
// plain data and a restored learner predicts bit-identically — the
// tables are carried verbatim, never recomputed.

import (
	"fmt"
	"math"

	"repro/internal/text"
)

// State is the serializable view of a trained Learner.
type State struct {
	Labels []string
	// Tokens is the vocabulary in id order.
	Tokens []string
	// LogProb[li][id] is the per-label token log-likelihood table; each
	// row must align with Tokens.
	LogProb [][]float64
	// UnseenLog[li] is the out-of-vocabulary log-likelihood per label.
	UnseenLog []float64
	// Prior[li] is the log class prior per label.
	Prior   []float64
	NumDocs float64
}

// State snapshots the learner. It returns nil on an untrained learner.
func (l *Learner) State() *State {
	if l.vocab == nil {
		return nil
	}
	st := &State{
		Labels:    append([]string(nil), l.labels...),
		Tokens:    l.vocab.Tokens(),
		LogProb:   make([][]float64, len(l.logProb)),
		UnseenLog: append([]float64(nil), l.unseenLog...),
		Prior:     append([]float64(nil), l.prior...),
		NumDocs:   l.numDocs,
	}
	for li, row := range l.logProb {
		st.LogProb[li] = append([]float64(nil), row...)
	}
	return st
}

// Restore rebuilds a trained learner from a snapshot, validating that
// every table aligns with the label set and the vocabulary so a
// corrupted artifact fails loudly instead of indexing out of bounds on
// the first Predict.
func Restore(st *State) (*Learner, error) {
	if st == nil {
		return nil, fmt.Errorf("naivebayes: nil state")
	}
	k := len(st.Labels)
	if k == 0 {
		return nil, fmt.Errorf("naivebayes: state has no labels")
	}
	if len(st.LogProb) != k || len(st.UnseenLog) != k || len(st.Prior) != k {
		return nil, fmt.Errorf("naivebayes: tables sized %d/%d/%d for %d labels",
			len(st.LogProb), len(st.UnseenLog), len(st.Prior), k)
	}
	if st.NumDocs < 0 || math.IsNaN(st.NumDocs) || math.IsInf(st.NumDocs, 0) {
		return nil, fmt.Errorf("naivebayes: invalid document count %v", st.NumDocs)
	}
	vocab, err := text.RestoreVocab(st.Tokens)
	if err != nil {
		return nil, fmt.Errorf("naivebayes: %w", err)
	}
	l := New()
	l.labels = append([]string(nil), st.Labels...)
	l.labelIdx = make(map[string]int, k)
	for i, c := range l.labels {
		if _, dup := l.labelIdx[c]; dup {
			return nil, fmt.Errorf("naivebayes: duplicate label %q", c)
		}
		l.labelIdx[c] = i
	}
	l.vocab = vocab
	l.logProb = make([][]float64, k)
	for li, row := range st.LogProb {
		if len(row) != vocab.Len() {
			return nil, fmt.Errorf("naivebayes: log-prob row %d has %d entries for %d tokens",
				li, len(row), vocab.Len())
		}
		l.logProb[li] = append([]float64(nil), row...)
	}
	l.unseenLog = append([]float64(nil), st.UnseenLog...)
	l.prior = append([]float64(nil), st.Prior...)
	l.numDocs = st.NumDocs
	return l, nil
}
