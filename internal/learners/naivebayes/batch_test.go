package naivebayes

import (
	"fmt"
	"testing"

	"repro/internal/learn"
)

func trainedBatch(t *testing.T) *Learner {
	t.Helper()
	l := New()
	labels := []string{"ADDRESS", "DESCRIPTION", "PRICE", learn.Other}
	var exs []learn.Example
	for i := 0; i < 20; i++ {
		exs = append(exs,
			learn.Example{Instance: learn.Instance{Content: fmt.Sprintf("12%d main street apt %d", i, i)}, Label: "ADDRESS"},
			learn.Example{Instance: learn.Instance{Content: fmt.Sprintf("beautiful great home with %d rooms", i)}, Label: "DESCRIPTION"},
			learn.Example{Instance: learn.Instance{Content: fmt.Sprintf("$%d900", i)}, Label: "PRICE"},
		)
	}
	if err := l.Train(labels, exs); err != nil {
		t.Fatal(err)
	}
	return l
}

// TestPredictBatchMatchesPredict pins the fused batched sweep to the
// per-instance path bit for bit, including duplicate contents and
// out-of-vocabulary inputs.
func TestPredictBatchMatchesPredict(t *testing.T) {
	l := trainedBatch(t)
	contents := []string{
		"450 oak avenue", "beautiful spacious home", "$239900",
		"unseen tokens entirely", "", "450 oak avenue", "$239900",
	}
	ins := make([]learn.Instance, len(contents))
	for i, ct := range contents {
		ins[i] = learn.Instance{Content: ct}
	}
	batch := l.PredictBatch(ins)
	if len(batch) != len(ins) {
		t.Fatalf("PredictBatch returned %d predictions for %d instances", len(batch), len(ins))
	}
	for i, in := range ins {
		want := l.Predict(in)
		if len(batch[i]) != len(want) {
			t.Fatalf("instance %d: %d labels, want %d", i, len(batch[i]), len(want))
		}
		for c, s := range want {
			if g, ok := batch[i][c]; !ok || g != s {
				t.Fatalf("instance %d (%q) label %s = %v, want %v (bit-identical)", i, contents[i], c, g, s)
			}
		}
	}
	// Duplicate contents share one prediction object (read-only
	// contract), not just equal values.
	if &batch[0] == &batch[5] {
		t.Fatal("unreachable")
	}
}

// TestPredictBatchUntrained matches Predict's uniform fallback.
func TestPredictBatchUntrained(t *testing.T) {
	l := New()
	ins := []learn.Instance{{Content: "a"}, {Content: "b"}}
	batch := l.PredictBatch(ins)
	for i, in := range ins {
		want := l.Predict(in)
		if len(batch[i]) != len(want) {
			t.Fatalf("instance %d: %d labels, want %d", i, len(batch[i]), len(want))
		}
		for c, s := range want {
			if batch[i][c] != s {
				t.Fatalf("instance %d label %s differs", i, c)
			}
		}
	}
}
