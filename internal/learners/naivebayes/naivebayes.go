// Package naivebayes implements the Naive Bayes text classifier of
// §3.3: each input instance is a bag of tokens produced by parsing and
// stemming the words and symbols in the instance; the learner assigns
// d = {w1..wk} to the class maximizing P(c)·ΠP(wj|c), with P(wj|c)
// estimated as n(wj,c)/n(c) under Laplace smoothing. It works best when
// tokens are strongly indicative of the label by virtue of their
// frequencies ("beautiful", "great" in house descriptions), and poorly
// on short or numeric fields.
//
// Representation: training interns every token into a text.Vocab and
// precomputes, per label, a dense log-probability table indexed by
// token id — log((n(w,c)+1)/denom_c) — plus one unseen-token constant
// log(1/denom_c) and the log class prior. PredictBag is then pure
// fused multiply-adds over the instance's sparse (id, count) bag; no
// map lookups, no math.Log, and no sorting on the predict path. The
// summation runs in ascending-id order, a canonical order fixed at
// training time, so determinism needs no per-call workarounds.
package naivebayes

import (
	"fmt"
	"math"

	"repro/internal/learn"
	"repro/internal/pool"
	"repro/internal/text"
)

// Learner is a multinomial Naive Bayes classifier over stemmed tokens.
type Learner struct {
	labels   []string
	labelIdx map[string]int
	vocab    *text.Vocab
	// logProb[li][id] = log((n(w,c)+1)/(n(c)+|V|)): the Laplace-smoothed
	// log-likelihood of token id under label li, precomputed at Train.
	logProb [][]float64
	// unseenLog[li] = log(1/(n(c)+|V|)): the contribution of any token
	// the vocabulary does not contain (or, equivalently, an interned
	// token with zero count — the table already stores that case).
	unseenLog []float64
	// prior[li] = log((docCount(c)+1)/(numDocs+|labels|)).
	prior   []float64
	numDocs float64
	// scratch pools the dense per-batch log-score matrices PredictBatch
	// sweeps into (unique instances × labels), so batched scoring
	// allocates nothing beyond the result maps.
	scratch pool.Floats
}

// New returns an untrained Naive Bayes learner.
func New() *Learner { return &Learner{} }

// Factory is a learn.Factory for the Naive Bayes learner.
func Factory() learn.Learner { return New() }

// Name implements learn.Learner.
func (l *Learner) Name() string { return "NaiveBayes" }

// Tokens returns the bag of tokens NB derives from an instance: the
// stemmed words and symbols of its data content. Exposed so the XML
// learner can reuse the identical token pipeline for its text tokens.
func Tokens(content string) []string {
	return text.TokenizeAndStem(content)
}

// counts accumulates the sufficient statistics of training:
// tokenCount[li][id] = n(w,c) (ragged, grown as the vocabulary grows),
// totalCount[li] = n(c), docCount[li] = training instances labelled c.
type counts struct {
	tokenCount [][]float64
	totalCount []float64
	docCount   []float64
}

func (l *Learner) reset(labels []string) *counts {
	l.labels = append([]string(nil), labels...)
	l.labelIdx = make(map[string]int, len(labels))
	for i, c := range labels {
		l.labelIdx[c] = i
	}
	l.vocab = text.NewVocab()
	return &counts{
		tokenCount: make([][]float64, len(labels)),
		totalCount: make([]float64, len(labels)),
		docCount:   make([]float64, len(labels)),
	}
}

// addToken records one occurrence batch of an interned token. The
// per-label count slices grow lazily with the vocabulary.
func (cs *counts) addToken(li int, id text.ID, n float64) {
	row := cs.tokenCount[li]
	for int(id) >= len(row) {
		row = append(row, 0)
	}
	row[int(id)] += n
	cs.tokenCount[li] = row
	cs.totalCount[li] += n
}

// finalize turns the raw counts into the predict-path tables.
func (l *Learner) finalize(cs *counts) {
	vocabSize := float64(l.vocab.Len())
	if vocabSize == 0 {
		vocabSize = 1
	}
	k := len(l.labels)
	l.logProb = make([][]float64, k)
	l.unseenLog = make([]float64, k)
	l.prior = make([]float64, k)
	for li := 0; li < k; li++ {
		denom := cs.totalCount[li] + vocabSize
		logDenom := math.Log(denom)
		table := make([]float64, l.vocab.Len())
		row := cs.tokenCount[li]
		for id := range table {
			n := 0.0
			if id < len(row) {
				n = row[id]
			}
			table[id] = math.Log(n+1) - logDenom
		}
		l.logProb[li] = table
		l.unseenLog[li] = -logDenom
		// Laplace-smoothed class prior: labels absent from training
		// keep a small non-zero probability.
		l.prior[li] = math.Log((cs.docCount[li] + 1) / (l.numDocs + float64(k)))
	}
}

// Train estimates P(c) and P(w|c) from the examples. Tokens are
// interned in example-stream order — deterministic, because the
// example slice and the tokenizer are.
func (l *Learner) Train(labels []string, examples []learn.Example) error {
	if len(labels) == 0 {
		return fmt.Errorf("naivebayes: no labels")
	}
	cs := l.reset(labels)
	l.numDocs = float64(len(examples))
	for _, ex := range examples {
		li, ok := l.labelIdx[ex.Label]
		if !ok {
			return fmt.Errorf("naivebayes: example labelled %q outside label set", ex.Label)
		}
		cs.docCount[li]++
		for _, w := range Tokens(ex.Instance.Content) {
			cs.addToken(li, l.vocab.Intern(w), 1)
		}
	}
	l.finalize(cs)
	return nil
}

// TrainBags fits the model directly from per-example token bags. The
// XML learner uses this entry point with its structural token bags.
// Bags are maps, so tokens are interned in sorted bag order to keep id
// assignment deterministic.
func (l *Learner) TrainBags(labels []string, bags []text.Bag, bagLabels []string) error {
	if len(bags) != len(bagLabels) {
		return fmt.Errorf("naivebayes: %d bags but %d labels", len(bags), len(bagLabels))
	}
	cs := l.reset(labels)
	l.numDocs = float64(len(bags))
	for i, bag := range bags {
		li, ok := l.labelIdx[bagLabels[i]]
		if !ok {
			return fmt.Errorf("naivebayes: bag labelled %q outside label set", bagLabels[i])
		}
		cs.docCount[li]++
		for _, w := range bag.Tokens() {
			cs.addToken(li, l.vocab.Intern(w), float64(bag[w]))
		}
	}
	l.finalize(cs)
	return nil
}

// Predict computes the posterior distribution over labels for the
// instance's content.
//
// lint:hot
func (l *Learner) Predict(in learn.Instance) learn.Prediction {
	return l.PredictBag(text.NewBag(Tokens(in.Content)))
}

// PredictBatch implements learn.BatchPredictor: the batch is
// deduplicated by content (a column's values repeat across listings),
// each distinct content is tokenized and projected to a sparse bag
// once, and scoring runs as one fused sweep per label over the
// precomputed log-probability tables instead of one table walk per
// instance. Every scalar log score sums exactly the terms PredictBag
// sums, in the same order (prior, ascending-id terms, then the OOV
// constant), and the softmax/Normalize per instance is unchanged, so
// each result is bit-identical to Predict's. Duplicate instances
// share one prediction (read-only by the Predict contract).
//
// lint:hot
func (l *Learner) PredictBatch(ins []learn.Instance) []learn.Prediction {
	out := make([]learn.Prediction, len(ins))
	if len(ins) == 0 {
		return out
	}
	if l.numDocs == 0 {
		// Untrained fallback, shared across the batch: Uniform is a pure
		// function of the label set.
		u := learn.Uniform(l.labels)
		for i := range out {
			out[i] = u
		}
		return out
	}
	//lint:ignore hotalloc the per-batch dedup index replaces a tokenize+table-walk per duplicate instance; one map per batch is the cheap side of that trade
	idx := make(map[string]int, len(ins))
	pos := make([]int, len(ins))
	bags := make([]text.SparseBag, 0, len(ins))
	for i, in := range ins {
		u, ok := idx[in.Content]
		if !ok {
			u = len(bags)
			idx[in.Content] = u
			bags = append(bags, l.vocab.SparseBag(text.NewBag(Tokens(in.Content))))
		}
		pos[i] = u
	}
	k := len(l.labels)
	nu := len(bags)
	// Row-major log-score matrix: lps[u*k+li] is instance u's log score
	// under label li. The label-outer sweep touches each precomputed
	// table once for the whole batch.
	lps := l.scratch.Get(nu * k)
	for li := range l.labels {
		prior := l.prior[li]
		table := l.logProb[li]
		unseen := l.unseenLog[li]
		for u := range bags {
			lp := prior
			for _, tc := range bags[u].Terms {
				lp += float64(tc.N) * table[tc.ID]
			}
			lps[u*k+li] = lp + float64(bags[u].OOV)*unseen
		}
	}
	uniq := make([]learn.Prediction, nu)
	for u := 0; u < nu; u++ {
		off := u * k
		maxLog := math.Inf(-1)
		for li := 0; li < k; li++ {
			if lps[off+li] > maxLog {
				maxLog = lps[off+li]
			}
		}
		//lint:ignore hotalloc the result Prediction is a map by API contract and escapes to the caller; scoring itself runs in the pooled matrix
		p := make(learn.Prediction, k)
		for li, c := range l.labels {
			p[c] = math.Exp(lps[off+li] - maxLog)
		}
		uniq[u] = p.Normalize()
	}
	l.scratch.Put(lps)
	for i := range ins {
		out[i] = uniq[pos[i]]
	}
	return out
}

// PredictBag computes the posterior for an explicit token bag.
// Arithmetic is in log space over the precomputed tables; the result
// is soft-maxed back to a normalized confidence distribution.
func (l *Learner) PredictBag(bag text.Bag) learn.Prediction {
	if l.numDocs == 0 {
		return learn.Uniform(l.labels)
	}
	sb := l.vocab.SparseBag(bag)
	//lint:ignore hotalloc the result Prediction is a map by API contract and escapes to the caller; scoring itself runs on stack buffers below
	p := make(learn.Prediction, len(l.labels))
	maxLog := math.Inf(-1)
	// Stack buffer for the per-label log scores; label sets are small.
	var lpsBuf [24]float64
	lps := lpsBuf[:0]
	if len(l.labels) > len(lpsBuf) {
		lps = make([]float64, 0, len(l.labels))
	}
	lps = lps[:len(l.labels)]
	for li := range l.labels {
		lp := l.prior[li]
		table := l.logProb[li]
		for _, tc := range sb.Terms {
			lp += float64(tc.N) * table[tc.ID]
		}
		lp += float64(sb.OOV) * l.unseenLog[li]
		lps[li] = lp
		if lp > maxLog {
			maxLog = lp
		}
	}
	for li, c := range l.labels {
		p[c] = math.Exp(lps[li] - maxLog)
	}
	return p.Normalize()
}

// LogLikelihood returns log P(bag|c) + log P(c) for diagnostics. An
// unknown label gets the likelihood of a label never seen in training.
func (l *Learner) LogLikelihood(bag text.Bag, c string) float64 {
	if l.numDocs == 0 {
		return 0
	}
	li, ok := l.labelIdx[c]
	if !ok {
		return 0
	}
	sb := l.vocab.SparseBag(bag)
	lp := l.prior[li]
	table := l.logProb[li]
	for _, tc := range sb.Terms {
		lp += float64(tc.N) * table[tc.ID]
	}
	return lp + float64(sb.OOV)*l.unseenLog[li]
}
