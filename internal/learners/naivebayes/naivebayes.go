// Package naivebayes implements the Naive Bayes text classifier of
// §3.3: each input instance is a bag of tokens produced by parsing and
// stemming the words and symbols in the instance; the learner assigns
// d = {w1..wk} to the class maximizing P(c)·ΠP(wj|c), with P(wj|c)
// estimated as n(wj,c)/n(c) under Laplace smoothing. It works best when
// tokens are strongly indicative of the label by virtue of their
// frequencies ("beautiful", "great" in house descriptions), and poorly
// on short or numeric fields.
package naivebayes

import (
	"fmt"
	"math"

	"repro/internal/learn"
	"repro/internal/text"
)

// Learner is a multinomial Naive Bayes classifier over stemmed tokens.
type Learner struct {
	labels []string
	// tokenCount[c][w] = n(w, c); totalCount[c] = n(c).
	tokenCount map[string]map[string]float64
	totalCount map[string]float64
	// docCount[c] = number of training instances with label c.
	docCount map[string]float64
	numDocs  float64
	vocab    map[string]bool
}

// New returns an untrained Naive Bayes learner.
func New() *Learner { return &Learner{} }

// Factory is a learn.Factory for the Naive Bayes learner.
func Factory() learn.Learner { return New() }

// Name implements learn.Learner.
func (l *Learner) Name() string { return "NaiveBayes" }

// Tokens returns the bag of tokens NB derives from an instance: the
// stemmed words and symbols of its data content. Exposed so the XML
// learner can reuse the identical token pipeline for its text tokens.
func Tokens(content string) []string {
	return text.TokenizeAndStem(content)
}

// Train estimates P(c) and P(w|c) from the examples.
func (l *Learner) Train(labels []string, examples []learn.Example) error {
	if len(labels) == 0 {
		return fmt.Errorf("naivebayes: no labels")
	}
	l.labels = append([]string(nil), labels...)
	l.tokenCount = make(map[string]map[string]float64, len(labels))
	l.totalCount = make(map[string]float64, len(labels))
	l.docCount = make(map[string]float64, len(labels))
	l.vocab = make(map[string]bool)
	for _, c := range labels {
		l.tokenCount[c] = make(map[string]float64)
	}
	l.numDocs = float64(len(examples))
	for _, ex := range examples {
		counts, ok := l.tokenCount[ex.Label]
		if !ok {
			return fmt.Errorf("naivebayes: example labelled %q outside label set", ex.Label)
		}
		l.docCount[ex.Label]++
		for _, w := range Tokens(ex.Instance.Content) {
			counts[w]++
			l.totalCount[ex.Label]++
			l.vocab[w] = true
		}
	}
	return nil
}

// TrainBags fits the model directly from per-example token bags. The
// XML learner uses this entry point with its structural token bags.
func (l *Learner) TrainBags(labels []string, bags []text.Bag, bagLabels []string) error {
	if len(bags) != len(bagLabels) {
		return fmt.Errorf("naivebayes: %d bags but %d labels", len(bags), len(bagLabels))
	}
	l.labels = append([]string(nil), labels...)
	l.tokenCount = make(map[string]map[string]float64, len(labels))
	l.totalCount = make(map[string]float64, len(labels))
	l.docCount = make(map[string]float64, len(labels))
	l.vocab = make(map[string]bool)
	for _, c := range labels {
		l.tokenCount[c] = make(map[string]float64)
	}
	l.numDocs = float64(len(bags))
	for i, bag := range bags {
		c := bagLabels[i]
		counts, ok := l.tokenCount[c]
		if !ok {
			return fmt.Errorf("naivebayes: bag labelled %q outside label set", c)
		}
		l.docCount[c]++
		// Sorted token order: totalCount accumulates float64 across the
		// bag, and map-order summation would depend on iteration order.
		// (The counts are integral, so today the sums are exact either
		// way; sorting keeps that true if the weighting ever changes.)
		for _, w := range bag.Tokens() {
			n := bag[w]
			counts[w] += float64(n)
			l.totalCount[c] += float64(n)
			l.vocab[w] = true
		}
	}
	return nil
}

// Predict computes the posterior distribution over labels for the
// instance's content.
func (l *Learner) Predict(in learn.Instance) learn.Prediction {
	return l.PredictBag(text.NewBag(Tokens(in.Content)))
}

// PredictBag computes the posterior for an explicit token bag.
// Arithmetic is in log space; the result is soft-maxed back to a
// normalized confidence distribution.
func (l *Learner) PredictBag(bag text.Bag) learn.Prediction {
	p := make(learn.Prediction, len(l.labels))
	if l.numDocs == 0 {
		return learn.Uniform(l.labels)
	}
	vocabSize := float64(len(l.vocab))
	if vocabSize == 0 {
		vocabSize = 1
	}
	// Sorted token order keeps the log-probability sums bit-identical
	// across runs; bag is a map and float addition is not associative.
	toks := bag.Tokens()
	logs := make(map[string]float64, len(l.labels))
	maxLog := math.Inf(-1)
	for _, c := range l.labels {
		// Laplace-smoothed class prior: labels absent from training keep
		// a small non-zero probability.
		lp := math.Log((l.docCount[c] + 1) / (l.numDocs + float64(len(l.labels))))
		denom := l.totalCount[c] + vocabSize
		for _, w := range toks {
			lp += float64(bag[w]) * math.Log((l.tokenCount[c][w]+1)/denom)
		}
		logs[c] = lp
		if lp > maxLog {
			maxLog = lp
		}
	}
	for c, lp := range logs {
		p[c] = math.Exp(lp - maxLog)
	}
	return p.Normalize()
}

// LogLikelihood returns log P(bag|c) + log P(c) for diagnostics.
func (l *Learner) LogLikelihood(bag text.Bag, c string) float64 {
	if l.numDocs == 0 {
		return 0
	}
	vocabSize := float64(len(l.vocab))
	if vocabSize == 0 {
		vocabSize = 1
	}
	lp := math.Log((l.docCount[c] + 1) / (l.numDocs + float64(len(l.labels))))
	denom := l.totalCount[c] + vocabSize
	for _, w := range bag.Tokens() {
		lp += float64(bag[w]) * math.Log((l.tokenCount[c][w]+1)/denom)
	}
	return lp
}
