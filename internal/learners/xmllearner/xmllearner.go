// Package xmllearner implements the XML learner of §5, the paper's
// novel classifier for nested elements. Like Naive Bayes it represents
// an instance as a bag of tokens and multiplies token probabilities,
// but the bag contains structure tokens in addition to text tokens:
//
//   - text tokens: the stemmed words in leaf content;
//   - node tokens: one per non-root sub-element, carrying its label;
//   - edge tokens: one per parent-child pair, from the generic root or
//     a sub-element label to a child label or leaf word.
//
// During training the sub-element labels are the true labels given by
// the user's 1-1 mappings; during matching they are predicted by the
// rest of LSD (the other base learners combined by the meta-learner),
// exactly as Table 2 of the paper prescribes.
package xmllearner

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/learn"
	"repro/internal/learners/naivebayes"
	"repro/internal/text"
	"repro/internal/xmltree"
)

// genericRoot is tR of Table 2: every instance tree's own tag is
// replaced with this placeholder so the learner never keys on the
// source-specific root tag.
const genericRoot = "d"

// maxTokMemo bounds each structural-token memo below. Real corpora
// draw from a few hundred labels and a few thousand words; the bound
// only caps memory on adversarial input, after which tokens are built
// directly.
const maxTokMemo = 1 << 15

// The structural-token memos cache the prefixed map keys the walk
// emits ("w:"+word, "n:"+label, "e:"+parent+">"+child): building them
// with string concatenation on every occurrence was the single largest
// allocation site of the matching phase. The token strings are pure
// functions of their parts, so the memos never affect results — a lost
// or skipped insert only costs the concatenation — and sync.Map makes
// them safe to share between concurrent predict workers.
var (
	wordTokMemo    sync.Map // word -> "w:"+word
	wordTokMemoLen atomic.Int64
	nodeTokMemo    sync.Map // label -> "n:"+label
	nodeTokMemoLen atomic.Int64
	edgeTokMemos   sync.Map // parent label -> *edgeTokMemo
)

// edgeTokMemo caches the edge tokens under one parent label.
type edgeTokMemo struct {
	m   sync.Map // child (label or word) -> "e:"+parent+">"+child
	len atomic.Int64
}

func memoTok(m *sync.Map, n *atomic.Int64, key, prefix, suffix string) string {
	if v, ok := m.Load(key); ok {
		return v.(string)
	}
	s := prefix + key + suffix
	if n.Load() < maxTokMemo {
		if _, loaded := m.LoadOrStore(key, s); !loaded {
			n.Add(1)
		}
	}
	return s
}

func wordTok(w string) string { return memoTok(&wordTokMemo, &wordTokMemoLen, w, "w:", "") }

func nodeTok(label string) string { return memoTok(&nodeTokMemo, &nodeTokMemoLen, label, "n:", "") }

// edgeTok returns "e:"+parent+">"+child through the two-level memo, so
// the steady state allocates nothing per occurrence.
func edgeTok(parent, child string) string {
	v, ok := edgeTokMemos.Load(parent)
	if !ok {
		v, _ = edgeTokMemos.LoadOrStore(parent, &edgeTokMemo{})
	}
	em := v.(*edgeTokMemo)
	if s, ok := em.m.Load(child); ok {
		return s.(string)
	}
	s := "e:" + parent + ">" + child
	if em.len.Load() < maxTokMemo {
		if _, loaded := em.m.LoadOrStore(child, s); !loaded {
			em.len.Add(1)
		}
	}
	return s
}

// NodeLabeler assigns a label to a sub-element of an instance. The
// training phase uses the true mappings; the matching phase uses the
// predictions of the other base learners combined by the meta-learner.
type NodeLabeler interface {
	// LabelNode returns the label for the element node whose
	// root-to-node tag path is path. path is only valid for the
	// duration of the call: the walk reuses one path buffer, so an
	// implementation that retains it must copy it first.
	LabelNode(node *xmltree.Node, path []string) string
}

// NodeLabelerFunc adapts a function to the NodeLabeler interface.
type NodeLabelerFunc func(node *xmltree.Node, path []string) string

// LabelNode implements NodeLabeler.
func (f NodeLabelerFunc) LabelNode(node *xmltree.Node, path []string) string {
	return f(node, path)
}

// Learner is the XML learner. It must be constructed with the labeler
// used at matching time; the labeler used at training time is passed to
// Train through the examples' true labels via SetTrainLabeler.
type Learner struct {
	nb           *naivebayes.Learner
	trainLabeler NodeLabeler
	matchLabeler NodeLabeler
}

// New returns an untrained XML learner. trainLabeler labels
// sub-elements during training (from the user's 1-1 mappings);
// matchLabeler labels them during matching (from the rest of LSD).
// Either may be nil, in which case sub-element tags are kept verbatim —
// useful in isolation tests but not the paper's configuration.
func New(trainLabeler, matchLabeler NodeLabeler) *Learner {
	return &Learner{
		nb:           naivebayes.New(),
		trainLabeler: trainLabeler,
		matchLabeler: matchLabeler,
	}
}

// SetMatchLabeler replaces the matching-phase labeler. The LSD pipeline
// calls this after the meta-learner is trained, resolving the circular
// dependency between the XML learner and the ensemble it consults.
func (l *Learner) SetMatchLabeler(nl NodeLabeler) { l.matchLabeler = nl }

// State snapshots the trained learner's Naive Bayes model for
// serialization; nil if untrained. The labelers are code, not data:
// the training labeler is only needed during Train, and the matching
// labeler is rebuilt by the pipeline from the serialized interim
// ensemble and re-attached with SetMatchLabeler.
func (l *Learner) State() *naivebayes.State { return l.nb.State() }

// Restore rebuilds a trained XML learner from its serialized Naive
// Bayes state. The caller re-attaches the matching-phase labeler with
// SetMatchLabeler; until then sub-element tags pass through verbatim.
func Restore(st *naivebayes.State) (*Learner, error) {
	nb, err := naivebayes.Restore(st)
	if err != nil {
		return nil, fmt.Errorf("xmllearner: %w", err)
	}
	return &Learner{nb: nb}, nil
}

// Name implements learn.Learner.
func (l *Learner) Name() string { return "XMLLearner" }

// Train builds the structural token bags of every example (Table 2,
// training phase) and fits the underlying Naive Bayes model on them.
func (l *Learner) Train(labels []string, examples []learn.Example) error {
	if len(labels) == 0 {
		return fmt.Errorf("xmllearner: no labels")
	}
	bags := make([]text.Bag, 0, len(examples))
	bagLabels := make([]string, 0, len(examples))
	for _, ex := range examples {
		bags = append(bags, l.TokenBag(ex.Instance, l.trainLabeler))
		bagLabels = append(bagLabels, ex.Label)
	}
	return l.nb.TrainBags(labels, bags, bagLabels)
}

// Predict builds the instance's structural token bag, labelling
// sub-elements with the matching-phase labeler, and returns the Naive
// Bayes posterior over the bag.
func (l *Learner) Predict(in learn.Instance) learn.Prediction {
	return l.nb.PredictBag(l.TokenBag(in, l.matchLabeler))
}

// TokenBag generates the bag of text, node, and edge tokens for an
// instance (Table 2 step 3 / Figure 7.f). Exposed for tests and for
// the ablation benches.
func (l *Learner) TokenBag(in learn.Instance, labeler NodeLabeler) text.Bag {
	bag := text.Bag{}
	if in.Node == nil {
		// Fall back to plain text tokens: a flat instance has no
		// structure, so the learner degrades to Naive Bayes.
		for _, w := range naivebayes.Tokens(in.Content) {
			bag[wordTok(w)]++
		}
		return bag
	}
	// Copy the instance path into a private buffer with headroom:
	// collect extends it in place while walking (one allocation per
	// bag, not one per visited child), which is safe because labelers
	// must not retain the path slice they are handed.
	path := make([]string, len(in.Path), len(in.Path)+8)
	copy(path, in.Path)
	l.collect(in.Node, genericRoot, path, labeler, bag)
	return bag
}

// collect walks the children of node, whose resolved label is
// parentLabel, adding tokens to bag. path is the tag path from the
// document root to node.
func (l *Learner) collect(node *xmltree.Node, parentLabel string, path []string, labeler NodeLabeler, bag text.Bag) {
	// Words directly under this node.
	for _, w := range naivebayes.Tokens(node.Text) {
		bag[wordTok(w)]++
		bag[edgeTok(parentLabel, w)]++
	}
	for _, child := range node.Children {
		// Extend the shared path buffer in place; truncation on the next
		// iteration reuses the same backing array. LabelNode must not
		// retain the slice (see NodeLabeler), and NewInstance copies it.
		childPath := append(path, child.Tag)
		label := child.Tag
		if labeler != nil {
			label = labeler.LabelNode(child, childPath)
		}
		if child.IsLeaf() {
			// Leaf sub-elements contribute their words under the
			// parent's label plus, when labelled, a node token.
			if labeler != nil {
				bag[nodeTok(label)]++
				bag[edgeTok(parentLabel, label)]++
			}
			for _, w := range naivebayes.Tokens(child.Text) {
				bag[wordTok(w)]++
				bag[edgeTok(label, w)]++
			}
			continue
		}
		bag[nodeTok(label)]++
		bag[edgeTok(parentLabel, label)]++
		l.collect(child, label, childPath, labeler, bag)
	}
}
