package xmllearner

import (
	"strings"
	"testing"

	"repro/internal/learn"
	"repro/internal/xmltree"
)

// tagLabeler maps source tags to labels through a fixed table, playing
// the role of the user's 1-1 mappings during training.
type tagLabeler map[string]string

func (m tagLabeler) LabelNode(n *xmltree.Node, _ []string) string {
	if l, ok := m[n.Tag]; ok {
		return l
	}
	return n.Tag
}

func node(t *testing.T, s string) *xmltree.Node {
	t.Helper()
	n, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

var mapping = tagLabeler{
	"name":  "AGENT-NAME",
	"firm":  "OFFICE-NAME",
	"phone": "AGENT-PHONE",
}

func inst(n *xmltree.Node) learn.Instance {
	return learn.Instance{TagName: n.Tag, Content: n.Content(), Node: n,
		Path: []string{n.Tag}}
}

// TestTokenBagFigure7 reproduces Figure 7.d-f: the contact element's
// bag must contain the text, node, and edge tokens the paper lists.
func TestTokenBagFigure7(t *testing.T) {
	contact := node(t, `<contact><name>Gail Murphy</name><firm>MAX Realtors</firm></contact>`)
	l := New(mapping, mapping)
	bag := l.TokenBag(inst(contact), mapping)

	for _, want := range []string{
		"w:gail", "w:murphi", // stemmed text tokens
		"n:AGENT-NAME", "n:OFFICE-NAME", // node tokens
		"e:d>AGENT-NAME", "e:d>OFFICE-NAME", // edge tokens from generic root
		"e:AGENT-NAME>gail", "e:OFFICE-NAME>realtor", // label -> word edges
	} {
		if bag[want] == 0 {
			t.Errorf("bag missing token %q; bag = %v", want, bag)
		}
	}
	// The source root tag must have been replaced with the generic root:
	// no token mentions "contact".
	for tok := range bag {
		if strings.Contains(tok, "contact") {
			t.Errorf("bag leaks source root tag: %q", tok)
		}
	}
}

func TestTokenBagFlatInstance(t *testing.T) {
	l := New(nil, nil)
	bag := l.TokenBag(learn.Instance{Content: "great house"}, nil)
	if bag["w:great"] == 0 || bag["w:hous"] == 0 {
		t.Errorf("flat bag = %v", bag)
	}
}

// TestDistinguishesSharedVocabulary reproduces the motivation of §5:
// classes that share words (CONTACT-INFO vs DESCRIPTION embedding the
// same names) are separable through structure tokens even when flat
// Naive Bayes cannot tell them apart.
func TestDistinguishesSharedVocabulary(t *testing.T) {
	labels := []string{"CONTACT-INFO", "DESCRIPTION"}
	var examples []learn.Example
	names := [][2]string{
		{"Gail Murphy", "MAX Realtors"},
		{"Mike Smith", "ACME Homes"},
		{"Jane Kendall", "Best Realty"},
		{"Matt Richardson", "Star Estates"},
	}
	for _, nm := range names {
		contact := xmltree.NewParent("contact",
			xmltree.New("name", nm[0]), xmltree.New("firm", nm[1]))
		examples = append(examples, learn.Example{Instance: inst(contact), Label: "CONTACT-INFO"})
		// Descriptions mention the very same people and firms, but flat.
		desc := xmltree.New("description",
			"Lovely house. To see it, contact "+nm[0]+" at "+nm[1]+".")
		examples = append(examples, learn.Example{Instance: inst(desc), Label: "DESCRIPTION"})
	}
	l := New(mapping, mapping)
	if err := l.Train(labels, examples); err != nil {
		t.Fatal(err)
	}

	probeContact := node(t, `<contact-info><name>Ken Adams</name><firm>Blue Sky Realty</firm></contact-info>`)
	if best, _ := l.Predict(inst(probeContact)).Best(); best != "CONTACT-INFO" {
		t.Errorf("structured probe Best = %q, want CONTACT-INFO", best)
	}
	probeDesc := xmltree.New("extra-info", "Wonderful home, contact Ken Adams at Blue Sky Realty")
	if best, _ := l.Predict(inst(probeDesc)).Best(); best != "DESCRIPTION" {
		t.Errorf("flat probe Best = %q, want DESCRIPTION", best)
	}
}

// TestEdgeTokensDiscriminate reproduces the WATERFRONT->"yes" example:
// the same leaf word under different parents must produce different
// edge tokens.
func TestEdgeTokensDiscriminate(t *testing.T) {
	labels := []string{"WATER-VIEW", "HAS-FIREPLACE"}
	mapper := tagLabeler{"waterfront": "WATERFRONT", "fireplace": "FIREPLACE"}
	var examples []learn.Example
	for i := 0; i < 5; i++ {
		w := node(t, `<house><waterfront>yes</waterfront></house>`)
		examples = append(examples, learn.Example{Instance: inst(w), Label: "WATER-VIEW"})
		f := node(t, `<house><fireplace>yes</fireplace></house>`)
		examples = append(examples, learn.Example{Instance: inst(f), Label: "HAS-FIREPLACE"})
	}
	l := New(mapper, mapper)
	if err := l.Train(labels, examples); err != nil {
		t.Fatal(err)
	}
	probe := node(t, `<listing><waterfront>yes</waterfront></listing>`)
	if best, _ := l.Predict(inst(probe)).Best(); best != "WATER-VIEW" {
		t.Errorf("Best = %q, want WATER-VIEW (edge token should discriminate)", best)
	}
}

func TestSetMatchLabeler(t *testing.T) {
	l := New(mapping, nil)
	l.SetMatchLabeler(mapping)
	contact := node(t, `<contact><name>Gail Murphy</name></contact>`)
	bag := l.TokenBag(inst(contact), mapping)
	if bag["n:AGENT-NAME"] == 0 {
		t.Errorf("labeler not applied: %v", bag)
	}
}

func TestTrainNoLabels(t *testing.T) {
	l := New(nil, nil)
	if err := l.Train(nil, nil); err == nil {
		t.Error("Train with no labels should error")
	}
}

func TestNilLabelerKeepsTags(t *testing.T) {
	l := New(nil, nil)
	contact := node(t, `<contact><name>Gail</name></contact>`)
	bag := l.TokenBag(inst(contact), nil)
	if bag["e:name>gail"] == 0 {
		t.Errorf("nil labeler should keep source tags: %v", bag)
	}
	if bag["n:name"] != 0 {
		t.Errorf("nil labeler should not emit node tokens for leaves: %v", bag)
	}
}

func TestDeepNesting(t *testing.T) {
	deep := node(t, `<listing><agent><office><addr>12 Main</addr></office></agent></listing>`)
	mapper := tagLabeler{"agent": "AGENT-INFO", "office": "OFFICE-INFO", "addr": "OFFICE-ADDRESS"}
	l := New(mapper, mapper)
	bag := l.TokenBag(inst(deep), mapper)
	for _, want := range []string{
		"e:d>AGENT-INFO", "e:AGENT-INFO>OFFICE-INFO", "e:OFFICE-INFO>OFFICE-ADDRESS",
		"n:AGENT-INFO", "n:OFFICE-INFO", "n:OFFICE-ADDRESS",
		"w:12", "w:main", "e:OFFICE-ADDRESS>main",
	} {
		if bag[want] == 0 {
			t.Errorf("deep bag missing %q; bag = %v", want, bag)
		}
	}
}
