// Package serve hosts trained LSD matchers behind an HTTP/JSON API:
// a copy-on-write model registry that hot-swaps artifacts without
// blocking in-flight requests, and the handler set cmd/lsdserve mounts.
package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/artifact"
	"repro/internal/core"
)

// Model is one loaded matcher: the servable system plus the artifact
// metadata requests are validated against. Immutable once published.
type Model struct {
	// Name is the registry key (the artifact's recorded model name,
	// unless the loader overrode it).
	Name string
	// FormatVersion is the artifact envelope version the model was
	// loaded from; requests pinning a different version are refused.
	FormatVersion uint16
	// Checksum is the artifact's hex SHA-256.
	Checksum string
	// Labels are the mediated-schema labels the model predicts over.
	Labels []string

	sys *core.System
}

// System returns the servable matcher.
func (m *Model) System() *core.System { return m.sys }

// Registry is a named set of models built for serving: reads are a
// single atomic pointer load on a copy-on-write map, so request
// handlers never contend with each other or with a reload, and a swap
// (Set/Drop/LoadFile) publishes a whole new map in one store.
// In-flight requests keep matching against the model they resolved;
// the old version is garbage-collected when the last of them returns.
type Registry struct {
	models atomic.Pointer[map[string]*Model]
	mu     sync.Mutex // serializes writers; readers never take it
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	empty := map[string]*Model{}
	r.models.Store(&empty)
	return r
}

// Get resolves a model by name.
func (r *Registry) Get(name string) (*Model, bool) {
	m, ok := (*r.models.Load())[name]
	return m, ok
}

// List returns the loaded models sorted by name.
func (r *Registry) List() []*Model {
	cur := *r.models.Load()
	out := make([]*Model, 0, len(cur))
	for _, m := range cur {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports how many models are loaded.
func (r *Registry) Len() int { return len(*r.models.Load()) }

// Set publishes a model, replacing any previous model of the same name
// in one atomic swap.
func (r *Registry) Set(m *Model) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := *r.models.Load()
	next := make(map[string]*Model, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[m.Name] = m
	r.models.Store(&next)
}

// Drop removes a model by name, reporting whether it was present.
func (r *Registry) Drop(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := *r.models.Load()
	if _, ok := cur[name]; !ok {
		return false
	}
	next := make(map[string]*Model, len(cur)-1)
	for k, v := range cur {
		if k != name {
			next[k] = v
		}
	}
	r.models.Store(&next)
	return true
}

// ModelFromDecoded builds a servable Model from a decoded artifact.
// workers is the system's default worker budget (per-request budgets
// override it via WithWorkers).
func ModelFromDecoded(d *artifact.Decoded, workers int) (*Model, error) {
	sys, err := d.System(workers)
	if err != nil {
		return nil, err
	}
	name := d.Name
	if name == "" {
		return nil, fmt.Errorf("serve: artifact carries no model name")
	}
	return &Model{
		Name:          name,
		FormatVersion: d.FormatVersion,
		Checksum:      d.Checksum,
		Labels:        append([]string(nil), d.State.Labels...),
		sys:           sys,
	}, nil
}

// LoadFile reads an artifact from disk and publishes it. The model
// keeps the name recorded in the artifact.
func (r *Registry) LoadFile(path string, workers int) (*Model, error) {
	d, err := artifact.Load(path)
	if err != nil {
		return nil, err
	}
	m, err := ModelFromDecoded(d, workers)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	r.Set(m)
	return m, nil
}

// ArtifactExt is the artifact filename extension LoadDir scans for.
const ArtifactExt = ".lsdm"

// LoadDir loads every *.lsdm artifact in dir, returning the models it
// published. A directory with no artifacts is not an error; a file
// that fails to load is.
func (r *Registry) LoadDir(dir string, workers int) ([]*Model, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*Model
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ArtifactExt {
			continue
		}
		m, err := r.LoadFile(filepath.Join(dir, e.Name()), workers)
		if err != nil {
			return out, err
		}
		out = append(out, m)
	}
	return out, nil
}
