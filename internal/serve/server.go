package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"

	"path/filepath"

	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/parallel"
	"repro/internal/pool"
	"repro/internal/xmltree"
)

// Options tunes a Server.
type Options struct {
	// MaxWorkers caps any single request's worker budget; 0 means one
	// worker per CPU (runtime.GOMAXPROCS).
	MaxWorkers int
	// AdminDir, when non-empty, restricts /admin/load to artifact
	// paths inside it; empty allows any path the process can read.
	AdminDir string
}

// Server serves match requests for the models in a Registry.
type Server struct {
	reg  *Registry
	opts Options
}

// NewServer wraps a registry.
func NewServer(reg *Registry, opts Options) *Server {
	if opts.MaxWorkers <= 0 {
		opts.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	return &Server{reg: reg, opts: opts}
}

// MatchRequest is the JSON body of POST /v1/match and each element of
// a batch. The source arrives as its schema (DTD text) plus its data
// listings (XML text); either may carry any number of listings,
// including zero — tags without data match on their names alone.
type MatchRequest struct {
	// Model names the registry entry to match against.
	Model string `json:"model"`
	// FormatVersion, when nonzero, pins the artifact envelope version
	// the client was built against; a mismatch is refused with 409
	// rather than served with a model the client may misread.
	FormatVersion uint16 `json:"format_version,omitempty"`
	// SourceName labels the source in responses; optional.
	SourceName string `json:"source_name,omitempty"`
	// DTD is the source schema as DTD text.
	DTD string `json:"dtd"`
	// XML is the source's data listings as XML text.
	XML string `json:"xml,omitempty"`
	// Workers is this request's worker budget: 0 = serve serially,
	// n > 0 = up to n workers (clamped to the server's MaxWorkers).
	// The mapping is bit-identical at every setting.
	Workers int `json:"workers,omitempty"`
	// OmitPredictions drops the per-tag score distributions from the
	// response, keeping only the mapping.
	OmitPredictions bool `json:"omit_predictions,omitempty"`
}

// MatchResponse is the JSON reply to one match request.
type MatchResponse struct {
	Model       string                        `json:"model"`
	Checksum    string                        `json:"checksum"`
	SourceName  string                        `json:"source_name,omitempty"`
	Mapping     map[string]string             `json:"mapping"`
	Predictions map[string]map[string]float64 `json:"predictions,omitempty"`
	Partial     map[string]string             `json:"partial,omitempty"`
	Error       string                        `json:"error,omitempty"`
	// Status carries the per-request HTTP-equivalent code inside batch
	// replies, where the outer response is 200 even if an element
	// failed.
	Status int `json:"status,omitempty"`
}

// BatchRequest is the JSON body of POST /v1/batch.
type BatchRequest struct {
	Requests []MatchRequest `json:"requests"`
	// Workers bounds how many requests run concurrently (clamped to
	// the server's MaxWorkers); 0 = one per CPU.
	Workers int `json:"workers,omitempty"`
}

// BatchResponse is the JSON reply to a batch: one response per request
// in request order.
type BatchResponse struct {
	Responses []MatchResponse `json:"responses"`
}

// LoadRequest is the JSON body of POST /admin/load.
type LoadRequest struct {
	// Path is the artifact file to load.
	Path string `json:"path"`
}

// ModelInfo is one entry of GET /v1/models.
type ModelInfo struct {
	Name          string   `json:"name"`
	FormatVersion uint16   `json:"format_version"`
	Checksum      string   `json:"checksum"`
	Labels        []string `json:"labels"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// statusClientClosedRequest is nginx's nonstandard 499: the client
// closed the connection before the server finished the reply. The
// stdlib defines no constant for it.
const statusClientClosedRequest = 499

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("POST /v1/match", s.handleMatch)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /admin/load", s.handleLoad)
	return mux
}

// respBufs pools the response-encoding buffers: every reply marshals
// into a pooled buffer (request-scoped, returned before the handler
// exits) and is written out in one shot with an exact Content-Length,
// instead of allocating an encoder chain per request.
var respBufs pool.Buffers

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := respBufs.Get()
	enc := json.NewEncoder(buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		// Nothing has been written to the wire yet, so a marshal
		// failure can still be reported cleanly.
		respBufs.Put(buf)
		http.Error(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	//lint:ignore errflow the status line is already written; a Write failure means the client is gone and there is no channel left to report on
	_, _ = w.Write(buf.Bytes())
	respBufs.Put(buf)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "models": s.reg.Len()})
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	models := s.reg.List()
	out := make([]ModelInfo, len(models))
	for i, m := range models {
		out[i] = ModelInfo{
			Name:          m.Name,
			FormatVersion: m.FormatVersion,
			Checksum:      m.Checksum,
			Labels:        m.Labels,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": out})
}

// decodeBody strictly decodes a JSON body into v.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A second value means trailing garbage.
	if dec.More() {
		return fmt.Errorf("unexpected data after JSON body")
	}
	return nil
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	var req MatchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	resp, status := s.match(r.Context(), &req)
	if status != http.StatusOK {
		writeError(w, status, "%s", resp.Error)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no requests")
		return
	}
	workers := req.Workers
	if workers > s.opts.MaxWorkers || workers <= 0 {
		workers = s.opts.MaxWorkers
	}
	// Fan the batch out across the worker pool under the request's
	// context: responses come back positionally, so the reply order
	// always mirrors request order, and a client disconnect cancels
	// the undispatched remainder instead of burning the pool on an
	// answer nobody will read.
	responses, err := parallel.Map(r.Context(), workers, len(req.Requests),
		func(ctx context.Context, i int) (MatchResponse, error) {
			resp, status := s.match(ctx, &req.Requests[i])
			resp.Status = status
			return resp, nil
		})
	if err != nil {
		// The task function never fails, so the only error here is the
		// context's: the client went away mid-batch.
		writeError(w, statusClientClosedRequest, "batch canceled: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{Responses: responses})
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req LoadRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, "load request needs a path")
		return
	}
	if dir := s.opts.AdminDir; dir != "" && !pathInside(dir, req.Path) {
		writeError(w, http.StatusForbidden, "path %q is outside the served model directory", req.Path)
		return
	}
	m, err := s.reg.LoadFile(req.Path, 0)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "loading artifact: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, ModelInfo{
		Name:          m.Name,
		FormatVersion: m.FormatVersion,
		Checksum:      m.Checksum,
		Labels:        m.Labels,
	})
}

// match answers one request against the registry snapshot current at
// call time. It returns the response and an HTTP status. ctx is the
// HTTP request's context: a disconnected client cancels the match
// fan-out instead of burning workers on an answer nobody will read.
func (s *Server) match(ctx context.Context, req *MatchRequest) (MatchResponse, int) {
	fail := func(status int, format string, args ...any) (MatchResponse, int) {
		return MatchResponse{Error: fmt.Sprintf(format, args...)}, status
	}
	if req.Model == "" {
		return fail(http.StatusBadRequest, "request names no model")
	}
	m, ok := s.reg.Get(req.Model)
	if !ok {
		return fail(http.StatusNotFound, "model %q is not loaded", req.Model)
	}
	if req.FormatVersion != 0 && req.FormatVersion != m.FormatVersion {
		return fail(http.StatusConflict, "model %q is at artifact format version %d, request pinned %d",
			req.Model, m.FormatVersion, req.FormatVersion)
	}
	if req.DTD == "" {
		return fail(http.StatusBadRequest, "request has no source DTD")
	}
	src, err := buildSource(req)
	if err != nil {
		return fail(http.StatusBadRequest, "%v", err)
	}
	workers := req.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > s.opts.MaxWorkers {
		workers = s.opts.MaxWorkers
	}
	res, err := m.System().WithWorkers(workers).Match(ctx, src)
	if err != nil {
		if ctx.Err() != nil {
			return fail(statusClientClosedRequest, "matching canceled: %v", err)
		}
		return fail(http.StatusUnprocessableEntity, "matching: %v", err)
	}
	resp := MatchResponse{
		Model:      m.Name,
		Checksum:   m.Checksum,
		SourceName: req.SourceName,
		Mapping:    res.Mapping,
		Partial:    res.Partial,
	}
	if !req.OmitPredictions {
		resp.Predictions = make(map[string]map[string]float64, len(res.TagPredictions))
		for tag, p := range res.TagPredictions {
			resp.Predictions[tag] = p
		}
	}
	return resp, http.StatusOK
}

func buildSource(req *MatchRequest) (*core.Source, error) {
	schema, err := dtd.Parse(req.DTD)
	if err != nil {
		return nil, fmt.Errorf("source DTD: %v", err)
	}
	src := &core.Source{Name: req.SourceName, Schema: schema}
	if req.XML != "" {
		listings, err := xmltree.ParseAll(strings.NewReader(req.XML))
		if err != nil {
			return nil, fmt.Errorf("source XML: %v", err)
		}
		src.Listings = listings
	}
	return src, nil
}

// pathInside reports whether path resolves inside dir.
func pathInside(dir, path string) bool {
	rel, err := filepath.Rel(dir, path)
	if err != nil {
		return false
	}
	return rel == "." || (rel != ".." && !strings.HasPrefix(rel, "../"))
}
