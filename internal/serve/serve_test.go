package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/modeltest"
	"repro/internal/xmltree"
)

// newTestServer loads one "houses" model and returns the pieces tests
// poke at.
func newTestServer(t testing.TB) (*Registry, *Server, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	path := modeltest.WriteArtifact(t, dir, "houses")
	reg := NewRegistry()
	if _, err := reg.LoadFile(path, 1); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	srv := NewServer(reg, Options{MaxWorkers: 4, AdminDir: dir})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return reg, srv, ts
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHealthz(t *testing.T) {
	_, _, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var body struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Models != 1 {
		t.Fatalf("healthz = %+v, want ok/1", body)
	}
}

func TestModelsList(t *testing.T) {
	_, _, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Models []ModelInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Models) != 1 {
		t.Fatalf("models = %+v, want one entry", body.Models)
	}
	m := body.Models[0]
	if m.Name != "houses" || m.FormatVersion != artifact.FormatVersion || m.Checksum == "" {
		t.Errorf("model info = %+v", m)
	}
	if len(m.Labels) != len(modeltest.Labels()) {
		t.Errorf("labels = %v, want %v", m.Labels, modeltest.Labels())
	}
}

// matchDirect runs the same request against the in-process system.
func matchDirect(t testing.TB, workers int) *core.MatchResult {
	t.Helper()
	sys, err := core.FromState(modeltest.State(t), workers)
	if err != nil {
		t.Fatalf("FromState: %v", err)
	}
	schema, err := dtd.Parse(modeltest.SourceDTD)
	if err != nil {
		t.Fatal(err)
	}
	listings, err := xmltree.ParseAll(strings.NewReader(modeltest.SourceXML))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Match(context.Background(), &core.Source{Name: "test", Schema: schema, Listings: listings})
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	return res
}

func TestMatchHandler(t *testing.T) {
	_, _, ts := newTestServer(t)
	resp, raw := postJSON(t, ts.URL+"/v1/match", MatchRequest{
		Model: "houses",
		DTD:   modeltest.SourceDTD,
		XML:   modeltest.SourceXML,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var got MatchResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	want := matchDirect(t, 1)
	if len(got.Mapping) == 0 {
		t.Fatal("empty mapping")
	}
	if fmt.Sprint(got.Mapping) != fmt.Sprint(map[string]string(want.Mapping)) {
		t.Errorf("served mapping %v, want %v", got.Mapping, want.Mapping)
	}
	// The served predictions must be bit-identical to the in-process
	// matcher's: JSON's shortest-round-trip float encoding preserves
	// every bit.
	if len(got.Predictions) != len(want.TagPredictions) {
		t.Fatalf("predictions for %d tags, want %d", len(got.Predictions), len(want.TagPredictions))
	}
	for tag, wp := range want.TagPredictions {
		gp := got.Predictions[tag]
		if len(gp) != len(wp) {
			t.Fatalf("tag %q: %d scores, want %d", tag, len(gp), len(wp))
		}
		for label, wv := range wp {
			if gv, ok := gp[label]; !ok || math.Float64bits(gv) != math.Float64bits(wv) {
				t.Errorf("tag %q label %q: served %v, want %v", tag, label, gp[label], wv)
			}
		}
	}
}

// TestMatchWorkerBudgets proves the response is identical at every
// per-request worker budget, including budgets above the server cap.
func TestMatchWorkerBudgets(t *testing.T) {
	_, _, ts := newTestServer(t)
	var first []byte
	for _, workers := range []int{0, 1, 2, 3, 64} {
		resp, raw := postJSON(t, ts.URL+"/v1/match", MatchRequest{
			Model:   "houses",
			DTD:     modeltest.SourceDTD,
			XML:     modeltest.SourceXML,
			Workers: workers,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, resp.StatusCode, raw)
		}
		if first == nil {
			first = raw
		} else if !bytes.Equal(first, raw) {
			t.Errorf("workers=%d: response differs from workers=0", workers)
		}
	}
}

func TestMatchErrors(t *testing.T) {
	_, _, ts := newTestServer(t)
	cases := []struct {
		name   string
		body   any
		status int
		want   string
	}{
		{"unknown model", MatchRequest{Model: "ghost", DTD: modeltest.SourceDTD}, http.StatusNotFound, "not loaded"},
		{"no model", MatchRequest{DTD: modeltest.SourceDTD}, http.StatusBadRequest, "names no model"},
		{"no dtd", MatchRequest{Model: "houses"}, http.StatusBadRequest, "no source DTD"},
		{"bad dtd", MatchRequest{Model: "houses", DTD: "<!ELEMENT"}, http.StatusBadRequest, "source DTD"},
		{"bad xml", MatchRequest{Model: "houses", DTD: modeltest.SourceDTD, XML: "<unclosed"}, http.StatusBadRequest, "source XML"},
		{"version skew", MatchRequest{Model: "houses", DTD: modeltest.SourceDTD, FormatVersion: 99}, http.StatusConflict, "format version"},
		{"unknown field", map[string]any{"model": "houses", "dtd": modeltest.SourceDTD, "surprise": 1}, http.StatusBadRequest, "bad request body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postJSON(t, ts.URL+"/v1/match", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, raw)
			}
			var e errorResponse
			if err := json.Unmarshal(raw, &e); err != nil {
				t.Fatalf("error body is not JSON: %s", raw)
			}
			if !strings.Contains(e.Error, tc.want) {
				t.Errorf("error %q does not mention %q", e.Error, tc.want)
			}
		})
	}

	t.Run("malformed body", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/match", "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/match", "application/json",
			strings.NewReader(`{"model":"houses","dtd":"x"} extra`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("wrong method", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/match")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status %d, want 405", resp.StatusCode)
		}
	})
}

func TestBatchHandler(t *testing.T) {
	_, _, ts := newTestServer(t)
	batch := BatchRequest{
		Requests: []MatchRequest{
			{Model: "houses", DTD: modeltest.SourceDTD, XML: modeltest.SourceXML, SourceName: "a"},
			{Model: "ghost", DTD: modeltest.SourceDTD, SourceName: "b"},
			{Model: "houses", DTD: modeltest.SourceDTD, XML: modeltest.SourceXML, SourceName: "c"},
		},
		Workers: 3,
	}
	resp, raw := postJSON(t, ts.URL+"/v1/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var got BatchResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Responses) != 3 {
		t.Fatalf("%d responses, want 3", len(got.Responses))
	}
	if got.Responses[0].SourceName != "a" || got.Responses[2].SourceName != "c" {
		t.Errorf("responses out of order: %v, %v", got.Responses[0].SourceName, got.Responses[2].SourceName)
	}
	if got.Responses[0].Status != http.StatusOK || got.Responses[2].Status != http.StatusOK {
		t.Errorf("good requests got statuses %d, %d", got.Responses[0].Status, got.Responses[2].Status)
	}
	if got.Responses[1].Status != http.StatusNotFound {
		t.Errorf("bad request got status %d, want 404", got.Responses[1].Status)
	}
	if len(got.Responses[0].Mapping) == 0 {
		t.Error("first response has empty mapping")
	}

	t.Run("empty batch", func(t *testing.T) {
		resp, _ := postJSON(t, ts.URL+"/v1/batch", BatchRequest{})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
}

// TestBatchCancellation models a client that disconnects while its
// batch is in flight: the request context is already canceled when the
// fan-out starts, so the handler must abort promptly with nginx's 499
// instead of matching every element for a reader that is gone.
func TestBatchCancellation(t *testing.T) {
	_, srv, _ := newTestServer(t)
	batch := BatchRequest{Requests: make([]MatchRequest, 8), Workers: 1}
	for i := range batch.Requests {
		batch.Requests[i] = MatchRequest{Model: "houses", DTD: modeltest.SourceDTD, XML: modeltest.SourceXML}
	}
	raw, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is gone before the first element dispatches
	req := httptest.NewRequest("POST", "/v1/batch", bytes.NewReader(raw)).WithContext(ctx)
	rec := httptest.NewRecorder()
	start := time.Now()
	srv.Handler().ServeHTTP(rec, req)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled batch took %v; cancellation must abort the fan-out promptly", elapsed)
	}
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status %d, want %d: %s", rec.Code, statusClientClosedRequest, rec.Body)
	}
	var full BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &full); err == nil && len(full.Responses) == len(batch.Requests) {
		t.Errorf("canceled batch still completed all %d requests", len(full.Responses))
	}
	var body errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Error, "cancel") {
		t.Errorf("error %q does not mention cancellation", body.Error)
	}
}

func TestAdminLoad(t *testing.T) {
	reg, srv, ts := newTestServer(t)
	dir := srv.opts.AdminDir
	path := modeltest.WriteArtifact(t, dir, "condos")

	resp, raw := postJSON(t, ts.URL+"/admin/load", LoadRequest{Path: path})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if _, ok := reg.Get("condos"); !ok {
		t.Fatal("loaded model not in registry")
	}

	t.Run("outside admin dir", func(t *testing.T) {
		other := modeltest.WriteArtifact(t, t.TempDir(), "evil")
		resp, _ := postJSON(t, ts.URL+"/admin/load", LoadRequest{Path: other})
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("status %d, want 403", resp.StatusCode)
		}
	})
	t.Run("corrupt artifact", func(t *testing.T) {
		bad := filepath.Join(dir, "bad"+ArtifactExt)
		if err := os.WriteFile(bad, []byte("LSDMgarbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		resp, _ := postJSON(t, ts.URL+"/admin/load", LoadRequest{Path: bad})
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("status %d, want 422", resp.StatusCode)
		}
	})
	t.Run("no path", func(t *testing.T) {
		resp, _ := postJSON(t, ts.URL+"/admin/load", LoadRequest{})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	if reg.Len() != 0 {
		t.Fatalf("new registry has %d models", reg.Len())
	}
	a := &Model{Name: "a"}
	b := &Model{Name: "b"}
	reg.Set(b)
	reg.Set(a)
	if got := reg.List(); len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("List = %v", got)
	}
	a2 := &Model{Name: "a", Checksum: "new"}
	reg.Set(a2)
	if m, _ := reg.Get("a"); m != a2 {
		t.Fatal("Set did not replace model")
	}
	if !reg.Drop("a") || reg.Drop("a") {
		t.Fatal("Drop semantics broken")
	}
	if reg.Len() != 1 {
		t.Fatalf("registry has %d models after drop, want 1", reg.Len())
	}
}

// TestRegistryHotSwapConcurrent hammers the match endpoint while a
// writer continuously swaps and drops the model. Run under -race (the
// CI build job does): every request must either match against a
// consistent snapshot (200) or miss cleanly (404).
func TestRegistryHotSwapConcurrent(t *testing.T) {
	reg, _, ts := newTestServer(t)
	fresh, err := ModelFromDecoded(mustDecode(t), 1)
	if err != nil {
		t.Fatal(err)
	}

	const readers = 8
	const iters = 30
	var wg sync.WaitGroup
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			reg.Set(fresh)
			reg.Drop("houses")
			reg.Set(fresh)
		}
	}()

	errs := make(chan error, readers*iters)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				raw, _ := json.Marshal(MatchRequest{
					Model: "houses", DTD: modeltest.SourceDTD, XML: modeltest.SourceXML, OmitPredictions: true,
				})
				resp, err := http.Post(ts.URL+"/v1/match", "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					errs <- fmt.Errorf("request %d: status %d", i, resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Stop the writer after the readers are done so they observe both
	// present and absent states.
	close(stop)
	<-writerDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func mustDecode(t testing.TB) *artifact.Decoded {
	t.Helper()
	data, err := artifact.Encode("houses", modeltest.State(t))
	if err != nil {
		t.Fatal(err)
	}
	d, err := artifact.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	modeltest.WriteArtifact(t, dir, "one")
	modeltest.WriteArtifact(t, dir, "two")
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignore me"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	models, err := reg.LoadDir(dir, 1)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(models) != 2 || reg.Len() != 2 {
		t.Fatalf("loaded %d models, registry has %d; want 2/2", len(models), reg.Len())
	}
	if _, err := reg.LoadDir(filepath.Join(dir, "missing"), 1); err == nil {
		t.Error("LoadDir(missing) succeeded, want error")
	}
}

// TestHotReloadServesConsistentSnapshots hammers /v1/match while a
// writer hot-reloads the same model from its artifact in a loop: every
// reply must carry the complete, correct mapping — never a snapshot a
// reload mutated mid-flight. Together with the -race run in CI this is
// the end-to-end witness for the cowstore contract on the registry:
// Set/LoadFile build a fresh model table and publish it with one
// atomic Store, so readers always match against a frozen generation.
func TestHotReloadServesConsistentSnapshots(t *testing.T) {
	reg, srv, ts := newTestServer(t)
	path := filepath.Join(srv.opts.AdminDir, "houses"+ArtifactExt)
	want := matchDirect(t, 1)
	wantMapping := fmt.Sprint(map[string]string(want.Mapping))
	m, _ := reg.Get("houses")
	wantChecksum := m.Checksum

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Reload from disk: each iteration decodes a fresh model and
			// publishes a fresh registry generation, as /admin/load does.
			if _, err := reg.LoadFile(path, 0); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	const readers = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, readers*iters)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				raw, _ := json.Marshal(MatchRequest{
					Model: "houses", DTD: modeltest.SourceDTD, XML: modeltest.SourceXML, OmitPredictions: true,
				})
				resp, err := http.Post(ts.URL+"/v1/match", "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					return
				}
				var body bytes.Buffer
				_, rerr := body.ReadFrom(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					errs <- rerr
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("request %d: status %d: %s", i, resp.StatusCode, body.String())
					return
				}
				var got MatchResponse
				if err := json.Unmarshal(body.Bytes(), &got); err != nil {
					errs <- fmt.Errorf("request %d: %v", i, err)
					return
				}
				// The model content never changes across reloads, so any
				// deviation means a request saw a half-built or mutated
				// snapshot.
				if got.Checksum != wantChecksum {
					errs <- fmt.Errorf("request %d: checksum %q, want %q", i, got.Checksum, wantChecksum)
					return
				}
				if fmt.Sprint(got.Mapping) != wantMapping {
					errs <- fmt.Errorf("request %d: mapping %v, want %v", i, got.Mapping, wantMapping)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-writerDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
