package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/learn"
	"repro/internal/xmltree"
)

// Concept is one node of a domain's mediated concept tree. It carries
// the knobs that make a synthesized source easy or hard for each
// learner: the per-source tag-name pool (descriptive, partial, or
// vacuous names), the value generator, and structural variation rates.
type Concept struct {
	// Label is the mediated-schema tag for the concept.
	Label string
	// Names is the pool of source tag names; source i uses
	// Names[i mod len(Names)]. Pools whose entries share tokens give
	// the name matcher purchase; disjoint or vacuous pools starve it.
	Names []string
	// Gen generates leaf values; nil marks an internal concept.
	Gen ValueGen
	// Optional is the per-listing probability the element is absent.
	Optional float64
	// DropRate is the probability a source omits the concept (and its
	// subtree) from its schema entirely. Core concepts use 0.
	DropRate float64
	// Flatten is the probability a source inlines this internal
	// concept: its children attach to its parent and the tag vanishes.
	Flatten float64
	// SkipIfPresent omits the concept from a source that already kept a
	// concept with the given label; it encodes exclusivity regularities
	// (a source lists course-level or section-level credits, never
	// both).
	SkipIfPresent string
	// Children are the sub-concepts, in mediated sibling order.
	Children []*Concept
}

// IsLeaf reports whether the concept has no sub-concepts.
func (c *Concept) IsLeaf() bool { return len(c.Children) == 0 }

// walk visits the concept tree pre-order.
func (c *Concept) walk(fn func(*Concept)) {
	fn(c)
	for _, ch := range c.Children {
		ch.walk(fn)
	}
}

// ExtraTag describes an unmatchable source tag (true label OTHER).
type ExtraTag struct {
	Names []string
	Gen   ValueGen
}

// Domain is a complete synthetic evaluation domain.
type Domain struct {
	// Name is the Table-3 domain name.
	Name string
	// Root is the mediated concept tree.
	Root *Concept
	// Extras are candidate unmatchable tags appended to sources.
	Extras []ExtraTag
	// ExtrasPerSource gives how many extras each of the five sources
	// receives; this controls the matchable-% column of Table 3.
	ExtrasPerSource [NumSources]int
	// ListingsRange is the nominal downloaded-listings range of
	// Table 3; each source's nominal count is drawn from it.
	ListingsRange [2]int
	// BoilerplateRate is the per-value probability that a leaf value is
	// wrapped in source-specific furniture text (the field caption, as
	// scraped web listings often embed: "Price: $250,000"). Furniture
	// tokens are source-specific, so they dilute the cross-source
	// transfer of the content learners the way real WWW data does.
	BoilerplateRate float64
	// Constraints builds the domain's integrity constraints (§4.1).
	Constraints func() []constraint.Constraint
	// Synonyms feed the name matcher's expansion.
	Synonyms map[string][]string
	// Seed makes source synthesis deterministic per domain.
	Seed int64
}

// NumSources is the number of sources per domain (the paper uses 5).
const NumSources = 5

// Mediated builds the domain's mediated schema for the LSD pipeline.
// The domain's explicit constraints are extended with the structural
// arity constraints implied by the concept tree: leaf concepts must map
// to atomic source elements and internal concepts to compound ones.
func (d *Domain) Mediated() *core.Mediated {
	var cs []constraint.Constraint
	if d.Constraints != nil {
		cs = d.Constraints()
	}
	cs = append(cs, d.ArityConstraints()...)
	return &core.Mediated{
		Schema:      d.MediatedSchema(),
		Constraints: cs,
		Synonyms:    d.Synonyms,
	}
}

// ArityConstraints derives LeafLabel/NonLeafLabel constraints from the
// concept tree.
func (d *Domain) ArityConstraints() []constraint.Constraint {
	var cs []constraint.Constraint
	d.Root.walk(func(c *Concept) {
		if c.IsLeaf() {
			cs = append(cs, constraint.LeafLabel(c.Label))
		} else {
			cs = append(cs, constraint.NonLeafLabel(c.Label))
		}
	})
	return cs
}

// MediatedSchema builds the mediated DTD from the concept tree.
func (d *Domain) MediatedSchema() *dtd.Schema {
	var b strings.Builder
	var emit func(c *Concept)
	emit = func(c *Concept) {
		if c.IsLeaf() {
			fmt.Fprintf(&b, "<!ELEMENT %s (#PCDATA)>\n", c.Label)
			return
		}
		parts := make([]string, len(c.Children))
		for i, ch := range c.Children {
			parts[i] = ch.Label
			if ch.Optional > 0 || ch.DropRate > 0 {
				parts[i] += "?"
			}
		}
		fmt.Fprintf(&b, "<!ELEMENT %s (%s)>\n", c.Label, strings.Join(parts, ", "))
		for _, ch := range c.Children {
			emit(ch)
		}
	}
	emit(d.Root)
	return dtd.MustParse(b.String())
}

// Labels returns the mediated labels (concept labels plus OTHER).
func (d *Domain) Labels() []string {
	var out []string
	d.Root.walk(func(c *Concept) { out = append(out, c.Label) })
	return append(out, learn.Other)
}

// SourceSpec is one synthesized source: its schema, ground-truth
// mapping, style, and nominal data volume.
type SourceSpec struct {
	// Name identifies the source (e.g. "realestate1-src3").
	Name string
	// Index is the source's position 0..NumSources-1.
	Index int
	// Schema is the source DTD.
	Schema *dtd.Schema
	// Mapping is the ground truth: source tag → mediated label
	// (OTHER entries are stored explicitly for extras).
	Mapping map[string]string
	// NominalListings is the Table-3 "downloaded listings" figure.
	NominalListings int

	root        *srcNode
	boilerplate float64
}

// srcNode is a node of the per-source schema tree.
type srcNode struct {
	tag      string
	label    string
	gen      ValueGen
	optional float64
	children []*srcNode
}

// Sources synthesizes the domain's five sources deterministically.
func (d *Domain) Sources() []*SourceSpec {
	out := make([]*SourceSpec, NumSources)
	for i := 0; i < NumSources; i++ {
		out[i] = d.synthesize(i)
	}
	return out
}

// synthesize builds source i: names drawn from the pools, optional
// concepts dropped, internal concepts flattened, extras appended.
func (d *Domain) synthesize(i int) *SourceSpec {
	//lint:ignore seedflow the affine seed schema is part of the published data-generation recipe; switching to DeriveSeed would regenerate every synthetic corpus and invalidate the pinned experiment numbers
	rng := rand.New(rand.NewSource(d.Seed*101 + int64(i)))
	spec := &SourceSpec{
		Name:    fmt.Sprintf("%s-src%d", slug(d.Name), i+1),
		Index:   i,
		Mapping: make(map[string]string),
	}
	used := make(map[string]bool)

	var build func(c *Concept) *srcNode
	build = func(c *Concept) *srcNode {
		tag := c.Names[i%len(c.Names)]
		if used[tag] {
			tag = fmt.Sprintf("%s-%d", tag, i+2)
		}
		used[tag] = true
		n := &srcNode{tag: tag, label: c.Label, gen: c.Gen, optional: c.Optional}
		spec.Mapping[tag] = c.Label
		for _, ch := range c.Children {
			if ch.SkipIfPresent != "" && labelKept(spec.Mapping, ch.SkipIfPresent) {
				continue
			}
			if ch.DropRate > 0 && rng.Float64() < ch.DropRate {
				continue
			}
			if !ch.IsLeaf() && ch.Flatten > 0 && rng.Float64() < ch.Flatten {
				// Inline the child's children; grandchildren keep their
				// own drop decisions.
				ghost := build(ch)
				if ghost == nil {
					continue
				}
				// The flattened tag is not part of this source.
				delete(spec.Mapping, ghost.tag)
				used[ghost.tag] = false
				n.children = append(n.children, ghost.children...)
				continue
			}
			if built := build(ch); built != nil {
				n.children = append(n.children, built)
			}
		}
		// An internal concept whose children were all dropped would
		// degrade to a bogus leaf; prune it instead.
		if c.IsLeaf() || len(n.children) > 0 {
			return n
		}
		delete(spec.Mapping, tag)
		used[tag] = false
		return nil
	}
	spec.root = build(d.Root)

	count := d.ExtrasPerSource[i]
	for k := 0; k < count && k < len(d.Extras); k++ {
		e := d.Extras[(i+k)%len(d.Extras)]
		tag := e.Names[i%len(e.Names)]
		if used[tag] {
			tag = fmt.Sprintf("%s-x%d", tag, k)
		}
		used[tag] = true
		spec.Mapping[tag] = learn.Other
		spec.root.children = append(spec.root.children, &srcNode{
			tag: tag, label: learn.Other, gen: e.Gen, optional: 0.3,
		})
	}

	spec.Schema = buildSchema(spec.root)
	spec.boilerplate = d.BoilerplateRate
	lo, hi := d.ListingsRange[0], d.ListingsRange[1]
	spec.NominalListings = lo + rng.Intn(hi-lo+1)
	return spec
}

// furniturePools are the per-source page-furniture vocabularies: the
// captions, separators, and template words a scraped site wraps every
// field value in. They are source-specific and label-independent, so
// they dilute content-learner signal without leaking the mapping.
var furniturePools = [][]string{
	{"Details", "Listing Detail", "Value"},
	{"Item", "Entry", "Shown As"},
	{"Data", "Record", "As Posted"},
	{"Field", "Info", "Displayed"},
	{"Note", "Spec", "Per Site"},
}

func furniture(style int, rng *rand.Rand) string {
	pool := furniturePools[style%len(furniturePools)]
	return pool[rng.Intn(len(pool))]
}

func labelKept(mapping map[string]string, label string) bool {
	for _, l := range mapping {
		if l == label {
			return true
		}
	}
	return false
}

func slug(s string) string {
	return strings.ToLower(strings.NewReplacer(" ", "", "-", "").Replace(s))
}

// buildSchema renders a source tree as DTD text and parses it.
func buildSchema(root *srcNode) *dtd.Schema {
	var b strings.Builder
	var emit func(n *srcNode)
	emit = func(n *srcNode) {
		if len(n.children) == 0 {
			fmt.Fprintf(&b, "<!ELEMENT %s (#PCDATA)>\n", n.tag)
			return
		}
		parts := make([]string, len(n.children))
		for i, c := range n.children {
			parts[i] = c.tag
			if c.optional > 0 {
				parts[i] += "?"
			}
		}
		fmt.Fprintf(&b, "<!ELEMENT %s (%s)>\n", n.tag, strings.Join(parts, ", "))
		for _, c := range n.children {
			emit(c)
		}
	}
	emit(root)
	return dtd.MustParse(b.String())
}

// Generate materializes n listings from the source using the given
// sample seed ("each time taking a new sample of data from each
// source", §6) and returns the complete core.Source.
func (s *SourceSpec) Generate(n int, sampleSeed int64) *core.Source {
	//lint:ignore seedflow the affine seed schema is part of the published data-generation recipe; switching to DeriveSeed would regenerate every synthetic corpus and invalidate the pinned experiment numbers
	rng := rand.New(rand.NewSource(sampleSeed*1009 + int64(s.Index)))
	listings := make([]*xmltree.Node, n)
	for seq := 0; seq < n; seq++ {
		listings[seq] = s.listing(rng, seq)
	}
	return &core.Source{
		Name:     s.Name,
		Schema:   s.Schema,
		Listings: listings,
		Mapping:  s.Mapping,
	}
}

func (s *SourceSpec) listing(rng *rand.Rand, seq int) *xmltree.Node {
	ctx := &Ctx{Rng: rng, Style: s.Index, Seq: seq}
	var fill func(n *srcNode) *xmltree.Node
	fill = func(n *srcNode) *xmltree.Node {
		node := &xmltree.Node{Tag: n.tag}
		if len(n.children) == 0 {
			if n.gen != nil {
				node.Text = n.gen(ctx)
				if s.boilerplate > 0 && rng.Float64() < s.boilerplate {
					node.Text = furniture(s.Index, rng) + ": " + node.Text
				}
			}
			return node
		}
		for _, c := range n.children {
			if c.optional > 0 && rng.Float64() < c.optional {
				continue
			}
			node.AddChild(fill(c))
		}
		return node
	}
	return fill(s.root)
}

// MatchablePercent returns the share of source tags with a non-OTHER
// mapping, the rightmost column of Table 3.
func (s *SourceSpec) MatchablePercent() float64 {
	tags := s.Schema.Tags()
	if len(tags) == 0 {
		return 0
	}
	matchable := 0
	for _, t := range tags {
		if l, ok := s.Mapping[t]; ok && l != learn.Other {
			matchable++
		}
	}
	return 100 * float64(matchable) / float64(len(tags))
}
