package datagen

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/learn"
)

func ctx(seed int64, style int) *Ctx {
	return &Ctx{Rng: rand.New(rand.NewSource(seed)), Style: style}
}

func TestGenPriceStyles(t *testing.T) {
	withDollar := GenPrice(ctx(1, 0))
	if !strings.HasPrefix(withDollar, "$") {
		t.Errorf("style 0 price = %q, want $ prefix", withDollar)
	}
	plain := GenPrice(ctx(1, 2))
	if strings.ContainsAny(plain, "$,") {
		t.Errorf("style 2 price = %q, want plain digits", plain)
	}
}

func TestGenPhoneStyles(t *testing.T) {
	paren := GenPhone(ctx(1, 0))
	if !strings.HasPrefix(paren, "(") {
		t.Errorf("style 0 phone = %q", paren)
	}
	dashed := GenPhone(ctx(1, 1))
	if strings.Count(dashed, "-") != 2 {
		t.Errorf("style 1 phone = %q", dashed)
	}
}

func TestGenMLSIsSequential(t *testing.T) {
	c := ctx(1, 0)
	c.Seq = 5
	a := GenMLS(c)
	c.Seq = 6
	b := GenMLS(c)
	if a == b {
		t.Errorf("GenMLS not unique per Seq: %q vs %q", a, b)
	}
}

func TestGenDescriptionHasIndicativeWords(t *testing.T) {
	// Over many samples, the paper's indicative adjectives must appear.
	c := ctx(2, 0)
	found := false
	for i := 0; i < 50 && !found; i++ {
		d := strings.ToLower(GenDescription(c))
		if strings.Contains(d, "fantastic") || strings.Contains(d, "great") {
			found = true
		}
	}
	if !found {
		t.Error("descriptions never mention fantastic/great")
	}
}

func TestFurnitureIsSourceSpecific(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := furniture(0, rng)
	if a == "" {
		t.Fatal("empty furniture")
	}
	// The pools of different styles are disjoint.
	pool0 := map[string]bool{}
	for _, w := range furniturePools[0] {
		pool0[w] = true
	}
	for _, w := range furniturePools[1] {
		if pool0[w] {
			t.Errorf("furniture pools 0 and 1 share %q", w)
		}
	}
}

func TestBoilerplateApplied(t *testing.T) {
	d := RealEstateI()
	spec := d.Sources()[0]
	src := spec.Generate(80, 9)
	// Find at least one leaf value carrying the furniture separator.
	hits := 0
	for _, l := range src.Listings {
		for _, c := range l.Children {
			if c.IsLeaf() && strings.Contains(c.Text, ": ") {
				hits++
			}
		}
	}
	if hits == 0 {
		t.Error("boilerplate never applied at rate 0.5 over 80 listings")
	}
}

func TestArityConstraintsDerived(t *testing.T) {
	d := RealEstateI()
	cs := d.ArityConstraints()
	if len(cs) != 20 {
		t.Fatalf("arity constraints = %d, want 20 (one per concept)", len(cs))
	}
	leafCount, nonLeafCount := 0, 0
	for _, c := range cs {
		if strings.Contains(c.Name(), "atomic") {
			leafCount++
		} else {
			nonLeafCount++
		}
	}
	if nonLeafCount != 4 || leafCount != 16 {
		t.Errorf("leaf/non-leaf = %d/%d, want 16/4", leafCount, nonLeafCount)
	}
}

func TestMediatedIncludesArity(t *testing.T) {
	d := FacultyListings()
	med := d.Mediated()
	explicit := len(facultyConstraints())
	if len(med.Constraints) != explicit+14 {
		t.Errorf("mediated constraints = %d, want %d explicit + 14 arity",
			len(med.Constraints), explicit)
	}
}

// TestExclusivityHoldsInTimeSchedule: no generated Time Schedule source
// carries both course- and section-level credits (the SkipIfPresent
// machinery backing the Table-1 exclusivity constraint).
func TestExclusivityHoldsInTimeSchedule(t *testing.T) {
	for _, spec := range TimeSchedule().Sources() {
		hasCourse, hasSection := false, false
		for _, label := range spec.Mapping {
			if label == "COURSE-CREDIT" {
				hasCourse = true
			}
			if label == "SECTION-CREDIT" {
				hasSection = true
			}
		}
		if hasCourse && hasSection {
			t.Errorf("%s has both credit levels", spec.Name)
		}
	}
}

// TestCountySourcesRecognizable: COUNTY values come from the embedded
// county database, so the recognizer can verify them.
func TestCountyValuesFromDatabase(t *testing.T) {
	spec := RealEstateI().Sources()[0]
	var countyTag string
	for tag, label := range spec.Mapping {
		if label == "COUNTY" {
			countyTag = tag
		}
	}
	if countyTag == "" {
		t.Skip("source 0 dropped COUNTY")
	}
	src := spec.Generate(30, 2)
	seen := 0
	for _, l := range src.Listings {
		for _, n := range l.FindAll(countyTag) {
			if n.Text != "" && !strings.Contains(n.Text, ": ") {
				seen++
			}
		}
	}
	if seen == 0 {
		t.Skip("all county values optional-dropped or boilerplated")
	}
}

// TestNoEmptyInternalNodes: the pruning of childless internal concepts
// holds for every domain and source.
func TestNoEmptyInternalNodes(t *testing.T) {
	for _, d := range Domains() {
		labelsByConcept := map[string]bool{}
		d.Root.walk(func(c *Concept) {
			if !c.IsLeaf() {
				labelsByConcept[c.Label] = true
			}
		})
		for _, spec := range d.Sources() {
			for tag, label := range spec.Mapping {
				if label == learn.Other || !labelsByConcept[label] {
					continue
				}
				if spec.Schema.IsLeaf(tag) {
					t.Errorf("%s: compound concept %s mapped to leaf tag %q",
						spec.Name, label, tag)
				}
			}
		}
	}
}

// TestConstraintObjectsWellFormed: every domain constraint can evaluate
// an empty assignment without panicking and reports a name.
func TestConstraintObjectsWellFormed(t *testing.T) {
	for _, d := range Domains() {
		med := d.Mediated()
		csrc := &constraint.Source{Schema: d.Sources()[0].Schema, Tags: d.Sources()[0].Schema.Tags()}
		for _, c := range med.Constraints {
			if c.Name() == "" {
				t.Errorf("%s: unnamed constraint", d.Name)
			}
			if v := c.Violations(csrc, constraint.Assignment{}, false); v != 0 {
				t.Errorf("%s: %s violated by empty assignment: %g", d.Name, c.Name(), v)
			}
		}
	}
}
