// Package datagen synthesizes the four evaluation domains of §6
// (Table 3): Real Estate I, Time Schedule, Faculty Listings, and Real
// Estate II. The paper downloaded listings from five WWW sources per
// domain; this package generates equivalent sources — per-source DTDs
// with independently drawn tag vocabularies and structure, plus listing
// generators — reproducing the signal/noise axes the learners exploit:
// descriptive vs. vacuous tag names, indicative word frequencies,
// numeric vs. textual fields, shared vocabulary across nested classes,
// and constraint-resolvable ambiguities.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Ctx carries the state a value generator may use: the deterministic
// RNG, the source's formatting style, and the listing sequence number
// (for key-like unique values).
type Ctx struct {
	Rng   *rand.Rand
	Style int
	Seq   int
}

// ValueGen produces one leaf value.
type ValueGen func(c *Ctx) string

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

var (
	cities = []string{
		"Seattle", "Portland", "Miami", "Boston", "Austin", "Denver",
		"Chicago", "Atlanta", "Phoenix", "Tacoma", "Bellevue", "Spokane",
		"Olympia", "Eugene", "Oakland", "Tucson", "Orlando", "Kent",
		"Everett", "Renton", "Redmond", "Kirkland", "Burien", "Shoreline",
	}
	states = []string{"WA", "OR", "FL", "MA", "TX", "CO", "IL", "GA", "AZ", "CA"}

	streets = []string{
		"Main St", "Oak Ave", "Pine St", "Maple Dr", "Cedar Ln",
		"Lake View Rd", "Sunset Blvd", "Hill Crest Way", "River Rd",
		"Park Ave", "Union St", "Madison Ave", "Queen Anne Ave",
		"Greenwood Ave", "Rainier Ave",
	}

	firstNames = []string{
		"Kate", "Mike", "Jane", "Matt", "Gail", "Ken", "Laura", "Steve",
		"Anna", "Paul", "Emma", "John", "Sara", "David", "Nancy", "Brian",
		"Carol", "Peter", "Linda", "James",
	}
	lastNames = []string{
		"Richardson", "Smith", "Kendall", "Murphy", "Adams", "Nguyen",
		"Brown", "Wilson", "Garcia", "Lee", "Clark", "Walker", "Hall",
		"Young", "King", "Lopez", "Scott", "Reed", "Baker", "Cole",
	}

	firms = []string{
		"MAX Realtors", "ACME Homes", "Best Realty", "Star Estates",
		"Blue Sky Realty", "Evergreen Properties", "Pacific Crest Homes",
		"Golden Gate Realty", "Summit Brokers", "Harbor View Realty",
	}

	// descWords carry the indicative tokens of house descriptions —
	// the paper's "fantastic" and "great" example.
	descAdjectives = []string{
		"fantastic", "great", "beautiful", "spacious", "charming",
		"stunning", "cozy", "lovely", "wonderful", "gorgeous", "bright",
		"quiet", "remodeled", "updated", "immaculate",
	}
	descNouns = []string{
		"house", "location", "yard", "view", "neighborhood", "kitchen",
		"garden", "deck", "garage", "basement", "fireplace", "beach",
		"park", "school district", "backyard",
	}
	descPhrases = []string{
		"close to downtown", "near the river", "walking distance to shops",
		"move-in ready", "a must see", "name your price",
		"freshly painted", "new roof", "open floor plan",
		"minutes from the freeway", "quiet street", "corner lot",
	}

	houseStyles = []string{
		"Victorian", "Colonial", "Craftsman", "Ranch", "Tudor",
		"Contemporary", "Cape Cod", "Bungalow", "Split Level", "Townhouse",
	}

	departments = []string{
		"CSE", "MATH", "PHYS", "CHEM", "BIO", "HIST", "ECON", "PSYCH",
		"ENGL", "PHIL", "STAT", "LING", "GEOG", "ART", "MUS",
	}
	courseTitleHeads = []string{
		"Introduction to", "Advanced", "Topics in", "Foundations of",
		"Principles of", "Seminar in", "Readings in", "Applied",
	}
	courseTitleTails = []string{
		"Computer Science", "Data Structures", "Algorithms", "Databases",
		"Calculus", "Linear Algebra", "Mechanics", "Organic Chemistry",
		"Genetics", "World History", "Microeconomics", "Cognition",
		"American Literature", "Ethics", "Statistics", "Syntax",
	}
	weekdays = []string{"MWF", "TTh", "MW", "WF", "M", "T", "W", "Th", "F", "Daily"}

	researchAreas = []string{
		"machine learning", "databases", "computer networks",
		"operating systems", "computational biology", "graphics",
		"human computer interaction", "programming languages",
		"theory of computation", "computer architecture", "robotics",
		"natural language processing", "data mining", "security",
	}
	universities = []string{
		"University of Washington", "Stanford University", "MIT",
		"Carnegie Mellon University", "UC Berkeley", "Cornell University",
		"Princeton University", "University of Michigan",
		"University of Texas", "Georgia Tech",
	}
	ranks = []string{
		"Professor", "Associate Professor", "Assistant Professor",
		"Lecturer", "Research Professor", "Professor Emeritus",
	}
)

// GenCityState generates "City, ST" addresses.
func GenCityState(c *Ctx) string {
	return pick(c.Rng, cities) + ", " + pick(c.Rng, states)
}

// GenStreetAddress generates street addresses.
func GenStreetAddress(c *Ctx) string {
	return fmt.Sprintf("%d %s", 100+c.Rng.Intn(9900), pick(c.Rng, streets))
}

// GenPrice generates listing prices; styles vary the formatting the
// way different WWW sources did.
func GenPrice(c *Ctx) string {
	v := (80 + c.Rng.Intn(900)) * 1000
	switch c.Style % 3 {
	case 0:
		return fmt.Sprintf("$%s", withCommas(v))
	case 1:
		return fmt.Sprintf("$ %s", withCommas(v))
	default:
		return fmt.Sprintf("%d", v)
	}
}

func withCommas(v int) string {
	s := fmt.Sprintf("%d", v)
	var out []string
	for len(s) > 3 {
		out = append([]string{s[len(s)-3:]}, out...)
		s = s[:len(s)-3]
	}
	out = append([]string{s}, out...)
	return strings.Join(out, ",")
}

// GenPhone generates US phone numbers in per-source styles.
func GenPhone(c *Ctx) string {
	a, b, d := 200+c.Rng.Intn(700), 200+c.Rng.Intn(700), c.Rng.Intn(10000)
	switch c.Style % 3 {
	case 0:
		return fmt.Sprintf("(%03d) %03d %04d", a, b, d)
	case 1:
		return fmt.Sprintf("%03d-%03d-%04d", a, b, d)
	default:
		return fmt.Sprintf("%03d.%03d.%04d", a, b, d)
	}
}

// GenPersonName generates "First Last" names.
func GenPersonName(c *Ctx) string {
	return pick(c.Rng, firstNames) + " " + pick(c.Rng, lastNames)
}

// GenFirstName and GenLastName generate name parts.
func GenFirstName(c *Ctx) string { return pick(c.Rng, firstNames) }

// GenLastName generates last names.
func GenLastName(c *Ctx) string { return pick(c.Rng, lastNames) }

// GenFirm generates real-estate firm names.
func GenFirm(c *Ctx) string { return pick(c.Rng, firms) }

// GenDescription generates free-text house descriptions rich in the
// indicative adjectives the Naive Bayes learner keys on.
func GenDescription(c *Ctx) string {
	var parts []string
	n := 2 + c.Rng.Intn(3)
	for i := 0; i < n; i++ {
		parts = append(parts,
			strings.Title(pick(c.Rng, descAdjectives))+" "+pick(c.Rng, descNouns))
	}
	parts = append(parts, pick(c.Rng, descPhrases))
	if c.Rng.Intn(3) == 0 {
		parts = append(parts, "contact "+GenPersonName(c)+" at "+GenFirm(c))
	}
	return strings.Join(parts, ". ") + "."
}

// GenComment generates shorter remark-style text sharing the
// description vocabulary.
func GenComment(c *Ctx) string {
	return strings.Title(pick(c.Rng, descAdjectives)) + " " + pick(c.Rng, descNouns)
}

// GenSmallInt generates counts in [lo, hi].
func GenSmallInt(lo, hi int) ValueGen {
	return func(c *Ctx) string {
		return fmt.Sprintf("%d", lo+c.Rng.Intn(hi-lo+1))
	}
}

// GenHalfSteps generates values like 1.5, 2, 2.5 in [lo, hi].
func GenHalfSteps(lo, hi int) ValueGen {
	return func(c *Ctx) string {
		v := float64(lo) + 0.5*float64(c.Rng.Intn(2*(hi-lo)+1))
		if v == float64(int(v)) {
			return fmt.Sprintf("%d", int(v))
		}
		return fmt.Sprintf("%.1f", v)
	}
}

// GenSqft generates house sizes; the thousands-scale values the paper
// notes let a learner separate sizes from counts.
func GenSqft(c *Ctx) string {
	v := 600 + 50*c.Rng.Intn(90)
	if c.Style%2 == 0 {
		return fmt.Sprintf("%d", v)
	}
	return fmt.Sprintf("%d sqft", v)
}

// GenYear generates construction years.
func GenYear(c *Ctx) string { return fmt.Sprintf("%d", 1900+c.Rng.Intn(101)) }

// GenYesNo generates boolean flags.
func GenYesNo(c *Ctx) string {
	if c.Rng.Intn(2) == 0 {
		return "yes"
	}
	return "no"
}

// GenChoice generates a uniform choice from options.
func GenChoice(options ...string) ValueGen {
	return func(c *Ctx) string { return pick(c.Rng, options) }
}

// GenHouseStyle generates architectural styles.
func GenHouseStyle(c *Ctx) string { return pick(c.Rng, houseStyles) }

// GenCounty samples county names; the county-name recognizer verifies
// these against its embedded database.
func GenCounty(counties []string) ValueGen {
	return func(c *Ctx) string { return pick(c.Rng, counties) }
}

// GenZip generates 5-digit zip codes.
func GenZip(c *Ctx) string { return fmt.Sprintf("%05d", 10000+c.Rng.Intn(89999)) }

// GenMLS generates unique listing identifiers (a key column).
func GenMLS(c *Ctx) string { return fmt.Sprintf("MLS%06d", 100000+c.Seq) }

// GenCourseCode generates course codes (the §7 format-learner case).
func GenCourseCode(c *Ctx) string {
	return fmt.Sprintf("%s%d", pick(c.Rng, departments), 100+c.Rng.Intn(500))
}

// GenSection generates section identifiers.
func GenSection(c *Ctx) string { return fmt.Sprintf("%c", 'A'+rune(c.Rng.Intn(6))) }

// GenCourseTitle generates course titles.
func GenCourseTitle(c *Ctx) string {
	return pick(c.Rng, courseTitleHeads) + " " + pick(c.Rng, courseTitleTails)
}

// GenCredits generates credit counts.
func GenCredits(c *Ctx) string { return fmt.Sprintf("%d", 1+c.Rng.Intn(5)) }

// GenTime generates meeting times.
func GenTime(c *Ctx) string {
	h := 8 + c.Rng.Intn(10)
	m := []string{"00", "30"}[c.Rng.Intn(2)]
	switch c.Style % 2 {
	case 0:
		return fmt.Sprintf("%d:%s", h, m)
	default:
		suffix := "AM"
		hh := h
		if h >= 12 {
			suffix = "PM"
			if h > 12 {
				hh = h - 12
			}
		}
		return fmt.Sprintf("%d:%s %s", hh, m, suffix)
	}
}

// GenDays generates meeting-day patterns.
func GenDays(c *Ctx) string { return pick(c.Rng, weekdays) }

// GenRoom generates building/room designators.
func GenRoom(c *Ctx) string {
	return fmt.Sprintf("%s %d", pick(c.Rng, []string{"MGH", "EE1", "SAV", "KNE", "GWN", "LOW", "SMI", "THO"}), 100+c.Rng.Intn(400))
}

// GenEnrollment generates enrollment counts.
func GenEnrollment(c *Ctx) string { return fmt.Sprintf("%d", 5+c.Rng.Intn(295)) }

// GenEmail generates e-mail addresses.
func GenEmail(c *Ctx) string {
	return strings.ToLower(pick(c.Rng, firstNames)) + "@" +
		pick(c.Rng, []string{"cs.washington.edu", "cs.stanford.edu", "mit.edu", "cmu.edu", "berkeley.edu"})
}

// GenURL generates homepage URLs.
func GenURL(c *Ctx) string {
	return "http://www." + pick(c.Rng, []string{"cs", "ee", "math"}) + ".example.edu/~" +
		strings.ToLower(pick(c.Rng, lastNames))
}

// GenResearch generates research-interest blurbs for faculty profiles.
func GenResearch(c *Ctx) string {
	n := 2 + c.Rng.Intn(2)
	var parts []string
	for i := 0; i < n; i++ {
		parts = append(parts, pick(c.Rng, researchAreas))
	}
	return strings.Join(parts, ", ")
}

// GenUniversity generates PhD-granting institutions.
func GenUniversity(c *Ctx) string { return pick(c.Rng, universities) }

// GenRank generates academic ranks.
func GenRank(c *Ctx) string { return pick(c.Rng, ranks) }

// GenOfficeRoom generates faculty office designators.
func GenOfficeRoom(c *Ctx) string {
	return fmt.Sprintf("CSE %d", 100+c.Rng.Intn(500))
}

// GenBio generates faculty biography text.
func GenBio(c *Ctx) string {
	return fmt.Sprintf("%s received the PhD from %s and works on %s.",
		GenPersonName(c), GenUniversity(c), GenResearch(c))
}

// GenLotSize generates lot sizes in acres.
func GenLotSize(c *Ctx) string {
	return fmt.Sprintf("%.2f acres", 0.05+c.Rng.Float64()*2)
}

// GenGarage generates garage descriptions.
func GenGarage(c *Ctx) string {
	return pick(c.Rng, []string{"1 car", "2 car", "3 car", "carport", "none"})
}

// GenSchoolDistrict generates school-district names.
func GenSchoolDistrict(c *Ctx) string {
	return pick(c.Rng, cities) + " School District"
}

// GenHOA generates homeowner-association dues.
func GenHOA(c *Ctx) string { return fmt.Sprintf("$%d/mo", 50+10*c.Rng.Intn(40)) }

// GenTax generates annual property taxes.
func GenTax(c *Ctx) string { return fmt.Sprintf("$%d", 1000+c.Rng.Intn(9000)) }

// GenDate generates listing dates.
func GenDate(c *Ctx) string {
	return fmt.Sprintf("%02d/%02d/%d", 1+c.Rng.Intn(12), 1+c.Rng.Intn(28), 1998+c.Rng.Intn(3))
}
