package datagen

// Domains returns the four evaluation domains of Table 3 in paper
// order.
func Domains() []*Domain {
	return []*Domain{
		RealEstateI(),
		TimeSchedule(),
		FacultyListings(),
		RealEstateII(),
	}
}

// ByName returns the domain with the given Table-3 name, or nil.
func ByName(name string) *Domain {
	for _, d := range Domains() {
		if d.Name == name {
			return d
		}
	}
	return nil
}
