package datagen

import (
	"context"
	"math"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/learn"
)

// TestTable3MediatedShapes checks the mediated-schema columns of
// Table 3 for every domain.
func TestTable3MediatedShapes(t *testing.T) {
	want := map[string]struct{ tags, nonLeaf, depth int }{
		"Real Estate I":    {20, 4, 3},
		"Time Schedule":    {23, 6, 4},
		"Faculty Listings": {14, 4, 3},
		"Real Estate II":   {66, 13, 4},
	}
	for _, d := range Domains() {
		w, ok := want[d.Name]
		if !ok {
			t.Fatalf("unexpected domain %q", d.Name)
		}
		s := d.MediatedSchema()
		if got := s.NumTags(); got != w.tags {
			t.Errorf("%s: mediated tags = %d, want %d", d.Name, got, w.tags)
		}
		if got := len(s.NonLeafTags()); got != w.nonLeaf {
			t.Errorf("%s: non-leaf tags = %d, want %d", d.Name, got, w.nonLeaf)
		}
		if got := s.Depth(); got != w.depth {
			t.Errorf("%s: depth = %d, want %d", d.Name, got, w.depth)
		}
	}
}

// TestTable3SourceShapes checks the source columns of Table 3: tag
// counts, listings, matchable percentage.
func TestTable3SourceShapes(t *testing.T) {
	want := map[string]struct {
		tagsLo, tagsHi int
		listLo, listHi int
		matchableLo    float64
	}{
		"Real Estate I":    {16, 24, 502, 3002, 80},
		"Time Schedule":    {14, 24, 704, 3925, 93},
		"Faculty Listings": {10, 15, 32, 73, 100},
		"Real Estate II":   {30, 55, 502, 3002, 100},
	}
	for _, d := range Domains() {
		w := want[d.Name]
		sources := d.Sources()
		if len(sources) != NumSources {
			t.Fatalf("%s: %d sources, want %d", d.Name, len(sources), NumSources)
		}
		for _, s := range sources {
			n := s.Schema.NumTags()
			if n < w.tagsLo || n > w.tagsHi {
				t.Errorf("%s/%s: %d tags, want in [%d, %d]", d.Name, s.Name, n, w.tagsLo, w.tagsHi)
			}
			if s.NominalListings < w.listLo || s.NominalListings > w.listHi {
				t.Errorf("%s/%s: nominal listings %d outside [%d, %d]",
					d.Name, s.Name, s.NominalListings, w.listLo, w.listHi)
			}
			if p := s.MatchablePercent(); p < w.matchableLo || p > 100 {
				t.Errorf("%s/%s: matchable %.1f%%, want >= %.0f%%", d.Name, s.Name, p, w.matchableLo)
			}
		}
	}
}

// TestSourcesDeterministic: synthesizing twice gives identical schemas
// and data.
func TestSourcesDeterministic(t *testing.T) {
	a := RealEstateI().Sources()
	b := RealEstateI().Sources()
	for i := range a {
		if a[i].Schema.String() != b[i].Schema.String() {
			t.Errorf("source %d schema not deterministic", i)
		}
		la := a[i].Generate(3, 7).Listings
		lb := b[i].Generate(3, 7).Listings
		for j := range la {
			if la[j].String() != lb[j].String() {
				t.Errorf("source %d listing %d not deterministic", i, j)
			}
		}
	}
}

// TestListingsValidate: every generated listing conforms to its source
// DTD.
func TestListingsValidate(t *testing.T) {
	for _, d := range Domains() {
		for _, spec := range d.Sources() {
			src := spec.Generate(25, 3)
			for i, l := range src.Listings {
				if err := spec.Schema.Validate(l); err != nil {
					t.Errorf("%s listing %d invalid: %v", spec.Name, i, err)
					break
				}
			}
		}
	}
}

// TestTrueMappingSatisfiesHardConstraints: the ground-truth mapping of
// every source must violate no hard domain constraint — otherwise the
// constraint handler would be steered away from the right answer.
func TestTrueMappingSatisfiesHardConstraints(t *testing.T) {
	for _, d := range Domains() {
		cs := d.Constraints()
		for _, spec := range d.Sources() {
			src := spec.Generate(40, 5)
			cols, err := core.CollectColumns(context.Background(), nil, src, 0)
			if err != nil {
				t.Fatal(err)
			}
			csrc := core.BuildConstraintSource(src, cols, 0)
			m := constraint.Assignment{}
			for _, tag := range src.Schema.Tags() {
				m[tag] = src.LabelOf(tag)
			}
			cost := constraint.Cost(cs, csrc, m, true)
			if math.IsInf(cost, 1) {
				vs := constraint.Explain(cs, csrc, m)
				t.Errorf("%s: true mapping violates hard constraints: %v", spec.Name, vs)
			}
		}
	}
}

// TestMappingLabelsAreValid: every ground-truth label is a mediated tag
// or OTHER.
func TestMappingLabelsAreValid(t *testing.T) {
	for _, d := range Domains() {
		valid := make(map[string]bool)
		for _, l := range d.Labels() {
			valid[l] = true
		}
		for _, spec := range d.Sources() {
			for tag, label := range spec.Mapping {
				if !valid[label] {
					t.Errorf("%s: tag %q mapped to unknown label %q", spec.Name, tag, label)
				}
			}
			// Every schema tag has a mapping entry or defaults to OTHER.
			for _, tag := range spec.Schema.Tags() {
				if _, ok := spec.Mapping[tag]; !ok {
					t.Errorf("%s: tag %q missing from mapping", spec.Name, tag)
				}
			}
		}
	}
}

// TestNoDuplicateLabelsWithinSource: a source maps at most one tag to
// each non-OTHER label (the 1-1 restriction).
func TestNoDuplicateLabelsWithinSource(t *testing.T) {
	for _, d := range Domains() {
		for _, spec := range d.Sources() {
			seen := make(map[string]string)
			for tag, label := range spec.Mapping {
				if label == learn.Other {
					continue
				}
				if prev, dup := seen[label]; dup {
					t.Errorf("%s: label %s mapped from both %q and %q",
						spec.Name, label, prev, tag)
				}
				seen[label] = tag
			}
		}
	}
}

// TestSourceNameVariety: across the five sources of a domain, at least
// some concepts get different tag names (the cross-source variation the
// learners must generalize over).
func TestSourceNameVariety(t *testing.T) {
	d := RealEstateI()
	sources := d.Sources()
	priceNames := make(map[string]bool)
	for _, s := range sources {
		for tag, label := range s.Mapping {
			if label == "PRICE" {
				priceNames[tag] = true
			}
		}
	}
	if len(priceNames) < 3 {
		t.Errorf("PRICE tag names across sources = %v, want variety", priceNames)
	}
}

// TestKeyColumnUnique: the MLS-ID column really is a key.
func TestKeyColumnUnique(t *testing.T) {
	spec := RealEstateI().Sources()[0]
	src := spec.Generate(50, 1)
	var idTag string
	for tag, label := range spec.Mapping {
		if label == "MLS-ID" {
			idTag = tag
		}
	}
	if idTag == "" {
		t.Fatal("no MLS-ID tag in source 0")
	}
	seen := make(map[string]bool)
	for _, l := range src.Listings {
		for _, n := range l.FindAll(idTag) {
			if seen[n.Text] {
				t.Fatalf("duplicate MLS id %q", n.Text)
			}
			seen[n.Text] = true
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("Real Estate I") == nil {
		t.Error("ByName failed for Real Estate I")
	}
	if ByName("nope") != nil {
		t.Error("ByName returned a domain for an unknown name")
	}
}

// TestGenerateDifferentSamples: different sample seeds give different
// data (the three experiment repetitions draw fresh samples).
func TestGenerateDifferentSamples(t *testing.T) {
	spec := RealEstateI().Sources()[1]
	a := spec.Generate(5, 1).Listings
	b := spec.Generate(5, 2).Listings
	same := true
	for i := range a {
		if a[i].String() != b[i].String() {
			same = false
		}
	}
	if same {
		t.Error("different sample seeds produced identical data")
	}
}
