package datagen

import "repro/internal/constraint"

// FacultyListings builds the Faculty Listings domain of Table 3:
// faculty profiles across CS departments. Mediated schema of 14 tags (4
// non-leaf, depth 3); five sources of only 32-73 listings with 13-14
// tags, 100% matchable. The small data volumes stress the learners'
// sample efficiency.
func FacultyListings() *Domain {
	root := &Concept{
		Label: "FACULTY",
		Names: []string{"faculty-member", "professor", "person", "faculty", "profile"},
		Children: []*Concept{
			{
				Label:   "NAME",
				Names:   []string{"name", "full-name", "person-name", "faculty-name", "who"},
				Flatten: 0.4,
				Children: []*Concept{
					{Label: "FIRST-NAME", Gen: GenFirstName,
						Names: []string{"first-name", "first", "fname", "given-name", "forename"}},
					{Label: "LAST-NAME", Gen: GenLastName,
						Names: []string{"last-name", "last", "lname", "surname", "family-name"}},
				},
			},
			{Label: "TITLE", Gen: GenRank,
				Names: []string{"title", "rank", "position", "appointment", "role"}},
			{
				Label:    "DEGREE-INFO",
				Names:    []string{"degree", "education", "phd-info", "doctorate", "background"},
				Flatten:  0.4,
				DropRate: 0.1,
				Children: []*Concept{
					{Label: "PHD-FROM", Gen: GenUniversity,
						Names: []string{"phd-from", "alma-mater", "phd-university", "degree-from", "school"}},
					{Label: "PHD-YEAR", Gen: GenYear, Optional: 0.2,
						Names: []string{"phd-year", "year", "graduated", "degree-year", "class-of"}},
				},
			},
			{
				Label:   "CONTACT",
				Names:   []string{"contact", "contact-info", "reach", "coordinates", "how-to-reach"},
				Flatten: 0.4,
				Children: []*Concept{
					{Label: "EMAIL", Gen: GenEmail,
						Names: []string{"email", "e-mail", "mail", "email-address", "electronic-mail"}},
					{Label: "OFFICE", Gen: GenOfficeRoom,
						Names: []string{"office", "room", "office-location", "office-room", "located-at"}},
					{Label: "FACULTY-PHONE", Gen: GenPhone, Optional: 0.2,
						Names: []string{"phone", "telephone", "office-phone", "extension", "tel"}},
				},
			},
			{Label: "RESEARCH-INTERESTS", Gen: GenResearch,
				Names: []string{"research", "interests", "research-areas", "works-on", "specialties"}},
			{Label: "HOMEPAGE", Gen: GenURL, Optional: 0.2,
				Names: []string{"homepage", "url", "web", "website", "home-page"}},
		},
	}

	return &Domain{
		Name:            "Faculty Listings",
		Root:            root,
		Extras:          nil, // 100% matchable
		ExtrasPerSource: [NumSources]int{},
		ListingsRange:   [2]int{32, 73},
		BoilerplateRate: 0.6,
		Constraints:     facultyConstraints,
		Synonyms: map[string][]string{
			"fname": {"first", "name"},
			"lname": {"last", "name"},
			"tel":   {"telephone", "phone"},
			"url":   {"homepage", "web"},
			"phd":   {"doctorate", "degree"},
		},
		Seed: 43,
	}
}

func facultyConstraints() []constraint.Constraint {
	labels := []string{
		"NAME", "FIRST-NAME", "LAST-NAME", "TITLE", "DEGREE-INFO",
		"PHD-FROM", "PHD-YEAR", "CONTACT", "EMAIL", "OFFICE",
		"FACULTY-PHONE", "RESEARCH-INTERESTS", "HOMEPAGE",
	}
	var cs []constraint.Constraint
	for _, l := range labels {
		cs = append(cs, constraint.AtMostOne(l))
	}
	cs = append(cs,
		constraint.NestedIn("NAME", "FIRST-NAME"),
		constraint.NestedIn("NAME", "LAST-NAME"),
		constraint.NestedIn("CONTACT", "EMAIL"),
		constraint.NestedIn("DEGREE-INFO", "PHD-FROM"),
		constraint.NotNestedIn("CONTACT", "RESEARCH-INTERESTS"),
		constraint.NotNestedIn("NAME", "EMAIL"),
		constraint.Contiguous("FIRST-NAME", "LAST-NAME"),
		constraint.Near("FIRST-NAME", "LAST-NAME", 0.5),
		constraint.Near("PHD-FROM", "PHD-YEAR", 0.5),
	)
	return cs
}
