package datagen

import "repro/internal/constraint"

// TimeSchedule builds the Time Schedule domain of Table 3: course
// offerings across universities. Mediated schema of 23 tags (6
// non-leaf, depth 4); five sources of 704-3925 listings with 15-19
// tags, 95-100% matchable.
func TimeSchedule() *Domain {
	root := &Concept{
		Label: "COURSE",
		Names: []string{"course", "offering", "class", "course-entry", "listing"},
		Children: []*Concept{
			// The §7 format-learner case: short alphanumeric codes.
			{Label: "COURSE-CODE", Gen: GenCourseCode,
				Names: []string{"course-code", "code", "course-no", "number", "course-id"}},
			{Label: "COURSE-TITLE", Gen: GenCourseTitle,
				Names: []string{"title", "course-title", "name", "course-name", "subject"}},
			// COURSE-CREDIT vs SECTION-CREDIT: the exclusivity example of
			// Table 1 — a source lists credits at one level, never both.
			{Label: "COURSE-CREDIT", Gen: GenCredits, DropRate: 0.4,
				Names: []string{"credits", "credit", "units", "credit-hours", "hrs"}},
			{Label: "DEPARTMENT", Gen: GenChoice(departments...),
				Names:    []string{"department", "dept", "division", "school", "program"},
				Optional: 0.1},
			{
				Label:   "SECTION",
				Names:   []string{"section", "sect", "session", "offering-section", "sec"},
				Flatten: 0.3,
				Children: []*Concept{
					{Label: "SECTION-ID", Gen: GenSection,
						Names: []string{"section-id", "sln", "sec-no", "section-code", "letter"}},
					{Label: "SECTION-CREDIT", Gen: GenCredits, SkipIfPresent: "COURSE-CREDIT",
						Names: []string{"sec-credits", "section-credit", "credit-per-section", "sec-units", "sec-hrs"}},
					{Label: "ENROLLMENT", Gen: GenEnrollment,
						Names:    []string{"enrollment", "enrolled", "class-size", "seats", "capacity"},
						Optional: 0.1},
					{
						Label:   "MEETING",
						Names:   []string{"meeting", "schedule", "when", "meets", "meeting-time"},
						Flatten: 0.4,
						Children: []*Concept{
							{Label: "DAYS", Gen: GenDays,
								Names: []string{"days", "meeting-days", "day", "on-days", "weekdays"}},
							// START-TIME and END-TIME share a generator:
							// only names and order separate them.
							{Label: "START-TIME", Gen: GenTime,
								Names: []string{"start-time", "start", "from", "begin", "time-start"}},
							{Label: "END-TIME", Gen: GenTime,
								Names: []string{"end-time", "end", "to", "until", "time-end"}},
						},
					},
					{
						Label:    "PLACE",
						Names:    []string{"place", "location", "where", "room-info", "venue"},
						Flatten:  0.4,
						DropRate: 0.1,
						Children: []*Concept{
							{Label: "BUILDING", Gen: GenChoice("MGH", "EE1", "SAV", "KNE", "GWN", "LOW", "SMI", "THO"),
								Names: []string{"building", "bldg", "hall", "building-code", "bld"}},
							{Label: "ROOM-NUM", Gen: GenSmallInt(100, 499),
								Names: []string{"room", "room-no", "room-number", "rm", "room-num"}},
						},
					},
					{
						Label:    "INSTRUCTOR",
						Names:    []string{"instructor", "teacher", "taught-by", "faculty", "prof"},
						Flatten:  0.3,
						DropRate: 0.1,
						Children: []*Concept{
							{Label: "INSTRUCTOR-NAME", Gen: GenPersonName,
								Names: []string{"instructor-name", "prof-name", "teacher-name", "lecturer", "staff-name"}},
							{Label: "INSTRUCTOR-EMAIL", Gen: GenEmail, Optional: 0.2,
								Names: []string{"email", "e-mail", "instructor-email", "mail", "contact-email"}},
						},
					},
				},
			},
			{
				Label:    "TEXTBOOK",
				Names:    []string{"textbook", "book", "text", "required-text", "materials"},
				Flatten:  0.3,
				DropRate: 0.3,
				Children: []*Concept{
					{Label: "BOOK-TITLE", Gen: GenCourseTitle,
						Names: []string{"book-title", "text-title", "title-of-book", "book-name", "text-name"}},
					{Label: "BOOK-AUTHOR", Gen: GenPersonName,
						Names: []string{"author", "book-author", "by", "written-by", "authors"}},
				},
			},
			{Label: "COURSE-DESCRIPTION", Gen: GenCourseDescription, Optional: 0.1,
				Names: []string{"description", "about", "overview", "course-desc", "summary"}},
		},
	}

	return &Domain{
		Name: "Time Schedule",
		Root: root,
		Extras: []ExtraTag{
			{Names: []string{"quarter", "term", "semester", "session-term", "period"},
				Gen: GenChoice("Autumn", "Winter", "Spring", "Summer")},
			{Names: []string{"fee", "course-fee", "lab-fee", "surcharge", "extra-fee"},
				Gen: GenTax},
		},
		// 95-100% matchable on 15-19 source tags: at most one extra.
		ExtrasPerSource: [NumSources]int{1, 0, 0, 1, 0},
		ListingsRange:   [2]int{704, 3925},
		BoilerplateRate: 0.5,
		Constraints:     timeScheduleConstraints,
		Synonyms: map[string][]string{
			"dept":   {"department"},
			"sec":    {"section"},
			"rm":     {"room"},
			"bldg":   {"building"},
			"hrs":    {"hours", "credits"},
			"prof":   {"professor", "instructor"},
			"sln":    {"section"},
			"prereq": {"prerequisite"},
		},
		Seed: 42,
	}
}

// GenCourseDescription generates course-catalog prose.
func GenCourseDescription(c *Ctx) string {
	return "Covers " + GenResearch(c) + ". " +
		pick(c.Rng, []string{
			"Weekly programming assignments.", "Midterm and final exam.",
			"Term project required.", "Intended for majors.",
			"No prior experience required.", "Laboratory included.",
		})
}

func timeScheduleConstraints() []constraint.Constraint {
	labels := []string{
		"COURSE-CODE", "COURSE-TITLE", "COURSE-CREDIT", "DEPARTMENT",
		"SECTION", "SECTION-ID", "SECTION-CREDIT", "ENROLLMENT",
		"MEETING", "DAYS", "START-TIME", "END-TIME", "PLACE", "BUILDING",
		"ROOM-NUM", "INSTRUCTOR", "INSTRUCTOR-NAME", "INSTRUCTOR-EMAIL",
		"TEXTBOOK", "BOOK-TITLE", "BOOK-AUTHOR", "COURSE-DESCRIPTION",
	}
	var cs []constraint.Constraint
	for _, l := range labels {
		cs = append(cs, constraint.AtMostOne(l))
	}
	cs = append(cs,
		// The Table-1 exclusivity example, verbatim.
		constraint.Exclusive("COURSE-CREDIT", "SECTION-CREDIT"),
		// Nesting.
		constraint.NestedIn("SECTION", "SECTION-ID"),
		constraint.NestedIn("MEETING", "DAYS"),
		constraint.NestedIn("INSTRUCTOR", "INSTRUCTOR-NAME"),
		constraint.NotNestedIn("INSTRUCTOR", "COURSE-CODE"),
		constraint.NotNestedIn("TEXTBOOK", "COURSE-CODE"),
		constraint.NotNestedIn("MEETING", "INSTRUCTOR-NAME"),
		// Contiguity: start and end time are adjacent siblings.
		constraint.Contiguous("START-TIME", "END-TIME"),
		// Soft preferences.
		constraint.Near("START-TIME", "END-TIME", 0.5),
		constraint.Near("BUILDING", "ROOM-NUM", 0.5),
		constraint.Near("COURSE-CODE", "COURSE-TITLE", 0.25),
	)
	return cs
}
