package datagen

import (
	"repro/internal/constraint"
	"repro/internal/learners/recognizer"
)

// RealEstateII builds the Real Estate II domain of Table 3: the same
// houses-for-sale service as Real Estate I but with a much larger
// mediated schema — 66 tags, 13 non-leaf, depth 4 — and sources of
// 33-48 tags (11-13 non-leaf), 100% matchable. The many structured
// groups sharing vocabulary (agent vs. office contact blocks, room
// dimension blocks) give the XML learner the most room of any domain,
// matching the paper's observation that its gains are largest here.
func RealEstateII() *Domain {
	root := &Concept{
		Label: "HOUSE",
		Names: []string{"house-listing", "listing", "property", "home-for-sale", "re-entry"},
		Children: []*Concept{
			{
				Label:   "LOCATION",
				Names:   []string{"location", "where", "situated", "loc-info", "place"},
				Flatten: 0.3,
				Children: []*Concept{
					{Label: "STREET-ADDRESS", Gen: GenStreetAddress,
						Names: []string{"street", "address", "street-address", "addr", "house-addr"}},
					{Label: "CITY", Gen: GenChoice(cities...),
						Names: []string{"city", "town", "municipality", "city-name", "locale"}},
					{Label: "STATE", Gen: GenChoice(states...),
						Names: []string{"state", "st", "province", "state-code", "us-state"}},
					{Label: "ZIP", Gen: GenZip,
						Names: []string{"zip", "zipcode", "postal-code", "zip-code", "postal"}},
					{Label: "COUNTY", Gen: GenCounty(recognizer.USCounties()), Optional: 0.1,
						Names: []string{"county", "county-name", "cnty", "region", "parish"}},
					{Label: "NEIGHBORHOOD", Gen: GenChoice(cities...), DropRate: 0.5,
						Names: []string{"neighborhood", "subdivision", "community", "development", "district"}},
				},
			},
			{
				Label:    "SCHOOL-INFO",
				Names:    []string{"schools", "school-info", "education", "school-data", "nearby-schools"},
				Flatten:  0.3,
				DropRate: 0.5,
				Children: []*Concept{
					{Label: "ELEMENTARY-SCHOOL", Gen: GenSchoolDistrict,
						Names: []string{"elementary", "elem-school", "primary-school", "elementary-school", "grade-school"}},
					{Label: "MIDDLE-SCHOOL", Gen: GenSchoolDistrict, Optional: 0.2, DropRate: 0.4,
						Names: []string{"middle", "middle-school", "junior-high", "intermediate-school", "jr-high"}},
					{Label: "HIGH-SCHOOL", Gen: GenSchoolDistrict, Optional: 0.2, DropRate: 0.3,
						Names: []string{"high", "high-school", "secondary-school", "hs", "senior-high"}},
					{Label: "SCHOOL-DISTRICT", Gen: GenSchoolDistrict, Optional: 0.2, DropRate: 0.3,
						Names: []string{"school-district", "district-name", "sd", "schools-district", "school-system"}},
				},
			},
			{
				Label:   "FINANCIAL",
				Names:   []string{"financial", "money", "pricing", "costs", "financial-info"},
				Flatten: 0.4,
				Children: []*Concept{
					{Label: "PRICE", Gen: GenPrice,
						Names: []string{"listed-price", "price", "asking-price", "cost", "list-price"}},
					{Label: "TAX", Gen: GenTax, Optional: 0.2, DropRate: 0.3,
						Names: []string{"taxes", "annual-tax", "property-tax", "tax", "yearly-taxes"}},
					{Label: "HOA-FEE", Gen: GenHOA, DropRate: 0.5, Optional: 0.3,
						Names: []string{"hoa", "hoa-dues", "association-fee", "monthly-dues", "hoa-fee"}},
					{Label: "DATE-LISTED", Gen: GenDate, Optional: 0.1, DropRate: 0.4,
						Names: []string{"date-listed", "on-market-since", "listed-on", "list-date", "since"}},
					{Label: "FINANCING", Gen: GenChoice("conventional", "FHA", "VA", "cash", "owner"), DropRate: 0.6,
						Names: []string{"financing", "terms", "loan-terms", "financing-options", "payment-terms"}},
				},
			},
			{
				Label:   "INTERIOR",
				Names:   []string{"interior", "inside", "interior-features", "indoors", "interior-info"},
				Flatten: 0.3,
				Children: []*Concept{
					{Label: "BEDS", Gen: GenSmallInt(1, 6),
						Names: []string{"num-bedrooms", "beds", "bedrooms", "br", "bed-count"}},
					{Label: "BATHS", Gen: GenHalfSteps(1, 4),
						Names: []string{"num-bathrooms", "baths", "bathrooms", "ba", "bath-count"}},
					{Label: "HALF-BATHS", Gen: GenSmallInt(0, 2), Optional: 0.3, DropRate: 0.5,
						Names: []string{"half-baths", "powder-rooms", "half-bathrooms", "guest-baths", "extra-baths"}},
					{Label: "SQFT", Gen: GenSqft,
						Names: []string{"square-feet", "sqft", "size", "living-area", "floor-space"}},
					{Label: "FLOORS", Gen: GenSmallInt(1, 3), Optional: 0.2, DropRate: 0.4,
						Names: []string{"stories", "floors", "levels", "num-floors", "storeys"}},
					{Label: "FIREPLACE", Gen: GenYesNo, Optional: 0.2, DropRate: 0.3,
						Names: []string{"fireplace", "has-fireplace", "fireplaces", "fp", "hearth"}},
					{Label: "BASEMENT", Gen: GenYesNo, Optional: 0.2, DropRate: 0.4,
						Names: []string{"basement", "has-basement", "cellar", "lower-level", "bsmt"}},
					{Label: "HEATING", Gen: GenChoice("gas", "electric", "oil", "heat pump", "radiant"), Optional: 0.2, DropRate: 0.3,
						Names: []string{"heating", "heat", "heating-type", "heat-source", "furnace"}},
					{Label: "COOLING", Gen: GenChoice("central", "none", "window units", "heat pump"), Optional: 0.2, DropRate: 0.4,
						Names: []string{"cooling", "air-conditioning", "ac", "cooling-type", "aircon"}},
					{Label: "FLOORING", Gen: GenChoice("hardwood", "carpet", "tile", "laminate", "vinyl"), Optional: 0.2, DropRate: 0.4,
						Names: []string{"flooring", "floors-type", "floor-covering", "floor-material", "surfaces"}},
				},
			},
			{
				Label:   "EXTERIOR",
				Names:   []string{"exterior", "outside", "exterior-features", "outdoors", "exterior-info"},
				Flatten: 0.3,
				Children: []*Concept{
					{Label: "LOT-SIZE", Gen: GenLotSize,
						Names: []string{"lot-size", "lot", "land", "acreage", "parcel-size"}},
					{Label: "GARAGE", Gen: GenGarage, Optional: 0.2, DropRate: 0.3,
						Names: []string{"garage", "parking", "garage-size", "car-spaces", "carport"}},
					{Label: "ROOF", Gen: GenChoice("composition", "tile", "metal", "shake", "flat"), Optional: 0.2, DropRate: 0.4,
						Names: []string{"roof", "roof-type", "roofing", "roof-material", "rooftype"}},
					{Label: "SIDING", Gen: GenChoice("wood", "brick", "vinyl", "stucco", "cement"), Optional: 0.2, DropRate: 0.5,
						Names: []string{"siding", "exterior-material", "cladding", "facade", "walls"}},
					{Label: "POOL", Gen: GenYesNo, Optional: 0.2, DropRate: 0.5,
						Names: []string{"pool", "has-pool", "swimming-pool", "pool-spa", "spa"}},
					{Label: "WATERFRONT", Gen: GenYesNo, Optional: 0.2, DropRate: 0.4,
						Names: []string{"waterfront", "water-front", "on-water", "waterfront-property", "water-access"}},
					{Label: "VIEW", Gen: GenChoice("mountain", "water", "city", "territorial", "none"), Optional: 0.2, DropRate: 0.3,
						Names: []string{"view", "view-type", "vista", "outlook", "scenery"}},
					{Label: "FENCE", Gen: GenYesNo, Optional: 0.3, DropRate: 0.6,
						Names: []string{"fence", "fenced", "fenced-yard", "fencing", "enclosure"}},
				},
			},
			{
				Label:   "LISTING-INFO",
				Names:   []string{"listing-info", "record", "meta", "listing-details", "entry-info"},
				Flatten: 0.4,
				Children: []*Concept{
					{Label: "MLS-ID", Gen: GenMLS,
						Names: []string{"mls", "listing-id", "mls-number", "id", "ref-no"}},
					{Label: "YEAR-BUILT", Gen: GenYear,
						Names: []string{"year-built", "built", "yr", "construction-year", "year"}},
					{Label: "HOUSE-STYLE", Gen: GenHouseStyle,
						Names: []string{"style", "house-style", "type", "home-type", "category"}},
					{Label: "STATUS", Gen: GenChoice("active", "pending", "contingent", "new", "reduced"), Optional: 0.1, DropRate: 0.3,
						Names: []string{"status", "listing-status", "state-of-listing", "availability", "market-status"}},
					{Label: "DESCRIPTION", Gen: GenDescription,
						Names: []string{"comments", "extra-info", "remarks", "notes", "detailed-desc"}},
				},
			},
			{
				Label: "CONTACT-INFO",
				Names: []string{"contact", "contacts", "contact-information", "who-to-call", "inquiries"},
				Children: []*Concept{
					{
						Label:   "AGENT-INFO",
						Names:   []string{"agent", "realtor", "listed-by", "agent-details", "salesperson"},
						Flatten: 0.2,
						Children: []*Concept{
							{Label: "AGENT-NAME", Gen: GenPersonName,
								Names: []string{"name", "agent-name", "contact-name", "realtor-name", "rep"}},
							{Label: "AGENT-PHONE", Gen: GenPhone,
								Names: []string{"phone", "contact-phone", "agent-phone", "work-phone", "tel"}},
							{Label: "AGENT-EMAIL", Gen: GenEmail, Optional: 0.2, DropRate: 0.4,
								Names: []string{"email", "agent-email", "e-mail", "mail", "contact-email"}},
						},
					},
					{
						Label:    "OFFICE-INFO",
						Names:    []string{"office", "broker", "firm-info", "brokerage", "company"},
						Flatten:  0.2,
						DropRate: 0.2,
						Children: []*Concept{
							{Label: "OFFICE-NAME", Gen: GenFirm,
								Names: []string{"firm", "office-name", "broker-name", "company-name", "agency"}},
							{Label: "OFFICE-PHONE", Gen: GenPhone,
								Names: []string{"office-phone", "main-phone", "broker-phone", "office-tel", "firm-phone"}},
							{Label: "OFFICE-ADDRESS", Gen: GenStreetAddress, Optional: 0.2, DropRate: 0.4,
								Names: []string{"office-address", "office-addr", "branch-address", "office-street", "located"}},
						},
					},
				},
			},
			{
				Label:    "OPEN-HOUSE",
				Names:    []string{"open-house", "showing", "open-house-info", "viewing", "open"},
				Flatten:  0.3,
				DropRate: 0.5,
				Children: []*Concept{
					{Label: "OPEN-DATE", Gen: GenDate,
						Names: []string{"open-date", "show-date", "date", "when", "oh-date"}},
					{Label: "OPEN-TIME", Gen: GenTime,
						Names: []string{"open-time", "show-time", "time", "hours", "oh-time"}},
				},
			},
			{
				Label:    "UTILITIES",
				Names:    []string{"utilities", "services", "utility-info", "hookups", "connections"},
				Flatten:  0.3,
				DropRate: 0.6,
				Children: []*Concept{
					{Label: "WATER", Gen: GenChoice("public", "well", "community", "shared well"),
						Names: []string{"water", "water-source", "water-supply", "water-service", "water-type"}},
					{Label: "SEWER", Gen: GenChoice("public", "septic", "community"),
						Names: []string{"sewer", "sewage", "septic-sewer", "waste", "sewer-type"}},
					{Label: "ELECTRIC", Gen: GenChoice("PSE", "Seattle City Light", "PGE", "co-op"), Optional: 0.3,
						Names: []string{"electric", "power", "electricity", "electric-utility", "power-company"}},
				},
			},
			{
				Label:    "ROOMS",
				Names:    []string{"rooms", "room-info", "room-dimensions", "room-sizes", "layout"},
				Flatten:  0.3,
				DropRate: 0.5,
				Children: []*Concept{
					{Label: "LIVING-ROOM", Gen: GenRoomDim,
						Names: []string{"living-room", "living", "lr", "livingroom", "family-room"}},
					{Label: "DINING-ROOM", Gen: GenRoomDim, Optional: 0.2, DropRate: 0.3,
						Names: []string{"dining-room", "dining", "dr", "diningroom", "eating-area"}},
					{Label: "KITCHEN", Gen: GenRoomDim,
						Names: []string{"kitchen", "kitchen-size", "kit", "kitchen-dim", "cook-area"}},
					{Label: "MASTER-BEDROOM", Gen: GenRoomDim, Optional: 0.2, DropRate: 0.3,
						Names: []string{"master-bedroom", "master", "mbr", "main-bedroom", "primary-bedroom"}},
				},
			},
		},
	}

	return &Domain{
		Name:            "Real Estate II",
		Root:            root,
		Extras:          nil, // 100% matchable per Table 3
		ExtrasPerSource: [NumSources]int{},
		ListingsRange:   [2]int{502, 3002},
		BoilerplateRate: 0.45,
		Constraints:     realEstateIIConstraints,
		Synonyms: map[string][]string{
			"addr": {"address"}, "loc": {"location"}, "tel": {"telephone", "phone"},
			"desc": {"description"}, "br": {"bedrooms"}, "ba": {"bathrooms"},
			"yr": {"year"}, "cnty": {"county"}, "sqft": {"square", "feet"},
			"firm": {"office", "company"}, "hs": {"high", "school"},
			"sd": {"school", "district"}, "ac": {"air", "conditioning"},
			"lr": {"living", "room"}, "dr": {"dining", "room"},
			"mbr": {"master", "bedroom"}, "fp": {"fireplace"},
			"hoa": {"association"}, "st": {"state"},
		},
		Seed: 44,
	}
}

// GenRoomDim generates room dimensions like "12x14".
func GenRoomDim(c *Ctx) string {
	a, b := 8+c.Rng.Intn(14), 8+c.Rng.Intn(14)
	if c.Style%2 == 0 {
		return itoa(a) + "x" + itoa(b)
	}
	return itoa(a) + " x " + itoa(b)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

func realEstateIIConstraints() []constraint.Constraint {
	labels := []string{
		"LOCATION", "STREET-ADDRESS", "CITY", "STATE", "ZIP", "COUNTY",
		"NEIGHBORHOOD", "SCHOOL-INFO", "ELEMENTARY-SCHOOL", "MIDDLE-SCHOOL",
		"HIGH-SCHOOL", "SCHOOL-DISTRICT", "FINANCIAL", "PRICE", "TAX",
		"HOA-FEE", "DATE-LISTED", "FINANCING", "INTERIOR", "BEDS", "BATHS",
		"HALF-BATHS", "SQFT", "FLOORS", "FIREPLACE", "BASEMENT", "HEATING",
		"COOLING", "FLOORING", "EXTERIOR", "LOT-SIZE", "GARAGE", "ROOF",
		"SIDING", "POOL", "WATERFRONT", "VIEW", "FENCE", "LISTING-INFO",
		"MLS-ID", "YEAR-BUILT", "HOUSE-STYLE", "STATUS", "DESCRIPTION",
		"CONTACT-INFO", "AGENT-INFO", "AGENT-NAME", "AGENT-PHONE",
		"AGENT-EMAIL", "OFFICE-INFO", "OFFICE-NAME", "OFFICE-PHONE",
		"OFFICE-ADDRESS", "OPEN-HOUSE", "OPEN-DATE", "OPEN-TIME",
		"UTILITIES", "WATER", "SEWER", "ELECTRIC", "ROOMS", "LIVING-ROOM",
		"DINING-ROOM", "KITCHEN", "MASTER-BEDROOM",
	}
	var cs []constraint.Constraint
	for _, l := range labels {
		cs = append(cs, constraint.AtMostOne(l))
	}
	cs = append(cs,
		constraint.Key("MLS-ID"),
		constraint.NestedIn("AGENT-INFO", "AGENT-NAME"),
		constraint.NestedIn("AGENT-INFO", "AGENT-PHONE"),
		constraint.NestedIn("OFFICE-INFO", "OFFICE-NAME"),
		constraint.NestedIn("OFFICE-INFO", "OFFICE-PHONE"),
		constraint.NestedIn("CONTACT-INFO", "AGENT-INFO"),
		constraint.NestedIn("CONTACT-INFO", "OFFICE-INFO"),
		constraint.NotNestedIn("AGENT-INFO", "PRICE"),
		constraint.NotNestedIn("CONTACT-INFO", "DESCRIPTION"),
		constraint.NotNestedIn("UTILITIES", "PRICE"),
		constraint.NotNestedIn("ROOMS", "AGENT-NAME"),
		constraint.Contiguous("BEDS", "BATHS"),
		constraint.Contiguous("OPEN-DATE", "OPEN-TIME"),
		constraint.Near("AGENT-NAME", "AGENT-PHONE", 0.5),
		constraint.Near("OFFICE-NAME", "OFFICE-PHONE", 0.5),
		constraint.Near("CITY", "STATE", 0.5),
		constraint.Near("BEDS", "BATHS", 0.25),
	)
	return cs
}
