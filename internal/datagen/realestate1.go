package datagen

import (
	"repro/internal/constraint"
	"repro/internal/learners/recognizer"
)

// RealEstateI builds the Real Estate I domain of Table 3: a mediated
// schema of 20 tags (4 non-leaf, depth 3) over house-for-sale listings,
// five sources of 502-3002 listings with 19-21 tags each, 84-100%
// matchable.
func RealEstateI() *Domain {
	root := &Concept{
		Label: "HOUSE",
		Names: []string{"house-listing", "listing", "home", "house", "property"},
		Children: []*Concept{
			{
				Label:   "LOCATION",
				Names:   []string{"geo", "where", "place-details", "loc", "position"},
				Flatten: 0.4,
				Children: []*Concept{
					// Descriptive pool: name matcher does well here.
					{Label: "ADDRESS", Gen: GenCityState,
						Names: []string{"location", "house-addr", "area", "address", "city-state"}},
					// The county recognizer's target.
					{Label: "COUNTY", Gen: GenCounty(recognizer.USCounties()),
						Names:    []string{"county", "county-name", "cnty", "region", "district"},
						Optional: 0.2, DropRate: 0.2},
					{Label: "ZIP", Gen: GenZip,
						Names: []string{"zip", "zipcode", "postal-code", "zip-code", "postal"}},
				},
			},
			// Strong shared-token name pool.
			{Label: "PRICE", Gen: GenPrice,
				Names: []string{"listed-price", "price", "asking-price", "cost", "list-price"}},
			// Numeric twins: content learners confuse BEDS and BATHS; the
			// contiguity and frequency constraints and names resolve them.
			{Label: "BEDS", Gen: GenSmallInt(1, 6),
				Names: []string{"num-bedrooms", "beds", "bedrooms", "br", "bed-count"}},
			{Label: "BATHS", Gen: GenHalfSteps(1, 4),
				Names: []string{"num-bathrooms", "baths", "bathrooms", "ba", "bath-count"}},
			{Label: "SQFT", Gen: GenSqft,
				Names: []string{"square-feet", "sqft", "size", "living-area", "floor-space"}},
			// Vacuous/disjoint names: only content identifies these.
			{Label: "DESCRIPTION", Gen: GenDescription,
				Names: []string{"comments", "extra-info", "remarks", "notes", "detailed-desc"}},
			// Unique per listing: the Key(MLS-ID) column constraint bites.
			{Label: "MLS-ID", Gen: GenMLS,
				Names: []string{"mls", "listing-id", "mls-number", "id", "ref-no"}},
			{Label: "YEAR-BUILT", Gen: GenYear,
				Names:    []string{"year-built", "built", "yr", "construction-year", "year"},
				Optional: 0.1},
			{Label: "HOUSE-STYLE", Gen: GenHouseStyle,
				Names:    []string{"style", "house-style", "type", "home-type", "category"},
				Optional: 0.1},
			{Label: "LOT-SIZE", Gen: GenLotSize,
				Names:    []string{"lot-size", "lot", "land", "acreage", "parcel-size"},
				Optional: 0.2, DropRate: 0.2},
			{
				Label:   "AGENT-INFO",
				Names:   []string{"contact", "agent", "contact-info", "listed-by", "realtor"},
				Flatten: 0.3,
				Children: []*Concept{
					{Label: "AGENT-NAME", Gen: GenPersonName,
						Names: []string{"name", "agent-name", "contact-name", "person", "rep-name"}},
					// Same generator as OFFICE-PHONE: structure and
					// proximity must disambiguate.
					{Label: "AGENT-PHONE", Gen: GenPhone,
						Names: []string{"phone", "contact-phone", "agent-phone", "work-phone", "tel"}},
				},
			},
			{
				Label:    "OFFICE-INFO",
				Names:    []string{"office", "broker", "firm-info", "brokerage", "company"},
				Flatten:  0.3,
				DropRate: 0.2,
				Children: []*Concept{
					{Label: "OFFICE-NAME", Gen: GenFirm,
						Names: []string{"firm", "office-name", "broker-name", "company-name", "agency"}},
					{Label: "OFFICE-PHONE", Gen: GenPhone,
						Names: []string{"office-phone", "main-phone", "broker-phone", "office-tel", "firm-phone"}},
				},
			},
		},
	}

	return &Domain{
		Name: "Real Estate I",
		Root: root,
		Extras: []ExtraTag{
			{Names: []string{"ad-id", "posting-id", "entry", "record-no", "seq"},
				Gen: GenSmallInt(1, 99999)},
			{Names: []string{"date-posted", "posted", "updated", "as-of", "refresh-date"},
				Gen: GenDate},
			{Names: []string{"photo-count", "images", "pics", "num-photos", "media"},
				Gen: GenSmallInt(0, 30)},
			{Names: []string{"virtual-tour", "tour-link", "video", "walkthrough", "tour"},
				Gen: GenURL},
		},
		// 84-100% matchable: up to 3 unmatchable extras on ~19 tags.
		ExtrasPerSource: [NumSources]int{3, 0, 2, 1, 0},
		ListingsRange:   [2]int{502, 3002},
		BoilerplateRate: 0.5,
		Constraints:     realEstateIConstraints,
		Synonyms: map[string][]string{
			"addr":  {"address"},
			"loc":   {"location"},
			"tel":   {"telephone", "phone"},
			"desc":  {"description"},
			"br":    {"bedrooms"},
			"ba":    {"bathrooms"},
			"yr":    {"year"},
			"cnty":  {"county"},
			"sqft":  {"square", "feet"},
			"firm":  {"office", "company"},
			"phone": {"telephone"},
		},
		Seed: 41,
	}
}

func realEstateIConstraints() []constraint.Constraint {
	labels := []string{
		"LOCATION", "ADDRESS", "COUNTY", "ZIP", "PRICE", "BEDS", "BATHS",
		"SQFT", "DESCRIPTION", "MLS-ID", "YEAR-BUILT", "HOUSE-STYLE",
		"LOT-SIZE", "AGENT-INFO", "AGENT-NAME", "AGENT-PHONE",
		"OFFICE-INFO", "OFFICE-NAME", "OFFICE-PHONE",
	}
	var cs []constraint.Constraint
	// Frequency: every mediated concept occurs at most once per source.
	for _, l := range labels {
		cs = append(cs, constraint.AtMostOne(l))
	}
	cs = append(cs,
		// Column constraints.
		constraint.Key("MLS-ID"),
		// Nesting.
		constraint.NestedIn("AGENT-INFO", "AGENT-NAME"),
		constraint.NestedIn("AGENT-INFO", "AGENT-PHONE"),
		constraint.NestedIn("OFFICE-INFO", "OFFICE-NAME"),
		constraint.NestedIn("OFFICE-INFO", "OFFICE-PHONE"),
		constraint.NotNestedIn("AGENT-INFO", "PRICE"),
		constraint.NotNestedIn("AGENT-INFO", "DESCRIPTION"),
		constraint.NotNestedIn("OFFICE-INFO", "PRICE"),
		constraint.NestedIn("LOCATION", "ZIP"),
		// Contiguity: beds and baths are adjacent siblings everywhere.
		constraint.Contiguous("BEDS", "BATHS"),
		// Soft proximity preferences.
		constraint.Near("AGENT-NAME", "AGENT-PHONE", 0.5),
		constraint.Near("OFFICE-NAME", "OFFICE-PHONE", 0.5),
	)
	return cs
}
