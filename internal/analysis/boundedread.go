package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BoundedRead gates the decode-path over-allocation class: a length or
// count read from the wire (any call to the repo's lowercase
// uvarint/varint reader vocabulary) must pass through a relational
// bounds check before it reaches an allocation sink — a make size
// argument, an io.ReadFull argument, or a parameter of a function that
// itself forwards the value to such a sink unchecked. A corrupt or
// adversarial artifact controls these values completely, so an
// unchecked one is an attacker-sized allocation; the fuzz target found
// this class dynamically, this analyzer makes it a compile-time error.
//
// The analyzer is a client of the shared value-flow substrate
// (flow.go): wire reads are sources, relational comparisons (<, >,
// <=, >=) mentioning a variable are sanitizers, and make/io.ReadFull
// arguments are sinks, with the substrate's param→sink fixpoint
// turning a parameter that reaches a sink unchecked into a sink at
// every call site. Intentional unchecked reads (e.g. a trusted
// in-memory buffer) suppress with //lint:ignore boundedread.
var BoundedRead = &Analyzer{
	Name: "boundedread",
	Doc:  "wire-read lengths must be bounds-checked before reaching make or io.ReadFull",
	Run:  runBoundedRead,
}

// boundedReadSpec configures the shared flow engine for the wire-length
// class. Result summaries stay off: a helper's return value is a fresh
// allocation, not the length itself, so the blanket expression walk is
// the faithful model here.
var boundedReadSpec = &TaintSpec{
	Key:         "boundedread",
	SourceName:  "wire read",
	IsSource:    isWireLenRead,
	Sinks:       boundedReadSinks,
	Sanitizes:   relationalCheckClears,
	ForwardDesc: "make/io.ReadFull",
}

func runBoundedRead(pass *Pass) {
	for _, f := range TaintFlow(pass.Prog, boundedReadSpec)[pass.Pkg] {
		if !f.Origins[SourceOrigin] {
			continue
		}
		pass.Reportf(f.Pos, "%s", brMessage(f.Names, f.Desc, f.Callee))
	}
}

func brMessage(names []string, sinkDesc string, callee *types.Func) string {
	what := "wire-read length"
	if len(names) > 0 {
		what = "wire-read length " + strings.Join(names, ", ")
	}
	if callee != nil {
		return what + " is passed to " + funcDisplayName(callee) +
			", which forwards it to " + sinkDesc + " without a bounds check; a corrupt artifact controls this value"
	}
	return what + " reaches " + sinkDesc +
		" without a bounds check; a corrupt artifact controls this value"
}

// boundedReadSinks declares the allocation sinks: make size/cap
// arguments and any io.ReadFull argument.
func boundedReadSinks(info *types.Info, call *ast.CallExpr) []TaintSink {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
			var sinks []TaintSink
			for _, arg := range call.Args[1:] {
				sinks = append(sinks, TaintSink{Arg: arg, Desc: "make"})
			}
			return sinks
		}
	}
	callee := CalleeOf(info, call)
	if callee == nil {
		return nil
	}
	if callee.Name() == "ReadFull" && callee.Pkg() != nil && callee.Pkg().Path() == "io" {
		var sinks []TaintSink
		for _, arg := range call.Args {
			sinks = append(sinks, TaintSink{Arg: arg, Desc: "io.ReadFull"})
		}
		return sinks
	}
	return nil
}

// relationalCheckClears treats a relational comparison as a sanitizer
// for every variable it mentions: the code demonstrably compared the
// value against something before using it.
func relationalCheckClears(info *types.Info, n ast.Node) []*types.Var {
	be, ok := n.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	switch be.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return nil
	}
	var vars []*types.Var
	ast.Inspect(be, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				vars = append(vars, v)
			}
		}
		return true
	})
	return vars
}

// isWireLenRead reports whether the call reads a length/count from
// the wire: a call whose bare function or method name is uvarint or
// varint. The lowercase spelling is deliberate — it matches the
// repo's internal reader vocabulary while excluding the stdlib's
// binary.Uvarint, whose callers hold whole buffers already.
func isWireLenRead(info *types.Info, call *ast.CallExpr) bool {
	fn := CalleeOf(info, call)
	if fn == nil {
		return false
	}
	return fn.Name() == "uvarint" || fn.Name() == "varint"
}
