package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// BoundedRead gates the decode-path over-allocation class: a length or
// count read from the wire (any call to the repo's lowercase
// uvarint/varint reader vocabulary) must pass through a relational
// bounds check before it reaches an allocation sink — a make size
// argument, an io.ReadFull argument, or a parameter of a function that
// itself forwards the value to such a sink unchecked. A corrupt or
// adversarial artifact controls these values completely, so an
// unchecked one is an attacker-sized allocation; the fuzz target found
// this class dynamically, this analyzer makes it a compile-time error.
//
// Taint tracking is flow-insensitive per variable but ordered by
// source position: an assignment from a wire read taints the target,
// a relational comparison (<, >, <=, >=) mentioning the variable
// clears it, and a sink use while still tainted reports. The
// interprocedural half is a fixpoint over "sink parameters": a
// parameter that reaches a sink unchecked inside its function turns
// every call site passing a tainted value at that position into a
// sink itself. Intentional unchecked reads (e.g. a trusted in-memory
// buffer) suppress with //lint:ignore boundedread.
var BoundedRead = &Analyzer{
	Name: "boundedread",
	Doc:  "wire-read lengths must be bounds-checked before reaching make or io.ReadFull",
	Run:  runBoundedRead,
}

func runBoundedRead(pass *Pass) {
	for _, diag := range boundedReadDiags(pass.Prog)[pass.Pkg] {
		pass.Reportf(diag.pos, "%s", diag.msg)
	}
}

type brDiag struct {
	pos token.Pos
	msg string
}

// boundedReadDiags runs the whole-program taint analysis once: a
// fixpoint pass growing the sink-parameter sets, then a reporting
// pass over every function with the stable sets.
func boundedReadDiags(prog *Program) map[*types.Package][]brDiag {
	return prog.Cache("boundedread.diags", func() any {
		sinkParams := make(map[*types.Func]map[int]bool)
		for changed := true; changed; {
			changed = false
			for _, d := range prog.Decls() {
				for i := range brSimulate(d, sinkParams, nil) {
					if sinkParams[d.Fn] == nil {
						sinkParams[d.Fn] = make(map[int]bool)
					}
					if !sinkParams[d.Fn][i] {
						sinkParams[d.Fn][i] = true
						changed = true
					}
				}
			}
		}
		diags := make(map[*types.Package][]brDiag)
		for _, d := range prog.Decls() {
			pkg := d.Pkg.Pkg
			brSimulate(d, sinkParams, func(pos token.Pos, msg string) {
				diags[pkg] = append(diags[pkg], brDiag{pos, msg})
			})
		}
		return diags
	}).(map[*types.Package][]brDiag)
}

// brEvent is one position-ordered step of the per-function
// simulation.
type brEvent struct {
	pos token.Pos

	// assign: lhs receives the taint of rhs (clearing it when rhs is
	// clean).
	lhs *types.Var
	rhs ast.Expr

	// check: a relational comparison mentioning these vars clears
	// their taint.
	checked []*types.Var

	// sink: arg flows into sinkDesc; sinkCallee is set when the sink
	// is a call forwarding into another function's sink parameter.
	arg        ast.Expr
	sinkDesc   string
	sinkCallee *types.Func
}

// wireOrigin is the taint origin meaning "read from the wire here, in
// this function"; non-negative origins mean "came in as parameter i".
const wireOrigin = -1

// brSimulate replays a function body in source order against the
// current sink-parameter sets. Wire reads taint with wireOrigin;
// parameters are pre-tainted with their own index. A sink reached by
// wireOrigin taint reports through report (when non-nil); a sink
// reached by parameter taint marks that parameter in the returned
// set, to be folded into the caller-side fixpoint.
func brSimulate(d *FuncDecl, sinkParams map[*types.Func]map[int]bool, report func(token.Pos, string)) map[int]bool {
	info := d.Pkg.Info
	events := brCollect(d, sinkParams)

	taint := make(map[*types.Var]map[int]bool)
	sig := d.Fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		taint[sig.Params().At(i)] = map[int]bool{i: true}
	}

	// originsOf evaluates an expression's taint: the union of the
	// origins of every tainted variable it mentions, plus wireOrigin
	// when it contains a wire read directly.
	originsOf := func(e ast.Expr) (map[int]bool, []string) {
		origins := make(map[int]bool)
		var names []string
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if v, ok := info.Uses[n].(*types.Var); ok {
					if os := taint[v]; len(os) > 0 {
						for o := range os {
							origins[o] = true
						}
						names = append(names, v.Name())
					}
				}
			case *ast.CallExpr:
				if isWireLenRead(info, n) {
					origins[wireOrigin] = true
					names = append(names, "wire read")
				}
			}
			return true
		})
		sort.Strings(names)
		return origins, names
	}

	leaked := make(map[int]bool)
	for _, ev := range events {
		switch {
		case ev.lhs != nil:
			origins, _ := originsOf(ev.rhs)
			if len(origins) > 0 {
				taint[ev.lhs] = origins
			} else {
				delete(taint, ev.lhs)
			}
		case ev.checked != nil:
			for _, v := range ev.checked {
				delete(taint, v)
			}
		case ev.arg != nil:
			origins, names := originsOf(ev.arg)
			if len(origins) == 0 {
				continue
			}
			for o := range origins {
				if o >= 0 {
					leaked[o] = true
				}
			}
			if origins[wireOrigin] && report != nil {
				report(ev.pos, brMessage(names, ev.sinkDesc, ev.sinkCallee))
			}
		}
	}
	return leaked
}

func brMessage(names []string, sinkDesc string, callee *types.Func) string {
	what := "wire-read length"
	if len(names) > 0 {
		what = "wire-read length " + strings.Join(names, ", ")
	}
	if callee != nil {
		return what + " is passed to " + funcDisplayName(callee) +
			", which forwards it to " + sinkDesc + " without a bounds check; a corrupt artifact controls this value"
	}
	return what + " reaches " + sinkDesc +
		" without a bounds check; a corrupt artifact controls this value"
}

// brCollect walks the body (closures included) and returns the
// simulation events sorted by source position.
func brCollect(d *FuncDecl, sinkParams map[*types.Func]map[int]bool) []brEvent {
	info := d.Pkg.Info
	var events []brEvent
	ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			brCollectAssign(n, info, &events)
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				var vars []*types.Var
				ast.Inspect(n, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if v, ok := info.Uses[id].(*types.Var); ok {
							vars = append(vars, v)
						}
					}
					return true
				})
				if len(vars) > 0 {
					events = append(events, brEvent{pos: n.Pos(), checked: vars})
				}
			}
		case *ast.CallExpr:
			brCollectSinks(n, info, sinkParams, &events)
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// brCollectAssign turns an assignment into per-variable taint events.
// Pair-wise when the counts line up; a single multi-valued RHS taints
// every target.
func brCollectAssign(n *ast.AssignStmt, info *types.Info, events *[]brEvent) {
	lhsVar := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		switch obj := info.Defs[id].(type) {
		case *types.Var:
			return obj
		}
		v, _ := info.Uses[id].(*types.Var)
		return v
	}
	for i, lhs := range n.Lhs {
		v := lhsVar(lhs)
		if v == nil {
			continue
		}
		rhs := n.Rhs[0]
		if len(n.Rhs) == len(n.Lhs) {
			rhs = n.Rhs[i]
		}
		*events = append(*events, brEvent{pos: n.Pos(), lhs: v, rhs: rhs})
	}
}

// brCollectSinks records the call's sink arguments: make size/cap
// arguments, any io.ReadFull argument, and arguments landing on a
// callee's known sink parameters.
func brCollectSinks(call *ast.CallExpr, info *types.Info, sinkParams map[*types.Func]map[int]bool, events *[]brEvent) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
			for _, arg := range call.Args[1:] {
				*events = append(*events, brEvent{pos: arg.Pos(), arg: arg, sinkDesc: "make"})
			}
			return
		}
	}
	callee := CalleeOf(info, call)
	if callee == nil {
		return
	}
	if callee.Name() == "ReadFull" && callee.Pkg() != nil && callee.Pkg().Path() == "io" {
		for _, arg := range call.Args {
			*events = append(*events, brEvent{pos: arg.Pos(), arg: arg, sinkDesc: "io.ReadFull"})
		}
		return
	}
	if params := sinkParams[callee]; len(params) > 0 {
		for i, arg := range call.Args {
			if params[i] {
				*events = append(*events, brEvent{pos: arg.Pos(), arg: arg, sinkDesc: "make/io.ReadFull", sinkCallee: callee})
			}
		}
	}
}

// isWireLenRead reports whether the call reads a length/count from
// the wire: a call whose bare function or method name is uvarint or
// varint. The lowercase spelling is deliberate — it matches the
// repo's internal reader vocabulary while excluding the stdlib's
// binary.Uvarint, whose callers hold whole buffers already.
func isWireLenRead(info *types.Info, call *ast.CallExpr) bool {
	fn := CalleeOf(info, call)
	if fn == nil {
		return false
	}
	return fn.Name() == "uvarint" || fn.Name() == "varint"
}
