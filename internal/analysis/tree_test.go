package analysis_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/report"
)

// TestDefaultAnalyzerCatalog pins the suite roster: adding, removing,
// or reordering an analyzer must update this list (and DESIGN.md's
// catalog) deliberately, not by accident.
func TestDefaultAnalyzerCatalog(t *testing.T) {
	want := []string{
		"maprangefloat",
		"seedflow",
		"guardedby",
		"normalizedpred",
		"lockorder",
		"workerpure",
		"statecodec",
		"snapshotonce",
		"boundedread",
		"hotalloc",
		"ctxflow",
		"goroleak",
		"errflow",
		"sharedread",
		"poolescape",
		"cowstore",
	}
	analyzers := analysis.DefaultAnalyzers()
	var got []string
	for _, a := range analyzers {
		got = append(got, a.Name)
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc line", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run function", a.Name)
		}
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("DefaultAnalyzers catalog:\n got %v\nwant %v", got, want)
	}
}

// repoRoot locates the enclosing module of this test file's package.
func repoRoot(t *testing.T) (root, modpath string) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, modpath, err = analysis.FindModule(wd)
	if err != nil {
		t.Fatal(err)
	}
	return root, modpath
}

// TestRealTreeCleanAgainstBaseline runs the full suite over this
// repository itself and requires a clean result: zero findings, and a
// //lint:ignore inventory that matches the committed
// lint/suppressions.txt baseline line for line. A new finding means
// fix the code or add a justified suppression; a new suppression means
// regenerate the baseline (see lint/README.md) so the audit trail and
// this test move together.
func TestRealTreeCleanAgainstBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint is slow; skipped with -short")
	}
	root, modpath := repoRoot(t)

	diags, err := analysis.Lint(root, modpath, nil, analysis.DefaultAnalyzers())
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unsuppressed finding: %s", d)
	}

	sups, err := analysis.Suppressions(root, modpath, nil)
	if err != nil {
		t.Fatalf("Suppressions: %v", err)
	}
	rsups := make([]report.Suppression, 0, len(sups))
	for _, s := range sups {
		rsups = append(rsups, report.Suppression{
			File:    s.Position.Filename,
			Line:    s.Position.Line,
			Package: s.Package,
			Check:   s.Check,
			Reason:  s.Reason,
		})
	}
	var buf bytes.Buffer
	if err := report.WriteSuppressionsText(&buf, root, rsups); err != nil {
		t.Fatal(err)
	}
	baselinePath := filepath.Join(root, "lint", "suppressions.txt")
	baseline, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatalf("reading baseline: %v", err)
	}
	// The committed baseline is the lsdlint inventory plus any
	// lsdschema directives appended after it; the Go-side render must
	// be a prefix of it and every remaining line must be a DTD
	// directive, not a Go one.
	got, want := buf.String(), string(baseline)
	if !strings.HasPrefix(want, got) {
		t.Fatalf("suppression inventory drifted from %s;\nregenerate it:\n  go run ./cmd/lsdlint -suppressions ./... > lint/suppressions.txt\n  go run ./cmd/lsdschema -suppressions >> lint/suppressions.txt\n\ngot:\n%s\nbaseline:\n%s",
			baselinePath, got, want)
	}
	for _, line := range strings.Split(strings.TrimSuffix(want[len(got):], "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasSuffix(strings.SplitN(line, ":", 2)[0], ".go") {
			t.Errorf("baseline holds a Go suppression the live inventory lacks: %s", line)
		}
	}
}
