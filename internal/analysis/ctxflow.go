package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CtxFlow enforces request-lifecycle cancellation: in code reachable
// from an HTTP handler (a declared function with the
// (http.ResponseWriter, *http.Request) shape — the same shape
// snapshotonce keys on), work fanned out through parallel.Map or
// parallel.ForEach must run under a context derived from the request,
// so a disconnected client cancels its in-flight work instead of
// burning the worker pool.
//
// Two rules, both over the shared value-flow substrate (flow.go):
//
//   - context.Background() or context.TODO() anywhere in
//     request-reachable code is a finding: it detaches everything
//     downstream from the request lifetime.
//   - the context argument of every parallel.Map/ForEach call in
//     request-reachable code must derive from the request — from an
//     r.Context() call or from a context.Context parameter (callers of
//     such a parameter are checked in turn through the substrate's
//     param→sink summaries, so laundering a detached context through a
//     helper is still caught at the helper's call site). Derivation
//     follows the def-use chain: contexts wrapped by
//     context.WithCancel/WithTimeout/WithValue keep their parent's
//     origin.
//
// Deliberately detached work (a background refresh kicked off by a
// request, a lifecycle that must outlive the response) suppresses with
// //lint:ignore ctxflow and a reason.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "request-reachable fan-out must run under the request's context, not context.Background/TODO",
	Run:  runCtxFlow,
}

// ctxFlowSpec configures the flow engine: sources are r.Context()
// calls, pre-tainted parameters are the context.Context-typed ones,
// and sinks are the context arguments of parallel.Map/ForEach. Result
// summaries are on so a declared helper's return value carries exactly
// the context taint that flows through it.
var ctxFlowSpec = &TaintSpec{
	Key:                "ctxflow",
	SourceName:         "request context",
	IsSource:           isRequestContextCall,
	Sinks:              ctxFanoutSinks,
	TaintParam:         isContextParam,
	ForwardDesc:        "parallel.Map/ForEach",
	UseResultSummaries: true,
	TrustLitParams:     true,
}

func runCtxFlow(pass *Pass) {
	type ctxDiag struct {
		pos token.Pos
		msg string
	}
	diags := pass.Prog.Cache("ctxflow.diags", func() any {
		reach := requestReachable(pass.Prog)
		out := make(map[*types.Package][]ctxDiag)
		// Rule 1: no detached contexts in request-reachable code. The
		// positions double as a dedupe set for rule 2, so one
		// parallel.Map(context.Background(), …) call reports once.
		detached := make(map[token.Pos]bool)
		for _, d := range pass.Prog.Decls() {
			roots := reach[d.Fn]
			if len(roots) == 0 {
				continue
			}
			pkg := d.Pkg.Pkg
			info := d.Pkg.Info
			ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := detachedContextCall(info, call); ok {
					detached[call.Pos()] = true
					out[pkg] = append(out[pkg], ctxDiag{call.Pos(), "context." + name +
						"() detaches this work from the request (reachable from handler " +
						strings.Join(roots, ", ") + "); derive the context from the request so client disconnect cancels it"})
				}
				return true
			})
		}
		// Rule 2: fan-out contexts must derive from the request. A sink
		// argument whose origin set is empty traces to neither an
		// r.Context() call nor a context parameter of the enclosing
		// function.
		include := func(d *FuncDecl) bool { return len(reach[d.Fn]) > 0 }
		spec := *ctxFlowSpec
		spec.Include = include
		for pkg, findings := range TaintFlow(pass.Prog, &spec) {
			for _, f := range findings {
				if len(f.Origins) > 0 {
					continue
				}
				if p, ok := containsDetachedContext(pkgInfo(pass.Prog, pkg), f.Arg); ok && detached[p] {
					continue // rule 1 already reported this expression
				}
				msg := "the context passed to " + f.Desc + " does not derive from the request context"
				if f.Callee != nil {
					msg = "this argument is forwarded by " + funcDisplayName(f.Callee) +
						" into " + f.Desc + " but does not derive from the request context"
				}
				out[pkg] = append(out[pkg], ctxDiag{f.Pos, msg +
					"; request-reachable fan-out must be cancellable by client disconnect"})
			}
		}
		for pkg := range out {
			sort.SliceStable(out[pkg], func(i, j int) bool { return out[pkg][i].pos < out[pkg][j].pos })
		}
		return out
	}).(map[*types.Package][]ctxDiag)
	for _, d := range diags[pass.Pkg] {
		pass.Reportf(d.pos, "%s", d.msg)
	}
}

// requestReachable maps every declared function reachable from an
// HTTP-handler-shaped declaration (closures included) to the sorted
// handler names it is reachable from.
func requestReachable(prog *Program) map[*types.Func][]string {
	return prog.Cache("ctxflow.requestReachable", func() any {
		var roots []*FuncDecl
		for _, d := range prog.Decls() {
			if isHTTPHandlerShape(d.Fn) {
				roots = append(roots, d)
			}
		}
		return reachableFrom(prog, roots)
	}).(map[*types.Func][]string)
}

// detachedContextCall reports whether the call is context.Background()
// or context.TODO(), returning the function name.
func detachedContextCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := CalleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		return name, true
	}
	return "", false
}

// containsDetachedContext returns the position of a Background/TODO
// call inside the expression, if any.
func containsDetachedContext(info *types.Info, e ast.Expr) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && !found {
			if _, ok := detachedContextCall(info, call); ok {
				pos, found = call.Pos(), true
			}
		}
		return !found
	})
	return pos, found
}

// isRequestContextCall reports whether the call is Context() on an
// *http.Request receiver — the canonical way a handler obtains the
// request-scoped context.
func isRequestContextCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal || selection.Obj().Name() != "Context" {
		return false
	}
	named := namedOf(selection.Recv())
	return named != nil && isNetHTTPType(named.Obj(), "Request")
}

// ctxFanoutSinks declares the context argument of parallel.Map and
// parallel.ForEach a sink. The match is by package name so the
// analyzer's fixtures can exercise the real pool package.
func ctxFanoutSinks(info *types.Info, call *ast.CallExpr) []TaintSink {
	fn := CalleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "parallel" {
		return nil
	}
	name := fn.Name()
	if (name != "Map" && name != "ForEach") || len(call.Args) == 0 {
		return nil
	}
	return []TaintSink{{Arg: call.Args[0], Desc: "parallel." + name}}
}

// isContextParam reports whether the variable's type is
// context.Context.
func isContextParam(v *types.Var) bool {
	named := namedOf(v.Type())
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// pkgInfo finds the loaded package's type info by its types.Package,
// for analyses that report across package boundaries.
func pkgInfo(prog *Program, pkg *types.Package) *types.Info {
	for _, p := range prog.Pkgs {
		if p.Pkg == pkg {
			return p.Info
		}
	}
	return nil
}
