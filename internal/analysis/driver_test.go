package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// writeModule materializes a throwaway module (go.mod plus files) and
// returns its root. Keys are slash-separated relative paths.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module example.com/m\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const cleanSrc = `package m

func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
`

const dirtySrc = `package m

func Sum(m map[string]float64) float64 {
	s := 0.0
	for _, x := range m {
		s += x
	}
	return s
}
`

func lint(t *testing.T, dir string) []analysis.Diagnostic {
	t.Helper()
	diags, err := analysis.Lint(dir, "example.com/m", nil, analysis.DefaultAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestLintCleanTree(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": cleanSrc})
	if diags := lint(t, dir); len(diags) != 0 {
		t.Errorf("clean tree produced diagnostics: %v", diags)
	}
}

func TestLintFinding(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": dirtySrc})
	diags := lint(t, dir)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Check != "maprangefloat" || d.Position.Line != 6 {
		t.Errorf("got %v, want maprangefloat at line 6", d)
	}
}

func TestLintIgnoreStandalone(t *testing.T) {
	src := strings.Replace(dirtySrc, "\t\ts += x",
		"\t\t//lint:ignore maprangefloat the values are integral in practice\n\t\ts += x", 1)
	dir := writeModule(t, map[string]string{"a.go": src})
	if diags := lint(t, dir); len(diags) != 0 {
		t.Errorf("standalone directive did not suppress: %v", diags)
	}
}

func TestLintIgnoreTrailing(t *testing.T) {
	src := strings.Replace(dirtySrc, "\t\ts += x",
		"\t\ts += x //lint:ignore maprangefloat the values are integral in practice", 1)
	dir := writeModule(t, map[string]string{"a.go": src})
	if diags := lint(t, dir); len(diags) != 0 {
		t.Errorf("trailing directive did not suppress: %v", diags)
	}
}

func TestLintIgnoreWrongCheckDoesNotSuppress(t *testing.T) {
	src := strings.Replace(dirtySrc, "\t\ts += x",
		"\t\t//lint:ignore seedflow wrong check name\n\t\ts += x", 1)
	dir := writeModule(t, map[string]string{"a.go": src})
	diags := lint(t, dir)
	if len(diags) != 1 || diags[0].Check != "maprangefloat" {
		t.Errorf("directive for another check suppressed the finding: %v", diags)
	}
}

// TestLintIgnoreWithoutReason: a bare //lint:ignore <check> is itself a
// diagnostic, and it does not suppress the finding it annotates.
func TestLintIgnoreWithoutReason(t *testing.T) {
	src := strings.Replace(dirtySrc, "\t\ts += x",
		"\t\t//lint:ignore maprangefloat\n\t\ts += x", 1)
	dir := writeModule(t, map[string]string{"a.go": src})
	diags := lint(t, dir)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (malformed directive + unsuppressed finding): %v", len(diags), diags)
	}
	checks := []string{diags[0].Check, diags[1].Check}
	if !(checks[0] == "ignore" && checks[1] == "maprangefloat") {
		t.Errorf("got checks %v, want [ignore maprangefloat]", checks)
	}
}

func TestLintSyntaxErrorIsHardError(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": "package m\n\nfunc broken( {\n"})
	if _, err := analysis.Lint(dir, "example.com/m", nil, analysis.DefaultAnalyzers()); err == nil {
		t.Error("Lint succeeded on a package that does not parse")
	}
}

func TestModulePackagesSkipsTestdata(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a.go":              cleanSrc,
		"sub/b.go":          "package sub\n",
		"testdata/src/x.go": "package x\n",
		"_skip/c.go":        "package c\n",
	})
	paths, err := analysis.NewLoader(dir, "example.com/m").ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"example.com/m", "example.com/m/sub"}
	if len(paths) != len(want) || paths[0] != want[0] || paths[1] != want[1] {
		t.Errorf("got %v, want %v", paths, want)
	}
}

func TestFindModule(t *testing.T) {
	dir := writeModule(t, map[string]string{"sub/b.go": "package sub\n"})
	root, modpath, err := analysis.FindModule(filepath.Join(dir, "sub"))
	if err != nil {
		t.Fatal(err)
	}
	// TempDir may come back through a symlink; compare resolved paths.
	wantRoot, _ := filepath.EvalSymlinks(dir)
	gotRoot, _ := filepath.EvalSymlinks(root)
	if gotRoot != wantRoot || modpath != "example.com/m" {
		t.Errorf("got (%s, %s), want (%s, example.com/m)", root, modpath, dir)
	}
}
