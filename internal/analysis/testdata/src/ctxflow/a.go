// Package ctxflow exercises the ctxflow analyzer: code reachable from
// an HTTP-handler-shaped function must fan work out under a context
// derived from the request, and context.Background()/TODO() in
// request-reachable code is a finding. The fixture mirrors the real
// serve-path defect this analyzer was built to catch: a batch handler
// fanning out under context.Background so a disconnected client keeps
// burning the worker pool.
package ctxflow

import (
	"context"
	"net/http"
	"time"

	"repro/internal/parallel"
)

type ctxKey struct{}

// detachedCtx lives outside any request lifetime; fanning out under it
// is untraceable to a request.
var detachedCtx = context.Background()

// handleBatch reproduces the pre-fix serve bug: the batch fans out
// under context.Background, so client disconnect cancels nothing.
func handleBatch(w http.ResponseWriter, r *http.Request) {
	out, _ := parallel.Map(context.Background(), 4, 8,
		func(_ context.Context, i int) (int, error) { return i, nil })
	_ = out
}

// fanOut forwards its context parameter into the pool; through the
// param→sink summary its callers must pass a request-derived context.
func fanOut(ctx context.Context, n int) {
	_ = parallel.ForEach(ctx, 2, n, func(context.Context, int) error { return nil })
}

// handleLaundered launders a detached context through fanOut: the TODO
// is one finding, and the forwarded argument a second, interprocedural
// one.
func handleLaundered(w http.ResponseWriter, r *http.Request) {
	ctx := context.TODO()
	fanOut(ctx, 4)
}

// handleStored fans out under the package-level context: no request
// origin is reachable along the def-use chain.
func handleStored(w http.ResponseWriter, r *http.Request) {
	_ = parallel.ForEach(detachedCtx, 2, 4, func(context.Context, int) error { return nil })
}

// handleGood passes the request context straight into the pool
// (true negative).
func handleGood(w http.ResponseWriter, r *http.Request) {
	_ = parallel.ForEach(r.Context(), 2, 4, func(context.Context, int) error { return nil })
}

// handleDerived wraps the request context; derived contexts keep their
// parent's origin (true negative).
func handleDerived(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), time.Second)
	defer cancel()
	fanOut(ctx, 4)
}

// derive re-parents a value onto the request context; the param→result
// summary carries the origin through the return value.
func derive(ctx context.Context) context.Context {
	return context.WithValue(ctx, ctxKey{}, "v")
}

// handleViaHelper reaches the pool through two helpers — a deriving
// one and a forwarding one — and stays clean (true negative).
func handleViaHelper(w http.ResponseWriter, r *http.Request) {
	fanOut(derive(r.Context()), 4)
}

// refresh is not request-reachable: Background here is the correct
// lifetime (true negative).
func refresh() {
	_ = parallel.ForEach(context.Background(), 2, 4, func(context.Context, int) error { return nil })
}

// handleAudit deliberately detaches its fan-out from the request and
// says why (suppressed).
func handleAudit(w http.ResponseWriter, r *http.Request) {
	//lint:ignore ctxflow the audit trail must be written even when the client goes away
	_ = parallel.ForEach(context.Background(), 1, 1, func(context.Context, int) error { return nil })
}
