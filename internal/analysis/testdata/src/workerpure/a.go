// Package fixtures exercises the workerpure analyzer: worker closures
// writing package-level state (directly or through a helper — the
// interprocedural case), captured variables, and unguarded captured
// struct fields are true positives; own-result-slot writes,
// closure-local state, and `// guarded by`-tagged targets are
// negatives.
package fixtures

import (
	"context"
	"sync"

	"repro/internal/parallel"
)

var hits int

var statsMu sync.Mutex

// stats is protected: workers may write it under statsMu.
var stats = map[string]int{} // guarded by statsMu

type collector struct {
	mu sync.Mutex
	// seen is written under mu. guarded by mu
	seen  []string
	total int
}

// bump mutates package state; any worker that calls it is impure.
func bump() {
	hits++
}

// record mutates the map it is handed; its mutation summary is how the
// laundered-capture case is seen.
func record(m map[string]int, k string) {
	m[k]++
}

// fill appends into the slice its pointer argument addresses.
func fill(dst *[]string, v string) {
	*dst = append(*dst, v)
}

func positives(ctx context.Context, xs []float64, c *collector) {
	// Direct package-level write.
	_ = parallel.ForEach(ctx, 4, len(xs), func(ctx context.Context, i int) error {
		hits++
		return nil
	})
	// Captured scalar accumulated across tasks: a data race and an
	// order dependence.
	var sum float64
	_ = parallel.ForEach(ctx, 4, len(xs), func(ctx context.Context, i int) error {
		sum += xs[i]
		return nil
	})
	// Unguarded captured struct field.
	_ = parallel.ForEach(ctx, 4, len(xs), func(ctx context.Context, i int) error {
		c.total++
		return nil
	})
	// Package-level write hidden behind a helper: the true positive a
	// closure-body-only pass missed.
	_ = parallel.ForEach(ctx, 4, len(xs), func(ctx context.Context, i int) error {
		bump()
		return nil
	})
	// Captured map handed to a mutating helper: the callee's mutation
	// summary exposes the laundered write.
	counts := map[string]int{}
	_ = parallel.ForEach(ctx, 4, len(xs), func(ctx context.Context, i int) error {
		record(counts, "seen")
		return nil
	})
	// Captured slice grown in place through a helper.
	var names []string
	_ = parallel.ForEach(ctx, 4, len(xs), func(ctx context.Context, i int) error {
		fill(&names, "x")
		return nil
	})
	_, _, _ = sum, counts, names
}

func negatives(ctx context.Context, xs []float64, c *collector) ([]float64, error) {
	// Map's own positional result collection.
	doubled, err := parallel.Map(ctx, 4, len(xs), func(ctx context.Context, i int) (float64, error) {
		return xs[i] * 2, nil
	})
	if err != nil {
		return nil, err
	}
	// Writing the task's own slot of a captured slice.
	out := make([]float64, len(xs))
	_ = parallel.ForEach(ctx, 4, len(xs), func(ctx context.Context, i int) error {
		out[i] = doubled[i] + 1
		return nil
	})
	// Closure-local state is private to the task.
	_ = parallel.ForEach(ctx, 4, len(xs), func(ctx context.Context, i int) error {
		acc := 0.0
		for _, x := range xs {
			acc += x
		}
		out[i] = acc
		return nil
	})
	// Slot-indexed element handed to a mutating helper: each task owns
	// its slot, so the laundered write is still private.
	rows := make([][]string, len(xs))
	_ = parallel.ForEach(ctx, 4, len(xs), func(ctx context.Context, i int) error {
		fill(&rows[i], "x")
		return nil
	})
	// Closure-local value handed to a mutating helper stays private.
	_ = parallel.ForEach(ctx, 4, len(xs), func(ctx context.Context, i int) error {
		local := map[string]int{}
		record(local, "k")
		out[i] = float64(len(local))
		return nil
	})
	_ = rows
	// Guarded targets: the guardedby analyzer owns their locking
	// discipline.
	_ = parallel.ForEach(ctx, 4, len(xs), func(ctx context.Context, i int) error {
		statsMu.Lock()
		stats["tasks"]++
		statsMu.Unlock()
		c.mu.Lock()
		c.seen = append(c.seen, "x")
		c.mu.Unlock()
		return nil
	})
	return out, nil
}

func suppressed(ctx context.Context, xs []float64) {
	_ = parallel.ForEach(ctx, 4, len(xs), func(ctx context.Context, i int) error {
		//lint:ignore workerpure fixture demonstrating a justified suppression
		hits++
		return nil
	})
}

var _ = []any{positives, negatives, suppressed}
