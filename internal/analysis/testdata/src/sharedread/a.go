// Package sharedread exercises the sharedread analyzer: values
// returned by `// lint:shared` functions (and interface methods) are
// read-only; callers must Clone before modifying.
package sharedread

type pred map[string]float64

var canonical = pred{"a": 1}

// cache returns the shared canonical prediction for key; callers must
// not mutate it.
//
// lint:shared
func cache(key string) pred {
	return canonical
}

// scale mutates its argument in place — the callee the interprocedural
// case launders a write through.
func scale(p pred, by float64) {
	p["a"] *= by
}

// reset mutates its receiver.
func (p pred) reset() {
	p["a"] = 0
}

// bad mutates the shared value directly.
func bad() {
	p := cache("x")
	p["a"] = 2 // want: direct write
}

// badDelete shrinks the shared map.
func badDelete() {
	p := cache("x")
	delete(p, "a") // want: delete
}

// badAlias mutates through a second name for the same storage.
func badAlias() {
	p := cache("x")
	q := p
	q["a"] = 2 // want: write through alias
}

// badCallee passes the shared value to a helper whose summary mutates
// its parameter — the interprocedural true positive.
func badCallee() {
	p := cache("x")
	scale(p, 2) // want: callee mutates
}

// badMethod mutates through a method on the shared value.
func badMethod() {
	p := cache("x")
	p.reset() // want: receiver mutated
}

// badStored keeps shared values in a slice and mutates one through the
// container — the preds[i] = l.Predict(in) pattern from the stacker.
func badStored() {
	preds := make([]pred, 2)
	preds[0] = cache("x")
	preds[0]["a"] = 2 // want: write through the container
	p := preds[1]
	p["b"] = 3 // want: element read keeps tracking
}

// badStoredCallee hands a container element to a mutating helper.
func badStoredCallee() {
	preds := make([]pred, 1)
	preds[0] = cache("x")
	scale(preds[0], 2) // want: callee mutates the stored shared value
}

// goodReplace overwrites container slots that held shared values (true
// negative: replacing the reference is not mutating the value).
func goodReplace() {
	preds := make([]pred, 2)
	preds[0] = cache("x")
	preds[0] = pred{"a": 1}
	preds[1] = nil
	_ = preds
}

// goodClone copies before mutating (true negative).
func goodClone() pred {
	p := cache("x")
	q := make(pred, len(p))
	for k, v := range p {
		q[k] = v
	}
	q["a"] = 2
	return q
}

// goodRead only reads (true negative).
func goodRead() float64 {
	return cache("x")["a"]
}

// tolerated carries a justified suppression.
func tolerated() {
	p := cache("x")
	//lint:ignore sharedread fixture exercises suppression
	p["a"] = 3
}

// predictor's Predict hands out shared cached predictions: the
// annotation sits on the interface method, and binds every
// implementation.
type predictor interface {
	// Predict returns the shared cached prediction for key.
	//
	// lint:shared
	Predict(key string) pred
}

// badIface mutates a prediction obtained through the interface
// (dynamic dispatch resolves to the annotated interface method).
func badIface(pr predictor) {
	p := pr.Predict("x")
	p["a"] = 1 // want: interface contract
}

type impl struct{}

func (impl) Predict(key string) pred { return canonical }

// badImpl mutates a prediction obtained from a concrete implementation
// of the shared interface method: the contract propagates to
// implementations.
func badImpl(m impl) {
	p := m.Predict("x")
	p["a"] = 1 // want: implementation inherits the contract
}

// viaHelper forwards a shared call's result, so it is itself shared.
func viaHelper(key string) pred {
	return cache(key)
}

// badDerived mutates a value from the derived helper.
func badDerived() {
	p := viaHelper("x")
	p["a"] = 1 // want: derived producer
}
