// Package fixtures exercises the seedflow analyzer: true positives in
// positives, true negatives in negatives.
package fixtures

import (
	"math/rand"

	"repro/internal/learn"
)

const baseSeed = 17

func positives(seed int64) {
	_ = rand.NewSource(seed)                // bare variable seed
	_ = rand.New(rand.NewSource(seed * 31)) // ad-hoc affine arithmetic
	shared := rand.New(rand.NewSource(1))
	go func() {
		_ = shared.Int63() // *rand.Rand captured by a goroutine
	}()
}

func negatives(seed int64) {
	_ = rand.NewSource(42)       // literal constant
	_ = rand.NewSource(baseSeed) // named constant
	_ = rand.NewSource(int64(baseSeed * 3))
	_ = rand.New(rand.NewSource(learn.DeriveSeed(seed, 3)))
	go func() {
		// A goroutine-local Rand with a derived seed shares no state.
		local := rand.New(rand.NewSource(learn.DeriveSeed(seed, 4)))
		_ = local.Int63()
	}()
}

func suppressed(seed int64) {
	//lint:ignore seedflow fixture demonstrating a justified suppression
	_ = rand.NewSource(seed + 99)
}
