// Package snapshotonce exercises the snapshotonce analyzer: code
// reachable from an HTTP handler may load the atomic.Pointer registry
// snapshot at most once per request.
package snapshotonce

import (
	"net/http"
	"sync/atomic"
)

type registry struct {
	models map[string]int
}

type server struct {
	reg atomic.Pointer[registry]
}

// handleBad loads the snapshot itself and then calls a helper that
// loads again: the second load is only visible interprocedurally.
func (s *server) handleBad(w http.ResponseWriter, r *http.Request) {
	reg := s.reg.Load()
	_ = reg.models
	_ = s.lookup("a")
}

func (s *server) lookup(name string) int {
	return s.reg.Load().models[name]
}

// handleGood loads once and passes the snapshot down (true negative).
func (s *server) handleGood(w http.ResponseWriter, r *http.Request) {
	reg := s.reg.Load()
	_ = lookupIn(reg, "a")
	_ = lookupIn(reg, "b")
}

func lookupIn(reg *registry, name string) int {
	return reg.models[name]
}

// handleLoop has a single load site, but inside a loop one iteration
// per registry generation is enough to tear.
func (s *server) handleLoop(w http.ResponseWriter, r *http.Request) {
	for i := 0; i < 3; i++ {
		_ = s.reg.Load()
	}
}

// handleClosures loads twice through function literals handed to a
// runner; closure bodies count toward the enclosing handler.
func (s *server) handleClosures(w http.ResponseWriter, r *http.Request) {
	run(func() { _ = s.reg.Load() })
	run(func() { _ = s.reg.Load() })
}

func run(f func()) { f() }

// notAHandler loads twice but does not have the handler shape, so the
// per-request contract does not apply (true negative).
func (s *server) notAHandler() int {
	a := s.reg.Load()
	b := s.reg.Load()
	return len(a.models) + len(b.models)
}

// handleCompare deliberately reads two generations to report
// hot-swap progress; the double load is the point.
//
//lint:ignore snapshotonce generation comparison needs two independent reads by design
func (s *server) handleCompare(w http.ResponseWriter, r *http.Request) {
	a := s.reg.Load()
	b := s.reg.Load()
	_ = a == b
}
