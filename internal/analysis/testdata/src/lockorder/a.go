// Package fixtures exercises the lockorder analyzer: same-mutex
// re-entry (direct, and through a call — the case a per-function pass
// cannot see) and ABBA acquisition-order cycles are true positives;
// consistent ordering, disjoint holds, deferred releases, and
// function literals are negatives.
package fixtures

import "sync"

type registry struct {
	a sync.Mutex
	b sync.Mutex
	c sync.Mutex
	d sync.Mutex
}

// True positive: acquiring a mutex already held self-deadlocks.
func reenterDirect(r *registry) {
	r.a.Lock()
	r.a.Lock()
	r.a.Unlock()
	r.a.Unlock()
}

func lockA(r *registry) {
	r.a.Lock()
	defer r.a.Unlock()
}

// True positive the intraprocedural pass missed: the callee's summary
// acquires r.a, which the caller already holds.
func reenterViaCall(r *registry) {
	r.a.Lock()
	lockA(r)
	r.a.Unlock()
}

// True positives: these two functions acquire a and b in opposite
// orders — the classic ABBA deadlock.
func abOrder(r *registry) {
	r.a.Lock()
	r.b.Lock()
	r.b.Unlock()
	r.a.Unlock()
}

func baOrder(r *registry) {
	r.b.Lock()
	r.a.Lock()
	r.a.Unlock()
	r.b.Unlock()
}

// Negative: every function that holds c and d takes them in the same
// order, so the acquisition graph has no cycle.
func cdOrderOne(r *registry) {
	r.c.Lock()
	r.d.Lock()
	r.d.Unlock()
	r.c.Unlock()
}

func cdOrderTwo(r *registry) {
	r.c.Lock()
	defer r.c.Unlock()
	r.d.Lock()
	defer r.d.Unlock()
}

// Negative: the first mutex is released before the second is taken,
// so holding never overlaps and no ordering edge exists.
func disjoint(r *registry) {
	r.d.Lock()
	r.d.Unlock()
	r.c.Lock()
	r.c.Unlock()
}

// Negative: a function literal runs at a time source order cannot
// place, so its acquisitions are not replayed against the enclosing
// function's held set.
func inLiteral(r *registry) {
	r.a.Lock()
	f := func() {
		r.b.Lock()
		r.b.Unlock()
	}
	r.a.Unlock()
	f()
}

// Negative: a fresh local mutex per call cannot be held twice.
func localMutex() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
	mu.Lock()
	mu.Unlock()
}

// Suppressed: //lint:ignore applies to program-wide findings too.
func suppressed(r *registry) {
	r.c.Lock()
	//lint:ignore lockorder fixture demonstrating a justified suppression
	r.c.Lock()
	r.c.Unlock()
	r.c.Unlock()
}

var _ = []any{reenterDirect, reenterViaCall, abOrder, baOrder,
	cdOrderOne, cdOrderTwo, disjoint, inLiteral, localMutex, suppressed}
