// Package statecodec exercises the statecodec analyzer: every
// exported field of a codec-touched struct must flow into an encode
// call and receive a decode assignment, interprocedurally from the
// lint:codec roots. All field traffic here happens inside helpers, so
// every diagnostic (and every clean field) depends on call-graph
// reachability, not on scanning the root bodies.
package statecodec

// State is the serialized learner state. Names round-trips through
// helpers on both sides (clean); Weights is decoded but never
// encoded; Bias is encoded but never decoded; Epoch is missed by both
// halves.
type State struct {
	Names   []string
	Weights []float64
	Bias    float64
	Epoch   int
	//lint:ignore statecodec Cache is rebuilt from Names on first use; deliberately not persisted.
	Cache map[string]int
}

// Extra is never touched by the codec, so none of its fields are
// required to round-trip (true negative).
type Extra struct {
	A int
	B int
}

type writer struct{ out []byte }

func (w *writer) strs(v []string) { w.out = append(w.out, byte(len(v))) }
func (w *writer) f64(v float64)   { w.out = append(w.out, byte(v)) }

type reader struct{ in []byte }

func (r *reader) strs() []string  { return nil }
func (r *reader) f64s() []float64 { return nil }

// Encode serializes st. The field reads live in helpers: without
// interprocedural reach the analyzer would see no encode traffic at
// all.
//
// lint:codec encode
func Encode(st *State) []byte {
	w := &writer{}
	encodeNames(w, st)
	encodeBias(w, st)
	return w.out
}

func encodeNames(w *writer, st *State) { w.strs(st.Names) }

func encodeBias(w *writer, st *State) { w.f64(st.Bias) }

// Decode restores a State, again entirely through helpers.
//
// lint:codec decode
func Decode(data []byte) *State {
	r := &reader{in: data}
	st := &State{}
	decodeNames(r, st)
	decodeWeights(r, st)
	return st
}

func decodeNames(r *reader, st *State) { st.Names = r.strs() }

func decodeWeights(r *reader, st *State) { st.Weights = r.f64s() }

// Rebuild populates Extra outside any codec root; these writes must
// not drag Extra into the checked set.
func Rebuild(e *Extra) {
	e.A = 1
	e.B = 2
}
