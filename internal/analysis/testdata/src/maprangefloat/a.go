// Package fixtures exercises the maprangefloat analyzer: true
// positives in positives, true negatives in negatives.
package fixtures

func positives(m map[string]float64, weights map[string]float64, groups map[string][]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // accumulates in map order
	}
	prod := 1.0
	for _, v := range m {
		prod *= v // multiplication is not associative either
	}
	for k := range m {
		weights["total"] -= weights[k] // index is not the range key
	}
	outer := 0.0
	for _, vs := range groups {
		for _, v := range vs {
			outer += v // inner slice is ordered, but the outer map is not
		}
	}
	return sum + prod + outer
}

func negatives(m map[string]float64, counts map[string]int, xs []float64, groups map[string][]float64) float64 {
	// Integer accumulation is exact, so order cannot matter.
	n := 0
	for _, c := range counts {
		n += c
	}
	// Slice iteration order is fixed.
	s := 0.0
	for _, x := range xs {
		s += x
	}
	// A write indexed by the range key touches a distinct slot per
	// iteration: no cross-iteration accumulation.
	for k := range m {
		m[k] /= 2
	}
	// A loop-local accumulator resets every iteration.
	for _, vs := range groups {
		local := 0.0
		for _, v := range vs {
			local += v
		}
		_ = local
	}
	return s + float64(n)
}

// addTo compound-assigns a float through its pointer parameter; its
// summary marks parameter 0 as an accumulator.
func addTo(acc *float64, v float64) {
	*acc += v
}

// scale multiplies through its pointer parameter.
func scale(acc *float64, v float64) {
	*acc *= v
}

func helperPositives(m map[string]float64) float64 {
	// The same order-dependent accumulation, hidden one call deep —
	// the true positive the intraprocedural pass missed.
	total := 0.0
	prod := 1.0
	for _, v := range m {
		addTo(&total, v)
		scale(&prod, v)
	}
	return total + prod
}

func helperNegatives(m map[string]float64) float64 {
	last := 0.0
	for _, v := range m {
		// A pointer to a loop-local accumulator resets every
		// iteration.
		local := 0.0
		addTo(&local, v)
		last = local
	}
	return last
}

func suppressed(m map[string]float64) float64 {
	ignored := 0.0
	for _, v := range m {
		//lint:ignore maprangefloat fixture demonstrating a justified suppression
		ignored += v
	}
	return ignored
}
