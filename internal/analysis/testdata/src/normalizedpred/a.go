// Package fixtures exercises the normalizedpred analyzer: true
// positives in Literal and BuiltNoNormalize, true negatives in the
// rest.
package fixtures

import "repro/internal/learn"

func Literal() learn.Prediction {
	return learn.Prediction{"a": 1} // raw literal crosses the boundary
}

func BuiltNoNormalize(labels []string) learn.Prediction {
	p := make(learn.Prediction, len(labels))
	for _, c := range labels {
		p[c] = 1
	}
	return p // built here, never normalized
}

func BuiltNormalized(labels []string) learn.Prediction {
	p := make(learn.Prediction, len(labels))
	for _, c := range labels {
		p[c] = 1
	}
	return p.Normalize()
}

func NormalizedEarlier(labels []string) learn.Prediction {
	p := make(learn.Prediction, len(labels))
	for _, c := range labels {
		p[c] = 1
	}
	p.Normalize()
	return p
}

func Delegates(labels []string) learn.Prediction {
	return learn.Uniform(labels) // the callee owns the invariant
}

func PassThrough(p learn.Prediction) learn.Prediction {
	return p // not built here; the producer already normalized it
}

func unexportedLiteral() learn.Prediction {
	return learn.Prediction{"a": 1} // package-internal values are not checked
}

func Suppressed() learn.Prediction {
	//lint:ignore normalizedpred fixture demonstrating a justified suppression
	return learn.Prediction{"a": 1}
}

// rawScores builds a Prediction and returns it raw. Package-internal
// on its own — but Escapes hands it straight across the boundary, so
// the finding lands on the return below.
func rawScores(labels []string) learn.Prediction {
	p := make(learn.Prediction, len(labels))
	for _, c := range labels {
		p[c] = 1
	}
	return p
}

// Escapes returns the helper's raw distribution: the interprocedural
// true positive the intraprocedural pass missed.
func Escapes(labels []string) learn.Prediction {
	return rawScores(labels)
}

// normalizedScores normalizes before returning, so Clean is fine.
func normalizedScores(labels []string) learn.Prediction {
	p := make(learn.Prediction, len(labels))
	for _, c := range labels {
		p[c] = 1
	}
	return p.Normalize()
}

func Clean(labels []string) learn.Prediction {
	return normalizedScores(labels)
}

var _ = unexportedLiteral
