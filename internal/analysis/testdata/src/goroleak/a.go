// Package goroleak exercises the goroleak analyzer: every go
// statement needs a visible termination path — WaitGroup pairing,
// matched channels, or a context bound. True positives model leaked
// goroutines (unbounded spins, unmatched sends and receives); true
// negatives model the repo's real launch shapes (the worker pool's
// Add/Done pairing, lsdserve's buffered errc, ctx-bounded loops,
// range-over-closed-channel pipelines).
package goroleak

import (
	"context"
	"sync"
)

// spin never terminates; launching it is the leak the analyzer hunts.
func spin() {
	for {
	}
}

// startSpin leaks through the call graph: the launched body is spin's
// declaration, resolved interprocedurally.
func startSpin() {
	go spin()
}

// startSend leaks on an unbuffered send nobody receives: the goroutine
// blocks forever holding its captured references.
func startSend() {
	done := make(chan struct{})
	go func() {
		done <- struct{}{}
	}()
}

// startRecv leaks on a receive with no visible send or close.
func startRecv(stop chan struct{}) {
	go func() {
		<-stop
	}()
}

// startRange leaks ranging over a channel no one closes.
func startRange(in chan int) {
	go func() {
		for range in {
		}
	}()
}

// startWorkers is WaitGroup-paired: every worker Dones a group the
// launcher Adds to (true negative — the parallel.Map shape).
func startWorkers(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// drain Dones through a parameter; the pairing is matched via the
// launch-site argument (true negative, interprocedural).
func drain(wg *sync.WaitGroup) {
	defer wg.Done()
}

// startDrain launches a named callee whose WaitGroup parameter is the
// launcher's Added group (true negative).
func startDrain() {
	var wg sync.WaitGroup
	wg.Add(1)
	go drain(&wg)
	wg.Wait()
}

// startBuffered sends its one result into a buffered channel the
// launcher receives from — the lsdserve errc shape (true negative).
func startBuffered() error {
	errc := make(chan error, 1)
	go func() {
		errc <- work()
	}()
	return <-errc
}

func work() error { return nil }

// startCtxBounded loops forever but observes ctx.Done(), so request
// cancellation ends it (true negative).
func startCtxBounded(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
}

// startPipeline ranges over a channel the launcher visibly closes
// (true negative).
func startPipeline(items []int) {
	ch := make(chan int)
	go func() {
		for range ch {
		}
	}()
	for _, v := range items {
		ch <- v
	}
	close(ch)
}

// startDaemon runs for the life of the process by design (suppressed).
func startDaemon() {
	//lint:ignore goroleak process-lifetime daemon; exits with the process
	go func() {
		for {
		}
	}()
}
