// Package poolescape exercises the poolescape analyzer: values
// acquired from sync.Pool.Get or `// lint:scratch` accessors must be
// released back to the pool and must not escape the acquiring
// function.
package poolescape

import "sync"

type scorer struct {
	pool  sync.Pool
	keep  []float64
	saved map[string][]float64
}

// getScratch hands out a pooled dense buffer.
//
// lint:scratch
func (s *scorer) getScratch(n int) []float64 {
	if b, ok := s.pool.Get().(*[]float64); ok && cap(*b) >= n {
		return (*b)[:n]
	}
	return make([]float64, n)
}

// putScratch zeroes and returns a buffer to the pool: a releasing
// helper the release rule recognizes through the call graph.
func (s *scorer) putScratch(b []float64) {
	for i := range b {
		b[i] = 0
	}
	s.pool.Put(&b)
}

// goodUse acquires, uses, and releases (true negative).
func (s *scorer) goodUse(n int) float64 {
	buf := s.getScratch(n)
	buf[0] = 1
	total := buf[0]
	s.putScratch(buf)
	return total
}

// badLeak acquires and drops the buffer without releasing it.
func (s *scorer) badLeak(n int) {
	buf := s.getScratch(n) // want: never released
	buf[0] = 1
}

// badReturn hands the pooled buffer to the caller without declaring
// itself an accessor: the silent hand-off is the finding.
func (s *scorer) badReturn(n int) []float64 {
	buf := s.getScratch(n)
	return buf // want: returned without lint:scratch
}

// badField parks the pooled buffer in a struct field.
func (s *scorer) badField(n int) {
	buf := s.getScratch(n)
	s.keep = buf // want: stored into receiver state
}

// badGo hands the pooled buffer to a goroutine that may outlive the
// request.
func (s *scorer) badGo(n int) {
	buf := s.getScratch(n)
	go func() {
		buf[0] = 1
	}() // want: captured by goroutine
	s.putScratch(buf)
}

// stash keeps a reference beyond the call; its mutation/escape summary
// records the parameter escaping into receiver state.
func (s *scorer) stash(key string, b []float64) {
	s.saved[key] = b
}

// badCallee passes the pooled buffer to a helper that stashes it — the
// interprocedural true positive.
func (s *scorer) badCallee(n int) {
	buf := s.getScratch(n)
	s.stash("k", buf) // want: escapes via stash
	s.putScratch(buf)
}

// viaHelper returns pooled memory it acquired from getScratch; the
// annotation declares the hand-off deliberate, so the return is its
// job, not a finding.
//
// lint:scratch
func (s *scorer) viaHelper(n int) []float64 {
	return s.getScratch(n)
}

// badFromHelper acquires through the derived accessor and never
// releases.
func (s *scorer) badFromHelper(n int) float64 {
	buf := s.viaHelper(n) // want: never released
	return buf[0]
}

// badDirect uses sync.Pool.Get without any accessor and lets the value
// escape into a package-level variable.
var spill []float64

func badDirect(p *sync.Pool) {
	buf := p.Get().(*[]float64)
	spill = *buf // want: stored into package-level spill
	p.Put(buf)
}

// tolerated carries a justified suppression on the acquisition.
func (s *scorer) tolerated(n int) {
	//lint:ignore poolescape fixture exercises suppression
	buf := s.getScratch(n)
	_ = buf
}
