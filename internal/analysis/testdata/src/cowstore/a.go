// Package cowstore exercises the cowstore analyzer: values published
// through atomic.Pointer.Store are frozen after publication, and Load
// snapshots are read-only.
package cowstore

import "sync/atomic"

type model struct {
	name string
	rank int
}

type registry struct {
	models atomic.Pointer[map[string]*model]
}

// goodPublish builds the next map, publishes it, and stops writing:
// the intended copy-on-write window (true negative).
func (r *registry) goodPublish(m *model) {
	cur := r.models.Load()
	next := make(map[string]*model, len(*cur)+1)
	for k, v := range *cur {
		next[k] = v
	}
	next[m.name] = m
	r.models.Store(&next)
}

// badPublish keeps writing after Store.
func (r *registry) badPublish(m *model) {
	next := map[string]*model{}
	r.models.Store(&next)
	next[m.name] = m // want: write after publication
}

// insert writes into the map it is handed; its mutation summary is how
// the interprocedural case sees the write.
func insert(ms map[string]*model, m *model) {
	ms[m.name] = m
}

// badHelper launders the post-publication write through a callee — the
// interprocedural true positive.
func (r *registry) badHelper(m *model) {
	next := map[string]*model{}
	r.models.Store(&next)
	insert(next, m) // want: callee mutates published value
}

// badSnapshot mutates a loaded snapshot in place.
func (r *registry) badSnapshot(m *model) {
	cur := *r.models.Load()
	cur[m.name] = m // want: snapshot write
}

// badSnapshotDirect writes through the Load expression itself.
func (r *registry) badSnapshotDirect(m *model) {
	(*r.models.Load())[m.name] = m // want: write through Load
}

// lookup returns a value out of the snapshot: a snapshot accessor, so
// its callers inherit the read-only contract.
func (r *registry) lookup(name string) *model {
	return (*r.models.Load())[name]
}

// badViaAccessor mutates the snapshot-derived value a helper returned.
func (r *registry) badViaAccessor(name string) {
	m := r.lookup(name)
	m.rank = 1 // want: snapshot-derived write
}

// badRangedValue mutates a value reached by ranging over the snapshot.
func (r *registry) badRangedValue() {
	for _, v := range *r.models.Load() {
		v.rank++ // want: ranged snapshot value
	}
}

// goodRead reads the snapshot and copies what it needs (true
// negative).
func (r *registry) goodRead(name string) model {
	if m := r.lookup(name); m != nil {
		return *m
	}
	return model{}
}

// tolerated patches a just-published map during single-goroutine
// startup, before the registry is visible to any reader; the
// suppression documents why that is safe here.
func (r *registry) tolerated(m *model) {
	next := map[string]*model{}
	r.models.Store(&next)
	//lint:ignore cowstore fixture exercises suppression
	next[m.name] = m
}
