// Package boundedread exercises the boundedread analyzer: lengths
// read from the wire must pass a relational bounds check before they
// reach make or io.ReadFull, including through callee parameters.
package boundedread

import (
	"bytes"
	"io"
)

type reader struct {
	src io.Reader
	buf []byte
}

func (r *reader) uvarint() uint64 {
	if len(r.buf) == 0 {
		return 0
	}
	v := uint64(r.buf[0])
	r.buf = r.buf[1:]
	return v
}

// decodeBad allocates straight from the wire: a corrupt input picks
// the allocation size.
func decodeBad(r *reader) []uint64 {
	n := r.uvarint()
	return make([]uint64, n)
}

// decodeIndirect launders the unchecked length through a helper; the
// violation is only visible once alloc's parameter is known to reach
// make.
func decodeIndirect(r *reader) []byte {
	n := r.uvarint()
	return alloc(int(n))
}

func alloc(n int) []byte {
	return make([]byte, n)
}

// decodeGood bounds-checks against the remaining input before
// allocating (true negative).
func decodeGood(r *reader) []uint64 {
	n := r.uvarint()
	if n > uint64(len(r.buf)) {
		return nil
	}
	return make([]uint64, n)
}

// decodeCheckedHelper is clean for the same reason interprocedurally:
// alloc is only a sink for unchecked values, and this one was checked
// first (true negative).
func decodeCheckedHelper(r *reader) []byte {
	n := r.uvarint()
	if n > 1024 {
		return nil
	}
	return alloc(int(n))
}

// decodeReadFull slices a fixed buffer by an unchecked wire length
// and hands it to io.ReadFull.
func decodeReadFull(r *reader) []byte {
	n := r.uvarint()
	buf := make([]byte, 64)
	if _, err := io.ReadFull(r.src, buf[:n]); err != nil {
		return nil
	}
	return buf
}

// decodeTrusted reads from a buffer this process just encoded, so the
// length is trusted end-to-end; the unchecked make is deliberate.
func decodeTrusted(data []byte) []byte {
	r := &reader{src: bytes.NewReader(nil), buf: data}
	n := r.uvarint()
	//lint:ignore boundedread length comes from an in-process round-trip buffer, not untrusted input
	return make([]byte, n)
}
