// Package hotalloc exercises the hotalloc analyzer: functions
// transitively reachable from a `// lint:hot` root must avoid casual
// allocation — fmt formatting, map allocation, and unhinted
// append-in-loop growth.
package hotalloc

import "fmt"

type scorer struct {
	scratch []float64
	cache   map[string]float64
}

// Predict scores each key. It reuses the caller-owned scratch buffer,
// so its own append is capacity-hinted and clean; the findings live
// in the helpers it reaches.
//
// lint:hot
func (s *scorer) Predict(keys []string) []float64 {
	out := s.scratch[:0]
	for _, k := range keys {
		out = append(out, s.tally(k))
	}
	return out
}

// tally is reachable from the hot root only through Predict, so every
// finding in it is interprocedural.
func (s *scorer) tally(k string) float64 {
	key := fmt.Sprintf("k:%s", k)
	seen := make(map[string]bool)
	seen[key] = true
	w := map[string]float64{"a": 1}
	var parts []string
	for i := 0; i < 3; i++ {
		parts = append(parts, key)
	}
	s.insert(key, w["a"])
	return float64(len(parts)) + float64(len(seen))
}

// insert backs the prediction cache; the map allocation happens once
// on the first miss and is deliberate.
func (s *scorer) insert(k string, v float64) {
	if s.cache == nil {
		//lint:ignore hotalloc cache backing map is allocated once on first miss, then reused
		s.cache = make(map[string]float64, 8)
	}
	s.cache[k] = v
}

// presized appends in a loop into a capacity-hinted destination
// (true negative); reachable from the root.
func presized(n int) []int {
	out := make([]int, 0, 16)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// Warm is hot too, to prove multiple roots merge in diagnostics: it
// reaches tally through its own path.
//
// lint:hot
func (s *scorer) Warm(keys []string) {
	for _, k := range keys {
		_ = s.tally(k)
	}
	_ = presized(len(keys))
}

// grow appends through its pointer argument; its mutation summary
// carries the in-place growth to every call site.
func grow(dst *[]float64, v float64) {
	*dst = append(*dst, v)
}

// push grows the receiver's scratch slice.
func (s *scorer) push(v float64) {
	s.scratch = append(s.scratch, v)
}

// Accumulate is hot and launders loop growth through helpers: the
// unhinted destinations are findings, the pre-sized one is not.
//
// lint:hot
func (s *scorer) Accumulate(xs []float64) []float64 {
	var buf []float64
	for _, x := range xs {
		grow(&buf, x) // unhinted: regrows through the helper
	}
	hinted := make([]float64, 0, len(xs))
	for _, x := range xs {
		grow(&hinted, x) // pre-sized: true negative
	}
	for _, x := range xs {
		s.push(x) // receiver scratch regrows every call
	}
	return append(buf, hinted...)
}

// describe allocates freely but is not reachable from any hot root
// (true negative).
func describe(n int) string {
	return fmt.Sprintf("n=%d", n)
}

var _ = describe(0)
