// Package errflow exercises the errflow analyzer: in code reachable
// from an HTTP handler or from the artifact codec roots, errors from
// io/json/artifact/parallel calls must be checked, returned, or
// explicitly suppressed. The true positives mirror the real serve-path
// defect (`responses, _ := parallel.Map(...)`) and the classic dropped
// Encode; the negatives show every accepted consumption shape.
package errflow

import (
	"context"
	"encoding/json"
	"io"
	"net/http"

	"repro/internal/parallel"
)

// handleDrop drops the Encode result — and its error — on the floor.
func handleDrop(w http.ResponseWriter, r *http.Request) {
	enc := json.NewEncoder(w)
	enc.Encode(map[string]int{"a": 1})
}

// handleBlank blank-discards a Marshal error.
func handleBlank(w http.ResponseWriter, r *http.Request) {
	out, _ := json.Marshal(r.URL.Query())
	w.Write(out)
}

// handleFan reproduces the pre-fix serve bug: the pool's cancellation
// error vanishes into the blank identifier.
func handleFan(w http.ResponseWriter, r *http.Request) {
	out, _ := parallel.Map(r.Context(), 2, 2,
		func(_ context.Context, i int) (int, error) { return i, nil })
	if len(out) == 2 {
		w.WriteHeader(http.StatusOK)
	}
}

// handleShelved parks the error in a variable and then only
// blank-discards it.
func handleShelved(w http.ResponseWriter, r *http.Request) {
	err := json.NewEncoder(w).Encode("x")
	_ = err
}

// decodeInto is request-reachable only through its caller; the blank
// discard is found via the reachability substrate, not the shape of
// the function itself.
func decodeInto(r *http.Request, v *struct{}) {
	_ = json.NewDecoder(r.Body).Decode(v)
}

// handleIndirect makes decodeInto request-reachable.
func handleIndirect(w http.ResponseWriter, r *http.Request) {
	var v struct{}
	decodeInto(r, &v)
}

// decodeState is the codec root: errflow's scope is handlers plus the
// artifact codec paths.
//
// lint:codec decode
func decodeState(r io.Reader) {
	header := make([]byte, 8)
	io.ReadFull(r, header)
	body := make([]byte, 16)
	if n, err := readAll(r, body); err != nil || n != len(body) {
		return
	}
}

// readAll returns the producer's error to its caller (true negative,
// codec-reachable).
func readAll(r io.Reader, buf []byte) (int, error) {
	return io.ReadFull(r, buf)
}

// handleChecked checks the error on the spot (true negative).
func handleChecked(w http.ResponseWriter, r *http.Request) {
	if err := json.NewEncoder(w).Encode("ok"); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleForwarded hands the error to another consumer (true negative).
func handleForwarded(w http.ResponseWriter, r *http.Request) {
	_, err := json.Marshal(r.URL.Query())
	logErr(err)
}

func logErr(error) {}

// offPath drops an error outside errflow's scope: not reachable from
// any handler or codec root (true negative).
func offPath(v any) {
	data, _ := json.Marshal(v)
	_ = data
}

// handleNotify fires a best-effort notification after the response is
// committed (suppressed).
func handleNotify(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusAccepted)
	//lint:ignore errflow the notification is best-effort; the response status is already written
	_ = json.NewEncoder(w).Encode("bye")
}
