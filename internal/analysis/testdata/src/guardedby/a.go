// Package fixtures exercises the guardedby analyzer: true positives
// in the Bad* methods and badTag, true negatives in the Good* methods.
package fixtures

import "sync"

type cacheBox struct {
	mu   sync.RWMutex
	data map[string]string // guarded by mu
	n    int               // untagged: never checked
}

func (b *cacheBox) Good(k string) string {
	b.mu.RLock()
	v := b.data[k]
	b.mu.RUnlock()
	return v
}

func (b *cacheBox) GoodDefer(k, v string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.data[k] = v
}

func (b *cacheBox) Bad(k string) string {
	return b.data[k] // no lock at all
}

func (b *cacheBox) BadAfterUnlock(k string) string {
	b.mu.Lock()
	b.mu.Unlock()
	return b.data[k] // lock already released
}

func (b *cacheBox) Untagged() int {
	return b.n // untagged fields are not checked
}

func (b *cacheBox) Suppressed(k string) string {
	//lint:ignore guardedby fixture demonstrating a justified suppression
	return b.data[k]
}

type badTag struct {
	data map[string]string // guarded by lock
}

func (t *badTag) Get(k string) string { return t.data[k] }
