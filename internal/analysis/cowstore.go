package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CowStore enforces the publish-then-freeze contract on the serve
// registry's copy-on-write snapshots: a value published through
// atomic.Pointer.Store is read concurrently, without locks, by every
// in-flight request, so it must be fully constructed before Store and
// never written afterwards — and the mirror obligation holds on the
// read side: a snapshot obtained from atomic.Pointer.Load is shared
// with every other reader and must never be mutated, only copied.
//
// Three rules:
//
//   - after Store(&x): no write rooted at x (element assignment,
//     delete, append growth) may follow the publication, directly or
//     via a callee whose mutation summary (mutsum.go) writes that
//     parameter — the interprocedural case. Construction writes before
//     Store are the intended copy-on-write window.
//   - Load snapshots: a value tracked to atomic.Pointer.Load — or
//     returned by a helper whose result derives from one, like the
//     registry's Get — must not be written through, directly or via a
//     mutating callee.
//   - writes through the Load expression itself
//     ((*p.Load())[k] = v) are always findings.
//
// The after-Store check is source-position based: a Store inside a
// loop followed textually by a write above it is out of scope (none
// exist in this tree; the registry's Set/Drop publish last).
var CowStore = &Analyzer{
	Name: "cowstore",
	Doc:  "values published via atomic.Pointer.Store are frozen; Load snapshots are read-only",
	Run:  runCowStore,
}

func runCowStore(pass *Pass) {
	sources := snapshotSources(pass.Prog)
	sums := MutSummaries(pass.Prog)
	for _, d := range pass.Prog.Decls() {
		if d.Pkg.Pkg != pass.Pkg {
			continue
		}
		if sources[d.Fn] {
			continue // a snapshot accessor hands the snapshot out; its callers are checked
		}
		checkCowStore(pass, d, sources, sums)
	}
}

// isAtomicPointerStore reports whether call invokes Store on a
// sync/atomic Pointer receiver.
func isAtomicPointerStore(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal || selection.Obj().Name() != "Store" {
		return false
	}
	named := namedOf(selection.Recv())
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pointer" && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// snapshotSources computes (once per program, cached) the functions
// whose return value derives from an atomic.Pointer.Load — snapshot
// accessors like the registry's Get — closed to fixpoint so helpers
// layered on accessors count too.
func snapshotSources(prog *Program) map[*types.Func]bool {
	return prog.Cache("cowstore.sources", func() any {
		src := make(map[*types.Func]bool)
		for changed := true; changed; {
			changed = false
			for _, d := range prog.Decls() {
				if src[d.Fn] {
					continue
				}
				info := d.Pkg.Info
				if returnsDerivedFrom(d, func(call *ast.CallExpr) bool {
					if isAtomicPointerLoad(info, call) {
						return true
					}
					fn := staticOrIfaceCallee(info, call)
					return fn != nil && src[fn]
				}) {
					src[d.Fn] = true
					changed = true
				}
			}
		}
		return src
	}).(map[*types.Func]bool)
}

// checkCowStore verifies one function against both halves of the
// contract.
func checkCowStore(pass *Pass, d *FuncDecl, sources map[*types.Func]bool, sums map[*types.Func]*MutSummary) {
	info := d.Pkg.Info

	// published maps each variable published via Store(&x) (or
	// Store(x)) to the position of its earliest publication.
	published := make(map[*types.Var]token.Pos)
	ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicPointerStore(info, call) || len(call.Args) == 0 {
			return true
		}
		p := peelRef(info, call.Args[0])
		if v, ok := p.obj.(*types.Var); ok {
			if prev, have := published[v]; !have || call.Pos() < prev {
				published[v] = call.Pos()
			}
		}
		return true
	})

	// snapshots are the variables holding Load results (or values from
	// snapshot-accessor helpers), read-only from birth.
	snapshots := trackedVars(d, func(call *ast.CallExpr) (string, bool) {
		if isAtomicPointerLoad(info, call) {
			return "atomic.Pointer.Load", true
		}
		if fn := staticOrIfaceCallee(info, call); fn != nil && sources[fn] {
			return funcDisplayName(fn), true
		}
		return "", false
	})

	// frozen classifies a write root: published-and-past-publication or
	// a snapshot. No early-out on empty published/snapshots sets: the
	// in-place case ((*p.Load())[k] = v) needs neither. The second
	// result is the tracked path inside the root ("" except for
	// container-tracked snapshots); call sites compare it against the
	// peeled path to separate mutating the frozen value from replacing
	// a container slot that merely held it.
	frozen := func(p peeled, pos token.Pos) (string, string, bool) {
		v, ok := p.obj.(*types.Var)
		if !ok {
			if p.call != nil && isAtomicPointerLoad(info, p.call) {
				return "the snapshot loaded in place from atomic.Pointer.Load", "", true
			}
			return "", "", false
		}
		if storePos, ok := published[v]; ok && pos > storePos {
			return v.Name() + ", already published via atomic.Pointer.Store", "", true
		}
		if ti, ok := snapshots[v]; ok {
			return v.Name() + ", a shared snapshot obtained from " + ti.desc, ti.path, true
		}
		return "", "", false
	}

	reportWrite := func(pos token.Pos, what string) {
		pass.Reportf(pos,
			"writes to %s; published snapshots are frozen — build a fresh copy, then Store it",
			what)
	}

	ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				p := peelRef(info, lhs)
				if !p.indirect {
					continue
				}
				if what, tiPath, ok := frozen(p, lhs.Pos()); ok && pathMutates(p.path, tiPath) {
					reportWrite(lhs.Pos(), what)
				}
			}
		case *ast.IncDecStmt:
			p := peelRef(info, n.X)
			if p.indirect {
				if what, tiPath, ok := frozen(p, n.X.Pos()); ok && pathMutates(p.path, tiPath) {
					reportWrite(n.X.Pos(), what)
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					if (b.Name() == "delete" || b.Name() == "copy") && len(n.Args) > 0 {
						p := peelRef(info, n.Args[0])
						if what, tiPath, ok := frozen(p, n.Pos()); ok && strings.HasPrefix(p.path, tiPath) {
							reportWrite(n.Pos(), what)
						}
					}
					return true
				}
			}
			// Interprocedural: passing a frozen value to a callee whose
			// summary mutates that parameter.
			callee, slotArgs := calleeSlotArgs(info, n)
			if callee == nil {
				return true
			}
			sum := sums[callee]
			if sum == nil {
				return true
			}
			for j, args := range slotArgs {
				paths := sum.Mutates(j)
				if len(paths) == 0 {
					continue
				}
				for _, arg := range args {
					p := peelRef(info, arg)
					if !p.addrOf && !isRefType(info.TypeOf(arg)) {
						continue
					}
					what, tiPath, ok := frozen(p, arg.Pos())
					if !ok {
						continue
					}
					hit := calleeMutationHit(paths, p.path, tiPath)
					if hit == "" {
						continue
					}
					pass.Reportf(arg.Pos(),
						"passes %s to %s, which mutates it (%s); published snapshots are frozen — build a fresh copy, then Store it",
						what, funcDisplayName(callee), hit)
				}
			}
		}
		return true
	})
}
