package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// GuardedBy enforces `// guarded by <mutex>` struct-field tags: every
// method of the struct that reads or writes a tagged field must hold
// the named sync.Mutex/RWMutex on a syntactic lock path — a
// Lock/RLock call strictly before the access with no intervening
// non-deferred Unlock/RUnlock, in source order within the method body.
// This is the predict-path cache class PR 1 fixed by hand in whirl and
// the ensemble labeler: unsynchronized reads of a lazily filled cache
// race under the parallel match/CV fan-out.
//
// The check is deliberately syntactic (per-method, source order,
// function literals skipped): it cannot prove lock correctness, but it
// makes "touched the cache without taking the lock" impossible to
// reintroduce silently.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "enforces `// guarded by <mutex>` field tags on a syntactic lock path",
	Run:  runGuardedBy,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardedField records one tagged field of a struct.
type guardedField struct {
	structName string
	field      string
	mutex      string
}

func runGuardedBy(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recvName, structName := receiverInfo(fd)
			if recvName == nil {
				continue
			}
			for _, g := range guards[structName] {
				checkMethod(pass, fd, recvName, g)
			}
		}
	}
}

// collectGuards scans struct declarations for tagged fields, validates
// the named mutex, and returns the guards per struct name.
func collectGuards(pass *Pass) map[string][]guardedField {
	guards := make(map[string][]guardedField)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := make(map[string]*ast.Field)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					fieldNames[name.Name] = f
				}
			}
			for _, f := range st.Fields.List {
				mutex := guardTag(f)
				if mutex == "" {
					continue
				}
				mf, ok := fieldNames[mutex]
				if !ok || !isMutexField(pass, mf) {
					pass.Reportf(f.Pos(),
						"guarded-by tag names %q, which is not a sync.Mutex/RWMutex field of %s", mutex, ts.Name.Name)
					continue
				}
				for _, name := range f.Names {
					guards[ts.Name.Name] = append(guards[ts.Name.Name], guardedField{
						structName: ts.Name.Name,
						field:      name.Name,
						mutex:      mutex,
					})
				}
			}
			return true
		})
	}
	return guards
}

// guardTag extracts the mutex name from a field's doc or trailing
// comment, or returns "".
func guardTag(f *ast.Field) string {
	for _, group := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if group == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(group.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// isMutexField reports whether the field's type is sync.Mutex or
// sync.RWMutex (directly or behind one pointer).
func isMutexField(pass *Pass, f *ast.Field) bool {
	t := pass.Info.TypeOf(f.Type)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// receiverInfo returns the receiver identifier and the base struct
// type name of a method, or (nil, "").
func receiverInfo(fd *ast.FuncDecl) (*ast.Ident, string) {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil, ""
	}
	recv := fd.Recv.List[0].Names[0]
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers (Name[T]) do not occur in this repo; a plain
	// identifier is the only supported shape.
	id, ok := t.(*ast.Ident)
	if !ok {
		return nil, ""
	}
	return recv, id.Name
}

// lockEvent is one ordered lock/unlock/access occurrence in a method.
type lockEvent struct {
	pos  token.Pos
	kind int // +1 lock, -1 unlock, 0 access
}

// checkMethod replays the method's lock/unlock/access events in source
// order and reports accesses made while the guard depth is zero.
func checkMethod(pass *Pass, fd *ast.FuncDecl, recv *ast.Ident, g guardedField) {
	recvObj := pass.Info.Defs[recv]
	if recvObj == nil {
		return
	}
	var events []lockEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Lock state inside closures is not tracked; skipping keeps
			// the check syntactic rather than wrong.
			return false
		case *ast.DeferStmt:
			// A deferred Unlock releases at function exit, not at its
			// syntactic position, so it must not clear the guard depth:
			// skip the deferred mutex call entirely.
			if mutexCallKind(pass, n.Call, recvObj, g.mutex) != 0 {
				return false
			}
			return true
		case *ast.CallExpr:
			if kind := mutexCallKind(pass, n, recvObj, g.mutex); kind != 0 {
				events = append(events, lockEvent{n.Pos(), kind})
				return false
			}
			return true
		case *ast.SelectorExpr:
			if n.Sel.Name == g.field {
				if obj := identObj(pass, n.X); obj != nil && obj == recvObj {
					events = append(events, lockEvent{n.Pos(), 0})
				}
			}
			return true
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	depth := 0
	for _, e := range events {
		switch {
		case e.kind != 0:
			depth += e.kind
		case depth <= 0:
			pass.Reportf(e.pos,
				"%s.%s is tagged `// guarded by %s` but is accessed without %s held on this path",
				g.structName, g.field, g.mutex, g.mutex)
		}
	}
}

// mutexCallKind classifies a call as +1 (recv.mutex.Lock/RLock),
// -1 (recv.mutex.Unlock/RUnlock), or 0 (anything else).
func mutexCallKind(pass *Pass, call *ast.CallExpr, recvObj types.Object, mutex string) int {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != mutex {
		return 0
	}
	if obj := identObj(pass, inner.X); obj == nil || obj != recvObj {
		return 0
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return 1
	case "Unlock", "RUnlock":
		return -1
	}
	return 0
}
