package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeedFlow enforces the repo's seeding discipline (PR 1): every
// math/rand.NewSource seed must be either a compile-time constant or
// derived through learn.DeriveSeed, so parallel tasks get independent,
// reproducible streams instead of ad-hoc affine combinations that can
// collide or correlate. It also flags *rand.Rand values captured by
// go-launched function literals: goroutines sharing one Rand race on
// its internal state and consume from it in scheduling order, which
// breaks bit-identical output across worker counts.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc:  "flags non-constant, non-DeriveSeed RNG seeds and *rand.Rand captured by goroutines",
	Run:  runSeedFlow,
}

func runSeedFlow(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isPkgFunc(pass, n.Fun, "math/rand", "NewSource") && len(n.Args) == 1 {
					checkSeedArg(pass, n.Args[0])
				}
			case *ast.GoStmt:
				if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkRandCapture(pass, fl)
				}
			}
			return true
		})
	}
}

func checkSeedArg(pass *Pass, arg ast.Expr) {
	arg = ast.Unparen(arg)
	if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil {
		return // compile-time constant
	}
	if call, ok := arg.(*ast.CallExpr); ok && isDeriveSeed(pass, call.Fun) {
		return
	}
	pass.Reportf(arg.Pos(),
		"rand.NewSource seed is neither a constant nor derived via learn.DeriveSeed; ad-hoc seed arithmetic can collide or correlate parallel streams")
}

// isDeriveSeed reports whether fun resolves to DeriveSeed in a package
// whose import path ends in "internal/learn" (the repo's seed-derivation
// helper; matched by suffix so analyzer fixtures under testdata can
// import it through their own path).
func isDeriveSeed(pass *Pass, fun ast.Expr) bool {
	obj := calleeObj(pass, fun)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != "DeriveSeed" || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == "repro/internal/learn" || strings.HasSuffix(path, "/internal/learn")
}

func checkRandCapture(pass *Pass, fl *ast.FuncLit) {
	reported := make(map[types.Object]bool)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || reported[v] || !isRandRandPtr(v.Type()) {
			return true
		}
		// Declared outside the literal = captured from the enclosing
		// scope; locals created inside the goroutine are fine.
		if v.Pos() >= fl.Pos() && v.Pos() < fl.End() {
			return true
		}
		reported[v] = true
		pass.Reportf(id.Pos(),
			"*rand.Rand %q captured by go-launched function literal; goroutines sharing a Rand race on its state — seed a local Rand with learn.DeriveSeed instead", v.Name())
		return true
	})
}

// isRandRandPtr reports whether t is *math/rand.Rand.
func isRandRandPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rand" && obj.Pkg() != nil && obj.Pkg().Path() == "math/rand"
}

// isPkgFunc reports whether fun resolves to the named package-level
// function of the package with the given import path.
func isPkgFunc(pass *Pass, fun ast.Expr, pkgPath, name string) bool {
	fn, ok := calleeObj(pass, fun).(*types.Func)
	return ok && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// calleeObj resolves a call's Fun expression to its object, looking
// through parens and selectors.
func calleeObj(pass *Pass, fun ast.Expr) types.Object {
	switch fun := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		return pass.Info.Uses[fun.Sel]
	}
	return nil
}
