package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path the package was loaded under.
	Path string
	// Fset is the file set shared by every package of the Loader.
	Fset *token.FileSet
	// Pkg and Info are the go/types results.
	Pkg  *types.Package
	Info *types.Info
	// Files are the parsed non-test source files, with comments.
	Files []*ast.File
	// Sources maps each file name to its raw bytes (the //lint:ignore
	// engine needs them to tell standalone from trailing comments).
	Sources map[string][]byte
}

// Loader loads and type-checks packages of one module using only the
// standard library: module-local imports are resolved by mapping the
// import path onto the module directory tree, and standard-library
// imports are type-checked from GOROOT source via go/importer's
// "source" compiler. Loaded packages are cached, so shared
// dependencies are checked once.
type Loader struct {
	// Fset is shared by all files the loader touches, including
	// standard-library sources, so every token.Pos stays resolvable.
	Fset *token.FileSet

	root    string // module root directory (holds go.mod)
	modpath string // module path declared in go.mod
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at root with the
// given module path.
func NewLoader(root, modpath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		root:    root,
		modpath: modpath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, modpath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			modpath = parseModulePath(data)
			if modpath == "" {
				return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
			}
			return dir, modpath, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func parseModulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// ModulePackages enumerates every package directory in the module, in
// sorted import-path order. testdata, vendor, hidden, and
// underscore-prefixed directories are skipped (matching the go tool's
// ./... semantics).
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.modpath)
		} else {
			paths = append(paths, l.modpath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// goFilesIn lists the non-test .go files of dir, sorted.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Packages returns every module package the loader has loaded so far
// (requested packages and their module-local dependencies), sorted by
// import path so program construction is deterministic.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, pkg := range l.pkgs {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Load parses and type-checks the package at the given import path,
// which must be the module path or below it. Results are cached.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.root
	if path != l.modpath {
		rel, ok := strings.CutPrefix(path, l.modpath+"/")
		if !ok {
			return nil, fmt.Errorf("%s is outside module %s", path, l.modpath)
		}
		dir = filepath.Join(l.root, filepath.FromSlash(rel))
	}
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	pkg := &Package{
		Path:    path,
		Fset:    l.Fset,
		Sources: make(map[string][]byte, len(names)),
	}
	for _, name := range names {
		filename := filepath.Join(dir, name)
		src, err := os.ReadFile(filename)
		if err != nil {
			return nil, err
		}
		file, err := parser.ParseFile(l.Fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Sources[filename] = src
		pkg.Files = append(pkg.Files, file)
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := &types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := cfg.Check(path, l.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, err
	}
	pkg.Pkg = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

// loaderImporter routes module-local import paths back through the
// Loader and everything else to the standard-library source importer.
type loaderImporter Loader

func (i *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(i)
	if path == l.modpath || strings.HasPrefix(path, l.modpath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.Import(path)
}
