package analysis

import (
	"go/ast"
	"go/types"
)

// GoroLeak demands a visible termination path for every go statement:
// a goroutine that outlives its request (or the process phase that
// spawned it) holds its stack, its captured references, and — in the
// serve path — a worker slot, forever. The analyzer accepts any of
// three witnesses:
//
//   - WaitGroup pairing: the goroutine calls Done on a sync.WaitGroup
//     the launching function Adds to (directly, or through a parameter
//     of a named callee resolved via the call graph).
//   - Matched channels: every channel send has a visible receive in
//     the launching function or a nonzero buffer; receives and ranges
//     are matched by a visible send or close; selects carry a default
//     or a matched communication.
//   - Context bounds: an otherwise-unbounded loop observes
//     ctx.Done()/ctx.Err(), so cancellation ends it.
//
// The launched body is resolved through the whole-program view: `go
// f()` is checked against f's declaration, with channel and WaitGroup
// parameters substituted by the launch-site arguments. Loops with a
// condition or a data range are treated as bounded — the analyzer
// hunts leaks, not slow loops. Process-lifetime daemons suppress with
// //lint:ignore goroleak and a reason.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "every go statement needs a visible termination path (WaitGroup pairing, matched channels, or a context bound)",
	Run:  runGoroLeak,
}

// launched is a resolved goroutine body: its syntax, the type info of
// the package it is declared in, and the parameter→argument
// substitution for named callees (and parameterized literals).
type launched struct {
	body   *ast.BlockStmt
	info   *types.Info
	params []*types.Var
	args   []ast.Expr
}

// scope is one body the matcher may search for channel counterparts
// (the launching function, and the goroutine body itself).
type scope struct {
	node ast.Node
	info *types.Info
}

func runGoroLeak(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				l, ok := resolveLaunched(pass, g.Call)
				if !ok {
					pass.Reportf(g.Pos(), "goroutine body is not statically visible (dynamic call); no termination path can be checked")
					return true
				}
				scopes := []scope{{fd.Body, pass.Info}, {l.body, l.info}}
				if waitGroupPaired(l, fd.Body, pass.Info) {
					return true
				}
				if hazard := goroHazard(l, scopes); hazard != "" {
					pass.Reportf(g.Pos(), "goroutine has no visible termination path: %s; pair it with a WaitGroup, match its channels, or bound it with a context", hazard)
				}
				return true
			})
		}
	}
}

// resolveLaunched maps a go statement's call to the body that will
// run: a function literal's own body, or the declaration of a
// statically resolved callee with its parameters bound to the
// launch-site arguments.
func resolveLaunched(pass *Pass, call *ast.CallExpr) (launched, bool) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return launched{body: lit.Body, info: pass.Info, params: litParams(pass.Info, lit), args: call.Args}, true
	}
	callee := CalleeOf(pass.Info, call)
	if callee == nil {
		return launched{}, false
	}
	d := pass.Prog.DeclOf(callee)
	if d == nil {
		return launched{}, false
	}
	sig := callee.Type().(*types.Signature)
	params := make([]*types.Var, sig.Params().Len())
	for i := range params {
		params[i] = sig.Params().At(i)
	}
	return launched{body: d.Decl.Body, info: d.Pkg.Info, params: params, args: call.Args}, true
}

func litParams(info *types.Info, lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	if lit.Type.Params == nil {
		return nil
	}
	for _, field := range lit.Type.Params.List {
		for _, id := range field.Names {
			v, _ := info.Defs[id].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

// substitute maps an object that is a parameter of the launched body
// to the root object of the corresponding launch-site argument, so
// `go drain(&wg)` pairs with the launcher's wg.Add.
func (l launched) substitute(obj types.Object) types.Object {
	for i, p := range l.params {
		if p == obj && i < len(l.args) {
			// The outer info resolves the argument; for literals and
			// same-package callees they coincide, and for cross-package
			// callees the argument was resolved by the caller's info —
			// rootObj only needs Uses/Defs, which the shared file set
			// keeps consistent. Fall back to the object itself when the
			// argument has no identifier root.
			if sub := rootObj(l.info, l.args[i]); sub != nil {
				return sub
			}
		}
	}
	return obj
}

// rootObj resolves the identifier object an expression is rooted at:
// the variable of an ident, the field of a selector, through parens,
// unary &/*, and indexing.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.UnaryExpr:
		return rootObj(info, e.X)
	case *ast.StarExpr:
		return rootObj(info, e.X)
	case *ast.IndexExpr:
		return rootObj(info, e.X)
	}
	return nil
}

// waitGroupPaired reports whether the goroutine calls Done on a
// sync.WaitGroup the launching function Adds to.
func waitGroupPaired(l launched, launcherBody *ast.BlockStmt, launcherInfo *types.Info) bool {
	doneObjs := make(map[types.Object]bool)
	ast.Inspect(l.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv := waitGroupMethodRecv(l.info, call, "Done"); recv != nil {
			if obj := rootObj(l.info, recv); obj != nil {
				doneObjs[l.substitute(obj)] = true
			}
		}
		return true
	})
	if len(doneObjs) == 0 {
		return false
	}
	paired := false
	ast.Inspect(launcherBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv := waitGroupMethodRecv(launcherInfo, call, "Add"); recv != nil {
			if obj := rootObj(launcherInfo, recv); obj != nil && doneObjs[obj] {
				paired = true
			}
		}
		return true
	})
	return paired
}

// waitGroupMethodRecv returns the receiver expression when the call is
// <recv>.<name>() on a sync.WaitGroup.
func waitGroupMethodRecv(info *types.Info, call *ast.CallExpr, name string) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil
	}
	named := namedOf(selection.Recv())
	if named == nil {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "WaitGroup" || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return nil
	}
	return sel.X
}

// goroHazard scans the launched body for constructs that can block or
// spin forever without a visible counterpart, returning a description
// of the first one (or "" when every construct has a termination
// witness).
func goroHazard(l launched, scopes []scope) string {
	hazard := ""
	report := func(msg string) {
		if hazard == "" {
			hazard = msg
		}
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil || hazard != "" {
			return
		}
		ast.Inspect(n, func(n ast.Node) bool {
			if hazard != "" {
				return false
			}
			switch n := n.(type) {
			case *ast.GoStmt:
				return false // a nested goroutine is its own check
			case *ast.ForStmt:
				if n.Cond == nil && !mentionsCtxBound(l.info, n.Body) && !loopHasMatchedRecv(l, n.Body, scopes) {
					report("an unconditional for-loop never observes ctx.Done()/ctx.Err() or a closed channel")
					return false
				}
				return true // bounded (or ctx/channel-bounded): scan the body for channel hazards
			case *ast.RangeStmt:
				if _, ok := l.info.Types[n.X].Type.Underlying().(*types.Chan); ok {
					if !chanMatched(l, n.X, scopes, chanClosed) {
						report("ranges over a channel no one visibly closes")
						return false
					}
				}
				return true
			case *ast.SendStmt:
				if !chanMatched(l, n.Chan, scopes, chanReceivedOrBuffered) {
					report("sends on a channel with no visible receive or buffer")
					return false
				}
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					if !chanMatched(l, n.X, scopes, chanSentOrClosed) {
						report("receives from a channel with no visible send or close")
						return false
					}
				}
			case *ast.SelectStmt:
				if !selectHasExit(l, n, scopes) {
					report("selects with no default, context case, or matched communication")
					return false
				}
				// Case bodies are scanned; the comm clauses were judged
				// as a unit by selectHasExit.
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok {
						for _, stmt := range cc.Body {
							walk(stmt)
						}
					}
				}
				return false
			}
			return true
		})
	}
	walk(l.body)
	return hazard
}

// mentionsCtxBound reports whether the node calls Done or Err on a
// context.Context value — the loop can observe cancellation.
func mentionsCtxBound(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "Done" && name != "Err" {
			return true
		}
		if tv, ok := info.Types[sel.X]; ok {
			if named := namedOf(tv.Type); named != nil {
				obj := named.Obj()
				if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// loopHasMatchedRecv reports whether the unconditional loop contains a
// receive (or select receive case) on a channel with a visible send or
// close — a wake-up that can carry a shutdown signal.
func loopHasMatchedRecv(l launched, body ast.Node, scopes []scope) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
			if chanMatched(l, u.X, scopes, chanSentOrClosed) {
				found = true
			}
		}
		return true
	})
	return found
}

// selectHasExit reports whether a select statement has a visible way
// to proceed: a default clause, a receive on ctx.Done(), or at least
// one communication whose counterpart is visible.
func selectHasExit(l launched, sel *ast.SelectStmt, scopes []scope) bool {
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default: the select cannot block
		}
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			if chanMatched(l, comm.Chan, scopes, chanReceivedOrBuffered) {
				return true
			}
		default:
			// Receive: <-ch as a statement, or v := <-ch.
			var ch ast.Expr
			ast.Inspect(cc.Comm, func(n ast.Node) bool {
				if u, ok := n.(*ast.UnaryExpr); ok && u.Op.String() == "<-" && ch == nil {
					ch = u.X
				}
				return ch == nil
			})
			if ch == nil {
				continue
			}
			if mentionsCtxBound(l.info, cc.Comm) {
				return true
			}
			if chanMatched(l, ch, scopes, chanSentOrClosed) {
				return true
			}
		}
	}
	return false
}

// chanMatched resolves the channel expression to its root object
// (substituting launched parameters with launch-site arguments) and
// asks the matcher whether any scope shows the needed counterpart.
// Channels with no identifier root (call results like time.After) are
// optimistically accepted — there is nothing stable to match them on.
func chanMatched(l launched, ch ast.Expr, scopes []scope, match func(types.Object, []scope) bool) bool {
	obj := rootObj(l.info, ch)
	if obj == nil {
		return true
	}
	return match(l.substitute(obj), scopes)
}

// chanReceivedOrBuffered: a send terminates if some scope receives
// from the channel (unary receive, range, or select receive case) or
// the channel is assigned a make with a nonzero buffer.
func chanReceivedOrBuffered(obj types.Object, scopes []scope) bool {
	for _, s := range scopes {
		found := false
		ast.Inspect(s.node, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" && rootObj(s.info, n.X) == obj {
					found = true
				}
			case *ast.RangeStmt:
				if rootObj(s.info, n.X) == obj {
					if _, ok := s.info.Types[n.X].Type.Underlying().(*types.Chan); ok {
						found = true
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						if rootObj(s.info, lhs) == obj && isBufferedMake(s.info, n.Rhs[i]) {
							found = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if s.info.Defs[name] == obj && i < len(n.Values) && isBufferedMake(s.info, n.Values[i]) {
						found = true
					}
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// chanSentOrClosed: a receive (or range) terminates if some scope
// sends on or closes the channel.
func chanSentOrClosed(obj types.Object, scopes []scope) bool {
	for _, s := range scopes {
		found := false
		ast.Inspect(s.node, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.SendStmt:
				if rootObj(s.info, n.Chan) == obj {
					found = true
				}
			case *ast.CallExpr:
				if isCloseOf(s.info, n, obj) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// chanClosed: a range over the channel terminates only on close.
func chanClosed(obj types.Object, scopes []scope) bool {
	for _, s := range scopes {
		found := false
		ast.Inspect(s.node, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && isCloseOf(s.info, call, obj) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isCloseOf reports whether the call is close(<expr rooted at obj>).
func isCloseOf(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
		return false
	}
	return len(call.Args) == 1 && rootObj(info, call.Args[0]) == obj
}

// isBufferedMake reports whether the expression is make(chan T, n)
// with a buffer argument that is not the constant zero. A non-constant
// buffer is accepted optimistically — the author sized it for a
// reason.
func isBufferedMake(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	if _, ok := info.Types[call.Args[0]].Type.Underlying().(*types.Chan); !ok {
		return false
	}
	if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
		return false
	}
	return true
}
