package analysis

import (
	"go/ast"
	"go/types"
)

// SnapshotOnce enforces the copy-on-write registry's read contract:
// code reachable from an HTTP handler loads the atomic.Pointer
// snapshot at most once per request. A handler that (transitively)
// calls Load twice can observe two different registry generations in
// one request — exactly the torn-read class the hot-swap race hammer
// only probabilistically catches — so the fix is always to load once
// at the top and pass the snapshot down.
//
// Handlers are recognized by shape: a declared function or method
// taking (http.ResponseWriter, *http.Request) and returning nothing.
// Load counting is interprocedural over the static call graph with
// closure bodies included, and a Load inside a loop counts as many.
// Middleware that deliberately re-reads (e.g. a metrics wrapper
// comparing generations) suppresses with //lint:ignore snapshotonce.
var SnapshotOnce = &Analyzer{
	Name: "snapshotonce",
	Doc:  "HTTP handlers must load the atomic.Pointer registry snapshot at most once per request",
	Run:  runSnapshotOnce,
}

func runSnapshotOnce(pass *Pass) {
	totals := snapshotLoadTotals(pass.Prog)
	for _, d := range pass.Prog.Decls() {
		if d.Pkg.Pkg != pass.Pkg || !isHTTPHandlerShape(d.Fn) {
			continue
		}
		if totals[d.Fn] >= snapshotLoadCap {
			pass.Reportf(d.Decl.Pos(),
				"handler %s loads the registry atomic.Pointer snapshot 2 or more times per request; load once and pass the snapshot down",
				funcDisplayName(d.Fn))
		}
	}
}

// isHTTPHandlerShape reports whether fn has the http.HandlerFunc
// shape: exactly (http.ResponseWriter, *http.Request) parameters and
// no results.
func isHTTPHandlerShape(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 0 || sig.Params().Len() != 2 {
		return false
	}
	first, ok := sig.Params().At(0).Type().(*types.Named)
	if !ok || !isNetHTTPType(first.Obj(), "ResponseWriter") {
		return false
	}
	second, ok := sig.Params().At(1).Type().(*types.Pointer)
	if !ok {
		return false
	}
	elem, ok := second.Elem().(*types.Named)
	return ok && isNetHTTPType(elem.Obj(), "Request")
}

func isNetHTTPType(obj *types.TypeName, name string) bool {
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// snapshotLoadCap is where counting saturates: the analyzer only needs
// to distinguish "at most once" from "twice or more", and the cap
// keeps the interprocedural fixpoint finite under recursion.
const snapshotLoadCap = 2

// snapshotLoadTotals computes, for every declared function, a
// saturating count of atomic.Pointer Load calls it performs
// transitively. Counting is per call SITE, not per distinct callee —
// a handler that calls the same loading helper twice tears just as
// surely as one with two helpers — and a site inside a for/range loop
// saturates immediately, since one iteration per registry generation
// is all it takes. Closure bodies count toward the enclosing
// function. The fixpoint is monotone and capped, so recursion
// terminates.
func snapshotLoadTotals(prog *Program) map[*types.Func]int {
	return prog.Cache("snapshotonce.totals", func() any {
		totals := make(map[*types.Func]int, len(prog.decls))
		for changed := true; changed; {
			changed = false
			for fn, d := range prog.decls {
				if n := bodyLoadCount(d, totals); n > totals[fn] {
					totals[fn] = n
					changed = true
				}
			}
		}
		return totals
	}).(map[*types.Func]int)
}

// bodyLoadCount counts the Load calls one execution of the body can
// perform, given the current per-callee totals: direct
// atomic.Pointer.Load sites plus the running total of every
// statically resolved call site, saturating at snapshotLoadCap and
// treating loop bodies as executing many times.
func bodyLoadCount(d *FuncDecl, totals map[*types.Func]int) int {
	count := 0
	add := func(n int, inLoop bool) {
		if n == 0 {
			return
		}
		if inLoop {
			count = snapshotLoadCap
		} else {
			count += n
		}
		if count > snapshotLoadCap {
			count = snapshotLoadCap
		}
	}
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				walk(n.Init, inLoop)
				walk(n.Cond, inLoop)
				walk(n.Post, inLoop)
				walk(n.Body, true)
				return false
			case *ast.RangeStmt:
				walk(n.X, inLoop)
				walk(n.Body, true)
				return false
			case *ast.CallExpr:
				if isAtomicPointerLoad(d.Pkg.Info, n) {
					add(1, inLoop)
				} else if callee := CalleeOf(d.Pkg.Info, n); callee != nil {
					add(totals[callee], inLoop)
				}
			}
			return true
		})
	}
	walk(d.Decl.Body, false)
	return count
}

// isAtomicPointerLoad reports whether the call is a method call of
// Load on a sync/atomic.Pointer[T] receiver.
func isAtomicPointerLoad(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	if selection.Obj().Name() != "Load" {
		return false
	}
	named := namedOf(selection.Recv())
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pointer" && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
