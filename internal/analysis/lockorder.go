package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder detects potential deadlocks whole-program: it summarizes,
// per function, which mutexes the function (and everything it
// statically calls) can acquire, replays each function body in source
// order tracking the held lock set, and builds a global mutex
// acquisition-order graph. Two findings come out of it:
//
//   - same-mutex re-entry: acquiring a mutex that is already held —
//     directly, or by calling a function whose summary acquires it —
//     is a guaranteed self-deadlock, because sync.Mutex and
//     sync.RWMutex are not reentrant.
//   - acquisition-order cycles: if one code path acquires A then B
//     while another acquires B then A (possibly through call chains),
//     two goroutines can each hold one and wait forever on the other.
//     Every acquisition edge that participates in a cycle of the
//     global graph is reported.
//
// Mutexes are identified by class, not instance: a struct field mutex
// is "Type.field" (all instances merged — the standard approximation,
// since instances of one type are locked by the same code paths) and a
// package-level mutex is "pkg.var". Unkeyable mutexes (map elements,
// results of calls) and lock operations inside function literals or
// defer statements are skipped, keeping the analysis syntactic rather
// than wrong; dynamic calls contribute no summary, conservatively.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "detects mutex acquisition-order cycles and same-mutex re-entry across the call graph",
	Run:  runLockOrder,
}

// lockSym is one mutex class: key is globally unique (package path
// qualified), display is the short human-readable form.
type lockSym struct {
	key     string
	display string
}

// lockEvent is one ordered lock-relevant occurrence in a function
// body: an acquisition, a release, or a call into a summarized
// function.
type lockOpEvent struct {
	pos    token.Pos
	kind   int         // +1 acquire, -1 release, 0 call
	sym    lockSym     // valid when kind != 0
	callee *types.Func // valid when kind == 0
}

// lockReentry is a same-mutex re-entry finding.
type lockReentry struct {
	pos token.Pos
	sym lockSym
	via *types.Func // nil for a direct re-acquisition
}

// lockEdge records "to was acquired while from was held" at pos,
// possibly through a call to via.
type lockEdge struct {
	from, to lockSym
	pos      token.Pos
	via      *types.Func // nil for a direct acquisition
}

// lockOrderFacts is the program-wide result, computed once and
// filtered per package at reporting time.
type lockOrderFacts struct {
	reentries []lockReentry
	// cycleEdges are the edges participating in acquisition-order
	// cycles, with the rendered cycle they belong to.
	cycleEdges []lockEdge
	cycleDesc  map[string]string // SCC id -> rendered cycle
	edgeCycle  []string          // aligned with cycleEdges: rendered cycle
}

func runLockOrder(pass *Pass) {
	facts := pass.Prog.Cache("lockorder", func() any {
		return computeLockOrder(pass.Prog)
	}).(*lockOrderFacts)

	inPass := passFilenames(pass)
	for _, r := range facts.reentries {
		if !inPass[pass.Fset.Position(r.pos).Filename] {
			continue
		}
		if r.via == nil {
			pass.Reportf(r.pos,
				"mutex %s is acquired while already held; sync mutexes are not reentrant, so this self-deadlocks", r.sym.display)
		} else {
			pass.Reportf(r.pos,
				"call to %s acquires %s, which is already held here; sync mutexes are not reentrant, so this self-deadlocks",
				r.via.Name(), r.sym.display)
		}
	}
	for i, e := range facts.cycleEdges {
		if !inPass[pass.Fset.Position(e.pos).Filename] {
			continue
		}
		how := ""
		if e.via != nil {
			how = fmt.Sprintf(" (via call to %s)", e.via.Name())
		}
		pass.Reportf(e.pos,
			"acquiring %s while holding %s%s participates in a lock-order cycle [%s]; acquire mutexes in one global order",
			e.to.display, e.from.display, how, facts.edgeCycle[i])
	}
}

// passFilenames returns the set of file names belonging to the pass's
// package, used to attribute program-wide findings to the package that
// owns their position (so //lint:ignore directives apply and nothing
// is reported twice).
func passFilenames(pass *Pass) map[string]bool {
	out := make(map[string]bool, len(pass.Files))
	for _, f := range pass.Files {
		out[pass.Fset.Position(f.Pos()).Filename] = true
	}
	return out
}

func computeLockOrder(prog *Program) *lockOrderFacts {
	decls := prog.Decls()
	events := make(map[*types.Func][]lockOpEvent, len(decls))
	for _, d := range decls {
		events[d.Fn] = collectLockEvents(d)
	}

	// Per-function transitive acquire sets over the call graph.
	acquires := FixpointUnion(prog, func(d *FuncDecl) map[lockSym]bool {
		local := make(map[lockSym]bool)
		for _, e := range events[d.Fn] {
			if e.kind == 1 {
				local[e.sym] = true
			}
		}
		return local
	})

	facts := &lockOrderFacts{}
	var edges []lockEdge
	for _, d := range decls {
		re, ed := replayLockEvents(events[d.Fn], acquires)
		facts.reentries = append(facts.reentries, re...)
		edges = append(edges, ed...)
	}

	// Cycle detection on the acquisition-order graph: an edge is part
	// of a potential deadlock iff both endpoints are in one strongly
	// connected component.
	scc := lockSCC(edges)
	for _, e := range edges {
		cf, okf := scc[e.from.key]
		ct, okt := scc[e.to.key]
		if !okf || !okt || cf.id != ct.id || len(cf.members) < 2 {
			continue
		}
		facts.cycleEdges = append(facts.cycleEdges, e)
		facts.edgeCycle = append(facts.edgeCycle, cf.rendered)
	}
	return facts
}

// collectLockEvents walks a function body in source order, recording
// mutex acquisitions/releases and calls to summarized functions.
// Function literals and defer statements are skipped: closures run at
// times the syntactic order cannot place, and deferred releases hold
// to function exit.
func collectLockEvents(d *FuncDecl) []lockOpEvent {
	var events []lockOpEvent
	info := d.Pkg.Info
	ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if sym, kind, ok := mutexOp(d.Pkg, n); ok {
				events = append(events, lockOpEvent{pos: n.Pos(), kind: kind, sym: sym})
				return false
			}
			if fn := CalleeOf(info, n); fn != nil {
				events = append(events, lockOpEvent{pos: n.Pos(), kind: 0, callee: fn})
			}
			return true
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// replayLockEvents replays a function's events in source order,
// maintaining the held multiset, and emits re-entry findings and
// acquisition-order edges.
func replayLockEvents(events []lockOpEvent, acquires map[*types.Func]map[lockSym]bool) ([]lockReentry, []lockEdge) {
	var re []lockReentry
	var edges []lockEdge
	held := make(map[lockSym]int)
	heldSorted := func() []lockSym {
		out := make([]lockSym, 0, len(held))
		for s, n := range held {
			if n > 0 {
				out = append(out, s)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
		return out
	}
	for _, e := range events {
		switch e.kind {
		case 1:
			for _, h := range heldSorted() {
				if h == e.sym {
					re = append(re, lockReentry{pos: e.pos, sym: e.sym})
				} else {
					edges = append(edges, lockEdge{from: h, to: e.sym, pos: e.pos})
				}
			}
			held[e.sym]++
		case -1:
			if held[e.sym] > 0 {
				held[e.sym]--
			}
		case 0:
			acq := acquires[e.callee]
			if len(acq) == 0 {
				continue
			}
			acqSorted := make([]lockSym, 0, len(acq))
			for s := range acq {
				acqSorted = append(acqSorted, s)
			}
			sort.Slice(acqSorted, func(i, j int) bool { return acqSorted[i].key < acqSorted[j].key })
			for _, h := range heldSorted() {
				for _, a := range acqSorted {
					if a == h {
						re = append(re, lockReentry{pos: e.pos, sym: a, via: e.callee})
					} else {
						edges = append(edges, lockEdge{from: h, to: a, pos: e.pos, via: e.callee})
					}
				}
			}
		}
	}
	return re, edges
}

// mutexOp classifies a call as a mutex acquisition (+1) or release
// (-1) and identifies the mutex class, or reports ok=false.
func mutexOp(pkg *Package, call *ast.CallExpr) (lockSym, int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockSym{}, 0, false
	}
	var kind int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = 1
	case "Unlock", "RUnlock":
		kind = -1
	default:
		return lockSym{}, 0, false
	}
	fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockSym{}, 0, false
	}
	sym, ok := lockSymOf(pkg, sel.X)
	if !ok {
		return lockSym{}, 0, false
	}
	return sym, kind, true
}

// lockSymOf derives the mutex class of the expression a Lock/Unlock
// method was selected from.
func lockSymOf(pkg *Package, expr ast.Expr) (lockSym, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		// x.mu where mu is a struct field: key by the named type of x.
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if named := namedOf(pkg.Info.TypeOf(e.X)); named != nil {
				obj := named.Obj()
				return lockSym{
					key:     obj.Pkg().Path() + "." + obj.Name() + "." + e.Sel.Name,
					display: obj.Name() + "." + e.Sel.Name,
				}, true
			}
			return lockSym{}, false
		}
		// pkg.mu: a package-qualified package-level mutex.
		if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && isPackageLevel(v) {
			return packageVarSym(v), true
		}
		return lockSym{}, false
	case *ast.Ident:
		v, ok := pkg.Info.Uses[e].(*types.Var)
		if !ok {
			return lockSym{}, false
		}
		if isPackageLevel(v) {
			return packageVarSym(v), true
		}
		// A local mutex: key by declaration site. Instances created in
		// different functions never merge, which is the right
		// granularity for a function-scoped lock.
		p := pkg.Fset.Position(v.Pos())
		return lockSym{
			key:     fmt.Sprintf("%s:%d.%s", p.Filename, p.Line, v.Name()),
			display: v.Name(),
		}, true
	}
	return lockSym{}, false
}

// isPackageLevel reports whether v is a package-scope variable.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func packageVarSym(v *types.Var) lockSym {
	return lockSym{
		key:     v.Pkg().Path() + "." + v.Name(),
		display: v.Pkg().Name() + "." + v.Name(),
	}
}

// namedOf unwraps t (through one pointer) to its named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// sccInfo describes the strongly connected component a lock belongs
// to.
type sccInfo struct {
	id       int
	members  []string
	rendered string
}

// lockSCC computes strongly connected components of the acquisition
// graph (Tarjan, iterative) and pre-renders each multi-member
// component's cycle description. Node and neighbour order is sorted,
// so component ids and renderings are deterministic.
func lockSCC(edges []lockEdge) map[string]*sccInfo {
	adj := make(map[string]map[string]bool)
	display := make(map[string]string)
	nodeSet := make(map[string]bool)
	for _, e := range edges {
		if adj[e.from.key] == nil {
			adj[e.from.key] = make(map[string]bool)
		}
		adj[e.from.key][e.to.key] = true
		nodeSet[e.from.key] = true
		nodeSet[e.to.key] = true
		display[e.from.key] = e.from.display
		display[e.to.key] = e.to.display
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	neighbours := func(n string) []string {
		out := make([]string, 0, len(adj[n]))
		for m := range adj[n] {
			out = append(out, m)
		}
		sort.Strings(out)
		return out
	}

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	out := make(map[string]*sccInfo)
	sccID := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range neighbours(v) {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			sort.Strings(members)
			info := &sccInfo{id: sccID, members: members}
			sccID++
			if len(members) >= 2 {
				parts := make([]string, 0, len(members)+1)
				for _, m := range members {
					parts = append(parts, display[m])
				}
				parts = append(parts, display[members[0]])
				info.rendered = strings.Join(parts, " -> ")
			}
			for _, m := range members {
				out[m] = info
			}
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return out
}
