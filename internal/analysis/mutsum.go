package analysis

// Mutation/escape summary substrate: the alias-analysis sibling of
// flow.go's taint substrate. For every declared function it computes a
// summary of the caller-visible effects on the function's "slots" —
// the receiver (slot 0 for methods) and the parameters — iterated to
// fixpoint over the Program call graph:
//
//   - mutates: field/element access paths the function may write
//     through the slot (p[k]=v, *p=x, recv.field=x on a pointer
//     receiver, delete/copy, or any callee whose summary mutates the
//     argument), rendered as bounded path strings for diagnostics.
//   - appends: the slot is grown in place via x = append(x, ...)
//     through an indirection, so a caller-side capacity hint matters.
//   - escapes: the slot's value may outlive the call — returned,
//     stored into a package-level variable or another slot's reachable
//     state (a cache insert), captured by a go statement, or passed to
//     a callee whose summary lets it escape.
//
// Writes that only touch the callee's own copy (rebinding a parameter,
// a field store on a value receiver) are not caller-visible and are
// not recorded. Dynamic calls contribute nothing, the same optimistic
// posture the rest of the suite takes; analyzers that need soundness
// against them consult Program.HasUnresolvedCalls.
//
// sharedread, poolescape, and cowstore are built on these summaries,
// and workerpure/hotalloc consult them to see writes a callee performs
// on their behalf.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// mutPathMax bounds rendered access paths so summaries over recursive
// data structures reach a fixpoint in a finite domain.
const mutPathMax = 48

// mutEffects is one slot's effect set within a function summary.
type mutEffects struct {
	mutates map[string]bool // access paths written through the slot
	escapes map[string]bool // escape descriptions
	appends bool            // grown in place via append through an indirection
}

// MutSummary is the caller-visible effect summary of one function,
// keyed by slot index: the receiver is slot 0 for methods, parameters
// follow (for plain functions parameters start at slot 0).
type MutSummary struct {
	slots map[int]*mutEffects
}

func newMutSummary() *MutSummary { return &MutSummary{slots: make(map[int]*mutEffects)} }

func (s *MutSummary) effects(slot int) *mutEffects {
	e := s.slots[slot]
	if e == nil {
		e = &mutEffects{mutates: make(map[string]bool), escapes: make(map[string]bool)}
		s.slots[slot] = e
	}
	return e
}

// Mutates returns the sorted access paths the function may write
// through the given slot; empty means the slot is not mutated.
func (s *MutSummary) Mutates(slot int) []string {
	if s == nil || s.slots[slot] == nil {
		return nil
	}
	return sortedKeys(s.slots[slot].mutates)
}

// Escapes returns the sorted escape descriptions for the slot; empty
// means the slot's value does not outlive the call through this
// function.
func (s *MutSummary) Escapes(slot int) []string {
	if s == nil || s.slots[slot] == nil {
		return nil
	}
	return sortedKeys(s.slots[slot].escapes)
}

// Appends reports whether the function grows the slot in place via
// append through an indirection.
func (s *MutSummary) Appends(slot int) bool {
	return s != nil && s.slots[slot] != nil && s.slots[slot].appends
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// funcSlots returns the variables occupying a function's slots:
// receiver first (methods), then parameters.
func funcSlots(fn *types.Func) []*types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// isRefType reports whether values of t share underlying state when
// copied, so a write or store through one copy is visible through the
// others.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// peeled is the result of peeling an expression down to its root.
type peeled struct {
	obj      types.Object  // root object (a variable), or nil
	path     string        // rendered access path from the root
	indirect bool          // a write at the expression is visible through the root
	addrOf   bool          // peeled through a unary &
	call     *ast.CallExpr // the root is a call result (obj is nil)
}

// peelRef peels selectors, indexes, slices, derefs, address-ofs,
// parens, and type assertions off an expression, returning the root
// object, the access path from root to expression, and whether the
// path crosses an indirection (pointer deref, map/slice index, field
// through a pointer) — i.e. whether a write at the peeled site is
// visible to anyone else holding the root.
func peelRef(info *types.Info, e ast.Expr) peeled {
	var p peeled
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			p.obj = obj
			return p
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if t := info.TypeOf(x.X); t != nil {
					if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
						p.indirect = true
					}
				}
				p.path = joinPath("."+x.Sel.Name, p.path)
				e = x.X
				continue
			}
			if v, ok := info.Uses[x.Sel].(*types.Var); ok && isPackageLevel(v) {
				p.obj = v // package-qualified variable pkg.V
				return p
			}
			return p // method value or other non-field selection
		case *ast.IndexExpr:
			if t := info.TypeOf(x.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Map, *types.Slice, *types.Pointer:
					p.indirect = true
				}
			}
			p.path = joinPath("[*]", p.path)
			e = x.X
		case *ast.SliceExpr:
			p.path = joinPath("[:]", p.path)
			e = x.X
		case *ast.StarExpr:
			p.indirect = true
			p.path = joinPath("*", p.path)
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return p
			}
			p.addrOf = true
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.CallExpr:
			p.call = x
			return p
		default:
			return p
		}
	}
}

// joinPath concatenates two access-path fragments under the bounded
// rendering: paths longer than mutPathMax truncate to a "..." suffix,
// keeping the summary domain finite so the fixpoint terminates.
func joinPath(a, b string) string {
	s := a + b
	if len(s) > mutPathMax {
		s = s[:mutPathMax] + "..."
	}
	return s
}

// calleeSlotArgs resolves a statically dispatched call to (callee,
// per-slot argument expressions): for a method call the receiver
// expression occupies slot 0; variadic arguments share the final slot.
// Returns nil for dynamic calls, conversions, and builtins.
func calleeSlotArgs(info *types.Info, call *ast.CallExpr) (*types.Func, [][]ast.Expr) {
	fn := CalleeOf(info, call)
	if fn == nil {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, nil
	}
	var slots [][]ast.Expr
	if sig.Recv() != nil {
		var recv []ast.Expr
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				recv = []ast.Expr{sel.X}
			}
		}
		slots = append(slots, recv)
	}
	n := sig.Params().Len()
	for i := 0; i < n; i++ {
		switch {
		case i >= len(call.Args):
			// g(f()) tuple argument or arity mismatch: no expressions.
			slots = append(slots, nil)
		case sig.Variadic() && i == n-1 && !call.Ellipsis.IsValid():
			slots = append(slots, call.Args[i:])
		default:
			slots = append(slots, []ast.Expr{call.Args[i]})
		}
	}
	return fn, slots
}

// MutSummaries computes (once per program, cached) the mutation/escape
// summary of every declared function, iterated to fixpoint over the
// static call graph.
func MutSummaries(prog *Program) map[*types.Func]*MutSummary {
	return prog.Cache("mutsum.summaries", func() any {
		sums := make(map[*types.Func]*MutSummary, len(prog.decls))
		decls := prog.Decls()
		for _, d := range decls {
			sums[d.Fn] = newMutSummary()
		}
		for changed := true; changed; {
			changed = false
			for _, d := range decls {
				if mutCollect(d, sums) {
					changed = true
				}
			}
		}
		return sums
	}).(map[*types.Func]*MutSummary)
}

// mutResolver resolves expressions inside one function body to (slot,
// base path) roots, following simple local aliases (v := p.buf).
type mutResolver struct {
	info    *types.Info
	slotOf  map[types.Object]int
	aliases map[types.Object]peeled // local var -> slot-or-alias-rooted value
}

func newMutResolver(d *FuncDecl) *mutResolver {
	r := &mutResolver{
		info:    d.Pkg.Info,
		slotOf:  make(map[types.Object]int),
		aliases: make(map[types.Object]peeled),
	}
	for i, v := range funcSlots(d.Fn) {
		r.slotOf[v] = i
	}
	// Alias pre-pass: a local variable bound to a reference-typed value
	// rooted at a slot stands for that slot (buf := p.buf). The pass is
	// flow-insensitive — an alias established anywhere in the body
	// counts everywhere — which over-approximates but stays
	// deterministic.
	addAlias := func(lhs ast.Expr, p peeled) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := r.info.Defs[id]
		if obj == nil {
			obj = r.info.Uses[id]
		}
		if obj == nil {
			return
		}
		if _, isSlot := r.slotOf[obj]; isSlot {
			return // rebinding a parameter is not an alias
		}
		if !isRefType(obj.Type()) {
			return
		}
		if p.obj == nil || p.obj == obj {
			return
		}
		if _, have := r.aliases[obj]; have {
			return // first binding wins; keeps resolution deterministic
		}
		r.aliases[obj] = p
	}
	ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				addAlias(lhs, peelRef(r.info, n.Rhs[i]))
			}
		case *ast.RangeStmt:
			// Ranged values of a slot-rooted map or slice still point
			// into the slot's state.
			if n.Value != nil {
				p := peelRef(r.info, n.X)
				p.path = joinPath(p.path, "[*]")
				addAlias(n.Value, p)
			}
		}
		return true
	})
	return r
}

// resolve maps a peeled root object to (slot index, base path),
// following alias chains with a depth bound.
func (r *mutResolver) resolve(obj types.Object) (int, string, bool) {
	path := ""
	for depth := 0; depth < 8; depth++ {
		if obj == nil {
			return 0, "", false
		}
		if slot, ok := r.slotOf[obj]; ok {
			return slot, path, true
		}
		p, ok := r.aliases[obj]
		if !ok {
			return 0, "", false
		}
		path = joinPath(p.path, path)
		obj = p.obj
	}
	return 0, "", false
}

// resolveExpr peels an expression and resolves its root to a slot.
func (r *mutResolver) resolveExpr(e ast.Expr) (int, peeled, bool) {
	p := peelRef(r.info, e)
	slot, base, ok := r.resolve(p.obj)
	if !ok {
		return 0, p, false
	}
	p.path = joinPath(base, p.path)
	return slot, p, true
}

// mutCollect recomputes d's local + call-propagated effects against
// the current summaries and merges them into sums[d.Fn], reporting
// whether anything new was recorded.
func mutCollect(d *FuncDecl, sums map[*types.Func]*MutSummary) bool {
	r := newMutResolver(d)
	sum := sums[d.Fn]
	changed := false
	record := func(add func() bool) {
		if add() {
			changed = true
		}
	}
	addMut := func(slot int, path string) {
		record(func() bool {
			e := sum.effects(slot)
			if e.mutates[path] {
				return false
			}
			e.mutates[path] = true
			return true
		})
	}
	addEsc := func(slot int, desc string) {
		record(func() bool {
			e := sum.effects(slot)
			if e.escapes[desc] {
				return false
			}
			e.escapes[desc] = true
			return true
		})
	}
	addApp := func(slot int) {
		record(func() bool {
			e := sum.effects(slot)
			if e.appends {
				return false
			}
			e.appends = true
			return true
		})
	}

	// mentionSlots finds slot-rooted reference values the expression
	// carries onward (escape scans of RHSes, return values, and go
	// statements).
	mentionSlots := func(e ast.Expr, visit func(slot int, path string)) {
		carriedRefs(r.info, e, func(p peeled) {
			if slot, base, ok := r.resolve(p.obj); ok {
				visit(slot, joinPath(base, p.path))
			}
		})
	}

	// escapeTarget renders an assignment LHS as a store destination
	// that outlives the call, or returns false.
	escapeTarget := func(lhs ast.Expr) (string, int, string, bool) {
		p := peelRef(r.info, lhs)
		if v, ok := p.obj.(*types.Var); ok && isPackageLevel(v) {
			return packageVarSym(v).display + p.path, -1, "", true
		}
		if slot, pp, ok := r.resolveExpr(lhs); ok && pp.indirect {
			name := "receiver/param"
			if v, ok := pp.obj.(*types.Var); ok && v.Name() != "" {
				name = v.Name()
			}
			return name + pp.path, slot, pp.path, true
		}
		return "", 0, "", false
	}

	handleWrite := func(lhs ast.Expr) {
		slot, p, ok := r.resolveExpr(lhs)
		if !ok || !p.indirect {
			return
		}
		addMut(slot, p.path)
	}

	handleAssign := func(assign *ast.AssignStmt) {
		for _, lhs := range assign.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			handleWrite(lhs)
		}
		// Escape scan: storing a reference-typed slot value into a
		// location that outlives the call (package variable, state
		// reachable from another slot).
		for i, lhs := range assign.Lhs {
			target, tslot, tpath, ok := escapeTarget(lhs)
			if !ok {
				continue
			}
			var rhs ast.Expr
			if len(assign.Lhs) == len(assign.Rhs) {
				rhs = assign.Rhs[i]
			} else if len(assign.Rhs) == 1 {
				rhs = assign.Rhs[0]
			}
			if rhs == nil {
				continue
			}
			mentionSlots(rhs, func(slot int, path string) {
				if tslot == slot && tpath == path {
					return // x = append(x, ...): the destination itself
				}
				addEsc(slot, "stored into "+target)
			})
		}
		// Append-through-indirection: x = append(x, ...) growing a slot.
		if len(assign.Lhs) == len(assign.Rhs) {
			for i, rhs := range assign.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinCall(r.info, call, "append") || len(call.Args) == 0 {
					continue
				}
				slot, p, ok := r.resolveExpr(assign.Lhs[i])
				if !ok || !p.indirect {
					continue
				}
				if aslot, ap, aok := r.resolveExpr(call.Args[0]); aok && aslot == slot && ap.path == p.path {
					addApp(slot)
				}
			}
		}
	}

	handleCall := func(call *ast.CallExpr) {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := r.info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "delete", "copy":
					if len(call.Args) > 0 {
						if slot, p, ok := r.resolveExpr(call.Args[0]); ok {
							addMut(slot, joinPath(p.path, "[*]"))
						}
					}
				}
				return
			}
		}
		callee, slotArgs := calleeSlotArgs(r.info, call)
		if callee == nil {
			return
		}
		csum := sums[callee]
		if csum == nil {
			return
		}
		for j, args := range slotArgs {
			eff := csum.slots[j]
			if eff == nil {
				continue
			}
			for _, arg := range args {
				slot, p, ok := r.resolveExpr(arg)
				if !ok {
					continue
				}
				for path := range eff.mutates {
					addMut(slot, joinPath(p.path, path))
				}
				if eff.appends {
					addApp(slot)
				}
				if len(eff.escapes) > 0 && (p.addrOf || isRefType(r.info.TypeOf(arg))) {
					addEsc(slot, "escapes via "+funcDisplayName(callee))
				}
			}
		}
	}

	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if n != nil {
					walk(n.Body, true)
				}
				return false
			case *ast.AssignStmt:
				handleAssign(n)
			case *ast.IncDecStmt:
				handleWrite(n.X)
			case *ast.CallExpr:
				handleCall(n)
			case *ast.GoStmt:
				goCarriedRefs(r.info, n.Call, func(p peeled) {
					if slot, _, ok := r.resolve(p.obj); ok {
						addEsc(slot, "captured by go statement")
					}
				})
			case *ast.ReturnStmt:
				if inLit {
					return true // a closure's return is not the function's
				}
				for _, res := range n.Results {
					mentionSlots(res, func(slot int, _ string) {
						addEsc(slot, "returned")
					})
				}
			}
			return true
		})
	}
	walk(d.Decl.Body, false)
	return changed
}

// carriedRefs visits the reference-typed roots whose value the
// expression carries onward: the peeled expression itself, elements of
// composite literals, addressed operands (&buf, &buf[0]), and
// identifiers captured by a function literal. A scalar read through a
// reference (buf[0] on a []float64) carries nothing — the float is
// copied, the buffer stays behind.
func carriedRefs(info *types.Info, e ast.Expr, visit func(peeled)) {
	p := peelRef(info, e)
	if p.obj != nil {
		if p.addrOf || isRefType(info.TypeOf(e)) {
			visit(p)
		}
		return
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			carriedRefs(info, el, visit)
		}
	case *ast.KeyValueExpr:
		carriedRefs(info, x.Key, visit)
		carriedRefs(info, x.Value, visit)
	case *ast.FuncLit:
		// A closure carries everything it captures.
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && isRefType(v.Type()) {
					visit(peeled{obj: v})
				}
			}
			return true
		})
	}
}

// goCarriedRefs applies carriedRefs to everything a go statement
// evaluates and hands to the new goroutine: the callee expression (a
// closure's captures, a method value's receiver) and every argument.
func goCarriedRefs(info *types.Info, call *ast.CallExpr, visit func(peeled)) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			carriedRefs(info, sel.X, visit)
		}
	} else {
		carriedRefs(info, call.Fun, visit)
	}
	for _, a := range call.Args {
		carriedRefs(info, a, visit)
	}
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// trackInfo describes one tracked local: where and from which source
// function its value was acquired, and where inside the variable the
// source value sits — "" means the variable itself holds it, "[*]"
// means it sits in an element of the variable (the
// preds[i] = l.Predict(in) pattern stores shared values in a
// container; tracking the container keeps them visible). Paths
// collapse indices, so any element stands for all of them.
type trackInfo struct {
	desc string
	pos  token.Pos
	path string
}

// trackedVars collects, flow-insensitively, the local variables of d
// whose reference-typed value derives from a call matched by isSource
// — directly, through alias assignments and multi-value binds, or via
// storage into an element or field of a local container — returning
// var → acquisition info. Used by sharedread (values from lint:shared
// calls), poolescape (values from sync.Pool.Get / lint:scratch
// accessors), and cowstore (atomic.Pointer.Load snapshots).
func trackedVars(d *FuncDecl, isSource func(*ast.CallExpr) (string, bool)) map[*types.Var]trackInfo {
	info := d.Pkg.Info
	tracked := make(map[*types.Var]trackInfo)
	bind := func(lhs ast.Expr, ti trackInfo) {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if id.Name == "_" {
				return
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			v, ok := obj.(*types.Var)
			if !ok || !isRefType(v.Type()) {
				return
			}
			if isPackageLevel(v) {
				// Storing into a package variable is an escape (the store
				// analyzers report it at the assignment); the global itself
				// is not a freshly acquired value.
				return
			}
			if _, have := tracked[v]; !have {
				tracked[v] = ti
			}
			return
		}
		// Storing into an element or field of a local container
		// (preds[i] = src()): track the container, with the store path
		// prepended, so later reads and writes through it still see the
		// source value.
		p := peelRef(info, lhs)
		v, ok := p.obj.(*types.Var)
		if !ok || isPackageLevel(v) || p.path == "" || !isRefType(info.TypeOf(lhs)) {
			return
		}
		ti.path = joinPath(p.path, ti.path)
		if _, have := tracked[v]; !have {
			tracked[v] = ti
		}
	}
	fromSource := func(e ast.Expr) (trackInfo, bool) {
		p := peelRef(info, e)
		if p.call != nil {
			if desc, ok := isSource(p.call); ok {
				return trackInfo{desc: desc, pos: p.call.Pos()}, true
			}
		}
		if v, ok := p.obj.(*types.Var); ok {
			if ti, ok := tracked[v]; ok && isRefType(info.TypeOf(e)) {
				switch {
				case strings.HasPrefix(p.path, ti.path):
					// e reads the source value itself (or state inside
					// it): the result is the value, path-free.
					return trackInfo{desc: ti.desc, pos: ti.pos}, true
				case strings.HasPrefix(ti.path, p.path):
					// e reads a container that holds the source value
					// deeper in; the remainder locates it.
					return trackInfo{desc: ti.desc, pos: ti.pos, path: ti.path[len(p.path):]}, true
				}
			}
		}
		return trackInfo{}, false
	}
	// Flow-insensitive: iterate until no new variable is tracked, so
	// aliases established before their source assignment (loops) are
	// still found; bounded by the variable count.
	for changed := true; changed; {
		changed = false
		before := len(tracked)
		ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						if ti, ok := fromSource(n.Rhs[i]); ok {
							bind(lhs, ti)
						}
					}
				} else if len(n.Rhs) == 1 {
					if ti, ok := fromSource(n.Rhs[0]); ok {
						for _, lhs := range n.Lhs {
							bind(lhs, ti)
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i, name := range n.Names {
						if ti, ok := fromSource(n.Values[i]); ok {
							bind(name, ti)
						}
					}
				} else if len(n.Values) == 1 {
					if ti, ok := fromSource(n.Values[0]); ok {
						for _, name := range n.Names {
							bind(name, ti)
						}
					}
				}
			case *ast.RangeStmt:
				// Ranging over a tracked map or slice: the values still
				// point into the tracked state. Ranging yields the
				// container's elements, so a container-tracked path
				// sheds its leading index step.
				if n.Value != nil {
					if ti, ok := fromSource(n.X); ok {
						if strings.HasPrefix(ti.path, "[*]") {
							ti.path = ti.path[len("[*]"):]
							bind(n.Value, ti)
						} else if ti.path == "" {
							bind(n.Value, ti)
						}
					}
				}
			}
			return true
		})
		if len(tracked) != before {
			changed = true
		}
	}
	return tracked
}

// pathMutates reports whether a write peeled to writePath mutates a
// value tracked at tiPath within the same root: writing AT the tracked
// path replaces the reference (legal — preds[i] = fresh), writing
// strictly beyond it reaches into the tracked value's own state.
func pathMutates(writePath, tiPath string) bool {
	return strings.HasPrefix(writePath, tiPath) && len(writePath) > len(tiPath)
}

// calleeMutationHit returns the callee mutation path (one of paths,
// the callee's per-slot summary) that reaches a value tracked at
// tiPath when the argument peeled to argPath within the same root; ""
// when the callee's writes cannot touch the tracked value. An argument
// at or inside the tracked value is hit by any mutation; an argument
// that is a container holding the tracked value deeper in is hit only
// by callee writes that reach strictly past the remaining path —
// replacing the element is legal, mutating through it is not.
func calleeMutationHit(paths []string, argPath, tiPath string) string {
	if len(paths) == 0 {
		return ""
	}
	if strings.HasPrefix(argPath, tiPath) {
		return paths[0]
	}
	if strings.HasPrefix(tiPath, argPath) {
		rem := tiPath[len(argPath):]
		for _, mp := range paths {
			if pathMutates(mp, rem) {
				return mp
			}
		}
	}
	return ""
}

// SummarySlot is the JSON shape of one slot of a function's
// mutation/escape summary.
type SummarySlot struct {
	Index   int      `json:"index"`
	Name    string   `json:"name"`
	Mutates []string `json:"mutates,omitempty"`
	Appends bool     `json:"appends,omitempty"`
	Escapes []string `json:"escapes,omitempty"`
}

// SummaryRecord is the JSON shape of one function's mutation/escape
// summary, emitted by lsdlint -debug-summaries.
type SummaryRecord struct {
	Func  string        `json:"func"`
	File  string        `json:"file"`
	Line  int           `json:"line"`
	Slots []SummarySlot `json:"slots"`
}

// MutationSummaryDump loads the program at the given module-relative
// import paths (the whole module when paths is nil) and renders every
// function with a non-empty mutation/escape summary, sorted by source
// position — the -debug-summaries artifact CI archives beside the
// SARIF.
func MutationSummaryDump(root, modpath string, paths []string) ([]SummaryRecord, error) {
	_, prog, err := loadProgram(root, modpath, paths)
	if err != nil {
		return nil, err
	}
	sums := MutSummaries(prog)
	var out []SummaryRecord
	for _, d := range prog.Decls() {
		sum := sums[d.Fn]
		if sum == nil || len(sum.slots) == 0 {
			continue
		}
		slots := funcSlots(d.Fn)
		pos := d.Pkg.Fset.Position(d.Decl.Pos())
		rec := SummaryRecord{
			Func: d.Fn.Pkg().Path() + "." + funcDisplayName(d.Fn),
			File: pos.Filename,
			Line: pos.Line,
		}
		indices := make([]int, 0, len(sum.slots))
		for i := range sum.slots {
			indices = append(indices, i)
		}
		sort.Ints(indices)
		for _, i := range indices {
			name := "_"
			if i < len(slots) && slots[i].Name() != "" {
				name = slots[i].Name()
			}
			rec.Slots = append(rec.Slots, SummarySlot{
				Index:   i,
				Name:    name,
				Mutates: sum.Mutates(i),
				Appends: sum.Appends(i),
				Escapes: sum.Escapes(i),
			})
		}
		out = append(out, rec)
	}
	return out, nil
}
