package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ErrFlow polices error disposal on the paths where a swallowed error
// turns into silent data corruption or a wrong HTTP response: code
// reachable from an HTTP-handler-shaped function or from the
// `// lint:codec encode` / `// lint:codec decode` artifact roots. In
// that scope, a call into an error-bearing API (io, encoding/json, the
// artifact codec, the parallel pool) must have its error consumed:
//
//   - a call statement that drops the results entirely is a finding;
//   - an assignment that puts the error in the blank identifier is a
//     finding;
//   - an assignment to a named variable that is then only
//     blank-discarded (or never read) is a finding.
//
// Checking, returning, or passing the error onward all count as
// consumption. A deliberate drop (best-effort write after the response
// is committed) suppresses with //lint:ignore errflow and a reason.
// The scope is computed over the same reachability substrate the other
// serving-layer analyzers use, so a helper three calls below a handler
// is checked even though it is not handler-shaped itself.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "request- and codec-reachable code must check, return, or explicitly suppress io/json/artifact/parallel errors",
	Run:  runErrFlow,
}

// errFlowPkgs names the packages whose error results matter on serving
// and codec paths (matched by package name, so fixtures can model the
// module-local ones).
var errFlowPkgs = map[string]bool{
	"io":       true,
	"json":     true,
	"artifact": true,
	"parallel": true,
}

func runErrFlow(pass *Pass) {
	type errDiag struct {
		pos token.Pos
		msg string
	}
	diags := pass.Prog.Cache("errflow.diags", func() any {
		reach := errFlowReachable(pass.Prog)
		out := make(map[*types.Package][]errDiag)
		for _, d := range pass.Prog.Decls() {
			roots := reach[d.Fn]
			if len(roots) == 0 {
				continue
			}
			pkg := d.Pkg.Pkg
			info := d.Pkg.Info
			where := "(reachable from " + rootList(roots) + ")"
			report := func(pos token.Pos, what, fn string) {
				out[pkg] = append(out[pkg], errDiag{pos, "the error returned by " + fn + " is " + what +
					" in request/codec-reachable code " + where + "; check it, return it, or suppress it with a justified //lint:ignore errflow"})
			}
			ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, fn := errProducer(info, n.X); call != nil {
						report(call.Pos(), "dropped with the call statement", fn)
					}
				case *ast.AssignStmt:
					for _, bind := range errBindings(info, n.Lhs, n.Rhs) {
						checkErrBinding(info, d.Decl.Body, bind, report)
					}
				case *ast.ValueSpec:
					if len(n.Values) == 1 {
						lhs := make([]ast.Expr, len(n.Names))
						for i, name := range n.Names {
							lhs[i] = name
						}
						for _, bind := range errBindings(info, lhs, n.Values) {
							checkErrBinding(info, d.Decl.Body, bind, report)
						}
					}
				}
				return true
			})
		}
		for pkg := range out {
			sort.SliceStable(out[pkg], func(i, j int) bool { return out[pkg][i].pos < out[pkg][j].pos })
		}
		return out
	}).(map[*types.Package][]errDiag)
	for _, d := range diags[pass.Pkg] {
		pass.Reportf(d.pos, "%s", d.msg)
	}
}

// errFlowReachable merges the handler-reachable set with the set
// reachable from the codec roots: every function in either is in
// errflow's scope, tagged with the sorted root names for diagnostics.
func errFlowReachable(prog *Program) map[*types.Func][]string {
	return prog.Cache("errflow.reachable", func() any {
		codecRoots := append(annotatedRoots(prog, "lint:codec encode"),
			annotatedRoots(prog, "lint:codec decode")...)
		merged := make(map[*types.Func]map[string]bool)
		add := func(m map[*types.Func][]string) {
			for fn, roots := range m {
				set := merged[fn]
				if set == nil {
					set = make(map[string]bool)
					merged[fn] = set
				}
				for _, r := range roots {
					set[r] = true
				}
			}
		}
		add(requestReachable(prog))
		add(reachableFrom(prog, codecRoots))
		out := make(map[*types.Func][]string, len(merged))
		for fn, set := range merged {
			names := make([]string, 0, len(set))
			for n := range set {
				names = append(names, n)
			}
			sort.Strings(names)
			out[fn] = names
		}
		return out
	}).(map[*types.Func][]string)
}

// rootList renders the reachability roots for a message, capped so a
// helper reachable from every handler stays readable.
func rootList(roots []string) string {
	if len(roots) > 3 {
		return strings.Join(roots[:3], ", ") + ", …"
	}
	return strings.Join(roots, ", ")
}

// errProducer reports whether the expression is a statically resolved
// call into one of the watched packages whose last result is error,
// returning the call and its display name.
func errProducer(info *types.Info, e ast.Expr) (*ast.CallExpr, string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	fn := CalleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || !errFlowPkgs[fn.Pkg().Name()] {
		return nil, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil, ""
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !types.Identical(last, types.Universe.Lookup("error").Type()) {
		return nil, ""
	}
	return call, fn.Pkg().Name() + "." + funcDisplayName(fn)
}

// errBinding is one (error-position LHS, producing call) pair pulled
// out of an assignment.
type errBinding struct {
	lhs  ast.Expr
	call *ast.CallExpr
	fn   string
}

// errBindings extracts the error-position bindings of an assignment:
// for `out, err := json.Marshal(v)` the last LHS against the call; for
// pairwise assignments, each LHS whose RHS is a single-result producer.
func errBindings(info *types.Info, lhs, rhs []ast.Expr) []errBinding {
	var out []errBinding
	if len(rhs) == 1 && len(lhs) > 1 {
		if call, fn := errProducer(info, rhs[0]); call != nil {
			out = append(out, errBinding{lhs[len(lhs)-1], call, fn})
		}
		return out
	}
	if len(lhs) != len(rhs) {
		return nil
	}
	for i := range rhs {
		call, fn := errProducer(info, rhs[i])
		if call == nil {
			continue
		}
		sig := CalleeOf(info, call).Type().(*types.Signature)
		if sig.Results().Len() == 1 {
			out = append(out, errBinding{lhs[i], call, fn})
		}
	}
	return out
}

// checkErrBinding reports a binding whose error lands in the blank
// identifier, or in a variable the function then only blank-discards
// (or never reads).
func checkErrBinding(info *types.Info, body *ast.BlockStmt, bind errBinding, report func(token.Pos, string, string)) {
	id, ok := ast.Unparen(bind.lhs).(*ast.Ident)
	if !ok {
		return // assigned into a field or element: consumed
	}
	if id.Name == "_" {
		report(bind.call.Pos(), "discarded into the blank identifier", bind.fn)
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil {
		return
	}
	realUses, blankDiscards := 0, 0
	ast.Inspect(body, func(n ast.Node) bool {
		if a, ok := n.(*ast.AssignStmt); ok && isBlankDiscardOf(info, a, obj) {
			blankDiscards++
			return false
		}
		if use, ok := n.(*ast.Ident); ok && use != id && info.Uses[use] == obj {
			realUses++
		}
		return true
	})
	if realUses > 0 {
		return
	}
	what := "never read after this assignment"
	if blankDiscards > 0 {
		what = "only blank-discarded after this assignment"
	}
	report(bind.call.Pos(), what, bind.fn)
}

// isBlankDiscardOf reports whether the assignment is exactly `_ = v`
// for the given object.
func isBlankDiscardOf(info *types.Info, a *ast.AssignStmt, obj types.Object) bool {
	if len(a.Lhs) != 1 || len(a.Rhs) != 1 {
		return false
	}
	lhs, ok := ast.Unparen(a.Lhs[0]).(*ast.Ident)
	if !ok || lhs.Name != "_" {
		return false
	}
	rhs, ok := ast.Unparen(a.Rhs[0]).(*ast.Ident)
	return ok && info.Uses[rhs] == obj
}
