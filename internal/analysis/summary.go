package analysis

import "go/types"

// FixpointUnion is the program's function-summary dataflow substrate:
// it computes, for every declared function, the union of a locally
// derived fact set and the sets of all statically resolved callees,
// iterated to a fixpoint so mutual recursion and call cycles converge
// instead of recursing. local is invoked once per declaration; E is
// whatever fact the analyzer propagates (a mutex key, a written
// package-level variable, …). Facts only ever grow, so the iteration
// terminates at the least fixpoint regardless of visit order.
//
// Dynamic calls contribute nothing here; analyzers that must be sound
// in their presence should consult Program.HasUnresolvedCalls and
// degrade conservatively.
func FixpointUnion[E comparable](p *Program, local func(*FuncDecl) map[E]bool) map[*types.Func]map[E]bool {
	out := make(map[*types.Func]map[E]bool, len(p.decls))
	for fn, d := range p.decls {
		set := make(map[E]bool)
		for e := range local(d) {
			set[e] = true
		}
		out[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for fn, set := range out {
			for _, callee := range p.Callees(fn) {
				for e := range out[callee] {
					if !set[e] {
						set[e] = true
						changed = true
					}
				}
			}
		}
	}
	return out
}
