package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// MapRangeFloat flags floating-point compound assignments
// (+=, -=, *=, /=) that accumulate across iterations of a range over a
// map. Go randomizes map iteration order per run, and float arithmetic
// is not associative, so such accumulation differs between otherwise
// identical runs in the last bits — the exact nondeterminism class
// PR 1 hand-fixed in Normalize, TF/IDF, Naive Bayes, and whirl. Safe
// shapes are not flagged: integer accumulation (exact, so
// order-independent), accumulators declared inside the loop body (no
// cross-iteration state), and writes indexed by the range key itself
// (each iteration touches a distinct element).
//
// The check is interprocedural one summary level deep: a call inside
// the map-range body that passes a pointer to an accumulator declared
// outside the loop, where the callee's summary says it
// compound-assigns a float through that pointer parameter, is the same
// bug hidden behind a helper and is reported at the call site.
var MapRangeFloat = &Analyzer{
	Name: "maprangefloat",
	Doc:  "flags floating-point accumulation in map iteration order",
	Run:  runMapRangeFloat,
}

func runMapRangeFloat(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapExpr(pass, rs.X) {
				return true
			}
			checkMapRangeBody(pass, rs)
			return true
		})
	}
}

func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt) {
	keyObj := identObj(pass, rs.Key)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		// A nested range over another map is visited on its own; its
		// body's accumulators are reported once, against the inner
		// (innermost-map) loop.
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rs && isMapExpr(pass, inner.X) {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			checkAccumCall(pass, rs, call)
			return true
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		lhs := as.Lhs[0]
		if !isFloatExpr(pass, lhs) {
			return true
		}
		// m[k] op= v with k the range key writes one distinct slot per
		// iteration: no cross-iteration accumulation.
		if ix, ok := lhs.(*ast.IndexExpr); ok && keyObj != nil {
			if obj := identObj(pass, ix.Index); obj != nil && obj == keyObj {
				return true
			}
		}
		// A loop-local accumulator resets every iteration.
		if obj := identObj(pass, lhs); obj != nil &&
			obj.Pos() >= rs.Body.Pos() && obj.Pos() < rs.Body.End() {
			return true
		}
		pass.Reportf(as.Pos(),
			"floating-point %s accumulates in map iteration order, which varies between runs; iterate sorted keys instead", as.Tok)
		return true
	})
}

// checkAccumCall reports calls inside a map-range body that pass a
// pointer to an out-of-loop float accumulator to a callee whose
// summary compound-assigns through that parameter.
func checkAccumCall(pass *Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	callee := CalleeOf(pass.Info, call)
	if callee == nil {
		return
	}
	accum := accumParams(pass.Prog, callee)
	if len(accum) == 0 {
		return
	}
	for _, idx := range accum {
		if idx >= len(call.Args) {
			continue
		}
		arg := ast.Unparen(call.Args[idx])
		var target types.Object
		if un, ok := arg.(*ast.UnaryExpr); ok && un.Op == token.AND {
			target = identObj(pass, un.X)
		} else {
			target = identObj(pass, arg)
		}
		if target == nil {
			continue
		}
		// Pointers to loop-local accumulators reset every iteration.
		if target.Pos() >= rs.Body.Pos() && target.Pos() < rs.Body.End() {
			continue
		}
		pass.Reportf(call.Pos(),
			"call to %s compound-assigns a float through %q in map iteration order, which varies between runs; iterate sorted keys instead", callee.Name(), target.Name())
	}
}

// accumParams computes (once per program, one summary level deep)
// which pointer-to-float parameters of fn are compound-assigned
// through a dereference in its body, returning their indices.
func accumParams(prog *Program, fn *types.Func) []int {
	summaries := prog.Cache("maprangefloat.accum", func() any {
		out := make(map[*types.Func][]int)
		for _, d := range prog.Decls() {
			if idxs := accumParamsOf(d); len(idxs) > 0 {
				out[d.Fn] = idxs
			}
		}
		return out
	}).(map[*types.Func][]int)
	return summaries[fn]
}

// accumParamsOf inspects one declaration for `*p op= x` where p is a
// pointer-to-float parameter.
func accumParamsOf(d *FuncDecl) []int {
	sig, ok := d.Fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	paramIdx := make(map[types.Object]int, sig.Params().Len())
	i := 0
	if d.Decl.Type.Params != nil {
		for _, field := range d.Decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := d.Pkg.Info.Defs[name]; obj != nil {
					if p, ok := obj.Type().Underlying().(*types.Pointer); ok {
						if b, ok := p.Elem().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
							paramIdx[obj] = i
						}
					}
				}
				i++
			}
		}
	}
	if len(paramIdx) == 0 {
		return nil
	}
	found := make(map[int]bool)
	ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		star, ok := ast.Unparen(as.Lhs[0]).(*ast.StarExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(star.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := d.Pkg.Info.Uses[id]
		if idx, ok := paramIdx[obj]; ok {
			found[idx] = true
		}
		return true
	})
	if len(found) == 0 {
		return nil
	}
	out := make([]int, 0, len(found))
	for idx := range found {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// isMapExpr reports whether e has map underlying type.
func isMapExpr(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloatExpr reports whether e has floating-point underlying type.
func isFloatExpr(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// identObj resolves e to the object of a plain identifier, or nil.
func identObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pass.Info.Defs[id]
}
