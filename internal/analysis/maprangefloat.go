package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRangeFloat flags floating-point compound assignments
// (+=, -=, *=, /=) that accumulate across iterations of a range over a
// map. Go randomizes map iteration order per run, and float arithmetic
// is not associative, so such accumulation differs between otherwise
// identical runs in the last bits — the exact nondeterminism class
// PR 1 hand-fixed in Normalize, TF/IDF, Naive Bayes, and whirl. Safe
// shapes are not flagged: integer accumulation (exact, so
// order-independent), accumulators declared inside the loop body (no
// cross-iteration state), and writes indexed by the range key itself
// (each iteration touches a distinct element).
var MapRangeFloat = &Analyzer{
	Name: "maprangefloat",
	Doc:  "flags floating-point accumulation in map iteration order",
	Run:  runMapRangeFloat,
}

func runMapRangeFloat(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapExpr(pass, rs.X) {
				return true
			}
			checkMapRangeBody(pass, rs)
			return true
		})
	}
}

func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt) {
	keyObj := identObj(pass, rs.Key)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		// A nested range over another map is visited on its own; its
		// body's accumulators are reported once, against the inner
		// (innermost-map) loop.
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rs && isMapExpr(pass, inner.X) {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		lhs := as.Lhs[0]
		if !isFloatExpr(pass, lhs) {
			return true
		}
		// m[k] op= v with k the range key writes one distinct slot per
		// iteration: no cross-iteration accumulation.
		if ix, ok := lhs.(*ast.IndexExpr); ok && keyObj != nil {
			if obj := identObj(pass, ix.Index); obj != nil && obj == keyObj {
				return true
			}
		}
		// A loop-local accumulator resets every iteration.
		if obj := identObj(pass, lhs); obj != nil &&
			obj.Pos() >= rs.Body.Pos() && obj.Pos() < rs.Body.End() {
			return true
		}
		pass.Reportf(as.Pos(),
			"floating-point %s accumulates in map iteration order, which varies between runs; iterate sorted keys instead", as.Tok)
		return true
	})
}

// isMapExpr reports whether e has map underlying type.
func isMapExpr(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloatExpr reports whether e has floating-point underlying type.
func isFloatExpr(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// identObj resolves e to the object of a plain identifier, or nil.
func identObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pass.Info.Defs[id]
}
