package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolEscape keeps pooled scratch request-local: a value acquired from
// sync.Pool.Get — or from a `// lint:scratch` accessor, or a helper
// that returns one's result — must be dead by every exit of the
// acquiring function: handed back to the pool (directly via Put or
// through a releaser helper) and never allowed to outlive the call.
// WHIRL's dense scoring scratch is the motivating case: a pooled
// buffer that escapes into a cache, a struct field, a goroutine, or a
// returned prediction is concurrently reused by the next request, and
// the corruption looks like model nondeterminism, not a crash.
//
// Two rules per acquired value:
//
//   - escape: it must not be returned, stored into a package variable
//     or state reachable from a receiver/parameter, captured by a go
//     statement, or passed to a callee whose mutation/escape summary
//     (mutsum.go) lets that parameter escape — the interprocedural
//     case.
//   - release: some path must hand it back to the pool; acquiring and
//     merely dropping it silently defeats the pooling.
//
// Only `// lint:scratch` annotated accessors are exempt from the
// rules: returning pooled memory is their declared job. A helper that
// returns pooled scratch without the annotation is a finding — the
// hand-off must be deliberate and documented. (Unannotated helpers
// are still recognized as acquisition sources in their callers, so
// tracking does not stop at them.)
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc:  "sync.Pool / lint:scratch values must be released and must not escape the acquiring function",
	Run:  runPoolEscape,
}

func runPoolEscape(pass *Pass) {
	accessors := scratchAccessors(pass.Prog)
	releasers := poolReleasers(pass.Prog)
	sums := MutSummaries(pass.Prog)
	for _, d := range pass.Prog.Decls() {
		if d.Pkg.Pkg != pass.Pkg {
			continue
		}
		if hasDirective(d, "lint:scratch") {
			// Handing out pooled memory is the annotated accessor's
			// job. Derived (unannotated) accessors are still checked:
			// returning pooled scratch without the annotation is a
			// finding, so the hand-off is always deliberate and
			// documented.
			continue
		}
		checkPoolEscapes(pass, d, accessors, releasers, sums)
	}
}

// isPoolMethod reports whether call invokes the named method on a
// sync.Pool receiver, returning the receiver selection for argument
// peeling.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal || selection.Obj().Name() != name {
		return false
	}
	named := namedOf(selection.Recv())
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// scratchAccessors computes (once per program, cached) the functions
// that hand out pooled memory: `// lint:scratch` declarations,
// functions whose return derives from sync.Pool.Get, and functions
// whose return derives from another accessor, closed to fixpoint.
func scratchAccessors(prog *Program) map[*types.Func]bool {
	return prog.Cache("poolescape.accessors", func() any {
		acc := make(map[*types.Func]bool)
		for _, d := range annotatedRoots(prog, "lint:scratch") {
			acc[d.Fn] = true
		}
		for changed := true; changed; {
			changed = false
			for _, d := range prog.Decls() {
				if acc[d.Fn] {
					continue
				}
				info := d.Pkg.Info
				if returnsDerivedFrom(d, func(call *ast.CallExpr) bool {
					if isPoolMethod(info, call, "Get") {
						return true
					}
					fn := staticOrIfaceCallee(info, call)
					return fn != nil && acc[fn]
				}) {
					acc[d.Fn] = true
					changed = true
				}
			}
		}
		return acc
	}).(map[*types.Func]bool)
}

// poolReleasers computes (once per program, cached) which slots of
// which functions hand their value back to a pool: a direct
// sync.Pool.Put of the slot (possibly by address), or forwarding the
// slot to another releaser, closed to fixpoint over the call graph.
func poolReleasers(prog *Program) map[*types.Func]map[int]bool {
	return prog.Cache("poolescape.releasers", func() any {
		rel := make(map[*types.Func]map[int]bool, len(prog.decls))
		decls := prog.Decls()
		for _, d := range decls {
			rel[d.Fn] = make(map[int]bool)
		}
		for changed := true; changed; {
			changed = false
			for _, d := range decls {
				r := newMutResolver(d)
				mine := rel[d.Fn]
				add := func(slot int) {
					if !mine[slot] {
						mine[slot] = true
						changed = true
					}
				}
				ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if isPoolMethod(r.info, call, "Put") && len(call.Args) > 0 {
						if slot, _, ok := r.resolveExpr(call.Args[0]); ok {
							add(slot)
						}
						return true
					}
					callee, slotArgs := calleeSlotArgs(r.info, call)
					if callee == nil {
						return true
					}
					for j, args := range slotArgs {
						if !rel[callee][j] {
							continue
						}
						for _, arg := range args {
							if slot, _, ok := r.resolveExpr(arg); ok {
								add(slot)
							}
						}
					}
					return true
				})
			}
		}
		return rel
	}).(map[*types.Func]map[int]bool)
}

// checkPoolEscapes verifies one function's use of acquired scratch.
func checkPoolEscapes(pass *Pass, d *FuncDecl, accessors map[*types.Func]bool, releasers map[*types.Func]map[int]bool, sums map[*types.Func]*MutSummary) {
	info := d.Pkg.Info
	tracked := trackedVars(d, func(call *ast.CallExpr) (string, bool) {
		if isPoolMethod(info, call, "Get") {
			return "sync.Pool.Get", true
		}
		if fn := staticOrIfaceCallee(info, call); fn != nil && accessors[fn] {
			return funcDisplayName(fn), true
		}
		return "", false
	})
	if len(tracked) == 0 {
		return
	}
	trackedOf := func(e ast.Expr) (*types.Var, trackInfo, bool) {
		p := peelRef(info, e)
		v, ok := p.obj.(*types.Var)
		if !ok {
			return nil, trackInfo{}, false
		}
		ti, ok := tracked[v]
		return v, ti, ok
	}
	released := make(map[*types.Var]bool)
	escaped := make(map[*types.Var]bool)
	returned := returnedVars(d)

	report := func(v *types.Var, pos token.Pos, format string, args ...any) {
		escaped[v] = true
		pass.Reportf(pos, format, args...)
	}

	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				walk(n.Body, true)
				return false
			case *ast.ReturnStmt:
				if inLit {
					return true
				}
				for _, res := range n.Results {
					trackedCarried(info, res, tracked, func(v *types.Var, ti trackInfo) {
						report(v, res.Pos(),
							"returns %s, pooled scratch acquired from %s; copy the data out, or annotate this function `// lint:scratch` if handing out pooled memory is its job",
							v.Name(), ti.desc)
					})
				}
			case *ast.GoStmt:
				goCarriedRefs(info, n.Call, func(p peeled) {
					v, ok := p.obj.(*types.Var)
					if !ok {
						return
					}
					if ti, ok := tracked[v]; ok {
						report(v, n.Pos(),
							"go statement captures %s, pooled scratch acquired from %s; the goroutine may outlive the request that must return it",
							v.Name(), ti.desc)
					}
				})
			case *ast.AssignStmt:
				checkPoolStore(pass, d, n, tracked, returned, report)
			case *ast.CallExpr:
				// Release bookkeeping and interprocedural escapes.
				if isPoolMethod(info, n, "Put") && len(n.Args) > 0 {
					if v, _, ok := trackedOf(n.Args[0]); ok {
						released[v] = true
					}
					return true
				}
				callee, slotArgs := calleeSlotArgs(info, n)
				if callee == nil {
					return true
				}
				for j, args := range slotArgs {
					for _, arg := range args {
						v, ti, ok := trackedOf(arg)
						if !ok {
							continue
						}
						if releasers[callee][j] {
							released[v] = true
							continue
						}
						if escs := sums[callee].Escapes(j); len(escs) > 0 {
							report(v, arg.Pos(),
								"passes %s, pooled scratch acquired from %s, to %s, which lets it escape (%s); pooled buffers must stay request-local",
								v.Name(), ti.desc, funcDisplayName(callee), escs[0])
						}
					}
				}
			}
			return true
		})
	}
	walk(d.Decl.Body, false)

	// Release rule: anything acquired, not escaped (already reported),
	// and never handed back leaks the pooling.
	type leak struct {
		v  *types.Var
		ti trackInfo
	}
	var leaks []leak
	for v, ti := range tracked {
		if !released[v] && !escaped[v] && ti.pos.IsValid() {
			leaks = append(leaks, leak{v, ti})
		}
	}
	// Deterministic order: by acquisition position.
	for i := 1; i < len(leaks); i++ {
		for j := i; j > 0 && leaks[j].ti.pos < leaks[j-1].ti.pos; j-- {
			leaks[j], leaks[j-1] = leaks[j-1], leaks[j]
		}
	}
	seenPos := make(map[token.Pos]bool)
	for _, l := range leaks {
		if seenPos[l.ti.pos] {
			continue // aliases of one acquisition: one finding
		}
		seenPos[l.ti.pos] = true
		pass.Reportf(l.ti.pos,
			"%s acquired from %s is never returned to the pool; call Put (or a releasing helper) on every path, or drop the pooled pattern",
			l.v.Name(), l.ti.desc)
	}
}

// checkPoolStore flags assignments that store tracked scratch into a
// location that outlives the function: a package variable, state
// reachable from a receiver or parameter, or a local that the function
// returns.
func checkPoolStore(pass *Pass, d *FuncDecl, assign *ast.AssignStmt, tracked map[*types.Var]trackInfo, returned map[*types.Var]bool, report func(*types.Var, token.Pos, string, ...any)) {
	info := d.Pkg.Info
	r := newMutResolver(d)
	for i, lhs := range assign.Lhs {
		var rhs ast.Expr
		if len(assign.Lhs) == len(assign.Rhs) {
			rhs = assign.Rhs[i]
		} else if len(assign.Rhs) == 1 {
			rhs = assign.Rhs[0]
		}
		if rhs == nil {
			continue
		}
		target := ""
		p := peelRef(info, lhs)
		switch {
		case p.obj != nil && func() bool { v, ok := p.obj.(*types.Var); return ok && isPackageLevel(v) }():
			target = "package-level " + packageVarSym(p.obj.(*types.Var)).display
		case p.indirect:
			if _, pp, ok := r.resolveExpr(lhs); ok {
				name := "receiver/parameter state"
				if v, ok := pp.obj.(*types.Var); ok && v.Name() != "" {
					name = v.Name() + pp.path
				}
				target = name
			} else if v, ok := p.obj.(*types.Var); ok && returned[v] {
				target = "returned value " + v.Name() + p.path
			}
		}
		if target == "" {
			continue
		}
		// The destination outlives the call; does the stored value
		// carry tracked scratch?
		trackedCarried(info, rhs, tracked, func(v *types.Var, ti trackInfo) {
			report(v, lhs.Pos(),
				"stores %s, pooled scratch acquired from %s, into %s; pooled buffers must stay request-local",
				v.Name(), ti.desc, target)
		})
	}
}

// trackedCarried visits every tracked variable whose reference value
// the expression carries onward (see carriedRefs): returning buf or
// embedding it in a composite literal counts, reading buf[0] does not.
func trackedCarried(info *types.Info, e ast.Expr, tracked map[*types.Var]trackInfo, visit func(*types.Var, trackInfo)) {
	seen := make(map[*types.Var]bool)
	carriedRefs(info, e, func(p peeled) {
		v, ok := p.obj.(*types.Var)
		if !ok || seen[v] {
			return
		}
		if ti, ok := tracked[v]; ok {
			seen[v] = true
			visit(v, ti)
		}
	})
}

// returnedVars collects the variables mentioned in the function's
// top-level return statements: storing pooled scratch into one smuggles
// it out through the return value.
func returnedVars(d *FuncDecl) map[*types.Var]bool {
	info := d.Pkg.Info
	out := make(map[*types.Var]bool)
	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				walk(n.Body, true)
				return false
			case *ast.ReturnStmt:
				if inLit {
					return true
				}
				for _, res := range n.Results {
					ast.Inspect(res, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							if v, ok := info.Uses[id].(*types.Var); ok {
								out[v] = true
							}
						}
						return true
					})
				}
			}
			return true
		})
	}
	// Named results are returned even by a bare return.
	if sig, ok := d.Fn.Type().(*types.Signature); ok {
		for i := 0; i < sig.Results().Len(); i++ {
			if v := sig.Results().At(i); v.Name() != "" {
				out[v] = true
			}
		}
	}
	walk(d.Decl.Body, false)
	return out
}
