package analysis_test

import (
	"go/types"
	"testing"

	"repro/internal/analysis"
)

// loadFixtureProgram loads one analyzer fixture package and wraps it in
// a single-package program.
func loadFixtureProgram(t *testing.T, name string) (*analysis.Program, *analysis.Package) {
	t.Helper()
	root, modpath, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(root, modpath)
	pkg, err := loader.Load(modpath + "/internal/analysis/testdata/src/" + name)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return analysis.NewProgram([]*analysis.Package{pkg}), pkg
}

func fixtureFunc(t *testing.T, pkg *analysis.Package, name string) *types.Func {
	t.Helper()
	fn, ok := pkg.Pkg.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("fixture has no function %q", name)
	}
	return fn
}

func TestProgramCallGraph(t *testing.T) {
	prog, pkg := loadFixtureProgram(t, "lockorder")

	// A statically resolvable call is an edge.
	caller := fixtureFunc(t, pkg, "reenterViaCall")
	callee := fixtureFunc(t, pkg, "lockA")
	found := false
	for _, c := range prog.Callees(caller) {
		if c == callee {
			found = true
		}
	}
	if !found {
		t.Errorf("Callees(reenterViaCall) = %v, want to contain lockA", prog.Callees(caller))
	}
	if prog.HasUnresolvedCalls(caller) {
		t.Errorf("reenterViaCall marked unresolved; every call in it is static")
	}

	// A call through a func value is not an edge, and marks the caller
	// unresolved; method calls on concrete receivers (r.a.Lock) still
	// resolve, even into packages outside the program.
	dyn := fixtureFunc(t, pkg, "inLiteral")
	sawLock := false
	for _, c := range prog.Callees(dyn) {
		if c.Name() == "f" {
			t.Errorf("Callees(inLiteral) contains the func value f; that call is dynamic")
		}
		if c.Name() == "Lock" && c.Pkg() != nil && c.Pkg().Path() == "sync" {
			sawLock = true
		}
	}
	if !sawLock {
		t.Errorf("Callees(inLiteral) = %v, want to contain sync Lock (concrete method resolution)", prog.Callees(dyn))
	}
	if !prog.HasUnresolvedCalls(dyn) {
		t.Errorf("inLiteral not marked unresolved despite calling a func value")
	}

	// Functions with no declaration in the program are unknown by
	// construction.
	if !prog.HasUnresolvedCalls(nil) {
		t.Errorf("HasUnresolvedCalls(nil) = false, want true")
	}

	// DeclOf round-trips and Decls is position-sorted.
	if d := prog.DeclOf(callee); d == nil || d.Fn != callee {
		t.Errorf("DeclOf(lockA) = %v", d)
	}
	decls := prog.Decls()
	if len(decls) == 0 {
		t.Fatal("Decls() is empty")
	}
	for i := 1; i < len(decls); i++ {
		pi := decls[i-1].Pkg.Fset.Position(decls[i-1].Decl.Pos())
		pj := decls[i].Pkg.Fset.Position(decls[i].Decl.Pos())
		if pi.Filename == pj.Filename && pi.Offset > pj.Offset {
			t.Fatalf("Decls() out of order at %d: %v after %v", i, pj, pi)
		}
	}
}

func TestFixpointUnionPropagates(t *testing.T) {
	prog, pkg := loadFixtureProgram(t, "lockorder")

	// Seed each function with its own name; the fixpoint must propagate
	// callee names to callers across the call graph.
	facts := analysis.FixpointUnion(prog, func(d *analysis.FuncDecl) map[string]bool {
		return map[string]bool{d.Fn.Name(): true}
	})

	caller := fixtureFunc(t, pkg, "reenterViaCall")
	got := facts[caller]
	if !got["reenterViaCall"] || !got["lockA"] {
		t.Errorf("facts[reenterViaCall] = %v, want own fact and lockA's", got)
	}
	leaf := fixtureFunc(t, pkg, "lockA")
	if len(facts[leaf]) != 1 {
		t.Errorf("facts[lockA] = %v, want only its own fact (no callees)", facts[leaf])
	}
}

func TestProgramCacheMemoizes(t *testing.T) {
	prog, _ := loadFixtureProgram(t, "lockorder")
	calls := 0
	compute := func() any { calls++; return calls }
	if v := prog.Cache("k", compute); v.(int) != 1 {
		t.Fatalf("first Cache = %v, want 1", v)
	}
	if v := prog.Cache("k", compute); v.(int) != 1 {
		t.Fatalf("second Cache = %v, want memoized 1", v)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}
