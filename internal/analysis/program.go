package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"sync"
)

// FuncDecl pairs a declared function or method with its syntax and the
// package it lives in. It is the unit the whole-program substrate
// (call graph, function summaries) works over.
type FuncDecl struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// callInfo is one function's resolved outgoing calls.
type callInfo struct {
	// callees are the statically resolved callees of the declared
	// body, function literals excluded (closures run at times the
	// syntactic walk cannot place), deduplicated and sorted by
	// position for deterministic propagation.
	callees []*types.Func
	// unresolved records that the body contains at least one dynamic
	// call (func value, interface method) the builder could not
	// resolve; summary consumers must treat such functions
	// conservatively.
	unresolved bool
}

// Program is the whole-program view over a set of loaded packages: a
// map from every declared function to its syntax, a call graph built
// from statically resolvable calls (package-level functions and
// methods resolved through go/types), and a cache for program-wide
// analyzer state. Dynamic calls — through func values or interface
// methods — are not edges; they are recorded as an "unresolved"
// marker on the caller so summaries can degrade conservatively
// instead of silently claiming completeness.
type Program struct {
	// Pkgs are the packages the program spans, in load order.
	Pkgs []*Package

	decls map[*types.Func]*FuncDecl
	calls map[*types.Func]*callInfo

	cacheMu sync.Mutex
	cache   map[string]any // guarded by cacheMu
}

// NewProgram builds the program view over pkgs: it indexes every
// function declaration and resolves the static call graph.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:  pkgs,
		decls: make(map[*types.Func]*FuncDecl),
		calls: make(map[*types.Func]*callInfo),
		cache: make(map[string]any),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				p.decls[fn] = &FuncDecl{Fn: fn, Decl: fd, Pkg: pkg}
			}
		}
	}
	for fn, d := range p.decls {
		callees, unresolved := callsIn(d.Pkg.Info, d.Decl.Body, false)
		p.calls[fn] = &callInfo{callees: callees, unresolved: unresolved}
	}
	return p
}

// DeclOf returns the declaration of a function defined in one of the
// program's packages, or nil for functions without source here
// (standard library, interface methods).
func (p *Program) DeclOf(fn *types.Func) *FuncDecl {
	if fn == nil {
		return nil
	}
	return p.decls[fn]
}

// Decls returns every declared function of the program, sorted by
// source position, so analyzers that iterate the whole program emit
// deterministic output.
func (p *Program) Decls() []*FuncDecl {
	out := make([]*FuncDecl, 0, len(p.decls))
	for _, d := range p.decls {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		pi := out[i].Pkg.Fset.Position(out[i].Decl.Pos())
		pj := out[j].Pkg.Fset.Position(out[j].Decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	return out
}

// Callees returns fn's statically resolved callees (function literals
// excluded), or nil when fn is not declared in the program.
func (p *Program) Callees(fn *types.Func) []*types.Func {
	if c, ok := p.calls[fn]; ok {
		return c.callees
	}
	return nil
}

// HasUnresolvedCalls reports whether fn's body contains a call the
// builder could not resolve statically. Functions not declared in the
// program report true: their behaviour is unknown by construction.
func (p *Program) HasUnresolvedCalls(fn *types.Func) bool {
	if c, ok := p.calls[fn]; ok {
		return c.unresolved
	}
	return true
}

// Cache memoizes a program-wide computation under a key, so analyzers
// that need whole-program results (e.g. the global lock-order graph)
// compute them once and report per package. compute runs outside the
// cache lock, so cached computations can build on other cached
// computations (the reachability substrate layers this way: a taint
// fixpoint keyed on the cached closure-aware call graph). The
// trade-off is that two goroutines racing on the same missing key may
// both compute it; results must be deterministic values of the
// program, which makes the duplicate work harmless.
func (p *Program) Cache(key string, compute func() any) any {
	p.cacheMu.Lock()
	v, ok := p.cache[key]
	p.cacheMu.Unlock()
	if ok {
		return v
	}
	v = compute()
	p.cacheMu.Lock()
	p.cache[key] = v
	p.cacheMu.Unlock()
	return v
}

// CalleeOf resolves the static callee of a call expression: a
// package-level function, or a method resolved through go/types on a
// concrete receiver. It returns nil for dynamic calls (func values,
// interface methods), type conversions, and builtins.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil // field of func type: dynamic
			}
			fn, _ := sel.Obj().(*types.Func)
			if fn == nil {
				return nil
			}
			if _, ok := sel.Recv().Underlying().(*types.Interface); ok {
				return nil // interface dispatch: dynamic
			}
			return fn
		}
		// Package-qualified identifier (pkg.F).
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// callsIn collects the statically resolved callees in node, sorted by
// position and deduplicated, plus whether any call failed to resolve.
// Function-literal bodies are descended into only when includeLits is
// set (closure analyses want them; declared-body summaries do not).
func callsIn(info *types.Info, node ast.Node, includeLits bool) ([]*types.Func, bool) {
	type callee struct {
		fn  *types.Func
		pos int
	}
	var callees []callee
	seen := make(map[*types.Func]bool)
	unresolved := false
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && !includeLits && n != node {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := CalleeOf(info, call); fn != nil {
			if !seen[fn] {
				seen[fn] = true
				callees = append(callees, callee{fn, int(call.Pos())})
			}
			return true
		}
		// Not a resolvable function call: conversions and builtins are
		// fine, anything else is a dynamic call.
		if tv, ok := info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
			return true
		}
		if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			return true // immediately invoked literal: body walked in place
		}
		unresolved = true
		return true
	})
	sort.Slice(callees, func(i, j int) bool { return callees[i].pos < callees[j].pos })
	out := make([]*types.Func, len(callees))
	for i, c := range callees {
		out[i] = c.fn
	}
	return out, unresolved
}
