// Package analysis is lsdlint's stdlib-only static-analysis engine.
// It loads every package in the module with go/parser, type-checks it
// with go/types (resolving the standard library from source via
// go/importer, so the repo keeps its no-external-dependency rule),
// builds a whole-program view — a static call graph plus a
// function-summary dataflow substrate (see Program and FixpointUnion)
// — and runs a suite of project-specific analyzers that machine-check
// the pipeline's determinism and concurrency invariants:
//
//   - maprangefloat: no floating-point accumulation in Go map
//     iteration order (the PR 1 nondeterminism class), including
//     accumulation through a helper's pointer parameter one summary
//     level deep.
//   - seedflow: every rand.NewSource seed is a constant or derived via
//     learn.DeriveSeed, and no *rand.Rand is captured by a go-launched
//     function literal.
//   - guardedby: fields tagged `// guarded by <mutex>` are only
//     touched while that mutex is held on a syntactic lock path.
//   - normalizedpred: learn.Prediction values built in an exported
//     function are normalized before they cross the package boundary;
//     returns through unexported helpers are followed one summary
//     level deep.
//   - lockorder: no mutex acquisition-order cycles and no same-mutex
//     re-entry anywhere in the call graph (potential deadlocks).
//   - workerpure: closures handed to parallel.Map/ForEach write
//     nothing but their own result slot, transitively through their
//     callees, unless the target is tagged `// guarded by`.
//   - statecodec: every exported field of a struct the artifact codec
//     touches must flow into an encode call and receive a decode
//     assignment, interprocedurally from the `// lint:codec` roots, so
//     new state fields cannot silently miss the wire format.
//   - snapshotonce: code reachable from an HTTP handler loads the
//     atomic.Pointer registry snapshot at most once per request (the
//     hot-swap torn-read class).
//   - boundedread: a length read from the wire must pass a relational
//     bounds check before it reaches make or io.ReadFull, including
//     through callee parameters (decoder over-allocation class).
//   - hotalloc: functions reachable from `// lint:hot` roots avoid
//     fmt.Sprintf-style formatting, map allocation, and unhinted
//     append-in-loop growth.
//   - ctxflow: request-reachable fan-out through parallel.Map/ForEach
//     runs under a context derived from the request, and
//     context.Background/TODO in request-reachable code is a finding
//     (client disconnect must cancel in-flight work).
//   - goroleak: every go statement has a visible termination path —
//     WaitGroup Add/Done pairing, matched or buffered channels, or a
//     context-bounded loop.
//   - errflow: errors from io/json/artifact/parallel calls in request-
//     or codec-reachable code are checked, returned, or explicitly
//     suppressed, never silently discarded.
//   - sharedread: values returned by `// lint:shared` functions (the
//     WHIRL cache-hit path, Learner.Predict) are read-only — no caller
//     may mutate them, directly or through a callee that writes its
//     parameter.
//   - poolescape: values from sync.Pool.Get or `// lint:scratch`
//     accessors are released back to the pool and never escape the
//     acquiring function (fields, caches, goroutines, returns).
//   - cowstore: values published through the serve registry's
//     atomic.Pointer.Store are frozen after publication, and Load
//     snapshots are never written through.
//
// ctxflow, goroleak, and errflow share the value-flow substrate in
// flow.go: def-use chains inside a function, plus interprocedural
// param→sink and param→result summaries over the static call graph.
// sharedread, poolescape, and cowstore share the mutation/escape
// summary substrate in mutsum.go: per-function summaries of which
// parameters a function mutates (and through which field/element
// paths) and which escape, iterated to fixpoint over the call graph;
// workerpure and hotalloc consult the same summaries to see writes and
// appends a callee performs on a worker's or hot path's behalf.
//
// Findings can be suppressed with a justified directive on (or
// immediately above) the offending line:
//
//	//lint:ignore <check> <reason>
//
// A directive without a reason is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one analyzer finding, resolved to a file position.
type Diagnostic struct {
	// Position locates the finding.
	Position token.Position
	// Check names the analyzer (or "ignore" for malformed
	// suppression directives).
	Check string
	// Message explains the finding and how to fix it.
	Message string
}

// String renders the diagnostic in the conventional
// file:line:col: check: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Check, d.Message)
}

// Analyzer is one lint check: a name (used in diagnostics and in
// //lint:ignore directives), a one-line doc string, and a Run function
// invoked once per loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) unit of work. Analyzers read
// the syntax and type information and report findings via Reportf.
// Prog is the whole-program view shared by every pass of one lint
// run: interprocedural analyzers query its call graph and function
// summaries, and stash program-wide results in its cache so they are
// computed once, not once per package.
type Pass struct {
	Fset  *token.FileSet
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File
	Prog  *Program

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos under the running analyzer's name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Position: p.Fset.Position(pos),
		Check:    p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// DefaultAnalyzers returns the full lsdlint suite.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		MapRangeFloat,
		SeedFlow,
		GuardedBy,
		NormalizedPred,
		LockOrder,
		WorkerPure,
		StateCodec,
		SnapshotOnce,
		BoundedRead,
		HotAlloc,
		CtxFlow,
		GoroLeak,
		ErrFlow,
		SharedRead,
		PoolEscape,
		CowStore,
	}
}

// SelectChecks filters analyzers by a comma-separated spec: bare
// names keep only those analyzers, !-prefixed names exclude them from
// the full set, and the two forms cannot be mixed. An unknown name is
// an error so typos fail loudly instead of silently linting nothing.
func SelectChecks(analyzers []*Analyzer, spec string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	include, exclude := make(map[string]bool), make(map[string]bool)
	for _, raw := range strings.Split(spec, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		negated := strings.HasPrefix(name, "!")
		if negated {
			name = name[1:]
		}
		if byName[name] == nil {
			known := make([]string, 0, len(byName))
			for n := range byName {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown check %q (known: %s)", name, strings.Join(known, ", "))
		}
		if negated {
			exclude[name] = true
		} else {
			include[name] = true
		}
	}
	if len(include) > 0 && len(exclude) > 0 {
		return nil, fmt.Errorf("cannot mix included and !-excluded checks in one -checks list")
	}
	if len(include) == 0 && len(exclude) == 0 {
		return analyzers, nil
	}
	var out []*Analyzer
	for _, a := range analyzers {
		if len(include) > 0 && !include[a.Name] {
			continue
		}
		if exclude[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}

// RunAnalyzers runs the analyzers over a single loaded package,
// wrapping it in a one-package Program (interprocedural analyzers see
// only this package's functions), applies the package's //lint:ignore
// directives, and returns the surviving diagnostics (plus any
// directive-syntax diagnostics) sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return AnalyzePackage(NewProgram([]*Package{pkg}), pkg, analyzers)
}

// AnalyzePackage runs the analyzers over one package of a program,
// applies the package's //lint:ignore directives, and returns the
// surviving diagnostics sorted by position. Interprocedural analyzers
// resolve calls and summaries through prog, so findings that depend on
// other packages' code are still reported against this package's
// positions.
func AnalyzePackage(prog *Program, pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return analyzePackage(prog, pkg, analyzers, nil)
}

// analyzePackage is AnalyzePackage with an optional per-analyzer
// wall-clock accumulator keyed by analyzer name.
func analyzePackage(prog *Program, pkg *Package, analyzers []*Analyzer, elapsed map[string]time.Duration) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     pkg.Fset,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			Files:    pkg.Files,
			Prog:     prog,
			analyzer: a,
			diags:    &diags,
		}
		start := time.Now()
		a.Run(pass)
		if elapsed != nil {
			elapsed[a.Name] += time.Since(start)
		}
	}
	diags = applyIgnores(pkg, diags)
	sortDiagnostics(diags)
	return diags
}

// Lint loads the packages at the given module-relative import paths
// (every package in the module when paths is nil), builds the
// whole-program view over everything the loader touched (requested
// packages plus their module-local dependencies, so interprocedural
// summaries see call targets outside the requested set), and runs the
// analyzers over each requested package. The returned diagnostics are
// sorted by position. A package that fails to parse or type-check is a
// hard error, not a diagnostic.
func Lint(root, modpath string, paths []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := lintTimed(root, modpath, paths, analyzers, false)
	return diags, err
}

// AnalyzerTiming is the cumulative wall-clock cost of one analyzer
// across every linted package of a run.
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// LintTimed is Lint plus per-analyzer wall-clock timings, in suite
// order. Program-wide results cached across analyzers (call graphs,
// reachability, taint fixpoints) are attributed to whichever analyzer
// computes them first, so early entries can look more expensive than
// a solo run would show.
func LintTimed(root, modpath string, paths []string, analyzers []*Analyzer) ([]Diagnostic, []AnalyzerTiming, error) {
	return lintTimed(root, modpath, paths, analyzers, true)
}

func lintTimed(root, modpath string, paths []string, analyzers []*Analyzer, timed bool) ([]Diagnostic, []AnalyzerTiming, error) {
	pkgs, prog, err := loadProgram(root, modpath, paths)
	if err != nil {
		return nil, nil, err
	}
	var elapsed map[string]time.Duration
	if timed {
		elapsed = make(map[string]time.Duration, len(analyzers))
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analyzePackage(prog, pkg, analyzers, elapsed)...)
	}
	sortDiagnostics(diags)
	var timings []AnalyzerTiming
	if timed {
		for _, a := range analyzers {
			timings = append(timings, AnalyzerTiming{Name: a.Name, Elapsed: elapsed[a.Name]})
		}
	}
	return diags, timings, nil
}

// loadProgram loads the requested packages (all module packages when
// paths is nil) and builds the Program spanning every module package
// the loads pulled in.
func loadProgram(root, modpath string, paths []string) ([]*Package, *Program, error) {
	loader := NewLoader(root, modpath)
	if paths == nil {
		var err error
		paths, err = loader.ModulePackages()
		if err != nil {
			return nil, nil, err
		}
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: loading %s: %w", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, NewProgram(loader.Packages()), nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Check < b.Check
	})
}
