// Package analysis is lsdlint's stdlib-only static-analysis engine.
// It loads every package in the module with go/parser, type-checks it
// with go/types (resolving the standard library from source via
// go/importer, so the repo keeps its no-external-dependency rule), and
// runs a suite of project-specific analyzers that machine-check the
// pipeline's determinism and concurrency invariants:
//
//   - maprangefloat: no floating-point accumulation in Go map
//     iteration order (the PR 1 nondeterminism class).
//   - seedflow: every rand.NewSource seed is a constant or derived via
//     learn.DeriveSeed, and no *rand.Rand is captured by a go-launched
//     function literal.
//   - guardedby: fields tagged `// guarded by <mutex>` are only
//     touched while that mutex is held on a syntactic lock path.
//   - normalizedpred: learn.Prediction values built in an exported
//     function are normalized before they cross the package boundary.
//
// Findings can be suppressed with a justified directive on (or
// immediately above) the offending line:
//
//	//lint:ignore <check> <reason>
//
// A directive without a reason is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one analyzer finding, resolved to a file position.
type Diagnostic struct {
	// Position locates the finding.
	Position token.Position
	// Check names the analyzer (or "ignore" for malformed
	// suppression directives).
	Check string
	// Message explains the finding and how to fix it.
	Message string
}

// String renders the diagnostic in the conventional
// file:line:col: check: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Check, d.Message)
}

// Analyzer is one lint check: a name (used in diagnostics and in
// //lint:ignore directives), a one-line doc string, and a Run function
// invoked once per loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) unit of work. Analyzers read
// the syntax and type information and report findings via Reportf.
type Pass struct {
	Fset  *token.FileSet
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos under the running analyzer's name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Position: p.Fset.Position(pos),
		Check:    p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// DefaultAnalyzers returns the full lsdlint suite.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		MapRangeFloat,
		SeedFlow,
		GuardedBy,
		NormalizedPred,
	}
}

// RunAnalyzers runs the analyzers over a loaded package, applies the
// package's //lint:ignore directives, and returns the surviving
// diagnostics (plus any directive-syntax diagnostics) sorted by
// position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     pkg.Fset,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			Files:    pkg.Files,
			analyzer: a,
			diags:    &diags,
		}
		a.Run(pass)
	}
	diags = applyIgnores(pkg, diags)
	sortDiagnostics(diags)
	return diags
}

// Lint loads the packages at the given module-relative import paths
// (every package in the module when paths is nil) and runs the
// analyzers over each. The returned diagnostics are sorted by
// position. A package that fails to parse or type-check is a hard
// error, not a diagnostic.
func Lint(root, modpath string, paths []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	loader := NewLoader(root, modpath)
	if paths == nil {
		var err error
		paths, err = loader.ModulePackages()
		if err != nil {
			return nil, err
		}
	}
	var diags []Diagnostic
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, fmt.Errorf("analysis: loading %s: %w", path, err)
		}
		diags = append(diags, RunAnalyzers(pkg, analyzers)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Check < b.Check
	})
}
