package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc keeps the measured hot paths allocation-lean. Functions
// whose doc comment carries `// lint:hot` are roots (Predict, Dot,
// Match — the paths the allocs/op bench gate watches), and every
// function transitively reachable from a root is scanned for the
// allocation habits that erode per-op numbers gradually enough that
// the bench gate's threshold misses each individual step:
//
//   - fmt.Sprintf / Sprint / Sprintln / Errorf calls (always allocate,
//     usually in error or key construction that belongs outside the
//     loop)
//   - map allocations, whether make(map[...]...) or a literal (maps
//     never shrink and defeat the dense-scratch reuse pattern)
//   - append inside a loop whose destination has no capacity hint — no
//     three-argument make and no buf[:0] re-slice of a caller-owned
//     buffer — so the slice regrows every few iterations
//   - calls inside a loop that hand an unhinted buffer to a callee
//     whose mutation summary (mutsum.go) records an in-place append
//     through that parameter — the same regrowth, laundered through a
//     helper
//
// The complement of the dynamic gate: the bench catches regressions
// after they land, this names the exact site before. Deliberate
// allocations (a cache insert, a cold error path) carry justified
// //lint:ignore hotalloc suppressions.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "functions reachable from // lint:hot roots must avoid casual allocation",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	reach := hotReach(pass.Prog)
	sums := MutSummaries(pass.Prog)
	for _, d := range pass.Prog.Decls() {
		if d.Pkg.Pkg != pass.Pkg {
			continue
		}
		if roots := reach[d.Fn]; roots != nil {
			checkHotBody(pass, d, roots, sums)
		}
	}
}

// hotReach maps every function reachable from a `// lint:hot` root to
// the sorted root names it serves, computed once per program.
func hotReach(prog *Program) map[*types.Func][]string {
	return prog.Cache("hotalloc.reach", func() any {
		return reachableFrom(prog, annotatedRoots(prog, "lint:hot"))
	}).(map[*types.Func][]string)
}

// checkHotBody reports the allocation sites in one hot function.
func checkHotBody(pass *Pass, d *FuncDecl, roots []string, sums map[*types.Func]*MutSummary) {
	info := d.Pkg.Info
	via := "hot path reachable from " + strings.Join(roots, ", ")
	hinted := capacityHintedVars(info, d.Decl.Body)

	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				walk(n.Init, inLoop)
				walk(n.Cond, inLoop)
				walk(n.Post, inLoop)
				walk(n.Body, true)
				return false
			case *ast.RangeStmt:
				walk(n.X, inLoop)
				walk(n.Body, true)
				return false
			case *ast.CompositeLit:
				if isMapType(info.TypeOf(n)) {
					pass.Reportf(n.Pos(), "map literal allocates in a %s; reuse a scratch map or restructure", via)
				}
			case *ast.CallExpr:
				checkHotCall(pass, info, n, inLoop, hinted, via, sums)
			}
			return true
		})
	}
	walk(d.Decl.Body, false)
}

// checkHotCall flags one call site: fmt formatting, map makes,
// unhinted appends in loops, and loop calls that grow an unhinted
// buffer through a callee's in-place append (the summary case).
func checkHotCall(pass *Pass, info *types.Info, call *ast.CallExpr, inLoop bool, hinted map[*types.Var]bool, via string, sums map[*types.Func]*MutSummary) {
	if fn := CalleeOf(info, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			switch fn.Name() {
			case "Sprintf", "Sprint", "Sprintln", "Errorf":
				pass.Reportf(call.Pos(), "fmt.%s allocates in a %s; build the string outside the hot path or with a reused buffer", fn.Name(), via)
			}
			return
		}
		if inLoop {
			checkHotCalleeAppend(pass, info, call, hinted, via, sums)
		}
		return
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	b, ok := info.Uses[id].(*types.Builtin)
	if !ok {
		return
	}
	switch b.Name() {
	case "make":
		if len(call.Args) > 0 && isMapType(info.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "make(map) allocates in a %s; reuse a scratch map or restructure", via)
		}
	case "append":
		if !inLoop || len(call.Args) == 0 {
			return
		}
		dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := info.Uses[dst].(*types.Var)
		if !ok || hinted[v] {
			return
		}
		pass.Reportf(call.Pos(), "append to %s inside a loop in a %s without a capacity hint; pre-size with make(..., 0, n) or reuse a buffer via buf[:0]", dst.Name, via)
	}
}

// checkHotCalleeAppend flags a loop call whose callee's mutation
// summary appends in place through a parameter (or the receiver) that
// resolves to a local buffer without a capacity hint: the regrowth is
// the same as a direct unhinted append, just hidden behind the call.
func checkHotCalleeAppend(pass *Pass, info *types.Info, call *ast.CallExpr, hinted map[*types.Var]bool, via string, sums map[*types.Func]*MutSummary) {
	callee, slotArgs := calleeSlotArgs(info, call)
	if callee == nil {
		return
	}
	sum := sums[callee]
	if sum == nil {
		return
	}
	for j, args := range slotArgs {
		if !sum.Appends(j) {
			continue
		}
		for _, arg := range args {
			p := peelRef(info, arg)
			v, ok := p.obj.(*types.Var)
			if !ok || hinted[v] {
				continue
			}
			if !p.addrOf && !isRefType(info.TypeOf(arg)) {
				continue
			}
			pass.Reportf(arg.Pos(),
				"%s appends to %s in place, called inside a loop in a %s, and %s has no capacity hint; pre-size with make(..., 0, n) or reuse a buffer via buf[:0]",
				callee.Name(), v.Name(), via, v.Name())
		}
	}
}

// capacityHintedVars collects the variables the body ever assigns
// from a capacity-carrying expression: a three-argument make, or a
// zero-length re-slice (buf[:0]) of an existing buffer. Appending to
// such a variable in a loop amortizes into the reserved capacity
// instead of regrowing.
func capacityHintedVars(info *types.Info, body ast.Node) map[*types.Var]bool {
	hinted := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			v := defOrUseVar(info, id)
			if v == nil || !isCapacityHint(info, assign.Rhs[i]) {
				continue
			}
			hinted[v] = true
		}
		return true
	})
	return hinted
}

// isCapacityHint reports whether the expression carries explicit
// capacity: make with a cap argument, or a [:0]-style re-slice.
func isCapacityHint(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := info.Uses[id].(*types.Builtin)
		return ok && b.Name() == "make" && len(e.Args) == 3
	case *ast.SliceExpr:
		if e.High == nil {
			return false
		}
		lit, ok := ast.Unparen(e.High).(*ast.BasicLit)
		return ok && lit.Value == "0"
	}
	return false
}

func defOrUseVar(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
